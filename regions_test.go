package regions_test

import (
	"testing"

	"regions"
)

// TestPaperFigure1 is the paper's first example: a loop allocating arrays
// in a region, all freed by one deleteregion.
func TestPaperFigure1(t *testing.T) {
	sys := regions.New()
	r := sys.NewRegion()
	for i := 0; i < 10; i++ {
		size := (i + 1) * 4
		x := sys.Ralloc(r, size, sys.SizeCleanup(size))
		for w := 0; w < size; w += 4 {
			sys.Store(x+regions.Ptr(w), uint32(i))
		}
	}
	if !sys.DeleteRegion(r) {
		t.Fatal("deleteregion failed")
	}
	if c := sys.Counters(); c.Allocs != 10 || c.LiveBytes != 0 {
		t.Fatalf("allocs=%d live=%d", c.Allocs, c.LiveBytes)
	}
}

// TestPaperFigure3 is the list-copy example through the public API.
func TestPaperFigure3(t *testing.T) {
	sys := regions.New()
	clnList := sys.RegisterCleanup("list", func(rt *regions.Runtime, obj regions.Ptr) int {
		rt.Destroy(rt.Space().Load(obj + 4))
		return 8
	})
	cons := func(r *regions.Region, x uint32, l regions.Ptr) regions.Ptr {
		p := sys.Ralloc(r, 8, clnList)
		sys.Store(p, x)
		sys.StorePtr(p+4, l)
		return p
	}

	f := sys.PushFrame(2)
	defer sys.PopFrame()

	main := sys.NewRegion()
	var l regions.Ptr
	for i := 3; i >= 1; i-- {
		l = cons(main, uint32(i), l)
	}
	f.Set(0, l)

	tmp := sys.NewRegion()
	var copyList func(r *regions.Region, l regions.Ptr) regions.Ptr
	copyList = func(r *regions.Region, l regions.Ptr) regions.Ptr {
		if l == 0 {
			return 0
		}
		return cons(r, sys.Load(l), copyList(r, sys.Load(l+4)))
	}
	f.Set(1, copyList(tmp, l))

	if sys.DeleteRegion(tmp) {
		t.Fatal("delete succeeded with a live local reference")
	}
	f.Set(1, 0)
	if !sys.DeleteRegion(tmp) {
		t.Fatal("delete failed after the local died")
	}
	for i, p := 1, f.Get(0); p != 0; i, p = i+1, sys.Load(p+4) {
		if got := sys.Load(p); got != uint32(i) {
			t.Fatalf("original list damaged: [%d]=%d", i, got)
		}
	}
}

func TestUnsafeOption(t *testing.T) {
	sys := regions.New(regions.Unsafe())
	if sys.Safe() {
		t.Fatal("Unsafe() system reports safe")
	}
	r := sys.NewRegion()
	g := sys.AllocGlobals(1)
	p := sys.RstrAlloc(r, 16)
	sys.StoreGlobalPtr(g, p)
	if !sys.DeleteRegion(r) {
		t.Fatal("unsafe delete failed despite being unchecked")
	}
}

func TestWithCacheOption(t *testing.T) {
	sys := regions.New(regions.WithCache())
	r := sys.NewRegion()
	p := sys.RstrAlloc(r, 64*1024)
	for i := 0; i < 64*1024; i += 4 {
		sys.Load(p + regions.Ptr(i))
	}
	if sys.Counters().ReadStalls == 0 {
		t.Fatal("no stalls recorded with cache model")
	}
}

func TestRegionOfPublic(t *testing.T) {
	sys := regions.New()
	r := sys.NewRegion()
	p := sys.RstrAlloc(r, 8)
	if sys.RegionOf(p) != r {
		t.Fatal("RegionOf mismatch")
	}
	if sys.RegionOf(0) != nil {
		t.Fatal("RegionOf(nil) != nil")
	}
	if sys.MappedBytes() == 0 {
		t.Fatal("no OS memory recorded")
	}
}

func TestParallelPublic(t *testing.T) {
	w := regions.NewParWorld(2)
	r := w.NewParRegion()
	regionOf := func(p regions.Ptr) *regions.ParRegion {
		if p != 0 {
			return r
		}
		return nil
	}
	var slot regions.ParSlot
	w.Worker(0).Write(&slot, 8, regionOf)
	if w.TryDelete(r) {
		t.Fatal("deleted with live reference")
	}
	w.Worker(1).Write(&slot, 0, regionOf)
	if !w.TryDelete(r) {
		t.Fatal("delete failed at zero sum")
	}
}

func TestReferrersPublic(t *testing.T) {
	sys := regions.New()
	cln := sys.RegisterCleanup("cell", func(rt *regions.Runtime, obj regions.Ptr) int {
		rt.Destroy(rt.Space().Load(obj))
		return 4
	})
	target := sys.NewRegion()
	other := sys.NewRegion()
	victim := sys.Ralloc(target, 4, cln)
	holder := sys.Ralloc(other, 4, cln)
	sys.StorePtr(holder, victim)

	if sys.DeleteRegion(target) {
		t.Fatal("delete should fail")
	}
	refs := sys.Referrers(target)
	if len(refs) != 1 || refs[0].Value != victim {
		t.Fatalf("refs=%v", refs)
	}
	sys.StorePtr(holder, 0)
	if len(sys.Referrers(target)) != 0 {
		t.Fatal("refs remain after clearing")
	}
	if !sys.DeleteRegion(target) {
		t.Fatal("delete failed")
	}
}

// TestDeferredDeleteOption walks the deferred-reclamation lifecycle through
// the public API: DeleteRegion under the DeferredDelete option leaves sweep
// debt, SweepSlice retires it within its budget, Verify stays clean in the
// detached state, and misuse of the detached region faults with
// FaultDetachedRegion.
func TestDeferredDeleteOption(t *testing.T) {
	sys := regions.New(regions.DeferredDelete(), regions.WithSweepBudget(2))
	r := sys.NewRegion()
	for i := 0; i < 6; i++ {
		sys.RstrAlloc(r, 2000)
	}
	if !sys.DeleteRegion(r) {
		t.Fatal("delete failed")
	}
	debt := sys.SweepDebt()
	if debt == 0 {
		t.Fatal("deferred delete left no sweep debt")
	}
	if err := sys.Verify(); err != nil {
		t.Fatalf("Verify with detached pages: %v", err)
	}
	if _, err := sys.TryDeleteRegion(r); err == nil {
		t.Fatal("double delete of detached region returned no error")
	} else if f, ok := err.(*regions.Fault); !ok || f.Kind != regions.FaultDetachedRegion {
		t.Fatalf("want FaultDetachedRegion, got %v", err)
	}
	if n := sys.SweepSlice(); n < 1 || n > 2 {
		t.Fatalf("slice swept %d pages, budget 2", n)
	}
	sys.SweepDrain()
	if sys.SweepDebt() != 0 || sys.SweptPages() == 0 || sys.SweepDebtPeak() != debt {
		t.Fatalf("after drain: debt %d, swept %d, peak %d (initial debt %d)",
			sys.SweepDebt(), sys.SweptPages(), sys.SweepDebtPeak(), debt)
	}
	if err := sys.Verify(); err != nil {
		t.Fatalf("Verify after drain: %v", err)
	}
}
