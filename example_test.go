package regions_test

import (
	"fmt"

	"regions"
)

// Example reproduces the paper's Figure 1: a loop allocating arrays into a
// region, all reclaimed by one DeleteRegion.
func Example() {
	sys := regions.New()
	r := sys.NewRegion()
	for i := 0; i < 10; i++ {
		size := (i + 1) * 4
		x := sys.Ralloc(r, size, sys.SizeCleanup(size))
		sys.Store(x, uint32(i)) // work(i, x)
	}
	fmt.Println("allocations:", sys.Counters().Allocs)
	fmt.Println("deleted:", sys.DeleteRegion(r))
	fmt.Println("live bytes:", sys.Counters().LiveBytes)
	// Output:
	// allocations: 10
	// deleted: true
	// live bytes: 0
}

// ExampleSystem_DeleteRegion shows the safety rule: deletion fails while an
// external reference to the region's objects remains.
func ExampleSystem_DeleteRegion() {
	sys := regions.New()
	cln := sys.RegisterCleanup("cell", func(rt *regions.Runtime, obj regions.Ptr) int {
		rt.Destroy(rt.Space().Load(obj))
		return 4
	})
	r := sys.NewRegion()
	p := sys.Ralloc(r, 4, cln)

	g := sys.AllocGlobals(1)
	sys.StoreGlobalPtr(g, p) // a global now points into r
	fmt.Println("with global ref:", sys.DeleteRegion(r))
	sys.StoreGlobalPtr(g, 0)
	fmt.Println("after clearing: ", sys.DeleteRegion(r))
	// Output:
	// with global ref: false
	// after clearing:  true
}

// ExampleSystem_Referrers shows the debugging aid: when deletion fails,
// Referrers names the locations holding the region alive.
func ExampleSystem_Referrers() {
	sys := regions.New()
	cln := sys.RegisterCleanup("cell", func(rt *regions.Runtime, obj regions.Ptr) int {
		rt.Destroy(rt.Space().Load(obj))
		return 4
	})
	r := sys.NewRegion()
	p := sys.Ralloc(r, 4, cln)

	f := sys.PushFrame(1)
	defer sys.PopFrame()
	f.Set(0, p)

	fmt.Println("deletable:", sys.DeleteRegion(r))
	for _, ref := range sys.Referrers(r) {
		fmt.Println("held by:", ref.Kind)
	}
	// Output:
	// deletable: false
	// held by: frame
}

// ExampleSystem_RegionOf shows the paper's regionof operation.
func ExampleSystem_RegionOf() {
	sys := regions.New()
	a := sys.NewRegion()
	b := sys.NewRegion()
	p := sys.RstrAlloc(a, 16)
	q := sys.RstrAlloc(b, 16)
	fmt.Println(sys.RegionOf(p) == a, sys.RegionOf(q) == b, sys.RegionOf(0) == nil)
	// Output:
	// true true true
}

// ExampleSystem_trace shows the observability layer end to end: attach a
// tracer, run a region's whole life, and read the typed events back. The
// schema is documented in docs/OBSERVABILITY.md; cmd/regiontrace renders the
// same stream as JSONL, a Chrome timeline, and a per-region report.
func ExampleSystem_trace() {
	sys := regions.New()
	t := regions.NewTracer(64)
	sys.SetTracer(t)

	r := sys.NewRegion()
	p := sys.Ralloc(r, 8, sys.SizeCleanup(8))
	g := sys.AllocGlobals(1)
	sys.StoreGlobalPtr(g, p) // global barrier fires, blocks deletion
	sys.DeleteRegion(r)      // refused: the global still points into r
	sys.StoreGlobalPtr(g, 0)
	sys.DeleteRegion(r) // cleanup runs, then the region dies

	for _, ev := range sys.Trace().Events() {
		fmt.Println(ev.Kind)
	}
	// Output:
	// region-create
	// ralloc
	// barrier-global
	// region-delete-fail
	// barrier-global
	// cleanup
	// region-delete
}
