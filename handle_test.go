package regions_test

import (
	"errors"
	"testing"

	"regions"
)

// TestHandleMirrorsSystemCalls checks every Handle method against the flat
// System spelling of the same operation.
func TestHandleMirrorsSystemCalls(t *testing.T) {
	sys := regions.New()
	h := sys.Bind(sys.NewRegion())
	if h.System() != sys {
		t.Fatal("System() does not return the binding system")
	}
	if h.Region() == nil {
		t.Fatal("Region() is nil")
	}

	cln := sys.SizeCleanup(16)
	p := h.Alloc(16, cln)
	if got := sys.RegionOf(p); got != h.Region() {
		t.Fatalf("Alloc landed in region %v, want %v", got, h.Region())
	}
	arr := h.AllocArray(4, 8, sys.SizeCleanup(8))
	if got := sys.RegionOf(arr); got != h.Region() {
		t.Fatal("AllocArray landed in the wrong region")
	}
	str := h.AllocStr(64)
	if got := sys.RegionOf(str); got != h.Region() {
		t.Fatal("AllocStr landed in the wrong region")
	}

	if _, err := h.TryAlloc(16, cln); err != nil {
		t.Fatalf("TryAlloc: %v", err)
	}
	if _, err := h.TryAllocArray(2, 8, sys.SizeCleanup(8)); err != nil {
		t.Fatalf("TryAllocArray: %v", err)
	}
	if _, err := h.TryAllocStr(32); err != nil {
		t.Fatalf("TryAllocStr: %v", err)
	}

	if !h.Delete() {
		t.Fatal("Delete failed on an unreferenced region")
	}
}

// TestHandleReferrersAndTryDelete walks the debugging path through the
// handle: a live local blocks deletion, Referrers names it, clearing it
// unblocks the delete.
func TestHandleReferrersAndTryDelete(t *testing.T) {
	sys := regions.New()
	f := sys.PushFrame(1)
	defer sys.PopFrame()

	h := sys.Bind(sys.NewRegion())
	p := h.Alloc(16, sys.SizeCleanup(16))
	f.Set(0, p)

	if ok, err := h.TryDelete(); ok || err != nil {
		t.Fatalf("TryDelete with a live local = (%v, %v), want (false, nil)", ok, err)
	}
	refs := h.Referrers()
	if len(refs) != 1 || refs[0].Kind != regions.RefFrame {
		t.Fatalf("Referrers = %v, want one frame reference", refs)
	}
	f.Set(refs[0].Slot, 0)
	if ok, err := h.TryDelete(); !ok || err != nil {
		t.Fatalf("TryDelete after clearing = (%v, %v), want (true, nil)", ok, err)
	}

	// A second delete is a fault: Delete panics, TryDelete returns the error.
	if ok, err := h.TryDelete(); ok || err == nil {
		t.Fatalf("TryDelete on a deleted region = (%v, %v), want error", ok, err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Delete on a deleted region did not panic")
			}
		}()
		h.Delete()
	}()
}

// TestHandleOOMSurfacesTypedError checks the error contract on the handle's
// Try path: a refused page request comes back as a *Fault wrapping
// ErrOutOfMemory.
func TestHandleOOMSurfacesTypedError(t *testing.T) {
	sys := regions.New()
	h := sys.Bind(sys.NewRegion())
	sys.SetFaultPlan(&regions.FaultPlan{FailProb: 1})
	// The region's first page is already mapped; exhaust it so the next
	// allocation must request a page and be refused.
	var lastErr error
	for i := 0; i < 4096; i++ {
		if _, err := h.TryAllocStr(256); err != nil {
			lastErr = err
			break
		}
	}
	if lastErr == nil {
		t.Fatal("no OOM under a 100% fault plan")
	}
	var fault *regions.Fault
	if !errors.Is(lastErr, regions.ErrOutOfMemory) || !errors.As(lastErr, &fault) {
		t.Fatalf("error %v is not a typed OOM fault", lastErr)
	}
	sys.SetFaultPlan(nil)
	if !h.Delete() {
		t.Fatal("delete failed after the plan was cleared")
	}
	if err := sys.Verify(); err != nil {
		t.Fatalf("heap invariants violated: %v", err)
	}
}
