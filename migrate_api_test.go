package regions_test

import (
	"errors"
	"testing"

	"regions"
)

// TestConstructionOptions checks the four construction options are
// equivalent to calling their mid-run setters right after New.
func TestConstructionOptions(t *testing.T) {
	tr := regions.NewTracer(64)
	reg := regions.NewMetricsRegistry()
	sys := regions.New(
		regions.WithPageLimit(2),
		regions.WithTracer(tr),
		regions.WithMetrics(reg),
	)
	if sys.Trace() != tr {
		t.Error("WithTracer did not attach the tracer")
	}
	if sys.Metrics() != reg {
		t.Error("WithMetrics did not attach the registry")
	}
	r := sys.NewRegion() // one page: fits the limit
	if _, err := sys.TryRstrAlloc(r, 3*4096); !errors.Is(err, regions.ErrOutOfMemory) {
		t.Errorf("WithPageLimit(2) did not cap the OS: err = %v", err)
	}
	if n := len(tr.Events()); n == 0 {
		t.Error("construction-attached tracer recorded nothing")
	}
	if _, ok := reg.Snapshot().Counter("regions_core_regions_created_total"); !ok {
		t.Error("construction-attached registry counted nothing")
	}

	faulty := regions.New(regions.WithFaultPlan(&regions.FaultPlan{FailNth: 1}))
	if _, err := faulty.TryNewRegion(); !errors.Is(err, regions.ErrOutOfMemory) {
		t.Errorf("WithFaultPlan did not inject: err = %v", err)
	}
}

// TestExportImportPublicAPI moves a region between two Systems through the
// public surface: digest preserved, stale handle faults with
// FaultMigratedRegion, destination verifies and deletes cleanly.
func TestExportImportPublicAPI(t *testing.T) {
	src, dst := regions.New(), regions.New()
	cln := src.SizeCleanup(8)
	dst.SizeCleanup(8) // import remaps cleanups by name: register on the receiver

	r := src.NewRegion()
	var prev regions.Ptr
	for i := 0; i < 32; i++ {
		p := src.Ralloc(r, 8, cln)
		src.Store(p, uint32(i+1))
		src.StorePtr(p+4, prev) // sameregion chain
		prev = p
	}
	want := src.ContentChecksum(r)

	if !src.Exportable(r) {
		t.Fatal("chain region not exportable")
	}
	rec, err := src.ExportRegion(r)
	if err != nil {
		t.Fatalf("ExportRegion: %v", err)
	}
	moved, err := dst.ImportRegion(rec)
	if err != nil {
		t.Fatalf("ImportRegion: %v", err)
	}
	if got := dst.ContentChecksum(moved); got != want {
		t.Errorf("content digest changed in transit: %08x, want %08x", got, want)
	}
	np, ok := rec.Translate(prev)
	if !ok {
		t.Fatal("chain head did not translate")
	}
	if got := dst.Load(np); got != 32 {
		t.Errorf("translated head holds %d, want 32", got)
	}

	// The source handle is a tombstone now.
	func() {
		defer func() {
			f, ok := recover().(*regions.Fault)
			if !ok || f.Kind != regions.FaultMigratedRegion {
				t.Errorf("stale use recovered %v, want FaultMigratedRegion", f)
			}
		}()
		src.Ralloc(r, 8, cln)
	}()

	if err := src.Verify(); err != nil {
		t.Errorf("source verify after export: %v", err)
	}
	if err := dst.Verify(); err != nil {
		t.Errorf("destination verify after import: %v", err)
	}
	if live := dst.LiveRegions(); len(live) != 1 || live[0] != moved {
		t.Errorf("LiveRegions = %v, want the imported region only", live)
	}
	if !dst.DeleteRegion(moved) {
		t.Error("imported region refused deletion")
	}
}

// TestExportRefusalsPublicAPI pins the refusal sentinels through the public
// surface: a referenced region refuses with ErrExportReferenced and stays
// fully usable; a record naming an unregistered cleanup refuses import with
// ErrImportCleanup and stays importable elsewhere.
func TestExportRefusalsPublicAPI(t *testing.T) {
	src := regions.New()
	cln := src.SizeCleanup(8)

	f := src.PushFrame(1)
	defer src.PopFrame()
	r := src.NewRegion()
	p := src.Ralloc(r, 8, cln)
	f.Set(0, p) // frame reference: not quiescent

	if src.Exportable(r) {
		t.Error("referenced region claims exportable")
	}
	if _, err := src.ExportRegion(r); !errors.Is(err, regions.ErrExportReferenced) {
		t.Fatalf("export of referenced region: err = %v, want ErrExportReferenced", err)
	}
	src.Store(p, 7) // refusal left the region usable
	f.Set(0, 0)

	rec, err := src.ExportRegion(r)
	if err != nil {
		t.Fatalf("export after clearing the frame: %v", err)
	}
	bare := regions.New() // never registered the "size:8" cleanup
	if _, err := bare.ImportRegion(rec); !errors.Is(err, regions.ErrImportCleanup) {
		t.Fatalf("import without cleanups: err = %v, want ErrImportCleanup", err)
	}
	ready := regions.New()
	ready.SizeCleanup(8)
	if _, err := ready.ImportRegion(rec); err != nil {
		t.Fatalf("record not reusable after refused import: %v", err)
	}
}
