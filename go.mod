module regions

go 1.22
