// Debugging demonstrates the region-debugging facility the paper asks for
// in Section 5.1:
//
//	"The other difficulty is finding stale pointers that prevent a region
//	from being deleted; an environment for debugging regions would be
//	helpful here."
//
// A cache region is filled with entries, some of which leak into a
// long-lived index — the classic stale-pointer bug. DeleteRegion refuses;
// Referrers then pinpoints every location that still holds a pointer into
// the region, the bug is fixed, and deletion succeeds.
package main

import (
	"fmt"

	"regions"
)

func main() {
	sys := regions.New()
	clnEntry := sys.RegisterCleanup("entry", func(rt *regions.Runtime, obj regions.Ptr) int {
		rt.Destroy(rt.Space().Load(obj + 4))
		return 8
	})

	f := sys.PushFrame(1)
	defer sys.PopFrame()

	// A long-lived index and a cache meant to be dropped wholesale.
	index := sys.Bind(sys.NewRegion())
	table := index.AllocArray(8, 4, sys.RegisterCleanup("slot",
		func(rt *regions.Runtime, obj regions.Ptr) int {
			rt.Destroy(rt.Space().Load(obj))
			return 4
		}))
	f.Set(0, table)

	cache := sys.Bind(sys.NewRegion())
	for i := 0; i < 20; i++ {
		entry := cache.Alloc(8, clnEntry)
		sys.Store(entry, uint32(i))
		if i%7 == 0 {
			// The bug: some cache entries leak into the long-lived index.
			sys.StorePtr(table+regions.Ptr(i%8*4), entry)
		}
	}

	if cache.Delete() {
		panic("unexpected: delete should have failed")
	}
	fmt.Println("deleteregion(&cache) refused — hunting the stale pointers:")
	refs := cache.Referrers()
	for _, r := range refs {
		fmt.Println("  ", r)
	}

	fmt.Printf("clearing %d stale references...\n", len(refs))
	for _, r := range refs {
		switch r.Kind {
		case regions.RefHeap, regions.RefGlobal:
			sys.StorePtr(r.Addr, 0)
		case regions.RefFrame:
			f.Set(r.Slot, 0)
		}
	}
	if !cache.Delete() {
		panic("delete still failing")
	}
	fmt.Println("deleteregion(&cache) succeeded")
}
