// Listcopy reproduces the paper's Figure 3 — copying a list into a
// temporary region, using it, and deleting that region — and then
// demonstrates the safety machinery: a deletion attempted while a live
// local variable still points into the region fails, and succeeds once the
// reference dies.
package main

import (
	"fmt"

	"regions"
)

// The paper's struct list { int i; struct list @next; }.
const (
	fieldI    = 0
	fieldNext = 4
	listSize  = 8
)

func main() {
	sys := regions.New()

	// cleanup_list from the paper's Figure 6: destroy the next pointer.
	clnList := sys.RegisterCleanup("list", func(rt *regions.Runtime, obj regions.Ptr) int {
		rt.Destroy(rt.Space().Load(obj + fieldNext))
		return listSize
	})
	cons := func(r regions.Handle, x uint32, l regions.Ptr) regions.Ptr {
		p := r.Alloc(listSize, clnList)
		sys.Store(p+fieldI, x)
		sys.StorePtr(p+fieldNext, l)
		return p
	}

	// Live locals go in a frame, like the paper's compiler-recorded
	// liveness maps.
	f := sys.PushFrame(2)
	defer sys.PopFrame()

	main := sys.Bind(sys.NewRegion())
	var l regions.Ptr
	for i := 5; i >= 1; i-- {
		l = cons(main, uint32(i), l)
	}
	f.Set(0, l)
	fmt.Print("original: ")
	printList(sys, l)

	// work(l) from Figure 3: copy into a temporary region.
	tmp := sys.Bind(sys.NewRegion())
	var copyList func(r regions.Handle, l regions.Ptr) regions.Ptr
	copyList = func(r regions.Handle, l regions.Ptr) regions.Ptr {
		if l == 0 {
			return 0
		}
		return cons(r, sys.Load(l+fieldI), copyList(r, sys.Load(l+fieldNext)))
	}
	cp := copyList(tmp, l)
	f.Set(1, cp)
	fmt.Print("copy:     ")
	printList(sys, cp)

	// Safety: while the copy is reachable from a live local, the region
	// cannot be deleted.
	if tmp.Delete() {
		panic("unexpected: deletion with a live reference")
	}
	fmt.Println("deleteregion(&tmp) refused: a live local still points in")

	f.Set(1, 0) // the local dies
	if !tmp.Delete() {
		panic("deletion failed with no references")
	}
	fmt.Println("deleteregion(&tmp) succeeded after the local died")
	fmt.Print("original survives: ")
	printList(sys, f.Get(0))
}

func printList(sys *regions.System, l regions.Ptr) {
	for ; l != 0; l = sys.Load(l + fieldNext) {
		fmt.Printf("%d ", sys.Load(l+fieldI))
	}
	fmt.Println()
}
