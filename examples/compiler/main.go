// Compiler demonstrates the region structure the paper found natural for
// compilers (its mudlle and lcc benchmarks): a long-lived region for the
// file being compiled and a short-lived region per compiled function. It
// runs this repository's mini-C compiler on its generated ~2000-line input
// and reports how the regions behaved.
package main

import (
	"fmt"

	"regions/internal/apps/appkit"
	"regions/internal/apps/minicc"
)

func main() {
	e := appkit.NewRegionEnv("safe", appkit.Config{})
	sum := minicc.RunRegion(e, 1)
	c := e.Counters()

	fmt.Println("compiled the generated C program once with safe regions")
	fmt.Printf("  result checksum        %#x\n", sum)
	fmt.Printf("  allocations            %d (%d KB)\n", c.Allocs, c.BytesRequested/1024)
	fmt.Printf("  regions created        %d\n", c.RegionsCreated)
	fmt.Printf("  max regions live       %d  (file region + working regions)\n", c.MaxLiveRegions)
	fmt.Printf("  largest region         %d KB\n", c.MaxRegionBytes/1024)
	fmt.Printf("  cleanup calls          %d\n", c.CleanupCalls)
	fmt.Printf("  write barriers         %d region, %d global, %d sameregion\n",
		c.Barriers.Region, c.Barriers.Global, c.Barriers.SameRegion)
	fmt.Printf("  safety cost            %d cycles of %d total (%.1f%%)\n",
		c.SafetyCycles(), c.TotalCycles(),
		100*float64(c.SafetyCycles())/float64(c.TotalCycles()))
	fmt.Println()
	fmt.Println("the paper's structure: \"one region holds the abstract syntax tree")
	fmt.Println("of the file being compiled and one region is created to hold the")
	fmt.Println("data structures needed to compile each function\" — here rotated")
	fmt.Println("every hundred statements, as the paper's lcc port does")
}
