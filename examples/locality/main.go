// Locality reproduces the paper's Section 5.5 observation on moss: regions
// are a tool for expressing data locality. moss alternately allocates a
// small, frequently-accessed posting and a large, rarely-accessed snippet;
// putting each kind in its own region packs the hot postings densely and
// cut execution time 24% in the paper, roughly halving cache stalls.
//
// This example runs both organizations with the UltraSparc-I cache model
// attached and prints the stall counts side by side.
package main

import (
	"fmt"

	"regions/internal/apps/appkit"
	"regions/internal/apps/moss"
)

func main() {
	const scale = 16

	slow := appkit.NewRegionEnv("unsafe", appkit.Config{Cache: true})
	moss.RunSlowRegion(slow, scale)
	sc := slow.Counters()

	fast := appkit.NewRegionEnv("unsafe", appkit.Config{Cache: true})
	moss.RunRegion(fast, scale)
	fc := fast.Counters()

	fmt.Println("moss fingerprint index, two region organizations:")
	fmt.Printf("  one region (original):   %8d read + %8d write stall cycles, %d total cycles\n",
		sc.ReadStalls, sc.WriteStalls, sc.TotalCycles())
	fmt.Printf("  small/large segregated:  %8d read + %8d write stall cycles, %d total cycles\n",
		fc.ReadStalls, fc.WriteStalls, fc.TotalCycles())

	stallRatio := float64(sc.ReadStalls+sc.WriteStalls) / float64(fc.ReadStalls+fc.WriteStalls)
	timeGain := 100 * (1 - float64(fc.TotalCycles())/float64(sc.TotalCycles()))
	fmt.Printf("\nsegregation removed %.0f%% of execution time (paper: 24%%)\n", timeGain)
	fmt.Printf("stall ratio slow/fast: %.2fx (paper: about half the stalls)\n", stallRatio)
	fmt.Println("\nneither malloc/free nor garbage collection offers a way to say")
	fmt.Println("\"these objects belong together\" — regions do")
}
