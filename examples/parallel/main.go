// Parallel demonstrates the paper's Section 1 extension of safe regions to
// an explicitly-parallel language:
//
//	"Each process keeps a local reference count for each region ... A
//	region can be deleted if the sum of all its local reference counts is
//	zero. Writes of references to regions must be done with an atomic
//	exchange ... however the local reference counts can be adjusted
//	without synchronization or communication."
//
// Eight workers hammer a shared pointer table; the per-worker counts drift
// individually (some go negative) while their sum tracks the live
// references exactly, and deletion is refused until the references die.
package main

import (
	"fmt"
	"sync"

	"regions"
)

func main() {
	const workers = 8
	const slots = 32

	world := regions.NewParWorld(workers)
	region := world.NewParRegion()
	regionOf := func(p regions.Ptr) *regions.ParRegion {
		if p != 0 {
			return region
		}
		return nil
	}

	shared := make([]regions.ParSlot, slots)
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			wk := world.Worker(id)
			x := uint32(id + 1)
			for i := 0; i < 100000; i++ {
				x = x*1664525 + 1013904223
				val := regions.Ptr(0)
				if x&8 != 0 {
					val = 4096 + x%4096&^3
				}
				wk.Write(&shared[x%slots], val, regionOf)
			}
		}(id)
	}
	wg.Wait()

	live := 0
	for i := range shared {
		if shared[i].Load() != 0 {
			live++
		}
	}
	fmt.Printf("after 800k racing writes: %d slots hold references\n", live)
	fmt.Printf("sum of local reference counts: %d (must equal live references)\n", region.RCSum())

	if live > 0 {
		if world.TryDelete(region) {
			panic("deletion succeeded with live references")
		}
		fmt.Println("TryDelete refused while references remain")
	}
	wk := world.Worker(0)
	for i := range shared {
		wk.Write(&shared[i], 0, regionOf)
	}
	if !world.TryDelete(region) {
		panic("deletion failed at zero sum")
	}
	fmt.Println("all references cleared; TryDelete succeeded")
}
