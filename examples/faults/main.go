// Faults demonstrates the robustness subsystem (docs/ROBUSTNESS.md): a
// fault plan makes the simulated OS refuse pages on a deterministic
// schedule, the Try* allocation paths surface typed errors instead of
// crashing, faults land in the event trace, and the heap-invariant
// verifier confirms that every failed operation left the heap exactly as
// it was.
package main

import (
	"errors"
	"fmt"

	"regions"
)

func main() {
	sys := regions.New()
	tr := regions.NewTracer(1 << 12)
	sys.SetTracer(tr)

	// Refuse ~40% of page requests, reproducibly.
	sys.SetFaultPlan(&regions.FaultPlan{FailProb: 0.4, Seed: 2026})

	cln := sys.SizeCleanup(64)
	created, refused := 0, 0
	var live []regions.Handle
	for i := 0; i < 30; i++ {
		r, err := sys.TryNewRegion()
		if err != nil {
			var f *regions.Fault
			if !errors.Is(err, regions.ErrOutOfMemory) || !errors.As(err, &f) {
				panic("allocation failure was not a typed OOM")
			}
			refused++
			continue
		}
		created++
		h := sys.Bind(r)
		live = append(live, h)
		for j := 0; j < 8; j++ {
			if _, err := h.TryAlloc(64, cln); err != nil {
				refused++
			}
		}
		// After every operation — succeed or refuse — the heap verifies.
		if err := sys.Verify(); err != nil {
			panic(err)
		}
	}
	fmt.Printf("under the fault plan: %d regions created, %d operations refused\n",
		created, refused)

	// Clear the plan: full service resumes, and everything deletes cleanly.
	sys.SetFaultPlan(nil)
	for _, h := range live {
		if !h.Delete() {
			panic("delete failed after the plan was cleared")
		}
	}
	if err := sys.Verify(); err != nil {
		panic(err)
	}

	faults := 0
	for _, ev := range tr.Events() {
		if ev.Kind == regions.EvFault {
			faults++
		}
	}
	fmt.Printf("the trace captured %d fault events\n", faults)
	fmt.Printf("heap verified after every operation; %d bytes live at exit\n",
		sys.Counters().LiveBytes)
}
