// Quickstart reproduces the paper's opening example (Figure 1):
//
//	void f() {
//	    Region r = newregion();
//	    for (i = 0; i < 10; i++) {
//	        int *x = ralloc(r, (i + 1) * sizeof(int));
//	        work(i, x);
//	    }
//	    deleteregion(&r);
//	}
//
// Each loop iteration allocates a small array in the region; one call to
// DeleteRegion frees them all — no walking, no per-object frees.
package main

import (
	"fmt"

	"regions"
)

func main() {
	sys := regions.New()

	r := sys.Bind(sys.NewRegion())
	for i := 0; i < 10; i++ {
		size := (i + 1) * 4
		x := r.Alloc(size, sys.SizeCleanup(size))
		work(sys, i, x, size)
	}
	if !r.Delete() {
		panic("deleteregion failed")
	}

	c := sys.Counters()
	fmt.Printf("allocated %d arrays, %d bytes total\n", c.Allocs, c.BytesRequested)
	fmt.Printf("one DeleteRegion freed everything: %d bytes live\n", c.LiveBytes)
	fmt.Printf("memory requested from the OS: %d KB\n", sys.MappedBytes()/1024)
}

// work fills the array with i, like the paper's work(i, x).
func work(sys *regions.System, i int, x regions.Ptr, size int) {
	for w := 0; w < size; w += 4 {
		sys.Store(x+regions.Ptr(w), uint32(i))
	}
}
