package regions_test

import (
	"errors"
	"testing"

	"regions"
)

// TestFaultInjectionPublicAPI is the end-to-end robustness smoke test: a
// fault plan installed through the public API makes allocations fail with
// typed errors, the heap verifies throughout, and service resumes when the
// plan is cleared.
func TestFaultInjectionPublicAPI(t *testing.T) {
	sys := regions.New()
	sys.SetFaultPlan(&regions.FaultPlan{FailProb: 0.5, Seed: 7})

	cln := sys.SizeCleanup(16)
	var live []*regions.Region
	ooms := 0
	for i := 0; i < 40; i++ {
		r, err := sys.TryNewRegion()
		if err != nil {
			if !errors.Is(err, regions.ErrOutOfMemory) {
				t.Fatalf("untyped error from TryNewRegion: %v", err)
			}
			var f *regions.Fault
			if !errors.As(err, &f) || f.Kind != regions.FaultOOM {
				t.Fatalf("error %v is not a FaultOOM regions.Fault", err)
			}
			ooms++
			continue
		}
		live = append(live, r)
		if _, err := sys.TryRalloc(r, 16, cln); err != nil {
			ooms++
		}
		if _, err := sys.TryRarrayAlloc(r, 200, 16, cln); err != nil {
			ooms++
		}
		if _, err := sys.TryRstrAlloc(r, 5000); err != nil {
			ooms++
		}
		if err := sys.Verify(); err != nil {
			t.Fatalf("Verify after round %d: %v", i, err)
		}
	}
	if ooms == 0 {
		t.Fatal("plan injected no failures; test is vacuous")
	}

	sys.SetFaultPlan(nil)
	for _, r := range live {
		if sys.Ralloc(r, 16, cln) == 0 {
			t.Fatal("allocation failed after the plan was cleared")
		}
		if !sys.DeleteRegion(r) {
			t.Fatal("delete failed after the plan was cleared")
		}
	}
	if err := sys.Verify(); err != nil {
		t.Fatalf("Verify after drain: %v", err)
	}
}

// TestPageLimitPublicAPI checks the ulimit-style cap and the typed panic
// of the paper-shaped methods.
func TestPageLimitPublicAPI(t *testing.T) {
	sys := regions.New()
	sys.SetPageLimit(int(sys.MappedBytes()/4096) + 1)
	r := sys.NewRegion() // uses the one remaining page

	defer func() {
		f, ok := recover().(*regions.Fault)
		if !ok {
			t.Fatalf("expected a *regions.Fault panic, got %v", f)
		}
		if f.Kind != regions.FaultOOM || !errors.Is(f, regions.ErrOutOfMemory) {
			t.Fatalf("fault %v is not a typed OOM", f)
		}
	}()
	sys.RstrAlloc(r, 3*4096) // must panic: past the page limit
}

// TestFaultEventsReachTracer checks EvFault arrives through the public
// tracing surface.
func TestFaultEventsReachTracer(t *testing.T) {
	sys := regions.New()
	tr := regions.NewTracer(64)
	sys.SetTracer(tr)
	sys.SetFaultPlan(&regions.FaultPlan{FailNth: 1})
	if _, err := sys.TryNewRegion(); err == nil {
		t.Fatal("expected OOM")
	}
	for _, ev := range tr.Events() {
		if ev.Kind == regions.EvFault {
			return
		}
	}
	t.Fatal("no EvFault event in the trace")
}
