// Package regions is the public API of this reproduction of
//
//	David Gay and Alex Aiken, "Memory Management with Explicit Regions",
//	PLDI 1998.
//
// A System is one simulated 32-bit machine running the paper's safe
// region-based memory manager. The API mirrors the paper's C interface
// (Figure 2):
//
//	Region r = newregion();            r := sys.NewRegion()
//	ralloc(r, size, cleanup)           sys.Ralloc(r, size, cleanup)
//	rarrayalloc(r, n, size, cleanup)   sys.RarrayAlloc(r, n, size, cleanup)
//	rstralloc(r, size)                 sys.RstrAlloc(r, size)
//	regionof(x)                        sys.RegionOf(x)
//	deleteregion(&r)                   sys.DeleteRegion(r)
//
// Safety works exactly as in the paper: a region can be deleted only when
// no external references to its objects remain, enforced with region
// reference counts — exact counts for pointers stored in the heap and
// global storage (via StorePtr and StoreGlobalPtr write barriers), and
// deferred counts for local variables held in shadow-stack frames scanned
// on demand with a high-water mark. Cleanup functions let deletion adjust
// the counts of other regions (and finalize objects).
//
// Everything lives in a simulated word-addressable address space (Load and
// Store), so the package also serves as the measurement substrate for the
// paper's experiments; see internal/bench and cmd/regionbench.
package regions

import (
	"regions/internal/cachesim"
	"regions/internal/core"
	"regions/internal/mem"
	"regions/internal/metrics"
	"regions/internal/stats"
	"regions/internal/trace"
)

// Ptr is a pointer into a System's simulated heap; 0 is the nil pointer.
type Ptr = mem.Addr

// Word is the contents of one 32-bit heap word.
type Word = mem.Word

// Region is a region handle. As in the paper, the handle itself is not a
// counted reference; Ptr values stored in heap words and frame slots are.
type Region = core.Region

// Frame is one activation's live region-pointer variables. Keep every live
// Ptr in a frame slot, exactly as the paper's compiler records live locals
// at call sites; DeleteRegion consults them.
type Frame = core.Frame

// CleanupID names a registered cleanup function.
type CleanupID = core.CleanupID

// CleanupFunc is the paper's cleanup_t: it must call Runtime.Destroy on
// every region pointer in the object and return the object's size in bytes.
type CleanupFunc = core.CleanupFunc

// Runtime is the underlying region runtime; exposed for cleanup functions,
// which receive it as their first argument.
type Runtime = core.Runtime

// Counters are the run's statistics (allocation volumes, cycle accounting).
type Counters = stats.Counters

// --- failure model --------------------------------------------------------------

// ErrOutOfMemory is the sentinel wrapped by every allocation failure caused
// by the simulated OS refusing pages; test with errors.Is.
var ErrOutOfMemory = mem.ErrOutOfMemory

// FaultPlan is a deterministic, seeded schedule of injected page-mapping
// failures: fail the Nth mapping, fail with probability p, or fail past a
// byte budget. Install one with System.SetFaultPlan.
type FaultPlan = mem.FaultPlan

// OOMError is the typed error describing one refused page mapping; it wraps
// ErrOutOfMemory.
type OOMError = mem.OOMError

// Fault is a structured runtime fault: kind, faulting address, region id,
// and context. Recoverable faults (FaultOOM) are returned by the Try*
// methods; invariant violations are raised as panics carrying a *Fault.
// Every fault is also emitted as an EvFault trace event before it unwinds.
type Fault = core.Fault

// FaultKind classifies a Fault.
type FaultKind = core.FaultKind

// Fault kinds.
const (
	FaultOOM             = core.FaultOOM
	FaultRCUnderflow     = core.FaultRCUnderflow
	FaultCorruptHeader   = core.FaultCorruptHeader
	FaultDeletedRegion   = core.FaultDeletedRegion
	FaultDanglingDestroy = core.FaultDanglingDestroy
	FaultStackUnderflow  = core.FaultStackUnderflow
	FaultInvariant       = core.FaultInvariant
	FaultDetachedRegion  = core.FaultDetachedRegion
	FaultMigratedRegion  = core.FaultMigratedRegion
)

// ParWorld, ParRegion, ParWorker and ParSlot form the paper's parallel
// extension: per-worker local reference counts, atomic-exchange pointer
// writes, and globally synchronized creation and deletion.
type (
	ParWorld  = core.ParWorld
	ParRegion = core.ParRegion
	ParWorker = core.ParWorker
	ParSlot   = core.ParSlot
)

// NewParWorld creates a parallel-region world for the given worker count.
func NewParWorld(workers int) *ParWorld { return core.NewParWorld(workers) }

// System is one simulated machine with a region runtime on it.
type System struct {
	rt *core.Runtime
	sp *mem.Space
}

// Option configures a System.
type Option func(*config)

type config struct {
	unsafe         bool
	cache          bool
	deferredDelete bool
	sweepBudget    int
	sweepHighWater int
	noStrPool      bool
	strPoolMax     int
	pageLimit      int
	faultPlan      *mem.FaultPlan
	tracer         *trace.Tracer
	metrics        *metrics.Registry
}

// Unsafe disables all reference counting, stack scanning, and cleanups, as
// in the paper's unsafe region library: DeleteRegion always succeeds, even
// with live external references.
func Unsafe() Option { return func(c *config) { c.unsafe = true } }

// WithCache attaches the UltraSparc-I cache model so the counters include
// read- and write-stall cycles.
func WithCache() Option { return func(c *config) { c.cache = true } }

// DeferredDelete makes DeleteRegion detach a region's pages instead of
// reclaiming them synchronously: the reference-count check, the cleanup
// walk, and the failure semantics are exactly as before, but poisoning and
// the per-page reclamation charge are left as "sweep debt" retired in
// bounded slices (SweepSlice, SweepDrain) or automatically, one slice per
// page acquisition, whenever debt exceeds the high-water mark. The
// allocation address stream is bit-identical to synchronous deletion.
func DeferredDelete() Option { return func(c *config) { c.deferredDelete = true } }

// WithSweepBudget caps the pages one sweep slice poisons (default 32). Only
// meaningful together with DeferredDelete.
func WithSweepBudget(pages int) Option { return func(c *config) { c.sweepBudget = pages } }

// WithSweepHighWater sets the sweep-debt page count above which every page
// acquisition first runs one sweep slice (default 8x the budget). Only
// meaningful together with DeferredDelete.
func WithSweepHighWater(pages int) Option { return func(c *config) { c.sweepHighWater = pages } }

// NoStrPool disables the pooled string allocator's free lists: FreeStr
// still retires a block's accounting, but the memory waits for region
// deletion instead of being parked for reuse. The escape hatch exists for
// A/B comparison — AllocStr's semantics and, for a program that never
// frees, its exact address stream are identical with pooling on or off.
func NoStrPool() Option { return func(c *config) { c.noStrPool = true } }

// WithStrPoolMax sets the pooled string allocator's capacity-class ceiling
// in bytes (default 2048, rounded up to a power of two). Frees above the
// ceiling are accounting-only and allocations above it are counted "Big".
func WithStrPoolMax(bytes int) Option { return func(c *config) { c.strPoolMax = bytes } }

// WithPageLimit caps the simulated OS at the given number of 4 KB pages
// from the first allocation on, exactly as calling SetPageLimit right after
// New would. SetPageLimit remains legal mid-run (it may raise, lower, or
// remove the cap); the option exists so a System's whole construction-time
// shape fits in one New call.
func WithPageLimit(pages int) Option { return func(c *config) { c.pageLimit = pages } }

// WithFaultPlan installs a deterministic injected-failure schedule at
// construction; see SetFaultPlan, which remains legal mid-run (installing a
// fresh plan resets its call counts, nil removes it).
func WithFaultPlan(p *FaultPlan) Option { return func(c *config) { c.faultPlan = p } }

// WithTracer attaches an event tracer at construction, so even the first
// region's create event is captured; see SetTracer, which remains legal
// mid-run for attaching, swapping, or detaching (nil) a tracer.
func WithTracer(t *Tracer) Option { return func(c *config) { c.tracer = t } }

// WithMetrics attaches a metrics registry at construction, so page mappings
// charged while warming the system are already counted; see SetMetrics,
// which remains legal mid-run (gauges re-seed on attach, nil detaches).
func WithMetrics(reg *MetricsRegistry) Option { return func(c *config) { c.metrics = reg } }

// New creates a System.
func New(opts ...Option) *System {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	c := &stats.Counters{}
	sp := mem.NewSpace(c)
	if cfg.cache {
		sp.AttachCache(cachesim.New(cachesim.UltraSparcI()))
	}
	rt := core.NewRuntimeOpts(sp, core.Options{
		Safe:           !cfg.unsafe,
		DeferredDelete: cfg.deferredDelete,
		SweepBudget:    cfg.sweepBudget,
		SweepHighWater: cfg.sweepHighWater,
		NoStrPool:      cfg.noStrPool,
		StrPoolMax:     cfg.strPoolMax,
	})
	s := &System{rt: rt, sp: sp}
	if cfg.pageLimit > 0 {
		s.SetPageLimit(cfg.pageLimit)
	}
	if cfg.faultPlan != nil {
		s.SetFaultPlan(cfg.faultPlan)
	}
	if cfg.tracer != nil {
		s.SetTracer(cfg.tracer)
	}
	if cfg.metrics != nil {
		s.SetMetrics(cfg.metrics)
	}
	return s
}

// Safe reports whether the system maintains reference counts.
func (s *System) Safe() bool { return s.rt.Safe() }

// Counters returns the system's statistics.
func (s *System) Counters() *Counters { return s.rt.Counters() }

// MappedBytes returns the memory requested from the simulated OS so far.
func (s *System) MappedBytes() uint64 { return s.sp.MappedBytes() }

// SetPageLimit caps the 4 KB pages the simulated OS will hand out — the
// analogue of ulimit -v. 0 removes the limit.
func (s *System) SetPageLimit(pages int) { s.sp.SetPageLimit(pages) }

// SetFaultPlan installs a deterministic schedule of injected page-mapping
// failures; nil removes it. Failed operations surface as *Fault errors from
// the Try* methods (or panics from the paper-shaped methods).
func (s *System) SetFaultPlan(p *FaultPlan) { s.sp.SetFaultPlan(p) }

// Verify audits every heap invariant the runtime maintains — page
// ownership, object headers, poisoned free pages, the shadow-stack
// high-water mark, and exact reference counts recomputed from heap contents
// — returning nil or a *Fault of kind FaultInvariant. It charges no
// simulated cycles.
func (s *System) Verify() error { return s.rt.Verify() }

// --- the paper's region interface -------------------------------------------

// NewRegion creates an empty region (the paper's newregion). It panics with
// a *Fault if the simulated OS refuses memory; TryNewRegion is the graceful
// variant.
func (s *System) NewRegion() *Region { return s.rt.NewRegion() }

// TryNewRegion is NewRegion returning an error (a *Fault wrapping
// ErrOutOfMemory) instead of panicking when the simulated OS refuses
// memory.
func (s *System) TryNewRegion() (*Region, error) { return s.rt.TryNewRegion() }

// DeleteRegion attempts to delete r (the paper's deleteregion). Under a
// safe system it fails, returning false, while external references to r's
// objects remain. Deleting an already-deleted region panics with a *Fault;
// TryDeleteRegion is the graceful variant.
func (s *System) DeleteRegion(r *Region) bool { return s.rt.DeleteRegion(r) }

// TryDeleteRegion is the deletion primitive DeleteRegion derives from: it
// reports whether r was deleted, returns (false, nil) while external
// references remain, and returns (false, *Fault) — instead of panicking —
// when r was already deleted. See docs/API.md for the full error contract.
func (s *System) TryDeleteRegion(r *Region) (bool, error) { return s.rt.TryDeleteRegion(r) }

// SweepSlice retires one bounded slice of sweep debt — up to the configured
// budget of detached pages are poisoned and their deferred reclamation
// charge paid — returning the pages swept (0 when no debt remains). Only
// meaningful under DeferredDelete; without it there is never debt.
func (s *System) SweepSlice() int { return s.rt.SweepSlice() }

// SweepDrain sweeps until no debt remains and returns the pages swept.
func (s *System) SweepDrain() int { return s.rt.SweepDrain() }

// SweepDebt returns the pages deleted-but-unswept under DeferredDelete.
func (s *System) SweepDebt() int { return s.rt.SweepDebt() }

// SweepDebtPeak returns the highest sweep debt the system ever carried.
func (s *System) SweepDebtPeak() int { return s.rt.SweepDebtPeak() }

// ResetSweepDebtPeak re-seeds the peak tracker from the current debt, so a
// driver can measure per-phase peaks: reset at a phase boundary, read
// SweepDebtPeak at the next. The debt itself is untouched.
func (s *System) ResetSweepDebtPeak() { s.rt.ResetSweepDebtPeak() }

// SweptPages returns the total pages the incremental sweeper has poisoned.
func (s *System) SweptPages() uint64 { return s.rt.SweptPages() }

// Ralloc allocates size bytes of cleared memory with the given cleanup in
// region r and returns its address.
func (s *System) Ralloc(r *Region, size int, cleanup CleanupID) Ptr {
	return s.rt.Ralloc(r, size, cleanup)
}

// RarrayAlloc allocates a cleared array of n elements of elemSize bytes;
// the cleanup runs once per element at deletion.
func (s *System) RarrayAlloc(r *Region, n, elemSize int, cleanup CleanupID) Ptr {
	return s.rt.RarrayAlloc(r, n, elemSize, cleanup)
}

// RstrAlloc allocates size bytes of region-pointer-free memory: no
// bookkeeping, no clearing, never scanned (the paper's rstralloc).
func (s *System) RstrAlloc(r *Region, size int) Ptr { return s.rt.RstrAlloc(r, size) }

// TryRalloc, TryRarrayAlloc and TryRstrAlloc are the graceful variants of
// the three allocators: on OOM they return a *Fault wrapping ErrOutOfMemory
// and leave the region unchanged, instead of panicking.
func (s *System) TryRalloc(r *Region, size int, cleanup CleanupID) (Ptr, error) {
	return s.rt.TryRalloc(r, size, cleanup)
}

// TryRarrayAlloc is the graceful variant of RarrayAlloc; see TryRalloc.
func (s *System) TryRarrayAlloc(r *Region, n, elemSize int, cleanup CleanupID) (Ptr, error) {
	return s.rt.TryRarrayAlloc(r, n, elemSize, cleanup)
}

// TryRstrAlloc is the graceful variant of RstrAlloc; see TryRalloc.
func (s *System) TryRstrAlloc(r *Region, size int) (Ptr, error) {
	return s.rt.TryRstrAlloc(r, size)
}

// RstrFree retires one RstrAlloc block of the given original size: the
// bytes stop counting as live and — unless NoStrPool, or size is above the
// pool ceiling — the block is poisoned and parked on the region's
// capacity-class free list, where a later RstrAlloc of a fitting size
// reuses it without bumping. Freeing is optional (regions reclaim
// everything at deletion, as in the paper) and panics on a pointer outside
// r or a size that does not match an allocation.
func (s *System) RstrFree(r *Region, p Ptr, size int) { s.rt.RstrFree(r, p, size) }

// TryRstrFree is the graceful variant of RstrFree: a pointer outside the
// region returns a *Fault instead of panicking.
func (s *System) TryRstrFree(r *Region, p Ptr, size int) error {
	return s.rt.TryRstrFree(r, p, size)
}

// RegionOf returns the region containing p, or nil (the paper's regionof).
func (s *System) RegionOf(p Ptr) *Region { return s.rt.RegionOf(p) }

// RegisterCleanup registers a cleanup function under a diagnostic name.
func (s *System) RegisterCleanup(name string, fn CleanupFunc) CleanupID {
	return s.rt.RegisterCleanup(name, fn)
}

// SizeCleanup returns a cleanup for pointer-free objects of a fixed size.
func (s *System) SizeCleanup(size int) CleanupID { return s.rt.SizeCleanup(size) }

// --- bound region handles ------------------------------------------------------

// Handle is a region handle bound to its System, so call sites stop
// threading (sys, region) pairs through every function. It is a small value
// type — copy it freely, pass it by value. The paper-shaped methods on
// System (Ralloc, DeleteRegion, ...) remain as the flat spelling of the
// same operations; a Handle adds nothing a (sys, r) pair does not have.
//
//	h := sys.Bind(sys.NewRegion())
//	p := h.Alloc(16, cln)
//	h.Delete()
type Handle struct {
	s *System
	r *Region
}

// Bind returns a handle binding r to this system.
func (s *System) Bind(r *Region) Handle { return Handle{s: s, r: r} }

// Region returns the underlying region handle.
func (h Handle) Region() *Region { return h.r }

// System returns the system the handle is bound to.
func (h Handle) System() *System { return h.s }

// Alloc allocates size bytes of cleared memory with the given cleanup in
// the bound region (Ralloc).
func (h Handle) Alloc(size int, cleanup CleanupID) Ptr { return h.s.Ralloc(h.r, size, cleanup) }

// AllocArray allocates a cleared array of n elements of elemSize bytes in
// the bound region (RarrayAlloc).
func (h Handle) AllocArray(n, elemSize int, cleanup CleanupID) Ptr {
	return h.s.RarrayAlloc(h.r, n, elemSize, cleanup)
}

// AllocStr allocates size bytes of region-pointer-free memory in the bound
// region (RstrAlloc).
func (h Handle) AllocStr(size int) Ptr { return h.s.RstrAlloc(h.r, size) }

// TryAlloc, TryAllocArray and TryAllocStr are the graceful variants of the
// three handle allocators; see System.TryRalloc.
func (h Handle) TryAlloc(size int, cleanup CleanupID) (Ptr, error) {
	return h.s.TryRalloc(h.r, size, cleanup)
}

// TryAllocArray is the graceful variant of AllocArray.
func (h Handle) TryAllocArray(n, elemSize int, cleanup CleanupID) (Ptr, error) {
	return h.s.TryRarrayAlloc(h.r, n, elemSize, cleanup)
}

// TryAllocStr is the graceful variant of AllocStr.
func (h Handle) TryAllocStr(size int) (Ptr, error) { return h.s.TryRstrAlloc(h.r, size) }

// FreeStr retires one AllocStr block for reuse within the bound region
// (RstrFree).
func (h Handle) FreeStr(p Ptr, size int) { h.s.RstrFree(h.r, p, size) }

// TryFreeStr is the graceful variant of FreeStr.
func (h Handle) TryFreeStr(p Ptr, size int) error { return h.s.TryRstrFree(h.r, p, size) }

// Delete attempts to delete the bound region (DeleteRegion).
func (h Handle) Delete() bool { return h.s.DeleteRegion(h.r) }

// TryDelete is the graceful variant of Delete; see System.TryDeleteRegion.
func (h Handle) TryDelete() (bool, error) { return h.s.TryDeleteRegion(h.r) }

// Referrers reports every tracked location still referencing the bound
// region — the first place to look when Delete returns false.
func (h Handle) Referrers() []Ref { return h.s.Referrers(h.r) }

// --- region migration ----------------------------------------------------------

// RegionRecord is one quiesced region serialized for transport between
// Systems: page images, allocator state, and cleanup references by name.
// Produce one with ExportRegion, consume it exactly once with ImportRegion
// on the destination; Translate maps pointers a driver captured into the
// old placement onto the new one.
type RegionRecord = core.RegionRecord

// Migration refusal sentinels; test with errors.Is. ExportRegion refuses —
// leaving the region fully usable — rather than move a region that is not
// quiescent; ImportRegion refuses a record whose cleanup names the
// receiving System has never registered.
var (
	ErrExportReferenced  = core.ErrExportReferenced
	ErrExportCrossRegion = core.ErrExportCrossRegion
	ErrImportCleanup     = core.ErrImportCleanup
)

// ExportRegion serializes the quiesced region r into a portable record and
// releases its pages: r must have a zero exact reference count (no heap,
// global, or frame references — ErrExportReferenced otherwise) and no
// scanned pointers into other regions (ErrExportCrossRegion). On success r
// is a tombstone: any later use faults with FaultMigratedRegion, exactly as
// a deleted region faults with FaultDeletedRegion.
func (s *System) ExportRegion(r *Region) (*RegionRecord, error) { return s.rt.ExportRegion(r) }

// ImportRegion materializes a record exported from another System (or this
// one): fresh pages, intra-region pointers rewritten to the new placement
// in O(pages), cleanup ids remapped by registered name. The receiving
// System must have registered every cleanup name the record references
// (RegisterCleanup/SizeCleanup) — ErrImportCleanup before anything is
// acquired otherwise. On OOM the partial placement is rolled back and the
// record stays valid for a retry.
func (s *System) ImportRegion(rec *RegionRecord) (*Region, error) { return s.rt.ImportRegion(rec) }

// Exportable reports whether ExportRegion would accept r right now, without
// charging cycles or disturbing anything — the advisory probe a placement
// policy uses to pick a migration candidate.
func (s *System) Exportable(r *Region) bool { return s.rt.Exportable(r) }

// ContentChecksum digests r's live content in a placement-independent way:
// intra-region pointers are relativized, so a region and its imported copy
// on another System produce the same digest. Charges no simulated cycles.
func (s *System) ContentChecksum(r *Region) uint32 { return s.rt.ContentChecksum(r) }

// LiveRegions returns the system's live (not deleted, not migrated)
// regions in creation order.
func (s *System) LiveRegions() []*Region { return s.rt.LiveRegions() }

// --- memory access and barriers ----------------------------------------------

// Load reads the word at the 4-byte-aligned address p.
func (s *System) Load(p Ptr) Word { return s.sp.Load(p) }

// Store writes a non-pointer word. Region pointers must be written with
// StorePtr or StoreGlobalPtr so the reference counts stay exact.
func (s *System) Store(p Ptr, v Word) { s.sp.Store(p, v) }

// StorePtr writes the region pointer val into the heap word slot inside a
// region object, applying the paper's region-write barrier.
func (s *System) StorePtr(slot, val Ptr) { s.rt.StorePtr(slot, val) }

// StoreGlobalPtr writes a region pointer into global storage, applying the
// paper's global-write barrier.
func (s *System) StoreGlobalPtr(slot, val Ptr) { s.rt.StoreGlobalPtr(slot, val) }

// StorePtrDynamic classifies slot at run time, for writes the "compiler"
// cannot classify statically.
func (s *System) StorePtrDynamic(slot, val Ptr) { s.rt.StorePtrDynamic(slot, val) }

// AllocGlobals reserves nwords words of global storage.
func (s *System) AllocGlobals(nwords int) Ptr { return s.rt.AllocGlobals(nwords) }

// --- local variables -----------------------------------------------------------

// PushFrame enters an activation with n region-pointer slots.
func (s *System) PushFrame(n int) *Frame { return s.rt.PushFrame(n) }

// PopFrame leaves the innermost activation, unscanning a scanned caller
// frame as control returns to it.
func (s *System) PopFrame() { s.rt.PopFrame() }

// --- debugging ------------------------------------------------------------------

// Ref is one location holding a reference into a region, reported by
// Referrers; RefKind classifies it.
type (
	Ref     = core.Ref
	RefKind = core.RefKind
)

// Reference location kinds.
const (
	RefHeap   = core.RefHeap
	RefGlobal = core.RefGlobal
	RefFrame  = core.RefFrame
)

// Referrers reports every tracked location that still references r — the
// region-debugging aid the paper wished for when hunting the stale pointers
// that make DeleteRegion fail. It charges no simulated cycles.
func (s *System) Referrers(r *Region) []Ref { return s.rt.Referrers(r) }

// --- observability --------------------------------------------------------------

// Tracer is a fixed-capacity ring buffer of runtime events; Event is one
// recorded event and EventKind its type. The event schema, the sinks
// (JSONL, Chrome trace_event), and the lifetime analysis are documented in
// docs/OBSERVABILITY.md and driven end to end by cmd/regiontrace.
type (
	Tracer    = trace.Tracer
	Event     = trace.Event
	EventKind = trace.Kind
)

// Event kinds, re-exported for filtering trace output.
const (
	EvRegionCreate     = trace.KindRegionCreate
	EvRegionDelete     = trace.KindRegionDelete
	EvRegionDeleteFail = trace.KindRegionDeleteFail
	EvRalloc           = trace.KindRalloc
	EvRarrayAlloc      = trace.KindRarrayAlloc
	EvRstrAlloc        = trace.KindRstrAlloc
	EvBarrierGlobal    = trace.KindBarrierGlobal
	EvBarrierRegion    = trace.KindBarrierRegion
	EvBarrierElided    = trace.KindBarrierElided
	EvStackScan        = trace.KindStackScan
	EvStackUnscan      = trace.KindStackUnscan
	EvCleanup          = trace.KindCleanup
	EvDestroy          = trace.KindDestroy
	EvFault            = trace.KindFault
	EvMigrate          = trace.KindMigrate
	EvRstrFree         = trace.KindRstrFree
)

// NewTracer returns a tracer holding the last capacity events (a default
// capacity is used when capacity <= 0).
func NewTracer(capacity int) *Tracer { return trace.New(capacity) }

// SetTracer attaches t to the system: every region operation then emits one
// typed event, timestamped with the system's modelled cycle count. Pass nil
// to detach. A system without a tracer pays one nil check per operation and
// charges no simulated cycles either way.
func (s *System) SetTracer(t *Tracer) { s.rt.SetTracer(t) }

// Trace returns the attached tracer, or nil.
func (s *System) Trace() *Tracer { return s.rt.Tracer() }

// --- metrics and heap profiling -------------------------------------------------

// MetricsRegistry is a registry of live counters, gauges, and fixed-bucket
// histograms updated by the runtime as it works, the always-on companion to
// the event-level Tracer. Snapshot gives a consistent, diffable reading;
// WritePrometheus and WriteJSON render it. See docs/OBSERVABILITY.md.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is one consistent, sorted reading of a registry.
type MetricsSnapshot = metrics.Snapshot

// HeapReport is a structural census of the simulated heap: per-region live,
// bookkeeping, free, and fragmented bytes, page counts, occupancy, and an
// allocation-site census — produced by System.HeapProfile.
type HeapReport = metrics.HeapReport

// NewMetricsRegistry returns an empty metrics registry ready to attach.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// SetMetrics attaches reg to the system: the runtime and its simulated OS
// then update live counters, gauges, and histograms as they work. Pass nil
// to detach. Like tracing, metrics are host-side observability: a system
// without a registry pays one nil check per operation, and a metered run
// charges exactly the same simulated cycles as a bare one.
func (s *System) SetMetrics(reg *MetricsRegistry) {
	s.rt.SetMetrics(reg)
	s.sp.SetMetrics(reg)
}

// Metrics returns the attached metrics registry, or nil.
func (s *System) Metrics() *MetricsRegistry { return s.rt.Metrics() }

// HeapProfile walks the heap — reusing the same audited page walk as Verify
// — and returns a per-region census of where every byte went: live data,
// allocator bookkeeping, free space in open pages, and fragmentation. It
// charges no simulated cycles and fails only if the heap's structural
// invariants do not hold.
func (s *System) HeapProfile() (*HeapReport, error) { return s.rt.HeapReport() }
