// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 5). Each BenchmarkTableN / BenchmarkFigureN renders the full
// artifact once per iteration at a reduced workload; the per-application
// benchmarks measure single (app, allocator) cells and report the modelled
// simulated cycles alongside wall-clock time.
//
// Paper-sized runs: go run ./cmd/regionbench -scale-div 1 -all
package regions_test

import (
	"fmt"
	"io"
	"testing"

	"regions"
	"regions/internal/apps/appkit"
	"regions/internal/bench"
)

// benchDiv shrinks workloads so `go test -bench .` completes quickly while
// exercising every experiment's full code path.
const benchDiv = 24

func BenchmarkTable1Diff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table1(io.Discard)
	}
}

func BenchmarkTable2Regions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table2(io.Discard, bench.NewSuite(benchDiv))
	}
}

func BenchmarkTable3Malloc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table3(io.Discard, bench.NewSuite(benchDiv))
	}
}

func BenchmarkFigure8MemoryOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure8(io.Discard, bench.NewSuite(benchDiv))
	}
}

func BenchmarkFigure9ExecutionTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure9(io.Discard, bench.NewSuite(benchDiv))
	}
}

func BenchmarkFigure10Stalls(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure10(io.Discard, bench.NewSuite(benchDiv))
	}
}

func BenchmarkFigure11CostOfSafety(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure11(io.Discard, bench.NewSuite(benchDiv))
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Ablations(io.Discard, bench.NewSuite(benchDiv))
	}
}

// BenchmarkApps measures every (application, environment) cell of Figures
// 8-9 individually: the four malloc allocators, the conservative collector,
// and the safe and unsafe region libraries.
func BenchmarkApps(b *testing.B) {
	for _, app := range bench.Apps() {
		app := app
		scale := app.DefaultScale / benchDiv
		if scale < 1 {
			scale = 1
		}
		for _, kind := range appkit.MallocKinds {
			kind := kind
			b.Run(app.Name+"/"+kind, func(b *testing.B) {
				var cycles uint64
				for i := 0; i < b.N; i++ {
					if app.UsesEmulation {
						e := appkit.NewRegionEnv("emu:"+kind, appkit.Config{})
						app.Region(e, scale)
						c := e.Counters()
						cycles = c.TotalCycles()
					} else {
						e := appkit.NewMallocEnv(kind, appkit.Config{})
						app.Malloc(e, scale)
						c := e.Counters()
						cycles = c.TotalCycles()
					}
				}
				b.ReportMetric(float64(cycles)/1e6, "Mcycles/op")
			})
		}
		for _, kind := range []string{"safe", "unsafe"} {
			kind := kind
			b.Run(app.Name+"/regions-"+kind, func(b *testing.B) {
				var cycles uint64
				for i := 0; i < b.N; i++ {
					e := appkit.NewRegionEnv(kind, appkit.Config{})
					app.Region(e, scale)
					c := e.Counters()
					cycles = c.TotalCycles()
				}
				b.ReportMetric(float64(cycles)/1e6, "Mcycles/op")
			})
		}
	}
}

// BenchmarkAlloc measures the wall-clock cost of the allocation fast path
// with observability disabled (the shipping configuration: one nil check
// per operation) against runs with a tracer and with a metrics registry
// attached. The bare variant is the acceptance gate for the observability
// layers: it must stay within noise of the pre-observability runtime.
func BenchmarkAlloc(b *testing.B) {
	run := func(b *testing.B, t *regions.Tracer, m *regions.MetricsRegistry) {
		sys := regions.New()
		sys.SetTracer(t)
		sys.SetMetrics(m)
		cln := sys.SizeCleanup(16)
		r := sys.NewRegion()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Ralloc(r, 16, cln)
			if i%4096 == 4095 { // keep the region from growing unboundedly
				sys.DeleteRegion(r)
				r = sys.NewRegion()
			}
		}
	}
	b.Run("untraced", func(b *testing.B) { run(b, nil, nil) })
	b.Run("traced", func(b *testing.B) { run(b, regions.NewTracer(1<<16), nil) })
	b.Run("metered", func(b *testing.B) { run(b, nil, regions.NewMetricsRegistry()) })
}

// TestAllocFastPathAllocsPerRun gates the allocation fast path: amortized
// over region rotation, an Ralloc must cost (well) under a quarter of a Go
// heap allocation — the bump-pointer path itself allocates nothing; only
// page and region bookkeeping every few thousand operations does. The same
// budget must hold with a metrics registry attached: the hot counters are
// pre-created atomics, so metering adds arithmetic, not Go allocations.
func TestAllocFastPathAllocsPerRun(t *testing.T) {
	for _, metered := range []bool{false, true} {
		name := "bare"
		if metered {
			name = "metered"
		}
		t.Run(name, func(t *testing.T) {
			sys := regions.New()
			if metered {
				sys.SetMetrics(regions.NewMetricsRegistry())
			}
			cln := sys.SizeCleanup(16)
			r := sys.NewRegion()
			i := 0
			avg := testing.AllocsPerRun(20000, func() {
				sys.Ralloc(r, 16, cln)
				i++
				if i%4096 == 0 {
					sys.DeleteRegion(r)
					r = sys.NewRegion()
				}
			})
			if avg >= 0.25 {
				t.Fatalf("alloc fast path costs %.3f Go allocs/op, want < 0.25", avg)
			}
		})
	}
}

// TestMeteredCountersUnchanged is the observability layers' core contract:
// attaching a tracer and a metrics registry must not change the simulated
// machine. A workload run bare and run fully instrumented must report
// identical stats.Counters, cycle for cycle.
func TestMeteredCountersUnchanged(t *testing.T) {
	workload := func(sys *regions.System) {
		cln := sys.SizeCleanup(16)
		g := sys.AllocGlobals(4)
		outer := sys.NewRegion()
		f := sys.PushFrame(2)
		for i := 0; i < 200; i++ {
			r := sys.NewRegion()
			f.Set(0, sys.Ralloc(r, 16, cln))
			p := sys.Ralloc(r, 48, cln)
			q := sys.Ralloc(outer, 16, cln)
			sys.StorePtr(p, q)
			sys.StorePtr(p+4, f.Get(0)) // sameregion
			sys.StoreGlobalPtr(g, p)
			sys.RstrAlloc(r, 33)
			sys.RarrayAlloc(r, 4, 12, cln)
			sys.StoreGlobalPtr(g, 0)
			sys.StorePtr(p, 0)
			sys.StorePtr(p+4, 0)
			f.Set(0, 0)
			if !sys.DeleteRegion(r) {
				t.Fatal("inner region did not delete")
			}
		}
		sys.PopFrame()
		if !sys.DeleteRegion(outer) {
			t.Fatal("outer region did not delete")
		}
	}

	bare := regions.New()
	workload(bare)

	instrumented := regions.New()
	instrumented.SetTracer(regions.NewTracer(1 << 12))
	reg := regions.NewMetricsRegistry()
	reg.SetSiteSampling(8)
	instrumented.SetMetrics(reg)
	workload(instrumented)

	if *bare.Counters() != *instrumented.Counters() {
		t.Errorf("instrumented counters differ from bare run:\nbare:         %+v\ninstrumented: %+v",
			*bare.Counters(), *instrumented.Counters())
	}
	snap := reg.Snapshot()
	// 5 allocations per loop iteration: three rallocs, one rstralloc, one
	// rarrayalloc.
	if v, _ := snap.Counter("regions_core_allocs_total"); v != 200*5 {
		t.Errorf("regions_core_allocs_total = %d, want %d", v, 200*5)
	}
	if v, _ := snap.Counter("regions_core_barrier_sameregion_total"); v == 0 {
		t.Error("sameregion barrier counter never incremented")
	}
	if _, err := instrumented.HeapProfile(); err != nil {
		t.Errorf("HeapProfile after workload: %v", err)
	}
}

// BenchmarkRegionOf measures the public page→region lookup (backed by the
// dense page-index array) against a hash-map replica of the same relation,
// over an identical pointer stream.
func BenchmarkRegionOf(b *testing.B) {
	sys := regions.New()
	cln := sys.SizeCleanup(64)
	var ptrs []regions.Ptr
	for i := 0; i < 64; i++ {
		r := sys.NewRegion()
		for j := 0; j < 32; j++ {
			ptrs = append(ptrs, sys.Ralloc(r, 64, cln))
		}
	}
	b.Run("dense", func(b *testing.B) {
		var sink *regions.Region
		for i := 0; i < b.N; i++ {
			sink = sys.RegionOf(ptrs[i%len(ptrs)])
		}
		_ = sink
	})
	b.Run("map", func(b *testing.B) {
		const pageShift = 12
		replica := make(map[uint32]*regions.Region, len(ptrs))
		for _, p := range ptrs {
			replica[uint32(p>>pageShift)] = sys.RegionOf(p)
		}
		b.ResetTimer()
		var sink *regions.Region
		for i := 0; i < b.N; i++ {
			sink = replica[uint32(ptrs[i%len(ptrs)]>>pageShift)]
		}
		_ = sink
	})
}

// BenchmarkShardThroughput runs the six apps through the shard engine at
// increasing shard counts; compare the reported sim-Mcycles/op (the
// simulated makespan) across sub-benchmarks to see the modelled scaling.
func BenchmarkShardThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				r, err := bench.RunThroughput(shards, benchDiv, 2)
				if err != nil {
					b.Fatal(err)
				}
				makespan = r.SimMakespanMcycles
			}
			b.ReportMetric(makespan, "sim-Mcycles/op")
		})
	}
}

// BenchmarkCorePrimitives measures the region runtime's primitive costs.
func BenchmarkCorePrimitives(b *testing.B) {
	b.Run("ralloc16", func(b *testing.B) {
		e := appkit.NewRegionEnv("safe", appkit.Config{})
		cln := e.SizeCleanup(16)
		r := e.NewRegion()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Ralloc(r, 16, cln)
			if i%4096 == 4095 { // keep the region from growing unboundedly
				e.DeleteRegion(r)
				r = e.NewRegion()
			}
		}
	})
	b.Run("region-write-barrier", func(b *testing.B) {
		e := appkit.NewRegionEnv("safe", appkit.Config{})
		cln := e.SizeCleanup(16)
		r := e.NewRegion()
		p := e.Ralloc(r, 16, cln)
		q := e.Ralloc(r, 16, cln)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.StorePtr(p, q)
		}
	})
	b.Run("new-delete-region", func(b *testing.B) {
		e := appkit.NewRegionEnv("safe", appkit.Config{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := e.NewRegion()
			if !e.DeleteRegion(r) {
				b.Fatal("delete failed")
			}
		}
	})
}
