package textdiff

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestIdentical(t *testing.T) {
	e := DiffTexts("a\nb\nc\n", "a\nb\nc\n")
	if e.Deleted != 0 || e.Inserted != 0 || e.Common != 3 {
		t.Fatalf("got %+v", e)
	}
	if e.Changed() != 0 {
		t.Fatalf("Changed=%d", e.Changed())
	}
}

func TestDisjoint(t *testing.T) {
	e := DiffTexts("a\nb\n", "x\ny\nz\n")
	if e.Deleted != 2 || e.Inserted != 3 || e.Common != 0 {
		t.Fatalf("got %+v", e)
	}
	if e.Changed() != 3 {
		t.Fatalf("Changed=%d", e.Changed())
	}
}

func TestSimpleEdit(t *testing.T) {
	a := "one\ntwo\nthree\nfour\n"
	b := "one\nTWO\nthree\nfour\nfive\n"
	e := DiffTexts(a, b)
	if e.Deleted != 1 || e.Inserted != 2 || e.Common != 3 {
		t.Fatalf("got %+v", e)
	}
}

func TestEmpty(t *testing.T) {
	if e := DiffTexts("", ""); e.Common != 0 || e.Changed() != 0 {
		t.Fatalf("got %+v", e)
	}
	if e := DiffTexts("", "a\nb\n"); e.Inserted != 2 {
		t.Fatalf("got %+v", e)
	}
	if e := DiffTexts("a\nb\n", ""); e.Deleted != 2 {
		t.Fatalf("got %+v", e)
	}
}

func TestLines(t *testing.T) {
	if got := Lines("a\nb\n"); len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if got := Lines("a\nb"); len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if got := Lines(""); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

// TestQuickDiffInvariants checks the fundamental identities of any diff:
// Common + Deleted = len(a), Common + Inserted = len(b), and the edit
// distance is minimal for known transformations.
func TestQuickDiffInvariants(t *testing.T) {
	words := []string{"alpha", "beta", "gamma", "delta", "eps"}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func(n int) []string {
			out := make([]string, n)
			for i := range out {
				out[i] = words[r.Intn(len(words))]
			}
			return out
		}
		a, b := mk(r.Intn(30)), mk(r.Intn(30))
		e := Diff(a, b)
		if e.Common+e.Deleted != len(a) || e.Common+e.Inserted != len(b) {
			t.Logf("identity violated: %+v for %v / %v", e, a, b)
			return false
		}
		// Diff against self is empty.
		if self := Diff(a, a); self.Deleted != 0 || self.Inserted != 0 {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestKnownMinimalEdit(t *testing.T) {
	// Deleting k lines from a document must cost exactly k deletions.
	doc := strings.Split("a b c d e f g h i j", " ")
	for k := 1; k < 5; k++ {
		b := append(append([]string{}, doc[:3]...), doc[3+k:]...)
		e := Diff(doc, b)
		if e.Deleted != k || e.Inserted != 0 {
			t.Fatalf("delete %d: got %+v", k, e)
		}
	}
}
