// Package textdiff implements a line-oriented Myers diff, used to regenerate
// the paper's Table 1: the number of lines changed between each benchmark's
// malloc/free version and its region version (the paper used "diff -f").
package textdiff

import "strings"

// Lines splits text into lines, dropping a trailing empty line.
func Lines(text string) []string {
	lines := strings.Split(text, "\n")
	if n := len(lines); n > 0 && lines[n-1] == "" {
		return lines[:n-1]
	}
	return lines
}

// EditScript is the result of a diff: lines only in a, and lines only in b.
type EditScript struct {
	Deleted  int // lines present only in a
	Inserted int // lines present only in b
	Common   int // lines shared (the LCS length)
}

// Changed returns the larger of insertions and deletions: the number of
// "changed or extra lines" in b relative to a, the measure Table 1 reports.
func (e EditScript) Changed() int {
	if e.Inserted > e.Deleted {
		return e.Inserted
	}
	return e.Deleted
}

// Diff computes the line diff between a and b using the Myers O(ND)
// algorithm (greedy forward version).
func Diff(a, b []string) EditScript {
	n, m := len(a), len(b)
	max := n + m
	if max == 0 {
		return EditScript{}
	}
	// v[k+max] = furthest x on diagonal k.
	v := make([]int, 2*max+1)
	for d := 0; d <= max; d++ {
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[k-1+max] < v[k+1+max]) {
				x = v[k+1+max] // down: insertion
			} else {
				x = v[k-1+max] + 1 // right: deletion
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[k+max] = x
			if x >= n && y >= m {
				// d = deletions + insertions; recover the split from k:
				// deletions - insertions = ... x - y at the end relates to
				// n - m, so: deletions = (d + n - m) / 2.
				del := (d + n - m) / 2
				ins := d - del
				return EditScript{
					Deleted:  del,
					Inserted: ins,
					Common:   n - del,
				}
			}
		}
	}
	return EditScript{Deleted: n, Inserted: m}
}

// DiffTexts is Diff over raw strings.
func DiffTexts(a, b string) EditScript {
	return Diff(Lines(a), Lines(b))
}
