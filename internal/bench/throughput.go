package bench

import (
	"fmt"
	"time"

	"regions/internal/apps/appkit"
	"regions/internal/metrics"
	"regions/internal/shard"
)

// ThroughputResult is one whole-app throughput run: every benchmark app
// submitted Repeats times to an engine of Shards shards. Wall-clock numbers
// depend on the host; the simulated makespan (the maximum modelled cycle
// count over shards, since shards are independent machines running
// concurrently) is deterministic and is what scaling claims should cite.
type ThroughputResult struct {
	Shards             int     `json:"shards"`
	Tasks              int     `json:"tasks"`
	WallSeconds        float64 `json:"wallSeconds"`
	TasksPerSec        float64 `json:"tasksPerSec"`
	SimMakespanMcycles float64 `json:"simMakespanMcycles"`
	SimTotalMcycles    float64 `json:"simTotalMcycles"`
	// SimSpeedup is the 1-shard makespan divided by this run's makespan;
	// filled by ThroughputSweep, 0 on standalone runs.
	SimSpeedup float64 `json:"simSpeedup,omitempty"`
	Checksum   uint32  `json:"checksum"`
	// PerShardMcycles is each shard's simulated busy cycles in shard
	// order — the per-run view of regions_shard_busy_cycles_total. With
	// stealing enabled the split depends on host timing; the checksum and
	// the per-task work do not.
	PerShardMcycles []float64 `json:"perShardMcycles,omitempty"`
	// BusyRatio is max/min over PerShardMcycles: 1.0 is perfect balance.
	BusyRatio float64 `json:"busyRatio,omitempty"`
	// Steals counts tasks that ran away from their home shard.
	Steals uint64 `json:"steals,omitempty"`
}

// ThroughputOpts are the optional knobs of RunThroughputOpts. The zero
// value reproduces RunThroughput exactly.
type ThroughputOpts struct {
	// Metrics, when non-nil, is attached to every shard (see shard.Config).
	Metrics *metrics.Registry
	// HeapProfileEvery is forwarded to shard.Config: capture a heap profile
	// on each shard every N completed tasks (0 disables).
	HeapProfileEvery int
	// OnEngine, when non-nil, receives the engine right after it starts —
	// before any task is submitted — so a caller can hold it for live
	// inspection (regionbench's /heap endpoint).
	OnEngine func(*shard.Engine)
	// NoSteal pins every task to its home shard (see shard.Config.NoSteal);
	// the imbalance benchmark uses it as the A side of its A/B.
	NoSteal bool
}

// RunThroughput drives the six benchmark apps through a shard engine:
// repeats copies of each app, submitted app-major so round-robin placement
// spreads each app's copies across shards. Returns an error if any task
// failed.
func RunThroughput(shards, scaleDiv, repeats int) (ThroughputResult, error) {
	return RunThroughputOpts(shards, scaleDiv, repeats, ThroughputOpts{})
}

// RunThroughputOpts is RunThroughput with observability hooks attached.
func RunThroughputOpts(shards, scaleDiv, repeats int, opts ThroughputOpts) (ThroughputResult, error) {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	if repeats < 1 {
		repeats = 1
	}
	engOpts := []shard.Option{shard.WithShards(shards), shard.WithMetrics(opts.Metrics),
		shard.WithHeapProfileEvery(opts.HeapProfileEvery)}
	if opts.NoSteal {
		engOpts = append(engOpts, shard.WithNoSteal())
	}
	eng := shard.NewEngine(engOpts...)
	if opts.OnEngine != nil {
		opts.OnEngine(eng)
	}
	var tasks []shard.Task
	for _, app := range Apps() {
		app := app
		scale := app.DefaultScale / scaleDiv
		if scale < 1 {
			scale = 1
		}
		for rep := 0; rep < repeats; rep++ {
			tasks = append(tasks, shard.Task{
				Name: app.Name,
				Run:  func(e appkit.RegionEnv) uint32 { return app.Region(e, scale) },
			})
		}
	}
	start := time.Now()
	eng.SubmitBatch(tasks)
	agg := eng.Close()
	wall := time.Since(start).Seconds()
	if agg.Failures > 0 {
		for _, s := range agg.PerShard {
			if s.LastError != "" {
				return ThroughputResult{}, fmt.Errorf("bench: %d task failures, e.g. %s", agg.Failures, s.LastError)
			}
		}
		return ThroughputResult{}, fmt.Errorf("bench: %d task failures", agg.Failures)
	}
	res := ThroughputResult{
		Shards:             shards,
		Tasks:              int(agg.Tasks),
		WallSeconds:        wall,
		TasksPerSec:        float64(agg.Tasks) / wall,
		SimMakespanMcycles: float64(agg.MakespanCycles) / 1e6,
		SimTotalMcycles:    float64(agg.TotalCycles) / 1e6,
		Checksum:           agg.Checksum,
		Steals:             agg.Steals,
	}
	res.PerShardMcycles, res.BusyRatio = perShardBalance(agg)
	return res, nil
}

// perShardBalance extracts each shard's simulated busy cycles and the
// max/min balance ratio (1.0 = perfect balance; min is floored at one cycle
// so a shard the scheduler left idle yields a huge ratio, not a division by
// zero).
func perShardBalance(agg shard.Aggregate) ([]float64, float64) {
	if len(agg.PerShard) == 0 {
		return nil, 0
	}
	per := make([]float64, len(agg.PerShard))
	min, max := agg.PerShard[0].SimCycles, agg.PerShard[0].SimCycles
	for i, s := range agg.PerShard {
		per[i] = float64(s.SimCycles) / 1e6
		if s.SimCycles < min {
			min = s.SimCycles
		}
		if s.SimCycles > max {
			max = s.SimCycles
		}
	}
	if min == 0 {
		min = 1
	}
	return per, float64(max) / float64(min)
}

// ThroughputSweep runs the same workload at every shard count, checks the
// aggregate checksum is placement-independent, and fills each result's
// simulated speedup relative to the 1-shard run.
func ThroughputSweep(scaleDiv, repeats int, shardCounts []int) ([]ThroughputResult, error) {
	return ThroughputSweepOpts(scaleDiv, repeats, shardCounts, ThroughputOpts{})
}

// ThroughputSweepOpts is ThroughputSweep with observability hooks. A shared
// opts.Metrics registry accumulates across the whole sweep: its final
// snapshot describes everything the sweep did, which is what the benchmark
// report embeds.
func ThroughputSweepOpts(scaleDiv, repeats int, shardCounts []int, opts ThroughputOpts) ([]ThroughputResult, error) {
	var out []ThroughputResult
	for _, n := range shardCounts {
		r, err := RunThroughputOpts(n, scaleDiv, repeats, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	base := out[0]
	for i := range out {
		if out[i].Checksum != base.Checksum {
			return nil, fmt.Errorf("bench: checksum at %d shards = %#x, want %#x — placement changed results",
				out[i].Shards, out[i].Checksum, base.Checksum)
		}
		if out[i].SimMakespanMcycles > 0 {
			out[i].SimSpeedup = base.SimMakespanMcycles / out[i].SimMakespanMcycles
		}
	}
	return out, nil
}
