package bench

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTempReport(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLoadReportErrors pins the fail-fast contract: every malformed artifact
// produces a descriptive error naming the problem, never a panic and never a
// silent zero report.
func TestLoadReportErrors(t *testing.T) {
	if _, err := LoadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil ||
		!strings.Contains(err.Error(), "read report") {
		t.Errorf("missing file: err = %v, want read error", err)
	}
	cases := []struct{ name, content, want string }{
		{"bad-json", "{not json", "parse report"},
		{"wrong-schema", `{"schema":"other/v1","schema_version":2}`, "not a regions-bench report"},
		{"old-version", `{"schema":"regions-bench/v1","schema_version":1}`, "schema_version 1"},
	}
	for _, c := range cases {
		_, err := LoadReport(writeTempReport(t, c.name+".json", c.content))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	r := &Report{Schema: "regions-bench/v2", SchemaVersion: ReportSchemaVersion,
		ScaleDiv: 4, Repeats: 2,
		Micro: []MicroResult{{Name: "ralloc/16B", Ops: 10, SimCyclesPerOp: 16}}}
	var buf bytes.Buffer
	if err := EncodeBenchReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(writeTempReport(t, "ok.json", buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.ScaleDiv != 4 || got.Repeats != 2 || len(got.Micro) != 1 || got.Micro[0].Name != "ralloc/16B" {
		t.Fatalf("round trip mangled report: %+v", got)
	}
}

// TestCompareReportsMicroGate exercises the regression decision: an
// improvement and a new benchmark never fail, growth inside the threshold
// passes, growth beyond it is reported with the offending name.
func TestCompareReportsMicroGate(t *testing.T) {
	old := &Report{ScaleDiv: 4, Repeats: 2, Micro: []MicroResult{
		{Name: "a", SimCyclesPerOp: 10},
		{Name: "b", SimCyclesPerOp: 20},
	}}
	cur := &Report{ScaleDiv: 4, Repeats: 2, Micro: []MicroResult{
		{Name: "a", SimCyclesPerOp: 6},    // improvement
		{Name: "b", SimCyclesPerOp: 20.5}, // +2.5%, inside the 5% threshold
		{Name: "c", SimCyclesPerOp: 99},   // new benchmark: no baseline, no regression
	}}
	var buf bytes.Buffer
	if regs := CompareReports(&buf, old, cur, DefaultCompareThreshold); len(regs) != 0 {
		t.Fatalf("regressions on an improving run: %v", regs)
	}
	for _, want := range []string{"a", "b", "c", "new"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("delta table missing %q:\n%s", want, buf.String())
		}
	}

	cur.Micro[1].SimCyclesPerOp = 22 // +10%
	regs := CompareReports(io.Discard, old, cur, DefaultCompareThreshold)
	if len(regs) != 1 || !strings.Contains(regs[0], "b:") {
		t.Fatalf("regressions = %v, want exactly one naming b", regs)
	}
}

// TestCompareReportsChecksumGate: checksum drift fails only when the configs
// match — at a different scale the workloads legitimately differ, so the
// comparison is context, not a gate.
func TestCompareReportsChecksumGate(t *testing.T) {
	old := &Report{ScaleDiv: 4, Repeats: 2,
		Throughput: []ThroughputResult{{Shards: 4, Checksum: 0x1234}}}
	cur := &Report{ScaleDiv: 4, Repeats: 2,
		Throughput: []ThroughputResult{{Shards: 4, Checksum: 0x9999}}}
	regs := CompareReports(io.Discard, old, cur, DefaultCompareThreshold)
	if len(regs) != 1 || !strings.Contains(regs[0], "checksum") {
		t.Fatalf("regressions = %v, want one checksum mismatch", regs)
	}

	cur.ScaleDiv = 8 // different workload size: context only
	if regs := CompareReports(io.Discard, old, cur, DefaultCompareThreshold); len(regs) != 0 {
		t.Fatalf("checksum flagged across differing configs: %v", regs)
	}
}
