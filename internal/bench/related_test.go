package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"regions/internal/mem"
	"regions/internal/stats"
	"regions/internal/xmalloc"
)

func jsonUnmarshal(b []byte, v interface{}) error { return json.Unmarshal(b, v) }

func TestVmallocPoliciesRender(t *testing.T) {
	var buf bytes.Buffer
	VmallocPolicies(&buf)
	out := buf.String()
	for _, want := range []string{"last", "pool", "bestfit", "close only"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

// TestVmallocPolicyOrdering pins the design-space claim: pure-region (last)
// allocation is the cheapest discipline, pools are close behind, and
// general best-fit with per-object free costs the most.
func TestVmallocPolicyOrdering(t *testing.T) {
	run := func(policy xmalloc.VmPolicy) uint64 {
		c := &stats.Counters{}
		sp := mem.NewSpace(c)
		v := xmalloc.NewVmalloc(sp)
		var wave []mem.Addr
		for round := 0; round < 10; round++ {
			r := v.Open(policy, 24)
			for i := 0; i < 500; i++ {
				wave = append(wave, v.Alloc(r, 24))
			}
			if policy != xmalloc.VmLast {
				for _, p := range wave {
					v.Free(r, p)
				}
			}
			wave = wave[:0]
			v.Close(r)
		}
		return c.Cycles[stats.ModeAlloc] + c.Cycles[stats.ModeFree]
	}
	last, pool, best := run(xmalloc.VmLast), run(xmalloc.VmPool), run(xmalloc.VmBestFit)
	if !(last <= pool && pool <= best) {
		t.Fatalf("expected last <= pool <= bestfit, got %d / %d / %d", last, pool, best)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, quickSuite()); err != nil {
		t.Fatal(err)
	}
	var rows []map[string]interface{}
	if err := jsonUnmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rows) < 6*6 {
		t.Fatalf("only %d rows", len(rows))
	}
	apps := map[string]bool{}
	for _, r := range rows {
		apps[r["app"].(string)] = true
		if r["baseCycles"].(float64) <= 0 {
			t.Fatalf("bad cycles in row %v", r)
		}
	}
	if len(apps) != 6 {
		t.Fatalf("apps covered: %d", len(apps))
	}
}
