package bench

import (
	"time"

	"regions/internal/core"
	"regions/internal/mem"
	"regions/internal/stats"
)

// MicroUnit* are the units a micro benchmark's regression gate is judged
// in: simulated cycles per op for paths the simulator charges, wall-clock
// nanoseconds per op for host-side-only paths (the regionof lookups).
const (
	MicroUnitSimCycles = "sim cycles/op"
	MicroUnitNs        = "ns/op"
)

// MicroResult is one measured micro-operation: wall-clock nanoseconds per
// operation, plus the modelled simulated cycles per operation for paths the
// simulator charges (lookups run host-side only, so those report 0). Unit
// names the unit the benchmark's gated figure is measured in; it is
// optional in the JSON so older checked-in reports still load, and an empty
// value means MicroUnitSimCycles.
type MicroResult struct {
	Name           string  `json:"name"`
	Ops            int     `json:"ops"`
	NsPerOp        float64 `json:"nsPerOp"`
	SimCyclesPerOp float64 `json:"simCyclesPerOp,omitempty"`
	Unit           string  `json:"unit,omitempty"`
	// ReuseRatio is the pooled string allocator's hit fraction over the
	// run, reported by the strallocs micros (0 elsewhere).
	ReuseRatio float64 `json:"reuseRatio,omitempty"`
}

// unit returns the benchmark's unit, defaulting missing (pre-Unit report)
// values to the sim-cycle gate unit.
func (m MicroResult) unit() string {
	if m.Unit == "" {
		return MicroUnitSimCycles
	}
	return m.Unit
}

// RunMicro measures the runtime's primitive operations — allocation, the
// write barrier, region churn, and the page→region lookup. The lookup is
// measured twice over identical pointer streams: once through the runtime's
// dense page-index array and once through a hash-map replica of the same
// page→region relation, the structure this repository replaced.
func RunMicro() []MicroResult {
	var out []MicroResult

	newRuntime := func() (*core.Runtime, *stats.Counters) {
		c := &stats.Counters{}
		return core.NewRuntimeOpts(mem.NewSpace(c), core.Options{Safe: true}), c
	}

	// ralloc/16B: the allocation fast path, with the region rotated
	// periodically so it never grows without bound.
	{
		rt, c := newRuntime()
		cln := rt.SizeCleanup(16)
		r := rt.NewRegion()
		const ops = 200000
		before := c.TotalCycles()
		start := time.Now()
		for i := 0; i < ops; i++ {
			rt.Ralloc(r, 16, cln)
			if i%4096 == 4095 {
				rt.DeleteRegion(r)
				r = rt.NewRegion()
			}
		}
		el := time.Since(start)
		out = append(out, MicroResult{
			Name:           "ralloc/16B",
			Ops:            ops,
			NsPerOp:        float64(el.Nanoseconds()) / ops,
			SimCyclesPerOp: float64(c.TotalCycles()-before) / ops,
			Unit:           MicroUnitSimCycles,
		})
	}

	// barrier/storeptr: overwriting a region-pointer slot, the steady-state
	// write barrier (decrement the old target, increment the new). Measured
	// twice: with the last-region translation cache (the default — steady
	// state takes the cached sameregion fast path) and with
	// Options.NoRegionCache, the flat Figure 5 model every barrier paid
	// before the cache existed.
	for _, v := range []struct {
		name    string
		noCache bool
	}{
		{"barrier/storeptr", false},
		{"barrier/storeptr-nocache", true},
	} {
		c := &stats.Counters{}
		rt := core.NewRuntimeOpts(mem.NewSpace(c), core.Options{Safe: true, NoRegionCache: v.noCache})
		cln := rt.SizeCleanup(16)
		r := rt.NewRegion()
		p := rt.Ralloc(r, 16, cln)
		q := rt.Ralloc(r, 16, cln)
		const ops = 500000
		before := c.TotalCycles()
		start := time.Now()
		for i := 0; i < ops; i++ {
			rt.StorePtr(p, q)
		}
		el := time.Since(start)
		rt.StorePtr(p, 0)
		out = append(out, MicroResult{
			Name:           v.name,
			Ops:            ops,
			NsPerOp:        float64(el.Nanoseconds()) / ops,
			SimCyclesPerOp: float64(c.TotalCycles()-before) / ops,
			Unit:           MicroUnitSimCycles,
		})
	}

	// region/new-delete: region churn; after the first iteration the page
	// comes from the runtime's free-page list, not the simulated OS.
	{
		rt, c := newRuntime()
		const ops = 50000
		before := c.TotalCycles()
		start := time.Now()
		for i := 0; i < ops; i++ {
			r := rt.NewRegion()
			if !rt.DeleteRegion(r) {
				panic("bench: new-delete region not deletable")
			}
		}
		el := time.Since(start)
		out = append(out, MicroResult{
			Name:           "region/new-delete",
			Ops:            ops,
			NsPerOp:        float64(el.Nanoseconds()) / ops,
			SimCyclesPerOp: float64(c.TotalCycles()-before) / ops,
			Unit:           MicroUnitSimCycles,
		})
	}

	// strallocs: the pooled string allocator's steady-state recycle — a ring
	// of live string buffers whose oldest member is freed and reallocated at
	// the same size each op, the line-buffer churn of a scanner. Measured
	// twice: pooled (every alloc after warmup is a first-probe pool hit) and
	// with Options.NoStrPool (every alloc bumps, so the region's string side
	// grows without bound and keeps round-tripping pages through the
	// simulated OS). The gap between the two is the pool's claim: sub-page
	// reuse at ~5 cycles per alloc versus bump's 7-plus-page-acquisition.
	for _, v := range []struct {
		name   string
		noPool bool
	}{
		{"strallocs/op", false},
		{"strallocs/nopool", true},
	} {
		c := &stats.Counters{}
		rt := core.NewRuntimeOpts(mem.NewSpace(c), core.Options{Safe: true, NoStrPool: v.noPool})
		r := rt.NewRegion()
		// Sizes straddle the power-of-two classes: exact (64, 512), one
		// under (63), and non-power-of-two (24, 200).
		sizes := [...]int{24, 63, 64, 200, 512}
		const ring = 64
		type blk struct {
			p    core.Ptr
			size int
		}
		var live [ring]blk
		for i := range live {
			sz := sizes[i%len(sizes)]
			live[i] = blk{rt.RstrAlloc(r, sz), sz}
		}
		const ops = 200000
		before := c.TotalCycles()
		start := time.Now()
		for i := 0; i < ops; i++ {
			b := &live[i%ring]
			rt.RstrFree(r, b.p, b.size)
			b.p = rt.RstrAlloc(r, b.size)
		}
		el := time.Since(start)
		out = append(out, MicroResult{
			Name:           v.name,
			Ops:            ops,
			NsPerOp:        float64(el.Nanoseconds()) / ops,
			SimCyclesPerOp: float64(c.TotalCycles()-before) / ops,
			Unit:           MicroUnitSimCycles,
			ReuseRatio:     rt.StrPoolStats().ReuseRatio(),
		})
	}

	// regionof: the page→region lookup over a pointer stream spread across
	// many regions, dense array versus hash-map baseline. Both loops are
	// identical apart from the lookup structure; neither is charged
	// simulated cycles, so only wall time is comparable.
	{
		rt, _ := newRuntime()
		cln := rt.SizeCleanup(64)
		const regions, perRegion = 64, 32
		var ptrs []core.Ptr
		for i := 0; i < regions; i++ {
			r := rt.NewRegion()
			for j := 0; j < perRegion; j++ {
				ptrs = append(ptrs, rt.Ralloc(r, 64, cln))
			}
		}
		replica := make(map[uint32]*core.Region, len(ptrs))
		for _, p := range ptrs {
			replica[uint32(p>>mem.PageShift)] = rt.RegionOf(p)
		}

		const ops = 2000000
		var sink *core.Region
		start := time.Now()
		for i := 0; i < ops; i++ {
			sink = rt.RegionOf(ptrs[i%len(ptrs)])
		}
		dense := time.Since(start)
		start = time.Now()
		for i := 0; i < ops; i++ {
			sink = replica[uint32(ptrs[i%len(ptrs)]>>mem.PageShift)]
		}
		viaMap := time.Since(start)
		_ = sink
		out = append(out,
			MicroResult{Name: "regionof/dense", Ops: ops, NsPerOp: float64(dense.Nanoseconds()) / ops, Unit: MicroUnitNs},
			MicroResult{Name: "regionof/map", Ops: ops, NsPerOp: float64(viaMap.Nanoseconds()) / ops, Unit: MicroUnitNs},
		)
	}

	return out
}
