package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationsRender(t *testing.T) {
	var buf bytes.Buffer
	Ablations(&buf, quickSuite())
	out := buf.String()
	for _, want := range []string{"Ablation 1", "Ablation 2", "Ablation 3", "sameregion", "coloring"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("bad numbers:\n%s", out)
	}
}

// TestDeferredBeatsEagerOnFrameHeavyApp pins the paper's design rationale
// for the high-water-mark scheme on the app with the most local-variable
// traffic.
func TestDeferredBeatsEagerOnFrameHeavyApp(t *testing.T) {
	s := quickSuite()
	cfrac := Apps()[0]
	var buf bytes.Buffer
	Ablations(&buf, s) // populates the cache
	def := s.RegionRun(cfrac, "safe", false, false).Counters
	eag := s.customRun(cfrac, "eager", eagerOpts(), false).Counters
	if eag.SafetyCycles() <= def.SafetyCycles() {
		t.Fatalf("eager (%d) should cost more than deferred (%d)",
			eag.SafetyCycles(), def.SafetyCycles())
	}
}

// TestRelatedWorkShape pins the paper's related-work claims: Barrett-Zorn
// lifetime prediction recovers region-like allocation speed on the
// churn-heavy factoring benchmark, but regions never lose on memory the
// way BZ can when long-lived objects pin its birth regions.
func TestRelatedWorkShape(t *testing.T) {
	s := quickSuite()
	var buf bytes.Buffer
	RelatedWork(&buf, s)
	out := buf.String()
	if !strings.Contains(out, "Barrett-Zorn") || !strings.Contains(out, "cfrac") {
		t.Fatalf("unexpected output:\n%s", out)
	}

	cfrac := Apps()[0]
	lea := s.MallocRun(cfrac, "Lea", false)
	bz := s.MallocRun(cfrac, "BZ", false)
	reg := s.RegionRun(cfrac, "safe", false, false)
	if bz.Checksum != lea.Checksum {
		t.Fatal("BZ computed a different result")
	}
	leaC, bzC := lea.Counters, bz.Counters
	if bzC.TotalCycles() >= leaC.TotalCycles() {
		t.Errorf("BZ (%d cycles) should beat Lea (%d) on cfrac churn",
			bzC.TotalCycles(), leaC.TotalCycles())
	}
	if bz.OSBytes <= 2*reg.OSBytes {
		t.Errorf("expected BZ's pinned birth regions to cost memory: BZ=%d Reg=%d",
			bz.OSBytes, reg.OSBytes)
	}
}
