package bench

import (
	"fmt"
	"io"

	"regions/internal/metrics"
	"regions/internal/serve"
)

// The serving scenario embedded in the benchmark report: one fixed
// multi-tenant run of the internal/serve simulator, so the checked-in
// artifact gates tail latency under concurrency, not just batch throughput.
// Everything in the result is simulated cycles, so — like the micro
// sim-cycle columns — it diffs exactly across hosts.

// ServeScenarioSeed pins the embedded scenario's arrival schedule.
const ServeScenarioSeed = 1

// RunServeScenario runs the report's fixed serving scenario: sessions scale
// down with scaleDiv exactly like the app workloads, the rest of the
// configuration is the serve package's defaults (4 shards, 700
// arrivals/Mcycle, queue cap 64). reg may be nil.
func RunServeScenario(scaleDiv int, reg *metrics.Registry) (*serve.Result, error) {
	sessions := 8000 / scaleDiv
	if sessions < 100 {
		sessions = 100
	}
	return serve.Run(serve.Config{
		Sessions: sessions,
		Seed:     ServeScenarioSeed,
		Metrics:  reg,
	})
}

// compareServe prints the serve-scenario delta as context and returns a
// regression when both reports ran the identical scenario but disagree on
// its deterministic checksum.
func compareServe(w io.Writer, old, cur *Report, sameConfig bool) []string {
	if old.Serve == nil || cur.Serve == nil {
		return nil
	}
	o, c := old.Serve, cur.Serve
	fmt.Fprintf(w, "\nserve (%d sessions, seed %d): p50 %d -> %d, p99 %d -> %d, p999 %d -> %d sim cycles\n",
		c.Sessions, c.Seed, o.P50, c.P50, o.P99, c.P99, o.P999, c.P999)
	fmt.Fprintf(w, "  completed %d -> %d, shed %d -> %d (queue %d/%d, oom %d/%d)\n",
		o.Completed, c.Completed,
		o.ShedQueue+o.ShedOOM, c.ShedQueue+c.ShedOOM,
		o.ShedQueue, c.ShedQueue, o.ShedOOM, c.ShedOOM)
	if sameConfig && o.Sessions == c.Sessions && o.Checksum != c.Checksum {
		return []string{fmt.Sprintf("serve: checksum %08x, artifact has %08x — serving results changed",
			c.Checksum, o.Checksum)}
	}
	return nil
}
