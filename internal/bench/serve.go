package bench

import (
	"fmt"
	"io"

	"regions/internal/metrics"
	"regions/internal/serve"
)

// The serving scenario embedded in the benchmark report: one fixed
// multi-tenant run of the internal/serve simulator, so the checked-in
// artifact gates tail latency under concurrency, not just batch throughput.
// Everything in the result is simulated cycles, so — like the micro
// sim-cycle columns — it diffs exactly across hosts.

// ServeScenarioSeed pins the embedded scenario's arrival schedule.
const ServeScenarioSeed = 1

// RunServeScenario runs the report's fixed serving scenario: sessions scale
// down with scaleDiv exactly like the app workloads, the rest of the
// configuration is the serve package's defaults (4 shards, 700
// arrivals/Mcycle, queue cap 64). reg may be nil.
func RunServeScenario(scaleDiv int, reg *metrics.Registry) (*serve.Result, error) {
	sessions := 8000 / scaleDiv
	if sessions < 100 {
		sessions = 100
	}
	return serve.Run(serve.Config{
		Sessions: sessions,
		Seed:     ServeScenarioSeed,
		Metrics:  reg,
	})
}

// ServeABRate is the offered load of the deferred-reclamation A/B: just
// under the synchronous mode's capacity for the bulk profile on 4 shards,
// where per-page reclamation inside the service window turns directly into
// queueing delay — the regime the deferral exists for.
const ServeABRate = 6500

// ServeABResult is the deferred-reclamation A/B embedded in the report: the
// same bulk-profile serving scenario run twice — synchronous deletion, then
// DeferredDelete — over identical seeds. RunServeAB enforces the mode's
// core claim (bit-identical checksums) at build time; the compare gate
// holds the tail-latency claim (deferred p999 no worse than sync) and the
// artifact's determinism across regenerations.
type ServeABResult struct {
	Profile  string        `json:"profile"`
	Sessions int           `json:"sessions"`
	Seed     int64         `json:"seed"`
	Rate     float64       `json:"ratePerMcycle"`
	Sync     *serve.Result `json:"sync"`
	Deferred *serve.Result `json:"deferred"`
}

// RunServeAB runs the deferred-reclamation A/B scenario. It errors — rather
// than recording a report — when the two modes disagree on the checksum or
// the deferred run swept nothing, since either would make the A/B vacuous.
// (serve.Run itself already fails a deferred run whose sweep debt is
// nonzero after drain.)
func RunServeAB(scaleDiv int, reg *metrics.Registry) (*ServeABResult, error) {
	sessions := 4000 / scaleDiv
	if sessions < 100 {
		sessions = 100
	}
	base := serve.Config{
		Sessions: sessions,
		Seed:     ServeScenarioSeed,
		Profile:  "bulk",
		Rate:     ServeABRate,
		Metrics:  reg,
	}
	syncRes, err := serve.Run(base)
	if err != nil {
		return nil, fmt.Errorf("bench: serve A/B sync run: %w", err)
	}
	dcfg := base
	dcfg.DeferredDelete = true
	defRes, err := serve.Run(dcfg)
	if err != nil {
		return nil, fmt.Errorf("bench: serve A/B deferred run: %w", err)
	}
	if syncRes.Checksum != defRes.Checksum {
		return nil, fmt.Errorf("bench: serve A/B checksum mismatch: sync %08x, deferred %08x — deferred deletion changed the allocation stream",
			syncRes.Checksum, defRes.Checksum)
	}
	if defRes.SweptPages == 0 {
		return nil, fmt.Errorf("bench: serve A/B deferred run swept no pages — deferral never engaged")
	}
	return &ServeABResult{
		Profile:  base.Profile,
		Sessions: sessions,
		Seed:     base.Seed,
		Rate:     base.Rate,
		Sync:     syncRes,
		Deferred: defRes,
	}, nil
}

// compareServeAB prints the A/B delta and returns the regressions: a
// deferred p999 above the sync p999 (the scenario is deterministic, so
// this gate is noise-free), and — when the configs match — a checksum that
// drifted from the artifact.
func compareServeAB(w io.Writer, old, cur *Report, sameConfig bool) []string {
	if cur.ServeAB == nil {
		return nil
	}
	var regressions []string
	c := cur.ServeAB
	fmt.Fprintf(w, "\nserve A/B (%s profile, %d sessions, rate %g/Mcycle): sync vs deferred\n",
		c.Profile, c.Sessions, c.Rate)
	fmt.Fprintf(w, "  p50 %d -> %d, p99 %d -> %d, p999 %d -> %d sim cycles\n",
		c.Sync.P50, c.Deferred.P50, c.Sync.P99, c.Deferred.P99, c.Sync.P999, c.Deferred.P999)
	fmt.Fprintf(w, "  deferred: peak debt %d pages, swept %d pages, reclamation lag %d sim cycles\n",
		c.Deferred.SweepDebtPeakPages, c.Deferred.SweptPages, c.Deferred.ReclamationLagCycles)
	if c.Deferred.P999 > c.Sync.P999 {
		regressions = append(regressions,
			fmt.Sprintf("serve A/B: deferred p999 %d above sync p999 %d — deferral is hurting the tail",
				c.Deferred.P999, c.Sync.P999))
	}
	if o := old.ServeAB; o != nil && sameConfig && o.Sessions == c.Sessions {
		if c.Sync.Checksum != o.Sync.Checksum {
			regressions = append(regressions,
				fmt.Sprintf("serve A/B: checksum %08x, artifact has %08x — serving results changed",
					c.Sync.Checksum, o.Sync.Checksum))
		}
	}
	return regressions
}

// StrABResult is the pooled-string-allocator A/B embedded in the report:
// the strheavy buffer-recycling scenario served with the pool (the default)
// and with NoStrPool, over identical seeds. Checksums are content sums, so
// the two arms must agree bit for bit while the pooled arm serves most
// string allocations from its free lists (Pooled.StrReuseRatio) and maps
// less memory from the simulated OS (MappedBytes).
type StrABResult struct {
	Profile  string        `json:"profile"`
	Sessions int           `json:"sessions"`
	Seed     int64         `json:"seed"`
	Rate     float64       `json:"ratePerMcycle"`
	Pooled   *serve.Result `json:"pooled"`
	NoPool   *serve.Result `json:"noPool"`
}

// RunStrAB runs the string-pool A/B scenario. It errors — rather than
// recording a report — when the arms disagree on the checksum, when the
// pooled arm reused nothing (the A/B would be vacuous), or when pooling
// increased OS traffic (the opposite of the pool's claim).
func RunStrAB(scaleDiv int, reg *metrics.Registry) (*StrABResult, error) {
	sessions := 4000 / scaleDiv
	if sessions < 100 {
		sessions = 100
	}
	base := serve.Config{
		Sessions: sessions,
		Seed:     ServeScenarioSeed,
		Profile:  "strheavy",
		Metrics:  reg,
	}
	pooled, err := serve.Run(base)
	if err != nil {
		return nil, fmt.Errorf("bench: string-pool A/B pooled run: %w", err)
	}
	ncfg := base
	ncfg.NoStrPool = true
	noPool, err := serve.Run(ncfg)
	if err != nil {
		return nil, fmt.Errorf("bench: string-pool A/B no-pool run: %w", err)
	}
	if pooled.Checksum != noPool.Checksum {
		return nil, fmt.Errorf("bench: string-pool A/B checksum mismatch: pooled %08x, no-pool %08x — pooling changed session results",
			pooled.Checksum, noPool.Checksum)
	}
	if pooled.StrReuse == 0 {
		return nil, fmt.Errorf("bench: string-pool A/B pooled run reused nothing — the pool never engaged")
	}
	if noPool.StrReuse != 0 {
		return nil, fmt.Errorf("bench: string-pool A/B no-pool run reports %d reuses — NoStrPool did not disable the pool",
			noPool.StrReuse)
	}
	if pooled.MappedBytes > noPool.MappedBytes {
		return nil, fmt.Errorf("bench: string-pool A/B pooled run mapped %d bytes, no-pool %d — pooling increased OS traffic",
			pooled.MappedBytes, noPool.MappedBytes)
	}
	return &StrABResult{
		Profile:  base.Profile,
		Sessions: sessions,
		Seed:     base.Seed,
		Rate:     pooled.Rate,
		Pooled:   pooled,
		NoPool:   noPool,
	}, nil
}

// compareStrAB prints the string-pool A/B delta and returns the
// regressions: a pooled arm that stopped reusing, pooled OS traffic above
// the no-pool arm, and — when the configs match — a checksum that drifted
// from the artifact.
func compareStrAB(w io.Writer, old, cur *Report, sameConfig bool) []string {
	if cur.StrAB == nil {
		return nil
	}
	var regressions []string
	c := cur.StrAB
	fmt.Fprintf(w, "\nstring-pool A/B (%s profile, %d sessions): pooled vs no-pool\n",
		c.Profile, c.Sessions)
	fmt.Fprintf(w, "  reuse %d/%d allocs (ratio %.3f), big %d, freed %d\n",
		c.Pooled.StrReuse, c.Pooled.StrNew+c.Pooled.StrReuse,
		c.Pooled.StrReuseRatio, c.Pooled.StrBig, c.Pooled.StrFreed)
	fmt.Fprintf(w, "  mapped %d -> %d bytes (%.1f%% of no-pool), p99 %d -> %d sim cycles\n",
		c.NoPool.MappedBytes, c.Pooled.MappedBytes,
		100*float64(c.Pooled.MappedBytes)/float64(c.NoPool.MappedBytes),
		c.NoPool.P99, c.Pooled.P99)
	if c.Pooled.StrReuse == 0 {
		regressions = append(regressions, "string-pool A/B: pooled run reused nothing — the pool never engaged")
	}
	if c.Pooled.MappedBytes > c.NoPool.MappedBytes {
		regressions = append(regressions,
			fmt.Sprintf("string-pool A/B: pooled run mapped %d bytes, no-pool %d — pooling increased OS traffic",
				c.Pooled.MappedBytes, c.NoPool.MappedBytes))
	}
	if o := old.StrAB; o != nil && sameConfig && o.Sessions == c.Sessions {
		if c.Pooled.Checksum != o.Pooled.Checksum {
			regressions = append(regressions,
				fmt.Sprintf("string-pool A/B: checksum %08x, artifact has %08x — serving results changed",
					c.Pooled.Checksum, o.Pooled.Checksum))
		}
	}
	return regressions
}

// compareServe prints the serve-scenario delta as context and returns a
// regression when both reports ran the identical scenario but disagree on
// its deterministic checksum.
func compareServe(w io.Writer, old, cur *Report, sameConfig bool) []string {
	if old.Serve == nil || cur.Serve == nil {
		return nil
	}
	o, c := old.Serve, cur.Serve
	fmt.Fprintf(w, "\nserve (%d sessions, seed %d): p50 %d -> %d, p99 %d -> %d, p999 %d -> %d sim cycles\n",
		c.Sessions, c.Seed, o.P50, c.P50, o.P99, c.P99, o.P999, c.P999)
	fmt.Fprintf(w, "  completed %d -> %d, shed %d -> %d (queue %d/%d, oom %d/%d)\n",
		o.Completed, c.Completed,
		o.ShedQueue+o.ShedOOM, c.ShedQueue+c.ShedOOM,
		o.ShedQueue, c.ShedQueue, o.ShedOOM, c.ShedOOM)
	if sameConfig && o.Sessions == c.Sessions && o.Checksum != c.Checksum {
		return []string{fmt.Sprintf("serve: checksum %08x, artifact has %08x — serving results changed",
			c.Checksum, o.Checksum)}
	}
	return nil
}
