package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"regions/internal/stats"
)

// mallocColumns are the paper's allocator columns, in its order; "Reg" (the
// safe region library) is appended by each figure.
var mallocColumns = []string{"Sun", "BSD", "Lea", "GC"}

// Figure8 regenerates "Figure 8: Memory overhead": per application and
// allocator, the memory requested from the OS next to the memory the
// program itself requested. For mudlle and lcc the malloc columns carry the
// emulation library's link-word overhead; the requested line shows both
// values, as the paper's second bar does.
func Figure8(w io.Writer, s *Suite) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Figure 8: Memory overhead (kbytes requested from the OS)")
	fmt.Fprintln(tw, "Name\tSun\tBSD\tLea\tGC\tReg\trequested")
	for _, app := range Apps() {
		fmt.Fprintf(tw, "%s", app.Name)
		var emuNote string
		for _, kind := range mallocColumns {
			r := s.MallocRun(app, kind, false)
			fmt.Fprintf(tw, "\t%.0f", kb(r.OSBytes))
			if r.EmuLink > 0 {
				emuNote = " (emulation overhead included in malloc columns)"
			}
		}
		reg := s.RegionRun(app, "safe", false, false)
		fmt.Fprintf(tw, "\t%.0f\t%.0f%s\n",
			kb(reg.OSBytes), kb(uint64(reg.Counters.MaxLiveBytes)), emuNote)
	}
	tw.Flush()
}

// Figure9 regenerates "Figure 9: Execution time and memory management
// overhead": per application and allocator, modelled cycles split into the
// base program and memory management. The unsafe-region bar and moss's
// original ("slow") region organization are included as in the paper.
func Figure9(w io.Writer, s *Suite) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Figure 9: Execution time (Mcycles, base+memory)")
	fmt.Fprintln(tw, "Name\tSun\tBSD\tLea\tGC\tReg\tunsafe\tslow")
	cell := func(r Result) string {
		c := r.Counters
		return fmt.Sprintf("%.1f+%.1f", float64(c.BaseCycles())/1e6, float64(c.MemCycles())/1e6)
	}
	for _, app := range Apps() {
		fmt.Fprintf(tw, "%s", app.Name)
		for _, kind := range mallocColumns {
			fmt.Fprintf(tw, "\t%s", cell(s.MallocRun(app, kind, false)))
		}
		fmt.Fprintf(tw, "\t%s", cell(s.RegionRun(app, "safe", false, false)))
		fmt.Fprintf(tw, "\t%s", cell(s.RegionRun(app, "unsafe", false, false)))
		if app.SlowRegion != nil {
			fmt.Fprintf(tw, "\t%s", cell(s.RegionRun(app, "safe", true, false)))
		} else {
			fmt.Fprintf(tw, "\t-")
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Figure10 regenerates "Figure 10: Processor cycles lost to stalls": the
// same runs with the UltraSparc-I cache model attached, reporting read and
// write stall cycles.
func Figure10(w io.Writer, s *Suite) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Figure 10: Processor cycles lost to stalls (Mcycles, read+write)")
	fmt.Fprintln(tw, "Name\tSun\tBSD\tLea\tGC\tReg\tslow")
	cell := func(r Result) string {
		c := r.Counters
		return fmt.Sprintf("%.2f+%.2f", float64(c.ReadStalls)/1e6, float64(c.WriteStalls)/1e6)
	}
	for _, app := range Apps() {
		fmt.Fprintf(tw, "%s", app.Name)
		for _, kind := range mallocColumns {
			fmt.Fprintf(tw, "\t%s", cell(s.MallocRun(app, kind, true)))
		}
		fmt.Fprintf(tw, "\t%s", cell(s.RegionRun(app, "safe", false, true)))
		if app.SlowRegion != nil {
			fmt.Fprintf(tw, "\t%s", cell(s.RegionRun(app, "safe", true, true)))
		} else {
			fmt.Fprintf(tw, "\t-")
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Figure11 regenerates "Figure 11: Region costs": the breakdown of the cost
// of safety into cleanup functions, stack scanning, and reference counting,
// plus the overall safety overhead against the unsafe library.
func Figure11(w io.Writer, s *Suite) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Figure 11: Cost of safety (Mcycles)")
	fmt.Fprintln(tw, "Name\tcleanup\tstack scan\trefcount\tsafety overhead")
	for _, app := range Apps() {
		safe := s.RegionRun(app, "safe", false, false).Counters
		unsafe := s.RegionRun(app, "unsafe", false, false).Counters
		overhead := 100 * (float64(safe.TotalCycles())/float64(unsafe.TotalCycles()) - 1)
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%.1f%%\n",
			app.Name,
			float64(safe.Cycles[stats.ModeCleanup])/1e6,
			float64(safe.Cycles[stats.ModeScan])/1e6,
			float64(safe.Cycles[stats.ModeRC])/1e6,
			overhead)
	}
	tw.Flush()
}

// RunAll renders every table and figure in order, after verifying that all
// environments agree on every application's result.
func RunAll(w io.Writer, s *Suite) error {
	if err := s.VerifyChecksums(); err != nil {
		return err
	}
	fmt.Fprintf(w, "Workload scale: 1/%d of the paper-sized runs\n\n", s.ScaleDiv)
	Table1(w)
	fmt.Fprintln(w)
	Table2(w, s)
	fmt.Fprintln(w)
	Table3(w, s)
	fmt.Fprintln(w)
	Figure8(w, s)
	fmt.Fprintln(w)
	Figure9(w, s)
	fmt.Fprintln(w)
	Figure10(w, s)
	fmt.Fprintln(w)
	Figure11(w, s)
	return nil
}
