// Package bench is the experiment harness: it runs the six benchmarks over
// every allocator and renders the paper's evaluation artifacts — Tables 1-3
// and Figures 8-11 of Section 5. Runs are memoized per (app, environment,
// cache) so figures sharing measurements do not recompute them.
package bench

import (
	"fmt"

	"regions/internal/apps/appkit"
	"regions/internal/apps/cfrac"
	"regions/internal/apps/grobner"
	"regions/internal/apps/minicc"
	"regions/internal/apps/moss"
	"regions/internal/apps/mudlle"
	"regions/internal/apps/tile"
	"regions/internal/stats"
)

// Apps returns the six benchmarks in the paper's order.
func Apps() []appkit.App {
	return []appkit.App{
		cfrac.App(),
		grobner.App(),
		mudlle.App(),
		minicc.App(),
		tile.App(),
		moss.App(),
	}
}

// Result is one measured run.
type Result struct {
	App, Env string
	Slow     bool // moss's original single-region version
	Checksum uint32
	Counters stats.Counters
	OSBytes  uint64 // memory requested from the simulated OS
	EmuLink  uint64 // emulation library link-word overhead, if any
}

// Suite runs and memoizes experiments. Scale divides every app's default
// workload (ScaleDiv 1 is the paper-sized run; tests use larger divisors).
type Suite struct {
	ScaleDiv int
	cache    map[string]Result
}

// NewSuite returns a Suite with the given workload divisor (minimum 1).
func NewSuite(scaleDiv int) *Suite {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	return &Suite{ScaleDiv: scaleDiv, cache: map[string]Result{}}
}

func (s *Suite) scale(app appkit.App) int {
	n := app.DefaultScale / s.ScaleDiv
	if n < 1 {
		n = 1
	}
	return n
}

// MallocRun measures app under a malloc environment ("Sun", "BSD", "Lea",
// "GC"). Apps that were originally region-based (mudlle, lcc) are measured
// through the emulation region library over the same allocator, exactly as
// the paper does.
func (s *Suite) MallocRun(app appkit.App, kind string, withCache bool) Result {
	key := fmt.Sprintf("m/%s/%s/%v", app.Name, kind, withCache)
	if r, ok := s.cache[key]; ok {
		return r
	}
	cfg := appkit.Config{Cache: withCache}
	var r Result
	if app.UsesEmulation {
		e := appkit.NewRegionEnv("emu:"+kind, cfg)
		sum := app.Region(e, s.scale(app))
		r = s.capture(app.Name, kind, e, sum)
		r.EmuLink = appkit.EmulationOverhead(e)
	} else {
		e := appkit.NewMallocEnv(kind, cfg)
		sum := app.Malloc(e, s.scale(app))
		r = s.capture(app.Name, kind, e, sum)
	}
	s.cache[key] = r
	return r
}

// RegionRun measures app under the real region runtime ("safe" or
// "unsafe"); slow selects moss's original single-region organization.
func (s *Suite) RegionRun(app appkit.App, kind string, slow, withCache bool) Result {
	key := fmt.Sprintf("r/%s/%s/%v/%v", app.Name, kind, slow, withCache)
	if r, ok := s.cache[key]; ok {
		return r
	}
	e := appkit.NewRegionEnv(kind, appkit.Config{Cache: withCache})
	run := app.Region
	if slow {
		if app.SlowRegion == nil {
			panic("bench: app has no slow region variant")
		}
		run = app.SlowRegion
	}
	sum := run(e, s.scale(app))
	r := s.capture(app.Name, kind, e, sum)
	r.Slow = slow
	s.cache[key] = r
	return r
}

func (s *Suite) capture(app, env string, e appkit.Env, sum uint32) Result {
	e.Finalize()
	return Result{
		App:      app,
		Env:      env,
		Checksum: sum,
		Counters: *e.Counters(),
		OSBytes:  e.Space().MappedBytes(),
	}
}

// VerifyChecksums cross-checks that every environment computes the same
// result for every app, the harness's correctness gate.
func (s *Suite) VerifyChecksums() error {
	for _, app := range Apps() {
		want := s.MallocRun(app, "Lea", false).Checksum
		for _, kind := range appkit.MallocKinds {
			if got := s.MallocRun(app, kind, false).Checksum; got != want {
				return fmt.Errorf("%s under %s: checksum %#x != %#x", app.Name, kind, got, want)
			}
		}
		for _, kind := range []string{"safe", "unsafe"} {
			if got := s.RegionRun(app, kind, false, false).Checksum; got != want {
				return fmt.Errorf("%s under regions/%s: checksum %#x != %#x", app.Name, kind, got, want)
			}
		}
	}
	return nil
}

func kb(b uint64) float64 { return float64(b) / 1024 }
