package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"regions/internal/textdiff"
)

// Table1 regenerates "Table 1: Complexity of benchmark changes": per app,
// the source size and the lines changed between the malloc/free version and
// the region version. Apps that were already region-based (mudlle, lcc)
// have no malloc source; for them the paper reports the changes needed for
// safe regions, which our single source subsumes, so they are reported as
// region-native.
func Table1(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table 1: Complexity of benchmark changes")
	fmt.Fprintln(tw, "Name\tLines\tChanged lines\tNote")
	for _, app := range Apps() {
		regionLines := len(textdiff.Lines(app.RegionSource))
		if app.MallocSource == "" {
			fmt.Fprintf(tw, "%s\t%d\t-\toriginally region-based\n", app.Name, regionLines)
			continue
		}
		mallocLines := len(textdiff.Lines(app.MallocSource))
		e := textdiff.DiffTexts(app.MallocSource, app.RegionSource)
		fmt.Fprintf(tw, "%s\t%d\t%d\tregion version is %d lines\n",
			app.Name, mallocLines, e.Changed(), regionLines)
	}
	tw.Flush()
}

// Table2 regenerates "Table 2: Allocation behaviour with regions".
func Table2(w io.Writer, s *Suite) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table 2: Allocation behaviour with regions")
	fmt.Fprintln(tw, "Name\tTotal allocs\tTotal kbytes\tMax kbytes\tTotal regions\tMax regions\tMax kb in region\tAvg kb per region\tAvg allocs per region")
	for _, app := range Apps() {
		r := s.RegionRun(app, "safe", false, false)
		c := r.Counters
		regions := c.RegionsCreated
		if regions == 0 {
			regions = 1
		}
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.1f\t%d\t%d\t%.1f\t%.2f\t%.0f\n",
			app.Name, c.Allocs, kb(c.BytesRequested), kb(uint64(c.MaxLiveBytes)),
			c.RegionsCreated, c.MaxLiveRegions, kb(c.MaxRegionBytes),
			kb(c.BytesRequested)/float64(regions), float64(c.Allocs)/float64(regions))
	}
	tw.Flush()
}

// Table3 regenerates "Table 3: Allocation behaviour with malloc". For the
// originally region-based apps the paper shows the raw numbers and a
// "(w/o overhead)" row removing the emulation library's link words.
func Table3(w io.Writer, s *Suite) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table 3: Allocation behaviour with malloc")
	fmt.Fprintln(tw, "Name\tTotal allocs\tTotal kbytes\tMax kbytes")
	for _, app := range Apps() {
		r := s.MallocRun(app, "Lea", false)
		c := r.Counters
		// For emulation-measured apps the program's effective requests
		// include one link word per object; the "(w/o overhead)" row
		// removes them, as in the paper.
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.1f\n",
			app.Name, c.Allocs, kb(c.BytesRequested+r.EmuLink), kb(uint64(c.MaxLiveBytes)))
		if app.UsesEmulation {
			fmt.Fprintf(tw, "  (w/o overhead)\t%d\t%.0f\t%.1f\n",
				c.Allocs, kb(c.BytesRequested), kb(uint64(c.MaxLiveBytes)))
		}
	}
	tw.Flush()
}
