package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"regions/internal/apps/appkit"
	"regions/internal/core"
)

// Ablations measures the design choices the paper singles out:
//
//  1. Deferred local counting (Section 4.2.1's high-water-mark scheme)
//     against the naive alternative of counting every local-variable write.
//  2. Region-structure coloring (Section 4.1's 64-byte offsets) against
//     placing every region header at the same page offset.
//  3. The sameregion optimization (Section 4.2.2): how many region writes
//     avoided count updates because source and target share a region.
//
// Each ablation runs real benchmarks with the variant runtime.
func Ablations(w io.Writer, s *Suite) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Ablation 1: deferred (high-water mark) vs eager local counting")
	fmt.Fprintln(tw, "Name\tdeferred safety Mcycles\teager safety Mcycles\teager/deferred")
	for _, app := range Apps() {
		def := s.RegionRun(app, "safe", false, false).Counters
		eag := s.customRun(app, "eager", core.Options{Safe: true, EagerLocals: true}, false)
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2fx\n", app.Name,
			float64(def.SafetyCycles())/1e6,
			float64(eag.Counters.SafetyCycles())/1e6,
			float64(eag.Counters.SafetyCycles())/float64(def.SafetyCycles()))
	}
	tw.Flush()
	fmt.Fprintln(w)

	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Ablation 2: region-structure coloring vs none (read-stall Mcycles)")
	fmt.Fprintln(tw, "Name\tcolored\tuncolored")
	for _, app := range Apps() {
		col := s.RegionRun(app, "safe", false, true).Counters
		unc := s.customRun(app, "nocolor", core.Options{Safe: true, NoColoring: true}, true)
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\n", app.Name,
			float64(col.ReadStalls)/1e6,
			float64(unc.Counters.ReadStalls)/1e6)
	}
	tw.Flush()
	fmt.Fprintln(w)

	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Ablation 3: sameregion pointers (no count update needed)")
	fmt.Fprintln(tw, "Name\tregion writes\tsameregion\tshare")
	for _, app := range Apps() {
		c := s.RegionRun(app, "safe", false, false).Counters
		share := 0.0
		if c.Barriers.Region > 0 {
			share = 100 * float64(c.Barriers.SameRegion) / float64(c.Barriers.Region)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f%%\n", app.Name,
			c.Barriers.Region, c.Barriers.SameRegion, share)
	}
	tw.Flush()
}

// customRun measures app on a region runtime with explicit options.
func (s *Suite) customRun(app appkit.App, tag string, opts core.Options, withCache bool) Result {
	key := fmt.Sprintf("c/%s/%s/%v", app.Name, tag, withCache)
	if r, ok := s.cache[key]; ok {
		return r
	}
	e := appkit.NewCustomRegionEnv(tag, opts, appkit.Config{Cache: withCache})
	sum := app.Region(e, s.scale(app))
	r := s.capture(app.Name, tag, e, sum)
	s.cache[key] = r
	return r
}

// eagerOpts returns the options of the eager-locals ablation (exported to
// the tests through the package boundary).
func eagerOpts() core.Options { return core.Options{Safe: true, EagerLocals: true} }
