package bench

import (
	"testing"

	"regions/internal/apps/appkit"
	"regions/internal/core"
	"regions/internal/metrics"
)

// lowBarrierMass returns the fraction of barrier latencies that landed in
// the buckets at or under 8 cycles — the territory of the translation
// cache's fast path (barrierFastExtra plus a few memory accesses) — and the
// total observation count (0 when the app issued no barriers at this scale).
func lowBarrierMass(snap *metrics.Snapshot) (float64, uint64) {
	for _, h := range snap.Histograms {
		if h.Name != "regions_core_barrier_cycles" || h.Count == 0 {
			continue
		}
		var low uint64
		for _, b := range h.Buckets {
			if b.UpperBound != 0 && b.UpperBound <= 8 {
				low += b.Count
			}
		}
		return float64(low) / float64(h.Count), h.Count
	}
	return 0, 0
}

// TestBarrierHistogramShiftsLow is the tentpole's app-level evidence: with
// the translation cache on, the barrier-latency histogram of at least one
// paper application moves real mass into the ≤8-cycle buckets relative to a
// NoRegionCache run of the identical workload — and the cache never changes
// an app's checksum. Per-app shifts are logged so the docs table can quote
// them.
func TestBarrierHistogramShiftsLow(t *testing.T) {
	run := func(app appkit.App, scale int, noCache bool) (uint32, *metrics.Snapshot) {
		reg := metrics.NewRegistry()
		e := appkit.NewCustomRegionEnv("safe", core.Options{Safe: true, NoRegionCache: noCache},
			appkit.Config{Metrics: reg})
		sum := app.Region(e, scale)
		e.Finalize()
		return sum, reg.Snapshot()
	}

	shifted := false
	for _, app := range Apps() {
		scale := app.DefaultScale / 64
		if scale < 1 {
			scale = 1
		}
		cachedSum, cachedSnap := run(app, scale, false)
		bareSum, bareSnap := run(app, scale, true)
		if cachedSum != bareSum {
			t.Errorf("%s: cache changed the checksum: %#x vs %#x", app.Name, cachedSum, bareSum)
		}
		cached, cachedN := lowBarrierMass(cachedSnap)
		bare, bareN := lowBarrierMass(bareSnap)
		if cachedN != bareN {
			t.Errorf("%s: barrier counts differ with cache on: %d vs %d", app.Name, cachedN, bareN)
		}
		if cachedN == 0 {
			t.Logf("%s: no barriers at scale %d, skipped", app.Name, scale)
			continue
		}
		t.Logf("%s: barrier mass ≤8 cycles: cached %.1f%%, bare %.1f%% (%d barriers)",
			app.Name, 100*cached, 100*bare, cachedN)
		if cached > bare {
			shifted = true
		}
	}
	if !shifted {
		t.Error("no app moved barrier-latency mass into the ≤8-cycle buckets")
	}
}
