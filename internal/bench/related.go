package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"regions/internal/mem"
	"regions/internal/stats"
	"regions/internal/xmalloc"
)

// RelatedWork compares the paper's regions against the two earlier systems
// its related-work section discusses as partial alternatives:
//
//   - Barrett & Zorn's lifetime-prediction allocator (BZ), which recovers
//     some of regions' batching automatically by profiling allocation
//     sites — "but does not work for all programs";
//   - Doug Lea's allocator as the general-purpose baseline they both
//     improve on.
//
// It runs the four malloc-variant benchmarks (the region-native compilers
// are skipped: they have no per-object frees for BZ to learn from).
func RelatedWork(w io.Writer, s *Suite) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Related work: Lea vs Barrett-Zorn lifetime prediction vs safe regions")
	fmt.Fprintln(tw, "Name\tLea Mcycles / OS KB\tBZ Mcycles / OS KB\tReg Mcycles / OS KB")
	for _, app := range Apps() {
		if app.UsesEmulation {
			continue
		}
		lea := s.MallocRun(app, "Lea", false)
		bz := s.MallocRun(app, "BZ", false)
		reg := s.RegionRun(app, "safe", false, false)
		cell := func(r Result) string {
			c := r.Counters
			return fmt.Sprintf("%.1f / %.0f", float64(c.TotalCycles())/1e6, kb(r.OSBytes))
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", app.Name, cell(lea), cell(bz), cell(reg))
	}
	tw.Flush()
	fmt.Fprintln(w)
	VmallocPolicies(w)
}

// VmallocPolicies compares Vo's three region policies on a phase-structured
// microworkload: waves of small allocations, with per-object frees where
// the policy permits them and whole-region reclamation where it does not —
// the design space the paper's related work situates regions in.
func VmallocPolicies(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Vo's vmalloc policies on a 40k-object churn (related work)")
	fmt.Fprintln(tw, "Policy\tobject free\tcycles\tOS KB")
	for _, policy := range []xmalloc.VmPolicy{xmalloc.VmLast, xmalloc.VmPool, xmalloc.VmBestFit} {
		c := &stats.Counters{}
		sp := mem.NewSpace(c)
		v := xmalloc.NewVmalloc(sp)
		perObject := policy != xmalloc.VmLast
		var wave []mem.Addr
		for round := 0; round < 40; round++ {
			r := v.Open(policy, 24)
			for i := 0; i < 1000; i++ {
				wave = append(wave, v.Alloc(r, 24))
			}
			if perObject {
				for _, p := range wave {
					v.Free(r, p)
				}
			}
			wave = wave[:0]
			v.Close(r)
		}
		freeStr := "no (close only)"
		if perObject {
			freeStr = "yes"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f\n",
			policy, freeStr,
			c.Cycles[stats.ModeAlloc]+c.Cycles[stats.ModeFree],
			kb(sp.MappedBytes()))
	}
	tw.Flush()
}
