package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"regions/internal/metrics"
)

// This file turns the ROADMAP's "diff, don't eyeball" rule into code: load
// a checked-in benchmark report, diff the freshly measured one against it —
// Snapshot.Sub over the embedded metrics, a micro table over simulated
// cycles per op — and decide pass/fail. The regression gate keys on the
// micro benchmarks' simulated cycles: they are scale-independent and
// deterministic, so they compare meaningfully even when the old report was
// generated at a different -scale-div, while raw counter totals and
// makespans (timing-dependent under work stealing) are printed as context
// only.

// DefaultCompareThreshold is the allowed fractional increase in a micro
// benchmark's simulated cycles per op before the comparison fails. The
// micro sims are deterministic, so this only leaves room for intentional
// remodelling, not noise.
const DefaultCompareThreshold = 0.05

// LoadReport reads and validates a benchmark report (the checked-in
// BENCH_PR*.json artifacts). It fails with a descriptive error — not a
// panic — on unreadable files, malformed JSON, a schema that is not
// regions-bench, or a schema_version this binary does not speak.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: read report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse report %s: %w", path, err)
	}
	if !strings.HasPrefix(r.Schema, "regions-bench/") {
		return nil, fmt.Errorf("bench: %s: schema %q is not a regions-bench report", path, r.Schema)
	}
	if r.SchemaVersion != ReportSchemaVersion {
		return nil, fmt.Errorf("bench: %s: schema_version %d, this binary speaks %d — regenerate the artifact",
			path, r.SchemaVersion, ReportSchemaVersion)
	}
	return &r, nil
}

// CompareReports prints a delta report of cur against old — micro
// benchmarks, throughput, and the Snapshot.Sub counter/histogram diff —
// and returns the list of regressions: micro benchmarks whose simulated
// cycles per op grew by more than threshold. An empty list means the gate
// passes.
func CompareReports(w io.Writer, old, cur *Report, threshold float64) []string {
	var regressions []string

	fmt.Fprintf(w, "micro (sim cycles/op; ns/op is host-dependent context):\n")
	fmt.Fprintf(w, "  %-28s %12s %12s %10s %8s\n", "name", "old", "new", "delta", "reuse")
	// reuseCol renders the strallocs micros' pool hit ratio; other
	// benchmarks leave the column blank.
	reuseCol := func(m MicroResult) string {
		if m.ReuseRatio == 0 {
			return ""
		}
		return fmt.Sprintf("%.3f", m.ReuseRatio)
	}
	oldMicro := make(map[string]MicroResult, len(old.Micro))
	for _, m := range old.Micro {
		oldMicro[m.Name] = m
	}
	for _, m := range cur.Micro {
		o, ok := oldMicro[m.Name]
		if !ok {
			fmt.Fprintf(w, "  %-28s %12s %12.2f %10s %8s\n", m.Name, "-", m.SimCyclesPerOp, "new", reuseCol(m))
			continue
		}
		delta := m.SimCyclesPerOp - o.SimCyclesPerOp
		fmt.Fprintf(w, "  %-28s %12.2f %12.2f %+10.2f %8s\n", m.Name, o.SimCyclesPerOp, m.SimCyclesPerOp, delta, reuseCol(m))
		if o.SimCyclesPerOp > 0 && m.SimCyclesPerOp > o.SimCyclesPerOp*(1+threshold) {
			// The message carries the benchmark's own unit from the micro
			// table, so a gate failure reads correctly for host-side
			// benchmarks too, not just the sim-cycle ones.
			regressions = append(regressions,
				fmt.Sprintf("%s: %.2f -> %.2f %s (+%.1f%%, threshold %.1f%%)",
					m.Name, o.SimCyclesPerOp, m.SimCyclesPerOp, m.unit(),
					100*delta/o.SimCyclesPerOp, 100*threshold))
		}
	}

	sameConfig := old.ScaleDiv == cur.ScaleDiv && old.Repeats == cur.Repeats
	fmt.Fprintf(w, "\nthroughput (old: scaleDiv=%d repeats=%d; new: scaleDiv=%d repeats=%d):\n",
		old.ScaleDiv, old.Repeats, cur.ScaleDiv, cur.Repeats)
	oldTp := make(map[int]ThroughputResult, len(old.Throughput))
	for _, t := range old.Throughput {
		oldTp[t.Shards] = t
	}
	for _, t := range cur.Throughput {
		o, ok := oldTp[t.Shards]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  shards=%d makespan %.1f -> %.1f Mcycles, speedup %.2f -> %.2f\n",
			t.Shards, o.SimMakespanMcycles, t.SimMakespanMcycles, o.SimSpeedup, t.SimSpeedup)
		if sameConfig && t.Checksum != o.Checksum {
			regressions = append(regressions,
				fmt.Sprintf("throughput shards=%d: checksum %#x, artifact has %#x — results changed",
					t.Shards, t.Checksum, o.Checksum))
		}
	}
	if !sameConfig {
		fmt.Fprintf(w, "  (configs differ: checksums and raw counters compared as context only)\n")
	}

	regressions = append(regressions, compareServe(w, old, cur, sameConfig)...)
	regressions = append(regressions, compareServeAB(w, old, cur, sameConfig)...)
	regressions = append(regressions, compareStrAB(w, old, cur, sameConfig)...)

	if old.Metrics != nil && cur.Metrics != nil {
		fmt.Fprintf(w, "\nmetrics delta (new minus old, Snapshot.Sub; nonzero series):\n")
		printSnapshotDelta(w, cur.Metrics.Sub(old.Metrics))
	}
	return regressions
}

// printSnapshotDelta renders a Snapshot.Sub result (already name-sorted),
// skipping zero deltas. Counter deltas are printed signed: the snapshots
// came from different processes, so a series can legitimately shrink.
func printSnapshotDelta(w io.Writer, d *metrics.Snapshot) {
	shown := 0
	for _, c := range d.Counters {
		if c.Value != 0 {
			fmt.Fprintf(w, "  %-52s %+d\n", c.Name, int64(c.Value))
			shown++
		}
	}
	for _, h := range d.Histograms {
		if h.Count == 0 && h.Sum == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-52s count%+d sum%+d\n", h.Name, int64(h.Count), int64(h.Sum))
		shown++
	}
	if shown == 0 {
		fmt.Fprintf(w, "  (no differences)\n")
	}
}
