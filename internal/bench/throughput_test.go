package bench

import "testing"

// TestThroughputSweepScalesAndAgrees runs the whole-app workload at 1, 2,
// and 4 shards at a small scale: the aggregate checksum must be
// placement-independent and the simulated makespan must shrink with shard
// count (the modelled scaling the engine exists for).
func TestThroughputSweepScalesAndAgrees(t *testing.T) {
	results, err := ThroughputSweep(48, 2, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for _, r := range results[1:] {
		if r.Checksum != results[0].Checksum {
			t.Fatalf("checksum at %d shards differs", r.Shards)
		}
	}
	if s := results[1].SimSpeedup; s < 1.5 {
		t.Fatalf("2-shard simulated speedup %.2f, want >= 1.5", s)
	}
	if s := results[2].SimSpeedup; s < 2 {
		t.Fatalf("4-shard simulated speedup %.2f, want >= 2", s)
	}
}
