package bench

import (
	"testing"

	"regions/internal/metrics"
)

// TestThroughputSweepScalesAndAgrees runs the whole-app workload at 1, 2,
// and 4 shards at a small scale: the aggregate checksum must be
// placement-independent and the simulated makespan must shrink with shard
// count (the modelled scaling the engine exists for).
func TestThroughputSweepScalesAndAgrees(t *testing.T) {
	results, err := ThroughputSweep(48, 2, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for _, r := range results[1:] {
		if r.Checksum != results[0].Checksum {
			t.Fatalf("checksum at %d shards differs", r.Shards)
		}
	}
	if s := results[1].SimSpeedup; s < 1.5 {
		t.Fatalf("2-shard simulated speedup %.2f, want >= 1.5", s)
	}
	if s := results[2].SimSpeedup; s < 2 {
		t.Fatalf("4-shard simulated speedup %.2f, want >= 2", s)
	}
}

// TestThroughputMetricsAttachAndAgree runs the same workload bare and with
// a metrics registry: the simulated results must be identical (metrics are
// host-side only) and the registry's counters must describe the run.
func TestThroughputMetricsAttachAndAgree(t *testing.T) {
	bare, err := RunThroughput(1, 48, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	metered, err := RunThroughputOpts(1, 48, 2, ThroughputOpts{Metrics: reg, HeapProfileEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if metered.Checksum != bare.Checksum || metered.SimMakespanMcycles != bare.SimMakespanMcycles {
		t.Errorf("metered run diverged: checksum %#x vs %#x, makespan %.3f vs %.3f",
			metered.Checksum, bare.Checksum, metered.SimMakespanMcycles, bare.SimMakespanMcycles)
	}
	snap := reg.Snapshot()
	if got := snap.CounterSum("regions_shard_tasks_total"); got != uint64(metered.Tasks) {
		t.Errorf("shard task counters sum to %d, want %d", got, metered.Tasks)
	}
	if v, _ := snap.Counter("regions_core_allocs_total"); v == 0 {
		t.Error("core alloc counter empty after a metered throughput run")
	}
	if v, ok := snap.Gauge("regions_shard_utilization_pct"); !ok || v <= 0 {
		t.Errorf("utilization gauge = %d,%v", v, ok)
	}
}

// TestBenchReportEmbedsMetrics locks the report schema consumed from the
// checked-in artifact: version 2, with the sweep's final metrics snapshot.
func TestBenchReportEmbedsMetrics(t *testing.T) {
	rep, err := BuildBenchReportOpts(96, 1, ThroughputOpts{Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "regions-bench/v2" || rep.SchemaVersion != ReportSchemaVersion {
		t.Errorf("schema = %q version %d, want regions-bench/v2 version %d",
			rep.Schema, rep.SchemaVersion, ReportSchemaVersion)
	}
	if rep.Metrics == nil {
		t.Fatal("report has no embedded metrics snapshot")
	}
	if rep.Metrics.SchemaVersion != metrics.SnapshotSchemaVersion {
		t.Errorf("embedded snapshot schema_version = %d", rep.Metrics.SchemaVersion)
	}
	if v, _ := rep.Metrics.Counter("regions_core_allocs_total"); v == 0 {
		t.Error("embedded snapshot has no allocation counts")
	}
}
