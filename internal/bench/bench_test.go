package bench

import (
	"bytes"
	"strings"
	"testing"
)

// quickSuite runs at a fraction of the paper-sized workloads.
func quickSuite() *Suite { return NewSuite(24) }

func TestVerifyChecksums(t *testing.T) {
	if err := quickSuite().VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}

func TestAppsComplete(t *testing.T) {
	apps := Apps()
	if len(apps) != 6 {
		t.Fatalf("want the paper's six benchmarks, got %d", len(apps))
	}
	names := map[string]bool{}
	for _, app := range apps {
		names[app.Name] = true
		if app.Region == nil {
			t.Errorf("%s: no region variant", app.Name)
		}
		if app.Malloc == nil && !app.UsesEmulation {
			t.Errorf("%s: no malloc variant and not emulation-measured", app.Name)
		}
		if app.RegionSource == "" {
			t.Errorf("%s: no embedded region source", app.Name)
		}
		if app.DefaultScale < 1 {
			t.Errorf("%s: bad default scale", app.Name)
		}
	}
	for _, want := range []string{"cfrac", "grobner", "mudlle", "lcc", "tile", "moss"} {
		if !names[want] {
			t.Errorf("missing app %q", want)
		}
	}
}

func TestTable1Renders(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, name := range []string{"cfrac", "grobner", "mudlle", "lcc", "tile", "moss"} {
		if !strings.Contains(out, name) {
			t.Errorf("table 1 missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "originally region-based") {
		t.Error("table 1 should mark mudlle/lcc as region-native")
	}
}

func TestTables2And3Render(t *testing.T) {
	s := quickSuite()
	var buf bytes.Buffer
	Table2(&buf, s)
	Table3(&buf, s)
	out := buf.String()
	if !strings.Contains(out, "with regions") || !strings.Contains(out, "with malloc") {
		t.Fatalf("missing table headers:\n%s", out)
	}
	if !strings.Contains(out, "(w/o overhead)") {
		t.Error("table 3 missing the emulation-overhead rows")
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "+Inf") {
		t.Errorf("bad numbers in tables:\n%s", out)
	}
}

func TestFiguresRender(t *testing.T) {
	s := quickSuite()
	var buf bytes.Buffer
	Figure8(&buf, s)
	Figure9(&buf, s)
	Figure11(&buf, s)
	out := buf.String()
	for _, want := range []string{"Figure 8", "Figure 9", "Figure 11", "unsafe", "refcount"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in figures output:\n%s", want, out)
		}
	}
}

func TestMemoization(t *testing.T) {
	s := quickSuite()
	a := s.RegionRun(Apps()[4], "safe", false, false) // tile
	b := s.RegionRun(Apps()[4], "safe", false, false)
	if a.Checksum != b.Checksum || a.Counters.Allocs != b.Counters.Allocs {
		t.Fatal("memoized run differs")
	}
	if len(s.cache) == 0 {
		t.Fatal("no cache entries")
	}
}

// TestPaperShapes asserts the headline qualitative results of Section 5 at
// reduced scale: these are the claims EXPERIMENTS.md tracks.
func TestPaperShapes(t *testing.T) {
	s := quickSuite()
	for _, app := range Apps() {
		t.Run(app.Name, func(t *testing.T) {
			unsafe := s.RegionRun(app, "unsafe", false, false).Counters
			safe := s.RegionRun(app, "safe", false, false).Counters

			// Unsafe regions are never slower than safe regions.
			if unsafe.TotalCycles() > safe.TotalCycles() {
				t.Errorf("unsafe (%d) slower than safe (%d)",
					unsafe.TotalCycles(), safe.TotalCycles())
			}
			// Safety overhead stays bounded (paper: <= 17%; allow slack at
			// reduced scale). Gröbner gets a wider band: our coefficients
			// are single mod-p words where the original used rationals, so
			// the barrier cost is relatively larger (see EXPERIMENTS.md).
			over := float64(safe.TotalCycles())/float64(unsafe.TotalCycles()) - 1
			band := 0.40
			if app.Name == "grobner" {
				band = 0.60
			}
			if over > band {
				t.Errorf("safety overhead %.0f%% out of band", 100*over)
			}
			// Regions beat at least two of the malloc allocators on time
			// (the paper: as fast or faster than the alternatives in all
			// but a few cases).
			faster := 0
			for _, kind := range mallocColumns {
				mc := s.MallocRun(app, kind, false).Counters
				if safe.TotalCycles() <= mc.TotalCycles() {
					faster++
				}
			}
			if faster < 2 {
				t.Errorf("safe regions beat only %d/4 allocators", faster)
			}
			// Memory: regions never use wildly more OS memory than the
			// best allocator (paper: from 9%% less to 19%% more than Lea;
			// allow slack at reduced scale).
			regOS := s.RegionRun(app, "safe", false, false).OSBytes
			best := ^uint64(0)
			for _, kind := range mallocColumns {
				if os := s.MallocRun(app, kind, false).OSBytes; os < best {
					best = os
				}
			}
			if float64(regOS) > 1.6*float64(best) {
				t.Errorf("region OS memory %d vs best malloc %d", regOS, best)
			}
		})
	}
}

func TestMossLocalityShape(t *testing.T) {
	s := quickSuite()
	moss := Apps()[5]
	slow := s.RegionRun(moss, "safe", true, true).Counters
	fast := s.RegionRun(moss, "safe", false, true).Counters
	ss := slow.ReadStalls + slow.WriteStalls
	fs := fast.ReadStalls + fast.WriteStalls
	if fs >= ss {
		t.Fatalf("optimized moss should stall less: fast=%d slow=%d", fs, ss)
	}
}
