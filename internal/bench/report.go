package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
)

// Report is the checked-in benchmark artifact (BENCH_PR3.json); see
// docs/PERFORMANCE.md for the field-by-field schema and how to regenerate
// it. Wall-clock fields vary with the host; the simulated-cycle fields and
// checksums are deterministic.
type Report struct {
	Schema     string             `json:"schema"`
	GoMaxProcs int                `json:"goMaxProcs"`
	NumCPU     int                `json:"numCPU"`
	ScaleDiv   int                `json:"scaleDiv"`
	Repeats    int                `json:"repeats"`
	Micro      []MicroResult      `json:"micro"`
	Throughput []ThroughputResult `json:"throughput"`
}

// BenchShardCounts is the shard sweep the report runs.
var BenchShardCounts = []int{1, 2, 4, 8}

// BuildBenchReport runs the micro benchmarks and the shard throughput sweep
// and assembles the report.
func BuildBenchReport(scaleDiv, repeats int) (*Report, error) {
	tp, err := ThroughputSweep(scaleDiv, repeats, BenchShardCounts)
	if err != nil {
		return nil, err
	}
	return &Report{
		Schema:     "regions-bench/v1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		ScaleDiv:   scaleDiv,
		Repeats:    repeats,
		Micro:      RunMicro(),
		Throughput: tp,
	}, nil
}

// WriteBenchReport writes the report as indented JSON.
func WriteBenchReport(w io.Writer, scaleDiv, repeats int) error {
	r, err := BuildBenchReport(scaleDiv, repeats)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintThroughput renders one throughput run as a human-readable line.
func PrintThroughput(w io.Writer, r ThroughputResult) {
	fmt.Fprintf(w, "shards=%d tasks=%d wall=%.2fs (%.1f tasks/s) sim-makespan=%.1f Mcycles checksum=%#x\n",
		r.Shards, r.Tasks, r.WallSeconds, r.TasksPerSec, r.SimMakespanMcycles, r.Checksum)
}
