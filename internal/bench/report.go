package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"regions/internal/metrics"
	"regions/internal/serve"
)

// ReportSchemaVersion is the integer version of the benchmark-report JSON.
// Version 2 added SchemaVersion itself and the embedded final metrics
// snapshot; version 1 (schema "regions-bench/v1") had neither.
const ReportSchemaVersion = 2

// Report is the checked-in benchmark artifact (BENCH_PR4.json); see
// docs/PERFORMANCE.md for the field-by-field schema and how to regenerate
// it. Wall-clock fields vary with the host; the simulated-cycle fields and
// checksums are deterministic.
type Report struct {
	Schema        string             `json:"schema"`
	SchemaVersion int                `json:"schema_version"`
	GoMaxProcs    int                `json:"goMaxProcs"`
	NumCPU        int                `json:"numCPU"`
	ScaleDiv      int                `json:"scaleDiv"`
	Repeats       int                `json:"repeats"`
	Micro         []MicroResult      `json:"micro"`
	Throughput    []ThroughputResult `json:"throughput"`
	// Imbalance is the work-stealing A/B on the skewed workload (see
	// RunImbalance): same tasks, static placement versus stealing, with
	// the max/min busy-cycle ratio per side.
	Imbalance *ImbalanceResult `json:"imbalance,omitempty"`
	// Serve is the fixed multi-tenant serving scenario (see
	// RunServeScenario): seeded arrivals over the serve defaults, with
	// deterministic latency percentiles and checksum. Optional so version-2
	// reports written before the scenario existed still load.
	Serve *serve.Result `json:"serve,omitempty"`
	// ServeAB is the deferred-reclamation A/B (see RunServeAB): the bulk
	// large-region scenario served synchronously and with DeferredDelete,
	// checksum-identical by construction. Optional so older version-2
	// reports still load.
	ServeAB *ServeABResult `json:"serveAB,omitempty"`
	// StrAB is the pooled-string-allocator A/B (see RunStrAB): the strheavy
	// buffer-recycling scenario served pooled and with NoStrPool,
	// checksum-identical by construction. Optional so older version-2
	// reports still load.
	StrAB *StrABResult `json:"strAB,omitempty"`
	// Metrics is the final snapshot of a registry attached to the whole
	// shard sweep: the cumulative core/mem/gc/shard series over every run
	// in Throughput. Simulated-cycle metrics in it are deterministic.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// BenchShardCounts is the shard sweep the report runs.
var BenchShardCounts = []int{1, 2, 4, 8}

// BuildBenchReport runs the micro benchmarks and the shard throughput sweep
// and assembles the report.
func BuildBenchReport(scaleDiv, repeats int) (*Report, error) {
	return BuildBenchReportOpts(scaleDiv, repeats, ThroughputOpts{Metrics: metrics.NewRegistry()})
}

// BuildBenchReportOpts is BuildBenchReport with the sweep's observability
// hooks under caller control; when opts.Metrics is non-nil its final
// snapshot is embedded in the report.
func BuildBenchReportOpts(scaleDiv, repeats int, opts ThroughputOpts) (*Report, error) {
	tp, err := ThroughputSweepOpts(scaleDiv, repeats, BenchShardCounts, opts)
	if err != nil {
		return nil, err
	}
	imb, err := RunImbalance(4, scaleDiv, opts.Metrics)
	if err != nil {
		return nil, err
	}
	srv, err := RunServeScenario(scaleDiv, opts.Metrics)
	if err != nil {
		return nil, err
	}
	ab, err := RunServeAB(scaleDiv, opts.Metrics)
	if err != nil {
		return nil, err
	}
	sab, err := RunStrAB(scaleDiv, opts.Metrics)
	if err != nil {
		return nil, err
	}
	r := &Report{
		Schema:        "regions-bench/v2",
		SchemaVersion: ReportSchemaVersion,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		ScaleDiv:      scaleDiv,
		Repeats:       repeats,
		Micro:         RunMicro(),
		Throughput:    tp,
		Imbalance:     imb,
		Serve:         srv,
		ServeAB:       ab,
		StrAB:         sab,
	}
	if opts.Metrics != nil {
		r.Metrics = opts.Metrics.Snapshot()
	}
	return r, nil
}

// WriteBenchReport builds a report and writes it as indented JSON.
func WriteBenchReport(w io.Writer, scaleDiv, repeats int) error {
	r, err := BuildBenchReport(scaleDiv, repeats)
	if err != nil {
		return err
	}
	return EncodeBenchReport(w, r)
}

// EncodeBenchReport writes an already-built report as indented JSON.
func EncodeBenchReport(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintThroughput renders one throughput run as a human-readable line.
func PrintThroughput(w io.Writer, r ThroughputResult) {
	fmt.Fprintf(w, "shards=%d tasks=%d wall=%.2fs (%.1f tasks/s) sim-makespan=%.1f Mcycles checksum=%#x\n",
		r.Shards, r.Tasks, r.WallSeconds, r.TasksPerSec, r.SimMakespanMcycles, r.Checksum)
}
