package bench

import (
	"fmt"

	"regions/internal/apps/appkit"
	"regions/internal/metrics"
	"regions/internal/shard"
)

// This file is the work-stealing scheduler's A/B evidence. The standard
// throughput workload is balanced by construction — app-major round-robin
// submission hands every shard one copy of each app — so it cannot show
// what stealing buys. The imbalance workload is deliberately skewed
// instead: heavy and light copies of one app interleaved so that static
// placement piles every heavy task on shard 0, and the same task list is
// run twice, once with Config.NoSteal (the pre-stealing placement) and
// once with stealing. The checksums must match (the determinism gate); the
// max/min busy-cycle ratio is the balance claim in docs/PERFORMANCE.md.

// ImbalanceResult is the checked-in A/B: the same skewed task list under
// static placement and under work stealing.
type ImbalanceResult struct {
	Shards int    `json:"shards"`
	App    string `json:"app"`
	Tasks  int    `json:"tasks"`
	// NoSteal is the static-placement run: every heavy task lands on its
	// round-robin home shard, so shard 0 owns all of them.
	NoSteal ThroughputResult `json:"noSteal"`
	// Steal is the same task list with work stealing enabled.
	Steal ThroughputResult `json:"steal"`
}

// imbalanceApp picks the app the skewed workload runs: cfrac, the paper's
// lead benchmark, falling back to the first app if the list ever changes.
func imbalanceApp() appkit.App {
	apps := Apps()
	for _, a := range apps {
		if a.Name == "cfrac" {
			return a
		}
	}
	return apps[0]
}

// RunImbalance runs the skewed workload at the given shard count, both
// without and with stealing, verifies the summed checksums agree, and
// returns the pair. A non-nil registry is attached to the stealing run
// only, so the embedded report snapshot describes the configuration the
// engine actually ships with.
func RunImbalance(shards, scaleDiv int, reg *metrics.Registry) (*ImbalanceResult, error) {
	if shards < 1 {
		shards = 1
	}
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	app := imbalanceApp()
	heavy := app.DefaultScale / scaleDiv
	if heavy < 1 {
		heavy = 1
	}
	light := heavy / 16
	if light < 1 {
		light = 1
	}
	// 6 tasks per shard, submitted in index order so round-robin homes
	// task i on shard i%shards — making every i%shards==0 task heavy
	// piles all the heavy work on shard 0 under static placement.
	n := 6 * shards
	makeTasks := func() []shard.Task {
		tasks := make([]shard.Task, 0, n)
		for i := 0; i < n; i++ {
			scale := light
			name := app.Name + "-light"
			if i%shards == 0 {
				scale = heavy
				name = app.Name + "-heavy"
			}
			tasks = append(tasks, shard.Task{
				Name: name,
				Run:  func(e appkit.RegionEnv) uint32 { return app.Region(e, scale) },
			})
		}
		return tasks
	}

	run := func(noSteal bool, reg *metrics.Registry) (ThroughputResult, error) {
		engOpts := []shard.Option{shard.WithShards(shards), shard.WithMetrics(reg)}
		if noSteal {
			engOpts = append(engOpts, shard.WithNoSteal())
		}
		eng := shard.NewEngine(engOpts...)
		eng.SubmitBatch(makeTasks())
		agg := eng.Close()
		if agg.Failures > 0 {
			return ThroughputResult{}, fmt.Errorf("bench: imbalance run had %d failures", agg.Failures)
		}
		res := ThroughputResult{
			Shards:             shards,
			Tasks:              int(agg.Tasks),
			SimMakespanMcycles: float64(agg.MakespanCycles) / 1e6,
			SimTotalMcycles:    float64(agg.TotalCycles) / 1e6,
			Checksum:           agg.Checksum,
			Steals:             agg.Steals,
		}
		res.PerShardMcycles, res.BusyRatio = perShardBalance(agg)
		return res, nil
	}

	noSteal, err := run(true, nil)
	if err != nil {
		return nil, err
	}
	steal, err := run(false, reg)
	if err != nil {
		return nil, err
	}
	if steal.Checksum != noSteal.Checksum {
		return nil, fmt.Errorf("bench: stealing changed the checksum: %#x vs %#x",
			steal.Checksum, noSteal.Checksum)
	}
	return &ImbalanceResult{
		Shards:  shards,
		App:     app.Name,
		Tasks:   n,
		NoSteal: noSteal,
		Steal:   steal,
	}, nil
}
