package bench

import (
	"encoding/json"
	"io"
	"sort"
)

// WriteJSON runs the standard measurement matrix (every app on every
// malloc environment and on safe/unsafe regions, with and without the
// cache model where the figures need it) and writes all results as JSON,
// for plotting or regression tracking outside this repository.
func WriteJSON(w io.Writer, s *Suite) error {
	for _, app := range Apps() {
		for _, kind := range mallocColumns {
			s.MallocRun(app, kind, false)
			s.MallocRun(app, kind, true)
		}
		s.RegionRun(app, "safe", false, false)
		s.RegionRun(app, "safe", false, true)
		s.RegionRun(app, "unsafe", false, false)
		if app.SlowRegion != nil {
			s.RegionRun(app, "safe", true, false)
			s.RegionRun(app, "safe", true, true)
		}
	}
	keys := make([]string, 0, len(s.cache))
	for k := range s.cache {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	type jsonResult struct {
		App         string `json:"app"`
		Env         string `json:"env"`
		Slow        bool   `json:"slow,omitempty"`
		Checksum    uint32 `json:"checksum"`
		Allocs      uint64 `json:"allocs"`
		BytesKB     uint64 `json:"requestedKB"`
		MaxLiveKB   uint64 `json:"maxLiveKB"`
		Regions     uint64 `json:"regionsCreated,omitempty"`
		OSKB        uint64 `json:"osKB"`
		BaseCycles  uint64 `json:"baseCycles"`
		MemCycles   uint64 `json:"memCycles"`
		ReadStalls  uint64 `json:"readStalls,omitempty"`
		WriteStalls uint64 `json:"writeStalls,omitempty"`
	}
	out := make([]jsonResult, 0, len(keys))
	for _, k := range keys {
		r := s.cache[k]
		c := r.Counters
		out = append(out, jsonResult{
			App:         r.App,
			Env:         r.Env,
			Slow:        r.Slow,
			Checksum:    r.Checksum,
			Allocs:      c.Allocs,
			BytesKB:     c.BytesRequested / 1024,
			MaxLiveKB:   uint64(c.MaxLiveBytes) / 1024,
			Regions:     c.RegionsCreated,
			OSKB:        r.OSBytes / 1024,
			BaseCycles:  c.BaseCycles(),
			MemCycles:   c.MemCycles(),
			ReadStalls:  c.ReadStalls,
			WriteStalls: c.WriteStalls,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
