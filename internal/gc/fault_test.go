package gc

import (
	"errors"
	"testing"

	"regions/internal/mem"
	"regions/internal/stats"
	"regions/internal/trace"
)

// TestCollectOnPressureReclaimsGarbage caps the simulated OS at a small
// page budget, fills it with garbage, and checks that allocation still
// succeeds: the collector must respond to the OS refusing pages by
// collecting instead of failing.
func TestCollectOnPressureReclaimsGarbage(t *testing.T) {
	sp := mem.NewSpace(&stats.Counters{})
	g := New(sp)
	sp.SetPageLimit(24)

	f := g.PushFrame(1)
	defer g.PopFrame()
	for i := 0; i < 2000; i++ {
		p := g.Alloc(64)
		if p == 0 {
			t.Fatalf("alloc %d failed with only one live object; collections=%d", i, g.Collections())
		}
		f.Set(0, p) // only the newest object is live
	}
	if g.Collections() == 0 {
		t.Fatal("page pressure never forced a collection")
	}
}

// TestAllLiveHeapReportsTypedOOM fills a capped heap with objects that are
// all reachable, so no collection can help: Alloc must return 0 and
// TryAlloc the typed error, and the survivors must be intact.
func TestAllLiveHeapReportsTypedOOM(t *testing.T) {
	sp := mem.NewSpace(&stats.Counters{})
	g := New(sp)
	sp.SetPageLimit(16)

	var live []Ptr
	f := g.PushFrame(2000)
	defer g.PopFrame()
	for i := 0; i < 2000; i++ {
		p := g.Alloc(64)
		if p == 0 {
			break
		}
		sp.Store(p, uint32(i))
		f.Set(i, p)
		live = append(live, p)
	}
	if len(live) == 0 || len(live) == 2000 {
		t.Fatalf("expected the capped heap to fill partway, got %d objects", len(live))
	}
	if p, err := g.TryAlloc(64); p != 0 || !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("TryAlloc on a full live heap = (%#x, %v), want typed OOM", p, err)
	}
	var oe *mem.OOMError
	if _, err := g.TryAlloc(64); !errors.As(err, &oe) {
		t.Fatal("error is not a *mem.OOMError")
	}
	for i, p := range live {
		if v := sp.Load(p); v != uint32(i) {
			t.Fatalf("survivor %d clobbered: %d", i, v)
		}
	}
	// Recovery: drop the roots and the limit-bound heap serves again.
	for i := range live {
		f.Set(i, 0)
	}
	if p := g.Alloc(64); p == 0 {
		t.Fatal("allocation failed after the roots were dropped")
	}
}

// TestBigAllocationEmergencyCollection exercises the multi-page path: a
// dead big object's span must be reusable when the OS refuses fresh pages.
func TestBigAllocationEmergencyCollection(t *testing.T) {
	sp := mem.NewSpace(&stats.Counters{})
	g := New(sp)
	f := g.PushFrame(1)
	defer g.PopFrame()

	big := g.Alloc(3 * mem.PageSize)
	if big == 0 {
		t.Fatal("seed big allocation failed")
	}
	f.Set(0, 0)                                           // the big object is garbage
	sp.SetPageLimit(int(sp.MappedBytes() / mem.PageSize)) // no more pages, ever

	p := g.Alloc(3 * mem.PageSize)
	if p == 0 {
		t.Fatal("big allocation failed although a dead span of the right size existed")
	}
	if p != big {
		t.Fatalf("expected the reclaimed span %#x, got %#x", big, p)
	}
}

// TestGCOOMEmitsFaultEvent checks the trace hook on the giving-up path.
func TestGCOOMEmitsFaultEvent(t *testing.T) {
	sp := mem.NewSpace(&stats.Counters{})
	g := New(sp)
	tr := trace.New(64)
	g.SetTracer(tr)
	sp.SetFaultPlan(&mem.FaultPlan{FailProb: 1, Seed: 1})
	if p := g.Alloc(5 * mem.PageSize); p != 0 {
		t.Fatalf("alloc under total refusal returned %#x", p)
	}
	var found bool
	for _, ev := range tr.Events() {
		if ev.Kind == trace.KindFault && ev.Site == "oom" {
			found = true
		}
	}
	if !found {
		t.Fatal("no fault event emitted for the failed allocation")
	}
}

// TestFailProbDeterminism: the same plan over the same workload collects
// and fails identically.
func TestFailProbDeterminism(t *testing.T) {
	run := func() (uint64, int) {
		sp := mem.NewSpace(&stats.Counters{})
		g := New(sp)
		sp.SetFaultPlan(&mem.FaultPlan{FailProb: 0.3, Seed: 21})
		f := g.PushFrame(1)
		defer g.PopFrame()
		nulls := 0
		for i := 0; i < 300; i++ {
			p := g.Alloc(100)
			if p == 0 {
				nulls++
				continue
			}
			f.Set(0, p)
		}
		return g.Collections(), nulls
	}
	c1, n1 := run()
	c2, n2 := run()
	if c1 != c2 || n1 != n2 {
		t.Fatalf("identical plans diverged: (%d, %d) vs (%d, %d)", c1, n1, c2, n2)
	}
	if n1 == 0 && c1 == 0 {
		t.Fatal("plan injected nothing; test is vacuous")
	}
}
