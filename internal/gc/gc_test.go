package gc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regions/internal/mem"
	"regions/internal/stats"
)

func newGC() (*Collector, *mem.Space, *stats.Counters) {
	c := &stats.Counters{}
	sp := mem.NewSpace(c)
	return New(sp), sp, c
}

func TestAllocZeroedAndDistinct(t *testing.T) {
	g, sp, _ := newGC()
	f := g.PushFrame(2)
	defer g.PopFrame()
	p := g.Alloc(32)
	q := g.Alloc(32)
	f.Set(0, p)
	f.Set(1, q)
	if p == q {
		t.Fatal("aliasing allocations")
	}
	for i := 0; i < 32; i += 4 {
		if sp.Load(p+Ptr(i)) != 0 {
			t.Fatal("allocation not zeroed")
		}
	}
}

func TestCollectReclaimsGarbage(t *testing.T) {
	g, _, c := newGC()
	f := g.PushFrame(1)
	defer g.PopFrame()
	// Allocate much more than the collection threshold without roots;
	// the heap must stay bounded because everything is garbage.
	for i := 0; i < 100000; i++ {
		f.Set(0, g.Alloc(64))
		g.Safepoint()
	}
	if c.GCCollections == 0 {
		t.Fatal("no collections ran")
	}
	if g.HeapBytes() > 2*1024*1024 {
		t.Fatalf("heap grew to %d bytes for an all-garbage workload", g.HeapBytes())
	}
}

func TestReachableObjectsSurvive(t *testing.T) {
	g, sp, _ := newGC()
	f := g.PushFrame(1)
	defer g.PopFrame()

	// Build a 100-node linked list reachable from one root.
	var head Ptr
	for i := 0; i < 100; i++ {
		p := g.Alloc(8)
		sp.Store(p, uint32(1000+i))
		sp.Store(p+4, head)
		head = p
		f.Set(0, head)
	}
	for i := 0; i < 10; i++ {
		g.Collect()
	}
	// Walk the list; every node must be intact.
	n := 0
	for p := f.Get(0); p != 0; p = sp.Load(p + 4) {
		if v := sp.Load(p); v < 1000 || v >= 1100 {
			t.Fatalf("node %d corrupted: %d", n, v)
		}
		n++
	}
	if n != 100 {
		t.Fatalf("list has %d nodes after GC, want 100", n)
	}
}

func TestInteriorPointersRetain(t *testing.T) {
	g, sp, _ := newGC()
	f := g.PushFrame(1)
	defer g.PopFrame()
	p := g.Alloc(100)
	sp.Store(p, 0xabcd)
	f.Set(0, p+40) // interior pointer only
	g.Collect()
	if sp.Load(p) != 0xabcd {
		t.Fatal("object with only an interior pointer was collected")
	}
}

func TestGlobalRootsScanned(t *testing.T) {
	c := &stats.Counters{}
	sp := mem.NewSpace(c)
	globals := sp.MapPages(1)
	g := New(sp)
	g.RegisterRoots(globals, globals+mem.PageSize)

	p := g.Alloc(16)
	sp.Store(p, 77)
	sp.Store(globals, p)
	g.Collect()
	if sp.Load(p) != 77 {
		t.Fatal("object reachable from global was collected")
	}
	sp.Store(globals, 0)
	g.Collect()
	q := g.Alloc(16)
	_ = q // p's slot may be reused now; just ensure no panic
}

func TestBigObjects(t *testing.T) {
	g, sp, _ := newGC()
	f := g.PushFrame(1)
	defer g.PopFrame()
	big := g.Alloc(3 * mem.PageSize)
	f.Set(0, big)
	sp.Store(big+Ptr(3*mem.PageSize)-4, 9)
	g.Collect()
	if sp.Load(big+Ptr(3*mem.PageSize)-4) != 9 {
		t.Fatal("live big object damaged by collection")
	}
	// Drop it and allocate an identical one; pages must be reused.
	f.Set(0, 0)
	g.Collect()
	before := sp.MappedBytes()
	big2 := g.Alloc(3 * mem.PageSize)
	if sp.MappedBytes() != before {
		t.Fatalf("big span not reused: %d -> %d", before, sp.MappedBytes())
	}
	if sp.Load(big2) != 0 {
		t.Fatal("reused big span not zeroed")
	}
}

func TestRequestedSize(t *testing.T) {
	g, sp, _ := newGC()
	f := g.PushFrame(1)
	defer g.PopFrame()
	p := g.Alloc(21)
	f.Set(0, p)
	sp.Store(p, 5)
	if got := g.RequestedSize(p); got != 24 {
		t.Fatalf("RequestedSize=%d, want 24 (rounded)", got)
	}
	if sp.Load(p) != 5 {
		t.Fatal("RequestedSize touched object memory")
	}
	g.Collect()
	if sp.Load(p) != 5 {
		t.Fatal("reachable object collected")
	}
}

func TestPopFrameDropsRoots(t *testing.T) {
	g, sp, _ := newGC()
	f := g.PushFrame(1)
	p := g.Alloc(16)
	sp.Store(p, 3)
	f.Set(0, p)
	g.PopFrame()
	g.Collect()
	// p is garbage now; allocating many same-class objects must reuse it.
	outer := g.PushFrame(1)
	defer g.PopFrame()
	reused := false
	for i := 0; i < 300; i++ {
		q := g.Alloc(16)
		outer.Set(0, q)
		if q == p {
			reused = true
			break
		}
	}
	if !reused {
		t.Fatal("slot of unrooted object never reused")
	}
}

func TestGCCyclesCharged(t *testing.T) {
	g, _, c := newGC()
	f := g.PushFrame(1)
	defer g.PopFrame()
	f.Set(0, g.Alloc(16))
	g.Collect()
	if c.Cycles[stats.ModeGC] == 0 {
		t.Fatal("collection charged no gc cycles")
	}
}

func TestCyclicGarbageCollected(t *testing.T) {
	g, sp, _ := newGC()
	f := g.PushFrame(1)
	defer g.PopFrame()
	// A two-node cycle with no roots must be reclaimed (unlike pure
	// reference counting).
	a := g.Alloc(8)
	f.Set(0, a)
	b := g.Alloc(8)
	sp.Store(a+4, b)
	sp.Store(b+4, a)
	f.Set(0, 0)
	g.Collect()
	outer := g.PushFrame(1)
	defer g.PopFrame()
	reusedA, reusedB := false, false
	for i := 0; i < 2000 && !(reusedA && reusedB); i++ {
		q := g.Alloc(8)
		outer.Set(0, q)
		reusedA = reusedA || q == a
		reusedB = reusedB || q == b
	}
	if !reusedA || !reusedB {
		t.Fatalf("cycle not collected (a reused: %v, b reused: %v)", reusedA, reusedB)
	}
}

// TestQuickReachabilitySafety builds random object graphs and verifies that
// collection never reclaims a reachable object: after forced collections,
// every object reachable from the roots still holds its stamp.
func TestQuickReachabilitySafety(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, sp, _ := newGC()
		f := g.PushFrame(4)
		defer g.PopFrame()

		type obj struct {
			p     Ptr
			stamp uint32
			outs  []int
		}
		var objs []obj
		for i := 0; i < 200; i++ {
			p := g.Alloc(5 * 4)
			o := obj{p: p, stamp: 0x5000 + uint32(i)}
			sp.Store(p, o.stamp)
			// Link to up to 3 random earlier objects.
			for k := 1; k <= 3; k++ {
				if len(objs) > 0 && r.Intn(2) == 0 {
					j := r.Intn(len(objs))
					sp.Store(p+Ptr(k*4), objs[j].p)
					o.outs = append(o.outs, j)
				}
			}
			objs = append(objs, o)
			f.Set(r.Intn(4), p)
		}
		for i := 0; i < 3; i++ {
			g.Collect()
		}
		// Compute reachability from the four roots in the mirror.
		index := map[Ptr]int{}
		for i, o := range objs {
			index[o.p] = i
		}
		seen := map[int]bool{}
		var visit func(i int)
		visit = func(i int) {
			if seen[i] {
				return
			}
			seen[i] = true
			for _, j := range objs[i].outs {
				visit(j)
			}
		}
		for s := 0; s < 4; s++ {
			if p := f.Get(s); p != 0 {
				visit(index[p])
			}
		}
		for i := range objs {
			if seen[i] && sp.Load(objs[i].p) != objs[i].stamp {
				t.Logf("reachable object %d lost its stamp", i)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}
