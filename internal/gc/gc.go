// Package gc implements a Boehm–Weiser-style conservative, non-moving
// mark–sweep garbage collector on the simulated heap — the paper's fourth
// comparison allocator (Section 5.2). As in the paper's methodology, all
// frees are disabled: Free is a statistics-only no-op and storage is
// reclaimed exclusively by collection.
//
// The design follows the collector's shape: the heap is divided into pages
// dedicated to a single object size class, small objects live on per-class
// free lists threaded through the objects, roots are scanned conservatively
// (any root word that could address a live chunk marks it, interior pointers
// included), and the heap grows when collection does not recover enough
// space. Marking and sweeping are charged to the GC accounting mode, so the
// collector's time and cache behaviour show up in Figures 9 and 10.
package gc

import (
	"sort"

	"regions/internal/mem"
	"regions/internal/metrics"
	"regions/internal/stats"
	"regions/internal/trace"
)

// Ptr is a simulated heap address.
type Ptr = mem.Addr

// Object header bits (word 0 of every chunk):
//
//	bit 0: in use
//	bit 1: mark
//	bits 2..31: requested data size in bytes
const (
	hdrInuse = 1
	hdrMark  = 2
)

// classSizes are chunk sizes (one header word plus data), chosen so each
// divides into 4 KB pages with little slack.
var classSizes = []int{8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 408, 512, 816, 1024, 1364, 2048}

const maxSmallData = 2048 - mem.WordSize

// page classes in pageClass: values >= 0 index classSizes.
const (
	pageNone    = -1
	pageBigHead = -2
	pageBigTail = -3
)

// Collector is one conservative collector instance.
type Collector struct {
	sp *mem.Space
	c  *stats.Counters

	meta      Ptr // per-class free-list heads
	pageClass []int16
	bigPages  map[Ptr]int   // big-object head page -> page count
	freeBig   map[int][]Ptr // reclaimed big spans by page count

	frames []*frame
	rootLo Ptr // optional global root range
	rootHi Ptr

	bytesSinceGC uint64
	liveAfterGC  uint64
	minCollect   uint64
	pending      bool

	work []Ptr // mark worklist (collector-private, like BW's mark stack)

	tracer *trace.Tracer // nil unless event tracing is attached

	met *gcMetrics // nil unless a metrics registry is attached
}

// gcMetrics caches the series the collector emits (nil-guarded, like the
// tracer; updates charge no simulated cycles).
type gcMetrics struct {
	reg *metrics.Registry

	collections         *metrics.Counter
	pressureCollections *metrics.Counter
	liveBytes           *metrics.Gauge
}

// New creates a collector on sp.
func New(sp *mem.Space) *Collector {
	g := &Collector{
		sp:         sp,
		c:          sp.Counters(),
		bigPages:   map[Ptr]int{},
		freeBig:    map[int][]Ptr{},
		minCollect: 256 * 1024,
	}
	old := sp.SetMode(stats.ModeAlloc)
	g.meta = sp.MapPages(1)
	if g.meta == 0 {
		panic("gc: simulated OS refused the collector's metadata page")
	}
	g.notePages(g.meta, 1, pageNone)
	sp.SetMode(old)
	return g
}

// RegisterRoots adds [lo, hi) as a conservatively scanned root range,
// typically the program's global segment.
func (g *Collector) RegisterRoots(lo, hi Ptr) {
	g.rootLo, g.rootHi = lo, hi
}

// SetTracer attaches t as the collector's event sink (nil detaches); each
// collection then emits gc-mark-begin/end and gc-sweep-begin/end events. If
// t has no clock yet, the run's modelled cycle count becomes its timestamp
// source. Tracing charges no simulated cycles.
func (g *Collector) SetTracer(t *trace.Tracer) {
	g.tracer = t
	if t != nil {
		c := g.c
		t.InitClock(func() uint64 { return c.TotalCycles() })
	}
}

// SetMetrics attaches the collector to a metrics registry (nil detaches).
func (g *Collector) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		g.met = nil
		return
	}
	g.met = &gcMetrics{
		reg:                 reg,
		collections:         reg.Counter("regions_gc_collections_total"),
		pressureCollections: reg.Counter("regions_gc_pressure_collections_total"),
		liveBytes:           reg.Gauge("regions_gc_live_bytes"),
	}
}

// Metrics returns the attached registry, or nil.
func (g *Collector) Metrics() *metrics.Registry {
	if g.met == nil {
		return nil
	}
	return g.met.reg
}

func (g *Collector) notePages(first Ptr, n int, class int16) {
	firstNo := int(first >> mem.PageShift)
	for len(g.pageClass) < firstNo+n {
		g.pageClass = append(g.pageClass, pageNone)
	}
	for i := 0; i < n; i++ {
		g.pageClass[firstNo+i] = class
	}
}

func classFor(data int) int {
	for i, cs := range classSizes {
		if cs-mem.WordSize >= data {
			return i
		}
	}
	return -1
}

func (g *Collector) freeHead(class int) Ptr { return g.meta + Ptr(class*mem.WordSize) }

// Alloc allocates size bytes of zeroed memory. Collection may run first.
// When the simulated OS refuses pages, the collector runs an emergency
// collection and retries; if the heap still cannot satisfy the request,
// Alloc returns 0 (TryAlloc returns the typed error instead). An emergency
// collection can run between safepoints, so this path assumes live objects
// are reachable from frames or registered roots — the same contract as
// Safepoint; it only triggers when the OS is actually refusing memory.
func (g *Collector) Alloc(size int) Ptr {
	if size <= 0 {
		panic("gc: Alloc of non-positive size")
	}
	data := (size + 3) &^ 3
	g.noteAllocated(uint64(data))

	old := g.sp.SetMode(stats.ModeAlloc)
	defer g.sp.SetMode(old)
	g.c.Cycles[stats.ModeAlloc] += 3

	var p Ptr
	if data <= maxSmallData {
		p = g.allocSmall(data)
	} else {
		p = g.allocBig(data)
	}
	if p == 0 && g.tracer != nil {
		g.tracer.Emit(trace.Event{Kind: trace.KindFault, Region: -1,
			Size: int32(data), Aux: -1, Site: "oom"})
	}
	return p
}

// TryAlloc is Alloc returning a typed *mem.OOMError (wrapping
// mem.ErrOutOfMemory) when even an emergency collection cannot satisfy the
// request.
func (g *Collector) TryAlloc(size int) (Ptr, error) {
	p := g.Alloc(size)
	if p == 0 {
		return 0, g.sp.OOM("gc: alloc")
	}
	return p, nil
}

// emergencyCollect runs a collection in response to the OS refusing pages,
// regardless of the growth policy's pending flag.
func (g *Collector) emergencyCollect() {
	g.pending = false
	if g.met != nil {
		g.met.pressureCollections.Inc()
	}
	g.Collect()
}

func (g *Collector) allocSmall(data int) Ptr {
	class := classFor(data)
	hd := g.freeHead(class)
	slot := g.sp.Load(hd)
	if slot == 0 {
		if !g.carvePage(class) {
			// OS refused a fresh page: collect, then retry the replenished
			// free list before asking the OS once more.
			g.emergencyCollect()
			if g.sp.Load(hd) == 0 && !g.carvePage(class) {
				return 0
			}
		}
		slot = g.sp.Load(hd)
	}
	g.sp.Store(hd, g.sp.Load(slot+mem.WordSize)) // pop
	g.sp.Store(slot, uint32(data)<<2|hdrInuse)
	g.sp.ZeroRange(slot+mem.WordSize, data)
	g.bytesSinceGC += uint64(classSizes[class])
	return slot + mem.WordSize
}

// carvePage dedicates a fresh page to class and threads its slots onto the
// free list, reporting false if the simulated OS refuses the page.
func (g *Collector) carvePage(class int) bool {
	page := g.sp.MapPages(1)
	if page == 0 {
		return false
	}
	g.notePages(page, 1, int16(class))
	cs := classSizes[class]
	hd := g.freeHead(class)
	for off := mem.PageSize/cs*cs - cs; off >= 0; off -= cs {
		slot := page + Ptr(off)
		g.sp.Store(slot, 0) // free
		g.sp.Store(slot+mem.WordSize, g.sp.Load(hd))
		g.sp.Store(hd, slot)
	}
	return true
}

func (g *Collector) allocBig(data int) Ptr {
	n := (data + mem.WordSize + mem.PageSize - 1) / mem.PageSize
	page := g.takeBig(n)
	if page == 0 {
		g.emergencyCollect()
		if page = g.takeBig(n); page == 0 {
			return 0
		}
	}
	g.bigPages[page] = n
	g.sp.Store(page, uint32(data)<<2|hdrInuse)
	g.bytesSinceGC += uint64(n * mem.PageSize)
	return page + mem.WordSize
}

// takeBig returns an n-page span from the reclaimed-span list or the OS,
// or 0 when neither can provide one.
func (g *Collector) takeBig(n int) Ptr {
	if spans := g.freeBig[n]; len(spans) > 0 {
		page := spans[len(spans)-1]
		g.freeBig[n] = spans[:len(spans)-1]
		for i := 0; i < n; i++ {
			g.sp.ZeroPageFree(page + Ptr(i)<<mem.PageShift)
		}
		return page
	}
	page := g.sp.MapPages(n)
	if page == 0 {
		return 0
	}
	g.notePages(page, 1, pageBigHead)
	if n > 1 {
		g.notePages(page+mem.PageSize, n-1, pageBigTail)
	}
	return page
}

// RequestedSize returns the rounded data size recorded in a live object's
// header. It charges no cycles; it exists so callers implementing the
// paper's "frees disabled" discipline can keep requested-byte statistics.
func (g *Collector) RequestedSize(p Ptr) int {
	var hdr uint32
	g.sp.Uncharged(func() { hdr = g.sp.Load(p - mem.WordSize) })
	if hdr&hdrInuse == 0 {
		panic("gc: RequestedSize of dead object")
	}
	return int(hdr >> 2)
}

// noteAllocated implements the heap-growth policy: when the bytes allocated
// since the last collection exceed the live data (or a floor), a collection
// becomes pending. It runs at the next Safepoint rather than immediately,
// so values held only in host-side temporaries between safepoints are never
// collected — the role the C stack scan plays for the real collector.
func (g *Collector) noteAllocated(n uint64) {
	threshold := g.liveAfterGC
	if threshold < g.minCollect {
		threshold = g.minCollect
	}
	if g.bytesSinceGC+n >= threshold {
		g.pending = true
	}
}

// Safepoint runs a pending collection. Callers must invoke it only when
// every live object is reachable from frames or registered roots.
func (g *Collector) Safepoint() {
	if g.pending {
		g.pending = false
		g.Collect()
	}
}

// Collect runs a full stop-the-world mark–sweep collection.
func (g *Collector) Collect() {
	old := g.sp.SetMode(stats.ModeGC)
	defer g.sp.SetMode(old)
	g.c.GCCollections++
	g.c.Cycles[stats.ModeGC] += 50 // world stop/start overhead
	ordinal := int32(g.c.GCCollections)

	// Mark phase: conservative scan of frames and the global range.
	if g.tracer != nil {
		g.tracer.Emit(trace.Event{Kind: trace.KindGCMarkBegin, Region: -1, Aux: ordinal})
	}
	for _, f := range g.frames {
		for _, v := range f.slots {
			g.c.Cycles[stats.ModeGC]++
			g.markConservative(v)
		}
	}
	for a := g.rootLo; a < g.rootHi; a += mem.WordSize {
		g.markConservative(g.sp.Load(a))
	}
	for len(g.work) > 0 {
		slot := g.work[len(g.work)-1]
		g.work = g.work[:len(g.work)-1]
		g.scanObject(slot)
	}
	if g.tracer != nil {
		g.tracer.Emit(trace.Event{Kind: trace.KindGCMarkEnd, Region: -1, Aux: ordinal})
		g.tracer.Emit(trace.Event{Kind: trace.KindGCSweepBegin, Region: -1, Aux: ordinal})
	}

	g.sweep()
	g.bytesSinceGC = 0
	if g.met != nil {
		g.met.collections.Inc()
		g.met.liveBytes.Set(int64(g.liveAfterGC))
	}
	if g.tracer != nil {
		live := g.liveAfterGC
		if live > 1<<31-1 {
			live = 1<<31 - 1
		}
		g.tracer.Emit(trace.Event{Kind: trace.KindGCSweepEnd, Region: -1,
			Size: int32(live), Aux: ordinal})
	}
}

// chunkOf maps an arbitrary word to the chunk containing it, or 0.
// Interior pointers are honoured, as in the Boehm–Weiser collector.
func (g *Collector) chunkOf(v Ptr) Ptr {
	pg := int(v >> mem.PageShift)
	if pg <= 0 || pg >= len(g.pageClass) {
		return 0
	}
	switch class := g.pageClass[pg]; {
	case class >= 0:
		cs := Ptr(classSizes[class])
		base := v &^ Ptr(mem.PageSize-1)
		off := (v - base) / cs * cs
		if int(off)+int(cs) > mem.PageSize {
			return 0 // page slack past the last whole slot
		}
		return base + off
	case class == pageBigHead:
		return v &^ Ptr(mem.PageSize-1)
	case class == pageBigTail:
		for p := pg; p > 0; p-- {
			if g.pageClass[p] == pageBigHead {
				return Ptr(p) << mem.PageShift
			}
		}
	}
	return 0
}

func (g *Collector) markConservative(v Ptr) {
	slot := g.chunkOf(v)
	if slot == 0 {
		return
	}
	hdr := g.sp.Load(slot)
	if hdr&hdrInuse == 0 || hdr&hdrMark != 0 {
		return
	}
	g.sp.Store(slot, hdr|hdrMark)
	g.work = append(g.work, slot)
}

// scanObject conservatively scans the data words of a marked chunk.
func (g *Collector) scanObject(slot Ptr) {
	hdr := g.sp.Load(slot)
	data := int(hdr >> 2)
	for off := mem.WordSize; off <= data; off += mem.WordSize {
		g.markConservative(g.sp.Load(slot + Ptr(off)))
	}
}

// sweep rebuilds the free lists from unmarked chunks and clears marks.
func (g *Collector) sweep() {
	var live uint64
	// Reset small free lists; surviving order is address order.
	for class := range classSizes {
		g.sp.Store(g.freeHead(class), 0)
	}
	heads := make([]Ptr, len(classSizes)) // tail-insert cursors (host-side)
	for pg := len(g.pageClass) - 1; pg > 0; pg-- {
		class := g.pageClass[pg]
		if class < 0 {
			continue
		}
		cs := classSizes[class]
		page := Ptr(pg) << mem.PageShift
		for off := mem.PageSize/cs*cs - cs; off >= 0; off -= cs {
			slot := page + Ptr(off)
			hdr := g.sp.Load(slot)
			switch {
			case hdr&hdrInuse == 0: // already free
				g.sp.Store(slot+mem.WordSize, heads[class])
				heads[class] = slot
			case hdr&hdrMark != 0: // survivor
				g.sp.Store(slot, hdr&^uint32(hdrMark))
				live += uint64(cs)
			default: // garbage
				g.sp.Store(slot, 0)
				g.sp.Store(slot+mem.WordSize, heads[class])
				heads[class] = slot
			}
		}
	}
	for class := range classSizes {
		g.sp.Store(g.freeHead(class), heads[class])
	}
	// Big objects: unmarked heads are garbage; their spans go to a
	// per-page-count reuse list (a simplification of BW's block freeing).
	// Heads are visited in address order so runs stay deterministic.
	bigHeads := make([]Ptr, 0, len(g.bigPages))
	for page := range g.bigPages {
		bigHeads = append(bigHeads, page)
	}
	sort.Slice(bigHeads, func(i, j int) bool { return bigHeads[i] < bigHeads[j] })
	for _, page := range bigHeads {
		n := g.bigPages[page]
		hdr := g.sp.Load(page)
		if hdr&hdrMark != 0 {
			g.sp.Store(page, hdr&^uint32(hdrMark))
			live += uint64(n * mem.PageSize)
		} else {
			g.sp.Store(page, 0)
			g.freeBig[n] = append(g.freeBig[n], page)
			delete(g.bigPages, page)
		}
	}
	g.liveAfterGC = live
}

// --- Shadow stack of conservative roots -----------------------------------

type frame struct {
	slots []Ptr
}

// Frame is a root frame handle.
type Frame struct{ f *frame }

// PushFrame enters an activation with n root slots.
func (g *Collector) PushFrame(n int) Frame {
	f := &frame{slots: make([]Ptr, n)}
	g.frames = append(g.frames, f)
	return Frame{f}
}

// PopFrame leaves the innermost activation.
func (g *Collector) PopFrame() {
	if len(g.frames) == 0 {
		panic("gc: PopFrame on empty stack")
	}
	g.frames = g.frames[:len(g.frames)-1]
}

// Set stores a root.
func (fr Frame) Set(i int, p Ptr) { fr.f.slots[i] = p }

// Get reads a root.
func (fr Frame) Get(i int) Ptr { return fr.f.slots[i] }

// Collections returns how many collections have run.
func (g *Collector) Collections() uint64 { return g.c.GCCollections }

// HeapBytes returns the bytes the collector has mapped for objects.
func (g *Collector) HeapBytes() uint64 {
	var n uint64
	for _, c := range g.pageClass {
		if c >= 0 || c == pageBigHead || c == pageBigTail {
			n += mem.PageSize
		}
	}
	return n
}
