package serve

import (
	"reflect"
	"strings"
	"testing"

	"regions/internal/mem"
	"regions/internal/metrics"
	"regions/internal/trace"
)

// TestServeSpansChecksumParity is the acceptance gate from the issue: span
// recording is host-side observability, so enabling it must change nothing
// the simulation computes — not the checksum, not a single cycle count.
func TestServeSpansChecksumParity(t *testing.T) {
	off := testConfig()
	on := testConfig()
	on.Spans = true

	a, err := Run(off)
	if err != nil {
		t.Fatalf("spans off: %v", err)
	}
	b, err := Run(on)
	if err != nil {
		t.Fatalf("spans on: %v", err)
	}
	if b.Spans == nil {
		t.Fatal("Spans requested but Result.Spans is nil")
	}
	if a.Spans != nil {
		t.Fatal("Spans not requested but Result.Spans is set")
	}
	// Everything except the report itself must be bit-identical.
	b2 := *b
	b2.Spans = nil
	if !reflect.DeepEqual(a, &b2) {
		t.Errorf("span recording perturbed the run:\n  off: %+v\n  on:  %+v", a, &b2)
	}
}

// TestServeSpansDeterminism pins the report itself: two same-seed runs with
// spans on must produce deeply equal Results, span report included.
func TestServeSpansDeterminism(t *testing.T) {
	cfg := testConfig()
	cfg.Spans = true
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("span reports differ across same-seed runs:\n  a: %+v\n  b: %+v", a.Spans, b.Spans)
	}
}

// TestServeSpansConservation runs spans under every adversarial mode the
// simulator has — deferred reclamation with a starved sweeper (allocation
// tax mid-phase), fault plans and page limits (aborted sessions), tenants
// with a mid-run resize (migration pauses) — and relies on Run failing if
// any completed request's phases do not sum exactly to its latency
// (buildSpanReport enforces trace.SpanProfile.Conserved). On top of that it
// checks the report accounted for every completed session.
func TestServeSpansConservation(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"baseline", func(c *Config) {}},
		{"deferred-tax", func(c *Config) {
			// Saturating load: no idle gaps, so debt drains only through the
			// allocation tax and the mid-phase carve-out is exercised.
			c.Rate = 20000
			c.DeferredDelete = true
			c.SweepBudget = 1
			c.SweepHighWater = 1
		}},
		{"faults", func(c *Config) {
			c.FaultPlan = &mem.FaultPlan{FailProb: 0.3, Seed: 7}
			c.PageLimit = 64
		}},
		{"resize-tenants", func(c *Config) {
			c.Tenants = 8
			c.ResizeTo = 6
			c.DeferredDelete = true
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			cfg.Spans = true
			tc.mod(&cfg)
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("traced run: %v", err)
			}
			rep := res.Spans
			if rep == nil {
				t.Fatal("no span report")
			}
			if rep.Truncated || rep.DroppedEvents != 0 {
				t.Fatalf("default ring truncated: dropped=%d", rep.DroppedEvents)
			}
			if uint64(rep.Requests) != res.Completed {
				t.Fatalf("report covers %d requests, run completed %d", rep.Requests, res.Completed)
			}
			// Each slow request's published breakdown must itself conserve.
			for _, sr := range rep.SlowRequests {
				var sum uint64
				for _, c := range sr.PhaseCycles {
					sum += c
				}
				if sum != sr.LatencyCycles {
					t.Errorf("slow request %d: phases sum to %d, latency %d",
						sr.Session, sum, sr.LatencyCycles)
				}
			}
			if tc.name == "deferred-tax" {
				var sweep uint64
				for _, p := range rep.Phases {
					if p.Phase == "sweep" {
						sweep = p.TotalCycles
					}
				}
				if sweep == 0 {
					t.Error("starved-sweeper run attributed no cycles to the sweep phase")
				}
			}
		})
	}
}

// TestServeSpansReportShape checks the report surface: schema tag, one row
// per span kind in report order, slowest-first ordering, the TopSlow cap,
// and the per-phase histogram + SLO-miss metric series.
func TestServeSpansReportShape(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := testConfig()
	cfg.Spans = true
	cfg.TopSlow = 3
	cfg.SLOP99 = 1 // every completed request misses
	cfg.Metrics = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Spans
	if rep.Schema != "regions/serve-spans/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	kinds := trace.SpanKinds()
	if len(rep.Phases) != len(kinds) {
		t.Fatalf("%d phase rows, want %d", len(rep.Phases), len(kinds))
	}
	for i, k := range kinds {
		if rep.Phases[i].Phase != k.String() {
			t.Errorf("phase row %d = %q, want %q", i, rep.Phases[i].Phase, k)
		}
	}
	if len(rep.SlowRequests) != 3 {
		t.Fatalf("TopSlow=3 returned %d slow requests", len(rep.SlowRequests))
	}
	for i := 1; i < len(rep.SlowRequests); i++ {
		if rep.SlowRequests[i].LatencyCycles > rep.SlowRequests[i-1].LatencyCycles {
			t.Errorf("slow requests not sorted: %d after %d",
				rep.SlowRequests[i].LatencyCycles, rep.SlowRequests[i-1].LatencyCycles)
		}
	}
	snap := reg.Snapshot()
	if v, ok := snap.Counter("regions_serve_slo_miss_total"); !ok || v != uint64(res.Completed) {
		t.Errorf("slo_miss_total = %d (present %v), want %d", v, ok, res.Completed)
	}
	found := false
	for _, h := range snap.Histograms {
		if strings.HasPrefix(h.Name, `regions_serve_phase_cycles{phase=`) && h.Count > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no populated regions_serve_phase_cycles series in the registry")
	}
}

// TestServeSpansExternalTracer checks a caller-supplied ring implies Spans
// and receives the raw event stream (the regiontrace -spans path).
func TestServeSpansExternalTracer(t *testing.T) {
	cfg := testConfig()
	cfg.Sessions = 120
	cfg.SpanTracer = trace.New(1 << 16)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spans == nil {
		t.Fatal("SpanTracer did not imply Spans")
	}
	p, err := trace.BuildSpanProfile(cfg.SpanTracer.Events(), cfg.SpanTracer.Stats().Dropped)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Conserved(); err != nil {
		t.Fatal(err)
	}
	if uint64(len(p.Requests)) != res.Completed {
		t.Fatalf("external ring saw %d requests, run completed %d", len(p.Requests), res.Completed)
	}
}
