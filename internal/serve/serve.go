// Package serve is the multi-tenant serving simulator: the server-shaped
// workload the ROADMAP's "millions of users" north star asks for, built on
// the shard engine. A seeded open-loop Poisson arrival process (with
// optional burst phases) feeds thousands of sessions onto N shards; each
// session owns one or more regions for a request lifetime — parse into a
// request region, work in a second region that outlives it (the non-lexical
// lifetime shape), delete both — with its allocation mix drawn from the six
// benchmark apps' per-site censuses (see profiles.go).
//
// Latency is modelled, not wall-clock: a shard is one simulated machine
// serving its sessions in FIFO order, so a session's latency is its queue
// wait plus its measured service time, both in simulated cycles. The model
// is a per-shard single-server queue driven by real service times: start =
// max(arrival, previous completion), completion = start + the simulated
// cycles the session actually consumed on the shard's runtime. That makes
// every percentile deterministic for a (config, seed) pair — the serving
// analogue of the batch harness's checksum gate.
//
// Overload is a first-class outcome, not a crash: when the modelled queue
// is full a new session is shed with a typed ErrOverload before it touches
// the runtime, and when the simulated OS refuses pages mid-request
// (SetPageLimit, FaultPlan — PR 2's failure model recast as a backpressure
// story) the session aborts gracefully, releases its regions, and counts as
// an OOM shed. Admitted/shed/queued counters, a queue-depth gauge per
// shard, and the latency histogram are exported through the standard
// metrics registry, so `regionserve -metrics-addr` serves them at /metrics
// live. docs/SERVING.md is the full story; cmd/regionserve the CLI.
package serve

import (
	"errors"
	"fmt"
	"sync"

	"regions/internal/apps/appkit"
	"regions/internal/core"
	"regions/internal/mem"
	"regions/internal/metrics"
	"regions/internal/shard"
	"regions/internal/trace"
)

// ErrOverload is the sentinel every shed session's error wraps: the server
// refused or aborted the request to protect the tenants it already
// admitted. Test with errors.Is; OOM-caused sheds also match
// mem.ErrOutOfMemory.
var ErrOverload = errors.New("serve: overloaded")

// OverloadError describes one shed session. It wraps ErrOverload, and — for
// sessions aborted by a refused page mapping — the runtime's *Fault chain,
// so errors.Is(err, mem.ErrOutOfMemory) distinguishes OOM sheds from
// queue-full sheds.
type OverloadError struct {
	Session int    // session id (arrival order)
	Shard   int    // home shard
	Reason  string // "queue full" or "out of memory"
	Err     error  // underlying cause for OOM sheds, nil for queue sheds
}

// Error implements error.
func (e *OverloadError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("serve: session %d shed on shard %d: %s: %v",
			e.Session, e.Shard, e.Reason, e.Err)
	}
	return fmt.Sprintf("serve: session %d shed on shard %d: %s",
		e.Session, e.Shard, e.Reason)
}

// Unwrap makes errors.Is see both ErrOverload and the underlying cause.
func (e *OverloadError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrOverload, e.Err}
	}
	return []error{ErrOverload}
}

// Config sizes a serving run. The zero value of every optional field picks
// the documented default.
type Config struct {
	// Sessions is the number of requests to offer (required, > 0).
	Sessions int
	// Seed seeds the arrival process, profile draws, and session weights.
	Seed int64
	// Shards is the number of independent runtimes serving (default 4).
	Shards int
	// Rate is the offered load: mean arrivals per simulated Mcycle across
	// the whole system (default 700, roughly 0.7 utilization on 4 shards
	// with the default profile mix — enough contention that queueing is
	// visible in the percentiles while the SLO still passes).
	Rate float64
	// BurstEvery/BurstLen/BurstFactor overlay burst phases on the arrival
	// process: during the first BurstLen cycles of every BurstEvery-cycle
	// period the rate is multiplied by BurstFactor (default 4; bursts are
	// off while BurstEvery is 0).
	BurstEvery  uint64
	BurstLen    uint64
	BurstFactor float64
	// MaxQueue is the modelled per-shard queue cap: a session arriving
	// while MaxQueue sessions are queued or in service on its shard is
	// shed (default 64).
	MaxQueue int
	// SLOP99 is the p99 latency target in simulated cycles that the run's
	// pass/fail line is judged against (default 1,000,000; the SLO is
	// reported, never enforced).
	SLOP99 uint64
	// PageLimit, when > 0, caps each shard's simulated OS at that many 4 KB
	// pages — the overload lever. FaultPlan, when non-nil, installs a copy
	// of the injected-failure schedule on every shard.
	PageLimit int
	FaultPlan *mem.FaultPlan
	// Profile, when non-empty, restricts every session to the named profile
	// instead of the weighted six-app mix — e.g. "bulk", the large-region
	// archetype the deferred-reclamation A/B benchmark serves. Unknown
	// names are an error from Run.
	Profile string
	// DeferredDelete serves with deferred region reclamation
	// (core.Options.DeferredDelete): a session's deletes detach in O(page
	// lists) and the per-page poisoning runs in bounded sweep slices during
	// the shard's modelled idle gaps — the cycles between one session's
	// completion and the next arrival — plus the allocation tax above the
	// high-water mark. Sweep slices never extend a session's service time
	// (serveOne measures and complete subtracts them), which is exactly the
	// tail-latency claim the mode exists to test. The allocation address
	// stream, and therefore Result.Checksum, is bit-identical to a
	// synchronous run with the same seed.
	DeferredDelete bool
	// SweepBudget and SweepHighWater tune deferred reclamation (pages per
	// slice, debt level that triggers the allocation tax); zero keeps the
	// core defaults. Meaningless unless DeferredDelete is set.
	SweepBudget    int
	SweepHighWater int
	// NoStrPool serves with the pooled string allocator's free lists
	// disabled on every shard (core.Options.NoStrPool) — the control arm of
	// the string-pool A/B. On recycling profiles ("strheavy") checksums are
	// content sums, so a pooled run and its NoStrPool control must agree
	// bit for bit while their cycle counts and OS traffic diverge.
	NoStrPool bool
	// Tenants, when > 0, turns on tenant mode: each session belongs to one
	// of this many tenants (drawn with a triangular skew — tenant 0 hottest)
	// and is homed on its tenant's shard instead of round-robin, and every
	// session appends to its tenant's long-lived state region. Tenant mode
	// switches Result.Checksum to content sums (pure functions of each
	// session, not allocation addresses), because tenant migration and
	// resize legitimately change placement: the checksum must stay
	// bit-identical across a resize A/B, which address sums cannot do.
	Tenants int
	// ResizeTo, when > 0, grows the engine live from Shards to ResizeTo
	// shards at a mid-run barrier, migrates every tenant region onto a
	// weight-balanced placement over the grown engine (see tenantHomes),
	// and serves the rest of the schedule there. Requires Tenants > 0 and
	// ResizeTo > Shards.
	ResizeTo int
	// ResizeAfter is the fraction of sessions served before the resize
	// barrier (default 0.5). Only meaningful with ResizeTo.
	ResizeAfter float64
	// Metrics, when non-nil, receives the serve series (and attaches every
	// shard runtime, as in shard.Config). A private registry is used when
	// nil, so percentiles work either way.
	Metrics *metrics.Registry
	// Spans turns on request-level span tracing: every completed session's
	// critical path — queue wait, parse, work, delete, and re-attributed
	// sweep time — is recorded as begin/end span pairs on the modelled
	// timeline (see spans.go), folded into Result.Spans, checked for
	// conservation (phase cycles sum exactly to end-to-end latency per
	// request), and observed into regions_serve_phase_cycles{phase=...}
	// histograms. Host-side only: cycle counts and checksums are
	// bit-identical with Spans on or off.
	Spans bool
	// SpanTracer, when non-nil, is the ring the span events are emitted into
	// (implies Spans), so callers can export the raw stream — regiontrace
	// -spans renders it as a Chrome timeline. The tracer must have no clock
	// set: span emitters stamp their own modelled-timeline cycles. A private
	// appropriately-sized ring is used when nil.
	SpanTracer *trace.Tracer
	// TopSlow is how many slowest requests Result.Spans lists with their
	// phase breakdowns (default 5; meaningful only with Spans).
	TopSlow int
}

func (cfg Config) withDefaults() Config {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 700
	}
	if cfg.BurstFactor <= 0 {
		cfg.BurstFactor = 4
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.SLOP99 == 0 {
		cfg.SLOP99 = 1_000_000
	}
	if cfg.ResizeAfter == 0 {
		cfg.ResizeAfter = 0.5
	}
	if cfg.SpanTracer != nil {
		cfg.Spans = true
	}
	if cfg.TopSlow <= 0 {
		cfg.TopSlow = 5
	}
	return cfg
}

// ShardStats is one shard's serving tally.
type ShardStats struct {
	Shard     int    `json:"shard"`
	Admitted  uint64 `json:"admitted"`
	Completed uint64 `json:"completed"`
	Queued    uint64 `json:"queued"`
	ShedQueue uint64 `json:"shedQueue"`
	ShedOOM   uint64 `json:"shedOOM"`
	MaxDepth  int    `json:"maxQueueDepth"`
	// BusyUntilCycles is the shard's modelled clock at drain — the
	// completion time of its last admitted session.
	BusyUntilCycles uint64 `json:"busyUntilCycles"`
}

// Result is one serving run's outcome. Every field is deterministic for a
// (Config, Seed) pair — there is deliberately no wall-clock field.
type Result struct {
	Sessions int     `json:"sessions"`
	Shards   int     `json:"shards"`
	Seed     int64   `json:"seed"`
	Rate     float64 `json:"ratePerMcycle"`

	// Admitted counts sessions that entered service; Completed the subset
	// that finished (Admitted - ShedOOM). Queued counts admitted sessions
	// whose modelled queue wait was nonzero. ShedQueue were rejected at
	// admission, ShedOOM aborted mid-request by a refused page mapping.
	Admitted  uint64 `json:"admitted"`
	Completed uint64 `json:"completed"`
	Queued    uint64 `json:"queued"`
	ShedQueue uint64 `json:"shedQueue"`
	ShedOOM   uint64 `json:"shedOOM"`
	// Leaked counts regions a session failed to delete at abort (safe —
	// the safety machinery refused — but a reclamation debt worth seeing).
	Leaked uint64 `json:"leaked,omitempty"`

	// Latency percentiles over completed sessions, in simulated cycles,
	// estimated from the fixed-bucket regions_serve_latency_cycles
	// histogram.
	P50  uint64 `json:"p50Cycles"`
	P99  uint64 `json:"p99Cycles"`
	P999 uint64 `json:"p999Cycles"`
	Mean uint64 `json:"meanCycles"`
	// MaxQueueDepth is the deepest modelled queue any shard saw.
	MaxQueueDepth int `json:"maxQueueDepth"`
	// MakespanCycles is the modelled drain time: the maximum shard clock.
	MakespanCycles uint64 `json:"makespanCycles"`
	// Checksum sums every completed session's checksum — the determinism
	// gate, exactly as in the batch engine.
	Checksum uint32 `json:"checksum"`
	// MappedBytes sums every shard's simulated-OS traffic at drain — the
	// page-map pressure the string pool exists to relieve on recycling
	// profiles.
	MappedBytes uint64 `json:"mappedBytes"`

	// Pooled-string-allocator tallies summed over shards at drain: bump
	// allocations, pool hits, above-ceiling allocations, and explicit
	// frees. StrReuseRatio is StrReuse / (StrNew + StrReuse); all zero on
	// profiles that never free.
	StrNew        uint64  `json:"strNew,omitempty"`
	StrReuse      uint64  `json:"strReuse,omitempty"`
	StrBig        uint64  `json:"strBig,omitempty"`
	StrFreed      uint64  `json:"strFreed,omitempty"`
	StrReuseRatio float64 `json:"strReuseRatio,omitempty"`

	SLOTarget uint64 `json:"sloTargetP99"`
	SLOPass   bool   `json:"sloPass"`

	// Deferred-reclamation outcome (Config.DeferredDelete only).
	// SweptPages counts pages the incremental sweepers poisoned across all
	// shards; SweepDebtPeakPages is the highest debt any shard carried —
	// the boundedness gate. ReclamationLagCycles is the worst per-shard
	// drain at Close: the simulated cycles of debt still owed when the last
	// session finished, i.e. how far reclamation trailed the workload.
	DeferredDelete       bool   `json:"deferredDelete,omitempty"`
	SweptPages           uint64 `json:"sweptPages,omitempty"`
	SweepDebtPeakPages   int    `json:"sweepDebtPeakPages,omitempty"`
	ReclamationLagCycles uint64 `json:"reclamationLagCycles,omitempty"`

	// Tenant/resize outcome (Config.Tenants / Config.ResizeTo only).
	// TenantChecksum sums a content digest (core.ContentChecksum) over
	// every tenant region at drain. It is placement- and shard-independent
	// by construction, so a resize run and its no-resize control must agree
	// on it bit for bit — the serving half of the migration determinism
	// gate. Migrations and MigratedPages count the barrier's region moves.
	Tenants        int    `json:"tenants,omitempty"`
	ResizeTo       int    `json:"resizeTo,omitempty"`
	TenantChecksum uint32 `json:"tenantChecksum,omitempty"`
	Migrations     uint64 `json:"migrations,omitempty"`
	MigratedPages  uint64 `json:"migratedPages,omitempty"`
	// Phase busy-cycle balance (ResizeTo only): max/min simulated busy
	// cycles across the shards serving each phase — phase 1 runs on Shards
	// shards, phase 2 on ResizeTo. The resize claim is the phase-2 ratio
	// dropping toward 1.0 as migration spreads the hot tenants out.
	Phase1BusyRatio float64 `json:"phase1BusyRatio,omitempty"`
	Phase2BusyRatio float64 `json:"phase2BusyRatio,omitempty"`
	// SweepDebtPeakPhases is the max sweep-debt peak across shards per
	// phase (deferred resize runs only): the barrier resets each shard's
	// peak via ResetSweepDebtPeak, giving each phase its own A/B window.
	SweepDebtPeakPhases []int `json:"sweepDebtPeakPhases,omitempty"`

	// Spans is the request-level attribution report (Config.Spans only):
	// per-phase quantiles and the top-K slowest requests, conservation-
	// checked. See SpanReport for the JSON schema.
	Spans *SpanReport `json:"spans,omitempty"`

	PerShard []ShardStats `json:"perShard"`

	// FirstOverload is the earliest shed session's error (by session id),
	// nil when nothing was shed. Excluded from JSON so reports stay
	// diffable.
	FirstOverload error `json:"-"`
}

// latencyBounds are the fixed histogram buckets for request latency:
// power-of-two simulated-cycle bounds from 2 Kcycles to 2 Gcycles.
var latencyBounds = func() []uint64 {
	var b []uint64
	for s := uint(11); s <= 31; s++ {
		b = append(b, 1<<s)
	}
	return b
}()

// server holds one run's cached metric handles and, in tenant mode, the
// driver-side tenant table.
type server struct {
	cfg       Config
	admitted  *metrics.Counter
	completed *metrics.Counter
	queued    *metrics.Counter
	shedQueue *metrics.Counter
	shedOOM   *metrics.Counter
	latency   *metrics.Histogram
	sloMiss   *metrics.Counter

	// Span tracing (Config.Spans; see spans.go). spanT nil means off —
	// every recording site nil-checks it, the one-predicate contract.
	spanT     *trace.Tracer
	phaseHist []*metrics.Histogram // indexed by trace.SpanKind

	// content switches session checksums from allocation addresses to pure
	// functions of the session (tenant mode only; see Config.Tenants).
	content bool
	tenants []*tenantState
}

// Tenant-state layout: each session appends tenantNodes*weight scanned
// nodes of tenantNodeSize bytes to its tenant's region, word 0 a small-int
// payload, word 1 a sameregion link to the previous node.
const (
	tenantSite     = "tenant/state"
	tenantNodeSize = 16
	tenantNodes    = 3
)

// tenantState is one tenant's long-lived region and driver-held chain head.
// It is touched only by pinned tasks on the tenant's home shard while the
// engine serves, and only by the barrier (engine idle) when it migrates —
// so, like shardState, it needs no lock. The head is deliberately held
// host-side and never in a frame: the region's counted reference count
// stays zero between requests, which is exactly the quiescence
// ExportRegion demands when the barrier moves the tenant.
type tenantState struct {
	r    *core.Region
	head core.Ptr
	home int // current home shard (engine position == Stats.Shard id here)
}

// shardState is one shard's modelled queue and tally. It is touched only by
// that shard's pinned tasks (which run serially, in submission order) and
// read by Run after the engine has drained, so it needs no lock.
type shardState struct {
	id  int
	env *shard.Env
	cln map[string]core.CleanupID

	// pending holds the modelled completion times of sessions admitted but
	// not yet complete at the head session's arrival instant; busyUntil is
	// the shard's modelled clock (completion time of the last admitted
	// session).
	pending   []uint64
	busyUntil uint64

	stats         ShardStats
	leaked        uint64
	firstOverload error
	firstSID      int

	depthGauge *metrics.Gauge
}

// Run executes one serving run: draw the schedule, pin every session to its
// home shard, serve, drain, verify every shard's heap, and report. The only
// error returns are infrastructure failures (a task panic, a corrupt heap at
// drain); overload is never an error — it is the Shed* counters and
// FirstOverload in the Result.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Sessions <= 0 {
		return nil, fmt.Errorf("serve: Sessions must be positive, got %d", cfg.Sessions)
	}
	if cfg.Profile != "" && profileByName(cfg.Profile) == nil {
		return nil, fmt.Errorf("serve: unknown profile %q", cfg.Profile)
	}
	if cfg.Tenants < 0 {
		return nil, fmt.Errorf("serve: Tenants must not be negative, got %d", cfg.Tenants)
	}
	if cfg.ResizeTo > 0 {
		if cfg.Tenants == 0 {
			return nil, fmt.Errorf("serve: ResizeTo requires Tenants > 0")
		}
		if cfg.ResizeTo <= cfg.Shards {
			return nil, fmt.Errorf("serve: ResizeTo (%d) must exceed Shards (%d)", cfg.ResizeTo, cfg.Shards)
		}
		if cfg.ResizeAfter <= 0 || cfg.ResizeAfter >= 1 {
			return nil, fmt.Errorf("serve: ResizeAfter must be in (0, 1), got %g", cfg.ResizeAfter)
		}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	sv := &server{
		cfg:       cfg,
		admitted:  reg.Counter("regions_serve_admitted_total"),
		completed: reg.Counter("regions_serve_completed_total"),
		queued:    reg.Counter("regions_serve_queued_total"),
		shedQueue: reg.Counter(`regions_serve_shed_total{reason="queue"}`),
		shedOOM:   reg.Counter(`regions_serve_shed_total{reason="oom"}`),
		latency:   reg.Histogram("regions_serve_latency_cycles", latencyBounds),
		sloMiss:   reg.Counter("regions_serve_slo_miss_total"),
	}
	if cfg.Spans {
		sv.spanT = cfg.SpanTracer
		if sv.spanT == nil {
			// ~12 events per completed session plus shard-track spans; size the
			// private ring so a normal run never truncates (truncation would
			// disable the conservation check, not corrupt it).
			sv.spanT = trace.New(16*cfg.Sessions + 1024)
		}
		sv.phaseHist = make([]*metrics.Histogram, trace.NumSpanKinds)
		for _, k := range trace.SpanKinds() {
			sv.phaseHist[k] = reg.Histogram(
				fmt.Sprintf(`regions_serve_phase_cycles{phase=%q}`, k.String()), latencyBounds)
		}
	}
	if p := profileByName(cfg.Profile); p != nil && p.recycle {
		// Recycling frees mid-request, so pooled and unpooled runs allocate
		// at different addresses by design; only content sums can gate them.
		sv.content = true
	}
	if cfg.Tenants > 0 {
		sv.content = true
		sv.tenants = make([]*tenantState, cfg.Tenants)
		for t := range sv.tenants {
			sv.tenants[t] = &tenantState{home: tenantHome(t, cfg.Tenants, cfg.Shards)}
		}
	}
	// Snapshot first so percentiles subtract anything a reused registry
	// already held in the latency histogram.
	before := reg.Snapshot()

	// IdleSweep stays off: the engine's idle sweeping depends on wall-clock
	// scheduling, which would make sweep progress (and so every latency
	// percentile) nondeterministic. serveOne models idle sweeping on the
	// simulated clock instead.
	engOpts := []shard.Option{shard.WithShards(cfg.Shards), shard.WithMetrics(cfg.Metrics)}
	if cfg.DeferredDelete {
		engOpts = append(engOpts, shard.WithDeferredDelete(cfg.SweepBudget, cfg.SweepHighWater))
	}
	if cfg.NoStrPool {
		engOpts = append(engOpts, shard.WithNoStrPool())
	}
	if sv.spanT != nil {
		// The engine brackets its own pauses (the resize barrier's migration
		// export/import tasks) on the same ring, as shard-track spans on the
		// shards' raw clocks.
		engOpts = append(engOpts, shard.WithSpanTracer(sv.spanT))
	}
	eng := shard.NewEngine(engOpts...)
	states := make([]*shardState, cfg.Shards)
	for i := range states {
		env := eng.Env(i)
		if cfg.PageLimit > 0 {
			env.Space().SetPageLimit(cfg.PageLimit)
		}
		if cfg.FaultPlan != nil {
			env.Space().SetFaultPlan(cfg.FaultPlan)
		}
		states[i] = &shardState{
			id:         i,
			env:        env,
			cln:        registerCleanups(env.Runtime()),
			depthGauge: reg.Gauge(fmt.Sprintf(`regions_serve_queue_depth{shard="%d"}`, i)),
		}
		states[i].stats.Shard = i
		states[i].firstSID = -1
	}

	keys := homeKeys(eng)
	sessions := genSessions(cfg)
	// submitWait submits one batch of sessions as pinned tasks and blocks
	// until every completion callback has fired — a full engine barrier,
	// which the resize path needs between its two phases. The single-phase
	// path uses it too; waiting before Close is free.
	submitWait := func(batch []*session) {
		if len(batch) == 0 {
			return
		}
		var done sync.WaitGroup
		done.Add(len(batch))
		tasks := make([]shard.Task, len(batch))
		for i, s := range batch {
			s := s
			st := states[s.shard]
			tasks[i] = shard.Task{
				Name:     fmt.Sprintf("sess-%d", s.id),
				Affinity: keys[s.shard],
				Pin:      true, // the session's regions live on this runtime
				Run:      func(appkit.RegionEnv) uint32 { return sv.serveOne(st, s) },
				Done: func(res shard.TaskResult) {
					sv.complete(st, s, res)
					done.Done()
				},
			}
		}
		eng.SubmitBatch(tasks)
		done.Wait()
	}

	split := len(sessions)
	if cfg.ResizeTo > 0 {
		split = int(float64(len(sessions)) * cfg.ResizeAfter)
		if split < 1 {
			split = 1
		}
	}
	submitWait(sessions[:split])

	var phase1Busy []uint64
	var sweepPhases []int
	if cfg.ResizeTo > 0 {
		// The barrier: every phase-1 session has completed, so the engine is
		// idle and the driver may touch shard runtimes directly (the same
		// quiescence contract Env documents for before-first-submit access).
		phase1Busy = make([]uint64, cfg.Shards)
		peak := 0
		for i, st := range states {
			phase1Busy[i] = st.env.Counters().TotalCycles()
			rt := st.env.Runtime()
			if p := rt.SweepDebtPeak(); p > peak {
				peak = p
			}
			rt.ResetSweepDebtPeak()
		}
		if cfg.DeferredDelete {
			sweepPhases = append(sweepPhases, peak)
		}

		if _, err := eng.Resize(cfg.ResizeTo); err != nil {
			return nil, fmt.Errorf("serve: resize to %d shards: %w", cfg.ResizeTo, err)
		}
		// New shards need the same per-shard setup the originals got —
		// crucially the cleanup registrations, which ImportRegion requires
		// on the receiving runtime before any tenant can migrate in.
		for i := cfg.Shards; i < cfg.ResizeTo; i++ {
			env := eng.Env(i)
			if cfg.PageLimit > 0 {
				env.Space().SetPageLimit(cfg.PageLimit)
			}
			if cfg.FaultPlan != nil {
				env.Space().SetFaultPlan(cfg.FaultPlan)
			}
			st := &shardState{
				id:         i,
				env:        env,
				cln:        registerCleanups(env.Runtime()),
				depthGauge: reg.Gauge(fmt.Sprintf(`regions_serve_queue_depth{shard="%d"}`, i)),
			}
			st.stats.Shard = i
			st.firstSID = -1
			states = append(states, st)
		}
		keys = homeKeys(eng)

		// Rebalance: move every materialized tenant whose home shifts under
		// the weight-balanced placement, and translate the driver-held chain
		// head through the transfer record.
		homes := tenantHomes(cfg.Tenants, cfg.ResizeTo)
		for t, ts := range sv.tenants {
			newHome := homes[t]
			if newHome == ts.home {
				continue
			}
			if ts.r != nil {
				m, err := eng.MigrateRegion(ts.r, ts.home, newHome)
				if err != nil {
					return nil, fmt.Errorf("serve: migrate tenant %d from shard %d to %d: %w",
						t, ts.home, newHome, err)
				}
				ts.r = m.New
				if ts.head != 0 {
					np, ok := m.Rec.Translate(ts.head)
					if !ok {
						return nil, fmt.Errorf("serve: tenant %d chain head did not translate", t)
					}
					ts.head = np
				}
			}
			ts.home = newHome
		}
		// Phase 2 follows the tenants to their new homes.
		for _, s := range sessions[split:] {
			s.shard = homes[s.tenant]
		}
	}
	submitWait(sessions[split:])
	agg := eng.Close()
	if agg.Failures > 0 {
		for _, s := range agg.PerShard {
			if s.LastError != "" {
				return nil, fmt.Errorf("serve: %d session task failures, e.g. %s", agg.Failures, s.LastError)
			}
		}
		return nil, fmt.Errorf("serve: %d session task failures", agg.Failures)
	}
	for i := range states {
		rt := eng.Env(i).Runtime()
		if d := rt.SweepDebt(); d != 0 {
			return nil, fmt.Errorf("serve: shard %d still carries %d pages of sweep debt at drain", i, d)
		}
		if err := rt.Verify(); err != nil {
			return nil, fmt.Errorf("serve: shard %d heap verify at drain: %w", i, err)
		}
	}

	res := &Result{
		Sessions:       cfg.Sessions,
		Shards:         cfg.Shards,
		Seed:           cfg.Seed,
		Rate:           cfg.Rate,
		Checksum:       agg.Checksum,
		SLOTarget:      cfg.SLOP99,
		DeferredDelete: cfg.DeferredDelete,
	}
	for _, s := range agg.PerShard {
		res.SweptPages += s.SweptPages
		if s.SweepDebtPeak > res.SweepDebtPeakPages {
			res.SweepDebtPeakPages = s.SweepDebtPeak
		}
		if s.DrainSweepCycles > res.ReclamationLagCycles {
			res.ReclamationLagCycles = s.DrainSweepCycles
		}
	}
	firstSID := -1
	for _, st := range states {
		res.Admitted += st.stats.Admitted
		res.Completed += st.stats.Completed
		res.Queued += st.stats.Queued
		res.ShedQueue += st.stats.ShedQueue
		res.ShedOOM += st.stats.ShedOOM
		res.Leaked += st.leaked
		if st.stats.MaxDepth > res.MaxQueueDepth {
			res.MaxQueueDepth = st.stats.MaxDepth
		}
		if st.busyUntil > res.MakespanCycles {
			res.MakespanCycles = st.busyUntil
		}
		if st.firstOverload != nil && (firstSID < 0 || st.firstSID < firstSID) {
			firstSID = st.firstSID
			res.FirstOverload = st.firstOverload
		}
		res.PerShard = append(res.PerShard, st.stats)
		res.MappedBytes += st.env.Space().MappedBytes()
		sp := st.env.Runtime().StrPoolStats()
		res.StrNew += sp.New
		res.StrReuse += sp.Reuse
		res.StrBig += sp.Big
		res.StrFreed += sp.Freed
	}
	if total := res.StrNew + res.StrReuse; total > 0 {
		res.StrReuseRatio = float64(res.StrReuse) / float64(total)
	}
	if h, ok := reg.Snapshot().Sub(before).Histogram("regions_serve_latency_cycles"); ok && h.Count > 0 {
		res.P50 = h.Quantile(0.50)
		res.P99 = h.Quantile(0.99)
		res.P999 = h.Quantile(0.999)
		res.Mean = h.Sum / h.Count
	}
	res.SLOPass = res.P99 <= cfg.SLOP99

	if cfg.Tenants > 0 {
		res.Tenants = cfg.Tenants
		res.ResizeTo = cfg.ResizeTo
		res.Migrations, res.MigratedPages = eng.Migrations()
		// The engine has drained and closed, so reading the runtimes is
		// safe; tenant regions outlive their sessions by design and are
		// reclaimed with the shard heaps.
		for _, ts := range sv.tenants {
			if ts.r != nil {
				res.TenantChecksum += eng.Env(ts.home).Runtime().ContentChecksum(ts.r)
			}
		}
	}
	if cfg.ResizeTo > 0 {
		res.Phase1BusyRatio = busyRatio(phase1Busy)
		phase2Busy := make([]uint64, len(states))
		peak2 := 0
		for _, s := range agg.PerShard {
			if s.Shard < len(phase2Busy) {
				phase2Busy[s.Shard] = s.SimCycles
			}
			if s.SweepDebtPeak > peak2 {
				peak2 = s.SweepDebtPeak
			}
		}
		for i, b := range phase1Busy {
			phase2Busy[i] -= b
		}
		res.Phase2BusyRatio = busyRatio(phase2Busy)
		if cfg.DeferredDelete {
			res.SweepDebtPeakPhases = append(sweepPhases, peak2)
		}
	}
	if sv.spanT != nil {
		rep, err := buildSpanReport(sv.spanT, cfg.TopSlow)
		if err != nil {
			// A conservation violation is an emitter bug, not a property of
			// the workload: fail the run rather than report a leaky table.
			return nil, err
		}
		res.Spans = rep
	}
	return res, nil
}

// tenantHome is the pre-resize placement: contiguous blocks, tenant t on
// shard t*shards/tenants — the "tenants assigned in signup order" shape.
// Combined with the triangular draw skew (low tenant ids are hot) this
// concentrates the hot tenants on the low shards, which is the imbalance
// the resize barrier exists to fix.
func tenantHome(t, tenants, shards int) int {
	return t * shards / tenants
}

// tenantHomes assigns tenants to shards for the post-resize phase:
// longest-processing-time greedy over the tenants' known draw weights
// (tenant t's triangular weight is Tenants - t; see pickTenant), each
// placed on the currently lightest shard. Unlike the t % Shards rule the
// pre-resize phase uses — which concentrates the hot low-numbered tenants
// on the low shards — this spreads expected load nearly evenly, so the
// resize actually fixes the imbalance rather than reshuffling it.
func tenantHomes(tenants, shards int) []int {
	homes := make([]int, tenants)
	load := make([]int, shards)
	for t := 0; t < tenants; t++ {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		homes[t] = best
		load[best] += tenants - t
	}
	return homes
}

// busyRatio is max/min over per-shard busy cycles, min floored at one cycle
// so an idle shard yields a huge ratio rather than a division by zero.
func busyRatio(busy []uint64) float64 {
	if len(busy) == 0 {
		return 0
	}
	min, max := busy[0], busy[0]
	for _, b := range busy {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if min == 0 {
		min = 1
	}
	return float64(max) / float64(min)
}

// serveOne is the pinned task body: admission control against the shard's
// modelled queue, then the session lifecycle on the shard's runtime. It
// never panics under resource pressure — every allocation goes through a
// Try* primitive — and a shed session returns checksum 0 without touching
// the runtime at all (queue shed) or after releasing its regions (OOM
// shed).
func (sv *server) serveOne(st *shardState, s *session) uint32 {
	// Modelled idle sweeping: the cycles between the previous session's
	// completion and this arrival are shard idle time on the modelled
	// clock, so deferred mode spends them on sweep debt — one bounded slice
	// at a time, stopping once the gap is spent (overshoot is at most one
	// slice). The slices charge the runtime inside this task's measured
	// window, so serveOne records their cost for complete to subtract:
	// sweeping in an idle gap must not bill the session that happened to
	// arrive next.
	if sv.cfg.DeferredDelete && s.arrival > st.busyUntil {
		gap := s.arrival - st.busyUntil
		rt := st.env.Runtime()
		for s.sweepCycles < gap && rt.SweepDebt() > 0 {
			before := st.env.Counters().TotalCycles()
			if rt.SweepSlice() == 0 {
				break
			}
			s.sweepCycles += st.env.Counters().TotalCycles() - before
		}
	}
	// Admission: drain the modelled queue up to this session's arrival
	// instant, then shed if MaxQueue sessions are still ahead of it.
	for len(st.pending) > 0 && st.pending[0] <= s.arrival {
		st.pending = st.pending[1:]
	}
	if len(st.pending) >= sv.cfg.MaxQueue {
		s.outcome = outcomeShedQueue
		s.err = &OverloadError{Session: s.id, Shard: st.id, Reason: "queue full"}
		return 0
	}
	s.waited = len(st.pending) > 0
	if sv.spanT != nil {
		// Everything charged from here to the final cut is the session's
		// service; the idle-gap slices above accounted themselves in
		// s.sweepCycles, so this base sits at StartCycles + sweepCycles.
		s.segBase = st.env.Counters().TotalCycles()
		s.taxBase = st.env.Runtime().SweepTaxCycles()
	}
	sum, err := sv.lifecycle(st, s)
	if err != nil {
		s.outcome = outcomeShedOOM
		s.err = &OverloadError{Session: s.id, Shard: st.id, Reason: "out of memory", Err: err}
		return 0
	}
	if sv.spanT != nil {
		// The final delete boundary is cut here, after lifecycle's deferred
		// PopFrame has charged its stack-unscan cycles, so frame teardown
		// lands in the delete phase and the segments tile the whole window.
		sv.cut(st, s, trace.SpanDelete)
	}
	s.outcome = outcomeOK
	return sum
}

// complete is the engine completion callback: it advances the shard's
// modelled clock by the simulated cycles the session actually consumed
// (res.EndCycles - res.StartCycles, measured by the engine around the
// task), records the session's latency, and updates the counters. Pinned
// tasks deliver Done calls in FIFO order on the shard goroutine, so this is
// single-threaded per shard by construction.
func (sv *server) complete(st *shardState, s *session, res shard.TaskResult) {
	if s.outcome == outcomeShedQueue {
		st.stats.ShedQueue++
		sv.shedQueue.Inc()
		st.noteOverload(s)
		return
	}
	prevBusy := st.busyUntil // where this session's idle gap (if any) began
	start := s.arrival
	if st.busyUntil > start {
		start = st.busyUntil
	}
	// The session's service time is what it consumed on the shard runtime,
	// minus any idle-gap sweep slices serveOne ran inside the same measured
	// window — those belong to the shard's idle time, not this session.
	service := res.EndCycles - res.StartCycles
	if service >= s.sweepCycles {
		service -= s.sweepCycles
	} else {
		service = 0
	}
	completion := start + service
	st.busyUntil = completion
	st.pending = append(st.pending, completion)
	if len(st.pending) > st.stats.MaxDepth {
		st.stats.MaxDepth = len(st.pending)
	}
	st.depthGauge.Set(int64(len(st.pending)))
	st.stats.BusyUntilCycles = completion
	st.stats.Admitted++
	sv.admitted.Inc()
	if s.waited {
		st.stats.Queued++
		sv.queued.Inc()
	}
	if s.outcome == outcomeShedOOM {
		st.stats.ShedOOM++
		sv.shedOOM.Inc()
		st.noteOverload(s)
		return
	}
	st.stats.Completed++
	sv.completed.Inc()
	sv.latency.Observe(completion - s.arrival)
	if completion-s.arrival > sv.cfg.SLOP99 {
		sv.sloMiss.Inc()
	}
	if sv.spanT != nil {
		sv.emitSessionSpans(st, s, prevBusy, start, completion)
	}
}

// noteOverload keeps the shard's earliest shed error.
func (st *shardState) noteOverload(s *session) {
	if st.firstOverload == nil {
		st.firstOverload = s.err
		st.firstSID = s.id
	}
}

// lifecycle runs one session on the shard's runtime: parse into a request
// region, open a work region that outlives it, delete the parse region
// mid-request (the non-lexical lifetime Spegion motivates), hammer the
// sameregion write barrier, then delete the work region. All allocation
// goes through Try* primitives; the first refused page mapping aborts the
// session, releases whatever it created, and surfaces as the returned
// error.
func (sv *server) lifecycle(st *shardState, s *session) (uint32, error) {
	rt := st.env.Runtime()
	f := rt.PushFrame(2)
	defer rt.PopFrame()

	abort := func(regs ...*core.Region) {
		f.Set(0, 0)
		f.Set(1, 0)
		for _, r := range regs {
			if r == nil {
				continue
			}
			if ok, _ := rt.TryDeleteRegion(r); !ok {
				st.leaked++
			}
		}
	}

	parse, err := rt.TryNewRegion()
	if err != nil {
		return 0, err
	}
	sum, _, err := sv.allocPhase(st, parse, s.prof.parse, s.weight, f, 0, s.prof.recycle)
	if err != nil {
		abort(parse)
		return 0, err
	}
	if sv.spanT != nil {
		sv.cut(st, s, trace.SpanParse)
	}

	work, err := rt.TryNewRegion()
	if err != nil {
		abort(parse)
		return 0, err
	}
	wsum, hot, err := sv.allocPhase(st, work, s.prof.work, s.weight, f, 1, s.prof.recycle)
	sum += wsum
	if err != nil {
		abort(parse, work)
		return 0, err
	}
	if sv.spanT != nil {
		sv.cut(st, s, trace.SpanWork)
	}

	// The parse region dies while the request is still running: its only
	// counted reference is frame slot 0, so clearing the slot makes the
	// delete succeed — and if anything else still referenced it, the
	// safety machinery refuses and we record the leak instead of dying.
	f.Set(0, 0)
	if ok, derr := rt.TryDeleteRegion(parse); derr != nil {
		abort(work)
		return 0, derr
	} else if !ok {
		st.leaked++
	}
	if sv.spanT != nil {
		sv.cut(st, s, trace.SpanDelete)
	}

	// Work phase proper: sameregion pointer stores between the work
	// region's two hottest objects — the steady-state barrier path that
	// dominates all six apps.
	if hot[0] != 0 && hot[1] != 0 {
		for i := 0; i < s.prof.stores*s.weight; i++ {
			if i%2 == 0 {
				rt.StorePtr(hot[0], hot[1])
			} else {
				rt.StorePtr(hot[1], hot[0])
			}
		}
		rt.StorePtr(hot[0], 0)
		rt.StorePtr(hot[1], 0)
	}

	// Tenant mode: append this session's state to its tenant's long-lived
	// region before the request's own regions die.
	if s.tenant >= 0 {
		tsum, terr := sv.tenantPhase(st, s)
		if terr != nil {
			abort(work)
			return 0, terr
		}
		sum += tsum
	}
	if sv.spanT != nil {
		// Store loop and tenant append are the work phase's second half; the
		// final delete cut happens in serveOne after the deferred PopFrame.
		sv.cut(st, s, trace.SpanWork)
	}

	f.Set(1, 0)
	if ok, derr := rt.TryDeleteRegion(work); derr != nil {
		return 0, derr
	} else if !ok {
		st.leaked++
	}
	return sum, nil
}

// tenantPhase appends one session's worth of state to its tenant's region:
// tenantNodes*weight scanned nodes, each holding a small-int payload and a
// sameregion link to the previous node, with the chain head kept host-side
// in the tenant table (never in a frame — see tenantState). A refused page
// mapping aborts the session but keeps the tenant region: tenants outlive
// requests, so partial appends simply stand.
func (sv *server) tenantPhase(st *shardState, s *session) (uint32, error) {
	ts := sv.tenants[s.tenant]
	rt := st.env.Runtime()
	if ts.r == nil {
		r, err := rt.TryNewRegion()
		if err != nil {
			return 0, err
		}
		ts.r = r
	}
	var sum uint32
	for i := 0; i < tenantNodes*s.weight; i++ {
		p, err := rt.TryRalloc(ts.r, tenantNodeSize, st.cln[tenantSite])
		if err != nil {
			return 0, err
		}
		// The payload is a small integer, far below the first mapped page,
		// so neither the write barrier nor the export scan can mistake it
		// for a pointer.
		v := uint32(s.id%251 + 1)
		st.env.Space().Store(p, v)
		if ts.head != 0 {
			rt.StorePtr(p+mem.WordSize, ts.head)
		}
		ts.head = p
		sum += v + uint32(i)
	}
	return sum, nil
}

// allocPhase performs one phase's allocation mix into r, chaining scanned
// objects with sameregion pointer stores (a linked structure, like the
// apps' ASTs), anchoring the chain head in frame slot fslot, and returning
// the phase checksum plus the last two scanned objects (the "hot" pair the
// store loop reuses). On recycling profiles each string site frees its
// previous block once the next replaces it — the line-buffer churn the
// pooled string allocator serves from its free lists.
func (sv *server) allocPhase(st *shardState, r *core.Region, sites []site, weight int, f *core.Frame, fslot int, recycle bool) (uint32, [2]core.Ptr, error) {
	rt := st.env.Runtime()
	var sum uint32
	var hot [2]core.Ptr
	var prev core.Ptr
	for _, sc := range sites {
		n := sc.count * weight
		switch sc.kind {
		case allocPtr:
			cln := st.cln[sc.name]
			for i := 0; i < n; i++ {
				p, err := rt.TryRalloc(r, sc.size, cln)
				if err != nil {
					return sum, hot, err
				}
				if prev == 0 {
					f.Set(fslot, p)
				} else {
					rt.StorePtr(prev, p) // sameregion: chains the structure
				}
				prev = p
				hot[0], hot[1] = hot[1], p
				sum += sv.mix(p, uint32(sc.size), uint32(i))
			}
		case allocStr:
			var last core.Ptr
			for i := 0; i < n; i++ {
				p, err := rt.TryRstrAlloc(r, sc.size)
				if err != nil {
					return sum, hot, err
				}
				st.env.Space().Store(p, uint32(sc.size)) // payload, pointer-free
				sum += sv.mix(p, uint32(sc.size), uint32(i)+1<<16)
				if recycle && last != 0 {
					if err := rt.TryRstrFree(r, last, sc.size); err != nil {
						return sum, hot, err
					}
				}
				last = p
			}
		case allocArr:
			p, err := rt.TryRarrayAlloc(r, n, sc.size, st.cln[sc.name])
			if err != nil {
				return sum, hot, err
			}
			sum += sv.mix(p, uint32(sc.size), uint32(n)+2<<16)
		}
	}
	return sum, hot, nil
}

// mix is one allocation's checksum contribution. The default sums the
// allocated address — the batch engine's historical determinism gate.
// Tenant mode (sv.content) sums a pure function of the site instead,
// because tenant migration and resize legitimately change where and in what
// order shards allocate: content sums keep Result.Checksum bit-identical
// across a resize A/B, which address sums cannot.
func (sv *server) mix(p core.Ptr, a, b uint32) uint32 {
	if sv.content {
		return a*2654435761 + b*40503 + 1
	}
	return uint32(p)
}

// registerCleanups registers one cleanup per named profile site on rt. The
// sessions' scanned objects hold only sameregion pointers, which the write
// barrier never counts, so the cleanups have no Destroy calls to make —
// they exist to give each site its census label and to report the object
// size the deletion walk advances by.
func registerCleanups(rt *core.Runtime) map[string]core.CleanupID {
	cln := map[string]core.CleanupID{}
	for _, p := range allProfiles() {
		for _, phase := range [][]site{p.parse, p.work} {
			for _, sc := range phase {
				if sc.kind == allocStr {
					continue
				}
				if _, ok := cln[sc.name]; ok {
					continue
				}
				size := sc.size
				cln[sc.name] = rt.RegisterCleanup(sc.name,
					func(*core.Runtime, core.Ptr) int { return size })
			}
		}
	}
	// The tenant-state site is registered on every shard — including shards
	// grown by a resize — because ImportRegion remaps cleanups by name and
	// refuses a record whose names the receiver has never registered.
	cln[tenantSite] = rt.RegisterCleanup(tenantSite,
		func(*core.Runtime, core.Ptr) int { return tenantNodeSize })
	return cln
}

// homeKeys finds, for each shard, an affinity key that hashes to it, so the
// driver's round-robin session→shard assignment survives the engine's
// affinity hashing unchanged.
func homeKeys(eng *shard.Engine) []string {
	keys := make([]string, eng.Shards())
	found := 0
	for i := 0; found < len(keys); i++ {
		k := fmt.Sprintf("home-%d", i)
		if s := eng.ShardFor(k); keys[s] == "" {
			keys[s] = k
			found++
		}
	}
	return keys
}
