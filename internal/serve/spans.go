package serve

import (
	"fmt"

	"regions/internal/trace"
)

// Request-level span tracing for the serving simulator (Config.Spans): the
// layer that turns "p999 is 130k cycles" into "90k was queue wait, 25k the
// work phase, 10k sweep tax". docs/OBSERVABILITY.md documents the schema.
//
// Recording happens in two clock domains. Inside a session's task, lifecycle
// cuts phase boundaries on the shard's raw cycle clock (phaseSeg); those
// segments are contiguous by construction — each cut is the next one's
// start — and tile the whole in-task window. complete() then transplants
// them onto the modelled serving timeline: the session's service starts at
// max(arrival, the shard's previous completion), so each raw segment
// reappears at start + its in-task offset, preceded by a queue span covering
// [arrival, start]. Because the segments tile the service window and the
// queue span tiles the wait, every completed request satisfies the
// conservation property — phase self-cycles sum exactly to end-to-end
// latency — and Run enforces it (trace.SpanProfile.Conserved) before
// reporting.
//
// Two kinds of sweeping are re-attributed rather than billed to the phase
// they interrupted:
//
//   - Idle-gap slices (serveOne's modelled-idle sweeping) are shard time,
//     not session time: they surface as shard-track sweep spans starting at
//     the shard's previous completion, and complete() already subtracts
//     their cycles from the session's service.
//   - Allocation-tax slices (core's acquirePages above the high-water mark)
//     run inside a session's parse/work phases: each segment's tax delta —
//     read from Runtime.SweepTaxCycles at the cut — is carved out as a sweep
//     span nested at the segment's end, so the interrupted phase reports its
//     own cycles and the tax reports as sweep, with the sum preserved.
//
// Span recording is host-side observability: it charges no simulated
// cycles, so cycle counts, latencies, and checksums are bit-identical with
// Spans on or off (TestServeSpansChecksumParity pins this).

// phaseSeg is one in-task phase boundary: everything on the shard's raw
// clock since the previous cut (or the segment base) belongs to kind.
type phaseSeg struct {
	kind trace.SpanKind
	end  uint64 // raw shard clock at the boundary
	tax  uint64 // cumulative Runtime.SweepTaxCycles at the boundary
}

// cut records a phase boundary for s on st's raw clock. Callers nil-check
// sv.spanT, so untraced runs pay one predicate per boundary.
func (sv *server) cut(st *shardState, s *session, kind trace.SpanKind) {
	s.segs = append(s.segs, phaseSeg{
		kind: kind,
		end:  st.env.Counters().TotalCycles(),
		tax:  st.env.Runtime().SweepTaxCycles(),
	})
}

// emitSessionSpans renders one completed session's spans onto the modelled
// timeline and observes the per-phase histograms. Runs in complete(), on
// the shard goroutine, for outcomeOK sessions only; prevBusy is the shard's
// modelled clock before this session (where its idle gap began), start and
// completion the session's modelled service window.
func (sv *server) emitSessionSpans(st *shardState, s *session, prevBusy, start, completion uint64) {
	t := sv.spanT
	// The idle-gap sweep slices ran on the shard between the previous
	// completion and this arrival; they belong to the shard track. The last
	// slice may overshoot the gap by less than one slice (serveOne's loop),
	// in which case the span runs slightly past the arrival instant.
	if s.sweepCycles > 0 {
		t.Emit(trace.SpanBegin(trace.SpanSweep, -1, st.id, prevBusy))
		t.Emit(trace.SpanEnd(trace.SpanSweep, -1, st.id, prevBusy+s.sweepCycles))
	}
	phases := make([]uint64, trace.NumSpanKinds)
	if start > s.arrival {
		t.Emit(trace.SpanBegin(trace.SpanQueue, s.id, st.id, s.arrival))
		t.Emit(trace.SpanEnd(trace.SpanQueue, s.id, st.id, start))
		phases[trace.SpanQueue] = start - s.arrival
	}
	cur := start
	prevEnd, prevTax := s.segBase, s.taxBase
	for _, seg := range s.segs {
		d := seg.end - prevEnd
		taxD := seg.tax - prevTax
		segEnd := cur + d
		t.Emit(trace.SpanBegin(seg.kind, s.id, st.id, cur))
		if taxD > 0 {
			// The allocation tax interrupted this phase: nest its cycles as a
			// sweep span at the segment's end, so self-times re-attribute the
			// tax without perturbing the sum.
			t.Emit(trace.SpanBegin(trace.SpanSweep, s.id, st.id, segEnd-taxD))
			t.Emit(trace.SpanEnd(trace.SpanSweep, s.id, st.id, segEnd))
		}
		t.Emit(trace.SpanEnd(seg.kind, s.id, st.id, segEnd))
		phases[seg.kind] += d - taxD
		phases[trace.SpanSweep] += taxD
		cur = segEnd
		prevEnd, prevTax = seg.end, seg.tax
	}
	if sv.phaseHist != nil {
		for _, k := range trace.SpanKinds() {
			if h := sv.phaseHist[k]; h != nil {
				h.Observe(phases[k])
			}
		}
	}
}

// SpanReport is the span layer's summary in a Result: per-phase attribution
// quantiles over completed requests plus the top-K slowest requests with
// their phase breakdowns. Schema identifies the JSON layout for consumers
// (CI, A/B scripts); see docs/OBSERVABILITY.md.
type SpanReport struct {
	// Schema names this block's layout; bump on incompatible change.
	Schema string `json:"schema"`
	// Requests is the number of requests the spans reconstructed (completed
	// sessions; shed sessions have no critical path).
	Requests int `json:"requests"`
	// Phases holds one row per span kind, in report order, with exact
	// order-statistic quantiles over all reconstructed requests (a request
	// that skipped a phase contributes 0 to that phase's population).
	Phases []PhaseStats `json:"phases"`
	// SlowRequests is the top-K by end-to-end latency, slowest first.
	SlowRequests []SlowRequest `json:"slowRequests"`
	// DroppedEvents is the span ring's overwrite count; when nonzero the
	// attribution is a truncated window and Truncated is set (conservation
	// is not enforced over a truncated stream).
	DroppedEvents uint64 `json:"droppedEvents"`
	Truncated     bool   `json:"truncated,omitempty"`
}

// PhaseStats is one phase's attribution row.
type PhaseStats struct {
	Phase       string `json:"phase"`
	TotalCycles uint64 `json:"totalCycles"`
	P50         uint64 `json:"p50Cycles"`
	P99         uint64 `json:"p99Cycles"`
	P999        uint64 `json:"p999Cycles"`
	Max         uint64 `json:"maxCycles"`
}

// SlowRequest is one slow request's phase breakdown.
type SlowRequest struct {
	Session       int               `json:"session"`
	Shard         int               `json:"shard"`
	LatencyCycles uint64            `json:"latencyCycles"`
	PhaseCycles   map[string]uint64 `json:"phaseCycles"`
}

// buildSpanReport folds the span stream into a SpanReport, enforcing the
// conservation property on untruncated streams: a request whose phases do
// not sum to its latency is an emitter bug and fails the run.
func buildSpanReport(t *trace.Tracer, topK int) (*SpanReport, error) {
	dropped := t.Stats().Dropped
	p, err := trace.BuildSpanProfile(t.Events(), dropped)
	if err != nil {
		return nil, fmt.Errorf("serve: span reconstruction: %w", err)
	}
	if !p.Truncated {
		if err := p.Conserved(); err != nil {
			return nil, fmt.Errorf("serve: span conservation violated: %w", err)
		}
	}
	rep := &SpanReport{
		Schema:        "regions/serve-spans/v1",
		Requests:      len(p.Requests),
		DroppedEvents: dropped,
		Truncated:     p.Truncated,
	}
	for _, k := range trace.SpanKinds() {
		vals := p.PhaseValues(k)
		var max uint64
		for _, v := range vals {
			if v > max {
				max = v
			}
		}
		rep.Phases = append(rep.Phases, PhaseStats{
			Phase:       k.String(),
			TotalCycles: p.PhaseTotals[k],
			P50:         trace.QuantileExact(vals, 0.50),
			P99:         trace.QuantileExact(vals, 0.99),
			P999:        trace.QuantileExact(vals, 0.999),
			Max:         max,
		})
	}
	for _, r := range p.Slowest(topK) {
		sr := SlowRequest{
			Session:       r.Request,
			Shard:         r.Shard,
			LatencyCycles: r.Latency(),
			PhaseCycles:   map[string]uint64{},
		}
		for _, k := range trace.SpanKinds() {
			if c := r.Phases[k]; c > 0 {
				sr.PhaseCycles[k.String()] = c
			}
		}
		rep.SlowRequests = append(rep.SlowRequests, sr)
	}
	return rep, nil
}
