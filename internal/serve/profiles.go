package serve

// Session profiles: what one request allocates, distilled from the six
// benchmark apps' per-site allocation censuses (run `regionstat -app X
// -sample 64` to regenerate the underlying data). Each profile keeps the
// app's shape — object sizes, the ralloc/rstralloc/rarrayalloc split, and
// roughly the app's pointer-store density — scaled down to one request's
// worth of work, so a serving run exercises the same allocator paths as the
// batch harness: parse-heavy small-object churn for the compilers,
// string-dominated streams for the text tools, array-heavy numeric kernels
// for cfrac and grobner.

// allocKind distinguishes the three allocation entry points a site uses.
type allocKind uint8

const (
	allocPtr allocKind = iota // ralloc: cleared, scanned, may hold sameregion pointers
	allocStr                  // rstralloc: pointer-free, unscanned
	allocArr                  // rarrayalloc: cleared array, cleanup per element
)

// site is one allocation site of a profile: count objects of size bytes
// (count elements of size bytes for allocArr) per unit of session weight,
// allocated under a cleanup registered with the site's name — so a metered
// run's sampled site census attributes serving load to the same labels the
// batch apps use.
type site struct {
	name  string
	kind  allocKind
	size  int
	count int
}

// Profile is one session archetype: the allocation mix of the parse phase
// (into the request's parse region), of the work phase (into a second
// region that outlives the parse region — the non-lexical lifetime shape),
// and the number of sameregion pointer stores the work phase performs.
type Profile struct {
	Name   string
	Weight int // relative draw weight in the session mix
	parse  []site
	work   []site
	stores int
	// recycle makes each string site free its previous block before
	// allocating the next (see allocPhase) — the buffer-recycling shape the
	// pooled string allocator exists for. Recycling profiles force content
	// checksums: with the pool on, reused addresses legitimately differ
	// from the pool-off stream, so the determinism gate must not sum
	// addresses.
	recycle bool
}

// Profiles returns the six session archetypes in the paper's app order.
// The mix is weighted toward the compilers (mudlle, lcc): a server-shaped
// workload is dominated by parse-allocate-discard requests, which is
// exactly the pattern the paper's region argument is strongest on.
func Profiles() []*Profile {
	return []*Profile{
		{
			Name: "cfrac", Weight: 2,
			parse: []site{
				{"cfrac/itom", allocPtr, 16, 18},
				{"cfrac/limb", allocArr, 4, 40},
			},
			work: []site{
				{"cfrac/mult", allocPtr, 24, 22},
				{"cfrac/rem", allocArr, 4, 24},
			},
			stores: 40,
		},
		{
			Name: "grobner", Weight: 1,
			parse: []site{
				{"grobner/term", allocPtr, 24, 26},
				{"grobner/coef", allocArr, 8, 16},
			},
			work: []site{
				{"grobner/pair", allocPtr, 32, 14},
				{"grobner/reduce", allocStr, 20, 10},
			},
			stores: 30,
		},
		{
			Name: "mudlle", Weight: 3,
			parse: []site{
				{"mudlle/node", allocPtr, 20, 55},
				{"mudlle/string", allocStr, 28, 22},
			},
			work: []site{
				{"mudlle/code", allocArr, 4, 90},
				{"mudlle/value", allocPtr, 12, 26},
			},
			stores: 100,
		},
		{
			Name: "lcc", Weight: 3,
			parse: []site{
				{"lcc/node", allocPtr, 28, 45},
				{"lcc/ident", allocStr, 16, 30},
			},
			work: []site{
				{"lcc/quad", allocArr, 16, 26},
				{"lcc/sym", allocPtr, 24, 18},
			},
			stores: 80,
		},
		{
			Name: "tile", Weight: 2,
			parse: []site{
				{"tile/token", allocStr, 12, 65},
				{"tile/count", allocPtr, 16, 16},
			},
			work: []site{
				{"tile/block", allocArr, 8, 32},
				{"tile/score", allocPtr, 16, 10},
			},
			stores: 20,
		},
		{
			Name: "moss", Weight: 1,
			parse: []site{
				{"moss/line", allocStr, 36, 35},
				{"moss/passage", allocPtr, 20, 12},
			},
			work: []site{
				{"moss/fp", allocArr, 8, 50},
				{"moss/match", allocPtr, 16, 24},
			},
			stores: 35,
		},
	}
}

// bulkProfile is the large-region archetype: a request that streams big
// pointer-free multi-page blobs into its regions — dozens of pages per
// session — with almost no pointer work. An 8-page rstralloc costs a
// handful of cycles to allocate (bump + span acquire, nothing cleared),
// but synchronous deletion charges every one of those pages inside the
// session's service window, so reclamation is the dominant cost here —
// the worst honest case for synchronous deleteregion and the profile
// where deferred reclamation's tail-latency claim is testable. The
// deferred-delete A/B benchmark serves it under load and compares p999.
// Not part of the default mix (Profiles()); select it with
// Config.Profile = "bulk".
func bulkProfile() *Profile {
	return &Profile{
		Name: "bulk", Weight: 1,
		parse: []site{
			{"bulk/header", allocPtr, 24, 2},
			{"bulk/blob", allocStr, 32768, 2},
		},
		work: []site{
			{"bulk/body", allocStr, 32768, 3},
			{"bulk/index", allocPtr, 24, 2},
		},
		stores: 2,
	}
}

// strHeavyProfile is the buffer-recycling archetype: a request that churns
// through pointer-free string buffers, freeing each one as soon as the next
// replaces it (Profile.recycle) — a scanner's line buffer, a tokenizer's
// scratch. Sizes deliberately straddle the pooled allocator's power-of-two
// classes (63/64/65 around the 64 class boundary) and include one
// above-ceiling "Big" site, so one run exercises exact-fit reuse, slack
// reuse, and the bump fall-through. Not part of the default mix; select it
// with Config.Profile = "strheavy". The string-pool A/B benchmark serves it
// pooled and unpooled and compares cycles, reuse ratio, and OS traffic.
func strHeavyProfile() *Profile {
	return &Profile{
		Name: "strheavy", Weight: 1, recycle: true,
		parse: []site{
			{"strheavy/line", allocStr, 63, 30},  // one under the 64 class
			{"strheavy/token", allocStr, 64, 40}, // exactly a class size
			{"strheavy/frag", allocStr, 65, 20},  // one over: floors to 64
			{"strheavy/hdr", allocPtr, 24, 6},
		},
		work: []site{
			{"strheavy/buf", allocStr, 512, 12},
			{"strheavy/blob", allocStr, 4096, 2}, // above the default ceiling: Big
			{"strheavy/sym", allocPtr, 16, 4},
		},
		stores: 10,
	}
}

// allProfiles returns every profile the simulator knows: the default
// six-app mix plus the special-purpose archetypes selectable by
// Config.Profile.
func allProfiles() []*Profile {
	return append(Profiles(), bulkProfile(), strHeavyProfile())
}

// profileByName finds a profile by Name, nil if unknown.
func profileByName(name string) *Profile {
	for _, p := range allProfiles() {
		if p.Name == name {
			return p
		}
	}
	return nil
}
