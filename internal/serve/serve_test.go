package serve

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"regions/internal/mem"
	"regions/internal/metrics"
)

// testConfig is a small, fast serving run used by most tests.
func testConfig() Config {
	return Config{Sessions: 600, Seed: 1, Shards: 4, Rate: 700}
}

// TestServeDeterminism is the acceptance gate from the issue: the same seed
// must yield identical admitted/shed counts, the same checksum, and a
// bit-identical latency histogram across two fresh runs.
func TestServeDeterminism(t *testing.T) {
	regA, regB := metrics.NewRegistry(), metrics.NewRegistry()
	cfgA, cfgB := testConfig(), testConfig()
	cfgA.Metrics, cfgB.Metrics = regA, regB

	a, err := Run(cfgA)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := Run(cfgB)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("results differ across same-seed runs:\n  a: %+v\n  b: %+v", a, b)
	}
	ha, okA := regA.Snapshot().Histogram("regions_serve_latency_cycles")
	hb, okB := regB.Snapshot().Histogram("regions_serve_latency_cycles")
	if !okA || !okB {
		t.Fatalf("latency histogram missing: a=%v b=%v", okA, okB)
	}
	if !reflect.DeepEqual(ha, hb) {
		t.Errorf("latency histograms differ across same-seed runs:\n  a: %+v\n  b: %+v", ha, hb)
	}
	if a.Completed == 0 || a.Checksum == 0 {
		t.Errorf("run did no work: %+v", a)
	}
}

// TestServeSeedsDiffer guards against the arrival process ignoring its
// seed: different seeds must produce different schedules (and therefore
// different latency profiles or checksums).
func TestServeSeedsDiffer(t *testing.T) {
	cfgA, cfgB := testConfig(), testConfig()
	cfgB.Seed = 2
	a, err := Run(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum == b.Checksum && a.MakespanCycles == b.MakespanCycles {
		t.Errorf("seeds 1 and 2 produced identical runs (checksum %08x, makespan %d)",
			a.Checksum, a.MakespanCycles)
	}
}

// TestServeBurstShedsQueue drives the burst arrival process hard enough to
// fill the admission queue and checks the queue-shed path: typed ErrOverload
// (not OOM), counted sheds, and a clean run.
func TestServeBurstShedsQueue(t *testing.T) {
	cfg := testConfig()
	cfg.Sessions = 1200
	cfg.BurstEvery = 1_000_000
	cfg.BurstLen = 300_000
	cfg.BurstFactor = 8
	cfg.MaxQueue = 16
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ShedQueue == 0 {
		t.Fatalf("burst run shed nothing: %+v", res)
	}
	if res.FirstOverload == nil {
		t.Fatal("sheds recorded but FirstOverload is nil")
	}
	if !errors.Is(res.FirstOverload, ErrOverload) {
		t.Errorf("queue shed error is not ErrOverload: %v", res.FirstOverload)
	}
	if errors.Is(res.FirstOverload, mem.ErrOutOfMemory) {
		t.Errorf("queue shed error claims out-of-memory: %v", res.FirstOverload)
	}
	if got := res.Admitted + res.ShedQueue; got != uint64(cfg.Sessions) {
		t.Errorf("admitted(%d) + shedQueue(%d) = %d, want %d sessions accounted",
			res.Admitted, res.ShedQueue, got, cfg.Sessions)
	}
}

// TestServeOverloadFaultPlans runs the simulator under every fault-plan
// shape the failure model supports (nth-call, probabilistic at several
// severities, byte budget) plus hard page limits, asserting the issue's
// contract: overload surfaces as a typed ErrOverload wrapping
// mem.ErrOutOfMemory — never a panic — and the run drains with clean heaps
// (serve.Run verifies every shard and would return an error otherwise).
func TestServeOverloadFaultPlans(t *testing.T) {
	cases := []struct {
		name      string
		plan      *mem.FaultPlan
		pageLimit int
	}{
		{name: "fail-nth-1", plan: &mem.FaultPlan{FailNth: 1}},
		{name: "fail-nth-3", plan: &mem.FaultPlan{FailNth: 3}},
		{name: "prob-half", plan: &mem.FaultPlan{FailProb: 0.5, Seed: 7}},
		{name: "prob-heavy", plan: &mem.FaultPlan{FailProb: 0.9, Seed: 42}},
		{name: "prob-total", plan: &mem.FaultPlan{FailProb: 1, Seed: 1}},
		{name: "byte-budget", plan: &mem.FaultPlan{ByteBudget: 8 * mem.PageSize}},
		{name: "page-limit", pageLimit: 3},
		{name: "page-limit-and-plan", plan: &mem.FaultPlan{FailProb: 0.5, Seed: 3}, pageLimit: 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			cfg.Sessions = 400
			cfg.FaultPlan = tc.plan
			cfg.PageLimit = tc.pageLimit
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("Run must absorb injected faults, got: %v", err)
			}
			if res.ShedOOM > 0 {
				if res.FirstOverload == nil {
					t.Fatal("OOM sheds recorded but FirstOverload is nil")
				}
				if !errors.Is(res.FirstOverload, ErrOverload) {
					t.Errorf("OOM shed error is not ErrOverload: %v", res.FirstOverload)
				}
				if !errors.Is(res.FirstOverload, mem.ErrOutOfMemory) {
					t.Errorf("OOM shed error does not wrap mem.ErrOutOfMemory: %v", res.FirstOverload)
				}
			}
			if got := res.Completed + res.ShedQueue + res.ShedOOM; got != uint64(cfg.Sessions) {
				t.Errorf("completed(%d)+shedQueue(%d)+shedOOM(%d) = %d, want %d",
					res.Completed, res.ShedQueue, res.ShedOOM, got, cfg.Sessions)
			}
		})
	}
}

// TestServeTotalFaultShedsEverything pins the hardest case: with every page
// mapping refused, no session can run — and the server must shed all of
// them rather than crash.
func TestServeTotalFaultShedsEverything(t *testing.T) {
	cfg := testConfig()
	cfg.Sessions = 200
	cfg.FaultPlan = &mem.FaultPlan{FailProb: 1, Seed: 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Completed != 0 || res.ShedOOM != uint64(cfg.Sessions) {
		t.Errorf("want all %d sessions OOM-shed, got completed=%d shedOOM=%d",
			cfg.Sessions, res.Completed, res.ShedOOM)
	}
	if !errors.Is(res.FirstOverload, mem.ErrOutOfMemory) {
		t.Errorf("total fault's error should wrap ErrOutOfMemory: %v", res.FirstOverload)
	}
}

// TestServeMetricsCounters checks the exported serve series against the
// result: the /metrics story is only trustworthy if the counters and the
// report agree.
func TestServeMetricsCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := testConfig()
	cfg.Sessions = 500
	cfg.PageLimit = 3 // force a mixed outcome: completions and OOM sheds
	cfg.Metrics = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	snap := reg.Snapshot()
	for _, tc := range []struct {
		name string
		want uint64
	}{
		{"regions_serve_admitted_total", res.Admitted},
		{"regions_serve_completed_total", res.Completed},
		{"regions_serve_queued_total", res.Queued},
		{`regions_serve_shed_total{reason="queue"}`, res.ShedQueue},
		{`regions_serve_shed_total{reason="oom"}`, res.ShedOOM},
	} {
		got, ok := snap.Counter(tc.name)
		if !ok {
			t.Errorf("counter %s missing from registry", tc.name)
			continue
		}
		if got != tc.want {
			t.Errorf("counter %s = %d, want %d (result %+v)", tc.name, got, tc.want, res)
		}
	}
	if res.ShedOOM == 0 {
		t.Errorf("page-limited run shed nothing via OOM; tighten the test's PageLimit")
	}
	if _, ok := snap.Gauge(`regions_serve_queue_depth{shard="0"}`); !ok {
		t.Error("queue depth gauge missing for shard 0")
	}
}

// TestServePercentilesOrdered sanity-checks the histogram-derived
// percentiles: monotone, nonzero for a run with completions, and consistent
// with the SLO verdict.
func TestServePercentilesOrdered(t *testing.T) {
	res, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.P50 == 0 || res.P99 < res.P50 || res.P999 < res.P99 {
		t.Errorf("percentiles out of order: p50=%d p99=%d p999=%d", res.P50, res.P99, res.P999)
	}
	if res.SLOPass != (res.P99 <= res.SLOTarget) {
		t.Errorf("SLO verdict %v inconsistent with p99=%d target=%d",
			res.SLOPass, res.P99, res.SLOTarget)
	}
}

// TestHomeKeys checks the affinity-key probe covers every shard.
func TestHomeKeys(t *testing.T) {
	cfg := testConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin placement over covered home keys means every shard served
	// an equal share (Sessions divisible by Shards here).
	for _, st := range res.PerShard {
		if got := st.Completed + st.ShedQueue + st.ShedOOM; got != uint64(cfg.Sessions/cfg.Shards) {
			t.Errorf("shard %d handled %d sessions, want %d", st.Shard, got, cfg.Sessions/cfg.Shards)
		}
	}
}

// TestServeDeferredDeleteMatchesSyncChecksum is the serving half of the
// deferred-reclamation equivalence claim: the bulk profile served with
// DeferredDelete must reproduce the synchronous run's checksum bit for bit
// — detach pushes the same free-list entries in the same order, and the
// modelled idle sweeping never touches the allocation address stream —
// while actually sweeping pages and carrying debt mid-run. A second
// deferred run must be byte-identical (determinism).
func TestServeDeferredDeleteMatchesSyncChecksum(t *testing.T) {
	base := Config{Sessions: 400, Seed: 3, Shards: 4, Profile: "bulk", Rate: 6500}
	syncRes, err := Run(base)
	if err != nil {
		t.Fatalf("sync run: %v", err)
	}
	dcfg := base
	dcfg.DeferredDelete = true
	defRes, err := Run(dcfg)
	if err != nil {
		t.Fatalf("deferred run: %v", err)
	}
	if syncRes.Checksum != defRes.Checksum {
		t.Fatalf("checksum diverged: sync %08x, deferred %08x", syncRes.Checksum, defRes.Checksum)
	}
	if !defRes.DeferredDelete {
		t.Error("deferred result not flagged DeferredDelete")
	}
	if defRes.SweptPages == 0 {
		t.Error("deferred run swept no pages; deferral never engaged")
	}
	if defRes.SweepDebtPeakPages == 0 {
		t.Error("deferred run never carried sweep debt; the A/B is vacuous")
	}
	if syncRes.SweptPages != 0 || syncRes.SweepDebtPeakPages != 0 {
		t.Errorf("sync run reports sweep activity: swept %d, peak %d",
			syncRes.SweptPages, syncRes.SweepDebtPeakPages)
	}
	defRes2, err := Run(dcfg)
	if err != nil {
		t.Fatalf("deferred rerun: %v", err)
	}
	if !reflect.DeepEqual(defRes, defRes2) {
		t.Errorf("deferred runs differ across same-seed runs:\n  a: %+v\n  b: %+v", defRes, defRes2)
	}
}

// TestServeDeferredSweepTuning checks the sweep knobs reach the shards: a
// tighter budget means more slices for the same debt, and both runs still
// reproduce the sync checksum and drain to zero debt (Run fails otherwise).
func TestServeDeferredSweepTuning(t *testing.T) {
	base := Config{Sessions: 200, Seed: 5, Shards: 2, Profile: "bulk", Rate: 6500,
		DeferredDelete: true}
	tight := base
	tight.SweepBudget = 1
	tight.SweepHighWater = 4
	a, err := Run(base)
	if err != nil {
		t.Fatalf("default budget: %v", err)
	}
	b, err := Run(tight)
	if err != nil {
		t.Fatalf("tight budget: %v", err)
	}
	if a.Checksum != b.Checksum {
		t.Fatalf("sweep tuning changed the checksum: %08x vs %08x", a.Checksum, b.Checksum)
	}
	if a.SweptPages == 0 || b.SweptPages == 0 {
		t.Fatalf("runs swept nothing: default %d, tight %d", a.SweptPages, b.SweptPages)
	}
}

// TestServeUnknownProfileRejected pins the fail-fast validation: a typo'd
// profile name must fail before any session runs.
func TestServeUnknownProfileRejected(t *testing.T) {
	_, err := Run(Config{Sessions: 10, Profile: "no-such-profile"})
	if err == nil {
		t.Fatal("unknown profile accepted")
	}
	if !strings.Contains(err.Error(), "unknown profile") {
		t.Errorf("error %v does not name the unknown profile", err)
	}
}

// TestOverloadErrorChains is the table-driven audit of the shed-error
// contract: every OverloadError matches ErrOverload via errors.Is and
// unwraps via errors.As; OOM-caused sheds additionally match
// mem.ErrOutOfMemory through the runtime's *Fault chain, queue sheds must
// not.
func TestOverloadErrorChains(t *testing.T) {
	oomCause := fmt.Errorf("session aborted: %w", &mem.OOMError{Op: "core: ralloc", Pages: 1})
	cases := []struct {
		name    string
		err     error
		wantOOM bool
	}{
		{"queue-shed", &OverloadError{Session: 7, Shard: 1, Reason: "queue full"}, false},
		{"oom-shed", &OverloadError{Session: 9, Shard: 2, Reason: "out of memory", Err: oomCause}, true},
		{"wrapped-queue-shed", fmt.Errorf("serving: %w", &OverloadError{Session: 3, Shard: 0, Reason: "queue full"}), false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if !errors.Is(tc.err, ErrOverload) {
				t.Fatalf("errors.Is(err, ErrOverload) = false: %v", tc.err)
			}
			var oe *OverloadError
			if !errors.As(tc.err, &oe) {
				t.Fatalf("errors.As(*OverloadError) = false: %v", tc.err)
			}
			if got := errors.Is(tc.err, mem.ErrOutOfMemory); got != tc.wantOOM {
				t.Fatalf("errors.Is(err, ErrOutOfMemory) = %v, want %v (%v)", got, tc.wantOOM, tc.err)
			}
			if oe.Error() == "" {
				t.Fatal("empty error message")
			}
		})
	}
}
