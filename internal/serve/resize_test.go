package serve

import (
	"reflect"
	"strings"
	"testing"
)

// tenantConfig is the skewed-tenant workload the resize A/B runs: two
// shards, eight tenants under the triangular draw skew (block placement
// piles the hot tenants on shard 0), at a rate the 2-shard engine can
// absorb without shedding — sheds are placement-dependent, so a shed-free
// schedule is what makes the resized run and its control comparable
// session for session.
func tenantConfig() Config {
	return Config{Sessions: 2400, Seed: 1, Shards: 2, Rate: 300, Tenants: 8}
}

// TestServeTenantDeterminism extends the determinism gate to tenant mode:
// same seed, same config, bit-identical results — including the
// content-based checksum and the tenant region digests.
func TestServeTenantDeterminism(t *testing.T) {
	a, err := Run(tenantConfig())
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := Run(tenantConfig())
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("tenant runs differ across same-seed runs:\n  a: %+v\n  b: %+v", a, b)
	}
	if a.Completed == 0 || a.Checksum == 0 || a.TenantChecksum == 0 {
		t.Errorf("run did no tenant work: %+v", a)
	}
}

// TestServeResizeDeterminism is the same gate for the full resize path:
// live grow, tenant migration, and the phase split must all be on the
// simulated clock, so two runs are byte-identical.
func TestServeResizeDeterminism(t *testing.T) {
	cfg := tenantConfig()
	cfg.ResizeTo = 4
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("resize runs differ across same-seed runs:\n  a: %+v\n  b: %+v", a, b)
	}
}

// TestServeResizeChecksumMatchesControl is the serving half of the
// migration determinism gate: the same schedule served with and without
// the mid-run resize must produce the same session checksum (content sums
// are placement-free) and the same tenant region digests (migration moves
// state without corrupting a word of it) — while the resize run actually
// migrates regions and ends with clean heaps (Run verifies every shard).
func TestServeResizeChecksumMatchesControl(t *testing.T) {
	control, err := Run(tenantConfig())
	if err != nil {
		t.Fatalf("control run: %v", err)
	}
	cfg := tenantConfig()
	cfg.ResizeTo = 4
	resized, err := Run(cfg)
	if err != nil {
		t.Fatalf("resize run: %v", err)
	}
	if control.ShedQueue+control.ShedOOM+resized.ShedQueue+resized.ShedOOM != 0 {
		t.Fatalf("A/B schedule sheds (control %d+%d, resized %d+%d); sheds are placement-dependent, so lower the rate",
			control.ShedQueue, control.ShedOOM, resized.ShedQueue, resized.ShedOOM)
	}
	if resized.Checksum != control.Checksum {
		t.Errorf("resize changed the session checksum: %08x vs %08x",
			resized.Checksum, control.Checksum)
	}
	if resized.TenantChecksum != control.TenantChecksum {
		t.Errorf("migration changed tenant state: digest %08x vs %08x",
			resized.TenantChecksum, control.TenantChecksum)
	}
	if resized.Migrations == 0 || resized.MigratedPages == 0 {
		t.Errorf("resize run migrated nothing: migrations=%d pages=%d",
			resized.Migrations, resized.MigratedPages)
	}
	if control.Migrations != 0 {
		t.Errorf("control run reports %d migrations", control.Migrations)
	}
	if got := resized.Completed + resized.ShedQueue + resized.ShedOOM; got != uint64(cfg.Sessions) {
		t.Errorf("resize run lost sessions: %d accounted of %d", got, cfg.Sessions)
	}
}

// TestServeResizeImprovesBalance pins the elasticity claim on the skewed
// workload: after the barrier moves the hot tenants onto the grown engine's
// weight-balanced placement, the per-phase busy-cycle max/min ratio must
// drop, and the resize run's tail latency must beat the 2-shard control
// that kept serving the skew.
func TestServeResizeImprovesBalance(t *testing.T) {
	control, err := Run(tenantConfig())
	if err != nil {
		t.Fatalf("control run: %v", err)
	}
	cfg := tenantConfig()
	cfg.ResizeTo = 4
	resized, err := Run(cfg)
	if err != nil {
		t.Fatalf("resize run: %v", err)
	}
	if resized.Phase1BusyRatio == 0 || resized.Phase2BusyRatio == 0 {
		t.Fatalf("phase busy ratios missing: %+v", resized)
	}
	if resized.Phase2BusyRatio >= resized.Phase1BusyRatio {
		t.Errorf("resize did not improve balance: phase1 ratio %.3f, phase2 ratio %.3f",
			resized.Phase1BusyRatio, resized.Phase2BusyRatio)
	}
	if resized.P999 >= control.P999 {
		t.Errorf("resize did not improve p999: resized %d, control %d",
			resized.P999, control.P999)
	}
}

// TestServeResizeDeferredPhases runs the resize path under deferred
// reclamation: the barrier's ResetSweepDebtPeak gives each phase its own
// debt-peak window, the run still drains to zero debt (Run fails
// otherwise), and the checksum still matches the control.
func TestServeResizeDeferredPhases(t *testing.T) {
	cfg := tenantConfig()
	cfg.DeferredDelete = true
	control, err := Run(cfg)
	if err != nil {
		t.Fatalf("deferred control: %v", err)
	}
	cfg.ResizeTo = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("deferred resize run: %v", err)
	}
	if len(res.SweepDebtPeakPhases) != 2 {
		t.Fatalf("SweepDebtPeakPhases = %v, want one entry per phase", res.SweepDebtPeakPhases)
	}
	if res.SweptPages == 0 {
		t.Error("deferred resize run swept nothing")
	}
	if res.Migrations == 0 {
		t.Error("deferred resize run migrated nothing")
	}
	if res.Checksum != control.Checksum || res.TenantChecksum != control.TenantChecksum {
		t.Errorf("deferred resize changed checksums: %08x/%08x vs control %08x/%08x",
			res.Checksum, res.TenantChecksum, control.Checksum, control.TenantChecksum)
	}
}

// TestServeResizeValidation is the fail-fast audit for the new knobs: every
// bad combination must be rejected before a session runs.
func TestServeResizeValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative-tenants", func(c *Config) { c.Tenants = -1 }, "Tenants"},
		{"resize-without-tenants", func(c *Config) { c.Tenants = 0; c.ResizeTo = 4 }, "ResizeTo requires Tenants"},
		{"resize-not-larger", func(c *Config) { c.ResizeTo = 2 }, "must exceed Shards"},
		{"resize-shrink", func(c *Config) { c.ResizeTo = 1 }, "must exceed Shards"},
		{"bad-resize-after", func(c *Config) { c.ResizeTo = 4; c.ResizeAfter = 1.5 }, "ResizeAfter"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := tenantConfig()
			tc.mut(&cfg)
			_, err := Run(cfg)
			if err == nil {
				t.Fatalf("config accepted: %+v", cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestTenantHomesBalance checks the greedy placement: the triangular
// weights must spread within one unit of even across the grown engine, and
// every tenant must get a valid shard.
func TestTenantHomesBalance(t *testing.T) {
	const tenants, shards = 8, 4
	homes := tenantHomes(tenants, shards)
	load := make([]int, shards)
	for tn, s := range homes {
		if s < 0 || s >= shards {
			t.Fatalf("tenant %d homed on invalid shard %d", tn, s)
		}
		load[s] += tenants - tn
	}
	min, max := load[0], load[0]
	for _, l := range load {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if max-min > 1 {
		t.Errorf("greedy placement left load %v (spread %d)", load, max-min)
	}
}
