package serve

import (
	"math"
	"math/rand"
)

// The arrival process: open-loop, seeded, Poisson with optional burst
// phases. Open-loop means arrival times are drawn up front from the seeded
// PRNG and never react to how the server is doing — the standard way to
// expose tail latency, since a closed loop would politely slow its offered
// load exactly when the server struggles. Everything here is host-side
// modelling: drawing the schedule charges no simulated cycles, and the same
// seed always yields the same schedule, profiles, and weights, which is
// what makes a whole serving run bit-reproducible.

// session is one request: its arrival time on the simulated clock, the
// profile and weight drawn for it, its round-robin home shard, and — filled
// in as it flows through the system — its outcome.
type session struct {
	id      int
	arrival uint64 // simulated cycles
	prof    *Profile
	weight  int // 1-3 size multiplier applied to every site count
	shard   int
	// tenant is the session's tenant id in tenant mode (Config.Tenants > 0),
	// -1 otherwise. Tenant-mode sessions are homed on their tenant's shard
	// rather than round-robin, so a skewed tenant draw produces the shard
	// imbalance the resize barrier exists to fix.
	tenant int

	outcome uint8
	waited  bool // entered the modelled queue (nonzero queue wait)
	err     error
	// sweepCycles is the simulated cost of the idle-gap sweep slices
	// serveOne ran before this session's service; complete subtracts it
	// from the measured task window so sweeping never bills a session.
	sweepCycles uint64

	// Span recording (Config.Spans only). segs holds the session's phase
	// boundaries on the shard's raw cycle clock; segBase/taxBase anchor the
	// first segment: the raw clock and cumulative sweep-tax reading taken
	// just before lifecycle ran. complete() transplants the segments onto
	// the modelled timeline (see spans.go).
	segs    []phaseSeg
	segBase uint64
	taxBase uint64
}

// Session outcomes.
const (
	outcomePending uint8 = iota
	outcomeOK
	outcomeShedQueue // rejected at admission: modelled queue full
	outcomeShedOOM   // admitted, then aborted by a refused page mapping
)

// genSessions draws the whole arrival schedule for cfg: exponential
// inter-arrival gaps at cfg.Rate arrivals per simulated Mcycle, multiplied
// by cfg.BurstFactor whenever the clock is inside a burst window (the first
// BurstLen cycles of every BurstEvery-cycle period). Profiles are drawn by
// weight and each session gets a 1-3x size weight, modelling the light/heavy
// request mix every real service sees. Sessions come out in arrival order,
// assigned round-robin to shards, so each shard's pinned FIFO queue replays
// its own arrival-ordered stream.
func genSessions(cfg Config) []*session {
	rng := rand.New(rand.NewSource(cfg.Seed))
	profiles := Profiles()
	if cfg.Profile != "" {
		// Run validated the name; a single-profile run still draws from the
		// PRNG in pickProfile so weights stay on the same stream.
		profiles = []*Profile{profileByName(cfg.Profile)}
	}
	total := 0
	for _, p := range profiles {
		total += p.Weight
	}
	out := make([]*session, cfg.Sessions)
	t := 0.0
	for i := range out {
		rate := cfg.Rate / 1e6 // arrivals per cycle
		if cfg.BurstEvery > 0 &&
			math.Mod(t, float64(cfg.BurstEvery)) < float64(cfg.BurstLen) {
			rate *= cfg.BurstFactor
		}
		t += rng.ExpFloat64() / rate
		out[i] = &session{
			id:      i,
			arrival: uint64(t),
			prof:    pickProfile(rng, profiles, total),
			weight:  1 + rng.Intn(3),
			shard:   i % cfg.Shards,
			tenant:  -1,
		}
		// Tenant draws come after every legacy draw so a Tenants == 0 config
		// consumes exactly the PRNG stream it always did: old seeds keep
		// reproducing old schedules bit for bit.
		if cfg.Tenants > 0 {
			out[i].tenant = pickTenant(rng, cfg.Tenants)
			out[i].shard = tenantHome(out[i].tenant, cfg.Tenants, cfg.Shards)
		}
	}
	return out
}

// pickTenant draws a tenant id under a triangular skew: tenant 0 carries
// weight n, tenant n-1 weight 1. The hot tenants all land on the low
// shards under the block home rule (see tenantHome), which is what makes
// the pre-resize phase genuinely imbalanced rather than merely random.
func pickTenant(rng *rand.Rand, n int) int {
	k := rng.Intn(n * (n + 1) / 2)
	for t, w := 0, n; ; t, w = t+1, w-1 {
		if k < w {
			return t
		}
		k -= w
	}
}

// pickProfile draws one profile by weight.
func pickProfile(rng *rand.Rand, profiles []*Profile, total int) *Profile {
	n := rng.Intn(total)
	for _, p := range profiles {
		if n < p.Weight {
			return p
		}
		n -= p.Weight
	}
	return profiles[len(profiles)-1]
}
