// Package tracebench is a trace-driven allocator measurement harness in
// the style of the studies the paper's related work builds on (Detlefs,
// Dosser & Zorn's "Memory allocation costs in large C and C++ programs";
// Grunwald & Zorn's allocator comparisons): synthetic allocation traces
// with controlled size and lifetime distributions are replayed against the
// repository's allocators, measuring cycles and OS memory on the same
// simulated machine the paper reproduction uses.
package tracebench

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"regions/internal/mem"
	"regions/internal/stats"
	"regions/internal/xmalloc"
)

// OpKind distinguishes trace operations.
type OpKind byte

// Trace operations.
const (
	OpAlloc OpKind = iota
	OpFree
)

// Op is one trace event. Alloc ops carry the object id and size; free ops
// name the object id.
type Op struct {
	Kind OpKind
	ID   int
	Size int
}

// Profile names a synthetic workload shape.
type Profile string

// The three workload shapes the allocation-survey literature distinguishes
// most sharply.
const (
	// ProfileUniform: sizes spread uniformly, lifetimes exponential-ish —
	// the general-purpose allocator's home turf.
	ProfileUniform Profile = "uniform"
	// ProfileBimodal: the paper's moss pattern — alternating small hot and
	// large cold objects with very different lifetimes.
	ProfileBimodal Profile = "bimodal"
	// ProfilePhased: waves of objects born together and dying together —
	// the region pattern.
	ProfilePhased Profile = "phased"
)

// Profiles lists all workload shapes.
var Profiles = []Profile{ProfileUniform, ProfileBimodal, ProfilePhased}

type lcg struct{ s uint32 }

func (g *lcg) next() uint32 {
	g.s = g.s*1664525 + 1013904223
	return g.s >> 8
}

func (g *lcg) pick(n int) int { return int(g.next()) % n }

// Generate builds a deterministic trace of roughly nOps operations (allocs
// plus the matching frees; every object is freed exactly once).
func Generate(profile Profile, nOps int, seed uint32) []Op {
	g := lcg{s: seed ^ 0x7ace}
	var ops []Op
	nextID := 0
	type liveObj struct {
		id    int
		death int // index in ops after which it should die
	}
	var live []liveObj

	expire := func(now int) {
		kept := live[:0]
		for _, o := range live {
			if o.death <= now {
				ops = append(ops, Op{Kind: OpFree, ID: o.id})
			} else {
				kept = append(kept, o)
			}
		}
		live = kept
	}

	switch profile {
	case ProfileUniform:
		for len(ops) < nOps {
			size := 8 + g.pick(248)
			life := 1 + g.pick(200)
			ops = append(ops, Op{Kind: OpAlloc, ID: nextID, Size: size})
			live = append(live, liveObj{id: nextID, death: len(ops) + life})
			nextID++
			expire(len(ops))
		}
	case ProfileBimodal:
		for len(ops) < nOps {
			var size, life int
			if nextID%2 == 0 {
				size, life = 16, 20+g.pick(30) // small, hot, short
			} else {
				size, life = 256+g.pick(256), 400+g.pick(400) // large, cold, long
			}
			ops = append(ops, Op{Kind: OpAlloc, ID: nextID, Size: size})
			live = append(live, liveObj{id: nextID, death: len(ops) + life})
			nextID++
			expire(len(ops))
		}
	case ProfilePhased:
		for len(ops) < nOps {
			phase := 50 + g.pick(150)
			born := make([]int, 0, phase)
			for i := 0; i < phase && len(ops) < nOps; i++ {
				size := 8 + g.pick(56)
				ops = append(ops, Op{Kind: OpAlloc, ID: nextID, Size: size})
				born = append(born, nextID)
				nextID++
			}
			// The whole phase dies together (in birth order).
			for _, id := range born {
				ops = append(ops, Op{Kind: OpFree, ID: id})
			}
		}
	default:
		panic(fmt.Sprintf("tracebench: unknown profile %q", profile))
	}
	// Free everything still alive, oldest first.
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	for _, o := range live {
		ops = append(ops, Op{Kind: OpFree, ID: o.id})
	}
	return ops
}

// Result is one (allocator, trace) measurement.
type Result struct {
	Allocator   string
	AllocCycles uint64
	FreeCycles  uint64
	OSBytes     uint64
}

// allocators lists the replayable allocators by name.
var allocators = []string{"Sun", "BSD", "Lea", "BZ"}

func newAllocator(name string, sp *mem.Space) interface {
	Alloc(int) mem.Addr
	Free(mem.Addr)
} {
	switch name {
	case "Sun":
		return allocShim{xmalloc.NewSun(sp)}
	case "BSD":
		return allocShim{xmalloc.NewBSD(sp)}
	case "Lea":
		return allocShim{xmalloc.NewLea(sp)}
	case "BZ":
		z := xmalloc.NewBZ(sp)
		return bzShim{z}
	}
	panic("tracebench: unknown allocator " + name)
}

type allocShim struct{ a xmalloc.Allocator }

func (s allocShim) Alloc(n int) mem.Addr { return s.a.Alloc(n) }
func (s allocShim) Free(p mem.Addr)      { s.a.Free(p) }

// bzShim derives BZ's allocation site from the request size, as the app
// harness does.
type bzShim struct{ z *xmalloc.BZ }

func (s bzShim) Alloc(n int) mem.Addr { return s.z.AllocAt(uint32(n), n) }
func (s bzShim) Free(p mem.Addr)      { s.z.Free(p) }

// Replay runs a trace against one allocator and reports its costs.
func Replay(name string, ops []Op) Result {
	c := &stats.Counters{}
	sp := mem.NewSpace(c)
	a := newAllocator(name, sp)
	ptrs := map[int]mem.Addr{}
	for _, op := range ops {
		switch op.Kind {
		case OpAlloc:
			p := a.Alloc(op.Size)
			sp.Store(p, uint32(op.ID)) // touch the object
			ptrs[op.ID] = p
		case OpFree:
			p, ok := ptrs[op.ID]
			if !ok {
				panic(fmt.Sprintf("tracebench: free of unknown id %d", op.ID))
			}
			delete(ptrs, op.ID)
			a.Free(p)
		}
	}
	if len(ptrs) != 0 {
		panic(fmt.Sprintf("tracebench: %d objects never freed", len(ptrs)))
	}
	return Result{
		Allocator:   name,
		AllocCycles: c.Cycles[stats.ModeAlloc],
		FreeCycles:  c.Cycles[stats.ModeFree],
		OSBytes:     sp.MappedBytes(),
	}
}

// Report replays a generated trace of nOps operations for every profile
// against every allocator and renders the comparison.
func Report(w io.Writer, nOps int, seed uint32) {
	for _, profile := range Profiles {
		ops := Generate(profile, nOps, seed)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(w, "Trace %q: %d operations\n", profile, len(ops))
		fmt.Fprintln(tw, "Allocator\talloc cycles\tfree cycles\tOS KB")
		for _, name := range allocators {
			r := Replay(name, ops)
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\n",
				r.Allocator, r.AllocCycles, r.FreeCycles, float64(r.OSBytes)/1024)
		}
		tw.Flush()
		fmt.Fprintln(w)
	}
}
