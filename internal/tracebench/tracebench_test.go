package tracebench

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateBalancedTraces(t *testing.T) {
	for _, profile := range Profiles {
		ops := Generate(profile, 5000, 1)
		allocs, frees := 0, 0
		live := map[int]bool{}
		for i, op := range ops {
			switch op.Kind {
			case OpAlloc:
				if live[op.ID] {
					t.Fatalf("%s: duplicate alloc id %d at %d", profile, op.ID, i)
				}
				if op.Size <= 0 {
					t.Fatalf("%s: bad size %d", profile, op.Size)
				}
				live[op.ID] = true
				allocs++
			case OpFree:
				if !live[op.ID] {
					t.Fatalf("%s: free of dead id %d at %d", profile, op.ID, i)
				}
				delete(live, op.ID)
				frees++
			}
		}
		if allocs != frees {
			t.Fatalf("%s: %d allocs vs %d frees", profile, allocs, frees)
		}
		if len(live) != 0 {
			t.Fatalf("%s: %d leaked ids", profile, len(live))
		}
		if allocs < 1000 {
			t.Fatalf("%s: only %d allocs", profile, allocs)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(ProfileUniform, 2000, 7)
	b := Generate(ProfileUniform, 2000, 7)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs", i)
		}
	}
	c := Generate(ProfileUniform, 2000, 8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical traces")
	}
}

func TestReplayAllAllocators(t *testing.T) {
	ops := Generate(ProfileUniform, 3000, 3)
	for _, name := range allocators {
		r := Replay(name, ops)
		if r.AllocCycles == 0 || r.OSBytes == 0 {
			t.Fatalf("%s: empty result %+v", name, r)
		}
	}
}

func TestPhasedTraceFavorsBZ(t *testing.T) {
	// On the region-shaped trace, BZ's whole-chunk reclamation should give
	// it a cheaper free path than the boundary-tag allocators.
	ops := Generate(ProfilePhased, 20000, 5)
	bz := Replay("BZ", ops)
	lea := Replay("Lea", ops)
	if bz.FreeCycles >= lea.FreeCycles {
		t.Fatalf("BZ free cycles %d should undercut Lea's %d on the phased trace",
			bz.FreeCycles, lea.FreeCycles)
	}
}

func TestReportRenders(t *testing.T) {
	var buf bytes.Buffer
	Report(&buf, 2000, 1)
	out := buf.String()
	for _, want := range []string{"uniform", "bimodal", "phased", "Sun", "BSD", "Lea", "BZ"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in report:\n%s", want, out)
		}
	}
}

func TestQuickTraceWellFormed(t *testing.T) {
	err := quick.Check(func(seed uint32, pick uint8) bool {
		profile := Profiles[int(pick)%len(Profiles)]
		ops := Generate(profile, 500+int(seed%2000), seed)
		live := map[int]bool{}
		for _, op := range ops {
			if op.Kind == OpAlloc {
				if live[op.ID] {
					return false
				}
				live[op.ID] = true
			} else {
				if !live[op.ID] {
					return false
				}
				delete(live, op.ID)
			}
		}
		return len(live) == 0
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}
