package cachesim

import "testing"

func small() Config {
	return Config{
		L1Size: 256, L1Assoc: 1,
		L2Size: 1024, L2Assoc: 2,
		LineSize:      64,
		L1MissPenalty: 6, L2MissPenalty: 40,
		StoreBufferCap: 80, DrainPerAccess: 8,
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(small())
	r, w := c.Access(0x1000, false)
	if r != 40 || w != 0 {
		t.Fatalf("cold read: stalls (%d,%d), want (40,0)", r, w)
	}
	r, w = c.Access(0x1004, false) // same 64-byte line
	if r != 0 || w != 0 {
		t.Fatalf("hit on same line: stalls (%d,%d), want (0,0)", r, w)
	}
	if c.Reads != 2 || c.L1Misses != 1 || c.L2Misses != 1 {
		t.Fatalf("reads=%d l1miss=%d l2miss=%d", c.Reads, c.L1Misses, c.L2Misses)
	}
}

func TestL1ConflictL2Hit(t *testing.T) {
	c := New(small())
	// L1 is 256 bytes direct-mapped with 64-byte lines: 4 sets. Addresses
	// 0x0 and 0x100 conflict in L1 but live in different L2 sets or ways.
	c.Access(0x0, false)
	c.Access(0x100, false) // evicts 0x0 from L1
	r, _ := c.Access(0x0, false)
	if r != 6 {
		t.Fatalf("L1 conflict, L2 hit: read stall %d, want 6", r)
	}
}

func TestLRUWithinSet(t *testing.T) {
	cfg := small()
	cfg.L1Size = 128
	cfg.L1Assoc = 2 // one set of two ways
	c := New(cfg)
	c.Access(0x000, false) // miss
	c.Access(0x040, false) // miss; set is {40, 00}
	c.Access(0x000, false) // hit; set is {00, 40}
	c.Access(0x080, false) // miss; evicts LRU 0x40
	if r, _ := c.Access(0x000, false); r != 0 {
		t.Fatalf("0x000 should still be in L1 (MRU), got stall %d", r)
	}
	if r, _ := c.Access(0x040, false); r == 0 {
		t.Fatal("0x040 should have been evicted from L1")
	}
}

func TestWriteStallsOnlyWhenBufferOverflows(t *testing.T) {
	c := New(small())
	var totalW uint64
	// Two write misses fit in the 80-cycle buffer (40 + 40 - drain).
	for i := 0; i < 2; i++ {
		_, w := c.Access(uint32(0x10000+i*0x1000), true)
		totalW += w
	}
	if totalW != 0 {
		t.Fatalf("buffer should absorb first write misses, got %d stall cycles", totalW)
	}
	// A burst of distinct-line write misses must eventually stall.
	for i := 2; i < 10; i++ {
		_, w := c.Access(uint32(0x10000+i*0x1000), true)
		totalW += w
	}
	if totalW == 0 {
		t.Fatal("sustained write-miss burst should overflow the store buffer")
	}
	if c.WriteStalls != totalW {
		t.Fatalf("counter %d != returned sum %d", c.WriteStalls, totalW)
	}
}

func TestBufferDrains(t *testing.T) {
	c := New(small())
	// Fill the buffer with write misses.
	for i := 0; i < 10; i++ {
		c.Access(uint32(0x10000+i*0x1000), true)
	}
	// Many cheap hits drain it.
	for i := 0; i < 64; i++ {
		c.Access(0x10000, false)
	}
	_, w := c.Access(0x90000, true)
	if w != 0 {
		t.Fatalf("after drain, a single write miss should not stall, got %d", w)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		c := New(UltraSparcI())
		for i := 0; i < 10000; i++ {
			addr := uint32((i * 2654435761) % (1 << 20))
			c.Access(addr&^3, i%3 == 0)
		}
		return c.ReadStalls, c.WriteStalls
	}
	r1, w1 := run()
	r2, w2 := run()
	if r1 != r2 || w1 != w2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", r1, w1, r2, w2)
	}
	if r1 == 0 {
		t.Fatal("expected some read stalls on a random trace")
	}
}

func TestSequentialBeatsRandom(t *testing.T) {
	seq := New(UltraSparcI())
	for i := 0; i < 20000; i++ {
		seq.Access(uint32(i*4), false)
	}
	rnd := New(UltraSparcI())
	for i := 0; i < 20000; i++ {
		rnd.Access(uint32((i*2654435761)%(1<<24))&^3, false)
	}
	if seq.ReadStalls >= rnd.ReadStalls {
		t.Fatalf("sequential scan (%d stalls) should beat random (%d stalls)",
			seq.ReadStalls, rnd.ReadStalls)
	}
}

func TestUltraSparcIConfig(t *testing.T) {
	cfg := UltraSparcI()
	if cfg.LineSize != 64 {
		t.Fatalf("line size %d, want the paper's 64-byte L2 lines", cfg.LineSize)
	}
	if cfg.L1Size != 16*1024 || cfg.L2Size != 512*1024 {
		t.Fatalf("cache sizes %d/%d", cfg.L1Size, cfg.L2Size)
	}
	c := New(cfg)
	if r, w := c.Access(0x4000, false); r == 0 || w != 0 {
		t.Fatalf("cold read stalls (%d,%d)", r, w)
	}
}
