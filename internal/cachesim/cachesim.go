// Package cachesim models the memory hierarchy of the paper's test machine,
// a 167 MHz UltraSparc-I, closely enough to reproduce Figure 10: processor
// cycles lost to read stalls (waiting for the result of a load) and write
// stalls (store buffer full).
//
// The model is a two-level set-associative cache with LRU replacement and a
// leaky-bucket store buffer. Each simulated memory access is pushed through
// Access, which returns the stall cycles that access causes. The model is
// deterministic: the same access trace always yields the same stall counts.
package cachesim

// Config describes the cache hierarchy. The zero value is not useful; use
// UltraSparcI for the paper's machine.
type Config struct {
	L1Size  int // bytes
	L1Assoc int // ways
	L2Size  int // bytes
	L2Assoc int // ways
	// LineSize is shared by both levels, in bytes. The paper offsets region
	// headers by the 64-byte second-level line size.
	LineSize int

	L1MissPenalty int // read-stall cycles on an L1 miss that hits in L2
	L2MissPenalty int // read-stall cycles on an L2 miss (memory access)

	// Store buffer model: a write miss occupies the buffer for the relevant
	// miss penalty; every access drains DrainPerAccess cycles of pending
	// write work. When more than StoreBufferCap cycles of writes are
	// pending, the processor stalls for the excess.
	StoreBufferCap int
	DrainPerAccess int
}

// UltraSparcI returns a configuration approximating the paper's machine:
// 16 KB direct-mapped L1 data cache, 512 KB unified L2, 64-byte L2 lines.
func UltraSparcI() Config {
	return Config{
		L1Size:         16 * 1024,
		L1Assoc:        1,
		L2Size:         512 * 1024,
		L2Assoc:        1,
		LineSize:       64,
		L1MissPenalty:  6,
		L2MissPenalty:  42,
		StoreBufferCap: 128,
		DrainPerAccess: 3,
	}
}

type set struct {
	tags []uint32 // line tags, most recently used first; 0 means empty
}

type level struct {
	sets     []set
	assoc    int
	setShift uint // log2(lineSize)
	setMask  uint32
}

func newLevel(size, assoc, lineSize int) *level {
	nsets := size / (assoc * lineSize)
	if nsets < 1 {
		nsets = 1
	}
	l := &level{
		sets:    make([]set, nsets),
		assoc:   assoc,
		setMask: uint32(nsets - 1),
	}
	for s := lineSize; s > 1; s >>= 1 {
		l.setShift++
	}
	for i := range l.sets {
		l.sets[i].tags = make([]uint32, 0, assoc)
	}
	return l
}

// access returns true on a hit, inserting the line on a miss.
// Tags are the full line address plus one so that 0 can mean "empty".
func (l *level) access(addr uint32) bool {
	line := (addr >> l.setShift) + 1
	s := &l.sets[line&l.setMask]
	for i, t := range s.tags {
		if t == line {
			// Move to front (LRU).
			copy(s.tags[1:i+1], s.tags[:i])
			s.tags[0] = line
			return true
		}
	}
	if len(s.tags) < l.assoc {
		s.tags = append(s.tags, 0)
	}
	copy(s.tags[1:], s.tags)
	s.tags[0] = line
	return false
}

// Cache is a two-level cache plus store-buffer model.
type Cache struct {
	cfg     Config
	l1, l2  *level
	pending int // cycles of write work queued in the store buffer

	Reads       uint64
	Writes      uint64
	L1Misses    uint64
	L2Misses    uint64
	ReadStalls  uint64
	WriteStalls uint64
}

// New builds a cache from cfg. Sizes must be powers of two.
func New(cfg Config) *Cache {
	return &Cache{
		cfg: cfg,
		l1:  newLevel(cfg.L1Size, cfg.L1Assoc, cfg.LineSize),
		l2:  newLevel(cfg.L2Size, cfg.L2Assoc, cfg.LineSize),
	}
}

// Access simulates one memory access and returns (readStall, writeStall)
// cycles caused by it. Both caches are write-allocate, so reads and writes
// probe identically; only the stall attribution differs.
func (c *Cache) Access(addr uint32, write bool) (readStall, writeStall uint64) {
	// Drain the store buffer.
	c.pending -= c.cfg.DrainPerAccess
	if c.pending < 0 {
		c.pending = 0
	}

	penalty := 0
	if !c.l1.access(addr) {
		c.L1Misses++
		if c.l2.access(addr) {
			penalty = c.cfg.L1MissPenalty
		} else {
			c.L2Misses++
			penalty = c.cfg.L2MissPenalty
		}
	}

	if write {
		c.Writes++
		// The write's miss handling is buffered; the processor only stalls
		// if the buffer overflows.
		c.pending += penalty
		if c.pending > c.cfg.StoreBufferCap {
			over := uint64(c.pending - c.cfg.StoreBufferCap)
			c.pending = c.cfg.StoreBufferCap
			c.WriteStalls += over
			return 0, over
		}
		return 0, 0
	}
	c.Reads++
	c.ReadStalls += uint64(penalty)
	return uint64(penalty), 0
}
