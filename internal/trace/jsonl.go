package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonEvent is the wire form of an Event: one JSON object per line, kind as
// its kebab-case name, unused fields omitted. This is the schema
// docs/OBSERVABILITY.md documents.
type jsonEvent struct {
	Seq    uint64 `json:"seq"`
	Cycle  uint64 `json:"cycle"`
	Kind   string `json:"kind"`
	Region *int32 `json:"region,omitempty"`
	Addr   uint32 `json:"addr,omitempty"`
	Size   int32  `json:"size,omitempty"`
	Aux    *int32 `json:"aux,omitempty"`
	Site   string `json:"site,omitempty"`
}

func toJSONEvent(ev Event) jsonEvent {
	je := jsonEvent{
		Seq:   ev.Seq,
		Cycle: ev.Cycle,
		Kind:  ev.Kind.String(),
		Addr:  ev.Addr,
		Size:  ev.Size,
		Site:  ev.Site,
	}
	if ev.Region >= 0 {
		r := ev.Region
		je.Region = &r
	}
	if ev.Aux >= 0 {
		a := ev.Aux
		je.Aux = &a
	}
	return je
}

// WriteJSONL writes events as JSON Lines: one event object per line,
// oldest first.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(toJSONEvent(ev)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSON Lines trace back into events, the inverse of
// WriteJSONL (for tests and offline analysis of saved traces).
func ReadJSONL(r io.Reader) ([]Event, error) {
	names := map[string]Kind{}
	for k := Kind(1); k < numKinds; k++ {
		names[k.String()] = k
	}
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var je jsonEvent
		if err := dec.Decode(&je); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		k, ok := names[je.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: unknown event kind %q", je.Kind)
		}
		ev := Event{
			Seq:    je.Seq,
			Cycle:  je.Cycle,
			Kind:   k,
			Region: -1,
			Addr:   je.Addr,
			Size:   je.Size,
			Aux:    -1,
			Site:   je.Site,
		}
		if je.Region != nil {
			ev.Region = *je.Region
		}
		if je.Aux != nil {
			ev.Aux = *je.Aux
		}
		out = append(out, ev)
	}
}
