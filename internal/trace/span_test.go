package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// emitSpan pushes a begin/end pair onto t with explicit cycle stamps (the
// tracer is clock-less, so the stamps survive).
func emitSpan(t *Tracer, kind SpanKind, req, shard int, begin, end uint64) {
	t.Emit(SpanBegin(kind, req, shard, begin))
	t.Emit(SpanEnd(kind, req, shard, end))
}

func TestSpanKindNames(t *testing.T) {
	want := map[SpanKind]string{
		SpanQueue:      "queue",
		SpanParse:      "parse",
		SpanWork:       "work",
		SpanDelete:     "delete",
		SpanSweep:      "sweep",
		SpanMigrate:    "migrate",
		SpanStealStall: "steal-stall",
	}
	if len(SpanKinds()) != len(want) {
		t.Fatalf("SpanKinds() has %d kinds, want %d", len(SpanKinds()), len(want))
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), name)
		}
	}
	if SpanInvalid.String() != "invalid" || SpanKind(200).String() != "invalid" {
		t.Errorf("invalid kinds must render as invalid")
	}
}

// TestSpanProfileTiledRequest reconstructs a request whose phases tile its
// latency window exactly — the shape the serving simulator emits — and
// checks attribution and conservation.
func TestSpanProfileTiledRequest(t *testing.T) {
	tr := New(64)
	// Request 7 on shard 2: queue 100, parse 40, sweep 10, work 200, delete 30.
	emitSpan(tr, SpanQueue, 7, 2, 1000, 1100)
	emitSpan(tr, SpanParse, 7, 2, 1100, 1140)
	emitSpan(tr, SpanSweep, 7, 2, 1140, 1150)
	emitSpan(tr, SpanWork, 7, 2, 1150, 1350)
	emitSpan(tr, SpanDelete, 7, 2, 1350, 1380)
	// A shard-level idle sweep on shard 0, unrelated to any request.
	emitSpan(tr, SpanSweep, -1, 0, 500, 600)

	p, err := BuildSpanProfile(tr.Events(), tr.Dropped())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Requests) != 1 {
		t.Fatalf("got %d requests, want 1", len(p.Requests))
	}
	r := p.Requests[0]
	if r.Request != 7 || r.Shard != 2 {
		t.Errorf("request identity = (%d, shard %d), want (7, 2)", r.Request, r.Shard)
	}
	if r.Latency() != 380 {
		t.Errorf("latency = %d, want 380", r.Latency())
	}
	for kind, want := range map[SpanKind]uint64{
		SpanQueue: 100, SpanParse: 40, SpanSweep: 10, SpanWork: 200, SpanDelete: 30,
	} {
		if r.Phases[kind] != want {
			t.Errorf("phase %s = %d, want %d", kind, r.Phases[kind], want)
		}
	}
	if err := p.Conserved(); err != nil {
		t.Errorf("conservation: %v", err)
	}
	if len(p.Track) != 1 || p.Track[0].Kind != SpanSweep || p.TrackTotals[SpanSweep] != 100 {
		t.Errorf("track spans = %+v (totals %v)", p.Track, p.TrackTotals)
	}
}

// TestSpanProfileNesting checks self-time: cycles nested inside a span are
// attributed to the inner kind, and conservation still holds because self
// times tile the window.
func TestSpanProfileNesting(t *testing.T) {
	tr := New(64)
	// A 100-cycle work span with a 25-cycle sweep tax in its middle.
	tr.Emit(SpanBegin(SpanWork, 3, 0, 1000))
	emitSpan(tr, SpanSweep, 3, 0, 1040, 1065)
	tr.Emit(SpanEnd(SpanWork, 3, 0, 1100))

	p, err := BuildSpanProfile(tr.Events(), 0)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Requests[0]
	if r.Phases[SpanWork] != 75 || r.Phases[SpanSweep] != 25 {
		t.Errorf("work=%d sweep=%d, want 75/25", r.Phases[SpanWork], r.Phases[SpanSweep])
	}
	if err := p.Conserved(); err != nil {
		t.Errorf("conservation: %v", err)
	}
}

// TestSpanProfileGapFailsConservation: a request whose spans leave a hole
// must be reported, not silently tabulated.
func TestSpanProfileGapFailsConservation(t *testing.T) {
	tr := New(64)
	emitSpan(tr, SpanParse, 1, 0, 100, 140)
	emitSpan(tr, SpanWork, 1, 0, 150, 200) // 10-cycle gap
	p, err := BuildSpanProfile(tr.Events(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Conserved(); err == nil {
		t.Fatal("conservation passed over a 10-cycle gap")
	}
}

// TestSpanProfileMismatch: an end closing the wrong kind is an emitter bug
// and must error on an untruncated stream.
func TestSpanProfileMismatch(t *testing.T) {
	tr := New(64)
	tr.Emit(SpanBegin(SpanParse, 1, 0, 100))
	tr.Emit(SpanEnd(SpanWork, 1, 0, 140))
	if _, err := BuildSpanProfile(tr.Events(), 0); err == nil {
		t.Fatal("mismatched span pair did not error")
	}
	tr2 := New(64)
	tr2.Emit(SpanEnd(SpanWork, 1, 0, 140))
	if _, err := BuildSpanProfile(tr2.Events(), 0); err == nil {
		t.Fatal("orphan span-end did not error on an untruncated stream")
	}
}

// TestSpanProfileTruncated: with a nonzero drop count, unmatched pairs are
// counted and conservation refuses rather than producing a wrong account.
func TestSpanProfileTruncated(t *testing.T) {
	tr := New(64)
	tr.Emit(SpanEnd(SpanWork, 1, 0, 140))     // begin fell out of the ring
	emitSpan(tr, SpanParse, 2, 0, 100, 150)   // intact pair
	tr.Emit(SpanBegin(SpanDelete, 2, 0, 150)) // end never made it
	p, err := BuildSpanProfile(tr.Events(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Truncated || p.Unmatched != 2 || p.Dropped != 5 {
		t.Errorf("truncated=%v unmatched=%d dropped=%d, want true/2/5",
			p.Truncated, p.Unmatched, p.Dropped)
	}
	if err := p.Conserved(); err == nil {
		t.Error("conservation must refuse a truncated profile")
	}
	if len(p.Requests) != 1 || p.Requests[0].Request != 2 {
		t.Errorf("intact request not reconstructed: %+v", p.Requests)
	}
}

func TestSpanSlowestAndQuantiles(t *testing.T) {
	tr := New(256)
	lat := []uint64{50, 300, 100, 300, 20}
	for i, l := range lat {
		emitSpan(tr, SpanWork, i, 0, 1000, 1000+l)
	}
	p, err := BuildSpanProfile(tr.Events(), 0)
	if err != nil {
		t.Fatal(err)
	}
	slow := p.Slowest(3)
	if len(slow) != 3 || slow[0].Request != 1 || slow[1].Request != 3 || slow[2].Request != 2 {
		ids := make([]int, len(slow))
		for i, r := range slow {
			ids[i] = r.Request
		}
		t.Errorf("slowest ids = %v, want [1 3 2] (ties by id)", ids)
	}
	vals := p.PhaseValues(SpanWork)
	if got := QuantileExact(vals, 0.5); got != 100 {
		t.Errorf("p50 = %d, want 100", got)
	}
	if got := QuantileExact(vals, 0.99); got != 300 {
		t.Errorf("p99 = %d, want 300", got)
	}
	if got := QuantileExact(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
}

// TestSpanJSONLRoundTrip: span events survive the JSONL sink like every
// other kind.
func TestSpanJSONLRoundTrip(t *testing.T) {
	tr := New(16)
	emitSpan(tr, SpanQueue, 4, 1, 10, 30)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kind":"span-begin"`) {
		t.Fatalf("JSONL missing span-begin: %s", buf.String())
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildSpanProfile(back, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Requests) != 1 || p.Requests[0].Phases[SpanQueue] != 20 {
		t.Errorf("round-tripped profile wrong: %+v", p.Requests)
	}
}

// TestSpanChromeExport: the span timeline is valid JSON with one process
// per shard and request rows on tid request+1.
func TestSpanChromeExport(t *testing.T) {
	tr := New(64)
	emitSpan(tr, SpanQueue, 0, 1, 0, 50)
	emitSpan(tr, SpanWork, 0, 1, 50, 90)
	emitSpan(tr, SpanMigrate, -1, 2, 10, 40)
	var buf bytes.Buffer
	if err := WriteSpanChromeTrace(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var sawReqRow, sawTrackRow bool
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" && ev["name"] == "work" && ev["pid"] == float64(2) && ev["tid"] == float64(1) {
			sawReqRow = true
		}
		if ev["ph"] == "X" && ev["name"] == "migrate" && ev["pid"] == float64(3) && ev["tid"] == float64(0) {
			sawTrackRow = true
		}
	}
	if !sawReqRow || !sawTrackRow {
		t.Errorf("timeline rows missing: request=%v track=%v\n%s", sawReqRow, sawTrackRow, buf.String())
	}
}
