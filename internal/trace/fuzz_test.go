package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSONL feeds arbitrary byte streams to the trace reader. The
// contract under test: ReadJSONL never panics; on success the events it
// returns survive re-serialization and profile construction; on failure it
// returns an error rather than partial garbage.
func FuzzReadJSONL(f *testing.F) {
	// A valid trace produced by the writer itself.
	var valid bytes.Buffer
	if err := WriteJSONL(&valid, []Event{
		{Seq: 1, Cycle: 10, Kind: KindRegionCreate, Region: 0},
		{Seq: 2, Cycle: 20, Kind: KindRalloc, Region: 0, Addr: 0x1010, Size: 16, Aux: -1, Site: "cell"},
		{Seq: 3, Cycle: 30, Kind: KindFault, Region: -1, Aux: 0, Site: "oom"},
		{Seq: 4, Cycle: 40, Kind: KindRegionDelete, Region: 0},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])                           // truncated mid-line
	f.Add([]byte(""))                                              // empty
	f.Add([]byte("{}\n"))                                          // missing kind
	f.Add([]byte(`{"seq":1,"kind":"no-such-kind"}` + "\n"))        // unknown kind
	f.Add([]byte(`{"seq":1,"kind":"ralloc","region":-5}` + "\n"))  // out-of-range region
	f.Add([]byte(`{"seq":18446744073709551615,"kind":"destroy"}`)) // uint64 edge
	f.Add([]byte("null\n"))                                        // JSON null line
	f.Add([]byte(`[{"seq":1}]`))                                   // array, not object
	f.Add([]byte("{\"kind\":\"ralloc\"}\n{\"kind\":"))             // second line cut off

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must round-trip and profile without panicking.
		var jsonl, chrome bytes.Buffer
		if err := WriteJSONL(&jsonl, events); err != nil {
			t.Fatalf("re-serializing parsed events: %v", err)
		}
		BuildProfile(events, 0)
		if err := WriteChromeTrace(&chrome, events); err != nil {
			t.Fatalf("chrome trace of parsed events: %v", err)
		}
		// The re-serialized form must parse back to the same event count.
		again, err := ReadJSONL(strings.NewReader(jsonl.String()))
		if err != nil {
			t.Fatalf("re-parsing our own output: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(again))
		}
	})
}
