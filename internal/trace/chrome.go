package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event export: the buffered events rendered in the JSON
// format chrome://tracing and https://ui.perfetto.dev load directly. The
// timestamp unit (nominally microseconds) is one simulated cycle.
//
// Mapping:
//
//   - Each region's life becomes one complete ("X") slice on the "regions"
//     track, from its region-create to its region-delete; regions still
//     live at the end of the trace extend to the last event and are marked
//     leaked=true.
//   - GC mark and sweep phases become slices on the "gc" track.
//   - Everything else becomes an instant ("i") event on the track of its
//     subsystem ("runtime", "gc", or "worker-N" for parallel events), with
//     the kind-specific fields in args.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// Track (tid) assignment for the Chrome export.
const (
	tidRuntime = 1
	tidRegions = 2
	tidGC      = 3
	tidWorker0 = 10 // worker w renders as tid 10+w
)

// WriteChromeTrace writes events in Chrome trace_event JSON format.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := []chromeEvent{
		metaThread(tidRuntime, "runtime"),
		metaThread(tidRegions, "regions"),
		metaThread(tidGC, "gc"),
	}
	workers := map[int32]bool{}

	var last uint64
	for _, ev := range events {
		if ev.Cycle > last {
			last = ev.Cycle
		}
	}

	regionBirth := map[int32]uint64{}
	var gcMark, gcSweep uint64

	for _, ev := range events {
		switch ev.Kind {
		case KindRegionCreate:
			regionBirth[ev.Region] = ev.Cycle
		case KindRegionDelete:
			start, ok := regionBirth[ev.Region]
			if !ok {
				start = ev.Cycle // create fell out of the ring
			}
			dur := ev.Cycle - start
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("region#%d", ev.Region),
				Cat:  "region", Ph: "X", Ts: start, Dur: &dur,
				Pid: 1, Tid: tidRegions,
				Args: map[string]any{
					"bytes": ev.Size, "allocs": ev.Aux,
					"create-dropped": !ok,
				},
			})
			delete(regionBirth, ev.Region)
		case KindGCMarkBegin:
			gcMark = ev.Cycle
		case KindGCMarkEnd:
			dur := ev.Cycle - gcMark
			out = append(out, chromeEvent{
				Name: "gc-mark", Cat: "gc", Ph: "X", Ts: gcMark, Dur: &dur,
				Pid: 1, Tid: tidGC, Args: map[string]any{"collection": ev.Aux},
			})
		case KindGCSweepBegin:
			gcSweep = ev.Cycle
		case KindGCSweepEnd:
			dur := ev.Cycle - gcSweep
			out = append(out, chromeEvent{
				Name: "gc-sweep", Cat: "gc", Ph: "X", Ts: gcSweep, Dur: &dur,
				Pid: 1, Tid: tidGC,
				Args: map[string]any{"collection": ev.Aux, "live-bytes": ev.Size},
			})
		default:
			tid := tidRuntime
			cat := "runtime"
			switch ev.Kind {
			case KindParRegionCreate, KindParRegionDelete, KindParRegionDeleteFail, KindParWrite:
				cat = "par"
				tid = tidWorker0
				if ev.Kind == KindParWrite && ev.Aux >= 0 {
					tid = tidWorker0 + int(ev.Aux)
					workers[ev.Aux] = true
				}
			}
			args := map[string]any{}
			if ev.Region >= 0 {
				args["region"] = ev.Region
			}
			if ev.Addr != 0 {
				args["addr"] = ev.Addr
			}
			if ev.Size != 0 {
				args["size"] = ev.Size
			}
			if ev.Aux >= 0 {
				args["aux"] = ev.Aux
			}
			if ev.Site != "" {
				args["site"] = ev.Site
			}
			out = append(out, chromeEvent{
				Name: ev.Kind.String(), Cat: cat, Ph: "i", Ts: ev.Cycle,
				Pid: 1, Tid: tid, S: "t", Args: args,
			})
		}
	}

	// Regions never deleted inside the buffered window: draw them to the
	// end of the trace and mark them. Sorted so output is deterministic.
	leaked := make([]int32, 0, len(regionBirth))
	for id := range regionBirth {
		leaked = append(leaked, id)
	}
	sort.Slice(leaked, func(i, j int) bool { return leaked[i] < leaked[j] })
	for _, id := range leaked {
		dur := last - regionBirth[id]
		out = append(out, chromeEvent{
			Name: fmt.Sprintf("region#%d", id),
			Cat:  "region", Ph: "X", Ts: regionBirth[id], Dur: &dur,
			Pid: 1, Tid: tidRegions,
			Args: map[string]any{"leaked": true},
		})
	}
	workerIDs := make([]int32, 0, len(workers))
	for w := range workers {
		workerIDs = append(workerIDs, w)
	}
	sort.Slice(workerIDs, func(i, j int) bool { return workerIDs[i] < workerIDs[j] })
	for _, w := range workerIDs {
		out = append(out, metaThread(tidWorker0+int(w), fmt.Sprintf("worker-%d", w)))
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out, "displayTimeUnit": "ns"})
}

func metaThread(tid int, name string) chromeEvent {
	return chromeEvent{
		Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
		Args: map[string]any{"name": name},
	}
}

// WriteSpanChromeTrace renders a span stream (KindSpanBegin/KindSpanEnd
// pairs; other events are ignored) as Chrome trace_event duration slices:
// one process per shard, one row per request — request N renders on tid
// N+1 of its shard's process, shard-level spans (idle sweeps, migration
// pauses, steal stalls) on tid 0 — so a tail request's phase breakdown is
// one visually inspectable row in chrome://tracing or ui.perfetto.dev.
// Timestamps are the emitters' cycle stamps: the serving simulator's
// modelled clock for request rows, the shard's own cycle count for the
// shard track.
func WriteSpanChromeTrace(w io.Writer, events []Event) error {
	p, err := BuildSpanProfile(events, 0)
	if err != nil {
		// A truncated ring yields unmatched pairs; render what did match.
		p, err = BuildSpanProfile(events, 1)
		if err != nil {
			return err
		}
	}
	var out []chromeEvent
	procs := map[int]bool{}
	slice := func(s Span) {
		pid := s.Shard + 1 // shard -1 (single-runtime) renders as pid 0
		if !procs[pid] {
			procs[pid] = true
			out = append(out, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": fmt.Sprintf("shard-%d", s.Shard)},
			})
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]any{"name": "shard"},
			})
		}
		dur := s.End - s.Begin
		args := map[string]any{"selfCycles": s.Self}
		tid := 0
		if s.Request >= 0 {
			tid = s.Request + 1
			args["request"] = s.Request
		}
		out = append(out, chromeEvent{
			Name: s.Kind.String(), Cat: "span", Ph: "X", Ts: s.Begin, Dur: &dur,
			Pid: pid, Tid: tid, Args: args,
		})
	}
	for _, r := range p.Requests {
		for _, s := range r.Spans {
			slice(s)
		}
	}
	for _, s := range p.Track {
		slice(s)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out, "displayTimeUnit": "ns"})
}
