// Package trace is the event-level observability layer of the region
// runtime: a fixed-size ring buffer of typed events emitted by the safe
// region runtime (internal/core), the conservative collector (internal/gc),
// and the parallel extension, behind a nil-checked hook so that a runtime
// without a tracer pays one predicate per operation and nothing else.
//
// The aggregate counters of internal/stats reproduce the paper's evaluation
// (Tables 2-3, Figures 9-11); this package records the individual events
// those counters summarize — who allocated, which barrier fired, when a
// region died and, when it could not die, why. On top of the buffer sit a
// JSONL sink (WriteJSONL), a Chrome trace_event exporter (WriteChromeTrace),
// and an analysis pass folding events into per-region lifetime profiles
// (BuildProfile). docs/OBSERVABILITY.md documents the schema; cmd/regiontrace
// drives all three against the benchmark applications.
//
// Tracing never charges simulated cycles: events are observability metadata,
// outside the machine model, so a traced run reports the same counters as an
// untraced one.
package trace

import "sync"

// Kind identifies an event type. The zero value is invalid so that a
// forgotten Kind is visible in traces.
type Kind uint8

// Event kinds. The names returned by String (and used by the JSONL sink)
// are the kebab-case forms documented in docs/OBSERVABILITY.md.
const (
	KindInvalid Kind = iota

	// Region lifecycle (internal/core).
	KindRegionCreate     // a region was created
	KindRegionDelete     // a region was deleted; always the region's last event
	KindRegionDeleteFail // deleteregion refused: external references remain

	// Allocation (internal/core). Site carries the cleanup's registered
	// name for ralloc/rarrayalloc; rstralloc has no cleanup and no site.
	KindRalloc      // ralloc: cleared, scanned at deletion
	KindRarrayAlloc // rarrayalloc: cleared array, per-element cleanup
	KindRstrAlloc   // rstralloc: pointer-free, no bookkeeping

	// Pointer-write barriers (internal/core). Exactly one event per
	// barriered store, split as the paper splits them: global writes,
	// region writes, and region writes whose count update was elided by
	// the sameregion optimization.
	KindBarrierGlobal // StoreGlobalPtr fired
	KindBarrierRegion // StorePtr fired, counts possibly updated
	KindBarrierElided // StorePtr fired, sameregion: no count update for val

	// Deferred local-variable counting (internal/core).
	KindStackScan   // one frame's slots added to region counts
	KindStackUnscan // one frame's contributions removed

	// Region deletion detail (internal/core).
	KindCleanup // one object's cleanup ran during deleteregion
	KindDestroy // a cleanup called Destroy on a region pointer

	// Collector phases (internal/gc).
	KindGCMarkBegin
	KindGCMarkEnd
	KindGCSweepBegin
	KindGCSweepEnd

	// Parallel extension (internal/core's ParWorld).
	KindParRegionCreate
	KindParRegionDelete
	KindParRegionDeleteFail
	KindParWrite // one atomic-exchange pointer write by a worker

	// Faults (internal/core, internal/gc). Emitted immediately before a
	// typed fault unwinds (or an OOM error returns), so a crashing run
	// leaves a diagnosable trace: Site carries the fault kind's name, Aux
	// its numeric code, Addr and Region the faulting location.
	KindFault

	// Deferred reclamation (internal/core, Options.DeferredDelete). One
	// event per sweep slice that retired pages: Size is the pages poisoned,
	// Aux the sweep debt remaining after the slice.
	KindSweepSlice

	// Region migration (internal/core, Runtime.ExportRegion/ImportRegion).
	// Emitted on both sides of a handoff: Size is the page count moved, Aux
	// is 0 for the export (region leaving this runtime) and 1 for the import
	// (region arriving), Region the local region id on that side.
	KindMigrate

	// Request-level spans (internal/serve, internal/shard, internal/core).
	// A span is a begin/end event pair bracketing one phase of work: Aux is
	// the SpanKind, Region the shard id the span runs on (-1 for a
	// single-runtime trace), Addr the request id plus one (0 when the span
	// belongs to the shard itself rather than a request — an idle sweep, a
	// migration pause). Spans on one (Region, Addr) key nest LIFO; see
	// span.go for the analyzer and docs/OBSERVABILITY.md for the invariants.
	KindSpanBegin
	KindSpanEnd

	// Pooled string free (internal/core, Runtime.RstrFree): the explicit
	// release of one rstralloc block back to its region's capacity-class
	// pool. Addr is the block, Size its aligned capacity, Aux 1 when the
	// block was pooled for reuse and 0 when it fell outside the pool
	// (pooling disabled or above the class ceiling).
	KindRstrFree

	numKinds
)

var kindNames = [numKinds]string{
	KindInvalid:             "invalid",
	KindRegionCreate:        "region-create",
	KindRegionDelete:        "region-delete",
	KindRegionDeleteFail:    "region-delete-fail",
	KindRalloc:              "ralloc",
	KindRarrayAlloc:         "rarray-alloc",
	KindRstrAlloc:           "rstr-alloc",
	KindBarrierGlobal:       "barrier-global",
	KindBarrierRegion:       "barrier-region",
	KindBarrierElided:       "barrier-elided",
	KindStackScan:           "stack-scan",
	KindStackUnscan:         "stack-unscan",
	KindCleanup:             "cleanup",
	KindDestroy:             "destroy",
	KindGCMarkBegin:         "gc-mark-begin",
	KindGCMarkEnd:           "gc-mark-end",
	KindGCSweepBegin:        "gc-sweep-begin",
	KindGCSweepEnd:          "gc-sweep-end",
	KindParRegionCreate:     "par-region-create",
	KindParRegionDelete:     "par-region-delete",
	KindParRegionDeleteFail: "par-region-delete-fail",
	KindParWrite:            "par-write",
	KindFault:               "fault",
	KindSweepSlice:          "sweep-slice",
	KindMigrate:             "migrate",
	KindSpanBegin:           "span-begin",
	KindSpanEnd:             "span-end",
	KindRstrFree:            "rstr-free",
}

// String returns the kebab-case event name used throughout the sinks.
func (k Kind) String() string {
	if k >= numKinds {
		return "invalid"
	}
	return kindNames[k]
}

// Event is one runtime event. Emitters fill Kind and the kind-specific
// fields; the Tracer assigns Seq and Cycle. Field meanings per kind are
// documented in docs/OBSERVABILITY.md; unused numeric fields are -1 (Region,
// Aux) or 0 (Addr, Size).
type Event struct {
	// Seq is the event's position in the tracer's total emission order,
	// starting at 0. Seq is assigned under the tracer's lock, so it is a
	// total order even when ParWorld workers emit concurrently.
	Seq uint64
	// Cycle is the simulated-machine clock at emission: the run's total
	// modelled cycles (stats.Counters.TotalCycles) if the tracer is
	// attached to a runtime, else 0.
	Cycle uint64
	// Kind is the event type.
	Kind Kind
	// Region is the id of the region the event concerns, or -1.
	Region int32
	// Addr is the simulated address the event concerns (an object for
	// allocation and cleanup events, a slot for barriers), or 0.
	Addr uint32
	// Size is a byte count: data bytes for allocations and cleanups, the
	// region's total bytes for region-delete, live bytes for gc-sweep-end.
	Size int32
	// Aux is kind-specific: element count for rarray-alloc, the old target
	// region for barriers, slot count for stack scans, the reference count
	// for region-delete-fail, the worker id for par-write, the collection
	// ordinal for gc phases. -1 when unused.
	Aux int32
	// Site is the allocation/cleanup site label: the registered cleanup
	// name for ralloc, rarray-alloc, and cleanup events; empty otherwise.
	Site string
}

// Tracer is a fixed-capacity ring buffer of events. When the buffer is
// full the oldest events are overwritten and counted in Dropped, so a
// tracer is safe to leave attached to an arbitrarily long run.
//
// Emit is safe for concurrent use (ParWorld workers share one tracer);
// attaching a tracer or setting its clock must happen before the emitters
// start.
type Tracer struct {
	mu      sync.Mutex
	clock   func() uint64
	buf     []Event
	next    int // index of the next write
	full    bool
	seq     uint64
	dropped uint64
}

// DefaultCapacity is the event capacity used when New is given a
// non-positive one.
const DefaultCapacity = 1 << 16

// New returns a tracer holding the last capacity events.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// SetClock sets the timestamp source for subsequent events. The region
// runtime and the collector install their counter's TotalCycles on
// attachment if no clock is set.
func (t *Tracer) SetClock(fn func() uint64) {
	t.mu.Lock()
	t.clock = fn
	t.mu.Unlock()
}

// InitClock installs fn as the clock only if none is set yet, so a clock
// chosen by the user survives runtime attachment.
func (t *Tracer) InitClock(fn func() uint64) {
	t.mu.Lock()
	if t.clock == nil {
		t.clock = fn
	}
	t.mu.Unlock()
}

// Emit appends ev to the buffer, assigning its Seq and — when the tracer
// has a clock — its Cycle. On a clock-less tracer a Cycle set by the caller
// survives, which is how span emitters stamp events with a clock of their
// own (the serving simulator's modelled timeline, a shard's local cycle
// count) on one shared tracer. The oldest event is overwritten when the
// buffer is full.
func (t *Tracer) Emit(ev Event) {
	t.mu.Lock()
	ev.Seq = t.seq
	t.seq++
	if t.clock != nil {
		ev.Cycle = t.clock()
	}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.full = true
		t.dropped++
	}
	t.next++
	if t.next == cap(t.buf) {
		t.next = 0
	}
	t.mu.Unlock()
}

// Events returns the buffered events oldest-to-newest. The slice is a copy;
// the tracer keeps running.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Event(nil), t.buf...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Emitted returns the total number of events ever emitted.
func (t *Tracer) Emitted() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Stats is one consistent reading of the tracer's own health: how many
// events it has emitted, how many the ring currently holds, and how many
// were lost to wraparound. Metrics exporters publish these as gauges so a
// scrape of a traced run shows whether the ring is keeping up.
type Stats struct {
	Emitted  uint64
	Buffered int
	Dropped  uint64
}

// Stats returns the tracer's counters in one locked read, unlike calling
// Emitted, Len, and Dropped separately while emitters are running.
func (t *Tracer) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{Emitted: t.seq, Buffered: len(t.buf), Dropped: t.dropped}
}

// Reset discards all buffered events and the drop count; Seq keeps
// increasing so event identities stay unique across resets.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.buf = t.buf[:0]
	t.next = 0
	t.full = false
	t.dropped = 0
	t.mu.Unlock()
}
