package trace

import (
	"fmt"
	"sort"
)

// Request-level span tracing: the layer that turns "p999 is 130k cycles"
// into "90k of it was queue wait and 30k was the work phase". A span is a
// KindSpanBegin/KindSpanEnd event pair bracketing one phase of work; the
// emitters (internal/serve per-session lifecycles, internal/shard idle
// sweeps and migration pauses, internal/core sweep-tax slices) stamp both
// ends with the relevant clock, and BuildSpanProfile folds the pairs back
// into per-request critical paths.
//
// The contract that makes the attribution trustworthy is conservation: for
// every request, the self cycles of its spans (a span's duration minus any
// spans nested inside it) sum exactly to its end-to-end latency — the span
// of [first begin, last end]. There is no "other" bucket; a gap or an
// overlap is an emitter bug, and Conserved reports it instead of letting a
// plausible-but-wrong table stand. When the ring dropped events the pairs
// may be truncated, so the profile is marked Truncated and conservation is
// only judged over requests whose spans all matched.

// SpanKind identifies the phase a span attributes its cycles to. The zero
// value is invalid so a forgotten kind is visible in traces.
type SpanKind uint8

const (
	SpanInvalid SpanKind = iota
	// SpanQueue is admission-to-service wait in the modelled per-shard queue.
	SpanQueue
	// SpanParse is the request's parse phase: the short-lived request region
	// and its allocation mix.
	SpanParse
	// SpanWork is the request's work phase: the longer-lived work region,
	// its allocations, the pointer-store loop, and any tenant-state append.
	SpanWork
	// SpanDelete is region deletion: the synchronous walk, or the O(1)
	// detach under deferred reclamation, plus request teardown.
	SpanDelete
	// SpanSweep is deferred reclamation: idle-gap sweep slices on the shard
	// track, and the allocation-tax slices carved out of a request's
	// allocation phases.
	SpanSweep
	// SpanMigrate is a region migration pause: the export or import task's
	// cycle window on the shard that ran it.
	SpanMigrate
	// SpanStealStall is a stolen task's execution window on the thief shard:
	// cycles a shard spent running work that was homed elsewhere.
	SpanStealStall

	numSpanKinds
)

// NumSpanKinds is the array size that indexes by SpanKind (valid kinds are
// 1..NumSpanKinds-1), for callers keeping per-kind tallies.
const NumSpanKinds = int(numSpanKinds)

var spanKindNames = [numSpanKinds]string{
	SpanInvalid:    "invalid",
	SpanQueue:      "queue",
	SpanParse:      "parse",
	SpanWork:       "work",
	SpanDelete:     "delete",
	SpanSweep:      "sweep",
	SpanMigrate:    "migrate",
	SpanStealStall: "steal-stall",
}

// String returns the kebab-case phase name used in reports and metric
// labels.
func (k SpanKind) String() string {
	if k >= numSpanKinds {
		return "invalid"
	}
	return spanKindNames[k]
}

// SpanKinds returns the valid span kinds in report order.
func SpanKinds() []SpanKind {
	out := make([]SpanKind, 0, numSpanKinds-1)
	for k := SpanKind(1); k < numSpanKinds; k++ {
		out = append(out, k)
	}
	return out
}

// SpanBegin and SpanEnd build the event halves of a span. The caller
// emits them on a tracer, stamping Cycle itself when the tracer is
// clock-less: req is the request id (-1 for a shard-level span), shard the
// shard id (-1 for a single-runtime trace).
func SpanBegin(kind SpanKind, req, shard int, cycle uint64) Event {
	return spanEvent(KindSpanBegin, kind, req, shard, cycle)
}

// SpanEnd is SpanBegin's closing half.
func SpanEnd(kind SpanKind, req, shard int, cycle uint64) Event {
	return spanEvent(KindSpanEnd, kind, req, shard, cycle)
}

func spanEvent(ek Kind, kind SpanKind, req, shard int, cycle uint64) Event {
	return Event{Kind: ek, Aux: int32(kind), Region: int32(shard),
		Addr: uint32(req + 1), Cycle: cycle}
}

// Span is one reconstructed begin/end pair.
type Span struct {
	Kind    SpanKind
	Request int // request id, or -1 for a shard-level span
	Shard   int // shard id, or -1
	Begin   uint64
	End     uint64
	// Self is the span's own cycles: End-Begin minus the durations of spans
	// nested inside it, so a phase that paid a sweep tax mid-allocation
	// attributes those cycles to sweep, not to itself.
	Self uint64
}

// RequestSpans is one request's reconstructed critical path.
type RequestSpans struct {
	Request int
	Shard   int // shard of the request's first span
	Start   uint64
	End     uint64
	// Phases sums each kind's self cycles over the request's spans.
	Phases [numSpanKinds]uint64
	Spans  []Span
}

// Latency is the request's end-to-end span in cycles.
func (r *RequestSpans) Latency() uint64 { return r.End - r.Start }

// PhaseSum sums the request's attributed phase cycles — the quantity
// conservation pins to Latency.
func (r *RequestSpans) PhaseSum() uint64 {
	var sum uint64
	for _, c := range r.Phases {
		sum += c
	}
	return sum
}

// SpanProfile is the analysis of one span stream: per-request critical
// paths plus the shard-level spans that belong to no request.
type SpanProfile struct {
	// Requests holds one entry per request id seen, sorted by id.
	Requests []*RequestSpans
	// Track holds the shard-level spans (idle sweeps, migration pauses,
	// steal stalls), in stream order.
	Track []Span
	// PhaseTotals sums self cycles per kind over all request spans.
	PhaseTotals [numSpanKinds]uint64
	// TrackTotals sums self cycles per kind over shard-level spans.
	TrackTotals [numSpanKinds]uint64
	// Dropped is the ring's drop count at extraction; Truncated is set when
	// it is nonzero or any span failed to match, meaning the attribution is
	// a window, not the whole run.
	Dropped   uint64
	Truncated bool
	// Unmatched counts begin events without an end (or vice versa) — the
	// visible footprint of a truncated ring.
	Unmatched int
}

// spanKey identifies one nesting stack: spans nest LIFO per (shard,
// request) pair.
type spanKey struct {
	shard int32
	addr  uint32
}

type openSpan struct {
	kind   SpanKind
	begin  uint64
	nested uint64 // total duration of spans closed inside this one
}

// BuildSpanProfile folds span events (oldest first, as returned by
// Tracer.Events) into a SpanProfile; non-span events are ignored, so a
// mixed stream works. dropped is the tracer's drop count: when nonzero the
// profile is marked Truncated and unmatched pairs are counted rather than
// treated as errors. A begin/end mismatch on an untruncated stream is an
// emitter bug and returns an error.
func BuildSpanProfile(events []Event, dropped uint64) (*SpanProfile, error) {
	p := &SpanProfile{Dropped: dropped, Truncated: dropped > 0}
	open := map[spanKey][]openSpan{}
	reqs := map[int]*RequestSpans{}

	record := func(s Span) {
		if s.Request < 0 {
			p.Track = append(p.Track, s)
			p.TrackTotals[s.Kind] += s.Self
			return
		}
		r, ok := reqs[s.Request]
		if !ok {
			r = &RequestSpans{Request: s.Request, Shard: s.Shard, Start: s.Begin, End: s.End}
			reqs[s.Request] = r
		}
		if s.Begin < r.Start {
			r.Start = s.Begin
		}
		if s.End > r.End {
			r.End = s.End
		}
		r.Phases[s.Kind] += s.Self
		r.Spans = append(r.Spans, s)
		p.PhaseTotals[s.Kind] += s.Self
	}

	for _, ev := range events {
		if ev.Kind != KindSpanBegin && ev.Kind != KindSpanEnd {
			continue
		}
		kind := SpanKind(ev.Aux)
		if kind == SpanInvalid || kind >= numSpanKinds {
			return nil, fmt.Errorf("trace: span event seq %d has invalid span kind %d", ev.Seq, ev.Aux)
		}
		key := spanKey{shard: ev.Region, addr: ev.Addr}
		if ev.Kind == KindSpanBegin {
			open[key] = append(open[key], openSpan{kind: kind, begin: ev.Cycle})
			continue
		}
		stack := open[key]
		if len(stack) == 0 {
			if dropped == 0 {
				return nil, fmt.Errorf("trace: span-end %q at cycle %d (request %d, shard %d) without a begin",
					kind, ev.Cycle, int(ev.Addr)-1, ev.Region)
			}
			p.Unmatched++
			p.Truncated = true
			continue
		}
		top := stack[len(stack)-1]
		open[key] = stack[:len(stack)-1]
		if top.kind != kind {
			return nil, fmt.Errorf("trace: span-end %q closes span-begin %q (request %d, shard %d)",
				kind, top.kind, int(ev.Addr)-1, ev.Region)
		}
		if ev.Cycle < top.begin {
			return nil, fmt.Errorf("trace: span %q ends at cycle %d before its begin %d",
				kind, ev.Cycle, top.begin)
		}
		dur := ev.Cycle - top.begin
		self := dur - top.nested
		if top.nested > dur {
			return nil, fmt.Errorf("trace: span %q nests %d cycles inside a %d-cycle window",
				kind, top.nested, dur)
		}
		if n := len(open[key]); n > 0 {
			open[key][n-1].nested += dur
		}
		record(Span{Kind: kind, Request: int(ev.Addr) - 1, Shard: int(ev.Region),
			Begin: top.begin, End: ev.Cycle, Self: self})
	}
	for _, stack := range open {
		p.Unmatched += len(stack)
	}
	if p.Unmatched > 0 {
		p.Truncated = true
		if dropped == 0 {
			return nil, fmt.Errorf("trace: %d spans never ended in an untruncated stream", p.Unmatched)
		}
	}

	p.Requests = make([]*RequestSpans, 0, len(reqs))
	for _, r := range reqs {
		p.Requests = append(p.Requests, r)
	}
	sort.Slice(p.Requests, func(i, j int) bool { return p.Requests[i].Request < p.Requests[j].Request })
	return p, nil
}

// Conserved verifies the conservation property: every request's attributed
// phase cycles sum exactly to its end-to-end latency. It returns the first
// violating request, or nil. On a truncated profile the check is
// meaningless (spans are missing, not wrong) and Conserved says so.
func (p *SpanProfile) Conserved() error {
	if p.Truncated {
		return fmt.Errorf("trace: span stream truncated (%d events dropped, %d spans unmatched): attribution is a window, not an account",
			p.Dropped, p.Unmatched)
	}
	for _, r := range p.Requests {
		if sum, lat := r.PhaseSum(), r.Latency(); sum != lat {
			return fmt.Errorf("trace: request %d leaks cycles: phases sum to %d, end-to-end latency is %d",
				r.Request, sum, lat)
		}
	}
	return nil
}

// PhaseValues returns each request's self cycles for kind, in request-id
// order — the exact population behind the attribution quantiles.
func (p *SpanProfile) PhaseValues(kind SpanKind) []uint64 {
	out := make([]uint64, len(p.Requests))
	for i, r := range p.Requests {
		out[i] = r.Phases[kind]
	}
	return out
}

// Slowest returns the k highest-latency requests, slowest first, ties
// broken by request id so the order is deterministic.
func (p *SpanProfile) Slowest(k int) []*RequestSpans {
	out := append([]*RequestSpans(nil), p.Requests...)
	sort.Slice(out, func(i, j int) bool {
		if li, lj := out[i].Latency(), out[j].Latency(); li != lj {
			return li > lj
		}
		return out[i].Request < out[j].Request
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// QuantileExact returns the q-th order statistic of values (0 < q <= 1),
// exact rather than histogram-interpolated: the ceil(q*n)-th smallest
// value. Returns 0 on an empty population.
func QuantileExact(values []uint64, q float64) uint64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]uint64(nil), values...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q*float64(len(s))+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
