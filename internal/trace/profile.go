package trace

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// RegionProfile is one region's lifetime folded out of the event stream.
type RegionProfile struct {
	ID    int32
	Birth uint64 // cycle of region-create (0 if the create was dropped)
	Death uint64 // cycle of region-delete; 0 while the region lives
	// BirthSeen is false when the create event fell out of the ring, so
	// Birth is unknown rather than cycle 0.
	BirthSeen bool
	Deleted   bool
	// DeleteFails counts refused deleteregion calls: each one is a moment
	// the program wanted the region dead but external references remained.
	DeleteFails int
	Allocs      int
	Bytes       uint64
	// FailRC is the reference count reported by the most recent failed
	// deletion, i.e. how many external references blocked it.
	FailRC int32
}

// Span returns the region's observed lifetime in cycles (0 if unknown).
func (r *RegionProfile) Span() uint64 {
	if !r.Deleted || !r.BirthSeen || r.Death < r.Birth {
		return 0
	}
	return r.Death - r.Birth
}

// Profile is the analysis of one event stream: per-region lifetimes plus
// stream-wide peaks and totals.
type Profile struct {
	Events  int    // events analyzed
	Dropped uint64 // events lost to ring wraparound before analysis

	Created, Deleted, Leaked int
	DeleteFails              int

	// Live high-water marks observed inside the event window. Objects die
	// only with their region, so live objects/bytes fall exactly at
	// region-delete events.
	PeakLiveRegions int
	PeakLiveObjects int
	PeakLiveBytes   uint64

	FirstCycle, LastCycle uint64

	Barriers           struct{ Global, Region, Elided uint64 }
	Scans, Unscans     uint64
	Cleanups, Destroys uint64
	GCCollections      uint64

	Regions []*RegionProfile // sorted by id
}

// BuildProfile folds events (oldest first, as returned by Tracer.Events)
// into a Profile. dropped is the tracer's Dropped count; when nonzero the
// profile is a window, not the whole run, and leak candidates are only
// "not deleted within the window".
func BuildProfile(events []Event, dropped uint64) *Profile {
	p := &Profile{Events: len(events), Dropped: dropped}
	byID := map[int32]*RegionProfile{}
	region := func(id int32) *RegionProfile {
		r, ok := byID[id]
		if !ok {
			r = &RegionProfile{ID: id}
			byID[id] = r
		}
		return r
	}

	liveRegions, liveObjects := 0, 0
	var liveBytes uint64
	for i, ev := range events {
		if i == 0 {
			p.FirstCycle = ev.Cycle
		}
		if ev.Cycle > p.LastCycle {
			p.LastCycle = ev.Cycle
		}
		switch ev.Kind {
		case KindRegionCreate:
			r := region(ev.Region)
			r.Birth, r.BirthSeen = ev.Cycle, true
			p.Created++
			liveRegions++
			if liveRegions > p.PeakLiveRegions {
				p.PeakLiveRegions = liveRegions
			}
		case KindRegionDelete:
			r := region(ev.Region)
			r.Death, r.Deleted = ev.Cycle, true
			p.Deleted++
			if liveRegions > 0 {
				liveRegions--
			}
			liveObjects -= r.Allocs
			liveBytes -= r.Bytes
		case KindRegionDeleteFail:
			r := region(ev.Region)
			r.DeleteFails++
			r.FailRC = ev.Aux
			p.DeleteFails++
		case KindRalloc, KindRarrayAlloc, KindRstrAlloc:
			r := region(ev.Region)
			r.Allocs++
			r.Bytes += uint64(ev.Size)
			liveObjects++
			liveBytes += uint64(ev.Size)
			if liveObjects > p.PeakLiveObjects {
				p.PeakLiveObjects = liveObjects
			}
			if liveBytes > p.PeakLiveBytes {
				p.PeakLiveBytes = liveBytes
			}
		case KindBarrierGlobal:
			p.Barriers.Global++
		case KindBarrierRegion:
			p.Barriers.Region++
		case KindBarrierElided:
			p.Barriers.Elided++
		case KindStackScan:
			p.Scans++
		case KindStackUnscan:
			p.Unscans++
		case KindCleanup:
			p.Cleanups++
		case KindDestroy:
			p.Destroys++
		case KindGCMarkBegin:
			p.GCCollections++
		case KindParRegionCreate:
			// Par regions have their own id space; profiles mix the two
			// only if one tracer is attached to both a Runtime and a
			// ParWorld, which the analysis does not support.
			r := region(ev.Region)
			r.Birth, r.BirthSeen = ev.Cycle, true
			p.Created++
			liveRegions++
			if liveRegions > p.PeakLiveRegions {
				p.PeakLiveRegions = liveRegions
			}
		case KindParRegionDelete:
			r := region(ev.Region)
			r.Death, r.Deleted = ev.Cycle, true
			p.Deleted++
			if liveRegions > 0 {
				liveRegions--
			}
		case KindParRegionDeleteFail:
			r := region(ev.Region)
			r.DeleteFails++
			p.DeleteFails++
		}
	}

	p.Regions = make([]*RegionProfile, 0, len(byID))
	for _, r := range byID {
		p.Regions = append(p.Regions, r)
		if !r.Deleted {
			p.Leaked++
		}
	}
	sort.Slice(p.Regions, func(i, j int) bool { return p.Regions[i].ID < p.Regions[j].ID })
	return p
}

// LeakCandidates returns the regions created but never deleted within the
// event window, sorted by bytes descending — the first places to look when
// a run's memory grows without bound.
func (p *Profile) LeakCandidates() []*RegionProfile {
	var out []*RegionProfile
	for _, r := range p.Regions {
		if !r.Deleted {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// WriteReport renders the profile as the text report cmd/regiontrace
// prints: stream totals, peaks, the top regions by bytes, and leak
// candidates. topN bounds the per-region table (0 means 10).
func (p *Profile) WriteReport(w io.Writer, topN int) {
	if topN <= 0 {
		topN = 10
	}
	fmt.Fprintf(w, "events analyzed: %d (dropped by ring: %d)\n", p.Events, p.Dropped)
	fmt.Fprintf(w, "cycle window: %d .. %d\n", p.FirstCycle, p.LastCycle)
	fmt.Fprintf(w, "regions: %d created, %d deleted, %d not deleted; %d failed deletes\n",
		p.Created, p.Deleted, p.Leaked, p.DeleteFails)
	fmt.Fprintf(w, "peaks: %d live regions, %d live objects, %d live bytes\n",
		p.PeakLiveRegions, p.PeakLiveObjects, p.PeakLiveBytes)
	fmt.Fprintf(w, "barriers: %d global, %d region, %d sameregion-elided\n",
		p.Barriers.Global, p.Barriers.Region, p.Barriers.Elided)
	fmt.Fprintf(w, "stack: %d frame scans, %d unscans; cleanups: %d objects, %d destroys; gc collections: %d\n",
		p.Scans, p.Unscans, p.Cleanups, p.Destroys, p.GCCollections)

	top := append([]*RegionProfile(nil), p.Regions...)
	sort.Slice(top, func(i, j int) bool {
		if top[i].Bytes != top[j].Bytes {
			return top[i].Bytes > top[j].Bytes
		}
		return top[i].ID < top[j].ID
	})
	if len(top) > topN {
		top = top[:topN]
	}
	fmt.Fprintf(w, "\ntop %d regions by bytes:\n", len(top))
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "region\tbirth\tdeath\tspan\tallocs\tbytes\tfails\tstate\t")
	for _, r := range top {
		birth, death, span := "?", "-", "-"
		if r.BirthSeen {
			birth = fmt.Sprint(r.Birth)
		}
		state := "live"
		if r.Deleted {
			death = fmt.Sprint(r.Death)
			span = fmt.Sprint(r.Span())
			state = "deleted"
		}
		fmt.Fprintf(tw, "#%d\t%s\t%s\t%s\t%d\t%d\t%d\t%s\t\n",
			r.ID, birth, death, span, r.Allocs, r.Bytes, r.DeleteFails, state)
	}
	tw.Flush()

	leaks := p.LeakCandidates()
	if len(leaks) == 0 {
		fmt.Fprintln(w, "\nleak candidates: none")
		return
	}
	fmt.Fprintf(w, "\nleak candidates (created, never deleted in window): %d\n", len(leaks))
	n := len(leaks)
	if n > topN {
		n = topN
	}
	for _, r := range leaks[:n] {
		fmt.Fprintf(w, "  region#%d: %d allocs, %d bytes, %d failed deletes\n",
			r.ID, r.Allocs, r.Bytes, r.DeleteFails)
	}
	if len(leaks) > n {
		fmt.Fprintf(w, "  ... and %d more\n", len(leaks)-n)
	}
}
