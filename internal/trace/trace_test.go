package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRingKeepsLastEvents(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: KindRalloc, Region: int32(i)})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Seq != want {
			t.Errorf("event %d: seq = %d, want %d", i, ev.Seq, want)
		}
		if want := int32(6 + i); ev.Region != want {
			t.Errorf("event %d: region = %d, want %d", i, ev.Region, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tr.Dropped())
	}
	if tr.Emitted() != 10 {
		t.Errorf("emitted = %d, want 10", tr.Emitted())
	}
}

func TestClock(t *testing.T) {
	tr := New(8)
	var now uint64
	tr.SetClock(func() uint64 { return now })
	now = 42
	tr.Emit(Event{Kind: KindRegionCreate, Region: 0})
	now = 99
	tr.Emit(Event{Kind: KindRegionDelete, Region: 0})
	evs := tr.Events()
	if evs[0].Cycle != 42 || evs[1].Cycle != 99 {
		t.Fatalf("cycles = %d, %d; want 42, 99", evs[0].Cycle, evs[1].Cycle)
	}
	// InitClock must not replace an existing clock.
	tr.InitClock(func() uint64 { return 0 })
	now = 7
	tr.Emit(Event{Kind: KindRalloc, Region: 0})
	if evs := tr.Events(); evs[2].Cycle != 7 {
		t.Fatalf("cycle after InitClock = %d, want 7", evs[2].Cycle)
	}
}

func TestReset(t *testing.T) {
	tr := New(2)
	tr.Emit(Event{Kind: KindRalloc})
	tr.Emit(Event{Kind: KindRalloc})
	tr.Emit(Event{Kind: KindRalloc})
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("after reset: len %d dropped %d", tr.Len(), tr.Dropped())
	}
	tr.Emit(Event{Kind: KindRstrAlloc})
	if evs := tr.Events(); len(evs) != 1 || evs[0].Seq != 3 {
		t.Fatalf("after reset: %+v (seq must keep increasing)", evs)
	}
}

func TestKindNamesComplete(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" {
			t.Errorf("kind %d has no name", k)
		}
		if other, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share name %q", other, k, name)
		}
		seen[name] = k
	}
	if Kind(250).String() != "invalid" {
		t.Errorf("out-of-range kind not invalid")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{Seq: 0, Cycle: 10, Kind: KindRegionCreate, Region: 0, Addr: 4096, Aux: -1},
		{Seq: 1, Cycle: 20, Kind: KindRalloc, Region: 0, Addr: 4200, Size: 16, Aux: -1, Site: "cell"},
		{Seq: 2, Cycle: 30, Kind: KindBarrierRegion, Region: 1, Addr: 4204, Aux: 0},
		{Seq: 3, Cycle: 40, Kind: KindRegionDeleteFail, Region: 0, Aux: 2},
		{Seq: 4, Cycle: 50, Kind: KindRegionDelete, Region: 0, Size: 16, Aux: 1},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	// One line per event, each a valid JSON object.
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(in) {
		t.Fatalf("%d lines, want %d", len(lines), len(in))
	}
	for _, ln := range lines {
		if !json.Valid([]byte(ln)) {
			t.Fatalf("invalid JSON line: %s", ln)
		}
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip lost events: %d != %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("event %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	evs := []Event{
		{Cycle: 1, Kind: KindRegionCreate, Region: 0, Aux: -1},
		{Cycle: 5, Kind: KindRalloc, Region: 0, Size: 16, Aux: -1, Site: "cell"},
		{Cycle: 7, Kind: KindGCMarkBegin, Region: -1, Aux: 1},
		{Cycle: 9, Kind: KindGCMarkEnd, Region: -1, Aux: 1},
		{Cycle: 9, Kind: KindGCSweepBegin, Region: -1, Aux: 1},
		{Cycle: 12, Kind: KindGCSweepEnd, Region: -1, Size: 64, Aux: 1},
		{Cycle: 20, Kind: KindRegionDelete, Region: 0, Size: 16, Aux: 1},
		{Cycle: 21, Kind: KindRegionCreate, Region: 1, Aux: -1}, // leaked
		{Cycle: 25, Kind: KindParWrite, Region: -1, Aux: 3},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var slices, instants int
	var leaked bool
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			slices++
			if args, ok := ev["args"].(map[string]any); ok && args["leaked"] == true {
				leaked = true
			}
		case "i":
			instants++
		}
	}
	// region#0, gc-mark, gc-sweep, leaked region#1.
	if slices != 4 {
		t.Errorf("slices = %d, want 4", slices)
	}
	if instants != 2 { // ralloc + par-write
		t.Errorf("instants = %d, want 2", instants)
	}
	if !leaked {
		t.Errorf("leaked region not marked")
	}
}

func TestBuildProfile(t *testing.T) {
	evs := []Event{
		{Cycle: 10, Kind: KindRegionCreate, Region: 0, Aux: -1},
		{Cycle: 12, Kind: KindRalloc, Region: 0, Size: 16, Aux: -1},
		{Cycle: 14, Kind: KindRegionCreate, Region: 1, Aux: -1},
		{Cycle: 16, Kind: KindRstrAlloc, Region: 1, Size: 8, Aux: -1},
		{Cycle: 18, Kind: KindBarrierGlobal, Region: 0, Aux: -1},
		{Cycle: 20, Kind: KindRegionDeleteFail, Region: 0, Aux: 1},
		{Cycle: 22, Kind: KindBarrierGlobal, Region: -1, Aux: 0},
		{Cycle: 24, Kind: KindCleanup, Region: 0, Size: 16, Aux: -1},
		{Cycle: 26, Kind: KindRegionDelete, Region: 0, Size: 16, Aux: 1},
	}
	p := BuildProfile(evs, 0)
	if p.Created != 2 || p.Deleted != 1 || p.Leaked != 1 {
		t.Fatalf("created/deleted/leaked = %d/%d/%d", p.Created, p.Deleted, p.Leaked)
	}
	if p.DeleteFails != 1 || p.Barriers.Global != 2 || p.Cleanups != 1 {
		t.Fatalf("fails/globals/cleanups = %d/%d/%d", p.DeleteFails, p.Barriers.Global, p.Cleanups)
	}
	if p.PeakLiveRegions != 2 || p.PeakLiveObjects != 2 || p.PeakLiveBytes != 24 {
		t.Fatalf("peaks = %d regions, %d objects, %d bytes",
			p.PeakLiveRegions, p.PeakLiveObjects, p.PeakLiveBytes)
	}
	r0 := p.Regions[0]
	if r0.ID != 0 || !r0.Deleted || r0.Span() != 16 || r0.DeleteFails != 1 || r0.FailRC != 1 {
		t.Fatalf("region 0 profile: %+v", r0)
	}
	leaks := p.LeakCandidates()
	if len(leaks) != 1 || leaks[0].ID != 1 {
		t.Fatalf("leaks: %+v", leaks)
	}
	var buf bytes.Buffer
	p.WriteReport(&buf, 0)
	for _, want := range []string{"leak candidates", "region#1", "deleted"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report missing %q:\n%s", want, buf.String())
		}
	}
}
