// Package stats collects the measurements the paper reports: allocation
// counts and volumes (Tables 2 and 3), memory-management cycle accounting
// split by activity (Figures 9 and 11), and cache-stall cycles (Figure 10).
//
// Every simulated memory access costs one cycle and is attributed to the
// accounting Mode active at the time of the access. "Base" execution time is
// the application's own accesses plus stall cycles; everything else is
// memory-management overhead.
package stats

// Mode identifies the activity a simulated cycle is charged to.
type Mode int

// Accounting modes. ModeApp is the application itself; all other modes are
// memory management and together form the "memory" bar of Figure 9.
const (
	ModeApp     Mode = iota // application work
	ModeAlloc               // object/region allocation
	ModeFree                // explicit deallocation (free, deleteregion page release)
	ModeRC                  // reference-count write barriers
	ModeScan                // stack scan and unscan
	ModeCleanup             // cleanup scan of deleted regions
	ModeGC                  // garbage collector marking and sweeping
	NumModes
)

var modeNames = [NumModes]string{"app", "alloc", "free", "rc", "scan", "cleanup", "gc"}

// String returns the short lowercase name of the mode.
func (m Mode) String() string {
	if m < 0 || m >= NumModes {
		return "invalid"
	}
	return modeNames[m]
}

// BarrierCounts breaks down pointer-write barriers by kind.
type BarrierCounts struct {
	Global     uint64 // writes of region pointers into global storage
	Region     uint64 // writes of region pointers into region objects
	SameRegion uint64 // region writes where source and target share a region
}

// Counters accumulates every statistic a single experiment run produces.
// A Counters value is plain data; the zero value is ready to use.
type Counters struct {
	// Cycle accounting per mode plus cache stalls.
	Cycles      [NumModes]uint64
	ReadStalls  uint64 // cycles lost waiting for loads (Figure 10)
	WriteStalls uint64 // cycles lost to a full store buffer (Figure 10)

	// Allocation volume (Tables 2 and 3).
	Allocs         uint64 // number of allocation requests
	FreeCalls      uint64 // number of explicit frees
	BytesRequested uint64 // program-requested bytes, rounded up to 4
	LiveBytes      int64  // currently live program-requested bytes
	MaxLiveBytes   int64  // high-water mark of LiveBytes

	// Region statistics (Table 2).
	RegionsCreated uint64
	RegionsDeleted uint64
	DeleteFails    uint64 // deleteregion calls refused (external refs remained)
	LiveRegions    int64
	MaxLiveRegions int64
	MaxRegionBytes uint64 // largest region observed, program-requested bytes

	// Safety cost detail (Figure 11).
	Barriers        BarrierCounts
	FramesScanned   uint64
	SlotsScanned    uint64
	FramesUnscanned uint64
	CleanupCalls    uint64
	DestroyCalls    uint64

	// Collector detail.
	GCCollections uint64
}

// AddAlloc records an allocation of size program-requested bytes
// (already rounded by the caller) and updates live high-water marks.
func (c *Counters) AddAlloc(size int64) {
	c.Allocs++
	c.BytesRequested += uint64(size)
	c.LiveBytes += size
	if c.LiveBytes > c.MaxLiveBytes {
		c.MaxLiveBytes = c.LiveBytes
	}
}

// AddFree records that size program-requested bytes stopped being live.
func (c *Counters) AddFree(size int64) {
	c.FreeCalls++
	c.LiveBytes -= size
}

// RegionCreated records a region creation.
func (c *Counters) RegionCreated() {
	c.RegionsCreated++
	c.LiveRegions++
	if c.LiveRegions > c.MaxLiveRegions {
		c.MaxLiveRegions = c.LiveRegions
	}
}

// RegionDeleted records a successful region deletion; bytes is the region's
// total program-requested volume, used for the Max. kbytes in region column.
// The region's live objects all die at once, so live bytes drop by the
// region's full volume.
func (c *Counters) RegionDeleted(bytes uint64) {
	c.RegionsDeleted++
	c.LiveRegions--
	c.LiveBytes -= int64(bytes)
	if bytes > c.MaxRegionBytes {
		c.MaxRegionBytes = bytes
	}
}

// MemCycles returns all cycles charged to memory management: every mode
// except the application itself. This is the "memory" bar of Figure 9.
func (c *Counters) MemCycles() uint64 {
	var sum uint64
	for m := ModeAlloc; m < NumModes; m++ {
		sum += c.Cycles[m]
	}
	return sum
}

// BaseCycles returns application cycles plus stall cycles: the "base" bar of
// Figure 9.
func (c *Counters) BaseCycles() uint64 {
	return c.Cycles[ModeApp] + c.ReadStalls + c.WriteStalls
}

// TotalCycles returns the modelled execution time: base plus memory.
func (c *Counters) TotalCycles() uint64 {
	return c.BaseCycles() + c.MemCycles()
}

// SafetyCycles returns the cycles attributable to making regions safe:
// reference counting, stack scanning, and region cleanup (Figure 11).
func (c *Counters) SafetyCycles() uint64 {
	return c.Cycles[ModeRC] + c.Cycles[ModeScan] + c.Cycles[ModeCleanup]
}
