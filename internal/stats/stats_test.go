package stats

import "testing"

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		ModeApp:     "app",
		ModeAlloc:   "alloc",
		ModeFree:    "free",
		ModeRC:      "rc",
		ModeScan:    "scan",
		ModeCleanup: "cleanup",
		ModeGC:      "gc",
		Mode(-1):    "invalid",
		NumModes:    "invalid",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestAllocFreeHighWater(t *testing.T) {
	var c Counters
	c.AddAlloc(100)
	c.AddAlloc(50)
	if c.LiveBytes != 150 || c.MaxLiveBytes != 150 {
		t.Fatalf("live=%d max=%d, want 150/150", c.LiveBytes, c.MaxLiveBytes)
	}
	c.AddFree(100)
	c.AddAlloc(40)
	if c.LiveBytes != 90 {
		t.Fatalf("live=%d, want 90", c.LiveBytes)
	}
	if c.MaxLiveBytes != 150 {
		t.Fatalf("max=%d, want 150 (high-water must not shrink)", c.MaxLiveBytes)
	}
	if c.Allocs != 3 || c.FreeCalls != 1 || c.BytesRequested != 190 {
		t.Fatalf("allocs=%d frees=%d bytes=%d", c.Allocs, c.FreeCalls, c.BytesRequested)
	}
}

func TestRegionHighWater(t *testing.T) {
	var c Counters
	c.RegionCreated()
	c.RegionCreated()
	c.RegionCreated()
	c.RegionDeleted(1000)
	c.RegionDeleted(3000)
	c.RegionCreated()
	if c.MaxLiveRegions != 3 {
		t.Fatalf("MaxLiveRegions=%d, want 3", c.MaxLiveRegions)
	}
	if c.LiveRegions != 2 {
		t.Fatalf("LiveRegions=%d, want 2", c.LiveRegions)
	}
	if c.MaxRegionBytes != 3000 {
		t.Fatalf("MaxRegionBytes=%d, want 3000", c.MaxRegionBytes)
	}
	if c.RegionsCreated != 4 || c.RegionsDeleted != 2 {
		t.Fatalf("created=%d deleted=%d", c.RegionsCreated, c.RegionsDeleted)
	}
}

func TestCycleRollups(t *testing.T) {
	var c Counters
	c.Cycles[ModeApp] = 100
	c.Cycles[ModeAlloc] = 10
	c.Cycles[ModeFree] = 5
	c.Cycles[ModeRC] = 7
	c.Cycles[ModeScan] = 3
	c.Cycles[ModeCleanup] = 2
	c.Cycles[ModeGC] = 11
	c.ReadStalls = 20
	c.WriteStalls = 4

	if got := c.MemCycles(); got != 38 {
		t.Errorf("MemCycles=%d, want 38", got)
	}
	if got := c.BaseCycles(); got != 124 {
		t.Errorf("BaseCycles=%d, want 124", got)
	}
	if got := c.TotalCycles(); got != 162 {
		t.Errorf("TotalCycles=%d, want 162", got)
	}
	if got := c.SafetyCycles(); got != 12 {
		t.Errorf("SafetyCycles=%d, want 12", got)
	}
}
