package xmalloc

import (
	"math/rand"
	"testing"

	"regions/internal/mem"
	"regions/internal/stats"
)

func newVm() (*Vmalloc, *mem.Space) {
	sp := mem.NewSpace(&stats.Counters{})
	return NewVmalloc(sp), sp
}

func TestVmLastPolicy(t *testing.T) {
	v, sp := newVm()
	r := v.Open(VmLast, 0)
	var ptrs []Ptr
	for i := 0; i < 100; i++ {
		p := v.Alloc(r, 40)
		sp.Store(p, uint32(i))
		ptrs = append(ptrs, p)
	}
	for i, p := range ptrs {
		if sp.Load(p) != uint32(i) {
			t.Fatalf("object %d clobbered", i)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Free in a last-policy region did not panic")
			}
		}()
		v.Free(r, ptrs[0])
	}()
	v.Close(r)
}

func TestVmPoolReusesElements(t *testing.T) {
	v, sp := newVm()
	r := v.Open(VmPool, 24)
	a := v.Alloc(r, 24)
	b := v.Alloc(r, 20) // smaller request, same element
	if a == b {
		t.Fatal("aliasing pool elements")
	}
	v.Free(r, a)
	c := v.Alloc(r, 24)
	if c != a {
		t.Fatalf("pool did not reuse freed element: %#x vs %#x", c, a)
	}
	sp.Store(b, 7)
	if sp.Load(b) != 7 {
		t.Fatal("pool element damaged")
	}
	v.Close(r)
}

func TestVmPoolOversizePanics(t *testing.T) {
	v, _ := newVm()
	r := v.Open(VmPool, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversize pool element")
		}
	}()
	v.Alloc(r, 17)
}

func TestVmBestFitCoalesces(t *testing.T) {
	v, sp := newVm()
	r := v.Open(VmBestFit, 0)
	// Allocate three adjacent blocks, free them all, then a block of their
	// combined size must fit without growing the region.
	a := v.Alloc(r, 100)
	b := v.Alloc(r, 100)
	c := v.Alloc(r, 100)
	sp.Store(a, 1)
	pages := r.Pages()
	v.Free(r, a)
	v.Free(r, c)
	v.Free(r, b) // middle last: exercises both merges
	big := v.Alloc(r, 280)
	if r.Pages() != pages {
		t.Fatalf("coalescing failed; region grew %d -> %d pages", pages, r.Pages())
	}
	if big != a {
		t.Fatalf("coalesced block not reused: got %#x want %#x", big, a)
	}
	v.Close(r)
}

func TestVmBestFitNoOverlap(t *testing.T) {
	v, _ := newVm()
	r := v.Open(VmBestFit, 0)
	type blk struct {
		p  Ptr
		sz int
	}
	var live []blk
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			k := rng.Intn(len(live))
			v.Free(r, live[k].p)
			live = append(live[:k], live[k+1:]...)
			continue
		}
		sz := 1 + rng.Intn(200)
		p := v.Alloc(r, sz)
		for _, b := range live {
			if p < b.p+Ptr(b.sz) && b.p < p+Ptr(sz) {
				t.Fatalf("overlap at op %d", i)
			}
		}
		live = append(live, blk{p, sz})
	}
	v.Close(r)
}

func TestVmCloseRecyclesPages(t *testing.T) {
	v, sp := newVm()
	use := func(policy VmPolicy) {
		r := v.Open(policy, 16)
		for i := 0; i < 2000; i++ {
			v.Alloc(r, 16)
		}
		v.Close(r)
	}
	use(VmLast)
	after := sp.MappedBytes()
	for i := 0; i < 10; i++ {
		use(VmLast)
		use(VmPool)
	}
	if sp.MappedBytes() != after {
		t.Fatalf("pages not recycled across regions: %d -> %d", after, sp.MappedBytes())
	}
}

func TestVmMisuse(t *testing.T) {
	v, _ := newVm()
	r := v.Open(VmLast, 0)
	v.Alloc(r, 8)
	v.Close(r)
	for name, f := range map[string]func(){
		"alloc after close": func() { v.Alloc(r, 8) },
		"double close":      func() { v.Close(r) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestVmPolicyString(t *testing.T) {
	if VmLast.String() != "last" || VmPool.String() != "pool" || VmBestFit.String() != "bestfit" {
		t.Fatal("policy names")
	}
	if VmPolicy(9).String() != "invalid" {
		t.Fatal("invalid policy name")
	}
}
