package xmalloc

import (
	"regions/internal/mem"
	"regions/internal/stats"
)

// BZ reimplements the design of Barrett and Zorn's lifetime-prediction
// allocator, which the paper's related work describes as the closest
// automatic approximation of regions:
//
//	"Barrett and Zorn use profiling to determine allocations that are
//	short-lived, then place these allocations in fixed-size regions. A new
//	region is created when the previous one fills up, and regions are
//	deleted when all objects they contain are freed. This provides some of
//	the performance advantages of regions without programmer intervention,
//	but does not work for all programs."
//
// Allocations carry a site identifier (the original used the call stack).
// Each site's first allocations are profiled online: their lifetimes are
// measured in allocation-clock ticks, and sites whose observed lifetimes
// stay short are classified short-lived. Short-lived allocations then bump
// out of a shared fixed-size birth region with a live counter; when a
// filled region's counter hits zero, its pages are recycled at once.
// Everything else goes to a general-purpose inner allocator (Lea).
type BZ struct {
	sp    *mem.Space
	inner *Lea

	clock   uint64
	sites   map[uint32]*bzSite
	births  map[Ptr]bzBirth // profiling-phase allocations under observation
	cur     *bzChunk
	chunkAt map[Ptr]*bzChunk // chunk base -> chunk

	// Tunables; defaults follow the shape of the original's policy.
	SampleTarget  int    // profiled allocations per site before classification
	ShortLifetime uint64 // max mean lifetime (allocation ticks) to classify short

	ChunksRecycled int // filled chunks whose objects all died (diagnostic)
}

type bzSite struct {
	samples   int
	totalLife uint64
	short     bool
	decided   bool
}

type bzBirth struct {
	site uint32
	born uint64
}

// bzChunk is one fixed-size birth region.
type bzChunk struct {
	base   Ptr
	off    int
	live   int
	sealed bool // no longer the allocation target
}

const (
	bzChunkBytes = 4 * mem.PageSize
	// Object header word: the owning chunk's base address, or bzInner for
	// objects allocated by the general-purpose allocator.
	bzInner = 1
)

// NewBZ creates a lifetime-prediction allocator on sp.
func NewBZ(sp *mem.Space) *BZ {
	return &BZ{
		sp:            sp,
		inner:         NewLea(sp),
		sites:         map[uint32]*bzSite{},
		births:        map[Ptr]bzBirth{},
		chunkAt:       map[Ptr]*bzChunk{},
		SampleTarget:  32,
		ShortLifetime: 4096,
	}
}

// Name identifies the allocator.
func (z *BZ) Name() string { return "BZ" }

func (z *BZ) site(id uint32) *bzSite {
	s := z.sites[id]
	if s == nil {
		s = &bzSite{}
		z.sites[id] = s
	}
	return s
}

// AllocAt allocates size bytes for allocation site id.
func (z *BZ) AllocAt(id uint32, size int) Ptr {
	if size <= 0 {
		panic("xmalloc: BZ.AllocAt of non-positive size")
	}
	z.clock++
	s := z.site(id)
	if s.decided && s.short && size+mem.WordSize <= bzChunkBytes/4 {
		return z.allocShort(size)
	}
	p := z.allocInner(size)
	if p == 0 {
		return 0
	}
	if !s.decided {
		z.births[p] = bzBirth{site: id, born: z.clock}
	}
	return p
}

func (z *BZ) allocInner(size int) Ptr {
	base := z.inner.Alloc(size + mem.WordSize)
	if base == 0 {
		return 0
	}
	old := z.sp.SetMode(stats.ModeAlloc)
	z.sp.Store(base, bzInner)
	z.sp.SetMode(old)
	return base + mem.WordSize
}

func (z *BZ) allocShort(size int) Ptr {
	defer enterAlloc(z.sp)()
	need := align4(size) + mem.WordSize
	if z.cur == nil || z.cur.off+need > bzChunkBytes {
		if z.cur != nil {
			z.cur.sealed = true
			z.reapIfDead(z.cur)
		}
		z.cur = z.newChunk()
		if z.cur == nil {
			return 0
		}
	}
	c := z.cur
	p := c.base + Ptr(c.off)
	c.off += need
	c.live++
	z.sp.Store(p, c.base)
	return p + mem.WordSize
}

// newChunk carves a birth region out of the general-purpose heap, as the
// original does, so one contiguous heap serves both kinds of allocation.
func (z *BZ) newChunk() *bzChunk {
	base := z.inner.Alloc(bzChunkBytes)
	if base == 0 {
		return nil
	}
	c := &bzChunk{base: base}
	z.chunkAt[base] = c
	return c
}

func (z *BZ) reapIfDead(c *bzChunk) {
	if c.sealed && c.live == 0 {
		delete(z.chunkAt, c.base)
		z.inner.Free(c.base) // the whole region dies at once
		z.ChunksRecycled++
		if z.cur == c {
			z.cur = nil
		}
	}
}

// Free releases p. Inner objects go back to the general allocator; birth-
// region objects decrement their chunk's live count, and a filled chunk
// whose last object dies is recycled whole.
func (z *BZ) Free(p Ptr) {
	hdr := func() Ptr {
		old := z.sp.SetMode(stats.ModeFree)
		defer z.sp.SetMode(old)
		return z.sp.Load(p - mem.WordSize)
	}()
	if b, ok := z.births[p]; ok {
		// A profiled object died: record its lifetime and maybe decide.
		delete(z.births, p)
		s := z.site(b.site)
		if !s.decided {
			s.samples++
			s.totalLife += z.clock - b.born
			if s.samples >= z.SampleTarget {
				s.decided = true
				s.short = s.totalLife/uint64(s.samples) <= z.ShortLifetime
			}
		}
	}
	if hdr == bzInner {
		z.inner.Free(p - mem.WordSize)
		return
	}
	defer enterFree(z.sp)()
	c := z.chunkAt[hdr]
	if c == nil {
		panic("xmalloc: BZ.Free of unknown chunk object")
	}
	c.live--
	if c.live < 0 {
		panic("xmalloc: BZ chunk live-count underflow")
	}
	z.reapIfDead(c)
}

// ShortSites reports how many sites have been classified short-lived.
func (z *BZ) ShortSites() int {
	n := 0
	for _, s := range z.sites {
		if s.decided && s.short {
			n++
		}
	}
	return n
}
