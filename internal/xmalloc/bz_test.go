package xmalloc

import (
	"testing"

	"regions/internal/mem"
	"regions/internal/stats"
)

func newBZ() (*BZ, *mem.Space) {
	sp := mem.NewSpace(&stats.Counters{})
	return NewBZ(sp), sp
}

func TestBZClassifiesShortLivedSite(t *testing.T) {
	z, _ := newBZ()
	const site = 7
	// Allocate-and-free immediately: the shortest possible lifetime.
	for i := 0; i < z.SampleTarget+5; i++ {
		p := z.AllocAt(site, 32)
		z.Free(p)
	}
	if z.ShortSites() != 1 {
		t.Fatalf("short sites = %d, want 1", z.ShortSites())
	}
}

func TestBZClassifiesLongLivedSite(t *testing.T) {
	z, _ := newBZ()
	const site = 9
	var held []Ptr
	// Hold each object across many other allocations before freeing.
	for i := 0; i < z.SampleTarget+1; i++ {
		held = append(held, z.AllocAt(site, 32))
	}
	for range held {
		for j := 0; j < 300; j++ {
			z.clock++ // other program activity
		}
	}
	z.clock += z.ShortLifetime * uint64(z.SampleTarget) // long gap
	for _, p := range held {
		z.Free(p)
	}
	if z.ShortSites() != 0 {
		t.Fatalf("long-lived site classified short")
	}
}

func TestBZRecyclesFullChunks(t *testing.T) {
	z, sp := newBZ()
	const site = 3
	// Train the site short.
	for i := 0; i < z.SampleTarget; i++ {
		z.Free(z.AllocAt(site, 64))
	}
	if z.ShortSites() != 1 {
		t.Fatal("site not classified short")
	}
	// Fill several chunks worth of short-lived objects in FIFO waves.
	grewTo := sp.MappedBytes()
	var wave []Ptr
	for round := 0; round < 40; round++ {
		for i := 0; i < 100; i++ {
			wave = append(wave, z.AllocAt(site, 64))
		}
		for _, p := range wave {
			z.Free(p)
		}
		wave = wave[:0]
		if round == 2 {
			grewTo = sp.MappedBytes()
		}
	}
	if z.ChunksRecycled == 0 {
		t.Fatal("no birth regions were recycled")
	}
	if sp.MappedBytes() > grewTo+bzChunkBytes {
		t.Fatalf("heap kept growing despite recycling: %d -> %d", grewTo, sp.MappedBytes())
	}
}

func TestBZDataIntegrityAcrossKinds(t *testing.T) {
	z, sp := newBZ()
	// Two sites: one trained short, one long; interleave and verify.
	for i := 0; i < z.SampleTarget; i++ {
		z.Free(z.AllocAt(1, 16))
	}
	var short, long []Ptr
	for i := 0; i < 200; i++ {
		s := z.AllocAt(1, 16)
		sp.Store(s, uint32(1000+i))
		short = append(short, s)
		l := z.AllocAt(2, 16)
		sp.Store(l, uint32(2000+i))
		long = append(long, l)
	}
	for i := range short {
		if sp.Load(short[i]) != uint32(1000+i) {
			t.Fatalf("short object %d clobbered", i)
		}
		if sp.Load(long[i]) != uint32(2000+i) {
			t.Fatalf("long object %d clobbered", i)
		}
		z.Free(short[i])
		z.Free(long[i])
	}
}

func TestBZOversizeGoesToInner(t *testing.T) {
	z, _ := newBZ()
	const site = 5
	for i := 0; i < z.SampleTarget; i++ {
		z.Free(z.AllocAt(site, 16))
	}
	// Requests too large for a birth region still succeed via the inner
	// allocator and can be freed normally.
	p := z.AllocAt(site, bzChunkBytes)
	z.Free(p)
}

// TestBZBeatsGeneralAllocatorOnChurn shows the design's point: for a
// phase-structured FIFO churn of short-lived objects, reclaiming whole
// birth regions costs fewer free-path cycles than per-object boundary-tag
// freeing.
func TestBZBeatsGeneralAllocatorOnChurn(t *testing.T) {
	churn := func(free func(Ptr), alloc func(int) Ptr) {
		var wave []Ptr
		for round := 0; round < 50; round++ {
			for i := 0; i < 200; i++ {
				wave = append(wave, alloc(48))
			}
			for _, p := range wave {
				free(p)
			}
			wave = wave[:0]
		}
	}

	cbz := &stats.Counters{}
	spz := mem.NewSpace(cbz)
	z := NewBZ(spz)
	for i := 0; i < z.SampleTarget; i++ {
		z.Free(z.AllocAt(1, 48))
	}
	churn(z.Free, func(n int) Ptr { return z.AllocAt(1, n) })

	clea := &stats.Counters{}
	spl := mem.NewSpace(clea)
	lea := NewLea(spl)
	churn(lea.Free, lea.Alloc)

	bzFree := cbz.Cycles[stats.ModeFree]
	leaFree := clea.Cycles[stats.ModeFree]
	if bzFree >= leaFree {
		t.Fatalf("BZ free-path cycles %d should undercut Lea's %d", bzFree, leaFree)
	}
	t.Logf("free-path cycles: BZ=%d Lea=%d (%.1fx less)", bzFree, leaFree,
		float64(leaFree)/float64(bzFree))
}
