package xmalloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regions/internal/mem"
	"regions/internal/stats"
)

type checker interface {
	CheckHeap() (int, error)
}

func eachAllocator(t *testing.T, f func(t *testing.T, a Allocator, sp *mem.Space)) {
	t.Helper()
	makers := []struct {
		name string
		mk   func(sp *mem.Space) Allocator
	}{
		{"Sun", func(sp *mem.Space) Allocator { return NewSun(sp) }},
		{"BSD", func(sp *mem.Space) Allocator { return NewBSD(sp) }},
		{"Lea", func(sp *mem.Space) Allocator { return NewLea(sp) }},
	}
	for _, m := range makers {
		t.Run(m.name, func(t *testing.T) {
			sp := mem.NewSpace(&stats.Counters{})
			f(t, m.mk(sp), sp)
		})
	}
}

func TestAllocBasic(t *testing.T) {
	eachAllocator(t, func(t *testing.T, a Allocator, sp *mem.Space) {
		p := a.Alloc(40)
		if p == 0 || p%4 != 0 {
			t.Fatalf("bad pointer %#x", p)
		}
		for i := 0; i < 40; i += 4 {
			sp.Store(p+Ptr(i), uint32(i))
		}
		q := a.Alloc(40)
		if q == p {
			t.Fatal("second allocation aliases first")
		}
		for i := 0; i < 40; i += 4 {
			if v := sp.Load(p + Ptr(i)); v != uint32(i) {
				t.Fatalf("data clobbered at +%d: %d", i, v)
			}
		}
		a.Free(p)
		a.Free(q)
	})
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	eachAllocator(t, func(t *testing.T, a Allocator, sp *mem.Space) {
		type blk struct {
			p  Ptr
			sz int
		}
		var live []blk
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 2000; i++ {
			if len(live) > 0 && r.Intn(3) == 0 {
				k := r.Intn(len(live))
				a.Free(live[k].p)
				live = append(live[:k], live[k+1:]...)
				continue
			}
			sz := 1 + r.Intn(300)
			if r.Intn(20) == 0 {
				sz = 1 + r.Intn(8000)
			}
			p := a.Alloc(sz)
			for _, b := range live {
				if p < b.p+Ptr(b.sz) && b.p < p+Ptr(sz) {
					t.Fatalf("overlap: [%#x,+%d) with [%#x,+%d)", p, sz, b.p, b.sz)
				}
			}
			live = append(live, blk{p, sz})
		}
		for _, b := range live {
			a.Free(b.p)
		}
	})
}

func TestWriteEveryByteOfEveryAllocation(t *testing.T) {
	eachAllocator(t, func(t *testing.T, a Allocator, sp *mem.Space) {
		sizes := []int{1, 3, 4, 5, 8, 12, 16, 17, 100, 500, 4000, 9000}
		var ptrs []Ptr
		for _, sz := range sizes {
			p := a.Alloc(sz)
			for i := 0; i < sz; i++ {
				sp.StoreByte(p+Ptr(i), byte(i))
			}
			ptrs = append(ptrs, p)
		}
		for k, sz := range sizes {
			for i := 0; i < sz; i++ {
				if got := sp.LoadByte(ptrs[k] + Ptr(i)); got != byte(i) {
					t.Fatalf("size %d byte %d: got %d", sz, i, got)
				}
			}
			a.Free(ptrs[k])
		}
	})
}

func TestReuseAfterFree(t *testing.T) {
	eachAllocator(t, func(t *testing.T, a Allocator, sp *mem.Space) {
		before := sp.MappedBytes()
		for i := 0; i < 10000; i++ {
			p := a.Alloc(100)
			a.Free(p)
		}
		grown := sp.MappedBytes() - before
		if grown > 64*1024 {
			t.Fatalf("alloc/free loop leaked %d bytes of OS memory", grown)
		}
	})
}

func TestCoalescingBoundsFragmentation(t *testing.T) {
	// Allocate many small blocks, free them all, then a large block must
	// fit without growing the heap much — for the coalescing allocators.
	for _, mk := range []struct {
		name string
		mk   func(sp *mem.Space) Allocator
	}{
		{"Sun", func(sp *mem.Space) Allocator { return NewSun(sp) }},
		{"Lea", func(sp *mem.Space) Allocator { return NewLea(sp) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			sp := mem.NewSpace(&stats.Counters{})
			a := mk.mk(sp)
			var ptrs []Ptr
			for i := 0; i < 1000; i++ {
				ptrs = append(ptrs, a.Alloc(64))
			}
			for _, p := range ptrs {
				a.Free(p)
			}
			grew := sp.MappedBytes()
			big := a.Alloc(50000)
			if sp.MappedBytes() > grew {
				t.Fatalf("%s: coalescing failed; big alloc grew heap %d -> %d",
					a.Name(), grew, sp.MappedBytes())
			}
			a.Free(big)
		})
	}
}

func TestBSDRoundsToPowersOfTwo(t *testing.T) {
	sp := mem.NewSpace(&stats.Counters{})
	b := NewBSD(sp)
	cases := map[int]int{1: 4, 4: 4, 5: 12, 12: 12, 13: 28, 100: 124, 124: 124, 4000: 4092}
	for req, usable := range cases {
		p := b.Alloc(req)
		if got := b.UsableSize(p); got != usable {
			t.Errorf("Alloc(%d): usable %d, want %d", req, got, usable)
		}
		b.Free(p)
	}
}

func TestBSDDoubleFreeDetected(t *testing.T) {
	sp := mem.NewSpace(&stats.Counters{})
	b := NewBSD(sp)
	p := b.Alloc(16)
	b.Free(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double free not detected")
		}
	}()
	b.Free(p)
}

func TestMemoryOverheadOrdering(t *testing.T) {
	// The paper's Figure 8: BSD uses far more memory than Lea for
	// odd-sized allocations; regions and Lea are close.
	usage := func(a Allocator, sp *mem.Space) uint64 {
		r := rand.New(rand.NewSource(3))
		for i := 0; i < 3000; i++ {
			// Sizes just above powers of two, where rounding hurts most.
			a.Alloc(30 + 40*r.Intn(3))
		}
		return sp.MappedBytes()
	}
	spL := mem.NewSpace(&stats.Counters{})
	lea := usage(NewLea(spL), spL)
	spB := mem.NewSpace(&stats.Counters{})
	bsd := usage(NewBSD(spB), spB)
	if float64(bsd) < 1.3*float64(lea) {
		t.Fatalf("BSD (%d) should use much more memory than Lea (%d)", bsd, lea)
	}
}

func TestAllocatorCyclesCharged(t *testing.T) {
	eachAllocator(t, func(t *testing.T, a Allocator, sp *mem.Space) {
		c := sp.Counters()
		p := a.Alloc(64)
		if c.Cycles[stats.ModeAlloc] == 0 {
			t.Fatal("allocation charged no alloc cycles")
		}
		a.Free(p)
		if c.Cycles[stats.ModeFree] == 0 {
			t.Fatal("free charged no free cycles")
		}
		if c.Cycles[stats.ModeApp] != 0 {
			t.Fatalf("allocator work leaked into app cycles: %d", c.Cycles[stats.ModeApp])
		}
	})
}

// TestQuickHeapConsistency drives random traces through the boundary-tag
// allocators and validates the whole heap after every few operations.
func TestQuickHeapConsistency(t *testing.T) {
	for _, mk := range []struct {
		name string
		mk   func(sp *mem.Space) Allocator
	}{
		{"Sun", func(sp *mem.Space) Allocator { return NewSun(sp) }},
		{"Lea", func(sp *mem.Space) Allocator { return NewLea(sp) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			err := quick.Check(func(seed int64, ops []byte) bool {
				sp := mem.NewSpace(&stats.Counters{})
				a := mk.mk(sp)
				ck := a.(checker)
				r := rand.New(rand.NewSource(seed))
				var live []Ptr
				for i, op := range ops {
					if op%3 == 0 && len(live) > 0 {
						k := r.Intn(len(live))
						a.Free(live[k])
						live = append(live[:k], live[k+1:]...)
					} else {
						sz := 1 + int(op)*7 + r.Intn(64)
						live = append(live, a.Alloc(sz))
					}
					if i%5 == 0 {
						if _, err := ck.CheckHeap(); err != nil {
							t.Logf("after op %d: %v", i, err)
							return false
						}
					}
				}
				for _, p := range live {
					a.Free(p)
				}
				_, err := ck.CheckHeap()
				return err == nil
			}, &quick.Config{MaxCount: 25})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFullFreeReturnsHeapToOneChunk(t *testing.T) {
	// After freeing everything, Sun's tree should hold chunks that cover
	// the entire heap (full coalescing within segments).
	sp := mem.NewSpace(&stats.Counters{})
	s := NewSun(sp)
	r := rand.New(rand.NewSource(11))
	var live []Ptr
	for i := 0; i < 500; i++ {
		live = append(live, s.Alloc(8+r.Intn(200)))
	}
	for _, k := range r.Perm(len(live)) {
		s.Free(live[k])
	}
	chunks, err := s.CheckHeap()
	if err != nil {
		t.Fatal(err)
	}
	if chunks != 1 {
		t.Fatalf("heap has %d chunks after freeing all, want 1 fully-coalesced chunk", chunks)
	}
}

func slotAllocator(sp *mem.Space) func() Ptr {
	page := sp.MapPages(1)
	next := page
	return func() Ptr {
		p := next
		next += mem.WordSize
		return p
	}
}

func TestEmuRegions(t *testing.T) {
	sp := mem.NewSpace(&stats.Counters{})
	slots := slotAllocator(sp)
	e := NewEmuRegions(sp, NewLea(sp), slots)
	if e.Name() != "emulation/Lea" {
		t.Fatalf("name %q", e.Name())
	}
	r := e.NewRegion()
	var ptrs []Ptr
	for i := 0; i < 100; i++ {
		p := e.Alloc(r, 24)
		sp.Store(p, uint32(i))
		ptrs = append(ptrs, p)
	}
	for i, p := range ptrs {
		if v := sp.Load(p); v != uint32(i) {
			t.Fatalf("object %d clobbered", i)
		}
	}
	if r.Allocs() != 100 || r.Bytes() != 2400 {
		t.Fatalf("allocs=%d bytes=%d", r.Allocs(), r.Bytes())
	}
	if r.LinkOverheadBytes() != 400 {
		t.Fatalf("overhead=%d", r.LinkOverheadBytes())
	}
	c := sp.Counters()
	if c.FreeCalls != 0 {
		t.Fatalf("premature frees: %d", c.FreeCalls)
	}
	e.Delete(r)
	if !r.Deleted() {
		t.Fatal("not deleted")
	}
	if c.FreeCalls != 100 {
		t.Fatalf("FreeCalls=%d, want 100 (one per object)", c.FreeCalls)
	}
	if c.LiveBytes != 0 {
		t.Fatalf("LiveBytes=%d after delete", c.LiveBytes)
	}
}

func TestEmuRegionMisuse(t *testing.T) {
	sp := mem.NewSpace(&stats.Counters{})
	slots := slotAllocator(sp)
	e := NewEmuRegions(sp, NewBSD(sp), slots)
	r := e.NewRegion()
	e.Alloc(r, 8)
	e.Delete(r)
	t.Run("double delete", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		e.Delete(r)
	})
	t.Run("alloc after delete", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		e.Alloc(r, 8)
	})
}

func TestAllocZeroPanics(t *testing.T) {
	eachAllocator(t, func(t *testing.T, a Allocator, sp *mem.Space) {
		defer func() {
			if recover() == nil {
				t.Fatal("Alloc(0) did not panic")
			}
		}()
		a.Alloc(0)
	})
}
