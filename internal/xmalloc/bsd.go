package xmalloc

import "regions/internal/mem"

// BSD is the 4.2BSD (Kingsley) power-of-two allocator: each request is
// rounded up — including a one-word header holding the bucket index — to
// the next power of two, buckets keep singly-linked free lists, and chunks
// are never split, coalesced, or returned to the OS. Allocation and
// deallocation are a handful of memory operations, but as the paper notes
// the memory overhead is very large.
type BSD struct {
	heap sbrkArea
	meta Ptr // bucket free-list heads, one word per bucket
}

const (
	bsdMinShift = 3  // smallest chunk 8 bytes: 4 header + 4 data
	bsdMaxShift = 30 // largest supported chunk
	bsdBuckets  = bsdMaxShift - bsdMinShift + 1
	bsdMagic    = 0xb5d0 << 16 // header tag to catch bad frees
)

// NewBSD creates a BSD allocator on sp.
func NewBSD(sp *mem.Space) *BSD {
	b := &BSD{heap: sbrkArea{sp: sp}}
	b.meta = b.heap.sbrk(1) // bucket heads live in the first heap page
	if b.meta == 0 {
		panic("xmalloc: simulated OS refused BSD's first heap page")
	}
	return b
}

// Name implements Allocator.
func (b *BSD) Name() string { return "BSD" }

func (b *BSD) bucketFor(size int) (bucket int, chunk int) {
	need := size + mem.WordSize // header
	chunk = 1 << bsdMinShift
	bucket = 0
	for chunk < need {
		chunk <<= 1
		bucket++
	}
	if bucket >= bsdBuckets {
		panic("xmalloc: BSD allocation too large")
	}
	return bucket, chunk
}

func (b *BSD) head(bucket int) Ptr { return b.meta + Ptr(bucket*mem.WordSize) }

// Alloc implements Allocator: pop the bucket's free list, carving a fresh
// page (or pages) into equal chunks when the list is empty.
func (b *BSD) Alloc(size int) Ptr {
	if size <= 0 {
		panic("xmalloc: BSD.Alloc of non-positive size")
	}
	defer enterAlloc(b.heap.sp)()
	sp := b.heap.sp

	bucket, chunk := b.bucketFor(size)
	hd := b.head(bucket)
	c := sp.Load(hd)
	if c == 0 {
		// Carve new memory: one page for small chunks, whole pages for big.
		n := pagesFor(chunk)
		block := b.heap.sbrk(n)
		if block == 0 {
			return 0
		}
		if chunk <= mem.PageSize {
			// Push every chunk in the page; the first is returned below.
			for off := mem.PageSize - chunk; off >= 0; off -= chunk {
				p := block + Ptr(off)
				sp.Store(p+mem.WordSize, sp.Load(hd)) // next
				sp.Store(hd, p)
			}
		} else {
			sp.Store(block+mem.WordSize, sp.Load(hd))
			sp.Store(hd, block)
		}
		c = sp.Load(hd)
	}
	sp.Store(hd, sp.Load(c+mem.WordSize)) // pop
	sp.Store(c, bsdMagic|uint32(bucket))  // header
	return c + mem.WordSize
}

// Free implements Allocator: push the chunk back on its bucket's list.
func (b *BSD) Free(p Ptr) {
	defer enterFree(b.heap.sp)()
	sp := b.heap.sp
	c := p - mem.WordSize
	h := sp.Load(c)
	if h&0xffff0000 != bsdMagic {
		panic("xmalloc: BSD.Free of bad pointer")
	}
	bucket := int(h & 0xffff)
	hd := b.head(bucket)
	sp.Store(c+mem.WordSize, sp.Load(hd))
	sp.Store(hd, c)
	sp.Store(c, 0) // clear header so double frees are caught
}

// UsableSize reports the data bytes available at p (diagnostic).
func (b *BSD) UsableSize(p Ptr) int {
	var h uint32
	b.heap.sp.Uncharged(func() { h = b.heap.sp.Load(p - mem.WordSize) })
	if h&0xffff0000 != bsdMagic {
		panic("xmalloc: UsableSize of bad pointer")
	}
	return 1<<(uint(h&0xffff)+bsdMinShift) - mem.WordSize
}
