package xmalloc

import (
	"fmt"

	"regions/internal/mem"
)

// Lea reimplements Doug Lea's malloc v2.6.4, the "improved version of the
// allocator used in previous surveys" of the paper's Section 5.2: boundary
// tags, binned segregated free lists (exact-size small bins, sorted
// logarithmic large bins), immediate coalescing, chunk splitting, and a
// wilderness ("top") chunk extended by sbrk.
//
// Chunk layout, as in dlmalloc:
//
//	c+0  prev_size  (valid only when the previous chunk is free)
//	c+4  size | PREV_INUSE bit
//	c+8  user data ... (free chunks: fd at c+8, bk at c+12,
//	                    and a footer copy of size at c+size)
//
// The prev_size field of the next chunk is usable by this chunk while it is
// in use, so the effective overhead of a live chunk is four bytes.
type Lea struct {
	heap   sbrkArea
	meta   Ptr // bin head words
	top    Ptr // wilderness chunk
	first  Ptr // first chunk in the heap (for heap walks)
	growBy int // sbrk quantum, bytes
}

const (
	leaPrevInuse = 1
	leaSizeMask  = ^Ptr(7)
	leaMinChunk  = 16
	leaSmallMax  = 504 // largest exact small-bin size
	leaNumBins   = 96  // 2..63 small, 64..95 logarithmic large
)

// NewLea creates a Lea allocator on sp.
func NewLea(sp *mem.Space) *Lea {
	defer enterAlloc(sp)()
	l := &Lea{heap: sbrkArea{sp: sp}, growBy: 16 * 1024}
	page := l.heap.sbrk(1)
	if page == 0 {
		panic("xmalloc: simulated OS refused Lea's first heap page")
	}
	l.meta = page
	// Bins occupy the start of the first page; the wilderness begins right
	// after them, PREV_INUSE set (there is no previous chunk).
	binBytes := Ptr(align8(leaNumBins * mem.WordSize))
	l.top = page + binBytes
	l.first = l.top
	sp.Store(l.top+4, (mem.PageSize-binBytes)|leaPrevInuse)
	return l
}

// Name implements Allocator.
func (l *Lea) Name() string { return "Lea" }

func (l *Lea) size(c Ptr) Ptr        { return l.heap.sp.Load(c+4) & leaSizeMask }
func (l *Lea) sizeBits(c Ptr) Ptr    { return l.heap.sp.Load(c + 4) }
func (l *Lea) setSize(c, szBits Ptr) { l.heap.sp.Store(c+4, szBits) }

func (l *Lea) binHead(i int) Ptr { return l.meta + Ptr(i*mem.WordSize) }

func binIndex(sz Ptr) int {
	if sz <= leaSmallMax {
		return int(sz >> 3)
	}
	idx := 64
	for s := Ptr(512); s*2 <= sz && idx < leaNumBins-1; s <<= 1 {
		idx++
	}
	return idx
}

// insert places free chunk c of size sz into its bin: small bins LIFO,
// large bins sorted ascending by size so the first fit is the best fit.
func (l *Lea) insert(c, sz Ptr) {
	sp := l.heap.sp
	i := binIndex(sz)
	hd := l.binHead(i)
	if sz <= leaSmallMax {
		next := sp.Load(hd)
		sp.Store(c+8, next)
		sp.Store(c+12, 0)
		if next != 0 {
			sp.Store(next+12, c)
		}
		sp.Store(hd, c)
		return
	}
	var prev Ptr
	cur := sp.Load(hd)
	for cur != 0 && l.size(cur) < sz {
		prev = cur
		cur = sp.Load(cur + 8)
	}
	sp.Store(c+8, cur)
	sp.Store(c+12, prev)
	if cur != 0 {
		sp.Store(cur+12, c)
	}
	if prev == 0 {
		sp.Store(hd, c)
	} else {
		sp.Store(prev+8, c)
	}
}

// unlink removes free chunk c of size sz from its bin.
func (l *Lea) unlink(c, sz Ptr) {
	sp := l.heap.sp
	fd := sp.Load(c + 8)
	bk := sp.Load(c + 12)
	if bk == 0 {
		sp.Store(l.binHead(binIndex(sz)), fd)
	} else {
		sp.Store(bk+8, fd)
	}
	if fd != 0 {
		sp.Store(fd+12, bk)
	}
}

func chunkSizeFor(req int) Ptr {
	sz := align8(req + mem.WordSize)
	if sz < leaMinChunk {
		sz = leaMinChunk
	}
	return Ptr(sz)
}

// Alloc implements Allocator.
func (l *Lea) Alloc(size int) Ptr {
	if size <= 0 {
		panic("xmalloc: Lea.Alloc of non-positive size")
	}
	defer enterAlloc(l.heap.sp)()
	sp := l.heap.sp
	sz := chunkSizeFor(size)

	// Exact small bin.
	if sz <= leaSmallMax {
		hd := l.binHead(binIndex(sz))
		if c := sp.Load(hd); c != 0 {
			l.unlink(c, sz)
			l.markInuse(c, sz)
			return c + 8
		}
	}
	// Best fit from this bin upward.
	for i := binIndex(sz); i < leaNumBins; i++ {
		c := sp.Load(l.binHead(i))
		for c != 0 {
			csz := l.size(c)
			if csz >= sz {
				l.unlink(c, csz)
				l.split(c, csz, sz)
				return c + 8
			}
			c = sp.Load(c + 8)
		}
	}
	// Wilderness. An OS refusal aborts before the top chunk is touched.
	topSz := l.size(l.top)
	if topSz < sz+leaMinChunk {
		need := int(sz+leaMinChunk-topSz) + l.growBy
		n := pagesFor(need)
		if l.heap.sbrk(n) == 0 {
			return 0
		}
		topSz += Ptr(n * mem.PageSize)
		l.setSize(l.top, topSz|l.sizeBits(l.top)&leaPrevInuse)
	}
	c := l.top
	prevBit := l.sizeBits(c) & leaPrevInuse
	l.top = c + sz
	l.setSize(l.top, (topSz-sz)|leaPrevInuse)
	l.setSize(c, sz|prevBit)
	return c + 8
}

// split carves sz bytes from free chunk c of size csz, returning the
// remainder (if large enough) to its bin, and marks c in use.
func (l *Lea) split(c, csz, sz Ptr) {
	sp := l.heap.sp
	if csz-sz >= leaMinChunk {
		rem := c + sz
		remSz := csz - sz
		l.setSize(c, sz|l.sizeBits(c)&leaPrevInuse)
		l.setSize(rem, remSz|leaPrevInuse)
		sp.Store(rem+remSz, remSz) // footer
		l.insert(rem, remSz)
		// The chunk after rem keeps PREV_INUSE clear (rem is free).
		return
	}
	l.markInuse(c, csz)
}

// markInuse records that chunk c of size sz is allocated by setting the
// next chunk's PREV_INUSE bit.
func (l *Lea) markInuse(c, sz Ptr) {
	next := c + sz
	l.setSize(next, l.sizeBits(next)|leaPrevInuse)
}

// Free implements Allocator: coalesce with free neighbours via boundary
// tags, merging into the wilderness when adjacent to it.
func (l *Lea) Free(p Ptr) {
	defer enterFree(l.heap.sp)()
	sp := l.heap.sp
	c := p - 8
	bits := l.sizeBits(c)
	sz := bits & leaSizeMask

	// Coalesce backward.
	if bits&leaPrevInuse == 0 {
		prevSz := sp.Load(c)
		prev := c - prevSz
		l.unlink(prev, prevSz)
		c = prev
		sz += prevSz
	}
	next := c + sz
	if next == l.top {
		// Merge into the wilderness.
		topSz := l.size(l.top)
		l.top = c
		l.setSize(c, (sz+topSz)|leaPrevInuse)
		return
	}
	// Coalesce forward: next is free iff next-next's PREV_INUSE is clear.
	nextSz := l.size(next)
	if l.sizeBits(next+nextSz)&leaPrevInuse == 0 {
		l.unlink(next, nextSz)
		sz += nextSz
		if c+sz == l.top {
			topSz := l.size(l.top)
			l.top = c
			l.setSize(c, (sz+topSz)|leaPrevInuse)
			return
		}
	}
	l.setSize(c, sz|leaPrevInuse)
	sp.Store(c+sz, sz) // footer
	after := c + sz
	l.setSize(after, l.sizeBits(after)&^Ptr(leaPrevInuse))
	l.insert(c, sz)
}

// CheckHeap walks the whole heap verifying boundary-tag consistency; it is
// an uncharged test oracle. It returns the number of chunks.
func (l *Lea) CheckHeap() (chunks int, err error) {
	sp := l.heap.sp
	sp.Uncharged(func() {
		prevFree := false
		var prevSz Ptr
		c := l.first
		for c != l.top {
			bits := l.sizeBits(c)
			sz := bits & leaSizeMask
			if sz < leaMinChunk || c+sz > l.heap.end {
				err = fmt.Errorf("chunk %#x has bad size %d", c, sz)
				return
			}
			if prevFree {
				if bits&leaPrevInuse != 0 {
					err = fmt.Errorf("chunk %#x: PREV_INUSE set after free chunk", c)
					return
				}
				if sp.Load(c) != prevSz {
					err = fmt.Errorf("chunk %#x: footer %d != prev size %d", c, sp.Load(c), prevSz)
					return
				}
			} else if bits&leaPrevInuse == 0 {
				err = fmt.Errorf("chunk %#x: PREV_INUSE clear after live chunk", c)
				return
			}
			nextBits := l.sizeBits(c + sz)
			free := c+sz == l.top && false // top's PREV_INUSE reflects last real chunk
			if c+sz == l.top {
				free = l.sizeBits(l.top)&leaPrevInuse == 0
			} else {
				free = nextBits&leaPrevInuse == 0
			}
			if free && prevFree {
				err = fmt.Errorf("adjacent free chunks at %#x", c)
				return
			}
			prevFree, prevSz = free, sz
			chunks++
			c += sz
		}
	})
	return chunks, err
}
