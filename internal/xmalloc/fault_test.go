package xmalloc

import (
	"errors"
	"testing"

	"regions/internal/mem"
	"regions/internal/stats"
)

// TestAllocatorsSurviveInjectedFailure drives each malloc variant under a
// seeded fault plan: every Alloc either succeeds or returns 0 (malloc's
// NULL), the heap stays consistent, and service resumes once the plan is
// cleared.
func TestAllocatorsSurviveInjectedFailure(t *testing.T) {
	eachAllocator(t, func(t *testing.T, a Allocator, sp *mem.Space) {
		sp.SetFaultPlan(&mem.FaultPlan{FailProb: 0.5, Seed: 17})
		var live []Ptr
		nulls := 0
		for i := 0; i < 200; i++ {
			// Sizes up to two pages so the heap must keep growing via sbrk.
			size := 32 + (i%5)*2000
			p := a.Alloc(size)
			if p == 0 {
				nulls++
				if sp.LastMapFailure() == nil {
					t.Fatal("Alloc returned 0 with no recorded map failure")
				}
				continue
			}
			sp.Store(p, uint32(i)) // the memory must be usable
			live = append(live, p)
			if len(live) > 20 {
				a.Free(live[0])
				live = live[1:]
			}
		}
		if nulls == 0 {
			t.Fatal("fault plan injected no failures; test is vacuous")
		}
		if c, ok := a.(checker); ok {
			if _, err := c.CheckHeap(); err != nil {
				t.Fatalf("heap inconsistent after injected failures: %v", err)
			}
		}
		// Recovery: the allocator must serve requests again.
		sp.SetFaultPlan(nil)
		if p := a.Alloc(64); p == 0 {
			t.Fatal("allocation failed after the plan was cleared")
		}
		if c, ok := a.(checker); ok {
			if _, err := c.CheckHeap(); err != nil {
				t.Fatalf("heap inconsistent after recovery: %v", err)
			}
		}
	})
}

func TestTryAllocTypedError(t *testing.T) {
	sp := mem.NewSpace(&stats.Counters{})
	a := NewSun(sp)
	sp.SetFaultPlan(&mem.FaultPlan{FailProb: 1, Seed: 1})
	p, err := TryAlloc(sp, a, 3*mem.PageSize)
	if p != 0 || err == nil {
		t.Fatalf("TryAlloc = (%#x, %v), want (0, error)", p, err)
	}
	var oe *mem.OOMError
	if !errors.As(err, &oe) || !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("error %v is not a typed OOM", err)
	}
	if oe.Op != "Sun: alloc" {
		t.Fatalf("Op = %q", oe.Op)
	}
	sp.SetFaultPlan(nil)
	if p, err := TryAlloc(sp, a, 64); p == 0 || err != nil {
		t.Fatalf("TryAlloc after recovery = (%#x, %v)", p, err)
	}
}

func TestVmallocSurvivesInjectedFailure(t *testing.T) {
	for _, policy := range []VmPolicy{VmLast, VmPool, VmBestFit} {
		t.Run(policy.String(), func(t *testing.T) {
			// Fresh instance per policy: a shared one would satisfy later
			// policies from pages the earlier region's Close recycled.
			sp := mem.NewSpace(&stats.Counters{})
			v := NewVmalloc(sp)
			r := v.Open(policy, 32)
			sp.SetFaultPlan(&mem.FaultPlan{FailProb: 1, Seed: 5})
			pagesBefore := r.Pages()
			if p := v.Alloc(r, 32); p != 0 {
				t.Fatalf("Alloc under total refusal returned %#x", p)
			}
			if r.Pages() != pagesBefore {
				t.Fatal("failed allocation changed the region's page count")
			}
			sp.SetFaultPlan(nil)
			if p := v.Alloc(r, 32); p == 0 {
				t.Fatal("allocation failed after the plan was cleared")
			}
			v.Close(r)
		})
	}
}

func TestEmuRegionsSurvivesInjectedFailure(t *testing.T) {
	sp := mem.NewSpace(&stats.Counters{})
	slots := sp.MapPages(1)
	next := slots
	lib := NewEmuRegions(sp, NewLea(sp), func() Ptr {
		p := next
		next += mem.WordSize
		return p
	})
	r := lib.NewRegion()
	p := lib.Alloc(r, 24)
	if p == 0 {
		t.Fatal("seed allocation failed")
	}
	sp.SetFaultPlan(&mem.FaultPlan{FailProb: 1, Seed: 9})
	allocs := r.Allocs()
	if q := lib.Alloc(r, 3*mem.PageSize); q != 0 {
		t.Fatalf("Alloc under total refusal returned %#x", q)
	}
	if r.Allocs() != allocs {
		t.Fatal("failed allocation was recorded in the region")
	}
	sp.SetFaultPlan(nil)
	if q := lib.Alloc(r, 24); q == 0 {
		t.Fatal("allocation failed after the plan was cleared")
	}
	lib.Delete(r) // the object list must still walk cleanly
}

func TestBZSurvivesInjectedFailure(t *testing.T) {
	sp := mem.NewSpace(&stats.Counters{})
	z := NewBZ(sp)
	z.SampleTarget = 4
	// Train a site to be short-lived so the birth-region path is exercised
	// alongside the inner (Lea) path.
	for i := 0; i < 20; i++ {
		p := z.AllocAt(1, 32)
		if p == 0 {
			t.Fatal("training allocation failed without a fault plan")
		}
		z.Free(p)
	}
	sp.SetFaultPlan(&mem.FaultPlan{FailProb: 0.6, Seed: 13})
	nulls := 0
	var live []Ptr
	for i := 0; i < 150; i++ {
		p := z.AllocAt(uint32(1+i%3), 32+(i%4)*2000)
		if p == 0 {
			nulls++
			continue
		}
		sp.Store(p, uint32(i))
		live = append(live, p)
		if len(live) > 12 {
			z.Free(live[0])
			live = live[1:]
		}
	}
	if nulls == 0 {
		t.Fatal("fault plan injected no failures; test is vacuous")
	}
	sp.SetFaultPlan(nil)
	if p := z.AllocAt(1, 32); p == 0 {
		t.Fatal("allocation failed after the plan was cleared")
	}
}

func TestConstructorsPanicOnFirstPageRefusal(t *testing.T) {
	for _, mk := range []struct {
		name string
		fn   func(sp *mem.Space)
	}{
		{"Sun", func(sp *mem.Space) { NewSun(sp) }},
		{"BSD", func(sp *mem.Space) { NewBSD(sp) }},
		{"Lea", func(sp *mem.Space) { NewLea(sp) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			sp := mem.NewSpace(&stats.Counters{})
			sp.SetFaultPlan(&mem.FaultPlan{FailNth: 1})
			defer func() {
				if recover() == nil {
					t.Fatal("constructor succeeded without its first heap page")
				}
			}()
			mk.fn(sp)
		})
	}
}
