package xmalloc

import (
	"fmt"

	"regions/internal/mem"
)

// Sun reimplements the design of the Solaris 2.5.1 default allocator the
// paper measures: best fit over a binary search tree of free blocks keyed
// by (size, address), boundary tags for immediate coalescing, and chunk
// splitting. Tree links live inside the free chunks themselves (left at
// c+8, right at c+12); the root pointer is the first word of the heap.
//
// Chunk layout matches Lea's boundary-tag scheme. An eight-byte in-use
// sentinel chunk of size zero terminates the heap so forward coalescing
// never reads past the break.
type Sun struct {
	heap   sbrkArea
	root   Ptr // address of the root pointer word
	first  Ptr // first real chunk
	growBy int
}

// NewSun creates a Sun allocator on sp.
func NewSun(sp *mem.Space) *Sun {
	defer enterAlloc(sp)()
	s := &Sun{heap: sbrkArea{sp: sp}, growBy: 16 * 1024}
	page := s.heap.sbrk(1)
	if page == 0 {
		panic("xmalloc: simulated OS refused Sun's first heap page")
	}
	s.root = page
	sp.Store(s.root, 0)
	s.first = page + 8
	free := s.first
	sz := Ptr(mem.PageSize - 8 - 8) // minus root words, minus sentinel
	sp.Store(free+4, sz|leaPrevInuse)
	sp.Store(free+sz, sz)  // footer
	sp.Store(free+sz+4, 0) // sentinel: size 0, PREV_INUSE clear (free before it)
	s.insert(free, sz)
	return s
}

// Name implements Allocator.
func (s *Sun) Name() string { return "Sun" }

func (s *Sun) size(c Ptr) Ptr     { return s.heap.sp.Load(c+4) & leaSizeMask }
func (s *Sun) sizeBits(c Ptr) Ptr { return s.heap.sp.Load(c + 4) }

// less orders free chunks by (size, address).
func (s *Sun) less(aSz Ptr, a Ptr, bSz Ptr, b Ptr) bool {
	return aSz < bSz || (aSz == bSz && a < b)
}

// insert adds free chunk c of size sz to the tree.
func (s *Sun) insert(c, sz Ptr) {
	sp := s.heap.sp
	sp.Store(c+8, 0)
	sp.Store(c+12, 0)
	link := s.root
	cur := sp.Load(link)
	for cur != 0 {
		if s.less(sz, c, s.size(cur), cur) {
			link = cur + 8
		} else {
			link = cur + 12
		}
		cur = sp.Load(link)
	}
	sp.Store(link, c)
}

// remove deletes free chunk c of size sz from the tree.
func (s *Sun) remove(c, sz Ptr) {
	sp := s.heap.sp
	link := s.root
	cur := sp.Load(link)
	for cur != c {
		if cur == 0 {
			panic(fmt.Sprintf("xmalloc: Sun free tree missing chunk %#x", c))
		}
		if s.less(sz, c, s.size(cur), cur) {
			link = cur + 8
		} else {
			link = cur + 12
		}
		cur = sp.Load(link)
	}
	left, right := sp.Load(c+8), sp.Load(c+12)
	switch {
	case left == 0:
		sp.Store(link, right)
	case right == 0:
		sp.Store(link, left)
	default:
		// Replace c with the smallest chunk of its right subtree. If that
		// successor is c's own right child, removing it rewrites c+12, and
		// the reloads below pick the updated value up automatically.
		succLink := c + 12
		succ := sp.Load(succLink)
		for l := sp.Load(succ + 8); l != 0; l = sp.Load(succ + 8) {
			succLink = succ + 8
			succ = l
		}
		sp.Store(succLink, sp.Load(succ+12))
		sp.Store(succ+8, sp.Load(c+8))
		sp.Store(succ+12, sp.Load(c+12))
		sp.Store(link, succ)
	}
}

// findBest returns the smallest free chunk of size >= sz, or 0.
func (s *Sun) findBest(sz Ptr) Ptr {
	sp := s.heap.sp
	var best Ptr
	cur := sp.Load(s.root)
	for cur != 0 {
		if s.size(cur) >= sz {
			best = cur
			cur = sp.Load(cur + 8)
		} else {
			cur = sp.Load(cur + 12)
		}
	}
	return best
}

// grow extends the heap, converting the old sentinel plus the new pages
// into one free chunk (coalescing backward if the last chunk was free). It
// reports false — without touching any heap metadata — when the simulated
// OS refuses the pages.
func (s *Sun) grow(need Ptr) bool {
	sp := s.heap.sp
	n := pagesFor(int(need) + 8 + s.growBy)
	oldSentinel := s.heap.end - 8
	prevBits := s.sizeBits(oldSentinel)
	if s.heap.sbrk(n) == 0 {
		return false
	}

	c := oldSentinel
	sz := Ptr(n*mem.PageSize + 8 - 8) // reclaim old sentinel, place new one
	if prevBits&leaPrevInuse == 0 {
		prevSz := sp.Load(c)
		prev := c - prevSz
		s.remove(prev, prevSz)
		c = prev
		sz += prevSz
	}
	sp.Store(c+4, sz|leaPrevInuse)
	sp.Store(c+sz, sz)
	sp.Store(c+sz+4, 0) // new sentinel, PREV_INUSE clear
	s.insert(c, sz)
	return true
}

// Alloc implements Allocator.
func (s *Sun) Alloc(size int) Ptr {
	if size <= 0 {
		panic("xmalloc: Sun.Alloc of non-positive size")
	}
	defer enterAlloc(s.heap.sp)()
	sp := s.heap.sp
	sz := chunkSizeFor(size)

	c := s.findBest(sz)
	if c == 0 {
		if !s.grow(sz) {
			return 0
		}
		c = s.findBest(sz)
	}
	csz := s.size(c)
	s.remove(c, csz)
	if csz-sz >= leaMinChunk {
		rem := c + sz
		remSz := csz - sz
		sp.Store(c+4, sz|s.sizeBits(c)&leaPrevInuse)
		sp.Store(rem+4, remSz|leaPrevInuse)
		sp.Store(rem+remSz, remSz)
		s.insert(rem, remSz)
	} else {
		next := c + csz
		sp.Store(next+4, s.sizeBits(next)|leaPrevInuse)
	}
	return c + 8
}

// Free implements Allocator.
func (s *Sun) Free(p Ptr) {
	defer enterFree(s.heap.sp)()
	sp := s.heap.sp
	c := p - 8
	bits := s.sizeBits(c)
	sz := bits & leaSizeMask

	if bits&leaPrevInuse == 0 {
		prevSz := sp.Load(c)
		prev := c - prevSz
		s.remove(prev, prevSz)
		c = prev
		sz += prevSz
	}
	next := c + sz
	nextSz := s.size(next)
	if nextSz != 0 && s.sizeBits(next+nextSz)&leaPrevInuse == 0 {
		s.remove(next, nextSz)
		sz += nextSz
	}
	sp.Store(c+4, sz|leaPrevInuse)
	sp.Store(c+sz, sz)
	after := c + sz
	sp.Store(after+4, s.sizeBits(after)&^Ptr(leaPrevInuse))
	s.insert(c, sz)
}

// CheckHeap verifies boundary tags across the whole heap (test oracle).
func (s *Sun) CheckHeap() (chunks int, err error) {
	sp := s.heap.sp
	sp.Uncharged(func() {
		prevFree := false
		var prevSz Ptr
		c := s.first
		for {
			bits := s.sizeBits(c)
			sz := bits & leaSizeMask
			if sz == 0 {
				if c != s.heap.end-8 {
					err = fmt.Errorf("sentinel at %#x, want %#x", c, s.heap.end-8)
				}
				return
			}
			if sz < leaMinChunk || c+sz > s.heap.end-8 {
				err = fmt.Errorf("chunk %#x has bad size %d", c, sz)
				return
			}
			if prevFree {
				if bits&leaPrevInuse != 0 {
					err = fmt.Errorf("chunk %#x: PREV_INUSE set after free chunk", c)
					return
				}
				if sp.Load(c) != prevSz {
					err = fmt.Errorf("chunk %#x: footer mismatch", c)
					return
				}
			} else if bits&leaPrevInuse == 0 {
				err = fmt.Errorf("chunk %#x: PREV_INUSE clear after live chunk", c)
				return
			}
			free := s.sizeBits(c+sz)&leaPrevInuse == 0
			if free && prevFree {
				err = fmt.Errorf("adjacent free chunks at %#x", c)
				return
			}
			prevFree, prevSz = free, sz
			chunks++
			c += sz
		}
	})
	return chunks, err
}
