package xmalloc

import (
	"regions/internal/mem"
	"regions/internal/stats"
)

// EmuRegions is the paper's "emulation" region library (Section 5.2): a
// region interface implemented with malloc and free, used to approximate
// the performance a region-based application would have if it were written
// with malloc/free. Each object carries one extra link word so the region's
// objects form a list that deleteregion can walk and free — the "small
// space overhead" the paper's Figure 8 and Table 3 show with and without.
//
// Each region's list head lives in a heap word supplied by the caller
// (typically a slot in the program's global segment), mirroring the C
// original whose region descriptors sit in collector-visible memory; this
// keeps emulated regions alive under the conservative collector, whose
// roots include the global segment.
type EmuRegions struct {
	a         Allocator
	sp        *mem.Space
	headSlots func() Ptr // allocates a root slot for a region's list head
	freeSlots []Ptr      // slots of deleted regions, for reuse
}

// EmuRegion is one emulated region.
type EmuRegion struct {
	lib     *EmuRegions
	head    Ptr // address of the heap word holding the object list head
	bytes   uint64
	allocs  uint64
	deleted bool
}

// NewEmuRegions creates an emulation library over allocator a. headSlots
// must return fresh heap words in root-visible storage (e.g. the global
// segment); they are reused across deleted regions.
func NewEmuRegions(sp *mem.Space, a Allocator, headSlots func() Ptr) *EmuRegions {
	return &EmuRegions{a: a, sp: sp, headSlots: headSlots}
}

// Name identifies the library including its underlying allocator.
func (e *EmuRegions) Name() string { return "emulation/" + e.a.Name() }

// NewRegion creates a region.
func (e *EmuRegions) NewRegion() *EmuRegion {
	var slot Ptr
	if n := len(e.freeSlots); n > 0 {
		slot = e.freeSlots[n-1]
		e.freeSlots = e.freeSlots[:n-1]
	} else {
		slot = e.headSlots()
	}
	e.sp.Store(slot, 0)
	e.sp.Counters().RegionCreated()
	return &EmuRegion{lib: e, head: slot}
}

// Alloc allocates size bytes in region r, returning 0 (like the underlying
// malloc) when the simulated OS refuses memory; the region is unchanged.
func (e *EmuRegions) Alloc(r *EmuRegion, size int) Ptr {
	if r.deleted {
		panic("xmalloc: allocation in deleted emulated region")
	}
	base := e.a.Alloc(size + mem.WordSize)
	if base == 0 {
		return 0
	}
	old := e.sp.SetMode(stats.ModeAlloc)
	e.sp.Store(base, e.sp.Load(r.head))
	e.sp.Store(r.head, base)
	e.sp.SetMode(old)
	r.bytes += uint64(align4(size))
	r.allocs++
	e.sp.Counters().AddAlloc(int64(align4(size)))
	return base + mem.WordSize
}

// Delete frees every object in r, walking the link list.
func (e *EmuRegions) Delete(r *EmuRegion) {
	if r.deleted {
		panic("xmalloc: double delete of emulated region")
	}
	old := e.sp.SetMode(stats.ModeFree)
	p := e.sp.Load(r.head)
	e.sp.Store(r.head, 0)
	e.sp.SetMode(old)
	for p != 0 {
		old := e.sp.SetMode(stats.ModeFree)
		next := e.sp.Load(p)
		e.sp.SetMode(old)
		e.a.Free(p)
		e.sp.Counters().FreeCalls++
		p = next
	}
	r.deleted = true
	e.freeSlots = append(e.freeSlots, r.head)
	e.sp.Counters().RegionDeleted(r.bytes)
}

// Bytes returns the program-requested bytes allocated in r.
func (r *EmuRegion) Bytes() uint64 { return r.bytes }

// Allocs returns the allocation count of r.
func (r *EmuRegion) Allocs() uint64 { return r.allocs }

// Deleted reports whether r was deleted.
func (r *EmuRegion) Deleted() bool { return r.deleted }

// LinkOverheadBytes returns the space consumed by the emulation's link
// words in r so far, for the paper's "(w/o overhead)" rows.
func (r *EmuRegion) LinkOverheadBytes() uint64 { return r.allocs * mem.WordSize }
