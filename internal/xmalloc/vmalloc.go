package xmalloc

import (
	"fmt"

	"regions/internal/mem"
)

// Vmalloc reimplements the design of Vo's Vmalloc package, which the
// paper's related-work section singles out among earlier region systems:
//
//	"Vo's Vmalloc package is similar: allocations are done in regions with
//	specific allocation policies. Some regions allow object-by-object
//	deallocation, some regions can only be freed all at once."
//
// A VmRegion is opened with a policy: VmLast (bump allocation, freed only
// all at once — the pure region discipline), VmPool (fixed-size elements
// with O(1) object free), or VmBestFit (variable sizes, object free with
// address-ordered first-fit reuse and coalescing of adjacent free blocks).
// Closing a region returns all its pages to the shared page pool.
type Vmalloc struct {
	sp        *mem.Space
	freePages []Ptr
}

// VmPolicy selects a region's allocation discipline.
type VmPolicy int

// The three policies of Vo's design that matter for the paper's
// comparison: pure-region, pool, and general-purpose.
const (
	VmLast VmPolicy = iota
	VmPool
	VmBestFit
)

func (p VmPolicy) String() string {
	switch p {
	case VmLast:
		return "last"
	case VmPool:
		return "pool"
	case VmBestFit:
		return "bestfit"
	}
	return "invalid"
}

// VmRegion is one policy region.
type VmRegion struct {
	v      *Vmalloc
	policy VmPolicy
	pages  []Ptr // all pages owned by the region
	closed bool

	// bump state (VmLast, and fresh-space carving for the others)
	cur   Ptr
	avail int

	elemSize int // VmPool element size (word-aligned)
	pool     Ptr // VmPool free-list head

	free Ptr // VmBestFit address-ordered free list: [size][next]
}

// NewVmalloc creates a Vmalloc instance on sp.
func NewVmalloc(sp *mem.Space) *Vmalloc { return &Vmalloc{sp: sp} }

// Open creates a region with the given policy. elemSize is required for
// VmPool and ignored otherwise.
func (v *Vmalloc) Open(policy VmPolicy, elemSize int) *VmRegion {
	defer enterAlloc(v.sp)()
	if policy == VmPool && elemSize <= 0 {
		panic("xmalloc: VmPool region needs a positive element size")
	}
	es := align4(elemSize)
	if es < 8 {
		es = 8 // room for the free-list link
	}
	return &VmRegion{v: v, policy: policy, elemSize: es}
}

func (v *Vmalloc) page() Ptr {
	if n := len(v.freePages); n > 0 {
		p := v.freePages[n-1]
		v.freePages = v.freePages[:n-1]
		return p
	}
	return v.sp.MapPages(1)
}

// carve returns size fresh bytes from the region's bump space, or 0 — with
// the region unchanged — when the page pool is empty and the simulated OS
// refuses a page.
func (r *VmRegion) carve(size int) Ptr {
	if size > mem.PageSize {
		panic("xmalloc: vmalloc allocation larger than a page")
	}
	if r.avail < size {
		p := r.v.page()
		if p == 0 {
			return 0
		}
		r.pages = append(r.pages, p)
		r.cur = p
		r.avail = mem.PageSize
	}
	p := r.cur
	r.cur += Ptr(size)
	r.avail -= size
	return p
}

// Alloc allocates size bytes in region r under its policy, returning 0 when
// the simulated OS refuses the backing page (the region is unchanged).
func (v *Vmalloc) Alloc(r *VmRegion, size int) Ptr {
	if r.closed {
		panic("xmalloc: allocation in closed vmalloc region")
	}
	if size <= 0 {
		panic("xmalloc: vmalloc Alloc of non-positive size")
	}
	defer enterAlloc(v.sp)()
	switch r.policy {
	case VmLast:
		return r.carve(align4(size))
	case VmPool:
		if size > r.elemSize {
			panic(fmt.Sprintf("xmalloc: pool element %d exceeds size %d", size, r.elemSize))
		}
		if r.pool != 0 {
			p := r.pool
			r.pool = v.sp.Load(p)
			return p
		}
		return r.carve(r.elemSize)
	default: // VmBestFit: blocks carry a one-word size header.
		need := align4(size) + mem.WordSize
		if need < 12 {
			need = 12 // room for [size][next] when free
		}
		// First fit over the address-ordered free list, with splitting.
		var prev Ptr
		for b := r.free; b != 0; b = v.sp.Load(b + 4) {
			bsz := int(v.sp.Load(b))
			if bsz >= need {
				next := v.sp.Load(b + 4)
				if bsz-need >= 12 {
					rem := b + Ptr(need)
					v.sp.Store(rem, uint32(bsz-need))
					v.sp.Store(rem+4, next)
					next = rem
					v.sp.Store(b, uint32(need))
				}
				if prev == 0 {
					r.free = next
				} else {
					v.sp.Store(prev+4, next)
				}
				return b + mem.WordSize
			}
			prev = b
		}
		b := r.carve(need)
		if b == 0 {
			return 0
		}
		v.sp.Store(b, uint32(need))
		return b + mem.WordSize
	}
}

// Free releases one object. It is only legal in VmPool and VmBestFit
// regions; VmLast regions are freed all at once by Close, and calling Free
// on one panics — the policy distinction Vo's interface draws.
func (v *Vmalloc) Free(r *VmRegion, p Ptr) {
	if r.closed {
		panic("xmalloc: free in closed vmalloc region")
	}
	defer enterFree(v.sp)()
	switch r.policy {
	case VmLast:
		panic("xmalloc: object free in a last (region-only) vmalloc region")
	case VmPool:
		v.sp.Store(p, r.pool)
		r.pool = p
	default:
		b := p - mem.WordSize
		// Insert address-ordered and coalesce with contiguous neighbours.
		var prev Ptr
		cur := r.free
		for cur != 0 && cur < b {
			prev = cur
			cur = v.sp.Load(cur + 4)
		}
		v.sp.Store(b+4, cur)
		if prev == 0 {
			r.free = b
		} else {
			v.sp.Store(prev+4, b)
		}
		// Merge forward.
		if cur != 0 && b+Ptr(v.sp.Load(b)) == cur {
			v.sp.Store(b, v.sp.Load(b)+v.sp.Load(cur))
			v.sp.Store(b+4, v.sp.Load(cur+4))
		}
		// Merge backward.
		if prev != 0 && prev+Ptr(v.sp.Load(prev)) == b {
			v.sp.Store(prev, v.sp.Load(prev)+v.sp.Load(b))
			v.sp.Store(prev+4, v.sp.Load(b+4))
		}
	}
}

// Close frees the whole region at once, returning its pages to the pool.
func (v *Vmalloc) Close(r *VmRegion) {
	if r.closed {
		panic("xmalloc: double close of vmalloc region")
	}
	defer enterFree(v.sp)()
	v.freePages = append(v.freePages, r.pages...)
	r.pages = nil
	r.closed = true
	r.free, r.pool, r.cur, r.avail = 0, 0, 0, 0
}

// Policy returns the region's policy.
func (r *VmRegion) Policy() VmPolicy { return r.policy }

// Pages returns the number of pages the region currently owns.
func (r *VmRegion) Pages() int { return len(r.pages) }
