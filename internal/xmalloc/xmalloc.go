// Package xmalloc provides the three explicit allocators the paper compares
// regions against (Section 5.2), reimplemented with all metadata in the
// simulated heap so that time (traced accesses), space (mapped bytes), and
// locality (cache behaviour) arise organically:
//
//   - Sun: the Solaris 2.5.1 default allocator — best-fit over a binary
//     tree of free blocks keyed by (size, address), with boundary-tag
//     coalescing.
//   - BSD: the 4.2BSD/Kingsley allocator — allocations rounded up to the
//     next power of two, per-size free lists, no coalescing or splitting.
//     Fast allocation and deallocation, very large memory overhead.
//   - Lea: Doug Lea's malloc v2.6.4 — boundary tags, binned segregated
//     free lists, coalescing, splitting, and a wilderness (top) chunk.
//
// The package also provides the paper's "emulation" region library: regions
// implemented as linked lists of individually malloc'd objects, used to
// estimate how the region-structured programs (mudlle, lcc) would behave if
// written with malloc/free.
package xmalloc

import (
	"fmt"

	"regions/internal/mem"
	"regions/internal/stats"
)

// Ptr is a simulated heap address.
type Ptr = mem.Addr

// Allocator is the malloc/free interface shared by the three allocators.
// Alloc returns a 4-aligned pointer to size usable bytes, or 0 — real
// malloc's NULL — when the simulated OS refuses the pages behind it (page
// limit or an injected mem.FaultPlan); TryAlloc wraps the 0 in a typed
// error. Free releases a pointer previously returned by Alloc. Both panic
// on API misuse (zero or negative sizes, freeing a bad pointer).
type Allocator interface {
	Name() string
	Alloc(size int) Ptr
	Free(p Ptr)
}

// TryAlloc allocates via a, converting a 0 return into a typed *mem.OOMError
// (wrapping mem.ErrOutOfMemory) built from sp's most recent refused mapping.
func TryAlloc(sp *mem.Space, a Allocator, size int) (Ptr, error) {
	p := a.Alloc(size)
	if p == 0 {
		return 0, sp.OOM(a.Name() + ": alloc")
	}
	return p, nil
}

// sbrkArea manages a contiguous heap segment grown page-by-page from the
// simulated OS, the analogue of the classic Unix sbrk. The allocators in
// this package require contiguity; map any global segments before creating
// the allocator.
type sbrkArea struct {
	sp         *mem.Space
	start, end Ptr
}

func (h *sbrkArea) space() *mem.Space { return h.sp }

// sbrk extends the heap by n pages and returns the old break, or 0 when the
// simulated OS refuses the pages (the area is then unchanged, like sbrk
// returning -1).
func (h *sbrkArea) sbrk(npages int) Ptr {
	p := h.sp.MapPages(npages)
	if p == 0 {
		return 0
	}
	if h.end == 0 {
		h.start = p
	} else if p != h.end {
		panic(fmt.Sprintf("xmalloc: non-contiguous sbrk: have end %#x, got %#x "+
			"(map global segments before creating the allocator)", h.end, p))
	}
	h.end = p + Ptr(npages*mem.PageSize)
	return p
}

func align4(n int) int { return (n + 3) &^ 3 }
func align8(n int) int { return (n + 7) &^ 7 }

func pagesFor(bytes int) int { return (bytes + mem.PageSize - 1) / mem.PageSize }

// enterAlloc switches accounting to ModeAlloc and returns a restore func.
func enterAlloc(sp *mem.Space) func() {
	old := sp.SetMode(stats.ModeAlloc)
	sp.Counters().Cycles[stats.ModeAlloc] += 3 // call overhead
	return func() { sp.SetMode(old) }
}

// enterFree switches accounting to ModeFree and returns a restore func.
func enterFree(sp *mem.Space) func() {
	old := sp.SetMode(stats.ModeFree)
	sp.Counters().Cycles[stats.ModeFree] += 3
	return func() { sp.SetMode(old) }
}
