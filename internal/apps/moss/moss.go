// Package moss reimplements the paper's "moss" benchmark: a software
// plagiarism detection system (document fingerprinting by winnowing). The
// original program used malloc/free; the paper's region study made moss its
// locality showcase:
//
//	"The memory allocation pattern of moss is to alternately allocate a
//	small, frequently accessed object and a large, infrequently accessed
//	object. This pattern reduces memory locality among the small objects.
//	The 24% improvement in execution time in moss is obtained by using two
//	regions: one for the small objects and one for the large objects."
//
// The program fingerprints every submission with k-gram hashing and
// winnowing, builds a global fingerprint index of small posting nodes (each
// paired with a large, rarely-read context snippet), and then scores every
// pair of documents by shared fingerprints — a phase that walks the small
// postings intensively. RunRegion segregates small and large objects into
// two regions; RunSlowRegion is the paper's original one-region version.
package moss

import (
	_ "embed"
	"fmt"

	"regions/internal/apps/appkit"
)

//go:embed malloc.go
var mallocSource string

//go:embed region.go
var regionSource string

// Fingerprinting parameters (Schleimer, Wilkerson, Aiken's winnowing).
const (
	kGram       = 16  // characters per k-gram
	window      = 8   // winnowing window (hashes)
	idxBuckets  = 512 // fingerprint index hash buckets
	snippetLen  = 240 // bytes of context kept per fingerprint (the large object)
	matchThresh = 10  // shared fingerprints to report a pair
)

// App returns the moss benchmark descriptor.
func App() appkit.App {
	return appkit.App{
		Name:         "moss",
		DefaultScale: 48, // synthetic student submissions
		Malloc:       RunMalloc,
		Region:       RunRegion,
		SlowRegion:   RunSlowRegion,
		MallocSource: mallocSource,
		RegionSource: regionSource,
	}
}

// Inputs generates scale synthetic student submissions. Some pairs share
// plagiarized blocks, so the detector has real matches to find.
func Inputs(scale int) [][]byte {
	idioms := make([]string, 40)
	g := lcg{s: 0x5eed}
	for i := range idioms {
		idioms[i] = fmt.Sprintf("for (i = 0; i < n%d; i++) { total_%d += buf[i] * %d; }\n",
			g.pick(10), g.pick(10), 3+g.pick(97))
	}
	docs := make([][]byte, scale)
	for d := range docs {
		dg := lcg{s: uint32(0xd0c + d*2654435761)}
		var out []byte
		out = append(out, fmt.Sprintf("/* submission %d */\n", d)...)
		for line := 0; line < 60; line++ {
			switch {
			case dg.pick(10) < 4:
				out = append(out, idioms[dg.pick(len(idioms))]...)
			default:
				out = append(out, fmt.Sprintf("int v_%d_%d = f_%d(x_%d + %d);\n",
					d, line, dg.pick(30), dg.pick(30), dg.pick(1000))...)
			}
		}
		docs[d] = out
	}
	// Plagiarized pairs: document d copies a big block from d - scale/3.
	for d := scale / 3; d < scale && scale >= 6; d += scale / 3 {
		src := docs[d-scale/3]
		block := src[len(src)/4 : len(src)/4+len(src)/2]
		docs[d] = append(docs[d], block...)
	}
	return docs
}

type lcg struct{ s uint32 }

func (g *lcg) next() uint32 {
	g.s = g.s*1664525 + 1013904223
	return g.s >> 8
}

func (g *lcg) pick(n int) int { return int(g.next()) % n }

// fingerprint is one winnowed (hash, position) pair of a document.
type fingerprint struct {
	hash uint32
	pos  int
}

// normalizeByte lowercases letters and maps everything non-alphanumeric to
// zero (skipped), so renaming whitespace or layout cannot hide copying.
func normalizeByte(b byte) byte {
	switch {
	case b >= 'a' && b <= 'z' || b >= '0' && b <= '9':
		return b
	case b >= 'A' && b <= 'Z':
		return b - 'A' + 'a'
	}
	return 0
}

// winnow selects fingerprints from the rolling k-gram hashes: in each
// window of w consecutive hashes, record the rightmost minimal hash (once).
func winnow(hashes []uint32) []fingerprint {
	var fps []fingerprint
	lastPos := -1
	for i := 0; i+window <= len(hashes); i++ {
		minIdx := i
		for j := i + 1; j < i+window; j++ {
			if hashes[j] <= hashes[minIdx] {
				minIdx = j
			}
		}
		if minIdx != lastPos {
			fps = append(fps, fingerprint{hashes[minIdx], minIdx})
			lastPos = minIdx
		}
	}
	return fps
}

// pairKey packs a document pair into one comparable value.
func pairKey(a, b int) uint32 { return uint32(a)<<16 | uint32(b) }

// checksum folds pair scores and totals into one comparable value.
func checksum(postings int, matches []uint32) uint32 {
	h := uint32(2166136261)
	mix := func(v uint32) {
		for k := 0; k < 4; k++ {
			h = (h ^ (v & 0xff)) * 16777619
			v >>= 8
		}
	}
	mix(uint32(postings))
	mix(uint32(len(matches)))
	for _, m := range matches {
		mix(m)
	}
	return h
}
