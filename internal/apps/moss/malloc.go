package moss

import (
	"regions/internal/apps/appkit"
	"regions/internal/mem"
)

// RunMalloc is the malloc/free variant of moss, the structure of the
// original program: text buffers are freed once fingerprinted, and the
// fingerprint index — postings and their snippets — is walked and freed at
// the end.
func RunMalloc(e appkit.MallocEnv, scale int) uint32 {
	sp := e.Space()
	docs := Inputs(scale)

	f := e.PushFrame(4)
	defer e.PopFrame()
	const (
		sBuckets = iota
		sMatrix
		sText
		sPost
	)

	buckets := e.Alloc(idxBuckets * 4)
	f.Set(sBuckets, buckets)
	for i := 0; i < idxBuckets; i++ {
		sp.Store(buckets+appkit.Ptr(i*4), 0)
	}
	matrix := e.Alloc(scale * scale * 4)
	f.Set(sMatrix, matrix)
	for i := 0; i < scale*scale; i++ {
		sp.Store(matrix+appkit.Ptr(i*4), 0)
	}

	postings := 0
	for d, doc := range docs {
		// Load the submission into a large heap buffer.
		text := e.Alloc(textObjSize(len(doc)))
		f.Set(sText, text)
		sp.Store(text+txtLen, uint32(len(doc)))
		appkit.StoreBytes(sp, text+txtBytes, doc)

		for _, fp := range fingerprintDoc(sp, text) {
			post := e.Alloc(postingSize)
			b := buckets + appkit.Ptr(fp.hash%idxBuckets*4)
			sp.Store(post+pNext, sp.Load(b))
			sp.Store(post+pHash, fp.hash)
			sp.Store(post+pDocPos, pairKey(d, fp.pos))
			sp.Store(post+pSnippet, 0)
			sp.Store(b, post)
			f.Set(sPost, post)

			snip := e.Alloc(snippetObjSize())
			writeSnippet(sp, snip, doc, fp.pos)
			sp.Store(post+pSnippet, snip)
			f.Set(sPost, 0)
			postings++
			e.Safepoint()
		}
		f.Set(sText, 0)
		e.Free(text) // the original frees each submission after indexing
	}

	scorePairs(sp, buckets, matrix, scale)
	matches := collectMatches(sp, matrix, scale)
	cov := e.Alloc(scale * 4)
	f.Set(sText, cov)
	coveragePass(sp, buckets, cov, scale)
	for d := 0; d < scale; d++ {
		matches = append(matches, sp.Load(cov+appkit.Ptr(d*4)))
	}
	f.Set(sText, 0)
	e.Free(cov)
	sum := checksum(postings, matches)

	// Tear down the index object by object.
	for i := 0; i < idxBuckets; i++ {
		for post := sp.Load(buckets + appkit.Ptr(i*4)); post != 0; {
			next := sp.Load(post + pNext)
			if snip := sp.Load(post + pSnippet); snip != 0 {
				e.Free(snip)
			}
			e.Free(post)
			post = next
		}
	}
	e.Free(buckets)
	e.Free(matrix)
	e.Finalize()
	return sum
}

// fingerprintDoc reads the document out of the heap, normalizes it, and
// returns its winnowed fingerprints.
func fingerprintDoc(sp *mem.Space, text appkit.Ptr) []fingerprint {
	n := int(sp.Load(text + txtLen))
	raw := appkit.LoadBytes(sp, text+txtBytes, n)
	var norm []byte
	for _, b := range raw {
		if c := normalizeByte(b); c != 0 {
			norm = append(norm, c)
		}
	}
	if len(norm) < kGram {
		return nil
	}
	// Rolling polynomial hash over k-gram windows.
	const base = 1000003
	var pow uint32 = 1
	for i := 0; i < kGram-1; i++ {
		pow *= base
	}
	var h uint32
	for i := 0; i < kGram; i++ {
		h = h*base + uint32(norm[i])
	}
	hashes := []uint32{h}
	for i := kGram; i < len(norm); i++ {
		h = (h - uint32(norm[i-kGram])*pow) * base
		h += uint32(norm[i])
		hashes = append(hashes, h)
	}
	return winnow(hashes)
}

// writeSnippet stores up to snippetLen bytes of context at pos.
func writeSnippet(sp *mem.Space, snip appkit.Ptr, doc []byte, pos int) {
	end := pos + snippetLen
	if end > len(doc) {
		end = len(doc)
	}
	if pos > len(doc) {
		pos = len(doc)
	}
	chunk := doc[pos:end]
	sp.Store(snip+snipLen, uint32(len(chunk)))
	appkit.StoreBytes(sp, snip+snipBytes, chunk)
}

// scorePairs walks every index bucket and counts, for each pair of
// documents, the fingerprints they share — the posting-intensive phase.
func scorePairs(sp *mem.Space, buckets, matrix appkit.Ptr, scale int) {
	for i := 0; i < idxBuckets; i++ {
		for a := sp.Load(buckets + appkit.Ptr(i*4)); a != 0; a = sp.Load(a + pNext) {
			ah := sp.Load(a + pHash)
			ad := int(sp.Load(a+pDocPos) >> 16)
			for b := sp.Load(a + pNext); b != 0; b = sp.Load(b + pNext) {
				if sp.Load(b+pHash) != ah {
					continue
				}
				bd := int(sp.Load(b+pDocPos) >> 16)
				if ad == bd {
					continue
				}
				lo, hi := ad, bd
				if lo > hi {
					lo, hi = hi, lo
				}
				cell := matrix + appkit.Ptr((lo*scale+hi)*4)
				sp.Store(cell, sp.Load(cell)+1)
			}
		}
	}
}

// coveragePass computes, for every document, how many of its fingerprints
// are shared with some other document — moss's per-file match percentage.
// Like scorePairs it is dominated by walks over the small posting nodes,
// so its speed depends on how densely they are packed.
func coveragePass(sp *mem.Space, buckets, cov appkit.Ptr, scale int) {
	for i := 0; i < scale; i++ {
		sp.Store(cov+appkit.Ptr(i*4), 0)
	}
	for i := 0; i < idxBuckets; i++ {
		head := sp.Load(buckets + appkit.Ptr(i*4))
		for a := head; a != 0; a = sp.Load(a + pNext) {
			ah := sp.Load(a + pHash)
			ad := int(sp.Load(a+pDocPos) >> 16)
			for b := head; b != 0; b = sp.Load(b + pNext) {
				if b == a || sp.Load(b+pHash) != ah {
					continue
				}
				if int(sp.Load(b+pDocPos)>>16) != ad {
					cell := cov + appkit.Ptr(ad*4)
					sp.Store(cell, sp.Load(cell)+1)
					break
				}
			}
		}
	}
}

// collectMatches reads the pair matrix and returns packed (pair, count)
// values for every pair over the report threshold.
func collectMatches(sp *mem.Space, matrix appkit.Ptr, scale int) []uint32 {
	var out []uint32
	for lo := 0; lo < scale; lo++ {
		for hi := lo + 1; hi < scale; hi++ {
			n := sp.Load(matrix + appkit.Ptr((lo*scale+hi)*4))
			if n >= matchThresh {
				out = append(out, pairKey(lo, hi), n)
			}
		}
	}
	return out
}
