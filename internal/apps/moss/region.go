package moss

import "regions/internal/apps/appkit"

// RunRegion is the optimized region variant of moss from the paper's
// Section 5.5: two regions, one for the small frequently-accessed objects
// (index buckets and postings) and one for the large infrequently-accessed
// ones (text buffers, snippets, the pair matrix). Packing the postings
// densely is what buys the paper's 24% improvement and roughly half the
// stalls.
func RunRegion(e appkit.RegionEnv, scale int) uint32 {
	return runRegion(e, scale, false)
}

// RunSlowRegion is the paper's original moss region version: a single
// region, so small postings and large snippets interleave on its pages.
func RunSlowRegion(e appkit.RegionEnv, scale int) uint32 {
	return runRegion(e, scale, true)
}

func runRegion(e appkit.RegionEnv, scale int, single bool) uint32 {
	sp := e.Space()
	docs := Inputs(scale)

	clnPost := e.RegisterCleanup("moss.posting", func(e appkit.RegionEnv, obj appkit.Ptr) int {
		e.Destroy(e.Space().Load(obj + pNext))
		e.Destroy(e.Space().Load(obj + pSnippet))
		return postingSize
	})
	clnPtr := e.RegisterCleanup("moss.ptr", func(e appkit.RegionEnv, obj appkit.Ptr) int {
		e.Destroy(e.Space().Load(obj))
		return 4
	})
	clnSnip := e.SizeCleanup(snippetObjSize())

	f := e.PushFrame(4)
	defer e.PopFrame()
	const (
		sBuckets = iota
		sMatrix
		sText
		sPost
	)

	small := appkit.NewBound(e)
	large := small
	if !single {
		large = appkit.NewBound(e)
	}

	// Index buckets with the postings; matrix and texts with the large data.
	buckets := small.AllocArray(idxBuckets, 4, clnPtr)
	f.Set(sBuckets, buckets)
	matrix := large.AllocStr(scale * scale * 4)
	f.Set(sMatrix, matrix)
	for i := 0; i < scale*scale; i++ {
		sp.Store(matrix+appkit.Ptr(i*4), 0)
	}

	postings := 0
	for d, doc := range docs {
		text := large.AllocStr(textObjSize(len(doc)))
		f.Set(sText, text)
		sp.Store(text+txtLen, uint32(len(doc)))
		appkit.StoreBytes(sp, text+txtBytes, doc)

		for _, fp := range fingerprintDoc(sp, text) {
			post := small.Alloc(postingSize, clnPost)
			b := buckets + appkit.Ptr(fp.hash%idxBuckets*4)
			e.StorePtr(post+pNext, sp.Load(b))
			sp.Store(post+pHash, fp.hash)
			sp.Store(post+pDocPos, pairKey(d, fp.pos))
			e.StorePtr(b, post)
			f.Set(sPost, post)

			// In the slow version the snippet is rallocated right next to
			// the posting, interleaving large write-once data with the hot
			// small nodes; the optimized version segregates it.
			var snip appkit.Ptr
			if single {
				snip = large.Alloc(snippetObjSize(), clnSnip)
			} else {
				snip = large.AllocStr(snippetObjSize())
			}
			writeSnippet(sp, snip, doc, fp.pos)
			e.StorePtr(post+pSnippet, snip)
			f.Set(sPost, 0)
			postings++
			e.Safepoint()
		}
		f.Set(sText, 0)
		// The text buffer is fully consumed — fingerprints are in the index
		// and snippets were copied out — so hand it back for the next doc's
		// text to reuse (a no-op in environments without an explicit string
		// free; the texts then die with the large region as before).
		large.FreeStr(text, textObjSize(len(doc)))
	}

	scorePairs(sp, buckets, matrix, scale)
	matches := collectMatches(sp, matrix, scale)
	cov := large.AllocStr(scale * 4)
	f.Set(sText, cov)
	coveragePass(sp, buckets, cov, scale)
	for d := 0; d < scale; d++ {
		matches = append(matches, sp.Load(cov+appkit.Ptr(d*4)))
	}
	f.Set(sText, 0)
	sum := checksum(postings, matches)

	f.Set(sBuckets, 0)
	f.Set(sMatrix, 0)
	// The postings hold counted pointers into the large region, so the
	// small region must go first; its cleanups release those references.
	if !small.Delete() {
		panic("moss: small region not deletable")
	}
	if !single {
		if !large.Delete() {
			panic("moss: large region not deletable")
		}
	}
	e.Finalize()
	return sum
}
