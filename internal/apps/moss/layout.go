package moss

// Object layouts shared by the variants, in byte offsets.
//
// Posting node (small, frequently accessed during pair scoring):
//
//	+0  next posting in index bucket
//	+4  fingerprint hash
//	+8  document id << 16 | position
//	+12 pointer to the context snippet
//
// Snippet (large, written once and rarely read):
//
//	+0 length
//	+4 snippet bytes (snippetLen, padded)
//
// Text buffer: +0 length, +4 raw document bytes.
const (
	pNext, pHash, pDocPos, pSnippet = 0, 4, 8, 12
	postingSize                     = 16

	snipLen, snipBytes = 0, 4

	txtLen, txtBytes = 0, 4
)

func snippetObjSize() int { return snipBytes + (snippetLen+3)&^3 }

func textObjSize(n int) int { return txtBytes + (n+3)&^3 }
