package moss

import (
	"testing"

	"regions/internal/apps/appkit"
)

const testScale = 9

func TestAllVariantsAgree(t *testing.T) {
	var want uint32
	first := true
	check := func(name string, got uint32) {
		if first {
			want, first = got, false
			return
		}
		if got != want {
			t.Fatalf("%s checksum %#x, want %#x", name, got, want)
		}
	}
	for _, kind := range appkit.MallocKinds {
		check("malloc/"+kind, RunMalloc(appkit.NewMallocEnv(kind, appkit.Config{}), testScale))
	}
	for _, kind := range appkit.RegionKinds {
		check("region/"+kind, RunRegion(appkit.NewRegionEnv(kind, appkit.Config{}), testScale))
		check("slow/"+kind, RunSlowRegion(appkit.NewRegionEnv(kind, appkit.Config{}), testScale))
	}
}

func TestDetectsPlagiarizedPairs(t *testing.T) {
	e := appkit.NewMallocEnv("Lea", appkit.Config{})
	sp := e.Space()
	docs := Inputs(testScale)

	// Rerun the scoring pipeline manually to inspect matches.
	f := e.PushFrame(4)
	defer e.PopFrame()
	buckets := e.Alloc(idxBuckets * 4)
	f.Set(0, buckets)
	for i := 0; i < idxBuckets; i++ {
		sp.Store(buckets+appkit.Ptr(i*4), 0)
	}
	matrix := e.Alloc(testScale * testScale * 4)
	f.Set(1, matrix)
	for i := 0; i < testScale*testScale; i++ {
		sp.Store(matrix+appkit.Ptr(i*4), 0)
	}
	for d, doc := range docs {
		text := e.Alloc(textObjSize(len(doc)))
		f.Set(2, text)
		sp.Store(text+txtLen, uint32(len(doc)))
		appkit.StoreBytes(sp, text+txtBytes, doc)
		for _, fp := range fingerprintDoc(sp, text) {
			post := e.Alloc(postingSize)
			b := buckets + appkit.Ptr(fp.hash%idxBuckets*4)
			sp.Store(post+pNext, sp.Load(b))
			sp.Store(post+pHash, fp.hash)
			sp.Store(post+pDocPos, pairKey(d, fp.pos))
			sp.Store(post+pSnippet, 0)
			sp.Store(b, post)
		}
		f.Set(2, 0)
	}
	scorePairs(sp, buckets, matrix, testScale)
	matches := collectMatches(sp, matrix, testScale)

	// Document 3 copies from document 0, 6 from 3 (scale/3 = 3).
	found := map[uint32]bool{}
	for i := 0; i < len(matches); i += 2 {
		found[matches[i]] = true
	}
	if !found[pairKey(0, 3)] {
		t.Errorf("plagiarized pair (0,3) not detected; matches=%v", matches)
	}
	if !found[pairKey(3, 6)] {
		t.Errorf("plagiarized pair (3,6) not detected; matches=%v", matches)
	}
}

func TestWinnowProperties(t *testing.T) {
	hashes := []uint32{5, 9, 1, 7, 8, 2, 2, 6, 9, 9, 3, 4, 8, 1, 5, 6}
	fps := winnow(hashes)
	if len(fps) == 0 {
		t.Fatal("no fingerprints")
	}
	// Every window of `window` consecutive hashes must contain a selected
	// fingerprint position (the winnowing guarantee).
	for w := 0; w+window <= len(hashes); w++ {
		ok := false
		for _, fp := range fps {
			if fp.pos >= w && fp.pos < w+window {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("window starting at %d has no fingerprint", w)
		}
	}
	// No duplicate positions.
	seen := map[int]bool{}
	for _, fp := range fps {
		if seen[fp.pos] {
			t.Fatalf("duplicate fingerprint position %d", fp.pos)
		}
		seen[fp.pos] = true
	}
}

func TestNormalizeByte(t *testing.T) {
	cases := map[byte]byte{'a': 'a', 'Z': 'z', '3': '3', ' ': 0, '_': 0, '\n': 0, '/': 0}
	for in, want := range cases {
		if got := normalizeByte(in); got != want {
			t.Errorf("normalizeByte(%q)=%q, want %q", in, got, want)
		}
	}
}

func TestSlowVersionWorseLocality(t *testing.T) {
	// Figure 10's moss story: the optimized two-region version has far
	// fewer stalls than the single-region version.
	slow := appkit.NewRegionEnv("unsafe", appkit.Config{Cache: true})
	RunSlowRegion(slow, testScale)
	fast := appkit.NewRegionEnv("unsafe", appkit.Config{Cache: true})
	RunRegion(fast, testScale)
	ss := slow.Counters().ReadStalls + slow.Counters().WriteStalls
	fs := fast.Counters().ReadStalls + fast.Counters().WriteStalls
	if fs >= ss {
		t.Fatalf("optimized version should stall less: fast=%d slow=%d", fs, ss)
	}
	t.Logf("stalls: slow=%d fast=%d (ratio %.2f)", ss, fs, float64(ss)/float64(fs))
}

func TestRegionVariantLeaksNothing(t *testing.T) {
	e := appkit.NewRegionEnv("safe", appkit.Config{})
	RunRegion(e, testScale)
	c := e.Counters()
	if c.LiveRegions != 0 || c.LiveBytes != 0 {
		t.Fatalf("live regions=%d bytes=%d at end", c.LiveRegions, c.LiveBytes)
	}
}

func TestInputsDeterministicWithSharedBlocks(t *testing.T) {
	a, b := Inputs(9), Inputs(9)
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Fatal("inputs not deterministic")
		}
	}
	if len(a) != 9 {
		t.Fatalf("want 9 docs, got %d", len(a))
	}
	// Doc 3 must textually contain a block of doc 0.
	src := a[0]
	block := src[len(src)/4 : len(src)/4+len(src)/2]
	if !contains(a[3], block) {
		t.Fatal("plagiarized block missing from doc 3")
	}
}

func contains(hay, needle []byte) bool {
	for i := 0; i+len(needle) <= len(hay); i++ {
		if string(hay[i:i+len(needle)]) == string(needle) {
			return true
		}
	}
	return false
}
