// Package cfrac reimplements the paper's "cfrac" benchmark: factoring
// integers with the continued-fraction method (Morrison–Brillhart CFRAC).
// The paper factored 4175764634412486014593803028771; we factor a seeded
// family of ~50-bit semiprimes, which keeps the same structure — millions
// of small multi-precision allocations with a tiny live set — at laptop
// scale.
//
// The original cfrac manages its numbers with explicit reference counting;
// RunMalloc reproduces that (every number carries a reference-count header,
// costing the extra space Table 3 shows). The paper's region port disables
// the reference counting, creates "a region for temporary computations for
// every few iterations of the main algorithm", and copies partial solutions
// to a solution region so old temporary regions can be deleted — RunRegion
// does exactly that.
package cfrac

import (
	_ "embed"
	"math/bits"
	"sort"

	"regions/internal/apps/appkit"
	"regions/internal/apps/bignum"
	"regions/internal/mem"
)

//go:embed malloc.go
var mallocSource string

//go:embed region.go
var regionSource string

const (
	smoothBound = 1500  // factor-base prime bound
	maxFB       = 48    // factor-base size cap (fits a 64-bit parity mask)
	maxIters    = 30000 // CFRAC iterations per multiplier
	extraRels   = 4     // relations beyond the factor-base size
	rotateEvery = 16    // iterations per temporary region (region variant)
)

var multipliers = []uint64{1, 3, 5, 7}

// App returns the cfrac benchmark descriptor.
func App() appkit.App {
	return appkit.App{
		Name:         "cfrac",
		DefaultScale: 24, // semiprimes per run: ~2M allocations, the paper's order
		Malloc:       RunMalloc,
		Region:       RunRegion,
		MallocSource: mallocSource,
		RegionSource: regionSource,
	}
}

// Inputs returns the seeded semiprimes (and their factors, for tests).
func Inputs(scale int) (ns []uint64, ps, qs []uint64) {
	g := lcg{s: 0xfac7}
	for len(ns) < scale {
		p := nextPrime(uint64(24_000_000 + g.pick(8_000_000)))
		q := nextPrime(uint64(33_000_000 + g.pick(9_000_000)))
		if p == q {
			continue
		}
		ns = append(ns, p*q)
		ps = append(ps, p)
		qs = append(qs, q)
	}
	return
}

type lcg struct{ s uint32 }

func (g *lcg) next() uint32 {
	g.s = g.s*1664525 + 1013904223
	return g.s >> 8
}

func (g *lcg) pick(n int) int { return int(g.next()) % n }

// --- host-side number theory (machine arithmetic, the program's "registers")

func mulMod64(a, b, m uint64) uint64 {
	var r uint64
	a %= m
	for b > 0 {
		if b&1 == 1 {
			r = (r + a) % m
		}
		a = (a + a) % m
		b >>= 1
	}
	return r
}

func powMod64(a, e, m uint64) uint64 {
	var r uint64 = 1
	a %= m
	for e > 0 {
		if e&1 == 1 {
			r = mulMod64(r, a, m)
		}
		a = mulMod64(a, a, m)
		e >>= 1
	}
	return r
}

// isPrime is a deterministic Miller–Rabin for 64-bit inputs.
func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	d := n - 1
	r := 0
	for d%2 == 0 {
		d /= 2
		r++
	}
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		x := powMod64(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		ok := false
		for i := 0; i < r-1; i++ {
			x = mulMod64(x, x, n)
			if x == n-1 {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func nextPrime(n uint64) uint64 {
	if n%2 == 0 {
		n++
	}
	for !isPrime(n) {
		n += 2
	}
	return n
}

// legendre returns the Legendre symbol (a|p) for odd prime p: 1, p-1, or 0.
func legendre(a, p uint64) uint64 { return powMod64(a%p, (p-1)/2, p) }

// smallPrimes lists the primes up to smoothBound (host-side table; the
// original reads it from static data).
func smallPrimes() []uint64 {
	sieve := make([]bool, smoothBound+1)
	var ps []uint64
	for i := 2; i <= smoothBound; i++ {
		if !sieve[i] {
			ps = append(ps, uint64(i))
			for j := i * i; j <= smoothBound; j += i {
				sieve[j] = true
			}
		}
	}
	return ps
}

// factorBase returns the primes usable for kN: 2 plus every odd prime up to
// the bound with (kN|p) != -1, capped at maxFB entries.
func factorBase(kn uint64) []uint64 {
	fb := []uint64{2}
	for _, p := range smallPrimes()[1:] {
		if legendre(kn, p) != p-1 {
			fb = append(fb, p)
			if len(fb) == maxFB {
				break
			}
		}
	}
	return fb
}

// relation is one smooth congruence A² ≡ (-1)^sign · Π p^exps (mod N).
// The A value lives in the simulated heap; the exponents are host-side
// derived data.
type relation struct {
	a    bignum.Ptr
	exps []uint8 // exponent per factor-base prime
	sign bool    // true if the (-1) factor is present
}

// parityMask packs a relation's exponent parities (bit 0 = sign).
func (r *relation) parityMask() uint64 {
	var m uint64
	if r.sign {
		m = 1
	}
	for i, e := range r.exps {
		if e&1 == 1 {
			m |= 1 << (i + 1)
		}
	}
	return m
}

// dependencies runs GF(2) elimination over the relations' parity masks and
// returns, for each null-space vector found, the set of relation indices.
// Histories combine by symmetric difference, so every returned set uses
// each relation at most once.
func dependencies(rels []*relation) [][]int {
	type row struct {
		mask uint64
		hist map[int]bool
	}
	pivots := map[int]*row{}
	var deps [][]int
	for i, r := range rels {
		cur := &row{mask: r.parityMask(), hist: map[int]bool{i: true}}
		for cur.mask != 0 {
			b := bits.TrailingZeros64(cur.mask)
			p, ok := pivots[b]
			if !ok {
				pivots[b] = cur
				break
			}
			cur.mask ^= p.mask
			for j := range p.hist {
				if cur.hist[j] {
					delete(cur.hist, j)
				} else {
					cur.hist[j] = true
				}
			}
		}
		if cur.mask == 0 {
			var dep []int
			for j := range cur.hist {
				dep = append(dep, j)
			}
			sort.Ints(dep)
			deps = append(deps, dep)
		}
	}
	return deps
}

// checksum folds per-number outcomes into one comparable value.
func checksum(parts []uint64) uint32 {
	h := uint32(2166136261)
	for _, v := range parts {
		for k := 0; k < 8; k++ {
			h = (h ^ uint32(v&0xff)) * 16777619
			v >>= 8
		}
	}
	return h
}

// combineDep computes gcd(X−Y, N) for one dependency, using arena a for all
// big-number scratch. It returns a nontrivial factor of n or 0.
func combineDep(a bignum.Arena, sp *mem.Space, nBig bignum.Ptr, n uint64,
	fb []uint64, rels []*relation, dep []int) uint64 {
	// X = Π A_i (mod N)
	x := bignum.FromUint64(a, 1)
	for _, i := range dep {
		x = bignum.Mod(a, bignum.Mul(a, x, rels[i].a), nBig)
	}
	// Exponent sums must be even; Y = Π p^(E/2) (mod N).
	sums := make([]int, len(fb))
	for _, i := range dep {
		for j, e := range rels[i].exps {
			sums[j] += int(e)
		}
	}
	y := bignum.FromUint64(a, 1)
	for j, s := range sums {
		for k := 0; k < s/2; k++ {
			y = bignum.Mod(a, bignum.MulSmall(a, y, uint32(fb[j])), nBig)
		}
	}
	// d = |X − Y|; gcd(d, N).
	var d bignum.Ptr
	switch bignum.Cmp(sp, x, y) {
	case 0:
		return 0
	case 1:
		d = bignum.Sub(a, x, y)
	default:
		d = bignum.Sub(a, y, x)
	}
	g := bignum.GCD(a, d, nBig)
	if bignum.IsOne(sp, g) || bignum.Cmp(sp, g, nBig) == 0 {
		return 0
	}
	return bignum.ToUint64(sp, g)
}

// trialDivide factors q over the factor base using heap arithmetic,
// returning the exponent vector if q is smooth, else nil. Every quotient is
// a fresh allocation — the heart of cfrac's allocation churn.
func trialDivide(a bignum.Arena, sp *mem.Space, q bignum.Ptr, fb []uint64) []uint8 {
	exps := make([]uint8, len(fb))
	t := q
	for j, p := range fb {
		for {
			quo, rem := bignum.DivModSmall(a, t, uint32(p))
			if rem != 0 {
				break
			}
			t = quo
			exps[j]++
		}
	}
	if bignum.IsOne(sp, t) {
		return exps
	}
	return nil
}
