package cfrac

import (
	"math/big"
	"testing"

	"regions/internal/apps/appkit"
	"regions/internal/apps/bignum"
)

func TestPrimeHelpers(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 999983, 24036583}
	for _, p := range primes {
		if !isPrime(p) {
			t.Errorf("isPrime(%d)=false", p)
		}
	}
	composites := []uint64{1, 4, 100, 999981, 24036583 * 3}
	for _, c := range composites {
		if isPrime(c) {
			t.Errorf("isPrime(%d)=true", c)
		}
	}
	if got := nextPrime(90); got != 97 {
		t.Errorf("nextPrime(90)=%d", got)
	}
}

func TestLegendre(t *testing.T) {
	// Quadratic residues mod 7: 1, 2, 4.
	for _, a := range []uint64{1, 2, 4} {
		if legendre(a, 7) != 1 {
			t.Errorf("legendre(%d,7) != 1", a)
		}
	}
	for _, a := range []uint64{3, 5, 6} {
		if legendre(a, 7) != 6 {
			t.Errorf("legendre(%d,7) != -1", a)
		}
	}
}

func TestFactorBaseOnlyResidues(t *testing.T) {
	fb := factorBase(12345677)
	if fb[0] != 2 {
		t.Fatal("factor base must start with 2")
	}
	for _, p := range fb[1:] {
		if legendre(12345677, p) == p-1 {
			t.Errorf("non-residue prime %d in factor base", p)
		}
	}
	if len(fb) < 10 || len(fb) > maxFB {
		t.Fatalf("factor base size %d", len(fb))
	}
}

func TestInputsAreSemiprimes(t *testing.T) {
	ns, ps, qs := Inputs(4)
	for i, n := range ns {
		if ps[i]*qs[i] != n {
			t.Fatalf("input %d: %d != %d * %d", i, n, ps[i], qs[i])
		}
		if !isPrime(ps[i]) || !isPrime(qs[i]) {
			t.Fatalf("input %d: factors not prime", i)
		}
	}
}

// TestCFRACCongruence validates the sign convention A_{n-1}² ≡ (-1)^n Q_n
// (mod N) for the first steps of the expansion, using the same recurrence
// the drivers run.
func TestCFRACCongruence(t *testing.T) {
	e := appkit.NewMallocEnv("Lea", appkit.Config{})
	a := &rcArena{e: e, sp: e.Space()}
	sp := a.sp

	n := uint64(13290059) // 3851 * 3451
	nBig := bignum.FromUint64(a, n)
	knBig := bignum.FromUint64(a, n)
	g := bignum.Sqrt(a, knBig)

	P := bignum.Copy(a, g)
	Q := bignum.Sub(a, knBig, bignum.Mul(a, g, g))
	Qprev := bignum.FromUint64(a, 1)
	A1 := bignum.Mod(a, g, nBig)
	A2 := bignum.FromUint64(a, 1)

	toBig := func(x bignum.Ptr) *big.Int {
		v, ok := new(big.Int).SetString(bignum.String(sp, x), 16)
		if !ok {
			t.Fatal("bad hex")
		}
		return v
	}
	N := new(big.Int).SetUint64(n)
	for iter := 1; iter <= 25; iter++ {
		if bignum.IsOne(sp, Q) {
			break
		}
		// Check A1² ≡ (-1)^iter · Q (mod N).
		lhs := new(big.Int).Mul(toBig(A1), toBig(A1))
		lhs.Mod(lhs, N)
		rhs := new(big.Int).Set(toBig(Q))
		if iter%2 == 1 {
			rhs.Neg(rhs)
		}
		rhs.Mod(rhs, N)
		if lhs.Cmp(rhs) != 0 {
			t.Fatalf("iter %d: A1²=%v, (-1)^n·Q=%v (mod %d)", iter, lhs, rhs, n)
		}
		q, _ := bignum.DivMod(a, bignum.Add(a, g, P), Q)
		an := bignum.Mod(a, bignum.Add(a, bignum.Mul(a, q, A1), A2), nBig)
		pNext := bignum.Sub(a, bignum.Mul(a, q, Q), P)
		var qNext bignum.Ptr
		if bignum.Cmp(sp, P, pNext) >= 0 {
			qNext = bignum.Add(a, Qprev, bignum.Mul(a, q, bignum.Sub(a, P, pNext)))
		} else {
			qNext = bignum.Sub(a, Qprev, bignum.Mul(a, q, bignum.Sub(a, pNext, P)))
		}
		Qprev, Q, P, A2, A1 = Q, qNext, pNext, A1, an
	}
}

func TestDependenciesNullSpace(t *testing.T) {
	// Three relations whose parities cancel pairwise and a singleton even
	// relation.
	rels := []*relation{
		{exps: []uint8{1, 0, 1}, sign: true},
		{exps: []uint8{0, 1, 1}, sign: false},
		{exps: []uint8{1, 1, 0}, sign: true},
		{exps: []uint8{2, 2, 0}, sign: false}, // already a square
	}
	deps := dependencies(rels)
	if len(deps) == 0 {
		t.Fatal("no dependencies found")
	}
	for _, dep := range deps {
		var mask uint64
		for _, i := range dep {
			mask ^= rels[i].parityMask()
		}
		if mask != 0 {
			t.Fatalf("dependency %v has nonzero parity %b", dep, mask)
		}
	}
	// The even relation must appear as a singleton dependency.
	foundSingleton := false
	for _, dep := range deps {
		if len(dep) == 1 && dep[0] == 3 {
			foundSingleton = true
		}
	}
	if !foundSingleton {
		t.Fatalf("square relation not a singleton dependency: %v", deps)
	}
}

// TestFactorsSmallSemiprime runs the full malloc driver on one number and
// verifies the factor is right.
func TestFactorsSmallSemiprime(t *testing.T) {
	e := appkit.NewMallocEnv("Lea", appkit.Config{})
	f := e.PushFrame(numSlots)
	defer e.PopFrame()
	a := &rcArena{e: e, sp: e.Space()}
	p, q := nextPrime(138407), nextPrime(184321)
	n := p * q
	got := factorOneM(e, a, f, n)
	if got == 0 {
		t.Fatal("failed to factor")
	}
	if n%got != 0 || got == 1 || got == n {
		t.Fatalf("bad factor %d of %d", got, n)
	}
	if !isPrime(got) || !isPrime(n/got) {
		t.Fatalf("factor %d or cofactor %d not prime", got, n/got)
	}
}

func TestVariantsAgreeAndFactor(t *testing.T) {
	const scale = 1
	ns, ps, qs := Inputs(scale)
	var want uint32
	first := true
	check := func(name string, got uint32) {
		if first {
			want, first = got, false
			return
		}
		if got != want {
			t.Fatalf("%s checksum %#x, want %#x", name, got, want)
		}
	}
	// The checksum must correspond to successful factorizations.
	smaller := ps[0]
	if qs[0] < smaller {
		smaller = qs[0]
	}
	if w := checksum([]uint64{ns[0], smaller}); w == 0 {
		t.Fatal("degenerate expected checksum")
	} else {
		want, first = w, false
	}
	for _, kind := range appkit.MallocKinds {
		check("malloc/"+kind, RunMalloc(appkit.NewMallocEnv(kind, appkit.Config{}), scale))
	}
	for _, kind := range appkit.RegionKinds {
		check("region/"+kind, RunRegion(appkit.NewRegionEnv(kind, appkit.Config{}), scale))
	}
}

func TestMallocVariantBalancedRC(t *testing.T) {
	e := appkit.NewMallocEnv("Lea", appkit.Config{})
	RunMalloc(e, 1)
	c := e.Counters()
	if c.LiveBytes != 0 {
		t.Fatalf("%d bytes leaked (refcount imbalance)", c.LiveBytes)
	}
	if c.Allocs != c.FreeCalls {
		t.Fatalf("allocs=%d frees=%d", c.Allocs, c.FreeCalls)
	}
}

func TestRegionVariantManyRegionsNoLeaks(t *testing.T) {
	e := appkit.NewRegionEnv("safe", appkit.Config{})
	RunRegion(e, 1)
	c := e.Counters()
	if c.LiveRegions != 0 || c.LiveBytes != 0 {
		t.Fatalf("regions=%d bytes=%d live at end", c.LiveRegions, c.LiveBytes)
	}
	if c.RegionsCreated < 50 {
		t.Fatalf("only %d regions created; rotation missing?", c.RegionsCreated)
	}
}

func TestRegionUsesLessSpaceThanRC(t *testing.T) {
	// Table 3 vs Table 2: the malloc version allocates more bytes because
	// of the reference-count headers.
	em := appkit.NewMallocEnv("Lea", appkit.Config{})
	RunMalloc(em, 1)
	er := appkit.NewRegionEnv("unsafe", appkit.Config{})
	RunRegion(er, 1)
	mb := em.Counters().BytesRequested
	rb := er.Counters().BytesRequested
	if mb <= rb {
		t.Fatalf("rc version should request more: malloc=%d region=%d", mb, rb)
	}
	t.Logf("requested bytes: rc=%d region=%d (+%.1f%%)", mb, rb, 100*float64(mb-rb)/float64(rb))
}
