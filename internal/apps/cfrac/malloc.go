package cfrac

import (
	"regions/internal/apps/appkit"
	"regions/internal/apps/bignum"
	"regions/internal/mem"
)

// rcArena backs the malloc variant's numbers: every number carries a
// one-word reference-count header, as in the original cfrac. Numbers are
// born with count one in the current iteration's release pool; values that
// survive the iteration are retained first.
type rcArena struct {
	e    appkit.MallocEnv
	sp   *mem.Space
	pool []bignum.Ptr
}

func (a *rcArena) Space() *mem.Space { return a.sp }

func (a *rcArena) AllocNum(limbs int) bignum.Ptr {
	base := a.e.Alloc(mem.WordSize + bignum.NumBytes(limbs))
	a.sp.Store(base, 1) // reference count
	p := base + mem.WordSize
	a.pool = append(a.pool, p)
	return p
}

func (a *rcArena) retain(p bignum.Ptr) {
	a.sp.Store(p-mem.WordSize, a.sp.Load(p-mem.WordSize)+1)
}

func (a *rcArena) release(p bignum.Ptr) {
	rc := a.sp.Load(p - mem.WordSize)
	if rc == 0 {
		panic("cfrac: reference count underflow")
	}
	if rc == 1 {
		a.e.Free(p - mem.WordSize)
		return
	}
	a.sp.Store(p-mem.WordSize, rc-1)
}

// flush releases the whole pool: anything not retained dies here.
func (a *rcArena) flush() {
	for _, p := range a.pool {
		a.release(p)
	}
	a.pool = a.pool[:0]
}

// Frame slot layout shared with the region variant: a handful of named
// registers plus one slot per saved relation.
const (
	slotN = iota
	slotKN
	slotG
	slotP
	slotQ
	slotQprev
	slotA1
	slotA2
	slotRel0
	numSlots = slotRel0 + maxFB + extraRels + 2
)

// RunMalloc is the malloc/free variant of cfrac with explicit reference
// counting, the structure of the original program.
func RunMalloc(e appkit.MallocEnv, scale int) uint32 {
	a := &rcArena{e: e, sp: e.Space()}
	ns, _, _ := Inputs(scale)
	var parts []uint64

	for _, n := range ns {
		f := e.PushFrame(numSlots)
		factor := factorOneM(e, a, f, n)
		parts = append(parts, n, factor)
		e.PopFrame()
	}
	e.Finalize()
	return checksum(parts)
}

func factorOneM(e appkit.MallocEnv, a *rcArena, f appkit.Frame, n uint64) uint64 {
	sp := a.sp
	for _, k := range multipliers {
		kn := n * k
		fb := factorBase(kn)

		nBig := bignum.FromUint64(a, n)
		a.retain(nBig)
		f.Set(slotN, nBig)
		knBig := bignum.FromUint64(a, kn)
		a.retain(knBig)
		f.Set(slotKN, knBig)
		g := bignum.Sqrt(a, knBig)
		a.retain(g)
		f.Set(slotG, g)

		// State: P=g, Q=kn-g², Qprev=1, A1=g mod N, A2=1.
		set := func(slot int, p bignum.Ptr) bignum.Ptr {
			a.retain(p)
			if old := f.Get(slot); old != 0 {
				a.release(old)
			}
			f.Set(slot, p)
			return p
		}
		set(slotP, bignum.Copy(a, g))
		set(slotQ, bignum.Sub(a, knBig, bignum.Mul(a, g, g)))
		set(slotQprev, bignum.FromUint64(a, 1))
		set(slotA1, bignum.Mod(a, g, nBig))
		set(slotA2, bignum.FromUint64(a, 1))
		a.flush()
		e.Safepoint()

		var rels []*relation
		target := len(fb) + extraRels
		for iter := 1; iter <= maxIters && len(rels) < target; iter++ {
			P, Q := f.Get(slotP), f.Get(slotQ)
			Qprev, A1, A2 := f.Get(slotQprev), f.Get(slotA1), f.Get(slotA2)
			if bignum.IsOne(sp, Q) {
				break // end of the expansion period
			}
			// Smoothness of Q_n gives the relation A_{n-1}² ≡ (-1)^n Q_n.
			if exps := trialDivide(a, sp, Q, fb); exps != nil {
				av := bignum.Copy(a, A1)
				a.retain(av)
				f.Set(slotRel0+len(rels), av)
				rels = append(rels, &relation{a: av, exps: exps, sign: iter%2 == 1})
			}
			// q = (g + P) / Q and the recurrence.
			q, _ := bignum.DivMod(a, bignum.Add(a, f.Get(slotG), P), Q)
			an := bignum.Mod(a, bignum.Add(a, bignum.Mul(a, q, A1), A2), f.Get(slotN))
			pNext := bignum.Sub(a, bignum.Mul(a, q, Q), P)
			var qNext bignum.Ptr
			if bignum.Cmp(sp, P, pNext) >= 0 {
				qNext = bignum.Add(a, Qprev, bignum.Mul(a, q, bignum.Sub(a, P, pNext)))
			} else {
				qNext = bignum.Sub(a, Qprev, bignum.Mul(a, q, bignum.Sub(a, pNext, P)))
			}
			set(slotQprev, Q)
			set(slotQ, qNext)
			set(slotP, pNext)
			set(slotA2, A1)
			set(slotA1, an)
			a.flush()
			e.Safepoint()
		}

		// Combine dependencies into a factor.
		var factor uint64
		for _, dep := range dependencies(rels) {
			factor = combineDep(a, sp, f.Get(slotN), n, fb, rels, dep)
			a.flush()
			e.Safepoint()
			if factor != 0 {
				break
			}
		}

		// Release everything this multiplier retained.
		for i := range rels {
			a.release(f.Get(slotRel0 + i))
			f.Set(slotRel0+i, 0)
		}
		for _, s := range []int{slotN, slotKN, slotG, slotP, slotQ, slotQprev, slotA1, slotA2} {
			if p := f.Get(s); p != 0 {
				a.release(p)
				f.Set(s, 0)
			}
		}
		e.Safepoint()
		if factor != 0 {
			if n/factor < factor {
				factor = n / factor
			}
			return factor
		}
	}
	return 0
}
