package cfrac

import (
	"regions/internal/apps/appkit"
	"regions/internal/apps/bignum"
	"regions/internal/mem"
)

// regionArena backs the region variant's numbers: allocation is rstralloc
// into whatever region is current (numbers contain no region pointers, so
// they need neither clearing nor cleanups), and there is no reference
// counting at all — the space saving Table 3 shows for region-based cfrac.
type regionArena struct {
	b appkit.BoundRegion
}

func (a *regionArena) Space() *mem.Space { return a.b.Env().Space() }

func (a *regionArena) AllocNum(limbs int) bignum.Ptr {
	return a.b.AllocStr(bignum.NumBytes(limbs))
}

// RunRegion is the region variant of cfrac, following the paper's port:
// reference counting disabled, a temporary region for every few iterations
// of the main algorithm, and partial solutions (the relation numbers)
// copied from it into a solution region so old temporaries can be deleted.
func RunRegion(e appkit.RegionEnv, scale int) uint32 {
	ns, _, _ := Inputs(scale)
	var parts []uint64
	for _, n := range ns {
		f := e.PushFrame(numSlots)
		factor := factorOneR(e, f, n)
		parts = append(parts, n, factor)
		e.PopFrame()
	}
	e.Finalize()
	return checksum(parts)
}

func factorOneR(e appkit.RegionEnv, f appkit.Frame, n uint64) uint64 {
	sp := e.Space()
	for _, k := range multipliers {
		kn := n * k
		fb := factorBase(kn)

		// Long-lived values — N, kN, g, the saved relations — go in the
		// solution region; the rolling CFRAC state lives in a temporary
		// region recycled every rotateEvery iterations.
		sol := appkit.NewBound(e)
		solA := &regionArena{b: sol}
		tmp := appkit.NewBound(e)
		tmpA := &regionArena{b: tmp}

		nBig := bignum.FromUint64(solA, n)
		f.Set(slotN, nBig)
		knBig := bignum.FromUint64(solA, kn)
		f.Set(slotKN, knBig)
		g := bignum.Sqrt(solA, knBig) // scratch from Sqrt also lands in sol; it is tiny
		f.Set(slotG, g)

		f.Set(slotP, bignum.Copy(tmpA, g))
		f.Set(slotQ, bignum.Sub(tmpA, knBig, bignum.Mul(tmpA, g, g)))
		f.Set(slotQprev, bignum.FromUint64(tmpA, 1))
		f.Set(slotA1, bignum.Mod(tmpA, g, nBig))
		f.Set(slotA2, bignum.FromUint64(tmpA, 1))
		e.Safepoint()

		var rels []*relation
		target := len(fb) + extraRels
		for iter := 1; iter <= maxIters && len(rels) < target; iter++ {
			P, Q := f.Get(slotP), f.Get(slotQ)
			Qprev, A1, A2 := f.Get(slotQprev), f.Get(slotA1), f.Get(slotA2)
			if bignum.IsOne(sp, Q) {
				break
			}
			if exps := trialDivide(tmpA, sp, Q, fb); exps != nil {
				// Copy the partial solution into the solution region.
				av := bignum.Copy(solA, A1)
				f.Set(slotRel0+len(rels), av)
				rels = append(rels, &relation{a: av, exps: exps, sign: iter%2 == 1})
			}
			q, _ := bignum.DivMod(tmpA, bignum.Add(tmpA, f.Get(slotG), P), Q)
			an := bignum.Mod(tmpA, bignum.Add(tmpA, bignum.Mul(tmpA, q, A1), A2), f.Get(slotN))
			pNext := bignum.Sub(tmpA, bignum.Mul(tmpA, q, Q), P)
			var qNext bignum.Ptr
			if bignum.Cmp(sp, P, pNext) >= 0 {
				qNext = bignum.Add(tmpA, Qprev, bignum.Mul(tmpA, q, bignum.Sub(tmpA, P, pNext)))
			} else {
				qNext = bignum.Sub(tmpA, Qprev, bignum.Mul(tmpA, q, bignum.Sub(tmpA, pNext, P)))
			}
			f.Set(slotQprev, Q)
			f.Set(slotQ, qNext)
			f.Set(slotP, pNext)
			f.Set(slotA2, A1)
			f.Set(slotA1, an)

			if iter%rotateEvery == 0 {
				// Copy the live rolling state forward into a fresh
				// temporary region and delete the old one.
				next := appkit.NewBound(e)
				nextA := &regionArena{b: next}
				for _, s := range []int{slotP, slotQ, slotQprev, slotA1, slotA2} {
					f.Set(s, bignum.Copy(nextA, f.Get(s)))
				}
				if !tmp.Delete() {
					panic("cfrac: temporary region not deletable")
				}
				tmp, tmpA = next, nextA
			}
			e.Safepoint()
		}

		var factor uint64
		for _, dep := range dependencies(rels) {
			depReg := appkit.NewBound(e)
			depA := &regionArena{b: depReg}
			factor = combineDep(depA, sp, f.Get(slotN), n, fb, rels, dep)
			if !depReg.Delete() {
				panic("cfrac: combination region not deletable")
			}
			e.Safepoint()
			if factor != 0 {
				break
			}
		}

		// Everything dies with the two regions; clear the locals first.
		for i := 0; i < numSlots; i++ {
			f.Set(i, 0)
		}
		if !tmp.Delete() {
			panic("cfrac: temporary region not deletable")
		}
		if !sol.Delete() {
			panic("cfrac: solution region not deletable")
		}
		e.Safepoint()
		if factor != 0 {
			if n/factor < factor {
				factor = n / factor
			}
			return factor
		}
	}
	return 0
}
