package minicc

import (
	"fmt"
	"strconv"
	"strings"
)

// RunAsm executes the pseudo-SPARC text produced by EmitAsm and returns
// main's result. It exists to validate the assembly backend — register
// allocation, spill code, branch labels — differentially against the quad
// interpreter; see the asm tests.
func RunAsm(asm string, mainName string, nGlobals int) int32 {
	type instr struct {
		op   string
		args []string
	}
	var code []instr
	labels := map[string]int{}
	for _, raw := range strings.Split(asm, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '!'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			labels[strings.TrimSuffix(line, ":")] = len(code)
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == ',' || r == '\t' })
		code = append(code, instr{op: fields[0], args: fields[1:]})
	}

	type frame struct {
		regs   map[string]int32
		spills map[string]int32
		retPC  int
	}
	globals := make([]int32, nGlobals)
	var params []int32
	var stack []*frame

	newFrame := func(argc, retPC int) *frame {
		f := &frame{regs: map[string]int32{}, spills: map[string]int32{}, retPC: retPC}
		for i := 0; i < argc; i++ {
			f.regs[fmt.Sprintf("%%i%d", i)] = params[len(params)-argc+i]
		}
		params = params[:len(params)-argc]
		return f
	}

	val := func(f *frame, s string) int32 {
		if strings.HasPrefix(s, "%") {
			return f.regs[s]
		}
		v, err := strconv.Atoi(s)
		if err != nil {
			panic("minicc asm: bad operand " + s)
		}
		return int32(v)
	}

	start, ok := labels[mainName]
	if !ok {
		panic("minicc asm: no label " + mainName)
	}
	stack = append(stack, &frame{regs: map[string]int32{}, spills: map[string]int32{}, retPC: -1})
	pc := start
	var result int32
	for steps := 0; len(stack) > 0; steps++ {
		if steps > 30_000_000 {
			panic("minicc asm: step limit exceeded")
		}
		f := stack[len(stack)-1]
		in := code[pc]
		pc++
		switch in.op {
		case "set":
			f.regs[in.args[1]] = val(f, in.args[0])
		case "mov":
			f.regs[in.args[1]] = val(f, in.args[0])
		case "neg":
			f.regs[in.args[1]] = -val(f, in.args[0])
		case "add":
			f.regs[in.args[2]] = val(f, in.args[0]) + val(f, in.args[1])
		case "sub":
			f.regs[in.args[2]] = val(f, in.args[0]) - val(f, in.args[1])
		case "smul":
			f.regs[in.args[2]] = val(f, in.args[0]) * val(f, in.args[1])
		case "sdiv":
			f.regs[in.args[2]] = val(f, in.args[0]) / val(f, in.args[1])
		case "srem":
			f.regs[in.args[2]] = val(f, in.args[0]) % val(f, in.args[1])
		case "slt":
			f.regs[in.args[2]] = b2i(val(f, in.args[0]) < val(f, in.args[1]))
		case "sle":
			f.regs[in.args[2]] = b2i(val(f, in.args[0]) <= val(f, in.args[1]))
		case "seq":
			f.regs[in.args[2]] = b2i(val(f, in.args[0]) == val(f, in.args[1]))
		case "sne":
			f.regs[in.args[2]] = b2i(val(f, in.args[0]) != val(f, in.args[1]))
		case "ld": // ld [%fp-N] %gX
			f.regs[in.args[1]] = f.spills[in.args[0]]
		case "st": // st %gX [%fp-N]
			f.spills[in.args[1]] = val(f, in.args[0])
		case "beqz":
			if val(f, in.args[0]) == 0 {
				pc = labels[in.args[1]]
			}
		case "b":
			pc = labels[in.args[0]]
		case "param":
			params = append(params, val(f, in.args[0]))
		case "call": // call fK argc
			argc, _ := strconv.Atoi(in.args[1])
			stack = append(stack, newFrame(argc, pc))
			pc = labels[in.args[0]]
		case "ret":
			v := val(f, in.args[0])
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				result = v
				break
			}
			caller := stack[len(stack)-1]
			caller.regs["%o0"] = v
			pc = f.retPC
		case "ldg":
			slot, _ := strconv.Atoi(strings.TrimPrefix(in.args[0], "g"))
			f.regs[in.args[1]] = globals[slot]
		case "stg":
			slot, _ := strconv.Atoi(strings.TrimPrefix(in.args[1], "g"))
			globals[slot] = val(f, in.args[0])
		default:
			panic("minicc asm: bad instruction " + in.op)
		}
	}
	return result
}
