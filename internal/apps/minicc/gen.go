package minicc

import (
	"fmt"

	"regions/internal/apps/appkit"
)

// --- checking pass -----------------------------------------------------------

// checkExpr validates names and arities; it returns the node count so the
// pass does real work over the whole tree, like lcc's semantic pass.
func (c *compiler) checkExpr(n appkit.Ptr) int {
	sp := c.sp
	switch sp.Load(n+aKind) & 0xff {
	case eNum:
		return 1
	case eVar:
		name := sp.Load(n + aA)
		kind, _, _, ok := c.lookup(name)
		if !ok || kind == kFunc {
			panic("minicc: undeclared variable " + c.nameStr(name))
		}
		return 1
	case eNeg:
		return 1 + c.checkExpr(sp.Load(n+aA))
	case eBin:
		return 1 + c.checkExpr(sp.Load(n+aA)) + c.checkExpr(sp.Load(n+aB))
	case eCall:
		name := sp.Load(n + aA)
		kind, _, arity, ok := c.lookup(name)
		if !ok || kind != kFunc {
			panic("minicc: call to undefined function " + c.nameStr(name))
		}
		count, argc := 1, 0
		for a := sp.Load(n + aB); a != 0; a = sp.Load(a + 4) {
			count += c.checkExpr(sp.Load(a))
			argc++
		}
		if argc != arity {
			panic(fmt.Sprintf("minicc: %s called with %d args, wants %d",
				c.nameStr(name), argc, arity))
		}
		return count
	}
	panic("minicc: bad expression node")
}

func (c *compiler) checkStmt(n appkit.Ptr) int {
	sp := c.sp
	switch sp.Load(n+aKind) & 0xff {
	case sBlock:
		count := 1
		for s := sp.Load(n + aA); s != 0; s = sp.Load(s + 4) {
			count += c.checkStmt(sp.Load(s))
		}
		return count
	case sDecl:
		count := 1 + c.checkExpr(sp.Load(n+aB))
		// The declaration is visible to subsequent statements; bind a
		// checking-time entry (register assigned later by codegen).
		c.bind(false, sp.Load(n+aA), kLocalVar, -1, 0)
		return count
	case sAssign:
		name := sp.Load(n + aA)
		if kind, _, _, ok := c.lookup(name); !ok || kind == kFunc {
			panic("minicc: assignment to undeclared " + c.nameStr(name))
		}
		return 1 + c.checkExpr(sp.Load(n+aB))
	case sIf:
		count := 1 + c.checkExpr(sp.Load(n+aA)) + c.checkStmt(sp.Load(n+aB))
		if e := sp.Load(n + aC); e != 0 {
			count += c.checkStmt(e)
		}
		return count
	case sWhile:
		return 1 + c.checkExpr(sp.Load(n+aA)) + c.checkStmt(sp.Load(n+aB))
	case sRet:
		return 1 + c.checkExpr(sp.Load(n+aA))
	}
	panic("minicc: bad statement node")
}

// --- code generation ----------------------------------------------------------

func (c *compiler) newReg() int {
	r := c.nregs
	c.nregs++
	return r
}

// emit appends one quad to the current function's chunk list and returns
// its function-relative index.
func (c *compiler) emit(op, a, b, dst int) int {
	sp := c.sp
	cur := c.f.Get(sChunks)
	if cur == 0 || sp.Load(cur+qcUsed) == quadsPerChunk {
		nc := c.work.Alloc(qcQuads+quadsPerChunk*quadBytes, c.clnChunk)
		if cur != 0 {
			c.e.StorePtr(nc+qcNext, cur) // for cleanup; order kept host-side
		}
		c.f.Set(sChunks, nc)
		c.chunks = append(c.chunks, nc)
		cur = nc
	}
	used := sp.Load(cur + qcUsed)
	q := cur + qcQuads + appkit.Ptr(used*quadBytes)
	sp.Store(q, uint32(op))
	sp.Store(q+4, uint32(a))
	sp.Store(q+8, uint32(b))
	sp.Store(q+12, uint32(dst))
	sp.Store(cur+qcUsed, used+1)
	c.nq++
	return c.nq - 1
}

// patchB rewrites the b field of quad idx (function-relative).
func (c *compiler) patchB(idx, target int) {
	chunk := c.chunks[idx/quadsPerChunk]
	q := chunk + qcQuads + appkit.Ptr(idx%quadsPerChunk*quadBytes)
	c.sp.Store(q+8, uint32(target))
}

// genExpr emits code for an expression and returns the result register.
func (c *compiler) genExpr(n appkit.Ptr) int {
	sp := c.sp
	switch sp.Load(n+aKind) & 0xff {
	case eNum:
		r := c.newReg()
		c.emit(irConst, int(int32(sp.Load(n+aA))), 0, r)
		return r
	case eVar:
		name := sp.Load(n + aA)
		kind, idx, _, _ := c.lookup(name)
		if kind == kLocalVar {
			return idx
		}
		r := c.newReg()
		c.emit(irLoadG, idx, 0, r)
		return r
	case eNeg:
		a := c.genExpr(sp.Load(n + aA))
		r := c.newReg()
		c.emit(irNeg, a, 0, r)
		return r
	case eBin:
		op := int(sp.Load(n+aKind) >> 8)
		a := c.genExpr(sp.Load(n + aA))
		b := c.genExpr(sp.Load(n + aB))
		r := c.newReg()
		c.emit(op, a, b, r)
		return r
	case eCall:
		name := sp.Load(n + aA)
		_, idx, _, _ := c.lookup(name)
		var regs []int
		argc := 0
		for a := sp.Load(n + aB); a != 0; a = sp.Load(a + 4) {
			regs = append(regs, c.genExpr(sp.Load(a)))
			argc++
		}
		for _, r := range regs {
			c.emit(irParam, r, 0, 0)
		}
		r := c.newReg()
		c.emit(irCall, idx, argc, r)
		return r
	}
	panic("minicc: bad expression node")
}

func (c *compiler) genStmt(n appkit.Ptr) {
	sp := c.sp
	switch sp.Load(n+aKind) & 0xff {
	case sBlock:
		for s := sp.Load(n + aA); s != 0; s = sp.Load(s + 4) {
			c.genStmt(sp.Load(s))
		}
	case sDecl:
		r := c.genExpr(sp.Load(n + aB))
		home := c.newReg()
		c.emit(irMov, r, 0, home)
		c.bind(false, sp.Load(n+aA), kLocalVar, home, 0)
	case sAssign:
		name := sp.Load(n + aA)
		kind, idx, _, _ := c.lookup(name)
		r := c.genExpr(sp.Load(n + aB))
		if kind == kLocalVar {
			c.emit(irMov, r, 0, idx)
		} else {
			c.emit(irStoreG, r, idx, 0)
		}
	case sIf:
		cond := c.genExpr(sp.Load(n + aA))
		jz := c.emit(irJz, cond, 0, 0)
		c.genStmt(sp.Load(n + aB))
		if e := sp.Load(n + aC); e != 0 {
			jend := c.emit(irJmp, 0, 0, 0)
			c.patchB(jz, c.nq)
			c.genStmt(e)
			c.patchB(jend, c.nq)
		} else {
			c.patchB(jz, c.nq)
		}
	case sWhile:
		top := c.nq
		cond := c.genExpr(sp.Load(n + aA))
		jz := c.emit(irJz, cond, 0, 0)
		c.genStmt(sp.Load(n + aB))
		c.emit(irJmp, 0, top, 0)
		c.patchB(jz, c.nq)
	case sRet:
		r := c.genExpr(sp.Load(n + aA))
		c.emit(irRet, r, 0, 0)
	default:
		panic("minicc: bad statement node")
	}
}

// compileFn checks and generates one function, copies its quads into the
// module image, and registers its metadata.
func (c *compiler) compileFn(fn appkit.Ptr) {
	sp := c.sp
	name := sp.Load(fn + aA)
	idx := c.nfns
	if idx == maxFns {
		panic("minicc: too many functions")
	}
	c.nfns++

	// Count parameters and declare the function before its body, so
	// earlier-defined functions are callable (ours call only earlier ones).
	nparams := 0
	for p := sp.Load(fn + aB); p != 0; p = sp.Load(p + 4) {
		nparams++
	}
	c.bind(true, name, kFunc, idx, nparams)

	// Checking pass: parameters then body, in a scope discarded afterwards.
	c.f.Set(sEnv, 0)
	for p := sp.Load(fn + aB); p != 0; p = sp.Load(p + 4) {
		c.bind(false, sp.Load(p), kLocalVar, -1, 0)
	}
	c.checkStmt(sp.Load(fn + aC))

	// Optimization pass: constant folding over the checked AST.
	if !c.noFold {
		c.foldStmt(sp.Load(fn + aC))
	}

	// Generation pass, in a fresh scope with real registers.
	c.f.Set(sEnv, 0)
	c.f.Set(sChunks, 0)
	c.chunks = c.chunks[:0]
	c.nq = 0
	c.nregs = 0
	for p := sp.Load(fn + aB); p != 0; p = sp.Load(p + 4) {
		c.bind(false, sp.Load(p), kLocalVar, c.newReg(), 0)
	}
	c.genStmt(sp.Load(fn + aC))
	// Defensive epilogue: functions whose body can fall through return 0.
	zero := c.newReg()
	c.emit(irConst, 0, 0, zero)
	c.emit(irRet, zero, 0, 0)

	// Optimization pass: dead-code elimination over the finished quads.
	c.eliminateDead()

	// Copy the quads into the module image.
	module := c.f.Get(sModule)
	meta := c.f.Get(sMeta)
	if c.quadOff+c.nq > maxQuads {
		panic("minicc: module overflow")
	}
	written := 0
	for _, chunk := range c.chunks {
		used := int(sp.Load(chunk + qcUsed))
		for i := 0; i < used; i++ {
			src := chunk + qcQuads + appkit.Ptr(i*quadBytes)
			dst := module + appkit.Ptr((c.quadOff+written)*quadBytes)
			for w := appkit.Ptr(0); w < quadBytes; w += 4 {
				sp.Store(dst+w, sp.Load(src+w))
			}
			written++
		}
	}
	sp.Store(meta+appkit.Ptr(idx*metaEntry), uint32(c.quadOff))
	sp.Store(meta+appkit.Ptr(idx*metaEntry+4), uint32(c.nq))
	sp.Store(meta+appkit.Ptr(idx*metaEntry+8), uint32(nparams))
	sp.Store(meta+appkit.Ptr(idx*metaEntry+12), uint32(c.nregs))
	c.quadOff += c.nq
	c.f.Set(sEnv, 0)
	c.f.Set(sChunks, 0)
}

// rotateWork starts a new working region once enough statements have been
// compiled — the paper's "region for every hundred statements".
func (c *compiler) rotateWork() {
	if c.stmts < rotateStmts {
		return
	}
	c.stmts = 0
	old := c.work
	c.work = appkit.NewBound(c.e)
	if !old.Delete() {
		panic("minicc: working region not deletable")
	}
}

// compileFile compiles src once: returns main's result and the module hash.
func (c *compiler) compileFile(src []byte) (int32, uint32) {
	e, sp := c.e, c.sp
	c.file = appkit.NewBound(e)
	c.work = appkit.NewBound(e)
	c.nfns = 0
	c.quadOff = 0
	c.stmts = 0

	text := c.file.AllocStr(len(src))
	appkit.StoreBytes(sp, text, src)
	c.toks = c.lex(text, len(src))
	c.pos = 0

	c.f.Set(sNames, c.file.AllocArray(nameBuckets, 4, c.clnPtr))
	globals := c.file.AllocStr(nGlobals * 4)
	for i := 0; i < nGlobals; i++ {
		sp.Store(globals+appkit.Ptr(i*4), 0)
	}
	c.f.Set(sGlobals, globals)
	c.f.Set(sModule, c.file.AllocStr(maxQuads*quadBytes))
	c.f.Set(sMeta, c.file.AllocStr(maxFns*metaEntry))

	mainIdx := -1
	for c.pos < len(c.toks) {
		fn, isFn := c.parseTop()
		if isFn {
			c.f.Set(sFn, fn)
			c.compileFn(fn)
			if c.nameStr(sp.Load(fn+aA)) == "main" {
				mainIdx = c.nfns - 1
			}
			c.f.Set(sFn, 0)
			c.rotateWork()
		}
		e.Safepoint()
	}
	if mainIdx < 0 {
		panic("minicc: no main")
	}
	result := c.run(mainIdx)
	if c.asmOut != nil {
		*c.asmOut = c.EmitAsm()
		c.asmMain = mainIdx
	}

	var modHash uint32 = 2166136261
	module := c.f.Get(sModule)
	for i := 0; i < c.quadOff*quadBytes/4; i++ {
		mix(&modHash, sp.Load(module+appkit.Ptr(i*4)))
	}
	for i := 0; i < nGlobals; i++ {
		mix(&modHash, sp.Load(globals+appkit.Ptr(i*4)))
	}

	for i := 0; i < numSlots; i++ {
		c.f.Set(i, 0)
	}
	if !c.work.Delete() {
		panic("minicc: working region not deletable")
	}
	if !c.file.Delete() {
		panic("minicc: file region not deletable")
	}
	return result, modHash
}
