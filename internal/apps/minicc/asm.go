package minicc

import (
	"fmt"
	"sort"
	"strings"

	"regions/internal/apps/appkit"
)

// This file is minicc's second backend: a pseudo-SPARC assembly printer
// with linear-scan register allocation, the role lcc's real code generator
// plays (the paper's lcc targets the SPARC). The three-address module is
// lowered onto six allocatable registers (%l0-%l5) plus two scratch
// registers (%g1, %g2) for spill traffic; virtual registers that do not fit
// live in frame slots ([%fp-N]).
//
// The backend is optional — `minicc -S` and the tests use it; the
// benchmark harness measures the quad pipeline the interpreter executes —
// and it is validated differentially: an assembly evaluator runs the
// emitted text and must agree with the quad interpreter on every program.

const (
	asmRegs    = 6 // allocatable registers
	asmScratch = 2 // reserved for spill reloads
)

// interval is a virtual register's live range in quad indices.
type interval struct {
	vreg       int
	start, end int
}

// regAlloc maps virtual registers to physical registers or spill slots.
type regAlloc struct {
	phys  map[int]int // vreg -> physical register (0..asmRegs-1)
	slot  map[int]int // vreg -> spill slot
	slots int
}

// linearScan is the Poletto–Sarkar algorithm over one function's quads.
func linearScan(intervals []interval) *regAlloc {
	ra := &regAlloc{phys: map[int]int{}, slot: map[int]int{}}
	sort.Slice(intervals, func(i, j int) bool { return intervals[i].start < intervals[j].start })
	type activeRange struct {
		interval
		reg int
	}
	var active []activeRange
	free := make([]int, 0, asmRegs)
	for r := asmRegs - 1; r >= 0; r-- {
		free = append(free, r)
	}
	expire := func(now int) {
		kept := active[:0]
		for _, a := range active {
			if a.end < now {
				free = append(free, a.reg)
			} else {
				kept = append(kept, a)
			}
		}
		active = kept
	}
	spillSlot := func(v int) int {
		s := ra.slots
		ra.slots++
		ra.slot[v] = s
		return s
	}
	for _, iv := range intervals {
		expire(iv.start)
		if len(free) == 0 {
			// Spill the active interval with the furthest end.
			worst := -1
			for i, a := range active {
				if worst < 0 || a.end > active[worst].end {
					worst = i
				}
			}
			if active[worst].end > iv.end {
				victim := active[worst]
				spillSlot(victim.vreg)
				delete(ra.phys, victim.vreg)
				ra.phys[iv.vreg] = victim.reg
				active[worst] = activeRange{interval: iv, reg: victim.reg}
			} else {
				spillSlot(iv.vreg)
			}
			continue
		}
		r := free[len(free)-1]
		free = free[:len(free)-1]
		ra.phys[iv.vreg] = r
		active = append(active, activeRange{interval: iv, reg: r})
	}
	return ra
}

// intervalsOf computes live ranges from a function's quads in the module.
func (c *compiler) intervalsOf(fnIdx int) []interval {
	sp := c.sp
	meta := c.f.Get(sMeta)
	module := c.f.Get(sModule)
	off := int(sp.Load(meta + appkit.Ptr(fnIdx*metaEntry)))
	nq := int(sp.Load(meta + appkit.Ptr(fnIdx*metaEntry+4)))
	nparams := int(sp.Load(meta + appkit.Ptr(fnIdx*metaEntry+8)))

	touch := map[int]*interval{}
	note := func(v, at int) {
		iv := touch[v]
		if iv == nil {
			touch[v] = &interval{vreg: v, start: at, end: at}
			return
		}
		if at > iv.end {
			iv.end = at
		}
	}
	for p := 0; p < nparams; p++ {
		note(p, -1)
	}
	for q := 0; q < nq; q++ {
		base := module + appkit.Ptr((off+q)*quadBytes)
		op := int32(sp.Load(base))
		a := int(int32(sp.Load(base + 4)))
		b := int(int32(sp.Load(base + 8)))
		dst := int(int32(sp.Load(base + 12)))
		switch op {
		case irConst:
			note(dst, q)
		case irMov, irNeg:
			note(a, q)
			note(dst, q)
		case irAdd, irSub, irMul, irDiv, irMod, irLt, irLe, irEq, irNe:
			note(a, q)
			note(b, q)
			note(dst, q)
		case irJz, irParam, irRet:
			note(a, q)
		case irCall:
			note(dst, q)
		case irLoadG:
			note(dst, q)
		case irStoreG:
			note(a, q)
		}
	}
	// Jumps can re-enter earlier code (while loops), so any vreg live at a
	// backward branch target must stay live through the branch: extend
	// every interval that spans a loop to the loop's last quad.
	for q := 0; q < nq; q++ {
		base := module + appkit.Ptr((off+q)*quadBytes)
		op := int32(sp.Load(base))
		if op != irJmp && op != irJz {
			continue
		}
		target := int(sp.Load(base + 8))
		if target >= q {
			continue // forward branch
		}
		for _, iv := range touch {
			if iv.start <= q && iv.end >= target && iv.end < q {
				iv.end = q
			}
		}
	}
	out := make([]interval, 0, len(touch))
	for _, iv := range touch {
		out = append(out, *iv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].vreg < out[j].vreg })
	return out
}

var asmOpNames = map[int32]string{
	irAdd: "add", irSub: "sub", irMul: "smul", irDiv: "sdiv", irMod: "srem",
	irLt: "slt", irLe: "sle", irEq: "seq", irNe: "sne",
}

// EmitAsm lowers the compiled module to pseudo-SPARC text.
func (c *compiler) EmitAsm() string {
	sp := c.sp
	meta := c.f.Get(sMeta)
	module := c.f.Get(sModule)
	var b strings.Builder

	for fn := 0; fn < c.nfns; fn++ {
		off := int(sp.Load(meta + appkit.Ptr(fn*metaEntry)))
		nq := int(sp.Load(meta + appkit.Ptr(fn*metaEntry+4)))
		nparams := int(sp.Load(meta + appkit.Ptr(fn*metaEntry+8)))
		ra := linearScan(c.intervalsOf(fn))

		fmt.Fprintf(&b, "f%d:  ! %d params, %d quads, %d spill slots\n",
			fn, nparams, nq, ra.slots)

		// use returns the operand register for vreg v, reloading spills
		// into a scratch register first.
		use := func(v, scratch int) string {
			if r, ok := ra.phys[v]; ok {
				return fmt.Sprintf("%%l%d", r)
			}
			s := ra.slot[v]
			fmt.Fprintf(&b, "\tld [%%fp-%d], %%g%d\n", 4*(s+1), scratch+1)
			return fmt.Sprintf("%%g%d", scratch+1)
		}
		// def returns the destination register for v and the store that
		// must follow if v is spilled.
		def := func(v int) (string, string) {
			if r, ok := ra.phys[v]; ok {
				return fmt.Sprintf("%%l%d", r), ""
			}
			s := ra.slot[v]
			return "%g1", fmt.Sprintf("\tst %%g1, [%%fp-%d]\n", 4*(s+1))
		}
		// Parameters arrive in %i0..: move them to their homes.
		for p := 0; p < nparams; p++ {
			dst, fix := def(p)
			fmt.Fprintf(&b, "\tmov %%i%d, %s\n", p, dst)
			b.WriteString(fix)
		}

		for q := 0; q < nq; q++ {
			base := module + appkit.Ptr((off+q)*quadBytes)
			op := int32(sp.Load(base))
			a := int(int32(sp.Load(base + 4)))
			bb := int(int32(sp.Load(base + 8)))
			dst := int(int32(sp.Load(base + 12)))
			fmt.Fprintf(&b, ".L%d_%d:\n", fn, q)
			switch op {
			case irConst:
				d, fix := def(dst)
				fmt.Fprintf(&b, "\tset %d, %s\n", a, d)
				b.WriteString(fix)
			case irMov:
				s := use(a, 0)
				d, fix := def(dst)
				fmt.Fprintf(&b, "\tmov %s, %s\n", s, d)
				b.WriteString(fix)
			case irNeg:
				s := use(a, 0)
				d, fix := def(dst)
				fmt.Fprintf(&b, "\tneg %s, %s\n", s, d)
				b.WriteString(fix)
			case irAdd, irSub, irMul, irDiv, irMod, irLt, irLe, irEq, irNe:
				s1 := use(a, 0)
				s2 := use(bb, 1)
				d, fix := def(dst)
				fmt.Fprintf(&b, "\t%s %s, %s, %s\n", asmOpNames[op], s1, s2, d)
				b.WriteString(fix)
			case irJz:
				s := use(a, 0)
				fmt.Fprintf(&b, "\tbeqz %s, .L%d_%d\n", s, fn, bb)
			case irJmp:
				fmt.Fprintf(&b, "\tb .L%d_%d\n", fn, bb)
			case irParam:
				s := use(a, 0)
				fmt.Fprintf(&b, "\tparam %s\n", s)
			case irCall:
				d, fix := def(dst)
				fmt.Fprintf(&b, "\tcall f%d, %d\n\tmov %%o0, %s\n", a, bb, d)
				b.WriteString(fix)
			case irRet:
				s := use(a, 0)
				fmt.Fprintf(&b, "\tret %s\n", s)
			case irLoadG:
				d, fix := def(dst)
				fmt.Fprintf(&b, "\tldg g%d, %s\n", a, d)
				b.WriteString(fix)
			case irStoreG:
				s := use(a, 0)
				fmt.Fprintf(&b, "\tstg %s, g%d\n", s, bb)
			default:
				panic("minicc: bad opcode in asm emitter")
			}
		}
	}
	return b.String()
}

// CompileToAsm compiles src once on an unsafe region environment and
// returns the pseudo-SPARC text plus main's result (validated by running
// the emitted assembly through RunAsm).
func CompileToAsm(src []byte) (string, int32) {
	e := appkit.NewRegionEnv("unsafe", appkit.Config{})
	var text string
	c := &compiler{e: e, sp: e.Space(), asmOut: &text}
	c.registerCleanups()
	c.f = e.PushFrame(numSlots)
	defer e.PopFrame()
	c.compileFile(src)
	return text, RunAsm(text, fmt.Sprintf("f%d", c.asmMain), nGlobals)
}
