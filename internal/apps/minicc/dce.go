package minicc

import "regions/internal/apps/appkit"

// Dead-code elimination over one function's quads, run after generation
// and before the copy into the module image. A quad is dead when it has no
// side effect (constants, moves, negation, arithmetic, comparisons, global
// loads) and its destination register is never read anywhere in the
// function — a flow-insensitive criterion that is sound and, with the
// generated programs' unused locals, productive. Removing a quad renumbers
// the rest, so branch targets are remapped; execution falls through to the
// next surviving quad, which preserves semantics because removed quads are
// effect-free.

type quad struct {
	op, a, b, dst int32
}

// pureOps have no side effects beyond writing dst.
func pureOp(op int32) bool {
	switch op {
	case irConst, irMov, irNeg, irAdd, irSub, irMul, irDiv, irMod,
		irLt, irLe, irEq, irNe, irLoadG:
		return true
	}
	return false
}

// readsOf appends the registers a quad reads to dst.
func (q quad) readsOf(out []int32) []int32 {
	switch q.op {
	case irMov, irNeg, irJz, irParam, irRet, irStoreG:
		out = append(out, q.a)
	case irAdd, irSub, irMul, irDiv, irMod, irLt, irLe, irEq, irNe:
		out = append(out, q.a, q.b)
	}
	return out
}

// eliminateDead compacts the current function's quad chunks in place and
// updates c.nq. It returns the number of removed quads.
func (c *compiler) eliminateDead() int {
	if c.noDCE {
		return 0
	}
	sp := c.sp

	// Read the quads out of the chunk list (compiler work: heap loads).
	quads := make([]quad, c.nq)
	for i := range quads {
		chunk := c.chunks[i/quadsPerChunk]
		base := chunk + qcQuads + appkit.Ptr(i%quadsPerChunk*quadBytes)
		quads[i] = quad{
			op:  int32(sp.Load(base)),
			a:   int32(sp.Load(base + 4)),
			b:   int32(sp.Load(base + 8)),
			dst: int32(sp.Load(base + 12)),
		}
	}

	// Fixpoint: drop pure quads whose destination is never read.
	live := make([]bool, len(quads))
	for i := range live {
		live[i] = true
	}
	// Division and modulo may trap at run time; folding already proved
	// constant divisors, but a variable divisor could be zero, so those
	// stay even when dead — matching the conservative choice a C compiler
	// must make for trapping instructions.
	removable := func(q quad) bool {
		return pureOp(q.op) && q.op != irDiv && q.op != irMod
	}
	removed := 0
	for changed := true; changed; {
		changed = false
		read := map[int32]bool{}
		var scratch []int32
		for i, q := range quads {
			if !live[i] {
				continue
			}
			scratch = q.readsOf(scratch[:0])
			for _, r := range scratch {
				read[r] = true
			}
		}
		for i, q := range quads {
			if live[i] && removable(q) && !read[q.dst] {
				live[i] = false
				removed++
				changed = true
			}
		}
	}
	if removed == 0 {
		return 0
	}

	// Remap branch targets: new index = survivors before the old target.
	before := make([]int32, len(quads)+1)
	for i, l := range live {
		before[i+1] = before[i]
		if l {
			before[i+1]++
		}
	}
	var out []quad
	for i, q := range quads {
		if !live[i] {
			continue
		}
		if q.op == irJz || q.op == irJmp {
			q.b = before[q.b]
		}
		out = append(out, q)
	}

	// Write the compacted quads back into the chunks.
	for i, q := range out {
		chunk := c.chunks[i/quadsPerChunk]
		base := chunk + qcQuads + appkit.Ptr(i%quadsPerChunk*quadBytes)
		sp.Store(base, uint32(q.op))
		sp.Store(base+4, uint32(q.a))
		sp.Store(base+8, uint32(q.b))
		sp.Store(base+12, uint32(q.dst))
	}
	// Fix the chunk fill counts so the module copy stops at the new end.
	for i, chunk := range c.chunks {
		used := len(out) - i*quadsPerChunk
		if used < 0 {
			used = 0
		}
		if used > quadsPerChunk {
			used = quadsPerChunk
		}
		sp.Store(chunk+qcUsed, uint32(used))
	}
	c.nq = len(out)
	return removed
}
