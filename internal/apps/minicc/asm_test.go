package minicc

import (
	"fmt"
	"strings"
	"testing"

	"regions/internal/apps/appkit"
)

// compileBoth compiles src and returns the quad interpreter's result plus
// the emitted assembly and main's label.
func compileBoth(t *testing.T, src string) (int32, string, string) {
	t.Helper()
	e := appkit.NewRegionEnv("unsafe", appkit.Config{})
	var text string
	c := &compiler{e: e, sp: e.Space(), asmOut: &text}
	c.registerCleanups()
	c.f = e.PushFrame(numSlots)
	defer e.PopFrame()
	result, _ := c.compileFile([]byte(src))
	return result, text, fmt.Sprintf("f%d", c.asmMain)
}

func TestAsmMatchesInterpreter(t *testing.T) {
	cases := []string{
		"int main() { return 42; }",
		"int main() { return (2 + 3 * 4); }",
		"int main() { return (-(17 % 5)); }",
		"int main() { if (1 < 2) { return 10; } else { return 20; } return 0; }",
		"int main() { int i = 0; int s = 0; while (i < 7) { s = (s + i); i = (i + 1); } return s; }",
		"int f(int p0, int p1) { return (p0 * p1); } int main() { return f(6, 7); }",
		"int g; int set(int p0) { g = p0; return 0; } int main() { int x = set(9); return (g + x); }",
		"int add(int p0) { return (p0 + 1); } int main() { return add(add(add(0))); }",
	}
	for _, src := range cases {
		want, text, mainLabel := compileBoth(t, src)
		got := RunAsm(text, mainLabel, nGlobals)
		if got != want {
			t.Errorf("%s: asm=%d interp=%d\n%s", src, got, want, text)
		}
	}
}

// TestAsmSpillPaths forces register pressure far beyond the six allocatable
// registers: many simultaneously-live locals, all used at the end.
func TestAsmSpillPaths(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("int main() {\n")
	const n = 18
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "  int v%d = %d;\n", i, i+1)
	}
	sb.WriteString("  int sum = 0;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "  sum = (sum + (v%d * %d));\n", i, i+1)
	}
	sb.WriteString("  return sum; }\n")

	want, text, mainLabel := compileBoth(t, sb.String())
	if !strings.Contains(text, "[%fp-") {
		t.Fatal("no spill code generated under heavy register pressure")
	}
	if got := RunAsm(text, mainLabel, nGlobals); got != want {
		t.Fatalf("asm=%d interp=%d", got, want)
	}
	// Only the six allocatable plus two scratch registers may appear.
	for _, bad := range []string{"%l6", "%l7", "%l8", "%g3"} {
		if strings.Contains(text, bad) {
			t.Fatalf("illegal register %s in output", bad)
		}
	}
}

func TestAsmLoopsWithSpills(t *testing.T) {
	// Loop-carried locals under pressure: the interval extension across
	// backward branches must keep them alive.
	var sb strings.Builder
	sb.WriteString("int main() {\n")
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&sb, "  int k%d = %d;\n", i, i)
	}
	sb.WriteString("  int i = 0; int s = 0;\n")
	sb.WriteString("  while (i < 5) {\n    s = (s + (((k0 + k1) + (k2 + k3)) + (((k4 + k5) + (k6 + k7)) + (k8 + k9))));\n    i = (i + 1);\n  }\n")
	sb.WriteString("  return s; }\n")
	want, text, mainLabel := compileBoth(t, sb.String())
	if got := RunAsm(text, mainLabel, nGlobals); got != want {
		t.Fatalf("asm=%d interp=%d\n%s", got, want, text)
	}
	if want != 5*45 {
		t.Fatalf("sanity: want=%d", want)
	}
}

// TestAsmWholeProgramDifferential runs the full generated program and
// several fuzz seeds through both back ends.
func TestAsmWholeProgramDifferential(t *testing.T) {
	srcs := [][]byte{Source()}
	for seed := uint32(30); seed < 34; seed++ {
		srcs = append(srcs, SourceSeeded(seed))
	}
	for i, src := range srcs {
		want, text, mainLabel := compileBoth(t, string(src))
		if got := RunAsm(text, mainLabel, nGlobals); got != want {
			t.Fatalf("program %d: asm=%d interp=%d", i, got, want)
		}
	}
}

func TestCompileToAsm(t *testing.T) {
	text, result := CompileToAsm([]byte("int main() { return (6 * 7); }"))
	if result != 42 {
		t.Fatalf("result=%d", result)
	}
	if !strings.Contains(text, "f0:") || !strings.Contains(text, "ret") {
		t.Fatalf("suspicious asm:\n%s", text)
	}
}
