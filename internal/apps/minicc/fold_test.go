package minicc

import (
	"fmt"
	"testing"
	"testing/quick"

	"regions/internal/apps/appkit"
)

// compileCounted compiles src and returns main's result plus the module's
// quad count, with folding optionally disabled.
func compileCounted(t *testing.T, src string, noFold bool) (int32, int) {
	t.Helper()
	e := appkit.NewRegionEnv("unsafe", appkit.Config{})
	c := &compiler{e: e, sp: e.Space(), noFold: noFold}
	c.registerCleanups()
	c.f = e.PushFrame(numSlots)
	defer e.PopFrame()
	result, _ := c.compileFile([]byte(src))
	return result, c.quadOff
}

func TestFoldingPreservesSemantics(t *testing.T) {
	cases := []string{
		"int main() { return (2 + 3 * 4); }",
		"int main() { return ((1 + 2) * (3 + 4)); }",
		"int main() { return (-(2 + 3)); }",
		"int main() { return (100 / 7 + 100 % 7); }",
		"int main() { return (1 < 2); }",
		"int main() { if ((2 * 3) == 6) { return 1; } return 0; }",
		"int main() { int x = (5 * 5); return (x + (2 - 2)); }",
		"int g; int main() { g = (7 * 3); return (g + (10 / 2)); }",
		"int f(int p0) { return (p0 * (2 + 2)); } int main() { return f(3); }",
		"int main() { int i = 0; int s = 0; while (i < (2 + 3)) { s = (s + (1 * 2)); i = (i + 1); } return s; }",
	}
	for _, src := range cases {
		folded, fq := compileCounted(t, src, false)
		plain, pq := compileCounted(t, src, true)
		if folded != plain {
			t.Errorf("%s: folded=%d plain=%d", src, folded, plain)
		}
		if fq > pq {
			t.Errorf("%s: folding grew code %d -> %d quads", src, pq, fq)
		}
	}
}

func TestFoldingShrinksConstantExpressions(t *testing.T) {
	src := "int main() { return (((1 + 2) * (3 + 4)) - (5 * (6 + 7))); }"
	_, folded := compileCounted(t, src, false)
	_, plain := compileCounted(t, src, true)
	if folded >= plain {
		t.Fatalf("folding did not shrink: %d vs %d quads", folded, plain)
	}
	// Fully constant body: one const load, one ret, plus the epilogue.
	if folded > 4 {
		t.Fatalf("fully constant main compiled to %d quads", folded)
	}
}

func TestFoldingLeavesDivisionByZeroForRuntime(t *testing.T) {
	// (1 / 0) must not be folded away silently; it still compiles and only
	// traps if executed.
	src := "int main() { if (0 != 0) { return (1 / 0); } return 9; }"
	got, _ := compileCounted(t, src, false)
	if got != 9 {
		t.Fatalf("got %d", got)
	}
}

func TestFoldingWholeProgramMatches(t *testing.T) {
	// The generated 2000-line program must compute the same result with
	// and without the optimizer.
	src := string(Source())
	folded, fq := compileCounted(t, src, false)
	plain, pq := compileCounted(t, src, true)
	if folded != plain {
		t.Fatalf("folded=%d plain=%d", folded, plain)
	}
	if fq >= pq {
		t.Fatalf("no code shrink on the generated program: %d vs %d", fq, pq)
	}
	t.Logf("quads: %d unoptimized -> %d folded (%.1f%% smaller)",
		pq, fq, 100*(1-float64(fq)/float64(pq)))
}

func TestQuickEvalConstMatchesInterpreter(t *testing.T) {
	ops := []uint32{irAdd, irSub, irMul, irDiv, irMod, irLt, irLe, irEq, irNe}
	err := quick.Check(func(a, b int32, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		v, ok := evalConst(op, a, b)
		if (op == irDiv || op == irMod) && b == 0 {
			return !ok
		}
		if !ok {
			return false
		}
		// Compile a program computing the same expression at runtime
		// (folding disabled) and compare.
		opStr := map[uint32]string{
			irAdd: "+", irSub: "-", irMul: "*", irDiv: "/", irMod: "%",
			irLt: "<", irLe: "<=", irEq: "==", irNe: "!=",
		}[op]
		src := fmt.Sprintf(
			"int id(int p0) { return p0; } int main() { return (id(%s) %s id(%s)); }",
			lit(a), opStr, lit(b))
		got, _ := compileCounted(t, src, true)
		return got == v
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// lit renders a possibly-negative literal with the grammar's unary minus.
func lit(v int32) string {
	if v < 0 {
		if v == -2147483648 {
			return "(-2147483647 - 1)"
		}
		return fmt.Sprintf("(-%d)", -v)
	}
	return fmt.Sprintf("%d", v)
}
