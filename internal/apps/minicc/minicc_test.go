package minicc

import (
	"strings"
	"testing"

	"regions/internal/apps/appkit"
)

func TestSourceShape(t *testing.T) {
	src := string(Source())
	if n := strings.Count(src, "\n"); n < 800 {
		t.Fatalf("source has %d lines, want well over 800", n)
	}
	if !strings.Contains(src, "int main()") {
		t.Fatal("no main")
	}
	if src != string(Source()) {
		t.Fatal("source not deterministic")
	}
}

// compileOne compiles an arbitrary program and returns main's result.
func compileOne(t *testing.T, src string) int32 {
	t.Helper()
	e := appkit.NewRegionEnv("unsafe", appkit.Config{})
	c := &compiler{e: e, sp: e.Space()}
	c.registerCleanups()
	c.f = e.PushFrame(numSlots)
	defer e.PopFrame()
	result, _ := c.compileFile([]byte(src))
	return result
}

func TestCompilerSemantics(t *testing.T) {
	cases := []struct {
		src  string
		want int32
	}{
		{"int main() { return 42; }", 42},
		{"int main() { return (2 + 3); }", 5},
		{"int main() { return (10 - 4); }", 6},
		{"int main() { return (6 * 7); }", 42},
		{"int main() { return (17 / 5); }", 3},
		{"int main() { return (17 % 5); }", 2},
		{"int main() { return (3 < 4); }", 1},
		{"int main() { return (4 <= 4); }", 1},
		{"int main() { return (4 == 5); }", 0},
		{"int main() { return (4 != 5); }", 1},
		{"int main() { return (-7); }", -7},
		{"int main() { int x = 5; x = (x + 1); return x; }", 6},
		{"int main() { if (1 < 2) { return 10; } else { return 20; } return 0; }", 10},
		{"int main() { if (2 < 1) { return 10; } else { return 20; } return 0; }", 20},
		{"int main() { if (2 < 1) { return 10; } return 30; }", 30},
		{"int main() { int i = 0; int s = 0; while (i < 5) { s = (s + i); i = (i + 1); } return s; }", 10},
		{"int f(int p0) { return (p0 * p0); } int main() { return f(9); }", 81},
		{"int f(int p0, int p1) { return (p0 - p1); } int main() { return f(10, 3); }", 7},
		{"int g; int main() { g = 17; return (g + 1); }", 18},
		{"int g; int set(int p0) { g = p0; return 0; } int main() { int x = set(9); return g; }", 9},
		{"int add(int p0) { return (p0 + 1); } int main() { return add(add(add(0))); }", 3},
		{"int main() { return (2 + 3 * 4); }", 14},
		{"int main() { return ((2 + 3) * 4); }", 20},
		{"int main() { return (1 < 2 + 3); }", 1},
	}
	for _, tc := range cases {
		if got := compileOne(t, tc.src); got != tc.want {
			t.Errorf("%s = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestCompilerErrors(t *testing.T) {
	cases := []string{
		"int main() { return nope; }",
		"int main() { nope = 3; return 0; }",
		"int main() { return f(1); }",
		"int f(int p0) { return p0; } int main() { return f(1, 2); }",
		"int g; int g; int main() { return 0; }",
	}
	for _, src := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %q", src)
				}
			}()
			compileOne(t, src)
		}()
	}
}

func TestLocalShadowsGlobal(t *testing.T) {
	src := "int g; int main() { g = 5; int g = 7; return g; }"
	if got := compileOne(t, src); got != 7 {
		t.Fatalf("shadowing: got %d, want 7", got)
	}
}

func TestAllRegionEnvsAgree(t *testing.T) {
	var want uint32
	first := true
	for _, kind := range appkit.RegionKinds {
		e := appkit.NewRegionEnv(kind, appkit.Config{})
		got := RunRegion(e, 1)
		if first {
			want, first = got, false
			continue
		}
		if got != want {
			t.Fatalf("%s checksum %#x, want %#x", kind, got, want)
		}
	}
}

func TestRegionRotationAndNoLeaks(t *testing.T) {
	e := appkit.NewRegionEnv("safe", appkit.Config{})
	RunRegion(e, 1)
	c := e.Counters()
	if c.LiveRegions != 0 || c.LiveBytes != 0 {
		t.Fatalf("live regions=%d bytes=%d", c.LiveRegions, c.LiveBytes)
	}
	// File region + working regions rotated every ~100 statements: the
	// paper's lcc shows very few live regions but multiple created.
	if c.RegionsCreated < 5 {
		t.Fatalf("only %d regions created; rotation not happening", c.RegionsCreated)
	}
	if c.MaxLiveRegions > 3 {
		t.Fatalf("max live regions %d, want <= 3 as in the paper", c.MaxLiveRegions)
	}
}

func TestLongFunctionSpansChunks(t *testing.T) {
	// A function with > quadsPerChunk quads exercises chunked emission and
	// jump patching across chunks.
	var sb strings.Builder
	sb.WriteString("int main() { int s = 0;\n")
	for i := 0; i < 30; i++ {
		sb.WriteString("  if (s <= 1000) { s = (s + 3); } else { s = (s + 1); }\n")
	}
	sb.WriteString("  return s; }")
	if got := compileOne(t, sb.String()); got != 90 {
		t.Fatalf("got %d, want 90", got)
	}
}

func TestWhileLoopAggregation(t *testing.T) {
	src := `int sum(int p0) { int i = 0; int s = 0; while (i < p0) { s = (s + i); i = (i + 1); } return s; }
int main() { return (sum(10) + sum(4)); }`
	if got := compileOne(t, src); got != 45+6 {
		t.Fatalf("got %d, want 51", got)
	}
}
