package minicc

import (
	"fmt"

	"regions/internal/apps/appkit"
	"regions/internal/mem"
)

// Heap object layouts (byte offsets).
//
// Interned name (file region): +0 next in bucket, +4 length, +8 chars.
// Environment entry: +0 next, +4 name, +8 kind, +12 index, +16 arity.
// AST node: +0 kind (low byte; binary nodes carry the operator in the
// second byte), +4/+8/+12 operands. Cons cell: +0 car, +4 cdr.
// Quad chunk: +0 next, +4 quads used, +8 quads (16 bytes each).
const (
	nmNext, nmLen, nmChars = 0, 4, 8

	enNext, enName, enKind, enIdx, enArity = 0, 4, 8, 12, 16
	envEntrySize                           = 20

	kGlobalVar = 1
	kLocalVar  = 2
	kFunc      = 3

	aKind, aA, aB, aC = 0, 4, 8, 12
	nodeSize          = 16

	eNum    = 1
	eVar    = 2
	eBin    = 3 // operator in kind byte 1 (an irAdd..irNe value)
	eNeg    = 4
	eCall   = 5
	sDecl   = 6
	sAssign = 7
	sIf     = 8
	sWhile  = 9
	sRet    = 10
	sBlock  = 11
	fnAst   = 12 // a=name, b=params cons, c=body block

	qcNext, qcUsed, qcQuads = 0, 4, 8
	quadsPerChunk           = 16

	nameBuckets = 128
	maxFns      = 256
	maxQuads    = 64 * 1024
	metaEntry   = 16 // quad offset, nquads, nparams, nregs
	nGlobals    = 8
)

// Frame slot layout.
const (
	sNames   = iota
	sGlobals // global data array
	sModule  // quad image
	sMeta
	sEnv    // current environment chain head
	sGEnv   // global environment chain head
	sFn     // current function's AST
	sChunks // current function's quad chunks
	sScr1
	sScr2
	numSlots
)

type compiler struct {
	e  appkit.RegionEnv
	sp *mem.Space
	f  appkit.Frame

	clnName, clnEnv, clnNode, clnCons, clnChunk, clnPtr appkit.CleanupID

	file appkit.BoundRegion // file-wide data
	work appkit.BoundRegion // rolling per-~100-statements region

	chunks []appkit.Ptr // host mirror of the quad chunk list
	nq     int          // quads emitted for the current function
	nregs  int

	nfns     int
	quadOff  int // module fill, in quads
	stmts    int // statements since the last region rotation
	allStmts int

	toks []token
	pos  int

	// noFold and noDCE disable the optimization passes (differential tests).
	noFold bool
	noDCE  bool
	// asmOut, when non-nil, receives the pseudo-SPARC text of the compiled
	// module (emitted before the file region is torn down); asmMain gets
	// main's function index.
	asmOut  *string
	asmMain int
}

// RunRegion compiles the generated source file scale times, executing the
// produced code once per compile.
func RunRegion(e appkit.RegionEnv, scale int) uint32 {
	src := Source()
	c := &compiler{e: e, sp: e.Space()}
	c.registerCleanups()
	h := uint32(2166136261)
	for i := 0; i < scale; i++ {
		c.f = e.PushFrame(numSlots)
		result, modHash := c.compileFile(src)
		mix(&h, uint32(result))
		mix(&h, modHash)
		e.PopFrame()
		e.Safepoint()
	}
	e.Finalize()
	return h
}

func (c *compiler) registerCleanups() {
	e := c.e
	c.clnName = e.RegisterCleanup("minicc.name", func(e appkit.RegionEnv, o appkit.Ptr) int {
		e.Destroy(e.Space().Load(o + nmNext))
		return nmChars + int(e.Space().Load(o+nmLen)+3)&^3
	})
	c.clnEnv = e.RegisterCleanup("minicc.env", func(e appkit.RegionEnv, o appkit.Ptr) int {
		e.Destroy(e.Space().Load(o + enNext))
		e.Destroy(e.Space().Load(o + enName))
		return envEntrySize
	})
	c.clnNode = e.RegisterCleanup("minicc.node", func(e appkit.RegionEnv, o appkit.Ptr) int {
		sp := e.Space()
		switch sp.Load(o+aKind) & 0xff {
		case eNum:
		case eVar:
			e.Destroy(sp.Load(o + aA))
		default:
			e.Destroy(sp.Load(o + aA))
			e.Destroy(sp.Load(o + aB))
			e.Destroy(sp.Load(o + aC))
		}
		return nodeSize
	})
	c.clnCons = e.RegisterCleanup("minicc.cons", func(e appkit.RegionEnv, o appkit.Ptr) int {
		e.Destroy(e.Space().Load(o))
		e.Destroy(e.Space().Load(o + 4))
		return 8
	})
	c.clnChunk = e.RegisterCleanup("minicc.chunk", func(e appkit.RegionEnv, o appkit.Ptr) int {
		e.Destroy(e.Space().Load(o + qcNext))
		return qcQuads + quadsPerChunk*quadBytes
	})
	c.clnPtr = e.RegisterCleanup("minicc.ptr", func(e appkit.RegionEnv, o appkit.Ptr) int {
		e.Destroy(e.Space().Load(o))
		return 4
	})
}

// --- lexer ------------------------------------------------------------------

type token struct {
	kind string // "num", "id", or the punctuation/operator itself
	num  int32
	text string
}

func (c *compiler) lex(text appkit.Ptr, n int) []token {
	sp := c.sp
	var toks []token
	i := 0
	read := func(k int) byte {
		if k >= n {
			return 0
		}
		return sp.LoadByte(text + appkit.Ptr(k))
	}
	for i < n {
		b := read(i)
		switch {
		case b == ' ' || b == '\n' || b == '\t':
			i++
		case b >= '0' && b <= '9':
			v := int32(0)
			for i < n && read(i) >= '0' && read(i) <= '9' {
				v = v*10 + int32(read(i)-'0')
				i++
			}
			toks = append(toks, token{kind: "num", num: v})
		case b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b == '_':
			var sb []byte
			for i < n {
				d := read(i)
				if !(d >= 'a' && d <= 'z' || d >= 'A' && d <= 'Z' || d >= '0' && d <= '9' || d == '_') {
					break
				}
				sb = append(sb, d)
				i++
			}
			toks = append(toks, token{kind: "id", text: string(sb)})
		default:
			two := string([]byte{b, read(i + 1)})
			switch two {
			case "<=", "==", "!=":
				toks = append(toks, token{kind: two})
				i += 2
			default:
				switch b {
				case '(', ')', '{', '}', ';', ',', '+', '-', '*', '/', '%', '<', '=':
					toks = append(toks, token{kind: string(b)})
					i++
				default:
					panic(fmt.Sprintf("minicc: bad character %q at %d", b, i))
				}
			}
		}
	}
	return toks
}

// --- names and environments --------------------------------------------------

func hashStr(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// internName returns the interned name object (file region).
func (c *compiler) internName(name string) appkit.Ptr {
	sp := c.sp
	table := c.f.Get(sNames)
	b := table + appkit.Ptr(hashStr(name)%nameBuckets*4)
	for s := sp.Load(b); s != 0; s = sp.Load(s + nmNext) {
		if int(sp.Load(s+nmLen)) == len(name) &&
			string(appkit.LoadBytes(sp, s+nmChars, len(name))) == name {
			return s
		}
	}
	s := c.file.Alloc(nmChars+(len(name)+3)&^3, c.clnName)
	c.e.StorePtr(s+nmNext, sp.Load(b))
	sp.Store(s+nmLen, uint32(len(name)))
	appkit.StoreBytes(sp, s+nmChars, []byte(name))
	c.e.StorePtr(b, s)
	return s
}

// bind pushes an environment entry. Global entries go in the file region,
// local entries in the working region (they die with the function).
func (c *compiler) bind(global bool, name appkit.Ptr, kind, idx, arity int) {
	reg, slot := c.work, sEnv
	if global {
		reg, slot = c.file, sGEnv
	}
	en := reg.Alloc(envEntrySize, c.clnEnv)
	c.e.StorePtr(en+enNext, c.f.Get(slot))
	c.e.StorePtr(en+enName, name)
	c.sp.Store(en+enKind, uint32(kind))
	c.sp.Store(en+enIdx, uint32(idx))
	c.sp.Store(en+enArity, uint32(arity))
	c.f.Set(slot, en)
}

// lookup resolves a name: locals first, then globals.
func (c *compiler) lookup(name appkit.Ptr) (kind, idx, arity int, ok bool) {
	sp := c.sp
	for _, slot := range []int{sEnv, sGEnv} {
		for en := c.f.Get(slot); en != 0; en = sp.Load(en + enNext) {
			if sp.Load(en+enName) == name {
				return int(sp.Load(en + enKind)), int(sp.Load(en + enIdx)),
					int(sp.Load(en + enArity)), true
			}
		}
	}
	return 0, 0, 0, false
}

func (c *compiler) nameStr(name appkit.Ptr) string {
	return string(appkit.LoadBytes(c.sp, name+nmChars, int(c.sp.Load(name+nmLen))))
}

// --- parser -----------------------------------------------------------------

func (c *compiler) peek() token {
	if c.pos >= len(c.toks) {
		return token{kind: "eof"}
	}
	return c.toks[c.pos]
}

func (c *compiler) nextT() token {
	if c.pos >= len(c.toks) {
		panic("minicc: unexpected end of input")
	}
	t := c.toks[c.pos]
	c.pos++
	return t
}

func (c *compiler) expect(kind string) token {
	t := c.nextT()
	if t.kind != kind {
		panic(fmt.Sprintf("minicc: expected %q, got %q %q", kind, t.kind, t.text))
	}
	return t
}

func (c *compiler) accept(kind string) bool {
	if c.pos < len(c.toks) && c.toks[c.pos].kind == kind {
		c.pos++
		return true
	}
	return false
}

func (c *compiler) node(kind uint32, a, b, d appkit.Ptr, ptrs int) appkit.Ptr {
	n := c.work.Alloc(nodeSize, c.clnNode)
	c.sp.Store(n+aKind, kind)
	// Fields that hold pointers must go through the barrier; immediates use
	// plain stores. ptrs is a bitmask of which of a, b, d are pointers.
	if ptrs&1 != 0 {
		c.e.StorePtr(n+aA, a)
	} else {
		c.sp.Store(n+aA, a)
	}
	if ptrs&2 != 0 {
		c.e.StorePtr(n+aB, b)
	} else {
		c.sp.Store(n+aB, b)
	}
	if ptrs&4 != 0 {
		c.e.StorePtr(n+aC, d)
	} else {
		c.sp.Store(n+aC, d)
	}
	return n
}

var binOps = map[string]uint32{
	"+": irAdd, "-": irSub, "*": irMul, "/": irDiv, "%": irMod,
	"<": irLt, "<=": irLe, "==": irEq, "!=": irNe,
}

// parseExpr: comparison over additive over multiplicative over unary.
func (c *compiler) parseExpr() appkit.Ptr {
	left := c.parseAdd()
	for {
		k := c.peek().kind
		if k != "<" && k != "<=" && k != "==" && k != "!=" {
			return left
		}
		c.nextT()
		right := c.parseAdd()
		left = c.node(eBin|binOps[k]<<8, left, right, 0, 3)
	}
}

func (c *compiler) parseAdd() appkit.Ptr {
	left := c.parseMul()
	for {
		k := c.peek().kind
		if k != "+" && k != "-" {
			return left
		}
		c.nextT()
		right := c.parseMul()
		left = c.node(eBin|binOps[k]<<8, left, right, 0, 3)
	}
}

func (c *compiler) parseMul() appkit.Ptr {
	left := c.parseUnary()
	for {
		k := c.peek().kind
		if k != "*" && k != "/" && k != "%" {
			return left
		}
		c.nextT()
		right := c.parseUnary()
		left = c.node(eBin|binOps[k]<<8, left, right, 0, 3)
	}
}

func (c *compiler) parseUnary() appkit.Ptr {
	if c.accept("-") {
		return c.node(eNeg, c.parseUnary(), 0, 0, 1)
	}
	return c.parsePrimary()
}

func (c *compiler) parsePrimary() appkit.Ptr {
	t := c.nextT()
	switch t.kind {
	case "num":
		return c.node(eNum, appkit.Ptr(uint32(t.num)), 0, 0, 0)
	case "id":
		name := c.internName(t.text)
		if c.accept("(") {
			var args, tail appkit.Ptr
			for !c.accept(")") {
				if args != 0 {
					c.expect(",")
				}
				cell := c.work.Alloc(8, c.clnCons)
				c.e.StorePtr(cell, c.parseExpr())
				if args == 0 {
					args = cell
					c.f.Set(sScr1, args)
				} else {
					c.e.StorePtr(tail+4, cell)
				}
				tail = cell
			}
			n := c.node(eCall, name, args, 0, 3)
			c.f.Set(sScr1, 0)
			return n
		}
		return c.node(eVar, name, 0, 0, 1)
	case "(":
		n := c.parseExpr()
		c.expect(")")
		return n
	}
	panic(fmt.Sprintf("minicc: unexpected token %q", t.kind))
}

// parseStmt returns one statement node and counts it.
func (c *compiler) parseStmt() appkit.Ptr {
	c.stmts++
	c.allStmts++
	switch {
	case c.accept("{"):
		var head, tail appkit.Ptr
		for !c.accept("}") {
			cell := c.work.Alloc(8, c.clnCons)
			if head == 0 {
				head = cell
				c.f.Set(sScr2, head)
			} else {
				c.e.StorePtr(tail+4, cell)
			}
			tail = cell
			c.e.StorePtr(cell, c.parseStmt())
		}
		n := c.node(sBlock, head, 0, 0, 1)
		c.f.Set(sScr2, 0)
		return n
	case c.peek().kind == "id" && c.peek().text == "int":
		c.nextT()
		name := c.internName(c.expect("id").text)
		c.expect("=")
		init := c.parseExpr()
		c.expect(";")
		return c.node(sDecl, name, init, 0, 3)
	case c.peek().kind == "id" && c.peek().text == "if":
		c.nextT()
		c.expect("(")
		cond := c.parseExpr()
		c.expect(")")
		c.f.Set(sScr1, cond)
		then := c.parseStmt()
		n := c.node(sIf, cond, then, 0, 7)
		c.f.Set(sScr1, n)
		if c.peek().kind == "id" && c.peek().text == "else" {
			c.nextT()
			c.e.StorePtr(n+aC, c.parseStmt())
		}
		c.f.Set(sScr1, 0)
		return n
	case c.peek().kind == "id" && c.peek().text == "while":
		c.nextT()
		c.expect("(")
		cond := c.parseExpr()
		c.expect(")")
		c.f.Set(sScr1, cond)
		body := c.parseStmt()
		n := c.node(sWhile, cond, body, 0, 3)
		c.f.Set(sScr1, 0)
		return n
	case c.peek().kind == "id" && c.peek().text == "return":
		c.nextT()
		n := c.node(sRet, c.parseExpr(), 0, 0, 1)
		c.expect(";")
		return n
	default:
		// Assignment: id = expr ;
		name := c.internName(c.expect("id").text)
		c.expect("=")
		val := c.parseExpr()
		c.expect(";")
		return c.node(sAssign, name, val, 0, 3)
	}
}

// parseTop parses one top-level declaration: a global or a function.
// It returns (fn AST, true) for functions, (0, false) for globals.
func (c *compiler) parseTop() (appkit.Ptr, bool) {
	if kw := c.expect("id").text; kw != "int" {
		panic("minicc: expected int at top level")
	}
	name := c.internName(c.expect("id").text)
	if c.accept(";") {
		// Global variable.
		if _, _, _, ok := c.lookup(name); ok {
			panic("minicc: duplicate global " + c.nameStr(name))
		}
		slot := 0
		for en := c.f.Get(sGEnv); en != 0; en = c.sp.Load(en + enNext) {
			if c.sp.Load(en+enKind) == kGlobalVar {
				slot++
			}
		}
		c.bind(true, name, kGlobalVar, slot, 0)
		return 0, false
	}
	c.expect("(")
	var params, tail appkit.Ptr
	nparams := 0
	for !c.accept(")") {
		if params != 0 {
			c.expect(",")
		}
		if kw := c.expect("id").text; kw != "int" {
			panic("minicc: expected int parameter")
		}
		cell := c.work.Alloc(8, c.clnCons)
		c.e.StorePtr(cell, c.internName(c.expect("id").text))
		if params == 0 {
			params = cell
			c.f.Set(sScr1, params)
		} else {
			c.e.StorePtr(tail+4, cell)
		}
		tail = cell
		nparams++
	}
	fn := c.node(fnAst, name, params, 0, 3)
	c.f.Set(sScr1, fn)
	body := c.parseStmt() // the brace block
	c.e.StorePtr(fn+aC, body)
	c.f.Set(sScr1, 0)
	return fn, true
}
