package minicc

import (
	"fmt"

	"regions/internal/apps/appkit"
)

// run executes function mainIdx of the compiled module, reading quads and
// globals out of the simulated heap. The generated programs contain only
// bounded loops; the step cap is defensive.
func (c *compiler) run(mainIdx int) int32 {
	sp := c.sp
	module := c.f.Get(sModule)
	meta := c.f.Get(sMeta)
	globals := c.f.Get(sGlobals)

	metaAt := func(idx, field int) int {
		return int(sp.Load(meta + appkit.Ptr(idx*metaEntry+field*4)))
	}
	quad := func(q, w int) int32 {
		return int32(sp.Load(module + appkit.Ptr(q*quadBytes+w*4)))
	}

	type frame struct {
		regs  []int32
		base  int // function-relative pc base (quad offset in module)
		pc    int // function-relative
		retTo *int32
	}
	var stack []*frame
	var pending []int32

	call := func(idx int, args []int32, retTo *int32) {
		if len(args) != metaAt(idx, 2) {
			panic(fmt.Sprintf("minicc vm: arity mismatch for f%d", idx))
		}
		fr := &frame{
			regs:  make([]int32, metaAt(idx, 3)),
			base:  metaAt(idx, 0),
			retTo: retTo,
		}
		copy(fr.regs, args)
		stack = append(stack, fr)
	}

	var result int32
	call(mainIdx, nil, &result)
	for steps := 0; len(stack) > 0; steps++ {
		if steps > 20_000_000 {
			panic("minicc vm: step limit exceeded")
		}
		fr := stack[len(stack)-1]
		q := fr.base + fr.pc
		op := quad(q, 0)
		a, b, dst := quad(q, 1), quad(q, 2), quad(q, 3)
		fr.pc++
		switch op {
		case irConst:
			fr.regs[dst] = a
		case irMov:
			fr.regs[dst] = fr.regs[a]
		case irAdd:
			fr.regs[dst] = fr.regs[a] + fr.regs[b]
		case irSub:
			fr.regs[dst] = fr.regs[a] - fr.regs[b]
		case irMul:
			fr.regs[dst] = fr.regs[a] * fr.regs[b]
		case irDiv:
			if fr.regs[b] == 0 {
				panic("minicc vm: division by zero")
			}
			fr.regs[dst] = fr.regs[a] / fr.regs[b]
		case irMod:
			if fr.regs[b] == 0 {
				panic("minicc vm: modulo by zero")
			}
			fr.regs[dst] = fr.regs[a] % fr.regs[b]
		case irLt:
			fr.regs[dst] = b2i(fr.regs[a] < fr.regs[b])
		case irLe:
			fr.regs[dst] = b2i(fr.regs[a] <= fr.regs[b])
		case irEq:
			fr.regs[dst] = b2i(fr.regs[a] == fr.regs[b])
		case irNe:
			fr.regs[dst] = b2i(fr.regs[a] != fr.regs[b])
		case irNeg:
			fr.regs[dst] = -fr.regs[a]
		case irJz:
			if fr.regs[a] == 0 {
				fr.pc = int(b)
			}
		case irJmp:
			fr.pc = int(b)
		case irParam:
			pending = append(pending, fr.regs[a])
		case irCall:
			args := make([]int32, b)
			copy(args, pending[len(pending)-int(b):])
			pending = pending[:len(pending)-int(b)]
			call(int(a), args, &fr.regs[dst])
		case irRet:
			v := fr.regs[a]
			*fr.retTo = v
			stack = stack[:len(stack)-1]
		case irLoadG:
			fr.regs[dst] = int32(sp.Load(globals + appkit.Ptr(a*4)))
		case irStoreG:
			sp.Store(globals+appkit.Ptr(b*4), uint32(fr.regs[a]))
		default:
			panic(fmt.Sprintf("minicc vm: bad opcode %d at quad %d", op, q))
		}
	}
	return result
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
