package minicc

import (
	"testing"

	"regions/internal/apps/appkit"
)

// compileSeeded compiles one seeded program on the given env and returns
// main's result plus the module hash.
func compileSeeded(e appkit.RegionEnv, seed uint32) (int32, uint32) {
	c := &compiler{e: e, sp: e.Space()}
	c.registerCleanups()
	c.f = e.PushFrame(numSlots)
	defer e.PopFrame()
	return c.compileFile(SourceSeeded(seed))
}

// TestFuzzSeededProgramsAcrossEnvs compiles randomly generated programs on
// three very different backends — the safe region runtime (which checks
// every deletion), the unsafe runtime, and the emulation library over the
// conservative collector — and requires identical results from all three.
func TestFuzzSeededProgramsAcrossEnvs(t *testing.T) {
	for seed := uint32(1); seed <= 6; seed++ {
		safeRes, safeHash := compileSeeded(appkit.NewRegionEnv("safe", appkit.Config{}), seed)
		unsafeRes, unsafeHash := compileSeeded(appkit.NewRegionEnv("unsafe", appkit.Config{}), seed)
		gcRes, gcHash := compileSeeded(appkit.NewRegionEnv("emu:GC", appkit.Config{}), seed)
		if safeRes != unsafeRes || safeHash != unsafeHash {
			t.Fatalf("seed %d: safe (%d,%#x) != unsafe (%d,%#x)",
				seed, safeRes, safeHash, unsafeRes, unsafeHash)
		}
		if safeRes != gcRes || safeHash != gcHash {
			t.Fatalf("seed %d: safe (%d,%#x) != emu:GC (%d,%#x)",
				seed, safeRes, safeHash, gcRes, gcHash)
		}
	}
}

// TestFuzzSeededProgramsFoldInvariance checks that the optimizer preserves
// the semantics of arbitrary generated programs.
func TestFuzzSeededProgramsFoldInvariance(t *testing.T) {
	for seed := uint32(10); seed <= 16; seed++ {
		src := string(SourceSeeded(seed))
		folded, fq := compileCounted(t, src, false)
		plain, pq := compileCounted(t, src, true)
		if folded != plain {
			t.Fatalf("seed %d: folded=%d plain=%d", seed, folded, plain)
		}
		if fq > pq {
			t.Fatalf("seed %d: folding grew code %d -> %d", seed, pq, fq)
		}
	}
}

// TestFuzzSeedsProduceDistinctPrograms guards the generator itself.
func TestFuzzSeedsProduceDistinctPrograms(t *testing.T) {
	a := string(SourceSeeded(1))
	b := string(SourceSeeded(2))
	if a == b {
		t.Fatal("different seeds generated identical programs")
	}
	if a != string(SourceSeeded(1)) {
		t.Fatal("generator not deterministic per seed")
	}
}
