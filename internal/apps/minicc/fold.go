package minicc

import "regions/internal/apps/appkit"

// Constant folding: binary operations and negations whose operands are
// literals are evaluated at compile time and rewritten in place to eNum
// nodes. The abandoned operand nodes simply die with the working region —
// a pass structure regions make particularly cheap, since no freeing
// accompanies the rewriting (lcc's own arenas serve the same role).

// foldExpr folds n in place and reports whether n is now a literal.
func (c *compiler) foldExpr(n appkit.Ptr) bool {
	sp := c.sp
	switch sp.Load(n+aKind) & 0xff {
	case eNum:
		return true
	case eVar:
		return false
	case eNeg:
		if c.foldExpr(sp.Load(n + aA)) {
			v := int32(sp.Load(sp.Load(n+aA) + aA))
			c.rewriteNum(n, -v)
			return true
		}
		return false
	case eBin:
		op := sp.Load(n+aKind) >> 8
		la := c.foldExpr(sp.Load(n + aA))
		lb := c.foldExpr(sp.Load(n + aB))
		if !la || !lb {
			return false
		}
		a := int32(sp.Load(sp.Load(n+aA) + aA))
		b := int32(sp.Load(sp.Load(n+aB) + aA))
		v, ok := evalConst(op, a, b)
		if !ok {
			return false // e.g. division by a constant zero: leave for runtime
		}
		c.rewriteNum(n, v)
		return true
	case eCall:
		for arg := sp.Load(n + aB); arg != 0; arg = sp.Load(arg + 4) {
			c.foldExpr(sp.Load(arg))
		}
		return false
	}
	panic("minicc: bad expression node in fold")
}

// rewriteNum turns n into a literal in place. The old operand subtrees
// become garbage inside the working region.
func (c *compiler) rewriteNum(n appkit.Ptr, v int32) {
	sp := c.sp
	sp.Store(n+aKind, eNum)
	// Clear the operand pointers through the barrier so the node's cleanup
	// (which now sees an eNum) stays consistent with the counts.
	c.e.StorePtr(n+aA, 0)
	c.e.StorePtr(n+aB, 0)
	c.e.StorePtr(n+aC, 0)
	sp.Store(n+aA, uint32(v))
}

// evalConst evaluates a folded binary operation with the interpreter's
// exact semantics.
func evalConst(op uint32, a, b int32) (int32, bool) {
	switch op {
	case irAdd:
		return a + b, true
	case irSub:
		return a - b, true
	case irMul:
		return a * b, true
	case irDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case irMod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case irLt:
		return b2i(a < b), true
	case irLe:
		return b2i(a <= b), true
	case irEq:
		return b2i(a == b), true
	case irNe:
		return b2i(a != b), true
	}
	return 0, false
}

// foldStmt runs constant folding over a statement subtree.
func (c *compiler) foldStmt(n appkit.Ptr) {
	sp := c.sp
	switch sp.Load(n+aKind) & 0xff {
	case sBlock:
		for s := sp.Load(n + aA); s != 0; s = sp.Load(s + 4) {
			c.foldStmt(sp.Load(s))
		}
	case sDecl, sAssign:
		c.foldExpr(sp.Load(n + aB))
	case sIf:
		c.foldExpr(sp.Load(n + aA))
		c.foldStmt(sp.Load(n + aB))
		if e := sp.Load(n + aC); e != 0 {
			c.foldStmt(e)
		}
	case sWhile:
		c.foldExpr(sp.Load(n + aA))
		c.foldStmt(sp.Load(n + aB))
	case sRet:
		c.foldExpr(sp.Load(n + aA))
	default:
		panic("minicc: bad statement node in fold")
	}
}
