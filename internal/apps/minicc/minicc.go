// Package minicc reimplements the paper's "lcc" benchmark: a C compiler
// compiling a large input file. lcc is the paper's own host compiler (its
// original already uses Hanson's arenas); since the full lcc cannot be
// rebuilt here, minicc is a compiler for a C subset with the same pipeline
// shape — lexer, recursive-descent parser building an AST, scoped symbol
// tables, a checking pass, and three-address code generation — compiling a
// generated ~2000-line program. A small interpreter executes the generated
// code so every compile is validated end to end.
//
// Region structure, from the paper's port: "we create a region for every
// hundred statements compiled rather than for every statement" — the
// compiler rotates its working region at function boundaries once a hundred
// statements have passed through it, while the file-wide data (global
// symbols, the code module) lives in a region of its own. The original
// lcc's malloc numbers come from the emulation library, marked with
// UsesEmulation.
package minicc

import (
	_ "embed"
	"fmt"

	"regions/internal/apps/appkit"
)

//go:embed region.go
var regionSource string

// App returns the lcc-stand-in benchmark descriptor.
func App() appkit.App {
	return appkit.App{
		Name:          "lcc",
		DefaultScale:  3, // compile the file this many times
		Region:        RunRegion,
		RegionSource:  regionSource,
		UsesEmulation: true,
	}
}

// Three-address code operations. Each instruction is four words:
// op, a, b, dst.
const (
	irConst = iota // a = immediate
	irMov          // dst = reg a
	irAdd
	irSub
	irMul
	irDiv // generator only emits nonzero constant divisors
	irMod
	irLt
	irLe
	irEq
	irNe
	irNeg    // dst = -a
	irJz     // if reg a == 0 jump to quad b (function-relative)
	irJmp    // jump to quad b
	irParam  // push reg a as the next call argument
	irCall   // a = function index, b = argc
	irRet    // return reg a
	irLoadG  // dst = globals[a]
	irStoreG // globals[b] = reg a
	numOps
)

const quadBytes = 16

// rotateStmts is the paper's "region for every hundred statements".
const rotateStmts = 100

// Source generates the deterministic input program: eight globals and ~120
// functions of declarations, assignments, conditionals, bounded while
// loops, and calls to earlier functions, ending in main.
func Source() []byte { return SourceSeeded(0x1cc) }

// SourceSeeded generates a program from an arbitrary seed; every seed
// yields a valid, terminating program, which the fuzz tests rely on.
func SourceSeeded(seed uint32) []byte {
	g := lcg{s: seed}
	const nfns = 120
	const nglobals = 8
	// Estimated execution cost per function keeps the random call graph
	// from compounding: functions that have grown expensive stop being
	// eligible callees, so every generated program stays far under the
	// interpreter's step bound for every seed.
	const calleeBudget = 30000
	arity := make([]int, nfns)
	estCost := make([]float64, nfns)
	var callCost float64 // accumulates the current function's call costs
	loopMul := 1.0       // 10x inside while bodies
	var out []byte
	for i := 0; i < nglobals; i++ {
		out = append(out, fmt.Sprintf("int g%d;\n", i)...)
	}

	// expression over params p0..(arity-1), locals given by names, earlier fns
	var expr func(depth, fnIdx int, locals []string) string
	expr = func(depth, fnIdx int, locals []string) string {
		if depth == 0 || g.pick(4) == 0 {
			switch g.pick(3) {
			case 0:
				if len(locals) > 0 {
					return locals[g.pick(len(locals))]
				}
				return fmt.Sprintf("%d", 1+g.pick(99))
			case 1:
				return fmt.Sprintf("g%d", g.pick(nglobals))
			default:
				return fmt.Sprintf("%d", 1+g.pick(99))
			}
		}
		switch g.pick(8) {
		case 0:
			return fmt.Sprintf("(%s + %s)", expr(depth-1, fnIdx, locals), expr(depth-1, fnIdx, locals))
		case 1:
			return fmt.Sprintf("(%s - %s)", expr(depth-1, fnIdx, locals), expr(depth-1, fnIdx, locals))
		case 2:
			return fmt.Sprintf("(%s * %s)", expr(depth-1, fnIdx, locals), expr(depth-1, fnIdx, locals))
		case 3:
			return fmt.Sprintf("(%s / %d)", expr(depth-1, fnIdx, locals), 2+g.pick(17))
		case 4:
			return fmt.Sprintf("(%s %% %d)", expr(depth-1, fnIdx, locals), 3+g.pick(13))
		case 5:
			op := []string{"<", "<=", "==", "!="}[g.pick(4)]
			return fmt.Sprintf("(%s %s %s)", expr(depth-1, fnIdx, locals), op, expr(depth-1, fnIdx, locals))
		case 6:
			return fmt.Sprintf("(-%s)", expr(depth-1, fnIdx, locals))
		default:
			callee := -1
			if fnIdx > 0 {
				// Pick an affordable callee; give up after a few tries.
				for try := 0; try < 4; try++ {
					cand := g.pick(fnIdx)
					if estCost[cand] <= calleeBudget {
						callee = cand
						break
					}
				}
			}
			if callee < 0 {
				return fmt.Sprintf("(%s + 1)", expr(depth-1, fnIdx, locals))
			}
			callCost += loopMul * (estCost[callee] + 5)
			s := fmt.Sprintf("f%d(", callee)
			for a := 0; a < arity[callee]; a++ {
				if a > 0 {
					s += ", "
				}
				s += expr(depth-1, fnIdx, locals)
			}
			return s + ")"
		}
	}

	stmts := func(fnIdx int, params []string) string {
		locals := append([]string{}, params...)
		body := ""
		n := 6 + g.pick(8)
		for s := 0; s < n; s++ {
			switch g.pick(6) {
			case 0, 1:
				name := fmt.Sprintf("v%d", len(locals))
				body += fmt.Sprintf("  int %s = %s;\n", name, expr(2, fnIdx, locals))
				locals = append(locals, name)
			case 2:
				if len(locals) > 0 {
					body += fmt.Sprintf("  %s = %s;\n", locals[g.pick(len(locals))], expr(2, fnIdx, locals))
				} else {
					body += fmt.Sprintf("  g%d = %s;\n", g.pick(nglobals), expr(2, fnIdx, locals))
				}
			case 3:
				body += fmt.Sprintf("  g%d = %s;\n", g.pick(nglobals), expr(2, fnIdx, locals))
			case 4:
				body += fmt.Sprintf("  if (%s) { g%d = %s; } else { g%d = %s; }\n",
					expr(1, fnIdx, locals), g.pick(nglobals), expr(1, fnIdx, locals),
					g.pick(nglobals), expr(1, fnIdx, locals))
			default:
				i := fmt.Sprintf("i%d", len(locals))
				acc := fmt.Sprintf("a%d", len(locals)+1)
				loopMul = 10
				cond := expr(1, fnIdx, locals)
				loopMul = 1
				body += fmt.Sprintf("  int %s = 0;\n  int %s = 0;\n  while (%s < %d) { %s = (%s + %s); %s = (%s + 1); }\n",
					i, acc, i, 2+g.pick(8), acc, acc, cond, i, i)
				locals = append(locals, i, acc)
			}
		}
		body += fmt.Sprintf("  return %s;\n", expr(2, fnIdx, locals))
		return body
	}

	for i := 0; i < nfns; i++ {
		arity[i] = g.pick(4)
		sig := ""
		var params []string
		for p := 0; p < arity[i]; p++ {
			if p > 0 {
				sig += ", "
			}
			sig += fmt.Sprintf("int p%d", p)
			params = append(params, fmt.Sprintf("p%d", p))
		}
		callCost = 0
		body := stmts(i, params)
		estCost[i] = 40 + callCost
		out = append(out, fmt.Sprintf("int f%d(%s) {\n%s}\n", i, sig, body)...)
	}
	// main exercises several of the last affordable functions and the
	// globals.
	var mains []int
	for i := nfns - 1; i >= 0 && len(mains) < 6; i-- {
		if estCost[i] <= calleeBudget {
			mains = append(mains, i)
		}
	}
	body := "  int r = 0;\n"
	for _, i := range mains {
		call := fmt.Sprintf("f%d(", i)
		for a := 0; a < arity[i]; a++ {
			if a > 0 {
				call += ", "
			}
			call += fmt.Sprintf("%d", 1+g.pick(20))
		}
		call += ")"
		body += fmt.Sprintf("  r = (r + %s);\n", call)
	}
	for i := 0; i < nglobals; i++ {
		body += fmt.Sprintf("  r = (r + g%d);\n", i)
	}
	body += "  return r;\n"
	out = append(out, fmt.Sprintf("int main() {\n%s}\n", body)...)
	return out
}

type lcg struct{ s uint32 }

func (g *lcg) next() uint32 {
	g.s = g.s*1664525 + 1013904223
	return g.s >> 8
}

func (g *lcg) pick(n int) int { return int(g.next()) % n }

func mix(h *uint32, v uint32) {
	for k := 0; k < 4; k++ {
		*h = (*h ^ (v & 0xff)) * 16777619
		v >>= 8
	}
}
