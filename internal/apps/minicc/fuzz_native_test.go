package minicc

import (
	"strings"
	"testing"

	"regions/internal/apps/appkit"
)

// FuzzCompiler feeds arbitrary bytes to the whole pipeline. The property:
// the compiler either succeeds (and the produced code executes within the
// VM's step bound) or rejects the input with one of its own "minicc:"
// diagnostics — it never fails in an uncontrolled way and never trips the
// region runtime's internal invariants (rc underflow, undeletable region).
func FuzzCompiler(f *testing.F) {
	f.Add("int main() { return 42; }")
	f.Add("int g; int f(int p0) { return (p0 + g); } int main() { g = 2; return f(1); }")
	f.Add("int main() { int i = 0; while (i < 3) { i = (i + 1); } return i; }")
	f.Add("{}((")
	f.Add("int int int")
	f.Add("int main() { return (1 /")
	f.Add(string(SourceSeeded(99)[:500]))

	f.Fuzz(func(t *testing.T, src string) {
		e := appkit.NewRegionEnv("safe", appkit.Config{})
		c := &compiler{e: e, sp: e.Space()}
		c.registerCleanups()
		c.f = e.PushFrame(numSlots)
		defer e.PopFrame()
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			msg, ok := r.(string)
			if !ok || !strings.HasPrefix(msg, "minicc") {
				panic(r) // not one of the compiler's own diagnostics
			}
		}()
		c.compileFile([]byte(src))
		// On success the safe runtime must have deleted everything.
		if e.Counters().LiveRegions != 0 {
			t.Fatalf("regions leaked on input %q", src)
		}
	})
}
