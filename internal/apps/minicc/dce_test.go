package minicc

import (
	"testing"

	"regions/internal/apps/appkit"
)

// compileOpts compiles with chosen passes and returns result + quad count.
func compileOpts(t *testing.T, src string, noFold, noDCE bool) (int32, int) {
	t.Helper()
	e := appkit.NewRegionEnv("unsafe", appkit.Config{})
	c := &compiler{e: e, sp: e.Space(), noFold: noFold, noDCE: noDCE}
	c.registerCleanups()
	c.f = e.PushFrame(numSlots)
	defer e.PopFrame()
	result, _ := c.compileFile([]byte(src))
	return result, c.quadOff
}

func TestDCERemovesUnusedLocals(t *testing.T) {
	src := "int main() { int unused = (3 * 4); int x = 7; return x; }"
	resOn, qOn := compileOpts(t, src, true, false)
	resOff, qOff := compileOpts(t, src, true, true)
	if resOn != resOff || resOn != 7 {
		t.Fatalf("results %d / %d", resOn, resOff)
	}
	if qOn >= qOff {
		t.Fatalf("DCE did not shrink: %d vs %d quads", qOn, qOff)
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	// The call's result is unused but the call must stay (it writes g);
	// likewise a dead store to a global must stay.
	src := `int g;
int bump(int p0) { g = (g + p0); return g; }
int main() { int dead = bump(5); int dead2 = bump(7); return g; }`
	got, _ := compileOpts(t, src, true, false)
	if got != 12 {
		t.Fatalf("side effects lost: got %d, want 12", got)
	}
}

func TestDCEKeepsTrappingOps(t *testing.T) {
	// A dead division by a runtime value must not be removed silently?
	// Our conservative rule keeps irDiv/irMod even when dead, so the
	// program still traps — matching the unoptimized semantics.
	src := "int z; int main() { z = 0; int dead = (1 / z); return 5; }"
	defer func() {
		if recover() == nil {
			t.Fatal("dead trapping division was removed")
		}
	}()
	compileOpts(t, src, true, false)
}

func TestDCEBranchRetargeting(t *testing.T) {
	// Dead code interleaved with control flow: targets must be remapped.
	src := `int main() {
  int d0 = 1; int s = 0; int i = 0;
  while (i < 4) { int d1 = (i * 3); s = (s + i); i = (i + 1); }
  if (s == 6) { int d2 = 9; return 100; } else { return 200; }
  return 0; }`
	resOn, qOn := compileOpts(t, src, true, false)
	resOff, qOff := compileOpts(t, src, true, true)
	if resOn != resOff || resOn != 100 {
		t.Fatalf("results %d / %d", resOn, resOff)
	}
	if qOn >= qOff {
		t.Fatalf("no shrink: %d vs %d", qOn, qOff)
	}
}

func TestDCEWholeProgramDifferential(t *testing.T) {
	for seed := uint32(40); seed < 45; seed++ {
		src := string(SourceSeeded(seed))
		on, qOn := compileOpts(t, src, false, false)
		off, qOff := compileOpts(t, src, false, true)
		if on != off {
			t.Fatalf("seed %d: %d vs %d", seed, on, off)
		}
		if qOn > qOff {
			t.Fatalf("seed %d: DCE grew code", seed)
		}
	}
	src := string(Source())
	on, qOn := compileOpts(t, src, false, false)
	off, qOff := compileOpts(t, src, false, true)
	if on != off {
		t.Fatalf("generated program: %d vs %d", on, off)
	}
	t.Logf("quads: %d with DCE vs %d without (%.1f%% smaller)",
		qOn, qOff, 100*(1-float64(qOn)/float64(qOff)))
}

func TestDCEPlusAsmDifferential(t *testing.T) {
	// All three backend stages together: fold + DCE + asm.
	for seed := uint32(50); seed < 53; seed++ {
		want, text, mainLabel := compileBoth(t, string(SourceSeeded(seed)))
		if got := RunAsm(text, mainLabel, nGlobals); got != want {
			t.Fatalf("seed %d: asm=%d interp=%d", seed, got, want)
		}
	}
}
