// Package grobner reimplements the paper's "gröbner" benchmark: computing
// Gröbner bases of polynomial systems with Buchberger's algorithm. The
// paper's input was nine nine-variable polynomials; ours is a seeded family
// of three-variable systems over GF(32003), scaled by the number of
// systems. The algorithm is extremely allocation-intensive — every
// polynomial operation builds fresh term lists — with a tiny live set,
// matching the paper's profile (hundreds of thousands of allocations, tens
// of kilobytes live).
//
// The region version follows the paper's port: intermediates (S-polynomials
// and reduction steps) live in a scratch region recycled every few
// iterations, and polynomials that join the basis are copied into a result
// region — "add copies of the polynomials that form the basis to a result
// region".
package grobner

import (
	_ "embed"

	"regions/internal/apps/appkit"
)

//go:embed malloc.go
var mallocSource string

//go:embed region.go
var regionSource string

// P is the coefficient field modulus.
const P = 32003

// maxPairsPerSystem caps Buchberger's pair loop and maxReduceSteps caps a
// single reduction, so adversarial random systems cannot run away; both
// caps are deterministic and thus part of the result.
const (
	maxPairsPerSystem = 300
	maxReduceSteps    = 400
)

// maxBasis bounds the basis array allocated per system.
const maxBasis = 96

// App returns the gröbner benchmark descriptor.
func App() appkit.App {
	return appkit.App{
		Name:         "grobner",
		DefaultScale: 2, // systems per run; ~1M term allocations, as the paper's input
		Malloc:       RunMalloc,
		Region:       RunRegion,
		MallocSource: mallocSource,
		RegionSource: regionSource,
	}
}

// Monomials: three variables packed lexicographically into one word,
// ten bits per exponent, x most significant. Larger word = larger monomial.
const (
	expBits = 10
	expMask = 1<<expBits - 1
	maxExp  = expMask
)

func mono(e0, e1, e2 uint32) uint32 { return e0<<(2*expBits) | e1<<expBits | e2 }

func monoMul(a, b uint32) uint32 {
	r := uint32(0)
	for _, sh := range []uint{2 * expBits, expBits, 0} {
		e := (a >> sh & expMask) + (b >> sh & expMask)
		if e > maxExp {
			panic("grobner: exponent overflow")
		}
		r |= e << sh
	}
	return r
}

func monoDivides(a, b uint32) bool { // a | b
	return a>>(2*expBits) <= b>>(2*expBits) &&
		a>>expBits&expMask <= b>>expBits&expMask &&
		a&expMask <= b&expMask
}

func monoDiv(b, a uint32) uint32 { // b / a, assumes a | b
	return b - a
}

func monoLCM(a, b uint32) uint32 {
	r := uint32(0)
	for _, sh := range []uint{2 * expBits, expBits, 0} {
		ea, eb := a>>sh&expMask, b>>sh&expMask
		if eb > ea {
			ea = eb
		}
		r |= ea << sh
	}
	return r
}

// Field arithmetic over GF(P), host-side scalar math (registers).
func fAdd(a, b uint32) uint32 { return (a + b) % P }
func fSub(a, b uint32) uint32 { return (a + P - b) % P }
func fMul(a, b uint32) uint32 { return uint32(uint64(a) * uint64(b) % P) }

func fInv(a uint32) uint32 {
	// Fermat: a^(P-2) mod P.
	var r uint32 = 1
	e := uint32(P - 2)
	base := a % P
	for e > 0 {
		if e&1 == 1 {
			r = fMul(r, base)
		}
		base = fMul(base, base)
		e >>= 1
	}
	return r
}

// genTerm is one term of a generator polynomial, host-side (input data).
type genTerm struct {
	coef uint32
	mono uint32
}

// systems generates the seeded polynomial systems: scale systems of three
// generators, each with three to five terms of degree at most two.
func systems(scale int) [][][]genTerm {
	out := make([][][]genTerm, scale)
	for s := range out {
		g := lcg{s: uint32(0x9b0 + s*2654435761)}
		sys := make([][]genTerm, 3)
		for p := range sys {
			nt := 3 + g.pick(3)
			seen := map[uint32]bool{}
			var terms []genTerm
			for len(terms) < nt {
				m := mono(uint32(g.pick(3)), uint32(g.pick(3)), uint32(g.pick(3)))
				if seen[m] {
					continue
				}
				seen[m] = true
				terms = append(terms, genTerm{coef: 1 + uint32(g.pick(P-1)), mono: m})
			}
			// Sort descending by monomial so lists are born ordered.
			for i := 1; i < len(terms); i++ {
				for j := i; j > 0 && terms[j-1].mono < terms[j].mono; j-- {
					terms[j-1], terms[j] = terms[j], terms[j-1]
				}
			}
			sys[p] = terms
		}
		out[s] = sys
	}
	return out
}

type lcg struct{ s uint32 }

func (g *lcg) next() uint32 {
	g.s = g.s*1664525 + 1013904223
	return g.s >> 8
}

func (g *lcg) pick(n int) int { return int(g.next()) % n }

// checksum folds per-system basis summaries into one comparable value.
func checksum(parts []uint32) uint32 {
	h := uint32(2166136261)
	for _, v := range parts {
		for k := 0; k < 4; k++ {
			h = (h ^ (v & 0xff)) * 16777619
			v >>= 8
		}
	}
	return h
}
