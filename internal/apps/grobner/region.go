package grobner

import "regions/internal/apps/appkit"

// RunRegion is the region variant of gröbner, following the paper's port:
// each S-polynomial reduction runs in a scratch region deleted right after
// the pair is processed, and polynomials that join the basis are copied
// into the system's result region.
func RunRegion(e appkit.RegionEnv, scale int) uint32 {
	sp := e.Space()
	clnTerm := e.RegisterCleanup("grobner.term", func(e appkit.RegionEnv, obj appkit.Ptr) int {
		e.Destroy(e.Space().Load(obj + tNext))
		return termSize
	})
	clnPtr := e.RegisterCleanup("grobner.ptr", func(e appkit.RegionEnv, obj appkit.Ptr) int {
		e.Destroy(e.Space().Load(obj))
		return 4
	})

	var parts []uint32
	for _, sys := range systems(scale) {
		f := e.PushFrame(6)
		const (
			sBasis = iota
			sCur
			sRes
			sTmp
			sSpoly
			sScratch
		)
		basisReg := appkit.NewBound(e)
		basis := basisReg.AllocArray(maxBasis, 4, clnPtr)
		f.Set(sBasis, basis)
		nb := 0

		insert := func(p appkit.Ptr) {
			if nb == maxBasis {
				panic("grobner: basis overflow")
			}
			normalizeM(sp, p)
			e.StorePtr(basis+appkit.Ptr(nb*4), p)
			nb++
		}

		for _, gen := range sys {
			tmp := appkit.NewBound(e)
			g := buildPolyR(e, clnTerm, tmp, f, sTmp, gen)
			f.Set(sCur, g)
			r, tmp := normalFormR(e, clnTerm, tmp, f, g, basis, nb)
			if r != 0 {
				// The remainder stays rooted at sRes while the copy into
				// the basis region is built (rooted at sTmp).
				head, _ := copyPolyR(e, clnTerm, basisReg, f, sTmp, r)
				insert(head)
			}
			f.Set(sRes, 0)
			f.Set(sTmp, 0)
			if !tmp.Delete() {
				panic("grobner: scratch region not deletable")
			}
		}

		type pair struct{ i, j int }
		var queue []pair
		for i := 0; i < nb; i++ {
			for j := i + 1; j < nb; j++ {
				queue = append(queue, pair{i, j})
			}
		}
		processed := 0
		for len(queue) > 0 && processed < maxPairsPerSystem {
			pq := queue[0]
			queue = queue[1:]
			processed++
			gi := sp.Load(basis + appkit.Ptr(pq.i*4))
			gj := sp.Load(basis + appkit.Ptr(pq.j*4))
			mi, mj := sp.Load(gi+tMono), sp.Load(gj+tMono)
			if monoLCM(mi, mj) == monoMul(mi, mj) {
				continue
			}
			tmp := appkit.NewBound(e)
			s := spolyR(e, clnTerm, tmp, f, gi, gj)
			// normalFormR roots s immediately and may rotate the scratch
			// region, so no slot may still point into the original tmp.
			r, tmp := normalFormR(e, clnTerm, tmp, f, s, basis, nb)
			if r != 0 {
				old := nb
				head, _ := copyPolyR(e, clnTerm, basisReg, f, sTmp, r)
				insert(head)
				for i := 0; i < old; i++ {
					queue = append(queue, pair{i, old})
				}
			}
			// Clear every local still pointing into the scratch region so
			// it can be deleted — the paper's "stale pointers" lesson.
			f.Set(sRes, 0)
			f.Set(sTmp, 0)
			if !tmp.Delete() {
				panic("grobner: scratch region not deletable")
			}
		}

		parts = append(parts, summarize(sp, basis, nb, processed)...)

		// The whole basis dies with its region; every local must be dead.
		for i := 0; i < 6; i++ {
			f.Set(i, 0)
		}
		if !basisReg.Delete() {
			panic("grobner: basis region not deletable")
		}
		e.PopFrame()
	}
	e.Finalize()
	return checksum(parts)
}

// buildPolyR converts generator terms into a term list in region r.
func buildPolyR(e appkit.RegionEnv, cln appkit.CleanupID, r appkit.BoundRegion,
	f appkit.Frame, slot int, terms []genTerm) appkit.Ptr {
	sp := e.Space()
	var head, tail appkit.Ptr
	for _, t := range terms {
		n := r.Alloc(termSize, cln)
		sp.Store(n+tCoef, t.coef)
		sp.Store(n+tMono, t.mono)
		if head == 0 {
			head = n
			f.Set(slot, head)
		} else {
			e.StorePtr(tail+tNext, n)
		}
		tail = n
	}
	f.Set(slot, 0)
	return head
}

// copyPolyR copies p into region dst (the paper's explicit copy of partial
// solutions and basis polynomials into longer-lived regions). It returns
// the copy's head and tail.
func copyPolyR(e appkit.RegionEnv, cln appkit.CleanupID, dst appkit.BoundRegion,
	f appkit.Frame, slot int, p appkit.Ptr) (head, tail appkit.Ptr) {
	sp := e.Space()
	for ; p != 0; p = sp.Load(p + tNext) {
		n := dst.Alloc(termSize, cln)
		sp.Store(n+tCoef, sp.Load(p+tCoef))
		sp.Store(n+tMono, sp.Load(p+tMono))
		if head == 0 {
			head = n
			f.Set(slot, head)
		} else {
			e.StorePtr(tail+tNext, n)
		}
		tail = n
	}
	return head, tail
}

// combineR is combineM allocating into region r.
func combineR(e appkit.RegionEnv, cln appkit.CleanupID, r appkit.BoundRegion,
	f appkit.Frame, a, b appkit.Ptr, cB, mB uint32) appkit.Ptr {
	sp := e.Space()
	const slot = 5 // sScratch
	var head, tail appkit.Ptr
	emit := func(coef, mono uint32) {
		if coef == 0 {
			return
		}
		n := r.Alloc(termSize, cln)
		sp.Store(n+tCoef, coef)
		sp.Store(n+tMono, mono)
		if head == 0 {
			head = n
			f.Set(slot, head)
		} else {
			e.StorePtr(tail+tNext, n)
		}
		tail = n
	}
	for a != 0 || b != 0 {
		switch {
		case b == 0:
			emit(sp.Load(a+tCoef), sp.Load(a+tMono))
			a = sp.Load(a + tNext)
		case a == 0:
			emit(fMul(cB, sp.Load(b+tCoef)), monoMul(mB, sp.Load(b+tMono)))
			b = sp.Load(b + tNext)
		default:
			am := sp.Load(a + tMono)
			bm := monoMul(mB, sp.Load(b+tMono))
			switch {
			case am > bm:
				emit(sp.Load(a+tCoef), am)
				a = sp.Load(a + tNext)
			case bm > am:
				emit(fMul(cB, sp.Load(b+tCoef)), bm)
				b = sp.Load(b + tNext)
			default:
				emit(fAdd(sp.Load(a+tCoef), fMul(cB, sp.Load(b+tCoef))), am)
				a = sp.Load(a + tNext)
				b = sp.Load(b + tNext)
			}
		}
	}
	f.Set(slot, 0)
	return head
}

// normalFormR reduces f inside scratch region tmp. Superseded intermediates
// are simply abandoned — the region reclaims them all at once, which is the
// region version's whole point (the paper: "many frees are replaced by
// clearing the corresponding pointer"). Every rotateSteps reduction steps
// the live polynomials are copied into a fresh scratch region and the old
// one is deleted, bounding the scratch footprint; the caller must delete
// the returned region, which may differ from tmp.
func normalFormR(e appkit.RegionEnv, cln appkit.CleanupID, tmp appkit.BoundRegion,
	fr appkit.Frame, f appkit.Ptr, basis appkit.Ptr, nb int) (appkit.Ptr, appkit.BoundRegion) {
	sp := e.Space()
	const (
		sCur        = 1
		sRes        = 2
		sScratch    = 5
		rotateSteps = 6
	)
	var resHead, resTail appkit.Ptr
	cur := f
	fr.Set(sCur, cur)
	steps := 0
	for cur != 0 {
		ltm := sp.Load(cur + tMono)
		ltc := sp.Load(cur + tCoef)
		var g appkit.Ptr
		if steps < maxReduceSteps {
			for i := 0; i < nb; i++ {
				cand := sp.Load(basis + appkit.Ptr(i*4))
				if monoDivides(sp.Load(cand+tMono), ltm) {
					g = cand
					break
				}
			}
		}
		if g == 0 {
			next := sp.Load(cur + tNext)
			e.StorePtr(cur+tNext, 0)
			if resHead == 0 {
				resHead = cur
				fr.Set(sRes, resHead)
			} else {
				e.StorePtr(resTail+tNext, cur)
			}
			resTail = cur
			cur = next
			fr.Set(sCur, cur)
			continue
		}
		steps++
		cur = combineR(e, cln, tmp, fr, cur, g, P-ltc, monoDiv(ltm, sp.Load(g+tMono)))
		fr.Set(sCur, cur)
		if steps%rotateSteps == 0 {
			next := appkit.NewBound(e)
			cur, _ = copyPolyR(e, cln, next, fr, sScratch, cur)
			fr.Set(sCur, cur)
			if resHead != 0 {
				resHead, resTail = copyPolyR(e, cln, next, fr, sScratch, resHead)
				fr.Set(sRes, resHead)
			}
			fr.Set(sScratch, 0)
			if !tmp.Delete() {
				panic("grobner: scratch region not deletable")
			}
			tmp = next
		}
		e.Safepoint()
	}
	fr.Set(sCur, 0)
	// The remainder stays rooted at sRes; the caller clears it.
	return resHead, tmp
}

// spolyR builds the S-polynomial in scratch region tmp.
func spolyR(e appkit.RegionEnv, cln appkit.CleanupID, tmp appkit.BoundRegion,
	f appkit.Frame, gi, gj appkit.Ptr) appkit.Ptr {
	sp := e.Space()
	mi, mj := sp.Load(gi+tMono), sp.Load(gj+tMono)
	l := monoLCM(mi, mj)
	left := combineR(e, cln, tmp, f, 0, gi, 1, monoDiv(l, mi))
	f.Set(3, left) // sTmp
	s := combineR(e, cln, tmp, f, left, gj, P-1, monoDiv(l, mj))
	f.Set(3, 0)
	return s
}
