package grobner

import (
	"testing"
	"testing/quick"

	"regions/internal/apps/appkit"
)

const testScale = 1

func TestAllVariantsAgree(t *testing.T) {
	var want uint32
	first := true
	check := func(name string, got uint32) {
		if first {
			want, first = got, false
			return
		}
		if got != want {
			t.Fatalf("%s checksum %#x, want %#x", name, got, want)
		}
	}
	for _, kind := range appkit.MallocKinds {
		check("malloc/"+kind, RunMalloc(appkit.NewMallocEnv(kind, appkit.Config{}), testScale))
	}
	for _, kind := range appkit.RegionKinds {
		check("region/"+kind, RunRegion(appkit.NewRegionEnv(kind, appkit.Config{}), testScale))
	}
}

func TestMallocVariantFreesEverything(t *testing.T) {
	e := appkit.NewMallocEnv("Sun", appkit.Config{})
	RunMalloc(e, testScale)
	c := e.Counters()
	if c.LiveBytes != 0 {
		t.Fatalf("%d bytes leaked", c.LiveBytes)
	}
	if c.Allocs != c.FreeCalls {
		t.Fatalf("allocs=%d frees=%d", c.Allocs, c.FreeCalls)
	}
}

func TestRegionVariantManyShortLivedRegions(t *testing.T) {
	// The paper's Table 2 shows gröbner creating thousands of regions with
	// only a few live at once.
	e := appkit.NewRegionEnv("safe", appkit.Config{})
	RunRegion(e, testScale)
	c := e.Counters()
	if c.LiveRegions != 0 {
		t.Fatalf("%d regions leaked", c.LiveRegions)
	}
	if c.RegionsCreated < 20 {
		t.Fatalf("only %d regions created", c.RegionsCreated)
	}
	if c.MaxLiveRegions > 4 {
		t.Fatalf("max live regions %d, want a small constant", c.MaxLiveRegions)
	}
	if c.LiveBytes != 0 {
		t.Fatalf("%d bytes live at end", c.LiveBytes)
	}
}

func TestFieldArithmetic(t *testing.T) {
	if got := fAdd(P-1, 5); got != 4 {
		t.Errorf("fAdd wraps wrong: %d", got)
	}
	if got := fSub(3, 10); got != P-7 {
		t.Errorf("fSub: %d", got)
	}
	if got := fMul(P-1, P-1); got != 1 {
		t.Errorf("(-1)*(-1) = %d", got)
	}
	err := quick.Check(func(a uint32) bool {
		a = a%(P-1) + 1 // 1..P-1
		return fMul(a, fInv(a)) == 1
	}, nil)
	if err != nil {
		t.Fatalf("inverse property: %v", err)
	}
}

func TestMonomialOps(t *testing.T) {
	x2 := mono(2, 0, 0)
	xy := mono(1, 1, 0)
	if !monoDivides(mono(1, 0, 0), x2) {
		t.Error("x should divide x^2")
	}
	if monoDivides(x2, xy) {
		t.Error("x^2 should not divide xy")
	}
	if got := monoLCM(x2, xy); got != mono(2, 1, 0) {
		t.Errorf("lcm(x^2, xy) = %#x", got)
	}
	if got := monoMul(xy, xy); got != mono(2, 2, 0) {
		t.Errorf("xy*xy = %#x", got)
	}
	if got := monoDiv(mono(2, 1, 0), xy); got != mono(1, 0, 0) {
		t.Errorf("x^2y/xy = %#x", got)
	}
	// Lex order: x > y > z.
	if !(mono(1, 0, 0) > mono(0, 9, 9)) {
		t.Error("lex order violated")
	}
}

func TestMonoMulOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on exponent overflow")
		}
	}()
	monoMul(mono(maxExp, 0, 0), mono(1, 0, 0))
}

// TestKnownGrobnerBasis checks Buchberger on a textbook system:
// f1 = x^2 - y, f2 = x^3 - z over GF(P) with x > y > z lex.
// The reduced elements include y^3 - z^2 (eliminating x).
func TestKnownGrobnerBasis(t *testing.T) {
	e := appkit.NewMallocEnv("Lea", appkit.Config{})
	sp := e.Space()
	f := e.PushFrame(6)
	defer e.PopFrame()

	basis := e.Alloc(maxBasis * 4)
	f.Set(0, basis)
	for i := 0; i < maxBasis; i++ {
		sp.Store(basis+appkit.Ptr(i*4), 0)
	}
	nb := 0
	insert := func(p appkit.Ptr) {
		normalizeM(sp, p)
		sp.Store(basis+appkit.Ptr(nb*4), p)
		nb++
	}
	f1 := buildPolyM(e, f, 3, []genTerm{{1, mono(2, 0, 0)}, {P - 1, mono(0, 1, 0)}})
	insert(f1)
	f2 := buildPolyM(e, f, 3, []genTerm{{1, mono(3, 0, 0)}, {P - 1, mono(0, 0, 1)}})
	insert(f2)

	type pair struct{ i, j int }
	queue := []pair{{0, 1}}
	for len(queue) > 0 {
		pq := queue[0]
		queue = queue[1:]
		gi := sp.Load(basis + appkit.Ptr(pq.i*4))
		gj := sp.Load(basis + appkit.Ptr(pq.j*4))
		mi, mj := sp.Load(gi+tMono), sp.Load(gj+tMono)
		if monoLCM(mi, mj) == monoMul(mi, mj) {
			continue
		}
		s := spolyM(e, f, gi, gj)
		f.Set(4, s)
		r := normalFormM(e, f, s, basis, nb)
		f.Set(4, 0)
		if r != 0 {
			old := nb
			insert(r)
			for i := 0; i < old; i++ {
				queue = append(queue, pair{i, old})
			}
		}
	}

	// Look for an x-free element with leading monomial y^3 (from
	// y^3 = x^2·x·... elimination: y^3 - z^2).
	found := false
	for i := 0; i < nb; i++ {
		p := sp.Load(basis + appkit.Ptr(i*4))
		if sp.Load(p+tMono) == mono(0, 3, 0) {
			// Expect exactly y^3 - z^2 (monic).
			second := sp.Load(p + tNext)
			if second != 0 && sp.Load(second+tMono) == mono(0, 0, 2) &&
				sp.Load(second+tCoef) == P-1 && sp.Load(second+tNext) == 0 {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("y^3 - z^2 not in basis (nb=%d)", nb)
	}
}

func TestNormalFormReducesToZeroForMembers(t *testing.T) {
	// The S-polynomial of f and f (trivially) and any multiple of a basis
	// element must reduce to zero.
	e := appkit.NewMallocEnv("BSD", appkit.Config{})
	sp := e.Space()
	f := e.PushFrame(6)
	defer e.PopFrame()
	basis := e.Alloc(maxBasis * 4)
	f.Set(0, basis)
	for i := 0; i < maxBasis; i++ {
		sp.Store(basis+appkit.Ptr(i*4), 0)
	}
	g := buildPolyM(e, f, 3, []genTerm{{1, mono(1, 1, 0)}, {5, mono(0, 0, 1)}})
	normalizeM(sp, g)
	sp.Store(basis, g)

	// h = (x + 3) * g, built as combine(x·g, 3·g).
	xg := combineM(e, f, 0, g, 1, mono(1, 0, 0))
	f.Set(3, xg)
	h := combineM(e, f, xg, g, 3, 0)
	f.Set(3, 0)
	f.Set(4, h)
	r := normalFormM(e, f, h, basis, 1)
	if r != 0 {
		t.Fatalf("member did not reduce to zero (lead %#x)", sp.Load(r+tMono))
	}
}

func TestDifferentScalesDiffer(t *testing.T) {
	a := RunMalloc(appkit.NewMallocEnv("Lea", appkit.Config{}), 1)
	b := RunMalloc(appkit.NewMallocEnv("Lea", appkit.Config{}), 2)
	if a == b {
		t.Fatal("scales 1 and 2 gave identical checksums")
	}
}
