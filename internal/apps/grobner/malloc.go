package grobner

import (
	"regions/internal/apps/appkit"
	"regions/internal/mem"
)

// Term node layout: +0 next, +4 coefficient, +8 packed monomial.
const (
	tNext, tCoef, tMono = 0, 4, 8
	termSize            = 12
)

// RunMalloc is the malloc/free variant of gröbner: every intermediate
// polynomial is freed as soon as it is superseded, and each system's basis
// is torn down before the next system starts.
func RunMalloc(e appkit.MallocEnv, scale int) uint32 {
	sp := e.Space()
	var parts []uint32

	for _, sys := range systems(scale) {
		f := e.PushFrame(6)
		const (
			sBasis = iota
			sCur
			sRes
			sTmp
			sSpoly
			sScratch
		)
		basis := e.Alloc(maxBasis * 4)
		f.Set(sBasis, basis)
		for i := 0; i < maxBasis; i++ {
			sp.Store(basis+appkit.Ptr(i*4), 0)
		}
		nb := 0

		insert := func(p appkit.Ptr) {
			if nb == maxBasis {
				panic("grobner: basis overflow")
			}
			normalizeM(sp, p)
			sp.Store(basis+appkit.Ptr(nb*4), p)
			nb++
		}

		// Seed the basis with the reduced generators.
		for _, gen := range sys {
			g := buildPolyM(e, f, sTmp, gen)
			f.Set(sCur, g)
			r := normalFormM(e, f, g, basis, nb)
			f.Set(sCur, 0)
			if r != 0 {
				insert(r)
			}
		}

		// Buchberger pair loop.
		type pair struct{ i, j int }
		var queue []pair
		for i := 0; i < nb; i++ {
			for j := i + 1; j < nb; j++ {
				queue = append(queue, pair{i, j})
			}
		}
		processed := 0
		for len(queue) > 0 && processed < maxPairsPerSystem {
			pq := queue[0]
			queue = queue[1:]
			processed++
			gi := sp.Load(basis + appkit.Ptr(pq.i*4))
			gj := sp.Load(basis + appkit.Ptr(pq.j*4))
			mi, mj := sp.Load(gi+tMono), sp.Load(gj+tMono)
			if monoLCM(mi, mj) == monoMul(mi, mj) {
				continue // product criterion: coprime leads reduce to zero
			}
			s := spolyM(e, f, gi, gj)
			f.Set(sSpoly, s)
			r := normalFormM(e, f, s, basis, nb)
			f.Set(sSpoly, 0)
			if r != 0 {
				old := nb
				insert(r)
				for i := 0; i < old; i++ {
					queue = append(queue, pair{i, old})
				}
			}
		}

		parts = append(parts, summarize(sp, basis, nb, processed)...)

		// Tear down: every basis polynomial, then the array.
		for i := 0; i < nb; i++ {
			freePolyM(e, sp.Load(basis+appkit.Ptr(i*4)))
		}
		e.Free(basis)
		e.PopFrame()
	}
	e.Finalize()
	return checksum(parts)
}

// buildPolyM converts host-side generator terms into a heap term list.
func buildPolyM(e appkit.MallocEnv, f appkit.Frame, slot int, terms []genTerm) appkit.Ptr {
	sp := e.Space()
	var head, tail appkit.Ptr
	for _, t := range terms {
		n := e.Alloc(termSize)
		sp.Store(n+tNext, 0)
		sp.Store(n+tCoef, t.coef)
		sp.Store(n+tMono, t.mono)
		if head == 0 {
			head = n
			f.Set(slot, head)
		} else {
			sp.Store(tail+tNext, n)
		}
		tail = n
	}
	f.Set(slot, 0)
	return head
}

func freePolyM(e appkit.MallocEnv, p appkit.Ptr) {
	sp := e.Space()
	for p != 0 {
		next := sp.Load(p + tNext)
		e.Free(p)
		p = next
	}
}

// combineM returns a + cB·mB·b as a fresh term list (descending monomials,
// zero coefficients dropped). The scratch frame slot keeps the result chain
// rooted while it grows.
func combineM(e appkit.MallocEnv, f appkit.Frame, a, b appkit.Ptr, cB, mB uint32) appkit.Ptr {
	sp := e.Space()
	const slot = 5 // sScratch
	var head, tail appkit.Ptr
	emit := func(coef, mono uint32) {
		if coef == 0 {
			return
		}
		n := e.Alloc(termSize)
		sp.Store(n+tNext, 0)
		sp.Store(n+tCoef, coef)
		sp.Store(n+tMono, mono)
		if head == 0 {
			head = n
			f.Set(slot, head)
		} else {
			sp.Store(tail+tNext, n)
		}
		tail = n
	}
	for a != 0 || b != 0 {
		switch {
		case b == 0:
			emit(sp.Load(a+tCoef), sp.Load(a+tMono))
			a = sp.Load(a + tNext)
		case a == 0:
			emit(fMul(cB, sp.Load(b+tCoef)), monoMul(mB, sp.Load(b+tMono)))
			b = sp.Load(b + tNext)
		default:
			am := sp.Load(a + tMono)
			bm := monoMul(mB, sp.Load(b+tMono))
			switch {
			case am > bm:
				emit(sp.Load(a+tCoef), am)
				a = sp.Load(a + tNext)
			case bm > am:
				emit(fMul(cB, sp.Load(b+tCoef)), bm)
				b = sp.Load(b + tNext)
			default:
				emit(fAdd(sp.Load(a+tCoef), fMul(cB, sp.Load(b+tCoef))), am)
				a = sp.Load(a + tNext)
				b = sp.Load(b + tNext)
			}
		}
	}
	f.Set(slot, 0)
	return head
}

// normalFormM reduces f (consuming it) by the basis and returns the
// remainder as a fresh/relinked term list.
func normalFormM(e appkit.MallocEnv, fr appkit.Frame, f appkit.Ptr, basis appkit.Ptr, nb int) appkit.Ptr {
	sp := e.Space()
	const (
		sCur = 1
		sRes = 2
	)
	var resHead, resTail appkit.Ptr
	cur := f
	fr.Set(sCur, cur)
	steps := 0
	for cur != 0 {
		ltm := sp.Load(cur + tMono)
		ltc := sp.Load(cur + tCoef)
		var g appkit.Ptr
		if steps < maxReduceSteps {
			for i := 0; i < nb; i++ {
				cand := sp.Load(basis + appkit.Ptr(i*4))
				if monoDivides(sp.Load(cand+tMono), ltm) {
					g = cand
					break
				}
			}
		}
		if g == 0 {
			// Move the irreducible head term to the remainder.
			next := sp.Load(cur + tNext)
			sp.Store(cur+tNext, 0)
			if resHead == 0 {
				resHead = cur
				fr.Set(sRes, resHead)
			} else {
				sp.Store(resTail+tNext, cur)
			}
			resTail = cur
			cur = next
			fr.Set(sCur, cur)
			continue
		}
		// cur -= ltc · (ltm / lt(g)) · g   (g is monic)
		steps++
		next := combineM(e, fr, cur, g, P-ltc, monoDiv(ltm, sp.Load(g+tMono)))
		freePolyM(e, cur)
		cur = next
		fr.Set(sCur, cur)
		e.Safepoint()
	}
	fr.Set(sCur, 0)
	fr.Set(sRes, 0)
	return resHead
}

// spolyM builds the S-polynomial of two monic basis elements.
func spolyM(e appkit.MallocEnv, f appkit.Frame, gi, gj appkit.Ptr) appkit.Ptr {
	sp := e.Space()
	mi, mj := sp.Load(gi+tMono), sp.Load(gj+tMono)
	l := monoLCM(mi, mj)
	// (l/mi)·gi built first, then subtract (l/mj)·gj.
	left := combineM(e, f, 0, gi, 1, monoDiv(l, mi))
	f.Set(3, left) // sTmp
	s := combineM(e, f, left, gj, P-1, monoDiv(l, mj))
	freePolyM(e, left)
	f.Set(3, 0)
	return s
}

// normalizeM rescales p in place so its leading coefficient is one.
func normalizeM(sp *mem.Space, p appkit.Ptr) {
	if p == 0 {
		return
	}
	inv := fInv(sp.Load(p + tCoef))
	for t := p; t != 0; t = sp.Load(t + tNext) {
		sp.Store(t+tCoef, fMul(inv, sp.Load(t+tCoef)))
	}
}

// summarize folds one system's basis into checksum parts.
func summarize(sp *mem.Space, basis appkit.Ptr, nb, processed int) []uint32 {
	parts := []uint32{uint32(nb), uint32(processed)}
	for i := 0; i < nb; i++ {
		var terms, csum uint32
		for t := sp.Load(basis + appkit.Ptr(i*4)); t != 0; t = sp.Load(t + tNext) {
			terms++
			csum = fAdd(csum, sp.Load(t+tCoef))
		}
		parts = append(parts, sp.Load(sp.Load(basis+appkit.Ptr(i*4))+tMono), terms, csum)
	}
	return parts
}
