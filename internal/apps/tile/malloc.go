package tile

import (
	"regions/internal/apps/appkit"
	"regions/internal/mem"
)

// RunMalloc is the malloc/free variant of tile, the structure of the
// original program: every node is malloc'd, per-gap scratch tables are
// freed after each gap, and the document structures are freed at the end.
func RunMalloc(e appkit.MallocEnv, scale int) uint32 {
	sp := e.Space()
	words := tokenize(Input(scale))

	f := e.PushFrame(5)
	defer e.PopFrame()
	const (
		sVocab = iota
		sChunks
		sCur
		sLeft
		sRight
	)

	// Vocabulary hash table: malloc'd bucket array, cleared by hand.
	vocab := e.Alloc(hashBuckets * 4)
	f.Set(sVocab, vocab)
	for i := 0; i < hashBuckets; i++ {
		sp.Store(vocab+appkit.Ptr(i*4), 0)
	}

	// Intern every word and append its id to the token stream.
	nextID := uint32(0)
	nTokens := 0
	for _, w := range words {
		b := vocab + appkit.Ptr(hashWord(w)%hashBuckets*4)
		node := sp.Load(b)
		for node != 0 {
			if wordEq(sp, node, w) {
				break
			}
			node = sp.Load(node + wNext)
		}
		if node == 0 {
			node = e.Alloc(wordNodeSize(len(w)))
			sp.Store(node+wNext, sp.Load(b))
			sp.Store(node+wID, nextID)
			sp.Store(node+wCount, 0)
			sp.Store(node+wLen, uint32(len(w)))
			appkit.StoreBytes(sp, node+wChars, w)
			sp.Store(b, node)
			nextID++
		}
		sp.Store(node+wCount, sp.Load(node+wCount)+1)

		cur := f.Get(sCur)
		if cur == 0 || sp.Load(cur+tN) == chunkCap {
			nc := e.Alloc(tokenChunkSize())
			sp.Store(nc+tNext, 0)
			sp.Store(nc+tN, 0)
			if cur == 0 {
				f.Set(sChunks, nc)
			} else {
				sp.Store(cur+tNext, nc)
			}
			f.Set(sCur, nc)
			cur = nc
		}
		n := sp.Load(cur + tN)
		sp.Store(cur+tIDs+appkit.Ptr(n*4), sp.Load(node+wID))
		sp.Store(cur+tN, n+1)
		nTokens++
		e.Safepoint()
	}

	// Similarity of the windows around sampled gaps.
	nBlocks := nTokens / blockTokens
	var sims []uint32
	var gaps []int
	for g := windowSize; g+windowSize <= nBlocks; g += gapStride {
		left := buildGapTableMalloc(e, f, sLeft, g-windowSize, g)
		right := buildGapTableMalloc(e, f, sRight, g, g+windowSize)
		sims = append(sims, cosine(sp, left, right))
		gaps = append(gaps, g)
		freeGapTableMalloc(e, left)
		freeGapTableMalloc(e, right)
		f.Set(sLeft, 0)
		f.Set(sRight, 0)
		e.Safepoint()
	}
	var bounds []int
	for _, i := range boundaries(sims) {
		bounds = append(bounds, gaps[i])
	}
	sum := checksum(nextID, nTokens, bounds)

	// Tear down the document structures, walking each one.
	for c := f.Get(sChunks); c != 0; {
		next := sp.Load(c + tNext)
		e.Free(c)
		c = next
	}
	for i := 0; i < hashBuckets; i++ {
		for node := sp.Load(vocab + appkit.Ptr(i*4)); node != 0; {
			next := sp.Load(node + wNext)
			e.Free(node)
			node = next
		}
	}
	e.Free(vocab)
	e.Finalize()
	return sum
}

// buildGapTableMalloc counts word occurrences of blocks [from, to) into a
// fresh hash table rooted in frame slot slot.
func buildGapTableMalloc(e appkit.MallocEnv, f appkit.Frame, slot, from, to int) appkit.Ptr {
	sp := e.Space()
	table := e.Alloc(gapBuckets * 4)
	f.Set(slot, table)
	for i := 0; i < gapBuckets; i++ {
		sp.Store(table+appkit.Ptr(i*4), 0)
	}
	forEachToken(sp, f.Get(sChunksSlot), from*blockTokens, to*blockTokens, func(id uint32) {
		b := table + appkit.Ptr(id%gapBuckets*4)
		node := sp.Load(b)
		for node != 0 && sp.Load(node+gID) != id {
			node = sp.Load(node + gNext)
		}
		if node == 0 {
			node = e.Alloc(12)
			sp.Store(node+gNext, sp.Load(b))
			sp.Store(node+gID, id)
			sp.Store(node+gCount, 0)
			sp.Store(b, node)
		}
		sp.Store(node+gCount, sp.Load(node+gCount)+1)
	})
	return table
}

// sChunksSlot duplicates the frame-layout constant for the helpers.
const sChunksSlot = 1

func freeGapTableMalloc(e appkit.MallocEnv, table appkit.Ptr) {
	sp := e.Space()
	for i := 0; i < gapBuckets; i++ {
		for node := sp.Load(table + appkit.Ptr(i*4)); node != 0; {
			next := sp.Load(node + gNext)
			e.Free(node)
			node = next
		}
	}
	e.Free(table)
}

// wordEq compares the stored word at node with w.
func wordEq(sp *mem.Space, node appkit.Ptr, w []byte) bool {
	if int(sp.Load(node+wLen)) != len(w) {
		return false
	}
	for i := 0; i < len(w); i += 4 {
		word := sp.Load(node + wChars + appkit.Ptr(i))
		for k := 0; k < 4 && i+k < len(w); k++ {
			if byte(word>>(8*k)) != w[i+k] {
				return false
			}
		}
	}
	return true
}

// forEachToken walks tokens [from, to) of the chunked stream.
func forEachToken(sp *mem.Space, chunks appkit.Ptr, from, to int, fn func(id uint32)) {
	idx := 0
	for c := chunks; c != 0 && idx < to; c = sp.Load(c + tNext) {
		n := int(sp.Load(c + tN))
		for i := 0; i < n && idx < to; i++ {
			if idx >= from {
				fn(sp.Load(c + tIDs + appkit.Ptr(i*4)))
			}
			idx++
		}
	}
}

// cosine computes the fixed-point cosine similarity (0..1000) between two
// gap tables.
func cosine(sp *mem.Space, left, right appkit.Ptr) uint32 {
	var dot, normL, normR uint64
	for i := 0; i < gapBuckets; i++ {
		for node := sp.Load(left + appkit.Ptr(i*4)); node != 0; node = sp.Load(node + gNext) {
			lc := uint64(sp.Load(node + gCount))
			normL += lc * lc
			id := sp.Load(node + gID)
			r := sp.Load(right + appkit.Ptr(id%gapBuckets*4))
			for r != 0 && sp.Load(r+gID) != id {
				r = sp.Load(r + gNext)
			}
			if r != 0 {
				dot += lc * uint64(sp.Load(r+gCount))
			}
		}
		for node := sp.Load(right + appkit.Ptr(i*4)); node != 0; node = sp.Load(node + gNext) {
			rc := uint64(sp.Load(node + gCount))
			normR += rc * rc
		}
	}
	den := uint64(isqrt(normL)) * uint64(isqrt(normR))
	if den == 0 {
		return 0
	}
	return uint32(dot * 1000 / den)
}
