package tile

import (
	"regions/internal/apps/appkit"
)

// RunRegion is the region variant of tile: the vocabulary and token stream
// live in a document region for the whole run, and each gap's two scratch
// tables live in a temporary region deleted right after the gap is scored —
// no walking of data structures to deallocate them. As in the paper's port,
// the only subtlety is clearing the local table pointers so the temporary
// region can be deleted.
func RunRegion(e appkit.RegionEnv, scale int) uint32 {
	sp := e.Space()
	words := tokenize(Input(scale))

	clnWord := e.RegisterCleanup("tile.word", func(e appkit.RegionEnv, obj appkit.Ptr) int {
		e.Destroy(e.Space().Load(obj + wNext))
		return wordNodeSize(int(e.Space().Load(obj + wLen)))
	})
	clnChunk := e.RegisterCleanup("tile.chunk", func(e appkit.RegionEnv, obj appkit.Ptr) int {
		e.Destroy(e.Space().Load(obj + tNext))
		return tokenChunkSize()
	})
	clnGap := e.RegisterCleanup("tile.gap", func(e appkit.RegionEnv, obj appkit.Ptr) int {
		e.Destroy(e.Space().Load(obj + gNext))
		return 12
	})
	clnPtr := e.RegisterCleanup("tile.ptr", func(e appkit.RegionEnv, obj appkit.Ptr) int {
		e.Destroy(e.Space().Load(obj))
		return 4
	})

	f := e.PushFrame(5)
	defer e.PopFrame()
	const (
		sVocab = iota
		sChunks
		sCur
		sLeft
		sRight
	)

	doc := appkit.NewBound(e)

	// Vocabulary hash table: ralloc'd (and therefore cleared) bucket array.
	vocab := doc.AllocArray(hashBuckets, 4, clnPtr)
	f.Set(sVocab, vocab)

	nextID := uint32(0)
	nTokens := 0
	for _, w := range words {
		b := vocab + appkit.Ptr(hashWord(w)%hashBuckets*4)
		node := sp.Load(b)
		for node != 0 {
			if wordEq(sp, node, w) {
				break
			}
			node = sp.Load(node + wNext)
		}
		if node == 0 {
			node = doc.Alloc(wordNodeSize(len(w)), clnWord)
			e.StorePtr(node+wNext, sp.Load(b))
			sp.Store(node+wID, nextID)
			sp.Store(node+wLen, uint32(len(w)))
			appkit.StoreBytes(sp, node+wChars, w)
			e.StorePtr(b, node)
			nextID++
		}
		sp.Store(node+wCount, sp.Load(node+wCount)+1)

		cur := f.Get(sCur)
		if cur == 0 || sp.Load(cur+tN) == chunkCap {
			nc := doc.Alloc(tokenChunkSize(), clnChunk)
			if cur == 0 {
				f.Set(sChunks, nc)
			} else {
				e.StorePtr(cur+tNext, nc)
			}
			f.Set(sCur, nc)
			cur = nc
		}
		n := sp.Load(cur + tN)
		sp.Store(cur+tIDs+appkit.Ptr(n*4), sp.Load(node+wID))
		sp.Store(cur+tN, n+1)
		nTokens++
		e.Safepoint()
	}

	nBlocks := nTokens / blockTokens
	var sims []uint32
	var gaps []int
	for g := windowSize; g+windowSize <= nBlocks; g += gapStride {
		tmp := appkit.NewBound(e)
		left := buildGapTableRegion(e, tmp, clnGap, clnPtr, f, sLeft, g-windowSize, g)
		right := buildGapTableRegion(e, tmp, clnGap, clnPtr, f, sRight, g, g+windowSize)
		sims = append(sims, cosine(sp, left, right))
		gaps = append(gaps, g)
		// Clear the stale locals, then drop the whole scratch region.
		f.Set(sLeft, 0)
		f.Set(sRight, 0)
		if !tmp.Delete() {
			panic("tile: scratch region not deletable")
		}
		e.Safepoint()
	}
	var bounds []int
	for _, i := range boundaries(sims) {
		bounds = append(bounds, gaps[i])
	}
	sum := checksum(nextID, nTokens, bounds)

	// The whole document dies with one deletion.
	f.Set(sVocab, 0)
	f.Set(sChunks, 0)
	f.Set(sCur, 0)
	if !doc.Delete() {
		panic("tile: document region not deletable")
	}
	e.Finalize()
	return sum
}

// buildGapTableRegion counts word occurrences of blocks [from, to) into a
// fresh table allocated in the scratch region.
func buildGapTableRegion(e appkit.RegionEnv, tmp appkit.BoundRegion, clnGap, clnPtr appkit.CleanupID,
	f appkit.Frame, slot, from, to int) appkit.Ptr {
	sp := e.Space()
	table := tmp.AllocArray(gapBuckets, 4, clnPtr)
	f.Set(slot, table)
	forEachToken(sp, f.Get(sChunksSlot), from*blockTokens, to*blockTokens, func(id uint32) {
		b := table + appkit.Ptr(id%gapBuckets*4)
		node := sp.Load(b)
		for node != 0 && sp.Load(node+gID) != id {
			node = sp.Load(node + gNext)
		}
		if node == 0 {
			node = tmp.Alloc(12, clnGap)
			e.StorePtr(node+gNext, sp.Load(b))
			sp.Store(node+gID, id)
			e.StorePtr(b, node)
		}
		sp.Store(node+gCount, sp.Load(node+gCount)+1)
	})
	return table
}
