// Package tile reimplements the paper's "tile" benchmark: a program that
// automatically partitions text into subsections based on the frequency and
// grouping of words (a TextTiling-style algorithm). The original program
// used malloc/free; the paper's region version needed one local variable
// cleared to allow a region to be deleted.
//
// The program tokenizes the input, interns words in a hash table, splits
// the token stream into fixed-size blocks, and for every gap between blocks
// compares the word-frequency vectors of the windows on either side
// (cosine similarity). Gaps whose similarity is a sufficiently deep local
// minimum become section boundaries. Per-gap scratch tables make the
// program allocation-intensive, matching the paper's workload class.
package tile

import (
	_ "embed"

	"regions/internal/apps/appkit"
)

//go:embed malloc.go
var mallocSource string

//go:embed region.go
var regionSource string

// Algorithm parameters (shared by both variants so results match).
const (
	hashBuckets = 256
	blockTokens = 20 // tokens per block
	windowSize  = 6  // blocks per comparison window
)

// App returns the tile benchmark descriptor.
func App() appkit.App {
	return appkit.App{
		Name:         "tile",
		DefaultScale: 20, // the paper: twenty copies of a 14K text
		Malloc:       RunMalloc,
		Region:       RunRegion,
		MallocSource: mallocSource,
		RegionSource: regionSource,
	}
}

// Input produces the deterministic synthetic text for the given scale:
// scale concatenated copies of a multi-topic document (the paper used
// twenty copies of a 14 KB text). Topic shifts give the tiler real
// boundaries to find.
func Input(scale int) []byte {
	var g lcg
	doc := g.document()
	out := make([]byte, 0, len(doc)*scale)
	for i := 0; i < scale; i++ {
		out = append(out, doc...)
	}
	return out
}

// lcg is a small deterministic generator for the synthetic corpus.
type lcg struct{ s uint32 }

func (g *lcg) next() uint32 {
	g.s = g.s*1664525 + 1013904223
	return g.s >> 8
}

func (g *lcg) pick(n int) int { return int(g.next()) % n }

// topics are synthetic vocabularies; each text segment draws mostly from
// one topic plus common glue words, so adjacent segments differ.
var topics = [][]string{
	{"region", "page", "alloc", "pointer", "count", "scan", "frame", "stack", "delete", "cleanup", "heap", "word"},
	{"river", "stone", "valley", "cloud", "meadow", "birch", "trail", "summit", "lake", "fog", "moss", "fern"},
	{"matrix", "vector", "basis", "kernel", "tensor", "norm", "eigen", "rank", "trace", "field", "prime", "ring"},
	{"market", "price", "trade", "asset", "yield", "bond", "stock", "index", "rate", "fund", "risk", "margin"},
	{"violin", "sonata", "tempo", "chord", "melody", "rhythm", "opera", "octave", "minor", "major", "score", "aria"},
}

var glue = []string{"the", "a", "of", "and", "to", "in", "is", "it", "for", "with", "on", "as"}

func (g *lcg) document() []byte {
	g.s = 20260706
	var out []byte
	for seg := 0; seg < 10; seg++ {
		topic := topics[seg%len(topics)]
		for w := 0; w < 240; w++ {
			var word string
			if g.pick(10) < 4 {
				word = glue[g.pick(len(glue))]
			} else {
				word = topic[g.pick(len(topic))]
			}
			out = append(out, word...)
			if g.pick(12) == 0 {
				out = append(out, '.')
			}
			out = append(out, ' ')
		}
		out = append(out, '\n')
	}
	return out
}

// tokenize is host-side input preparation (reading the input file, in the
// paper's terms): it lowercases and splits the raw text into words. All
// per-word storage in the measured program goes through the allocators.
func tokenize(text []byte) [][]byte {
	var words [][]byte
	start := -1
	for i, b := range text {
		isAlpha := b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
		if isAlpha && start < 0 {
			start = i
		}
		if !isAlpha && start >= 0 {
			words = append(words, text[start:i])
			start = -1
		}
	}
	if start >= 0 {
		words = append(words, text[start:])
	}
	return words
}

func hashWord(w []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range w {
		h = (h ^ uint32(b)) * 16777619
	}
	return h
}

// isqrt returns the integer square root of v, used by the fixed-point
// cosine similarity so both variants avoid floating point entirely.
func isqrt(v uint64) uint32 {
	if v == 0 {
		return 0
	}
	x := uint64(1) << ((bits64(v) + 1) / 2)
	for {
		y := (x + v/x) / 2
		if y >= x {
			return uint32(x)
		}
		x = y
	}
}

func bits64(v uint64) uint {
	n := uint(0)
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// boundaries turns the per-gap similarity scores (scaled to 0..1000) into
// section boundaries: gaps whose "depth" below the neighbouring peaks —
// found by hill-climbing left and right — exceeds the threshold.
func boundaries(sims []uint32) []int {
	var out []int
	for i := range sims {
		j := i
		for j > 0 && sims[j-1] >= sims[j] {
			j--
		}
		leftPeak := sims[j]
		k := i
		for k+1 < len(sims) && sims[k+1] >= sims[k] {
			k++
		}
		rightPeak := sims[k]
		depth := (leftPeak - sims[i]) + (rightPeak - sims[i])
		if depth > 300 {
			out = append(out, i)
		}
	}
	return out
}

// checksum folds the analysis results into one comparable value.
func checksum(vocab uint32, tokens int, bounds []int) uint32 {
	h := uint32(2166136261)
	mix := func(v uint32) {
		for k := 0; k < 4; k++ {
			h = (h ^ (v & 0xff)) * 16777619
			v >>= 8
		}
	}
	mix(vocab)
	mix(uint32(tokens))
	mix(uint32(len(bounds)))
	for _, b := range bounds {
		mix(uint32(b))
	}
	return h
}
