package tile

import (
	"math"
	"testing"
	"testing/quick"

	"regions/internal/apps/appkit"
)

func TestAllVariantsAgree(t *testing.T) {
	const scale = 2
	var want uint32
	first := true
	check := func(name string, got uint32) {
		if first {
			want = got
			first = false
			return
		}
		if got != want {
			t.Fatalf("%s checksum %#x, want %#x", name, got, want)
		}
	}
	for _, kind := range appkit.MallocKinds {
		e := appkit.NewMallocEnv(kind, appkit.Config{})
		check("malloc/"+kind, RunMalloc(e, scale))
	}
	for _, kind := range appkit.RegionKinds {
		e := appkit.NewRegionEnv(kind, appkit.Config{})
		check("region/"+kind, RunRegion(e, scale))
	}
}

func TestMallocVariantFreesEverything(t *testing.T) {
	e := appkit.NewMallocEnv("Lea", appkit.Config{})
	RunMalloc(e, 1)
	c := e.Counters()
	if c.LiveBytes != 0 {
		t.Fatalf("%d bytes leaked", c.LiveBytes)
	}
	if c.FreeCalls != c.Allocs {
		t.Fatalf("allocs=%d frees=%d", c.Allocs, c.FreeCalls)
	}
}

func TestRegionVariantDeletesAllRegions(t *testing.T) {
	e := appkit.NewRegionEnv("safe", appkit.Config{})
	RunRegion(e, 1)
	c := e.Counters()
	if c.LiveRegions != 0 {
		t.Fatalf("%d regions leaked", c.LiveRegions)
	}
	if c.LiveBytes != 0 {
		t.Fatalf("%d bytes live at end", c.LiveBytes)
	}
	if c.RegionsCreated < 10 {
		t.Fatalf("only %d regions created; scratch regions missing?", c.RegionsCreated)
	}
}

func TestAllocationVolumeComparable(t *testing.T) {
	// Table 2 vs Table 3: the two variants should request nearly the same
	// memory (the paper's discrepancies are small).
	em := appkit.NewMallocEnv("Lea", appkit.Config{})
	RunMalloc(em, 2)
	er := appkit.NewRegionEnv("unsafe", appkit.Config{})
	RunRegion(er, 2)
	mb := em.Counters().BytesRequested
	rb := er.Counters().BytesRequested
	ratio := float64(rb) / float64(mb)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("requested bytes differ: malloc %d vs region %d", mb, rb)
	}
}

func TestInputDeterministicAndScaled(t *testing.T) {
	a, b := Input(2), Input(2)
	if string(a) != string(b) {
		t.Fatal("input not deterministic")
	}
	one := Input(1)
	if len(a) != 2*len(one) {
		t.Fatalf("scale 2 length %d, want %d", len(a), 2*len(one))
	}
	if len(one) < 8000 {
		t.Fatalf("document too small: %d bytes", len(one))
	}
}

func TestTokenize(t *testing.T) {
	words := tokenize([]byte("Hello, world. a b-c"))
	got := make([]string, len(words))
	for i, w := range words {
		got[i] = string(w)
	}
	want := []string{"Hello", "world", "a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestBoundariesFindsDeepMinima(t *testing.T) {
	sims := []uint32{900, 880, 900, 910, 200, 905, 890, 900}
	got := boundaries(sims)
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("boundaries=%v, want [4]", got)
	}
	flat := []uint32{500, 510, 505, 500, 508}
	if got := boundaries(flat); len(got) != 0 {
		t.Fatalf("flat series produced boundaries %v", got)
	}
}

func TestIsqrtProperty(t *testing.T) {
	err := quick.Check(func(v uint64) bool {
		v %= uint64(math.MaxUint32) * uint64(math.MaxUint32)
		r := uint64(isqrt(v))
		return r*r <= v && (r+1)*(r+1) > v
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFindsTopicBoundaries(t *testing.T) {
	// The synthetic document has ten topic segments; the tiler should find
	// at least a handful of boundaries in two copies of it.
	e := appkit.NewMallocEnv("Lea", appkit.Config{})
	sum1 := RunMalloc(e, 2)
	e2 := appkit.NewMallocEnv("Lea", appkit.Config{})
	sum2 := RunMalloc(e2, 3)
	if sum1 == sum2 {
		t.Fatal("different scales produced identical checksums")
	}
}
