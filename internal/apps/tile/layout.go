package tile

// Object layouts shared by the malloc and region variants, in byte offsets.
//
// Word node (vocabulary hash table entry, variable size):
//
//	+0  next node in bucket
//	+4  word id
//	+8  occurrence count
//	+12 word length in bytes
//	+16 word bytes (padded to a word)
//
// Token chunk (the token stream, a list of fixed arrays):
//
//	+0  next chunk
//	+4  tokens used in this chunk
//	+8  token ids (chunkCap words)
//
// Gap-table node (per-window word counts, fixed size):
//
//	+0 next
//	+4 word id
//	+8 count
const (
	wNext, wID, wCount, wLen, wChars = 0, 4, 8, 12, 16

	tNext, tN, tIDs = 0, 4, 8
	chunkCap        = 256

	gNext, gID, gCount = 0, 4, 8
	gapBuckets         = 64
	gapStride          = 5 // compute similarity every gapStride-th gap
)

func wordNodeSize(wordLen int) int { return wChars + (wordLen+3)&^3 }

func tokenChunkSize() int { return tIDs + chunkCap*4 }
