package appkit

import (
	"testing"

	"regions/internal/core"
)

func TestBZEnvRunsLikeOtherMallocs(t *testing.T) {
	e := NewMallocEnv("BZ", Config{})
	if e.Name() != "BZ" {
		t.Fatalf("name %q", e.Name())
	}
	f := e.PushFrame(1)
	defer e.PopFrame()
	var ptrs []Ptr
	for i := 0; i < 500; i++ {
		p := e.Alloc(24)
		e.Space().Store(p, uint32(i))
		ptrs = append(ptrs, p)
	}
	for i, p := range ptrs {
		if e.Space().Load(p) != uint32(i) {
			t.Fatalf("object %d clobbered", i)
		}
		e.Free(p)
	}
	f.Set(0, 0)
	c := e.Counters()
	if c.Allocs != 500 || c.FreeCalls != 500 || c.LiveBytes != 0 {
		t.Fatalf("stats: allocs=%d frees=%d live=%d", c.Allocs, c.FreeCalls, c.LiveBytes)
	}
}

func TestCustomRegionEnvOptions(t *testing.T) {
	e := NewCustomRegionEnv("eager-test", core.Options{Safe: true, EagerLocals: true}, Config{})
	if e.Name() != "eager-test" || !e.Safe() {
		t.Fatalf("name=%q safe=%v", e.Name(), e.Safe())
	}
	cln := e.RegisterCleanup("cell", func(e RegionEnv, obj Ptr) int {
		e.Destroy(e.Space().Load(obj))
		return 4
	})
	f := e.PushFrame(1)
	r := e.NewRegion()
	p := e.Ralloc(r, 4, cln)
	f.Set(0, p)
	if e.DeleteRegion(r) {
		t.Fatal("delete succeeded with eager-counted live slot")
	}
	f.Set(0, 0)
	if !e.DeleteRegion(r) {
		t.Fatal("delete failed")
	}
	e.PopFrame()
	e.Finalize()
	unsafeEnv := NewCustomRegionEnv("unsafe-test", core.Options{}, Config{})
	if unsafeEnv.Safe() {
		t.Fatal("zero options should be unsafe")
	}
}

func TestFreeUnknownPointerPanics(t *testing.T) {
	e := NewMallocEnv("Lea", Config{})
	p := e.Alloc(16)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown pointer")
		}
	}()
	e.Free(p + 4)
}

func TestEmuRegionFinalizeCountsLiveRegions(t *testing.T) {
	e := NewRegionEnv("emu:BSD", Config{})
	r := e.NewRegion()
	for i := 0; i < 100; i++ {
		e.RstrAlloc(r, 100)
	}
	// Not deleted: Finalize must still fold its size into MaxRegionBytes.
	e.Finalize()
	if got := e.Counters().MaxRegionBytes; got != 100*100 {
		t.Fatalf("MaxRegionBytes=%d, want 10000", got)
	}
}

func TestCoreEnvRarrayAndDynamicStore(t *testing.T) {
	e := NewRegionEnv("safe", Config{})
	clnPtr := e.RegisterCleanup("ptr", func(e RegionEnv, obj Ptr) int {
		e.Destroy(e.Space().Load(obj))
		return 4
	})
	r := e.NewRegion()
	s := e.NewRegion()
	arr := e.RarrayAlloc(r, 4, 4, clnPtr)
	p := e.RstrAlloc(s, 8)
	e.StorePtr(arr, p)
	if e.DeleteRegion(s) {
		t.Fatal("s should be pinned by the array element")
	}
	e.StorePtr(arr, 0)
	if !e.DeleteRegion(s) {
		t.Fatal("delete failed after clearing")
	}
	if !e.DeleteRegion(r) {
		t.Fatal("delete r failed")
	}
	e.Finalize()
}

func TestEnvNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range MallocKinds {
		e := NewMallocEnv(k, Config{})
		if seen[e.Name()] {
			t.Fatalf("duplicate env name %q", e.Name())
		}
		seen[e.Name()] = true
	}
	for _, k := range RegionKinds {
		e := NewRegionEnv(k, Config{})
		if seen[e.Name()] {
			t.Fatalf("duplicate env name %q", e.Name())
		}
		seen[e.Name()] = true
	}
}
