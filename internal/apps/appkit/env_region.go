package appkit

import (
	"regions/internal/core"
	"regions/internal/xmalloc"
)

// --- real region runtime (safe and unsafe) ---------------------------------

type coreEnv struct {
	baseEnv
	rt *core.Runtime
}

type coreFrame struct{ f *core.Frame }

func (f coreFrame) Set(i int, p Ptr) { f.f.Set(i, p) }
func (f coreFrame) Get(i int) Ptr    { return f.f.Get(i) }

func (e *coreEnv) PushFrame(n int) Frame { return coreFrame{e.rt.PushFrame(n)} }
func (e *coreEnv) PopFrame()             { e.rt.PopFrame() }
func (e *coreEnv) Safe() bool            { return e.rt.Safe() }

func (e *coreEnv) NewRegion() Region { return e.rt.NewRegion() }

func (e *coreEnv) DeleteRegion(r Region) bool {
	return e.rt.DeleteRegion(r.(*core.Region))
}

func (e *coreEnv) Ralloc(r Region, size int, cln CleanupID) Ptr {
	return e.rt.Ralloc(r.(*core.Region), size, cln)
}

func (e *coreEnv) RarrayAlloc(r Region, n, elemSize int, cln CleanupID) Ptr {
	return e.rt.RarrayAlloc(r.(*core.Region), n, elemSize, cln)
}

func (e *coreEnv) RstrAlloc(r Region, size int) Ptr {
	return e.rt.RstrAlloc(r.(*core.Region), size)
}

func (e *coreEnv) RstrFree(r Region, p Ptr, size int) {
	e.rt.RstrFree(r.(*core.Region), p, size)
}

func (e *coreEnv) RegisterCleanup(name string, fn CleanupFunc) CleanupID {
	return e.rt.RegisterCleanup(name, func(_ *core.Runtime, obj Ptr) int {
		return fn(e, obj)
	})
}

func (e *coreEnv) SizeCleanup(size int) CleanupID { return e.rt.SizeCleanup(size) }
func (e *coreEnv) Destroy(p Ptr)                  { e.rt.Destroy(p) }
func (e *coreEnv) StorePtr(slot, val Ptr)         { e.rt.StorePtr(slot, val) }
func (e *coreEnv) StoreGlobalPtr(slot, val Ptr)   { e.rt.StoreGlobalPtr(slot, val) }
func (e *coreEnv) AllocGlobals(nwords int) Ptr    { return e.allocGlobalWords(nwords) }

func (e *coreEnv) Finalize() { e.rt.FinalizeStats() }

// --- emulation region library over a malloc environment --------------------

type emuEnv struct {
	baseEnv
	m       MallocEnv
	lib     *xmalloc.EmuRegions
	regions []*xmalloc.EmuRegion
	nextCln CleanupID
}

func (e *emuEnv) PushFrame(n int) Frame { return e.m.PushFrame(n) }
func (e *emuEnv) PopFrame()             { e.m.PopFrame() }
func (e *emuEnv) Safepoint()            { e.m.Safepoint() }
func (e *emuEnv) Safe() bool            { return false }

func (e *emuEnv) NewRegion() Region {
	r := e.lib.NewRegion()
	e.regions = append(e.regions, r)
	return r
}

func (e *emuEnv) DeleteRegion(r Region) bool {
	e.lib.Delete(r.(*xmalloc.EmuRegion))
	return true
}

func (e *emuEnv) Ralloc(r Region, size int, _ CleanupID) Ptr {
	p := e.lib.Alloc(r.(*xmalloc.EmuRegion), size)
	e.sp.ZeroRange(p, (size+3)&^3) // match ralloc's clearing guarantee
	return p
}

func (e *emuEnv) RarrayAlloc(r Region, n, elemSize int, _ CleanupID) Ptr {
	size := n * ((elemSize + 3) &^ 3)
	p := e.lib.Alloc(r.(*xmalloc.EmuRegion), size)
	e.sp.ZeroRange(p, size)
	return p
}

func (e *emuEnv) RstrAlloc(r Region, size int) Ptr {
	return e.lib.Alloc(r.(*xmalloc.EmuRegion), size)
}

// RstrFree is a no-op: the emulation library frees objects only at region
// deletion, matching the paper's malloc-backed region emulation.
func (e *emuEnv) RstrFree(Region, Ptr, int) {}

// Cleanups are never run by the emulation library (deletion frees objects
// without scanning, and there is no reference counting); ids are issued so
// the same application code links against both libraries.
func (e *emuEnv) RegisterCleanup(string, CleanupFunc) CleanupID {
	e.nextCln++
	return e.nextCln
}

func (e *emuEnv) SizeCleanup(int) CleanupID {
	e.nextCln++
	return e.nextCln
}

func (e *emuEnv) Destroy(Ptr) {}

func (e *emuEnv) StorePtr(slot, val Ptr)       { e.sp.Store(slot, val) }
func (e *emuEnv) StoreGlobalPtr(slot, val Ptr) { e.sp.Store(slot, val) }
func (e *emuEnv) AllocGlobals(nwords int) Ptr  { return e.allocGlobalWords(nwords) }

func (e *emuEnv) Finalize() {
	c := e.Counters()
	for _, r := range e.regions {
		if !r.Deleted() && r.Bytes() > c.MaxRegionBytes {
			c.MaxRegionBytes = r.Bytes()
		}
	}
}

// LinkOverheadBytes sums the emulation library's per-object link words over
// all regions ever created, for the paper's "(w/o overhead)" figures.
func (e *emuEnv) LinkOverheadBytes() uint64 {
	var n uint64
	for _, r := range e.regions {
		n += r.LinkOverheadBytes()
	}
	return n
}

// EmulationOverhead reports the emulation library's link-word overhead for
// an env, or 0 for environments without one.
func EmulationOverhead(e Env) uint64 {
	if emu, ok := e.(*emuEnv); ok {
		return emu.LinkOverheadBytes()
	}
	return 0
}
