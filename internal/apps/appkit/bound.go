package appkit

// BoundRegion is a region handle bound to its environment, mirroring the
// public regions.Handle: application code calls b.Alloc(...) instead of
// threading an (env, region) pair through every helper. It is a two-word
// value type; copy it freely.
type BoundRegion struct {
	env RegionEnv
	r   Region
}

// Bind binds r to e.
func Bind(e RegionEnv, r Region) BoundRegion { return BoundRegion{env: e, r: r} }

// NewBound creates a fresh region in e and returns it bound.
func NewBound(e RegionEnv) BoundRegion { return Bind(e, e.NewRegion()) }

// Env returns the environment the handle is bound to.
func (b BoundRegion) Env() RegionEnv { return b.env }

// Region returns the underlying region handle.
func (b BoundRegion) Region() Region { return b.r }

// Alloc allocates size bytes of cleared, scanned memory (Ralloc).
func (b BoundRegion) Alloc(size int, cln CleanupID) Ptr { return b.env.Ralloc(b.r, size, cln) }

// AllocArray allocates a cleared array of n elemSize-byte elements
// (RarrayAlloc).
func (b BoundRegion) AllocArray(n, elemSize int, cln CleanupID) Ptr {
	return b.env.RarrayAlloc(b.r, n, elemSize, cln)
}

// AllocStr allocates size bytes of region-pointer-free memory (RstrAlloc).
func (b BoundRegion) AllocStr(size int) Ptr { return b.env.RstrAlloc(b.r, size) }

// FreeStr retires one AllocStr block of the given original size for reuse
// within the region (RstrFree). Advisory: a no-op in environments without
// an explicit string free path.
func (b BoundRegion) FreeStr(p Ptr, size int) { b.env.RstrFree(b.r, p, size) }

// Delete attempts to delete the bound region (DeleteRegion).
func (b BoundRegion) Delete() bool { return b.env.DeleteRegion(b.r) }
