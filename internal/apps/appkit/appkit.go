// Package appkit is the glue between the six benchmark applications and the
// allocators they are measured on. It plays the role the C toolchain plays
// in the paper: the same application code runs against
//
//   - malloc/free environments (Sun, BSD, Lea, and the Boehm–Weiser-style
//     collector with frees disabled), and
//   - region environments (the safe runtime, the unsafe runtime, and the
//     malloc-emulation region library over each malloc),
//
// with frames, globals, pointer-store barriers, and statistics routed to
// whichever system is active. Each environment owns a fresh simulated
// address space and counter set; attach the UltraSparc-I cache model with
// Config.Cache to measure the stall figures.
package appkit

import (
	"fmt"

	"regions/internal/cachesim"
	"regions/internal/core"
	"regions/internal/gc"
	"regions/internal/mem"
	"regions/internal/metrics"
	"regions/internal/stats"
	"regions/internal/trace"
	"regions/internal/xmalloc"
)

// Ptr is a simulated heap address.
type Ptr = mem.Addr

// Frame is one activation's live pointer variables: shadow-stack slots
// under the safe region runtime, conservative roots under the collector,
// plain storage elsewhere. Apps must keep every live heap pointer in a
// frame slot, exactly as the paper's compiler keeps liveness maps.
type Frame interface {
	Set(i int, p Ptr)
	Get(i int) Ptr
}

// Env is the part shared by malloc and region environments.
type Env interface {
	Name() string
	Space() *mem.Space
	Counters() *stats.Counters
	PushFrame(n int) Frame
	PopFrame()
	// Safepoint gives a pending garbage collection a chance to run. Apps
	// call it at points where every live object is reachable from frames,
	// globals, or allocator metadata — typically once per outer loop
	// iteration. It is a no-op in environments without a collector.
	Safepoint()
	// Finalize folds end-of-run state (live regions, etc.) into the
	// counters. Call once, after the workload completes.
	Finalize()
}

// MallocEnv is an explicit allocation environment.
type MallocEnv interface {
	Env
	Alloc(size int) Ptr
	Free(p Ptr)
}

// Region is an opaque region handle.
type Region interface {
	Bytes() uint64
	Allocs() uint64
	Deleted() bool
}

// CleanupFunc is an environment-independent cleanup: it must call
// env.Destroy on every region pointer in the object and return the object's
// size in bytes (see core.CleanupFunc).
type CleanupFunc func(e RegionEnv, obj Ptr) int

// CleanupID identifies a registered cleanup.
type CleanupID = core.CleanupID

// RegionEnv is a region-based allocation environment.
type RegionEnv interface {
	Env
	NewRegion() Region
	DeleteRegion(r Region) bool
	Ralloc(r Region, size int, cln CleanupID) Ptr
	RarrayAlloc(r Region, n, elemSize int, cln CleanupID) Ptr
	RstrAlloc(r Region, size int) Ptr
	// RstrFree retires one RstrAlloc block of the given original size for
	// reuse within r. Optional — regions reclaim everything at deletion —
	// and advisory: environments without an explicit string free path (the
	// emulation library frees only at region deletion) treat it as a no-op,
	// so applications must not rely on it for correctness.
	RstrFree(r Region, p Ptr, size int)
	RegisterCleanup(name string, fn CleanupFunc) CleanupID
	SizeCleanup(size int) CleanupID
	Destroy(p Ptr)
	// StorePtr writes a region pointer into a region object (barriered
	// under the safe runtime); StoreGlobalPtr writes one into global
	// storage. AllocGlobals reserves global words.
	StorePtr(slot, val Ptr)
	StoreGlobalPtr(slot, val Ptr)
	AllocGlobals(nwords int) Ptr
	// Safe reports whether dangling references are detected (for tests).
	Safe() bool
}

// Config selects optional environment features.
type Config struct {
	Cache bool // attach the UltraSparc-I cache model
	// Tracer, when non-nil, receives the environment's runtime events
	// (region lifecycle, allocations, barriers, GC phases — see
	// internal/trace). Only the real region runtime and the collector
	// emit events; the emulation and plain malloc environments do not.
	Tracer *trace.Tracer
	// Metrics, when non-nil, attaches the environment's space (OS-level
	// series) and, where one exists, its region runtime or collector to the
	// registry (see internal/metrics). Like tracing, metering is host-side
	// only: it charges no simulated cycles and leaves stats.Counters
	// untouched.
	Metrics *metrics.Registry
}

const globalPages = 4 // global segment reserved up front in every env

func newSpace(cfg Config) (*mem.Space, Ptr) {
	c := &stats.Counters{}
	sp := mem.NewSpace(c)
	if cfg.Cache {
		sp.AttachCache(cachesim.New(cachesim.UltraSparcI()))
	}
	if cfg.Metrics != nil {
		sp.SetMetrics(cfg.Metrics)
	}
	g := sp.MapPages(globalPages) // before any allocator: keeps sbrk contiguous
	return sp, g
}

// MallocKinds lists the malloc environment names in the paper's order.
var MallocKinds = []string{"Sun", "BSD", "Lea", "GC"}

// RegionKinds lists the region environment names: the paper's safe library
// ("Reg"), the unsafe library, and the malloc emulations.
var RegionKinds = []string{"safe", "unsafe", "emu:Sun", "emu:BSD", "emu:Lea", "emu:GC"}

// NewMallocEnv builds a malloc environment: "Sun", "BSD", "Lea", or "GC".
func NewMallocEnv(kind string, cfg Config) MallocEnv {
	sp, g := newSpace(cfg)
	switch kind {
	case "Sun":
		return newMallocEnv(baseEnv{name: kind, sp: sp, globals: g}, xmalloc.NewSun(sp))
	case "BSD":
		return newMallocEnv(baseEnv{name: kind, sp: sp, globals: g}, xmalloc.NewBSD(sp))
	case "Lea":
		return newMallocEnv(baseEnv{name: kind, sp: sp, globals: g}, xmalloc.NewLea(sp))
	case "BZ":
		// Barrett–Zorn lifetime prediction (related work, not a paper
		// column). The allocation site is approximated by the request
		// size, which separates the apps' allocation sites well since
		// nearly every site allocates one fixed layout.
		return newMallocEnv(baseEnv{name: kind, sp: sp, globals: g}, bzAdapter{xmalloc.NewBZ(sp)})
	case "GC":
		col := gc.New(sp)
		col.RegisterRoots(g, g+globalPages*mem.PageSize)
		if cfg.Tracer != nil {
			col.SetTracer(cfg.Tracer)
		}
		if cfg.Metrics != nil {
			col.SetMetrics(cfg.Metrics)
		}
		return &gcEnv{baseEnv{name: kind, sp: sp, globals: g}, col}
	}
	panic(fmt.Sprintf("appkit: unknown malloc env %q", kind))
}

// NewRegionEnv builds a region environment: "safe", "unsafe", or
// "emu:<malloc kind>".
func NewRegionEnv(kind string, cfg Config) RegionEnv {
	sp, g := newSpace(cfg)
	switch kind {
	case "safe", "unsafe":
		rt := core.NewRuntime(sp, kind == "safe")
		if cfg.Tracer != nil {
			rt.SetTracer(cfg.Tracer)
		}
		if cfg.Metrics != nil {
			rt.SetMetrics(cfg.Metrics)
		}
		return &coreEnv{baseEnv{name: kind, sp: sp, globals: g}, rt}
	}
	var under string
	if _, err := fmt.Sscanf(kind, "emu:%s", &under); err != nil {
		panic(fmt.Sprintf("appkit: unknown region env %q", kind))
	}
	m := NewMallocEnv(under, cfg)
	e := &emuEnv{
		baseEnv: baseEnv{name: "emu:" + under, sp: m.Space(), globals: mustGlobals(m)},
		m:       m,
	}
	// Region list heads live in the global segment so they are collector
	// roots under the GC backend.
	e.lib = xmalloc.NewEmuRegions(m.Space(), mallocAdapter{m}, func() Ptr {
		return e.allocGlobalWords(1)
	})
	return e
}

// NewCustomRegionEnv builds a region environment over the real runtime with
// explicit options, for the ablation experiments (eager local counting,
// disabled region-structure coloring).
func NewCustomRegionEnv(name string, opts core.Options, cfg Config) RegionEnv {
	sp, g := newSpace(cfg)
	rt := core.NewRuntimeOpts(sp, opts)
	if cfg.Tracer != nil {
		rt.SetTracer(cfg.Tracer)
	}
	if cfg.Metrics != nil {
		rt.SetMetrics(cfg.Metrics)
	}
	return &coreEnv{baseEnv{name: name, sp: sp, globals: g}, rt}
}

// RuntimeOf returns the real region runtime behind a region environment, or
// nil for emulation environments, which have none. The heap profiler needs
// the runtime itself (cmd/regionstat calls this to profile after a run).
func RuntimeOf(e RegionEnv) *core.Runtime {
	if ce, ok := e.(*coreEnv); ok {
		return ce.rt
	}
	return nil
}

func mustGlobals(m MallocEnv) Ptr { return m.(interface{ globalBase() Ptr }).globalBase() }

// --- base -----------------------------------------------------------------

type baseEnv struct {
	name      string
	sp        *mem.Space
	globals   Ptr
	globalOff Ptr
}

func (b *baseEnv) Name() string              { return b.name }
func (b *baseEnv) Space() *mem.Space         { return b.sp }
func (b *baseEnv) Counters() *stats.Counters { return b.sp.Counters() }
func (b *baseEnv) Safepoint()                {}
func (b *baseEnv) Finalize()                 {}
func (b *baseEnv) globalBase() Ptr           { return b.globals }

func (b *baseEnv) allocGlobalWords(n int) Ptr {
	need := Ptr(n * mem.WordSize)
	if b.globalOff+need > globalPages*mem.PageSize {
		panic("appkit: global segment exhausted")
	}
	p := b.globals + b.globalOff
	b.globalOff += need
	return p
}

// goFrame is a host-side frame for environments that need no root tracking.
type goFrame struct{ slots []Ptr }

func (f *goFrame) Set(i int, p Ptr) { f.slots[i] = p }
func (f *goFrame) Get(i int) Ptr    { return f.slots[i] }

type goFrameStack struct {
	frames []*goFrame
	pool   []*goFrame
}

func (s *goFrameStack) push(n int) Frame {
	var f *goFrame
	if len(s.pool) > 0 {
		f = s.pool[len(s.pool)-1]
		s.pool = s.pool[:len(s.pool)-1]
		if cap(f.slots) >= n {
			f.slots = f.slots[:n]
			for i := range f.slots {
				f.slots[i] = 0
			}
		} else {
			f.slots = make([]Ptr, n)
		}
	} else {
		f = &goFrame{slots: make([]Ptr, n)}
	}
	s.frames = append(s.frames, f)
	return f
}

func (s *goFrameStack) pop() {
	f := s.frames[len(s.frames)-1]
	s.frames = s.frames[:len(s.frames)-1]
	s.pool = append(s.pool, f)
}

// --- malloc environments ----------------------------------------------------

type mallocEnv struct {
	baseEnv
	a     xmalloc.Allocator
	fs    goFrameStack
	sizes map[Ptr]int32 // requested (rounded) size per live pointer, for stats
}

func newMallocEnv(b baseEnv, a xmalloc.Allocator) *mallocEnv {
	return &mallocEnv{baseEnv: b, a: a, sizes: map[Ptr]int32{}}
}

func (e *mallocEnv) PushFrame(n int) Frame { return e.fs.push(n) }
func (e *mallocEnv) PopFrame()             { e.fs.pop() }

func (e *mallocEnv) Alloc(size int) Ptr {
	p := e.a.Alloc(size)
	if p == 0 {
		return 0 // OS refused memory; nothing was allocated
	}
	rounded := int32((size + 3) &^ 3)
	e.Counters().AddAlloc(int64(rounded))
	e.sizes[p] = rounded
	return p
}

func (e *mallocEnv) Free(p Ptr) {
	sz, ok := e.sizes[p]
	if !ok {
		panic("appkit: Free of unknown pointer")
	}
	delete(e.sizes, p)
	e.a.Free(p)
	e.Counters().AddFree(int64(sz))
}

type gcEnv struct {
	baseEnv
	g *gc.Collector
}

type gcFrame struct{ f gc.Frame }

func (f gcFrame) Set(i int, p Ptr) { f.f.Set(i, p) }
func (f gcFrame) Get(i int) Ptr    { return f.f.Get(i) }

func (e *gcEnv) PushFrame(n int) Frame { return gcFrame{e.g.PushFrame(n)} }
func (e *gcEnv) PopFrame()             { e.g.PopFrame() }
func (e *gcEnv) Safepoint()            { e.g.Safepoint() }

func (e *gcEnv) Alloc(size int) Ptr {
	p := e.g.Alloc(size)
	if p == 0 {
		return 0 // OS refused memory even after an emergency collection
	}
	e.Counters().AddAlloc(int64((size + 3) &^ 3))
	return p
}

// Free under the collector is a statistics-only no-op, as in the paper,
// where all frees are disabled: the object's requested size (kept in its
// header) stops counting as live, but the memory is reclaimed only by
// collection.
func (e *gcEnv) Free(p Ptr) {
	size := e.g.RequestedSize(p)
	e.Counters().AddFree(int64(size))
}

// bzAdapter exposes the Barrett–Zorn allocator through the plain Allocator
// interface, deriving the allocation site from the request size.
type bzAdapter struct{ z *xmalloc.BZ }

func (a bzAdapter) Name() string       { return a.z.Name() }
func (a bzAdapter) Alloc(size int) Ptr { return a.z.AllocAt(uint32(size), size) }
func (a bzAdapter) Free(p Ptr)         { a.z.Free(p) }

// mallocAdapter lets the emulation library treat any MallocEnv as a raw
// allocator (sizes and stats are already metered by the env).
type mallocAdapter struct{ m MallocEnv }

func (a mallocAdapter) Name() string       { return a.m.Name() }
func (a mallocAdapter) Alloc(size int) Ptr { return a.rawAlloc(size) }
func (a mallocAdapter) Free(p Ptr)         { a.rawFree(p) }

func (a mallocAdapter) rawAlloc(size int) Ptr {
	switch m := a.m.(type) {
	case *mallocEnv:
		return m.a.Alloc(size)
	case *gcEnv:
		return m.g.Alloc(size)
	}
	panic("appkit: unknown malloc env type")
}

func (a mallocAdapter) rawFree(p Ptr) {
	switch m := a.m.(type) {
	case *mallocEnv:
		m.a.Free(p)
	case *gcEnv:
		// Frees are disabled under the collector; the emulated region's
		// objects become garbage when the region dies.
	}
}
