package appkit

import "regions/internal/mem"

// StoreBytes writes b into simulated memory starting at the word-aligned
// address p, packing four bytes per word (little-endian). The trailing
// partial word, if any, is zero-padded.
func StoreBytes(sp *mem.Space, p Ptr, b []byte) {
	if p%mem.WordSize != 0 {
		panic("appkit: StoreBytes at unaligned address")
	}
	i := 0
	for ; i+4 <= len(b); i += 4 {
		w := uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
		sp.Store(p+Ptr(i), w)
	}
	if i < len(b) {
		var w uint32
		for k := 0; i+k < len(b); k++ {
			w |= uint32(b[i+k]) << (8 * k)
		}
		sp.Store(p+Ptr(i), w)
	}
}

// LoadBytes reads n bytes from the word-aligned address p.
func LoadBytes(sp *mem.Space, p Ptr, n int) []byte {
	if p%mem.WordSize != 0 {
		panic("appkit: LoadBytes at unaligned address")
	}
	b := make([]byte, n)
	for i := 0; i < n; i += 4 {
		w := sp.Load(p + Ptr(i))
		for k := 0; k < 4 && i+k < n; k++ {
			b[i+k] = byte(w >> (8 * k))
		}
	}
	return b
}

// BytesWords returns the number of words needed to store n bytes.
func BytesWords(n int) int { return (n + mem.WordSize - 1) / mem.WordSize }

// App describes one of the paper's six benchmark programs: a malloc/free
// variant (the "original") and a region variant (the "modified" program).
// Both must compute the same checksum so the harness can cross-check them.
type App struct {
	Name string
	// DefaultScale is the workload size used by the paper-reproduction
	// harness; tests may use smaller scales.
	DefaultScale int
	// Malloc runs the malloc/free variant. Under the GC environment the
	// frees it performs are statistics-only no-ops.
	Malloc func(e MallocEnv, scale int) uint32
	// Region runs the region variant.
	Region func(e RegionEnv, scale int) uint32
	// SlowRegion, if non-nil, is a deliberately locality-poor region
	// organization (the paper's original moss region version).
	SlowRegion func(e RegionEnv, scale int) uint32
	// MallocSource and RegionSource hold the embedded source text of the
	// two variants, diffed for Table 1.
	MallocSource string
	RegionSource string
	// UsesEmulation marks apps that were originally region-based
	// (mudlle, lcc), whose malloc measurements use the emulation library
	// in the paper. For them, Malloc may be nil and the harness runs the
	// Region variant over an emulation environment instead.
	UsesEmulation bool
}
