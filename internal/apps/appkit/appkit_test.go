package appkit

import (
	"bytes"
	"testing"

	"regions/internal/mem"
)

func TestAllMallocEnvsBasic(t *testing.T) {
	for _, kind := range MallocKinds {
		t.Run(kind, func(t *testing.T) {
			e := NewMallocEnv(kind, Config{})
			if e.Name() != kind {
				t.Fatalf("name %q", e.Name())
			}
			f := e.PushFrame(1)
			p := e.Alloc(100)
			f.Set(0, p)
			e.Space().Store(p, 42)
			if f.Get(0) != p {
				t.Fatal("frame slot lost")
			}
			if e.Space().Load(p) != 42 {
				t.Fatal("store lost")
			}
			c := e.Counters()
			if c.Allocs != 1 || c.BytesRequested != 100 {
				t.Fatalf("allocs=%d bytes=%d", c.Allocs, c.BytesRequested)
			}
			e.Free(p)
			if c.FreeCalls != 1 || c.LiveBytes != 0 {
				t.Fatalf("frees=%d live=%d", c.FreeCalls, c.LiveBytes)
			}
			e.PopFrame()
			e.Finalize()
		})
	}
}

func TestAllRegionEnvsBasic(t *testing.T) {
	for _, kind := range RegionKinds {
		t.Run(kind, func(t *testing.T) {
			e := NewRegionEnv(kind, Config{})
			cln := e.RegisterCleanup("cell", func(e RegionEnv, obj Ptr) int {
				e.Destroy(e.Space().Load(obj + 4))
				return 8
			})
			f := e.PushFrame(1)
			r := e.NewRegion()
			p := e.Ralloc(r, 8, cln)
			f.Set(0, p)
			if e.Space().Load(p) != 0 {
				t.Fatal("ralloc not cleared")
			}
			e.Space().Store(p, 9)
			q := e.Ralloc(r, 8, cln)
			e.StorePtr(q+4, p) // sameregion pointer
			s := e.RstrAlloc(r, 20)
			StoreBytes(e.Space(), s, []byte("hello, world."))
			arr := e.RarrayAlloc(r, 3, 8, cln)
			e.StorePtr(arr, q)

			g := e.AllocGlobals(1)
			e.StoreGlobalPtr(g, p)
			if e.Safe() {
				if e.DeleteRegion(r) {
					t.Fatal("safe env deleted region with global ref")
				}
			}
			e.StoreGlobalPtr(g, 0)
			f.Set(0, 0)
			if !e.DeleteRegion(r) {
				t.Fatal("delete failed")
			}
			e.PopFrame()
			e.Finalize()
			c := e.Counters()
			if c.RegionsCreated != 1 || c.RegionsDeleted != 1 {
				t.Fatalf("regions created=%d deleted=%d", c.RegionsCreated, c.RegionsDeleted)
			}
			if c.Allocs != 4 {
				t.Fatalf("allocs=%d, want 4", c.Allocs)
			}
			if c.LiveBytes != 0 {
				t.Fatalf("live=%d after delete", c.LiveBytes)
			}
		})
	}
}

func TestEmulationOverheadReported(t *testing.T) {
	e := NewRegionEnv("emu:Lea", Config{})
	r := e.NewRegion()
	for i := 0; i < 10; i++ {
		e.RstrAlloc(r, 12)
	}
	if got := EmulationOverhead(e); got != 40 {
		t.Fatalf("overhead=%d, want 40", got)
	}
	safe := NewRegionEnv("safe", Config{})
	if got := EmulationOverhead(safe); got != 0 {
		t.Fatalf("overhead=%d for real regions, want 0", got)
	}
}

func TestEmuOverGCDropsFreesButDeletes(t *testing.T) {
	e := NewRegionEnv("emu:GC", Config{})
	r := e.NewRegion()
	var last Ptr
	for i := 0; i < 50; i++ {
		last = e.RstrAlloc(r, 40)
		e.Space().Store(last, uint32(i))
	}
	if !e.DeleteRegion(r) {
		t.Fatal("delete failed")
	}
	// Objects become garbage, not recycled synchronously; memory intact
	// until a collection happens.
	if e.Space().Load(last) != 49 {
		t.Fatal("object clobbered by emu delete under GC")
	}
	if e.Counters().LiveBytes != 0 {
		t.Fatalf("live=%d", e.Counters().LiveBytes)
	}
}

func TestCacheConfigAttaches(t *testing.T) {
	e := NewMallocEnv("Lea", Config{Cache: true})
	p := e.Alloc(4096)
	for i := 0; i < 4096; i += 4 {
		e.Space().Load(p + Ptr(i))
	}
	if e.Counters().ReadStalls == 0 {
		t.Fatal("no read stalls with cache attached")
	}
	e2 := NewMallocEnv("Lea", Config{})
	p2 := e2.Alloc(4096)
	e2.Space().Load(p2)
	if e2.Counters().ReadStalls != 0 {
		t.Fatal("stalls without cache model")
	}
}

func TestStoreLoadBytes(t *testing.T) {
	e := NewMallocEnv("BSD", Config{})
	sp := e.Space()
	cases := [][]byte{
		[]byte(""),
		[]byte("a"),
		[]byte("abc"),
		[]byte("abcd"),
		[]byte("abcde"),
		[]byte("the quick brown fox jumps over the lazy dog"),
	}
	for _, want := range cases {
		n := len(want)
		if n == 0 {
			continue
		}
		p := e.Alloc(BytesWords(n) * mem.WordSize)
		StoreBytes(sp, p, want)
		if got := LoadBytes(sp, p, n); !bytes.Equal(got, want) {
			t.Fatalf("round trip %q -> %q", want, got)
		}
	}
}

func TestBytesWords(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 4: 1, 5: 2, 8: 2, 9: 3}
	for n, want := range cases {
		if got := BytesWords(n); got != want {
			t.Errorf("BytesWords(%d)=%d, want %d", n, got, want)
		}
	}
}

func TestUnknownEnvPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewMallocEnv("bogus", Config{}) },
		func() { NewRegionEnv("bogus", Config{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic for unknown env")
				}
			}()
			f()
		}()
	}
}

func TestSafeVsUnsafeSameResults(t *testing.T) {
	// The same workload on safe and unsafe regions must produce identical
	// allocation statistics; only safety cycles differ.
	run := func(kind string) (uint64, uint64, uint64) {
		e := NewRegionEnv(kind, Config{})
		cln := e.RegisterCleanup("cell", func(e RegionEnv, obj Ptr) int {
			e.Destroy(e.Space().Load(obj))
			return 8
		})
		for round := 0; round < 5; round++ {
			r := e.NewRegion()
			var prev Ptr
			for i := 0; i < 200; i++ {
				p := e.Ralloc(r, 8, cln)
				e.StorePtr(p, prev)
				prev = p
			}
			if !e.DeleteRegion(r) {
				t.Fatal("delete failed")
			}
		}
		e.Finalize()
		c := e.Counters()
		return c.Allocs, c.BytesRequested, c.SafetyCycles()
	}
	a1, b1, s1 := run("safe")
	a2, b2, s2 := run("unsafe")
	if a1 != a2 || b1 != b2 {
		t.Fatalf("allocation stats differ: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
	if s1 == 0 || s2 != 0 {
		t.Fatalf("safety cycles: safe=%d unsafe=%d", s1, s2)
	}
}
