package mudlle

import (
	"strings"
	"testing"

	"regions/internal/apps/appkit"
)

func TestSourceShape(t *testing.T) {
	src := string(Source())
	if n := strings.Count(src, "\n"); n < 200 {
		t.Fatalf("source has %d lines, want a few hundred", n)
	}
	if !strings.Contains(src, "(define (main)") {
		t.Fatal("no main")
	}
	if src != string(Source()) {
		t.Fatal("source not deterministic")
	}
	// Parens must balance.
	depth := 0
	for _, ch := range src {
		switch ch {
		case '(':
			depth++
		case ')':
			depth--
		}
		if depth < 0 {
			t.Fatal("unbalanced parens")
		}
	}
	if depth != 0 {
		t.Fatalf("unbalanced parens: %d", depth)
	}
}

func TestAllRegionEnvsAgree(t *testing.T) {
	var want uint32
	first := true
	for _, kind := range appkit.RegionKinds {
		e := appkit.NewRegionEnv(kind, appkit.Config{})
		got := RunRegion(e, 2)
		if first {
			want, first = got, false
			continue
		}
		if got != want {
			t.Fatalf("%s checksum %#x, want %#x", kind, got, want)
		}
	}
}

func TestNoLeaksAndRegionChurn(t *testing.T) {
	e := appkit.NewRegionEnv("safe", appkit.Config{})
	RunRegion(e, 3)
	c := e.Counters()
	if c.LiveRegions != 0 || c.LiveBytes != 0 {
		t.Fatalf("live regions=%d bytes=%d", c.LiveRegions, c.LiveBytes)
	}
	// One file region plus one region per function, per compile.
	if c.RegionsCreated < 3*100 {
		t.Fatalf("only %d regions created", c.RegionsCreated)
	}
}

// compileOne compiles an arbitrary source and returns main's VM result.
func compileOne(t *testing.T, src string) int32 {
	t.Helper()
	e := appkit.NewRegionEnv("unsafe", appkit.Config{})
	c := &compiler{e: e, sp: e.Space()}
	c.registerCleanups()
	c.f = e.PushFrame(numSlots)
	defer e.PopFrame()
	result, _ := c.compileFile([]byte(src))
	return result
}

func TestCompilerSemantics(t *testing.T) {
	cases := []struct {
		src  string
		want int32
	}{
		{"(define (main) 42)", 42},
		{"(define (main) (+ 1 2))", 3},
		{"(define (main) (- 10 4))", 6},
		{"(define (main) (* 6 7))", 42},
		{"(define (main) (< 3 5))", 1},
		{"(define (main) (< 5 3))", 0},
		{"(define (main) (if (< 1 2) 10 20))", 10},
		{"(define (main) (if (< 2 1) 10 20))", 20},
		{"(define (main) (let ((x 5)) (+ x (* x x))))", 30},
		{"(define (f p0) (* p0 p0))\n(define (main) (f 9))", 81},
		{"(define (f p0 p1) (- p0 p1))\n(define (main) (f 10 3))", 7},
		{"(define (g p0) (+ p0 1))\n(define (f p0) (g (g p0)))\n(define (main) (f 5))", 7},
		{"(define (main) (if (< 1 2) (if (< 3 4) 99 1) 2))", 99},
		{"(define (main) (let ((a 2)) (let ((b 3)) (+ a b))))", 5},
	}
	for _, tc := range cases {
		if got := compileOne(t, tc.src); got != tc.want {
			t.Errorf("%s = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestCompilerErrors(t *testing.T) {
	cases := []string{
		"(define (main) (undefinedfn 1))",
		"(define (main) unboundvar)",
		"(define (main) @)",
	}
	for _, src := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %q", src)
				}
			}()
			compileOne(t, src)
		}()
	}
}

func TestLongJumpPatch(t *testing.T) {
	// An if whose branches straddle a chunk boundary exercises patch16.
	var sb strings.Builder
	sb.WriteString("(define (main) (if (< 1 2) (+ 0 ")
	for i := 0; i < 60; i++ {
		sb.WriteString("(+ 1 ")
	}
	sb.WriteString("7")
	for i := 0; i < 60; i++ {
		sb.WriteString(")")
	}
	sb.WriteString(") 5))")
	if got := compileOne(t, sb.String()); got != 67 {
		t.Fatalf("got %d, want 67", got)
	}
}

func TestScaleChangesOnlyRepetition(t *testing.T) {
	a := RunRegion(appkit.NewRegionEnv("unsafe", appkit.Config{}), 1)
	b := RunRegion(appkit.NewRegionEnv("unsafe", appkit.Config{}), 2)
	if a == b {
		t.Fatal("checksums should differ across scales (folded per compile)")
	}
	c1 := appkit.NewRegionEnv("unsafe", appkit.Config{})
	RunRegion(c1, 1)
	c2 := appkit.NewRegionEnv("unsafe", appkit.Config{})
	RunRegion(c2, 2)
	if c2.Counters().Allocs != 2*c1.Counters().Allocs {
		t.Fatalf("allocs don't scale linearly: %d vs %d",
			c1.Counters().Allocs, c2.Counters().Allocs)
	}
}
