package mudlle

import (
	"strings"
	"testing"

	"regions/internal/apps/appkit"
)

// FuzzCompiler feeds arbitrary bytes to the byte-code compiler: it must
// either succeed or reject the input with one of its own "mudlle"
// diagnostics, without tripping the safe region runtime's invariants.
func FuzzCompiler(f *testing.F) {
	f.Add("(define (main) 42)")
	f.Add("(define (f p0) (* p0 p0)) (define (main) (f 7))")
	f.Add("(define (main) (let ((x 1)) (+ x 2)))")
	f.Add("((((")
	f.Add("(define")
	f.Add(")")
	f.Add(string(SourceSeeded(42)[:300]))

	f.Fuzz(func(t *testing.T, src string) {
		e := appkit.NewRegionEnv("safe", appkit.Config{})
		c := &compiler{e: e, sp: e.Space()}
		c.registerCleanups()
		c.f = e.PushFrame(numSlots)
		defer e.PopFrame()
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			msg, ok := r.(string)
			if !ok || !strings.HasPrefix(msg, "mudlle") {
				panic(r)
			}
		}()
		c.compileFile([]byte(src))
		if e.Counters().LiveRegions != 0 {
			t.Fatalf("regions leaked on input %q", src)
		}
	})
}
