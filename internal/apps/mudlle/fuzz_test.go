package mudlle

import (
	"testing"

	"regions/internal/apps/appkit"
)

// compileSeeded compiles one seeded program on the given env.
func compileSeeded(e appkit.RegionEnv, seed uint32) (int32, uint32) {
	c := &compiler{e: e, sp: e.Space()}
	c.registerCleanups()
	c.f = e.PushFrame(numSlots)
	defer e.PopFrame()
	return c.compileFile(SourceSeeded(seed))
}

// TestFuzzSeededProgramsAcrossEnvs compiles random programs on the safe
// runtime, the unsafe runtime, and the emulation library over the
// conservative collector, requiring identical results.
func TestFuzzSeededProgramsAcrossEnvs(t *testing.T) {
	for seed := uint32(1); seed <= 6; seed++ {
		safeRes, safeHash := compileSeeded(appkit.NewRegionEnv("safe", appkit.Config{}), seed)
		unsafeRes, unsafeHash := compileSeeded(appkit.NewRegionEnv("unsafe", appkit.Config{}), seed)
		gcRes, gcHash := compileSeeded(appkit.NewRegionEnv("emu:GC", appkit.Config{}), seed)
		if safeRes != unsafeRes || safeHash != unsafeHash {
			t.Fatalf("seed %d: safe (%d,%#x) != unsafe (%d,%#x)",
				seed, safeRes, safeHash, unsafeRes, unsafeHash)
		}
		if safeRes != gcRes || safeHash != gcHash {
			t.Fatalf("seed %d: safe (%d,%#x) != emu:GC (%d,%#x)",
				seed, safeRes, safeHash, gcRes, gcHash)
		}
	}
}

func TestFuzzSeedsProduceDistinctPrograms(t *testing.T) {
	if string(SourceSeeded(1)) == string(SourceSeeded(2)) {
		t.Fatal("different seeds generated identical programs")
	}
	if string(SourceSeeded(3)) != string(SourceSeeded(3)) {
		t.Fatal("generator not deterministic per seed")
	}
}
