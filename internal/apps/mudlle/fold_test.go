package mudlle

import (
	"strings"
	"testing"

	"regions/internal/apps/appkit"
)

// compileCounted compiles src and returns main's result and the module
// size in bytes, with folding optionally disabled.
func compileCounted(t *testing.T, src string, noFold bool) (int32, int) {
	t.Helper()
	e := appkit.NewRegionEnv("unsafe", appkit.Config{})
	c := &compiler{e: e, sp: e.Space(), noFold: noFold}
	c.registerCleanups()
	c.f = e.PushFrame(numSlots)
	defer e.PopFrame()
	result, _ := c.compileFile([]byte(src))
	return result, c.moduleOff
}

func TestFoldingPreservesSemantics(t *testing.T) {
	cases := []string{
		"(define (main) (+ 2 3))",
		"(define (main) (* (+ 1 2) (- 7 3)))",
		"(define (main) (if (< 1 2) 10 20))",
		"(define (main) (if (< 2 1) 10 20))",
		"(define (main) (let ((x (* 3 3))) (+ x (- 5 5))))",
		"(define (f p0) (* p0 (+ 2 2))) (define (main) (f 5))",
		"(define (main) (if (< (+ 1 1) 3) (* 2 (+ 3 4)) 0))",
	}
	for _, src := range cases {
		folded, fsz := compileCounted(t, src, false)
		plain, psz := compileCounted(t, src, true)
		if folded != plain {
			t.Errorf("%s: folded=%d plain=%d", src, folded, plain)
		}
		if fsz > psz {
			t.Errorf("%s: folding grew code %d -> %d bytes", src, psz, fsz)
		}
	}
}

func TestFoldingShrinksCode(t *testing.T) {
	src := "(define (main) (+ (* 2 3) (* 4 5)))"
	_, fsz := compileCounted(t, src, false)
	_, psz := compileCounted(t, src, true)
	if fsz >= psz {
		t.Fatalf("no shrink: %d vs %d", fsz, psz)
	}
}

func TestFoldingDeadBranchElimination(t *testing.T) {
	// The untaken branch of a constant conditional disappears entirely,
	// including the unbound... rather, even an expensive subtree.
	src := "(define (main) (if (< 1 2) 7 (* (* (* 9 9) (* 9 9)) (* (* 9 9) (* 9 9)))))"
	_, fsz := compileCounted(t, src, false)
	_, psz := compileCounted(t, src, true)
	if got, _ := compileCounted(t, src, false); got != 7 {
		t.Fatalf("result %d", got)
	}
	if fsz*3 > psz {
		t.Fatalf("dead branch not eliminated: %d vs %d bytes", fsz, psz)
	}
}

func TestFoldingWholeProgram(t *testing.T) {
	src := string(Source())
	folded, fsz := compileCounted(t, src, false)
	plain, psz := compileCounted(t, src, true)
	if folded != plain {
		t.Fatalf("folded=%d plain=%d", folded, plain)
	}
	if fsz >= psz {
		t.Fatalf("no shrink on generated program: %d vs %d", fsz, psz)
	}
	t.Logf("module bytes: %d unoptimized -> %d folded (%.1f%% smaller)",
		psz, fsz, 100*(1-float64(fsz)/float64(psz)))
	if !strings.Contains(src, "(define (main)") {
		t.Fatal("sanity")
	}
}

func TestFoldingSeededPrograms(t *testing.T) {
	for seed := uint32(20); seed < 26; seed++ {
		src := string(SourceSeeded(seed))
		folded, _ := compileCounted(t, src, false)
		plain, _ := compileCounted(t, src, true)
		if folded != plain {
			t.Fatalf("seed %d: folded=%d plain=%d", seed, folded, plain)
		}
	}
}
