// Package mudlle reimplements the paper's "mudlle" benchmark: a byte-code
// compiler for a scheme-like language. The paper compiles the same 500-line
// file 100 times; the original program already used unsafe regions, and its
// malloc/free numbers were measured with the emulation region library — the
// App descriptor marks that with UsesEmulation.
//
// Region structure, from the paper: "one region holds the abstract syntax
// tree of the file being compiled and one region is created to hold the
// data structures needed to compile each function."
//
// The pipeline is lexer → s-expression parser (AST in the file region) →
// per-function byte-code generation (scratch in the function region) → a
// module image, which a small stack VM then executes to produce the result
// folded into the checksum.
package mudlle

import (
	_ "embed"
	"fmt"

	"regions/internal/apps/appkit"
)

//go:embed region.go
var regionSource string

// App returns the mudlle benchmark descriptor.
func App() appkit.App {
	return appkit.App{
		Name:          "mudlle",
		DefaultScale:  100, // compile the file this many times, as the paper
		Region:        RunRegion,
		RegionSource:  regionSource,
		UsesEmulation: true,
	}
}

// Byte-code operations.
const (
	opPushConst  = iota // u32 literal follows
	opPushLocal         // u8 slot follows
	opCall              // u8 function index, u8 argc follow
	opPrim              // u8 primitive, u8 argc follow
	opJmpFalse          // u16 absolute target follows
	opJmp               // u16 absolute target follows
	opStoreLocal        // u8 slot follows
	opRet
)

// Primitives.
const (
	primAdd = iota
	primSub
	primMul
	primLess
)

// Source generates the deterministic ~500-line input program: a chain of
// small function definitions, each built from arithmetic, comparisons,
// conditionals, lets, and calls to earlier functions, ending with main.
func Source() []byte { return SourceSeeded(0x3cde) }

// SourceSeeded generates a program from an arbitrary seed; every seed
// yields a valid, terminating program, which the fuzz tests rely on.
func SourceSeeded(seed uint32) []byte {
	g := lcg{s: seed}
	const nfns = 120
	// As in minicc's generator, a per-function cost estimate keeps the
	// random call graph from compounding past the VM's step bound.
	const calleeBudget = 30000
	arity := make([]int, nfns)
	estCost := make([]float64, nfns)
	var callCost float64
	var out []byte

	var expr func(depth, params, fnIdx int) string
	expr = func(depth, params, fnIdx int) string {
		if depth == 0 || g.pick(5) == 0 {
			if params > 0 && g.pick(3) != 0 {
				return fmt.Sprintf("p%d", g.pick(params))
			}
			return fmt.Sprintf("%d", g.pick(100))
		}
		switch g.pick(7) {
		case 0:
			return fmt.Sprintf("(+ %s %s)", expr(depth-1, params, fnIdx), expr(depth-1, params, fnIdx))
		case 1:
			return fmt.Sprintf("(- %s %s)", expr(depth-1, params, fnIdx), expr(depth-1, params, fnIdx))
		case 2:
			return fmt.Sprintf("(* %s %s)", expr(depth-1, params, fnIdx), expr(depth-1, params, fnIdx))
		case 3:
			return fmt.Sprintf("(if (< %s %s) %s %s)",
				expr(depth-1, params, fnIdx), expr(depth-1, params, fnIdx),
				expr(depth-1, params, fnIdx), expr(depth-1, params, fnIdx))
		case 4:
			return fmt.Sprintf("(let ((t%d %s)) (+ t%d %s))", depth,
				expr(depth-1, params, fnIdx), depth, expr(depth-1, params, fnIdx))
		default:
			callee := -1
			if fnIdx > 0 {
				for try := 0; try < 4; try++ {
					cand := g.pick(fnIdx)
					if estCost[cand] <= calleeBudget {
						callee = cand
						break
					}
				}
			}
			if callee < 0 {
				return fmt.Sprintf("(* %s 2)", expr(depth-1, params, fnIdx))
			}
			callCost += estCost[callee] + 5
			args := ""
			for a := 0; a < arity[callee]; a++ {
				args += " " + expr(depth-1, params, fnIdx)
			}
			return fmt.Sprintf("(f%d%s)", callee, args)
		}
	}

	for i := 0; i < nfns; i++ {
		arity[i] = 1 + g.pick(3)
		params := ""
		for p := 0; p < arity[i]; p++ {
			params += fmt.Sprintf(" p%d", p)
		}
		callCost = 0
		b := expr(3, arity[i], i)
		estCost[i] = 30 + callCost
		out = append(out, fmt.Sprintf("(define (f%d%s)\n  %s)\n", i, params, b)...)
	}
	// main combines calls to several of the last affordable functions.
	var mains []int
	for i := nfns - 1; i >= 0 && len(mains) < 5; i-- {
		if estCost[i] <= calleeBudget {
			mains = append(mains, i)
		}
	}
	body := "0"
	for _, i := range mains {
		args := ""
		for a := 0; a < arity[i]; a++ {
			args += fmt.Sprintf(" %d", g.pick(50))
		}
		body = fmt.Sprintf("(+ %s (f%d%s))", body, i, args)
	}
	out = append(out, fmt.Sprintf("(define (main) %s)\n", body)...)
	return out
}

type lcg struct{ s uint32 }

func (g *lcg) next() uint32 {
	g.s = g.s*1664525 + 1013904223
	return g.s >> 8
}

func (g *lcg) pick(n int) int { return int(g.next()) % n }

// checksum folds one compile+run outcome.
func mix(h *uint32, v uint32) {
	for k := 0; k < 4; k++ {
		*h = (*h ^ (v & 0xff)) * 16777619
		v >>= 8
	}
}
