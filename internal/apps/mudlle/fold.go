package mudlle

import "regions/internal/apps/appkit"

// Constant folding for the byte-code compiler: primitives whose arguments
// are all literals are evaluated at compile time, and conditionals with a
// literal condition are replaced by the taken branch. As in minicc, the
// abandoned subtrees simply die with the file region.

// fold rewrites the expression tree under n and returns its (possibly
// different) root.
func (c *compiler) fold(n appkit.Ptr) appkit.Ptr {
	sp := c.sp
	switch sp.Load(n + nKind) {
	case nNum, nVar:
		return n
	case nLet:
		c.e.StorePtr(n+nY, c.fold(sp.Load(n+nY)))
		c.e.StorePtr(n+nZ, c.fold(sp.Load(n+nZ)))
		return n
	case nCall:
		c.foldArgs(sp.Load(n + nY))
		return n
	case nIf:
		cond := c.fold(sp.Load(n + nX))
		c.e.StorePtr(n+nX, cond)
		c.e.StorePtr(n+nY, c.fold(sp.Load(n+nY)))
		c.e.StorePtr(n+nZ, c.fold(sp.Load(n+nZ)))
		if sp.Load(cond+nKind) == nNum {
			if sp.Load(cond+nX) != 0 {
				return sp.Load(n + nY)
			}
			return sp.Load(n + nZ)
		}
		return n
	case nPrim:
		c.foldArgs(sp.Load(n + nY))
		// Binary primitive with two literal arguments?
		args := sp.Load(n + nY)
		if args == 0 {
			return n
		}
		a1 := sp.Load(args)
		rest := sp.Load(args + 4)
		if rest == 0 || sp.Load(rest+4) != 0 {
			return n
		}
		a2 := sp.Load(rest)
		if sp.Load(a1+nKind) != nNum || sp.Load(a2+nKind) != nNum {
			return n
		}
		x, y := int32(sp.Load(a1+nX)), int32(sp.Load(a2+nX))
		var v int32
		switch sp.Load(n + nX) {
		case primAdd:
			v = x + y
		case primSub:
			v = x - y
		case primMul:
			v = x * y
		case primLess:
			if x < y {
				v = 1
			}
		default:
			return n
		}
		// Rewrite n in place to a literal; its cleanup must stop seeing
		// the arguments, so clear the pointer field through the barrier.
		c.e.StorePtr(n+nY, 0)
		sp.Store(n+nKind, nNum)
		sp.Store(n+nX, uint32(v))
		return n
	}
	panic("mudlle: bad node kind in fold")
}

// foldArgs folds each argument in a cons list in place.
func (c *compiler) foldArgs(args appkit.Ptr) {
	sp := c.sp
	for a := args; a != 0; a = sp.Load(a + 4) {
		c.e.StorePtr(a, c.fold(sp.Load(a)))
	}
}
