package mudlle

import (
	"fmt"

	"regions/internal/apps/appkit"
)

// run executes the compiled module's function mainIdx on a small stack
// machine, reading the byte-code out of the simulated heap. The generated
// programs are loop- and recursion-free, so execution always terminates;
// the step cap is a defensive bound.
func (c *compiler) run(mainIdx int) int32 {
	sp := c.sp
	module := c.f.Get(sModule)
	meta := c.f.Get(sMeta)

	metaAt := func(idx, field int) int {
		return int(sp.Load(meta + appkit.Ptr(idx*metaEntry+field*4)))
	}
	code := func(pc int) byte { return sp.LoadByte(module + appkit.Ptr(pc)) }

	// Jump targets are function-relative, so each frame remembers its
	// function's code start.
	type frame struct{ retPC, base, start int }
	var stack []int32
	var frames []frame

	push := func(v int32) { stack = append(stack, v) }
	pop := func() int32 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}

	enter := func(idx, argc, retPC int) int {
		if argc != metaAt(idx, 1) {
			panic(fmt.Sprintf("mudlle vm: arity mismatch calling f%d: %d != %d",
				idx, argc, metaAt(idx, 1)))
		}
		base := len(stack) - argc
		for len(stack) < base+metaAt(idx, 2) {
			push(0)
		}
		start := metaAt(idx, 0)
		frames = append(frames, frame{retPC: retPC, base: base, start: start})
		return start
	}

	pc := enter(mainIdx, 0, -1)
	for steps := 0; ; steps++ {
		if steps > 10_000_000 {
			panic("mudlle vm: step limit exceeded")
		}
		op := code(pc)
		pc++
		switch op {
		case opPushConst:
			v := uint32(code(pc))<<24 | uint32(code(pc+1))<<16 | uint32(code(pc+2))<<8 | uint32(code(pc+3))
			pc += 4
			push(int32(v))
		case opPushLocal:
			slot := int(code(pc))
			pc++
			push(stack[frames[len(frames)-1].base+slot])
		case opStoreLocal:
			slot := int(code(pc))
			pc++
			stack[frames[len(frames)-1].base+slot] = pop()
		case opPrim:
			prim := code(pc)
			argc := int(code(pc + 1))
			pc += 2
			if argc != 2 {
				panic("mudlle vm: non-binary primitive")
			}
			b, a := pop(), pop()
			switch prim {
			case primAdd:
				push(a + b)
			case primSub:
				push(a - b)
			case primMul:
				push(a * b)
			case primLess:
				if a < b {
					push(1)
				} else {
					push(0)
				}
			default:
				panic("mudlle vm: bad primitive")
			}
		case opCall:
			idx := int(code(pc))
			argc := int(code(pc + 1))
			pc = enter(idx, argc, pc+2)
		case opJmpFalse:
			target := int(code(pc))<<8 | int(code(pc+1))
			pc += 2
			if pop() == 0 {
				pc = frames[len(frames)-1].start + target
			}
		case opJmp:
			pc = frames[len(frames)-1].start + (int(code(pc))<<8 | int(code(pc+1)))
		case opRet:
			v := pop()
			fr := frames[len(frames)-1]
			frames = frames[:len(frames)-1]
			stack = stack[:fr.base]
			push(v)
			if fr.retPC < 0 {
				return v
			}
			pc = fr.retPC
		default:
			panic(fmt.Sprintf("mudlle vm: bad opcode %d at %d", op, pc-1))
		}
	}
}
