package mudlle

import (
	"fmt"

	"regions/internal/apps/appkit"
	"regions/internal/mem"
)

// Heap object layouts (byte offsets).
//
// Symbol (interned, in the file region): +0 next in bucket, +4 value
// (function index + 1, or 0), +8 length, +12 chars.
// AST node: +0 kind, +4/+8/+12 operands (pointers or immediates by kind).
// Cons cell: +0 car, +4 cdr.
// Define record: +0 next, +4 name symbol, +8 parameter list, +12 body.
// Environment entry (function region): +0 next, +4 symbol, +8 slot.
// Code chunk (function region): +0 next, +4 used, +8 bytes.
const (
	symNext, symVal, symLen, symChars = 0, 4, 8, 12

	nKind, nX, nY, nZ = 0, 4, 8, 12
	nodeSize          = 16

	nNum  = 1
	nVar  = 2
	nIf   = 3
	nLet  = 4
	nCall = 5
	nPrim = 6

	envNext, envSym, envSlot = 0, 4, 8

	chNext, chUsed, chBytes = 0, 4, 8
	chunkCap                = 256

	symBuckets = 128
	maxFns     = 256
	moduleCap  = 96 * 1024
	metaEntry  = 12 // code offset, nparams, nslots
)

// compiler carries one compilation's state: the file region (AST, symbols,
// module image) plus the scratch of the function currently being compiled.
type compiler struct {
	e  appkit.RegionEnv
	sp *mem.Space
	f  appkit.Frame

	clnSym, clnNode, clnCons, clnDef, clnEnv, clnChunk, clnPtr appkit.CleanupID

	ast appkit.BoundRegion

	// Function-compile scratch (reset per function).
	fnReg   appkit.BoundRegion
	chunks  []appkit.Ptr // host mirror of the chunk list for patching
	pc      int
	nlocals int

	nfns      int
	moduleOff int

	toks []token
	pos  int

	// noFold disables constant folding (for the differential tests).
	noFold bool
}

// Frame slot layout.
const (
	sSymtab = iota
	sDefines
	sDefTail
	sModule
	sMeta
	sEnv
	sChunks
	sScratch
	numSlots
)

// RunRegion compiles the generated source file scale times, executing the
// resulting byte-code once per compile, and returns the checksum.
func RunRegion(e appkit.RegionEnv, scale int) uint32 {
	src := Source()
	c := &compiler{e: e, sp: e.Space()}
	c.registerCleanups()
	h := uint32(2166136261)
	for i := 0; i < scale; i++ {
		c.f = e.PushFrame(numSlots)
		result, modBytes := c.compileFile(src)
		mix(&h, uint32(result))
		mix(&h, modBytes)
		e.PopFrame()
		e.Safepoint()
	}
	e.Finalize()
	return h
}

func (c *compiler) registerCleanups() {
	e := c.e
	c.clnSym = e.RegisterCleanup("mudlle.sym", func(e appkit.RegionEnv, o appkit.Ptr) int {
		e.Destroy(e.Space().Load(o + symNext))
		return symChars + int(e.Space().Load(o+symLen)+3)&^3
	})
	c.clnNode = e.RegisterCleanup("mudlle.node", func(e appkit.RegionEnv, o appkit.Ptr) int {
		sp := e.Space()
		switch sp.Load(o + nKind) {
		case nVar:
			e.Destroy(sp.Load(o + nX))
		case nIf:
			e.Destroy(sp.Load(o + nX))
			e.Destroy(sp.Load(o + nY))
			e.Destroy(sp.Load(o + nZ))
		case nLet:
			e.Destroy(sp.Load(o + nX))
			e.Destroy(sp.Load(o + nY))
			e.Destroy(sp.Load(o + nZ))
		case nCall:
			e.Destroy(sp.Load(o + nX))
			e.Destroy(sp.Load(o + nY))
		case nPrim:
			e.Destroy(sp.Load(o + nY))
		}
		return nodeSize
	})
	c.clnCons = e.RegisterCleanup("mudlle.cons", func(e appkit.RegionEnv, o appkit.Ptr) int {
		e.Destroy(e.Space().Load(o))
		e.Destroy(e.Space().Load(o + 4))
		return 8
	})
	c.clnDef = e.RegisterCleanup("mudlle.def", func(e appkit.RegionEnv, o appkit.Ptr) int {
		for off := appkit.Ptr(0); off < 16; off += 4 {
			e.Destroy(e.Space().Load(o + off))
		}
		return 16
	})
	c.clnEnv = e.RegisterCleanup("mudlle.env", func(e appkit.RegionEnv, o appkit.Ptr) int {
		e.Destroy(e.Space().Load(o + envNext))
		e.Destroy(e.Space().Load(o + envSym))
		return 12
	})
	c.clnChunk = e.RegisterCleanup("mudlle.chunk", func(e appkit.RegionEnv, o appkit.Ptr) int {
		e.Destroy(e.Space().Load(o + chNext))
		return chBytes + chunkCap
	})
	c.clnPtr = e.RegisterCleanup("mudlle.ptr", func(e appkit.RegionEnv, o appkit.Ptr) int {
		e.Destroy(e.Space().Load(o))
		return 4
	})
}

// --- lexer ------------------------------------------------------------------

type token struct {
	kind byte // '(' ')' 'n' 's'
	text string
	num  int32
}

// lex reads the source out of the heap buffer and tokenizes it.
func (c *compiler) lex(text appkit.Ptr, n int) []token {
	sp := c.sp
	var toks []token
	i := 0
	read := func(k int) byte { return sp.LoadByte(text + appkit.Ptr(k)) }
	for i < n {
		b := read(i)
		switch {
		case b == ' ' || b == '\n' || b == '\t':
			i++
		case b == '(' || b == ')':
			toks = append(toks, token{kind: b})
			i++
		case b >= '0' && b <= '9':
			v := int32(0)
			for i < n {
				d := read(i)
				if d < '0' || d > '9' {
					break
				}
				v = v*10 + int32(d-'0')
				i++
			}
			toks = append(toks, token{kind: 'n', num: v})
		default:
			start := i
			var sb []byte
			for i < n {
				d := read(i)
				if d == ' ' || d == '\n' || d == '\t' || d == '(' || d == ')' {
					break
				}
				sb = append(sb, d)
				i++
			}
			if i == start {
				panic(fmt.Sprintf("mudlle: bad character %q at %d", b, i))
			}
			toks = append(toks, token{kind: 's', text: string(sb)})
		}
	}
	return toks
}

// --- symbols ----------------------------------------------------------------

func hashStr(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// intern returns the symbol for name, creating it in the file region.
func (c *compiler) intern(name string) appkit.Ptr {
	sp := c.sp
	table := c.f.Get(sSymtab)
	b := table + appkit.Ptr(hashStr(name)%symBuckets*4)
	for s := sp.Load(b); s != 0; s = sp.Load(s + symNext) {
		if int(sp.Load(s+symLen)) == len(name) &&
			string(appkit.LoadBytes(sp, s+symChars, len(name))) == name {
			return s
		}
	}
	s := c.ast.Alloc(symChars+(len(name)+3)&^3, c.clnSym)
	c.e.StorePtr(s+symNext, sp.Load(b))
	sp.Store(s+symLen, uint32(len(name)))
	appkit.StoreBytes(sp, s+symChars, []byte(name))
	c.e.StorePtr(b, s)
	return s
}

// --- parser -----------------------------------------------------------------

func (c *compiler) peek() token {
	if c.pos >= len(c.toks) {
		return token{kind: 0} // end of input; any expect() will diagnose
	}
	return c.toks[c.pos]
}

func (c *compiler) nextT() token {
	if c.pos >= len(c.toks) {
		panic("mudlle: unexpected end of input")
	}
	t := c.toks[c.pos]
	c.pos++
	return t
}

func (c *compiler) expect(kind byte) token {
	t := c.nextT()
	if t.kind != kind {
		panic(fmt.Sprintf("mudlle: expected %q, got %q %q", kind, t.kind, t.text))
	}
	return t
}

func (c *compiler) newNode(kind uint32) appkit.Ptr {
	n := c.ast.Alloc(nodeSize, c.clnNode)
	c.sp.Store(n+nKind, kind)
	return n
}

// parseExpr builds one AST node in the file region.
func (c *compiler) parseExpr() appkit.Ptr {
	t := c.nextT()
	switch t.kind {
	case 'n':
		n := c.newNode(nNum)
		c.sp.Store(n+nX, uint32(t.num))
		return n
	case 's':
		n := c.newNode(nVar)
		c.e.StorePtr(n+nX, c.intern(t.text))
		return n
	case '(':
		head := c.expect('s').text
		var n appkit.Ptr
		switch head {
		case "if":
			n = c.newNode(nIf)
			c.e.StorePtr(n+nX, c.parseExpr())
			c.e.StorePtr(n+nY, c.parseExpr())
			c.e.StorePtr(n+nZ, c.parseExpr())
		case "let":
			c.expect('(')
			c.expect('(')
			name := c.expect('s').text
			n = c.newNode(nLet)
			c.e.StorePtr(n+nX, c.intern(name))
			c.e.StorePtr(n+nY, c.parseExpr())
			c.expect(')')
			c.expect(')')
			c.e.StorePtr(n+nZ, c.parseExpr())
		case "+", "-", "*", "<":
			ops := map[string]uint32{"+": primAdd, "-": primSub, "*": primMul, "<": primLess}
			n = c.newNode(nPrim)
			c.sp.Store(n+nX, ops[head])
			c.e.StorePtr(n+nY, c.parseArgs())
		default:
			n = c.newNode(nCall)
			c.e.StorePtr(n+nX, c.intern(head))
			c.e.StorePtr(n+nY, c.parseArgs())
		}
		c.expect(')')
		return n
	}
	panic(fmt.Sprintf("mudlle: unexpected token %q", t.kind))
}

// parseArgs builds the argument list (cons cells) up to the closing paren.
func (c *compiler) parseArgs() appkit.Ptr {
	if c.peek().kind == ')' {
		return 0
	}
	// Build in order: the car is parsed first, then the tail.
	cell := c.ast.Alloc(8, c.clnCons)
	c.e.StorePtr(cell, c.parseExpr())
	c.e.StorePtr(cell+4, c.parseArgs())
	return cell
}

// parseDefine parses (define (name params...) body).
func (c *compiler) parseDefine() appkit.Ptr {
	c.expect('(')
	if kw := c.expect('s').text; kw != "define" {
		panic("mudlle: expected define")
	}
	c.expect('(')
	name := c.intern(c.expect('s').text)
	var params appkit.Ptr
	var tail appkit.Ptr
	for c.peek().kind == 's' {
		cell := c.ast.Alloc(8, c.clnCons)
		c.e.StorePtr(cell, c.intern(c.nextT().text))
		if params == 0 {
			params = cell
			c.f.Set(sScratch, params)
		} else {
			c.e.StorePtr(tail+4, cell)
		}
		tail = cell
	}
	c.expect(')')
	def := c.ast.Alloc(16, c.clnDef)
	c.e.StorePtr(def+4, name)
	c.e.StorePtr(def+8, params)
	c.f.Set(sScratch, def)
	c.e.StorePtr(def+12, c.parseExpr())
	c.expect(')')
	c.f.Set(sScratch, 0)
	return def
}

// --- code generation ---------------------------------------------------------

func (c *compiler) emit(bytes ...byte) {
	sp := c.sp
	for _, b := range bytes {
		cur := c.f.Get(sChunks)
		if cur == 0 || sp.Load(cur+chUsed) == chunkCap {
			nc := c.fnReg.Alloc(chBytes+chunkCap, c.clnChunk)
			if cur != 0 {
				// Chunks link newest-first is wrong for replay; keep a
				// host-side ordered mirror and link for cleanup only.
				c.e.StorePtr(nc+chNext, cur)
			}
			c.f.Set(sChunks, nc)
			c.chunks = append(c.chunks, nc)
			cur = nc
		}
		used := sp.Load(cur + chUsed)
		sp.StoreByte(cur+chBytes+appkit.Ptr(used), b)
		sp.Store(cur+chUsed, used+1)
		c.pc++
	}
}

// patch16 rewrites a previously emitted 2-byte big-endian target.
func (c *compiler) patch16(at, target int) {
	chunk := c.chunks[at/chunkCap]
	off := at % chunkCap
	c.sp.StoreByte(chunk+chBytes+appkit.Ptr(off), byte(target>>8))
	if off+1 == chunkCap {
		chunk = c.chunks[at/chunkCap+1]
		off = -1
	}
	c.sp.StoreByte(chunk+chBytes+appkit.Ptr(off+1), byte(target))
}

// lookup resolves a variable in the function's environment list.
func (c *compiler) lookup(sym appkit.Ptr) int {
	sp := c.sp
	for e := c.f.Get(sEnv); e != 0; e = sp.Load(e + envNext) {
		if sp.Load(e+envSym) == sym {
			return int(sp.Load(e + envSlot))
		}
	}
	panic("mudlle: unbound variable " + c.symName(sym))
}

func (c *compiler) symName(sym appkit.Ptr) string {
	return string(appkit.LoadBytes(c.sp, sym+symChars, int(c.sp.Load(sym+symLen))))
}

// bind pushes a new environment entry in the function region.
func (c *compiler) bind(sym appkit.Ptr, slot int) {
	e := c.fnReg.Alloc(12, c.clnEnv)
	c.e.StorePtr(e+envNext, c.f.Get(sEnv))
	c.e.StorePtr(e+envSym, sym) // cross-region pointer into the file region
	c.sp.Store(e+envSlot, uint32(slot))
	c.f.Set(sEnv, e)
}

// gen emits code for an expression node.
func (c *compiler) gen(n appkit.Ptr) {
	sp := c.sp
	switch sp.Load(n + nKind) {
	case nNum:
		v := sp.Load(n + nX)
		c.emit(opPushConst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	case nVar:
		c.emit(opPushLocal, byte(c.lookup(sp.Load(n+nX))))
	case nPrim:
		argc := 0
		for a := sp.Load(n + nY); a != 0; a = sp.Load(a + 4) {
			c.gen(sp.Load(a))
			argc++
		}
		c.emit(opPrim, byte(sp.Load(n+nX)), byte(argc))
	case nCall:
		sym := sp.Load(n + nX)
		idx := int(sp.Load(sym+symVal)) - 1
		if idx < 0 {
			panic("mudlle: call to undefined function " + c.symName(sym))
		}
		argc := 0
		for a := sp.Load(n + nY); a != 0; a = sp.Load(a + 4) {
			c.gen(sp.Load(a))
			argc++
		}
		c.emit(opCall, byte(idx), byte(argc))
	case nIf:
		c.gen(sp.Load(n + nX))
		c.emit(opJmpFalse, 0, 0)
		p1 := c.pc - 2
		c.gen(sp.Load(n + nY))
		c.emit(opJmp, 0, 0)
		p2 := c.pc - 2
		c.patch16(p1, c.pc)
		c.gen(sp.Load(n + nZ))
		c.patch16(p2, c.pc)
	case nLet:
		c.gen(sp.Load(n + nY))
		slot := c.nlocals
		c.nlocals++
		c.emit(opStoreLocal, byte(slot))
		saved := c.f.Get(sEnv)
		c.bind(sp.Load(n+nX), slot)
		c.gen(sp.Load(n + nZ))
		c.f.Set(sEnv, saved)
	default:
		panic("mudlle: bad node kind")
	}
}

// compileFn generates one function's code in a fresh function region, then
// copies it into the module image and deletes the region.
func (c *compiler) compileFn(def appkit.Ptr) {
	sp := c.sp
	c.fnReg = appkit.NewBound(c.e)
	c.chunks = c.chunks[:0]
	c.pc = 0
	c.f.Set(sEnv, 0)
	c.f.Set(sChunks, 0)

	name := sp.Load(def + 4)
	idx := c.nfns
	if idx == maxFns {
		panic("mudlle: too many functions")
	}
	c.nfns++
	sp.Store(name+symVal, uint32(idx+1))

	if !c.noFold {
		c.e.StorePtr(def+12, c.fold(sp.Load(def+12)))
	}

	nparams := 0
	for p := sp.Load(def + 8); p != 0; p = sp.Load(p + 4) {
		c.bind(sp.Load(p), nparams)
		nparams++
	}
	c.nlocals = nparams
	c.gen(sp.Load(def + 12))
	c.emit(opRet)

	// Copy the finished code into the module image.
	module := c.f.Get(sModule)
	meta := c.f.Get(sMeta)
	if c.moduleOff+c.pc > moduleCap {
		panic("mudlle: module image overflow")
	}
	written := 0
	for _, chunk := range c.chunks {
		used := int(sp.Load(chunk + chUsed))
		for i := 0; i < used; i++ {
			sp.StoreByte(module+appkit.Ptr(c.moduleOff+written), sp.LoadByte(chunk+chBytes+appkit.Ptr(i)))
			written++
		}
	}
	sp.Store(meta+appkit.Ptr(idx*metaEntry), uint32(c.moduleOff))
	sp.Store(meta+appkit.Ptr(idx*metaEntry+4), uint32(nparams))
	sp.Store(meta+appkit.Ptr(idx*metaEntry+8), uint32(c.nlocals))
	c.moduleOff += c.pc

	// The function's scratch dies all at once.
	c.f.Set(sEnv, 0)
	c.f.Set(sChunks, 0)
	if !c.fnReg.Delete() {
		panic("mudlle: function region not deletable")
	}
	c.fnReg = appkit.BoundRegion{}
}

// compileFile runs the whole pipeline for one compilation of src and
// returns the VM result of main plus the module size.
func (c *compiler) compileFile(src []byte) (int32, uint32) {
	e, sp := c.e, c.sp
	c.ast = appkit.NewBound(e)
	c.nfns = 0
	c.moduleOff = 0

	// The source text lives in the file region, like the original's input
	// buffer; the lexer reads it back out of the heap.
	text := c.ast.AllocStr(len(src))
	appkit.StoreBytes(sp, text, src)
	c.toks = c.lex(text, len(src))
	c.pos = 0

	c.f.Set(sSymtab, c.ast.AllocArray(symBuckets, 4, c.clnPtr))
	c.f.Set(sModule, c.ast.AllocStr(moduleCap))
	meta := c.ast.AllocStr(maxFns * metaEntry)
	c.f.Set(sMeta, meta)

	mainIdx := -1
	for c.pos < len(c.toks) {
		def := c.parseDefine()
		c.f.Set(sDefines, def) // root the newest define; older ones are compiled already
		c.compileFn(def)
		if c.symName(sp.Load(def+4)) == "main" {
			mainIdx = c.nfns - 1
		}
		e.Safepoint()
	}
	if mainIdx < 0 {
		panic("mudlle: no main")
	}
	result := c.run(mainIdx)

	var modHash uint32 = 2166136261
	for i := 0; i < c.moduleOff; i++ {
		modHash = (modHash ^ uint32(sp.LoadByte(c.f.Get(sModule)+appkit.Ptr(i)))) * 16777619
	}

	for i := 0; i < numSlots; i++ {
		c.f.Set(i, 0)
	}
	if !c.ast.Delete() {
		panic("mudlle: file region not deletable")
	}
	c.ast = appkit.BoundRegion{}
	return result, modHash
}
