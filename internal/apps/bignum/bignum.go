// Package bignum implements arbitrary-precision natural numbers stored in
// the simulated heap, the substrate the cfrac benchmark factors with. The
// paper's cfrac spends nearly all of its 3.8 million allocations on small
// multi-precision numbers; this package reproduces that profile: numbers
// are immutable, every operation allocates its result, and lifetime is the
// caller's problem (reference counting in the malloc variant, regions in
// the region variant).
//
// Representation: little-endian base-2^16 limbs, one limb per 32-bit word,
// preceded by a length word:
//
//	+0  number of limbs (0 = zero)
//	+4  limb 0 (least significant), ...
//
// The 16-bit base keeps every intermediate product inside uint64 range and
// makes Knuth's Algorithm D straightforward.
package bignum

import (
	"fmt"

	"regions/internal/mem"
)

// Ptr is a simulated heap address.
type Ptr = mem.Addr

// Base is the limb radix.
const Base = 1 << 16

// Arena supplies storage for results: any allocator (malloc'd numbers with
// a reference-count header, region allocations, GC objects) can back it.
type Arena interface {
	Space() *mem.Space
	// AllocNum returns storage for a number of up to limbs limbs: a length
	// word followed by limbs limb words. The length word is set by the
	// bignum routines.
	AllocNum(limbs int) Ptr
}

// NumBytes returns the allocation size for a number of n limbs.
func NumBytes(n int) int { return (1 + n) * mem.WordSize }

// Len returns the number of limbs of x.
func Len(sp *mem.Space, x Ptr) int { return int(sp.Load(x)) }

func limb(sp *mem.Space, x Ptr, i int) uint64 {
	return uint64(sp.Load(x + Ptr(4+4*i)))
}

func setLimb(sp *mem.Space, x Ptr, i int, v uint64) {
	sp.Store(x+Ptr(4+4*i), uint32(v&0xffff))
}

// trim stores the normalized length (no leading zero limbs) of x, scanning
// down from n.
func trim(sp *mem.Space, x Ptr, n int) {
	for n > 0 && limb(sp, x, n-1) == 0 {
		n--
	}
	sp.Store(x, uint32(n))
}

// FromUint64 allocates the number v.
func FromUint64(a Arena, v uint64) Ptr {
	sp := a.Space()
	x := a.AllocNum(4)
	n := 0
	for t := v; t > 0; t >>= 16 {
		n++
	}
	sp.Store(x, uint32(n))
	for i := 0; i < n; i++ {
		setLimb(sp, x, i, v>>(16*i))
	}
	return x
}

// ToUint64 converts x, panicking if it exceeds 64 bits.
func ToUint64(sp *mem.Space, x Ptr) uint64 {
	n := Len(sp, x)
	if n > 4 {
		panic("bignum: ToUint64 overflow")
	}
	var v uint64
	for i := n - 1; i >= 0; i-- {
		v = v<<16 | limb(sp, x, i)
	}
	return v
}

// IsZero reports whether x == 0.
func IsZero(sp *mem.Space, x Ptr) bool { return Len(sp, x) == 0 }

// IsOne reports whether x == 1.
func IsOne(sp *mem.Space, x Ptr) bool {
	return Len(sp, x) == 1 && limb(sp, x, 0) == 1
}

// Cmp returns -1, 0, or 1 as x <, ==, > y.
func Cmp(sp *mem.Space, x, y Ptr) int {
	nx, ny := Len(sp, x), Len(sp, y)
	if nx != ny {
		if nx < ny {
			return -1
		}
		return 1
	}
	for i := nx - 1; i >= 0; i-- {
		lx, ly := limb(sp, x, i), limb(sp, y, i)
		if lx != ly {
			if lx < ly {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Add allocates x + y.
func Add(a Arena, x, y Ptr) Ptr {
	sp := a.Space()
	nx, ny := Len(sp, x), Len(sp, y)
	n := nx
	if ny > n {
		n = ny
	}
	z := a.AllocNum(n + 1)
	var carry uint64
	for i := 0; i < n; i++ {
		var s uint64 = carry
		if i < nx {
			s += limb(sp, x, i)
		}
		if i < ny {
			s += limb(sp, y, i)
		}
		setLimb(sp, z, i, s)
		carry = s >> 16
	}
	setLimb(sp, z, n, carry)
	trim(sp, z, n+1)
	return z
}

// Sub allocates x - y; x must be >= y.
func Sub(a Arena, x, y Ptr) Ptr {
	sp := a.Space()
	nx, ny := Len(sp, x), Len(sp, y)
	if nx < ny {
		panic("bignum: Sub underflow")
	}
	z := a.AllocNum(nx)
	var borrow uint64
	for i := 0; i < nx; i++ {
		d := limb(sp, x, i) - borrow
		if i < ny {
			d -= limb(sp, y, i)
		}
		borrow = 0
		if d >= 1<<63 { // wrapped
			d += Base
			borrow = 1
		}
		setLimb(sp, z, i, d)
	}
	if borrow != 0 {
		panic("bignum: Sub underflow")
	}
	trim(sp, z, nx)
	return z
}

// MulSmall allocates x * d for a machine-word d.
func MulSmall(a Arena, x Ptr, d uint32) Ptr {
	sp := a.Space()
	if d == 0 {
		return FromUint64(a, 0)
	}
	nx := Len(sp, x)
	z := a.AllocNum(nx + 3)
	var carry uint64
	for i := 0; i < nx; i++ {
		p := limb(sp, x, i)*uint64(d) + carry
		setLimb(sp, z, i, p)
		carry = p >> 16
	}
	n := nx
	for carry > 0 {
		setLimb(sp, z, n, carry)
		carry >>= 16
		n++
	}
	trim(sp, z, n)
	return z
}

// Mul allocates x * y (schoolbook).
func Mul(a Arena, x, y Ptr) Ptr {
	sp := a.Space()
	nx, ny := Len(sp, x), Len(sp, y)
	if nx == 0 || ny == 0 {
		return FromUint64(a, 0)
	}
	z := a.AllocNum(nx + ny)
	for i := 0; i < nx+ny; i++ {
		setLimb(sp, z, i, 0)
	}
	for i := 0; i < nx; i++ {
		xi := limb(sp, x, i)
		var carry uint64
		for j := 0; j < ny; j++ {
			p := xi*limb(sp, y, j) + limb(sp, z, i+j) + carry
			setLimb(sp, z, i+j, p)
			carry = p >> 16
		}
		k := i + ny
		for carry > 0 {
			p := limb(sp, z, k) + carry
			setLimb(sp, z, k, p)
			carry = p >> 16
			k++
		}
	}
	trim(sp, z, nx+ny)
	return z
}

// DivModSmall allocates x / d and returns it with the remainder x % d.
// d must be nonzero and fit in 16 bits... larger d up to 2^32-1 is
// supported via a 48-bit partial remainder.
func DivModSmall(a Arena, x Ptr, d uint32) (q Ptr, r uint64) {
	if d == 0 {
		panic("bignum: division by zero")
	}
	sp := a.Space()
	nx := Len(sp, x)
	q = a.AllocNum(nx)
	var rem uint64
	for i := nx - 1; i >= 0; i-- {
		rem = rem<<16 | limb(sp, x, i)
		setLimb(sp, q, i, rem/uint64(d))
		rem %= uint64(d)
	}
	trim(sp, q, nx)
	return q, rem
}

// DivMod allocates x / y and x % y (Knuth Algorithm D over base 2^16).
func DivMod(a Arena, x, y Ptr) (q, r Ptr) {
	sp := a.Space()
	ny := Len(sp, y)
	if ny == 0 {
		panic("bignum: division by zero")
	}
	if ny == 1 {
		qq, rr := DivModSmall(a, x, uint32(limb(sp, y, 0)))
		return qq, FromUint64(a, rr)
	}
	if Cmp(sp, x, y) < 0 {
		return FromUint64(a, 0), Copy(a, x)
	}
	nx := Len(sp, x)

	// Normalize so the divisor's top limb is >= Base/2.
	shift := uint(0)
	top := limb(sp, y, ny-1)
	for top < Base/2 {
		top <<= 1
		shift++
	}
	u := shiftLeft(a, x, shift, 1) // one extra limb of headroom
	v := shiftLeft(a, y, shift, 0)
	nu := nx + 1

	q = a.AllocNum(nx - ny + 1)
	for i := 0; i < nx-ny+1; i++ {
		setLimb(sp, q, i, 0)
	}
	vTop := limb(sp, v, ny-1)
	vNext := limb(sp, v, ny-2)

	for j := nu - ny - 1; j >= 0; j-- {
		// Estimate the quotient digit from the top limbs.
		num := limb(sp, u, j+ny)<<16 | limb(sp, u, j+ny-1)
		qhat := num / vTop
		rhat := num % vTop
		for qhat >= Base || qhat*vNext > rhat<<16|limb(sp, u, j+ny-2) {
			qhat--
			rhat += vTop
			if rhat >= Base {
				break
			}
		}
		// Multiply-subtract qhat*v from u at offset j.
		var borrow, carry uint64
		for i := 0; i < ny; i++ {
			p := qhat*limb(sp, v, i) + carry
			carry = p >> 16
			d := limb(sp, u, j+i) - (p & 0xffff) - borrow
			borrow = 0
			if d >= 1<<63 {
				d += Base
				borrow = 1
			}
			setLimb(sp, u, j+i, d)
		}
		d := limb(sp, u, j+ny) - carry - borrow
		borrow = 0
		if d >= 1<<63 {
			d += Base
			borrow = 1
		}
		setLimb(sp, u, j+ny, d)
		if borrow != 0 {
			// qhat was one too large: add v back.
			qhat--
			var c uint64
			for i := 0; i < ny; i++ {
				s := limb(sp, u, j+i) + limb(sp, v, i) + c
				setLimb(sp, u, j+i, s)
				c = s >> 16
			}
			setLimb(sp, u, j+ny, limb(sp, u, j+ny)+c)
		}
		setLimb(sp, q, j, qhat)
	}
	trim(sp, q, nx-ny+1)
	trim(sp, u, ny) // remainder (shifted) sits in the low limbs of u
	r = shiftRight(a, u, shift)
	return q, r
}

// Copy allocates a copy of x.
func Copy(a Arena, x Ptr) Ptr {
	sp := a.Space()
	n := Len(sp, x)
	z := a.AllocNum(n)
	sp.Store(z, uint32(n))
	for i := 0; i < n; i++ {
		setLimb(sp, z, i, limb(sp, x, i))
	}
	return z
}

// shiftLeft allocates x << s (s < 16) with extra headroom limbs.
func shiftLeft(a Arena, x Ptr, s uint, extra int) Ptr {
	sp := a.Space()
	n := Len(sp, x)
	z := a.AllocNum(n + 1 + extra)
	var carry uint64
	for i := 0; i < n; i++ {
		v := limb(sp, x, i)<<s | carry
		setLimb(sp, z, i, v)
		carry = v >> 16
	}
	setLimb(sp, z, n, carry)
	for i := n + 1; i < n+1+extra; i++ {
		setLimb(sp, z, i, 0)
	}
	m := n + 1
	if extra > 0 {
		m = n + 1 + extra
	}
	sp.Store(z, uint32(m)) // keep headroom limbs addressable (zero)
	if extra == 0 {
		trim(sp, z, n+1)
	}
	return z
}

// shiftRight allocates x >> s (s < 16).
func shiftRight(a Arena, x Ptr, s uint) Ptr {
	sp := a.Space()
	n := Len(sp, x)
	z := a.AllocNum(n)
	for i := 0; i < n; i++ {
		v := limb(sp, x, i) >> s
		if i+1 < n {
			v |= limb(sp, x, i+1) << (16 - s) & 0xffff
		}
		setLimb(sp, z, i, v)
	}
	trim(sp, z, n)
	return z
}

// Mod allocates x % y.
func Mod(a Arena, x, y Ptr) Ptr {
	_, r := DivMod(a, x, y)
	return r
}

// Sqrt allocates the integer square root of x (Newton's method).
func Sqrt(a Arena, x Ptr) Ptr {
	sp := a.Space()
	if IsZero(sp, x) {
		return FromUint64(a, 0)
	}
	// Initial guess: 2^(ceil(bits/2)).
	bits := (Len(sp, x) - 1) * 16
	for t := limb(sp, x, Len(sp, x)-1); t > 0; t >>= 1 {
		bits++
	}
	g := FromUint64(a, 1)
	for i := 0; i < (bits+1)/2+1; i++ {
		g = MulSmall(a, g, 2)
	}
	for {
		quo, _ := DivMod(a, x, g)
		sum := Add(a, g, quo)
		next, _ := DivModSmall(a, sum, 2)
		if Cmp(sp, next, g) >= 0 {
			return g
		}
		g = next
	}
}

// GCD allocates gcd(x, y) by Euclid's algorithm.
func GCD(a Arena, x, y Ptr) Ptr {
	sp := a.Space()
	x, y = Copy(a, x), Copy(a, y)
	for !IsZero(sp, y) {
		_, r := DivMod(a, x, y)
		x, y = y, r
	}
	return x
}

// String formats x in hexadecimal (diagnostics; uncharged).
func String(sp *mem.Space, x Ptr) string {
	var s string
	sp.Uncharged(func() {
		n := Len(sp, x)
		if n == 0 {
			s = "0"
			return
		}
		s = fmt.Sprintf("%x", limb(sp, x, n-1))
		for i := n - 2; i >= 0; i-- {
			s += fmt.Sprintf("%04x", limb(sp, x, i))
		}
	})
	return s
}
