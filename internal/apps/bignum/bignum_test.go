package bignum

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"regions/internal/mem"
	"regions/internal/stats"
)

// testArena bump-allocates numbers straight from mapped pages.
type testArena struct {
	sp        *mem.Space
	next, end Ptr
}

func newArena() *testArena {
	sp := mem.NewSpace(&stats.Counters{})
	return &testArena{sp: sp}
}

func (a *testArena) Space() *mem.Space { return a.sp }

func (a *testArena) AllocNum(limbs int) Ptr {
	n := Ptr(NumBytes(limbs))
	if a.next+n > a.end {
		pages := 64
		a.next = a.sp.MapPages(pages)
		a.end = a.next + Ptr(pages*mem.PageSize)
	}
	p := a.next
	a.next += n
	return p
}

func toBig(sp *mem.Space, x Ptr) *big.Int {
	v := new(big.Int)
	for i := Len(sp, x) - 1; i >= 0; i-- {
		v.Lsh(v, 16)
		v.Or(v, big.NewInt(int64(limb(sp, x, i))))
	}
	return v
}

func fromBig(a *testArena, v *big.Int) Ptr {
	sp := a.Space()
	t := new(big.Int).Set(v)
	var limbs []uint64
	mask := big.NewInt(0xffff)
	for t.Sign() > 0 {
		limbs = append(limbs, new(big.Int).And(t, mask).Uint64())
		t.Rsh(t, 16)
	}
	x := a.AllocNum(len(limbs))
	sp.Store(x, uint32(len(limbs)))
	for i, l := range limbs {
		setLimb(sp, x, i, l)
	}
	return x
}

// randBig produces a random number of up to maxBytes bytes from seed data.
func randBig(r *rand.Rand, maxBytes int) *big.Int {
	n := 1 + r.Intn(maxBytes)
	b := make([]byte, n)
	r.Read(b)
	return new(big.Int).SetBytes(b)
}

func TestFromToUint64(t *testing.T) {
	a := newArena()
	for _, v := range []uint64{0, 1, 0xffff, 0x10000, 0xdeadbeefcafe, 1<<64 - 1} {
		x := FromUint64(a, v)
		if got := ToUint64(a.Space(), x); got != v {
			t.Errorf("round trip %d -> %d", v, got)
		}
	}
}

func TestBasicOps(t *testing.T) {
	a := newArena()
	sp := a.Space()
	x := FromUint64(a, 100000)
	y := FromUint64(a, 77777)
	if got := ToUint64(sp, Add(a, x, y)); got != 177777 {
		t.Errorf("add: %d", got)
	}
	if got := ToUint64(sp, Sub(a, x, y)); got != 22223 {
		t.Errorf("sub: %d", got)
	}
	if got := ToUint64(sp, Mul(a, x, y)); got != 100000*77777 {
		t.Errorf("mul: %d", got)
	}
	q, r := DivMod(a, x, y)
	if ToUint64(sp, q) != 1 || ToUint64(sp, r) != 22223 {
		t.Errorf("divmod: %d %d", ToUint64(sp, q), ToUint64(sp, r))
	}
	if Cmp(sp, x, y) != 1 || Cmp(sp, y, x) != -1 || Cmp(sp, x, x) != 0 {
		t.Error("cmp")
	}
}

func TestSubUnderflowPanics(t *testing.T) {
	a := newArena()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Sub(a, FromUint64(a, 5), FromUint64(a, 6))
}

func TestDivByZeroPanics(t *testing.T) {
	a := newArena()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	DivMod(a, FromUint64(a, 5), FromUint64(a, 0))
}

func TestQuickAddSubMul(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := newArena()
		sp := a.Space()
		bx, by := randBig(r, 20), randBig(r, 20)
		if bx.Cmp(by) < 0 {
			bx, by = by, bx
		}
		x, y := fromBig(a, bx), fromBig(a, by)

		if toBig(sp, Add(a, x, y)).Cmp(new(big.Int).Add(bx, by)) != 0 {
			t.Log("add mismatch")
			return false
		}
		if toBig(sp, Sub(a, x, y)).Cmp(new(big.Int).Sub(bx, by)) != 0 {
			t.Log("sub mismatch")
			return false
		}
		if toBig(sp, Mul(a, x, y)).Cmp(new(big.Int).Mul(bx, by)) != 0 {
			t.Log("mul mismatch")
			return false
		}
		d := uint32(r.Int63n(1<<32-2) + 1)
		if toBig(sp, MulSmall(a, x, d)).Cmp(new(big.Int).Mul(bx, big.NewInt(int64(d)))) != 0 {
			t.Log("mulsmall mismatch")
			return false
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickDivMod(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := newArena()
		sp := a.Space()
		bx := randBig(r, 24)
		by := randBig(r, 1+r.Intn(12))
		if by.Sign() == 0 {
			by = big.NewInt(1)
		}
		x, y := fromBig(a, bx), fromBig(a, by)
		q, rem := DivMod(a, x, y)
		wq, wr := new(big.Int).QuoRem(bx, by, new(big.Int))
		if toBig(sp, q).Cmp(wq) != 0 || toBig(sp, rem).Cmp(wr) != 0 {
			t.Logf("divmod mismatch: %v / %v -> got (%v, %v) want (%v, %v)",
				bx, by, toBig(sp, q), toBig(sp, rem), wq, wr)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 400})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDivModQhatCorrection(t *testing.T) {
	// Crafted operands that drive Knuth D's add-back path: divisor with a
	// top limb just above Base/2 and a dividend of near-maximal limbs.
	a := newArena()
	sp := a.Space()
	bx, _ := new(big.Int).SetString("ffffffffffffffffffffffffffff", 16)
	by, _ := new(big.Int).SetString("80000000000000000001", 16)
	q, r := DivMod(a, fromBig(a, bx), fromBig(a, by))
	wq, wr := new(big.Int).QuoRem(bx, by, new(big.Int))
	if toBig(sp, q).Cmp(wq) != 0 || toBig(sp, r).Cmp(wr) != 0 {
		t.Fatalf("got (%v,%v) want (%v,%v)", toBig(sp, q), toBig(sp, r), wq, wr)
	}
}

func TestQuickDivModSmall(t *testing.T) {
	err := quick.Check(func(seed int64, d32 uint32) bool {
		r := rand.New(rand.NewSource(seed))
		d := d32
		if d == 0 {
			d = 7
		}
		a := newArena()
		sp := a.Space()
		bx := randBig(r, 20)
		q, rem := DivModSmall(a, fromBig(a, bx), d)
		wq, wr := new(big.Int).QuoRem(bx, big.NewInt(int64(d)), new(big.Int))
		return toBig(sp, q).Cmp(wq) == 0 && rem == wr.Uint64()
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickSqrt(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := newArena()
		sp := a.Space()
		bx := randBig(r, 16)
		got := toBig(sp, Sqrt(a, fromBig(a, bx)))
		want := new(big.Int).Sqrt(bx)
		return got.Cmp(want) == 0
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSqrtExactSquares(t *testing.T) {
	a := newArena()
	sp := a.Space()
	for _, v := range []uint64{0, 1, 4, 9, 1 << 40, 999983 * 999983} {
		got := ToUint64(sp, Sqrt(a, FromUint64(a, v)))
		want := uint64(new(big.Int).Sqrt(big.NewInt(int64(v))).Int64())
		if got != want {
			t.Errorf("sqrt(%d)=%d, want %d", v, got, want)
		}
	}
}

func TestQuickGCD(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := newArena()
		sp := a.Space()
		bx, by := randBig(r, 12), randBig(r, 12)
		got := toBig(sp, GCD(a, fromBig(a, bx), fromBig(a, by)))
		want := new(big.Int).GCD(nil, nil, bx, by)
		return got.Cmp(want) == 0
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStringFormat(t *testing.T) {
	a := newArena()
	x := fromBig(a, big.NewInt(0xdeadbeef))
	if got := String(a.Space(), x); got != "deadbeef" {
		t.Errorf("String=%q", got)
	}
	if got := String(a.Space(), FromUint64(a, 0)); got != "0" {
		t.Errorf("zero String=%q", got)
	}
}
