package mem

import (
	"errors"
	"fmt"
	"math/rand"
)

// This file is the simulated OS's failure model. The paper's experiments
// only ever exercise the happy path — MapPages always succeeds — but a
// production-shaped runtime must tolerate the OS refusing memory. A Space
// can therefore carry a page limit (the analogue of ulimit -v / a cgroup
// memory cap) and a FaultPlan, a deterministic, seeded schedule of injected
// MapPages failures. When either refuses a request, MapPages returns 0 (the
// never-mapped nil address) and the allocator above is expected to surface
// a typed error — see OOMError — instead of crashing or growing without
// bound.

// ErrOutOfMemory is the sentinel that every allocation failure caused by a
// refused page mapping wraps; errors.Is(err, ErrOutOfMemory) identifies OOM
// regardless of which allocator surfaced it.
var ErrOutOfMemory = errors.New("out of memory")

// Failure causes recorded by a refused MapPages call.
const (
	CauseAddressSpace = "address space exhausted"
	CausePageLimit    = "page limit exceeded"
	CauseByteBudget   = "byte budget exceeded"
	CauseFailNth      = "injected: nth call"
	CauseFailProb     = "injected: probability"
)

// FaultPlan is a deterministic schedule of injected MapPages failures.
// All three triggers may be combined; a call fails if any fires. The zero
// plan injects nothing.
type FaultPlan struct {
	// FailNth fails the Nth MapPages call (1-based) made after the plan is
	// installed. 0 disables.
	FailNth uint64
	// FailProb fails each call independently with this probability, drawn
	// from a PRNG seeded with Seed, so a (plan, workload) pair always fails
	// the same calls.
	FailProb float64
	// Seed seeds the FailProb draws.
	Seed int64
	// ByteBudget fails any call that would push MappedBytes past this many
	// bytes. 0 disables. Unlike SetPageLimit this is part of the injected
	// plan: it models a budget the experiment imposes, not the OS.
	ByteBudget uint64
}

// MapFailure describes one refused MapPages call.
type MapFailure struct {
	Call   uint64 // ordinal of the failing call (1-based, plan-relative)
	Pages  int    // pages the call requested
	Mapped uint64 // bytes already mapped when it failed
	Cause  string // one of the Cause* constants
}

// OOMError is the typed error allocators return when the simulated OS
// refuses pages. It wraps ErrOutOfMemory.
type OOMError struct {
	Op     string // allocator operation that needed the pages
	Pages  int    // pages the failing MapPages call requested
	Mapped uint64 // bytes mapped when the request failed
	Cause  string // why the OS refused (one of the Cause* constants)
}

// Error implements error.
func (e *OOMError) Error() string {
	return fmt.Sprintf("%s: out of memory (%d pages refused: %s; %d bytes mapped)",
		e.Op, e.Pages, e.Cause, e.Mapped)
}

// Unwrap makes errors.Is(e, ErrOutOfMemory) true.
func (e *OOMError) Unwrap() error { return ErrOutOfMemory }

// SetFaultPlan installs (a copy of) plan; nil removes any plan. The call
// counter used by FailNth and the FailProb PRNG restart with each install,
// so re-installing the same plan replays the same failures.
func (s *Space) SetFaultPlan(plan *FaultPlan) {
	if plan == nil {
		s.plan = nil
		s.planRNG = nil
		s.planCalls = 0
		return
	}
	p := *plan
	s.plan = &p
	s.planRNG = rand.New(rand.NewSource(p.Seed))
	s.planCalls = 0
}

// SetPageLimit caps the pages the simulated OS will ever hand out (the
// reserved page 0 does not count). 0 removes the limit. Unlike a FaultPlan
// the limit is permanent OS state: every request past it fails.
func (s *Space) SetPageLimit(pages int) { s.pageLimit = pages }

// MapCalls returns the number of MapPages calls made so far, successful or
// not (for aligning FaultPlan.FailNth with a workload).
func (s *Space) MapCalls() uint64 { return s.mapCalls }

// MapFailures returns how many MapPages calls were refused.
func (s *Space) MapFailures() uint64 { return s.mapFails }

// LastMapFailure describes the most recent refused MapPages call, or nil.
func (s *Space) LastMapFailure() *MapFailure {
	if s.lastFail == nil {
		return nil
	}
	f := *s.lastFail
	return &f
}

// OOM builds the typed error for op from the most recent refused mapping.
// Allocators call it right after observing MapPages return 0.
func (s *Space) OOM(op string) *OOMError {
	e := &OOMError{Op: op, Mapped: s.mappedBytes, Cause: "unknown"}
	if s.lastFail != nil {
		e.Pages = s.lastFail.Pages
		e.Mapped = s.lastFail.Mapped
		e.Cause = s.lastFail.Cause
	}
	return e
}

// refuse decides whether a MapPages call for n pages fails, returning the
// cause or "". It consults hard OS state (address space, page limit) first,
// then the injected plan.
func (s *Space) refuse(n int) string {
	if uint64(len(s.pages))+uint64(n) > 1<<(32-PageShift) {
		return CauseAddressSpace
	}
	if s.pageLimit > 0 && len(s.pages)-1+n > s.pageLimit {
		return CausePageLimit
	}
	if p := s.plan; p != nil {
		s.planCalls++
		if p.ByteBudget > 0 && s.mappedBytes+uint64(n)*PageSize > p.ByteBudget {
			return CauseByteBudget
		}
		if p.FailNth != 0 && s.planCalls == p.FailNth {
			return CauseFailNth
		}
		if p.FailProb > 0 && s.planRNG.Float64() < p.FailProb {
			return CauseFailProb
		}
	}
	return ""
}
