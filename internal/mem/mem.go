// Package mem provides the simulated machine underneath every allocator in
// this repository: a 32-bit byte-addressed, word-granular address space made
// of 4 KB pages, handed out by a simulated operating system that tracks the
// total memory "requested from the OS" (the OS bar of the paper's Figure 8).
//
// All allocators — the region library, the three malloc implementations, and
// the conservative collector — place both program data and their own
// metadata (free lists, boundary tags, region headers, page links) in this
// space, so space overhead and locality are measured rather than modelled.
// Every load and store costs one simulated cycle, charged to the accounting
// mode active at the time, and is optionally pushed through a cache
// simulator to obtain stall cycles.
package mem

import (
	"fmt"
	"math/rand"

	"regions/internal/cachesim"
	"regions/internal/stats"
)

// Addr is a simulated 32-bit byte address. Address 0 is the nil pointer and
// is never mapped.
type Addr = uint32

// Word is the 32-bit contents of one aligned memory word.
type Word = uint32

const (
	// PageSize is the simulated page size, as in the paper's allocators.
	PageSize = 4096
	// WordSize is the machine word size in bytes.
	WordSize = 4
	// PageWords is the number of words per page.
	PageWords = PageSize / WordSize
	// PageShift converts between addresses and page numbers.
	PageShift = 12

	// AppComputeFactor is the cycles charged per application-mode memory
	// access: one for the access itself plus surrounding ALU and control
	// work. Typical RISC instruction mixes run several non-memory
	// instructions per load or store; without this factor the fixed-cost
	// pieces of memory management (e.g. the paper's 16/23-instruction
	// write barriers) would look several times more expensive relative to
	// the program than they did on the paper's machine. Memory-management
	// modes are memory-bound and charge one cycle per access.
	AppComputeFactor = 4
)

type page struct {
	words [PageWords]Word
}

// Space is one simulated address space. It is not safe for concurrent use;
// each experiment run owns its own Space.
type Space struct {
	pages []*page // index = page number; nil entries are unmapped

	mappedBytes uint64

	mode  stats.Mode
	c     *stats.Counters
	cache *cachesim.Cache

	// charge disables cycle accounting when false (used while an allocator
	// initializes pages it has not yet handed to anyone).
	charge bool

	// Failure model (see fault.go): an optional hard page limit plus an
	// optional injected fault plan, and the bookkeeping of refused calls.
	pageLimit int
	plan      *FaultPlan
	planRNG   *rand.Rand
	planCalls uint64
	mapCalls  uint64
	mapFails  uint64
	lastFail  *MapFailure

	// met, when non-nil, mirrors OS-level events into a metrics registry
	// (see metrics.go); every update site is nil-guarded.
	met *spaceMetrics
}

// NewSpace returns an empty address space whose accesses are charged to c.
// Page 0 is reserved so that address 0 stays invalid.
func NewSpace(c *stats.Counters) *Space {
	return &Space{
		pages:  make([]*page, 1, 1024),
		c:      c,
		charge: true,
	}
}

// AttachCache routes subsequent accesses through the given cache model.
func (s *Space) AttachCache(cache *cachesim.Cache) { s.cache = cache }

// Cache returns the attached cache model, or nil.
func (s *Space) Cache() *cachesim.Cache { return s.cache }

// Counters returns the counters this space charges cycles to.
func (s *Space) Counters() *stats.Counters { return s.c }

// SetMode switches the accounting mode for subsequent accesses and returns
// the previous mode so callers can restore it:
//
//	defer s.SetMode(s.SetMode(stats.ModeAlloc))
func (s *Space) SetMode(m stats.Mode) stats.Mode {
	old := s.mode
	s.mode = m
	return old
}

// Mode returns the current accounting mode.
func (s *Space) Mode() stats.Mode { return s.mode }

// MappedBytes returns the total memory requested from the simulated OS.
// It never shrinks: like sbrk, the simulated OS only grows.
func (s *Space) MappedBytes() uint64 { return s.mappedBytes }

// MapPages maps n fresh zeroed pages contiguously and returns the address of
// the first. It returns 0 — the never-mapped nil address — when the simulated
// OS refuses the request: the 32-bit address space is exhausted, a page limit
// (SetPageLimit) is reached, or an installed FaultPlan injects a failure.
// Allocators must treat 0 as out-of-memory and surface a typed error (see
// Space.OOM); a non-positive count is still an API-misuse panic.
func (s *Space) MapPages(n int) Addr {
	if n <= 0 {
		panic("mem: MapPages of non-positive count")
	}
	s.mapCalls++
	if s.met != nil {
		s.met.mapCalls.Inc()
	}
	if cause := s.refuse(n); cause != "" {
		s.mapFails++
		s.lastFail = &MapFailure{Call: s.mapCalls, Pages: n, Mapped: s.mappedBytes, Cause: cause}
		if s.met != nil {
			s.met.mapFailures.Inc()
			s.met.failureCounter(cause).Inc()
		}
		return 0
	}
	first := len(s.pages)
	for i := 0; i < n; i++ {
		s.pages = append(s.pages, &page{})
	}
	s.mappedBytes += uint64(n) * PageSize
	if s.met != nil {
		s.met.pagesMapped.Add(uint64(n))
		s.met.mappedBytes.Set(int64(s.mappedBytes))
	}
	return Addr(first) << PageShift
}

// Mapped reports whether a is inside a mapped page.
func (s *Space) Mapped(a Addr) bool {
	p := int(a >> PageShift)
	return p > 0 && p < len(s.pages) && s.pages[p] != nil
}

// NumPages returns the number of page slots, including the reserved page 0.
func (s *Space) NumPages() int { return len(s.pages) }

func (s *Space) access(a Addr, write bool) {
	if !s.charge {
		return
	}
	if s.mode == stats.ModeApp {
		s.c.Cycles[stats.ModeApp] += AppComputeFactor
	} else {
		s.c.Cycles[s.mode]++
	}
	if s.cache != nil {
		r, w := s.cache.Access(a, write)
		s.c.ReadStalls += r
		s.c.WriteStalls += w
	}
}

func (s *Space) page(a Addr) *page {
	if a&(WordSize-1) != 0 {
		panic(fmt.Sprintf("mem: unaligned access at %#x", a))
	}
	p := int(a >> PageShift)
	if p <= 0 || p >= len(s.pages) || s.pages[p] == nil {
		panic(fmt.Sprintf("mem: access to unmapped address %#x", a))
	}
	return s.pages[p]
}

// Load returns the word at the 4-byte-aligned address a.
func (s *Space) Load(a Addr) Word {
	s.access(a, false)
	return s.page(a).words[(a%PageSize)/WordSize]
}

// Store writes v to the 4-byte-aligned address a.
func (s *Space) Store(a Addr, v Word) {
	s.access(a, true)
	s.page(a).words[(a%PageSize)/WordSize] = v
}

// LoadByte returns the byte at address a (no alignment requirement).
// Byte order within a word is little-endian.
func (s *Space) LoadByte(a Addr) byte {
	w := s.Load(a &^ (WordSize - 1))
	return byte(w >> (8 * (a & (WordSize - 1))))
}

// StoreByte writes b at address a, preserving the other bytes of the word.
func (s *Space) StoreByte(a Addr, b byte) {
	aligned := a &^ Addr(WordSize-1)
	shift := 8 * (a & (WordSize - 1))
	w := s.Load(aligned)
	w = w&^(0xff<<shift) | Word(b)<<shift
	s.Store(aligned, w)
}

// ZeroRange zeroes size bytes starting at a (both word-aligned), charging
// one cycle per word as the paper's ralloc clearing does.
func (s *Space) ZeroRange(a Addr, size int) {
	for off := 0; off < size; off += WordSize {
		s.Store(a+Addr(off), 0)
	}
}

// ZeroPageFree zeroes the page containing a without charging cycles. It is
// used when an allocator recycles a page it owns: the paper's region library
// reuses pages from its free page list, and freshly OS-mapped pages arrive
// zeroed either way.
func (s *Space) ZeroPageFree(a Addr) {
	p := s.page(a &^ (PageSize - 1))
	p.words = [PageWords]Word{}
}

// PoisonWord fills freed pages (PoisonPageFree) so that reads through
// dangling pointers return an unmistakable pattern and stray writes into
// freed pages are detectable by a verifier.
const PoisonWord Word = 0xdeadbeef

// PoisonPageFree fills the page containing a with PoisonWord without
// charging cycles. Allocators call it when a page returns to a free list;
// pages are re-zeroed (ZeroPageFree) before reuse, so poisoning is
// observable only through dangling pointers.
func (s *Space) PoisonPageFree(a Addr) {
	p := s.page(a &^ (PageSize - 1))
	for i := range p.words {
		p.words[i] = PoisonWord
	}
}

// PoisonRange fills size bytes starting at the word-aligned address a with
// PoisonWord without charging cycles — the sub-page sibling of
// PoisonPageFree, used when an allocator retires one block inside a page it
// still owns (the region library's pooled string frees). size must be a
// multiple of WordSize and the range must not cross a page boundary.
func (s *Space) PoisonRange(a Addr, size int) {
	p := s.page(a)
	base := (a % PageSize) / WordSize
	for i := 0; i < size/WordSize; i++ {
		p.words[base+Addr(i)] = PoisonWord
	}
}

// Uncharged runs f with cycle accounting disabled. It exists for test
// oracles and statistics gathering that must not perturb measurements.
func (s *Space) Uncharged(f func()) {
	old := s.charge
	s.charge = false
	defer func() { s.charge = old }()
	f()
}
