package mem

import (
	"testing"

	"regions/internal/cachesim"
	"regions/internal/stats"
)

func newSpace() (*Space, *stats.Counters) {
	c := &stats.Counters{}
	return NewSpace(c), c
}

func TestMapPagesAndAccounting(t *testing.T) {
	s, _ := newSpace()
	a := s.MapPages(2)
	if a != PageSize {
		t.Fatalf("first mapping at %#x, want %#x (page 0 reserved)", a, PageSize)
	}
	b := s.MapPages(1)
	if b != 3*PageSize {
		t.Fatalf("second mapping at %#x, want %#x", b, 3*PageSize)
	}
	if s.MappedBytes() != 3*PageSize {
		t.Fatalf("MappedBytes=%d, want %d", s.MappedBytes(), 3*PageSize)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	s, _ := newSpace()
	a := s.MapPages(1)
	s.Store(a+8, 0xdeadbeef)
	if got := s.Load(a + 8); got != 0xdeadbeef {
		t.Fatalf("Load=%#x", got)
	}
	if got := s.Load(a + 12); got != 0 {
		t.Fatalf("fresh page word = %#x, want 0", got)
	}
}

func TestCycleCharging(t *testing.T) {
	s, c := newSpace()
	a := s.MapPages(1)
	s.Store(a, 1)
	s.Load(a)
	if c.Cycles[stats.ModeApp] != 2*AppComputeFactor {
		t.Fatalf("app cycles=%d, want %d", c.Cycles[stats.ModeApp], 2*AppComputeFactor)
	}
	old := s.SetMode(stats.ModeAlloc)
	if old != stats.ModeApp {
		t.Fatalf("SetMode returned %v, want app", old)
	}
	s.Store(a, 2)
	s.SetMode(old)
	if c.Cycles[stats.ModeAlloc] != 1 {
		t.Fatalf("alloc cycles=%d, want 1", c.Cycles[stats.ModeAlloc])
	}
	if s.Mode() != stats.ModeApp {
		t.Fatalf("mode not restored: %v", s.Mode())
	}
}

func TestUncharged(t *testing.T) {
	s, c := newSpace()
	a := s.MapPages(1)
	s.Uncharged(func() {
		for i := 0; i < 100; i++ {
			s.Load(a)
		}
	})
	if c.Cycles[stats.ModeApp] != 0 {
		t.Fatalf("uncharged accesses cost %d cycles", c.Cycles[stats.ModeApp])
	}
}

func TestByteAccess(t *testing.T) {
	s, _ := newSpace()
	a := s.MapPages(1)
	for i, b := range []byte{0x11, 0x22, 0x33, 0x44} {
		s.StoreByte(a+Addr(i), b)
	}
	if got := s.Load(a); got != 0x44332211 {
		t.Fatalf("word after byte stores = %#x, want 0x44332211 (little-endian)", got)
	}
	for i, want := range []byte{0x11, 0x22, 0x33, 0x44} {
		if got := s.LoadByte(a + Addr(i)); got != want {
			t.Fatalf("byte %d = %#x, want %#x", i, got, want)
		}
	}
	// Overwriting one byte must preserve the rest.
	s.StoreByte(a+1, 0xee)
	if got := s.Load(a); got != 0x4433ee11 {
		t.Fatalf("after partial overwrite: %#x", got)
	}
}

func TestZeroRange(t *testing.T) {
	s, _ := newSpace()
	a := s.MapPages(1)
	for i := 0; i < 16; i += 4 {
		s.Store(a+Addr(i), 0xffffffff)
	}
	s.ZeroRange(a+4, 8)
	want := []Word{0xffffffff, 0, 0, 0xffffffff}
	for i, w := range want {
		if got := s.Load(a + Addr(i*4)); got != w {
			t.Fatalf("word %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestZeroPageFree(t *testing.T) {
	s, c := newSpace()
	a := s.MapPages(1)
	s.Store(a+100*4, 7)
	before := c.Cycles[stats.ModeApp]
	s.ZeroPageFree(a + 8) // any address within the page
	if c.Cycles[stats.ModeApp] != before {
		t.Fatal("ZeroPageFree must not charge cycles")
	}
	if got := s.Load(a + 100*4); got != 0 {
		t.Fatalf("page not zeroed: %#x", got)
	}
}

func TestMapped(t *testing.T) {
	s, _ := newSpace()
	a := s.MapPages(1)
	if s.Mapped(0) {
		t.Fatal("address 0 must be unmapped")
	}
	if !s.Mapped(a) || !s.Mapped(a+PageSize-4) {
		t.Fatal("mapped page reported unmapped")
	}
	if s.Mapped(a + PageSize) {
		t.Fatal("page past end reported mapped")
	}
}

func TestUnalignedPanics(t *testing.T) {
	s, _ := newSpace()
	a := s.MapPages(1)
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned Load did not panic")
		}
	}()
	s.Load(a + 2)
}

func TestUnmappedPanics(t *testing.T) {
	s, _ := newSpace()
	defer func() {
		if recover() == nil {
			t.Fatal("unmapped Load did not panic")
		}
	}()
	s.Load(8)
}

func TestNilAddressPanics(t *testing.T) {
	s, _ := newSpace()
	s.MapPages(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Load(0) did not panic")
		}
	}()
	s.Load(0)
}

func TestCacheAttachment(t *testing.T) {
	s, c := newSpace()
	s.AttachCache(cachesim.New(cachesim.UltraSparcI()))
	a := s.MapPages(4)
	for i := 0; i < PageWords; i++ {
		s.Load(a + Addr(i*4))
	}
	if c.ReadStalls == 0 {
		t.Fatal("cold scan through cache produced no read stalls")
	}
	if s.Cache().Reads == 0 {
		t.Fatal("cache saw no reads")
	}
}

func TestMapPagesZeroPanics(t *testing.T) {
	s, _ := newSpace()
	defer func() {
		if recover() == nil {
			t.Fatal("MapPages(0) did not panic")
		}
	}()
	s.MapPages(0)
}

func TestNumPages(t *testing.T) {
	s, _ := newSpace()
	if s.NumPages() != 1 {
		t.Fatalf("fresh space has %d page slots, want 1 (reserved page 0)", s.NumPages())
	}
	s.MapPages(3)
	if s.NumPages() != 4 {
		t.Fatalf("NumPages=%d, want 4", s.NumPages())
	}
}
