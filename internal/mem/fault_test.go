package mem

import (
	"errors"
	"testing"

	"regions/internal/stats"
)

func newFaultSpace() *Space { return NewSpace(&stats.Counters{}) }

func TestFailNthFailsExactlyThatCall(t *testing.T) {
	sp := newFaultSpace()
	sp.SetFaultPlan(&FaultPlan{FailNth: 3})
	for i := 1; i <= 5; i++ {
		p := sp.MapPages(1)
		if i == 3 && p != 0 {
			t.Fatalf("call 3 should have been refused, got %#x", p)
		}
		if i != 3 && p == 0 {
			t.Fatalf("call %d should have succeeded", i)
		}
	}
	if got := sp.MapFailures(); got != 1 {
		t.Fatalf("MapFailures = %d, want 1", got)
	}
	f := sp.LastMapFailure()
	if f == nil || f.Cause != CauseFailNth || f.Pages != 1 {
		t.Fatalf("LastMapFailure = %+v, want CauseFailNth for 1 page", f)
	}
}

func TestFailProbIsDeterministicAcrossReinstall(t *testing.T) {
	plan := &FaultPlan{FailProb: 0.3, Seed: 42}
	run := func() []bool {
		sp := newFaultSpace()
		sp.SetFaultPlan(plan)
		out := make([]bool, 50)
		for i := range out {
			out[i] = sp.MapPages(1) == 0
		}
		return out
	}
	a, b := run(), run()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: refusal differs between identical runs", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("FailProb 0.3 over 50 calls injected no failures")
	}
	// Reinstalling on the same space must replay the schedule from call 1.
	sp := newFaultSpace()
	sp.SetFaultPlan(plan)
	first := sp.MapPages(1) == 0
	sp.SetFaultPlan(plan)
	if again := sp.MapPages(1) == 0; again != first {
		t.Fatal("reinstalling the plan did not restart the schedule")
	}
}

func TestByteBudgetRefusesPastBudget(t *testing.T) {
	sp := newFaultSpace()
	sp.SetFaultPlan(&FaultPlan{ByteBudget: 3 * PageSize})
	for i := 0; i < 3; i++ {
		if sp.MapPages(1) == 0 {
			t.Fatalf("page %d within budget was refused", i)
		}
	}
	if sp.MapPages(1) != 0 {
		t.Fatal("mapping past the byte budget succeeded")
	}
	if f := sp.LastMapFailure(); f == nil || f.Cause != CauseByteBudget {
		t.Fatalf("LastMapFailure = %+v, want CauseByteBudget", f)
	}
	// A multi-page request that would cross the budget fails even though a
	// single page would not have.
	sp2 := newFaultSpace()
	sp2.SetFaultPlan(&FaultPlan{ByteBudget: 3 * PageSize})
	if sp2.MapPages(2) == 0 {
		t.Fatal("2 pages within a 3-page budget refused")
	}
	if sp2.MapPages(2) != 0 {
		t.Fatal("2 pages crossing a 3-page budget succeeded")
	}
}

func TestPageLimitIsPermanentOSState(t *testing.T) {
	sp := newFaultSpace()
	sp.SetPageLimit(2)
	if sp.MapPages(2) == 0 {
		t.Fatal("pages within the limit were refused")
	}
	if sp.MapPages(1) != 0 {
		t.Fatal("page past the limit was granted")
	}
	if f := sp.LastMapFailure(); f == nil || f.Cause != CausePageLimit {
		t.Fatalf("LastMapFailure = %+v, want CausePageLimit", f)
	}
	// Unlike FailNth, the refusal repeats: the limit is OS state.
	if sp.MapPages(1) != 0 {
		t.Fatal("page limit stopped applying after one refusal")
	}
	sp.SetPageLimit(0)
	if sp.MapPages(1) == 0 {
		t.Fatal("removing the limit did not restore service")
	}
}

func TestMapCallCountersAndOOM(t *testing.T) {
	sp := newFaultSpace()
	sp.SetFaultPlan(&FaultPlan{FailNth: 2})
	sp.MapPages(1)
	sp.MapPages(3)
	sp.MapPages(1)
	if sp.MapCalls() != 3 || sp.MapFailures() != 1 {
		t.Fatalf("MapCalls=%d MapFailures=%d, want 3 and 1", sp.MapCalls(), sp.MapFailures())
	}
	err := sp.OOM("testop")
	if err.Op != "testop" || err.Pages != 3 || err.Cause != CauseFailNth {
		t.Fatalf("OOM() = %+v", err)
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatal("OOMError does not wrap ErrOutOfMemory")
	}
	var oe *OOMError
	if !errors.As(error(err), &oe) {
		t.Fatal("errors.As failed to extract *OOMError")
	}
}

func TestPoisonPageFree(t *testing.T) {
	sp := newFaultSpace()
	p := sp.MapPages(1)
	sp.Store(p, 123)
	sp.PoisonPageFree(p)
	var w0, wLast uint32
	sp.Uncharged(func() {
		w0 = sp.Load(p)
		wLast = sp.Load(p + PageSize - WordSize)
	})
	if w0 != PoisonWord || wLast != PoisonWord {
		t.Fatalf("poisoned page reads %#x / %#x, want %#x", w0, wLast, PoisonWord)
	}
}

func TestFaultPlanClearRestoresService(t *testing.T) {
	sp := newFaultSpace()
	sp.SetFaultPlan(&FaultPlan{FailProb: 1, Seed: 1})
	if sp.MapPages(1) != 0 {
		t.Fatal("FailProb 1 did not refuse")
	}
	sp.SetFaultPlan(nil)
	if sp.MapPages(1) == 0 {
		t.Fatal("clearing the plan did not restore service")
	}
}
