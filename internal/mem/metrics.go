package mem

import "regions/internal/metrics"

// Metrics hooks for the simulated OS layer, following the runtime's
// nil-guarded pattern: an unmetered space pays one predicate per MapPages
// call (the only operation worth metering at this layer — Load/Store
// traffic is already counted, in simulated cycles, by stats.Counters).
// Refusals are broken out by cause so an operator can tell an injected
// fault plan from genuine address-space or budget exhaustion.

// spaceMetrics caches the series a Space emits.
type spaceMetrics struct {
	reg *metrics.Registry

	mapCalls    *metrics.Counter
	mapFailures *metrics.Counter
	pagesMapped *metrics.Counter
	mappedBytes *metrics.Gauge

	// byCause caches the per-cause refusal counters, keyed by the Cause*
	// constant observed.
	byCause map[string]*metrics.Counter
}

// causeSlug maps the Cause* strings to Prometheus label values.
var causeSlug = map[string]string{
	CauseAddressSpace: "address-space",
	CausePageLimit:    "page-limit",
	CauseByteBudget:   "byte-budget",
	CauseFailNth:      "fail-nth",
	CauseFailProb:     "fail-prob",
}

// failureCounter returns the refusal counter for cause, resolving and
// caching it on first use.
func (sm *spaceMetrics) failureCounter(cause string) *metrics.Counter {
	if c, ok := sm.byCause[cause]; ok {
		return c
	}
	slug, ok := causeSlug[cause]
	if !ok {
		slug = "other"
	}
	c := sm.reg.Counter(`regions_mem_map_failures_by_cause_total{cause="` + slug + `"}`)
	sm.byCause[cause] = c
	return c
}

// SetMetrics attaches the space to a metrics registry (nil detaches).
func (s *Space) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		s.met = nil
		return
	}
	s.met = &spaceMetrics{
		reg:         reg,
		mapCalls:    reg.Counter("regions_mem_map_calls_total"),
		mapFailures: reg.Counter("regions_mem_map_failures_total"),
		pagesMapped: reg.Counter("regions_mem_pages_mapped_total"),
		mappedBytes: reg.Gauge("regions_mem_mapped_bytes"),
		byCause:     map[string]*metrics.Counter{},
	}
}

// Metrics returns the attached registry, or nil.
func (s *Space) Metrics() *metrics.Registry {
	if s.met == nil {
		return nil
	}
	return s.met.reg
}
