package core

import (
	"math/bits"
	"strconv"

	"regions/internal/mem"
	"regions/internal/stats"
)

// This file is the pooled string allocator, ROADMAP item "pooled
// string/buffer allocator with reuse accounting": power-of-two capacity
// classes over the region's pointer-free (rstralloc) side, in the style of
// the bytespool buffer libraries.
//
// The paper's rstralloc is a pure bump allocator — strings carry no
// bookkeeping and are reclaimed only when the whole region dies — so a
// workload that recycles string buffers inside a long-lived region keeps
// bumping into fresh pages and round-trips every one of them through the
// simulated OS. The pool adds an explicit free path without disturbing the
// paper's semantics:
//
//   - RstrFree(r, p, size) retires one rstralloc block. The block is
//     poisoned (uncharged, like every freed-memory fill) and parked on a
//     per-region free list bucketed by the floor power of two of its aligned
//     capacity, from strClassMin up to the configurable ceiling
//     (Options.StrPoolMax, default defaultStrPoolMax). Blocks above the
//     ceiling — and every free under Options.NoStrPool — are accounting-only:
//     the bytes stop counting as live and the memory waits for region
//     deletion, exactly as before.
//   - TryRstrAlloc first probes the request's floor class, newest block
//     first, for a parked block whose recorded capacity fits (at most
//     strPoolProbe entries, first fit). A hit charges 1 cycle per probe
//     examined plus the allocator's fixed 4, so the common exact-size
//     recycle costs 5 cycles against the in-page bump path's 7 — and
//     against the new-page path's page acquisition, which is the entire
//     point: a pool hit never touches the page lists or the simulated OS.
//     A miss falls through to the bump path unchanged, allocating exactly
//     align4(size) bytes at exactly the address it always did, so a
//     workload that never frees has a bit-identical address stream with
//     pooling on or off.
//
// Capacities are recorded per block rather than rounded to the class size:
// rounding allocations up would change the address stream (breaking the
// pooling-on/off A/B), and bucketing a freed block by anything other than
// its true capacity would let a 48-byte request "fit" a 36-byte block. With
// floor-class bucketing and first-fit on the recorded capacity, a
// same-size free/alloc cycle always reuses, and a smaller request reusing a
// larger block leaves the slack as fragmentation until the region dies.
//
// Page-level reuse across regions is already covered by the runtime's free
// page lists and PR 7's detach-then-sweep; the pool captures the sub-page
// reuse inside live regions those mechanisms cannot see. Pools are
// host-side structures (like the free page lists): they die with their
// region (strPoolClear), are serialized and remapped by region migration
// (RegionRecord.StrPool), and are audited by Verify — poisoning intact, no
// overlaps, blocks on the region's own string pages, capacity agreeing with
// the class (see checkStrPool in heap.go).

const (
	// strClassMin is the smallest pooled capacity: one machine word, the
	// minimum rstralloc ever allocates.
	strClassMin = mem.WordSize

	// defaultStrPoolMax is the capacity-class ceiling when
	// Options.StrPoolMax is unset. Requests above the ceiling are "Big":
	// bump-allocated and never pooled.
	defaultStrPoolMax = 2048

	// strPoolProbe bounds the blocks examined per allocation. The newest
	// block is probed first, so steady-state same-size recycling hits on
	// the first probe; the bound keeps the worst-case lookup cost (4
	// cycles) in the same band as the bump path it replaces.
	strPoolProbe = 4
)

// strBlock is one freed rstralloc block parked for reuse: its address and
// the aligned capacity recorded when it was freed.
type strBlock struct {
	p   Ptr
	cap int32
}

// strClassIdx maps an aligned capacity to its class: the floor power of two,
// so class i holds blocks of capacity [strClassMin<<i, strClassMin<<(i+1)).
func strClassIdx(n int) int { return bits.Len32(uint32(n)) - 3 }

// strClassSize returns class idx's floor capacity in bytes.
func strClassSize(idx int) int { return strClassMin << idx }

// initStrPool resolves the pool configuration at runtime construction: the
// accounting ceiling (rounded up to a power of two), the per-class counter
// slices, and the precomputed "str:<class>" census keys. The counters and
// census keys are active even under Options.NoStrPool, so an A/B pair
// reports comparable New/Big columns; only the free lists are disabled.
func (rt *Runtime) initStrPool() {
	max := rt.opts.StrPoolMax
	if max <= 0 {
		max = defaultStrPoolMax
	}
	if max < strClassMin {
		max = strClassMin
	}
	max = 1 << uint(bits.Len32(uint32(max-1))) // round up to a power of two
	rt.strCeil = max
	rt.strPooling = !rt.opts.NoStrPool
	n := strClassIdx(max) + 1
	rt.strNew = make([]uint64, n)
	rt.strReuse = make([]uint64, n)
	rt.strFreed = make([]uint64, n)
	keys := make([]string, n+1)
	for i := 0; i < n; i++ {
		keys[i] = "str:" + strconv.Itoa(strClassSize(i))
	}
	keys[n] = "str:big"
	rt.strSiteKeys = keys
}

// strSiteKey returns the alloc-census key for class idx (-1 = above the
// ceiling), so string-path sites rank separately from cleanup-named normal
// sites in the sampled site profile.
func (rt *Runtime) strSiteKey(idx int) string {
	if idx < 0 {
		return rt.strSiteKeys[len(rt.strSiteKeys)-1]
	}
	return rt.strSiteKeys[idx]
}

// strPoolTake pops a parked block of capacity >= data from r's class-idx
// free list, probing at most strPoolProbe blocks newest-first. Each probe
// charges one ModeAlloc cycle (the list-entry inspection); the pop itself
// is free-list bookkeeping already covered by the allocator's fixed charge.
// Returns 0 when nothing fits.
func (rt *Runtime) strPoolTake(r *Region, idx, data int) Ptr {
	if idx >= len(r.strPool) {
		return 0
	}
	list := r.strPool[idx]
	n := len(list)
	probes := n
	if probes > strPoolProbe {
		probes = strPoolProbe
	}
	for i := 0; i < probes; i++ {
		rt.charge(stats.ModeAlloc, 1)
		b := list[n-1-i]
		if int(b.cap) >= data {
			copy(list[n-1-i:], list[n-i:])
			r.strPool[idx] = list[:n-1]
			r.strPoolBytes -= uint64(b.cap)
			if m := rt.met; m != nil {
				m.strPoolBlocks[idx].Dec()
			}
			return b.p
		}
	}
	return 0
}

// strPoolPut parks the freed block [p, p+cap) on r's floor-class free list.
func (rt *Runtime) strPoolPut(r *Region, p Ptr, cap int) {
	if r.strPool == nil {
		r.strPool = make([][]strBlock, strClassIdx(rt.strCeil)+1)
	}
	idx := strClassIdx(cap)
	r.strPool[idx] = append(r.strPool[idx], strBlock{p: p, cap: int32(cap)})
	r.strPoolBytes += uint64(cap)
	if m := rt.met; m != nil {
		m.strPoolBlocks[idx].Inc()
	}
}

// strPoolClear drops r's pool. The blocks' memory is reclaimed by the
// caller's page release or detach; this only retires the host-side lists
// and keeps the class-occupancy gauges exact.
func (rt *Runtime) strPoolClear(r *Region) {
	if r.strPool == nil {
		return
	}
	if m := rt.met; m != nil {
		for idx, list := range r.strPool {
			if len(list) > 0 {
				m.strPoolBlocks[idx].Add(-int64(len(list)))
			}
		}
	}
	r.strPool = nil
	r.strPoolBytes = 0
}

// StrClassStats is one capacity class's row of the reuse report.
type StrClassStats struct {
	Size       int    // class floor capacity in bytes
	New        uint64 // bump allocations accounted to this class
	Reuse      uint64 // allocations served from the pool
	Freed      uint64 // blocks parked by RstrFree
	FreeBlocks int    // blocks currently parked, summed over live regions
	FreeBytes  uint64 // their capacities
}

// StrPoolStats is the pooled string allocator's cumulative accounting:
// per-class New/Reuse/Freed plus the above-ceiling Big count. Host-side
// only; charges no simulated cycles.
type StrPoolStats struct {
	Enabled bool // false under Options.NoStrPool
	Ceiling int  // class ceiling in bytes
	New     uint64
	Reuse   uint64
	Big     uint64
	Freed   uint64
	Classes []StrClassStats
}

// ReuseRatio returns Reuse / (New + Reuse), the steady-state fraction of
// pool-eligible string allocations served without bumping (0 when nothing
// was allocated).
func (s StrPoolStats) ReuseRatio() float64 {
	total := s.New + s.Reuse
	if total == 0 {
		return 0
	}
	return float64(s.Reuse) / float64(total)
}

// StrPoolStats reports the runtime's string-pool counters and the current
// per-class occupancy across live regions.
func (rt *Runtime) StrPoolStats() StrPoolStats {
	out := StrPoolStats{
		Enabled: rt.strPooling,
		Ceiling: rt.strCeil,
		Big:     rt.strBig,
		Classes: make([]StrClassStats, len(rt.strNew)),
	}
	for i := range out.Classes {
		c := &out.Classes[i]
		c.Size = strClassSize(i)
		c.New = rt.strNew[i]
		c.Reuse = rt.strReuse[i]
		c.Freed = rt.strFreed[i]
		out.New += c.New
		out.Reuse += c.Reuse
		out.Freed += c.Freed
	}
	for _, r := range rt.regions {
		if r.deleted {
			continue
		}
		for idx, list := range r.strPool {
			out.Classes[idx].FreeBlocks += len(list)
			for _, b := range list {
				out.Classes[idx].FreeBytes += uint64(b.cap)
			}
		}
	}
	return out
}
