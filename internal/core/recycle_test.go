package core

import (
	"math/rand"
	"testing"

	"regions/internal/mem"
)

// recycleExercise drives a runtime through seeded random region churn —
// creates, small and multi-page allocations, deletes, and full drains —
// verifying the heap invariants after every step and spot-checking the
// poison/zero discipline: memory handed out by an allocator is cleared
// (scanned paths) and a deleted region's pages are poisoned until reuse.
func recycleExercise(t *testing.T, rt *Runtime, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sp := rt.Space()

	type liveRegion struct {
		r    *Region
		ptrs []Ptr
	}
	var live []liveRegion

	check := func(op string) {
		t.Helper()
		if err := rt.Verify(); err != nil {
			t.Fatalf("seed %d: invariants violated after %s: %v", seed, op, err)
		}
	}

	deleteAt := func(i int) {
		t.Helper()
		lr := live[i]
		if !rt.DeleteRegion(lr.r) {
			t.Fatalf("seed %d: region with no references not deletable", seed)
		}
		// The dense index must forget the pages, and the freed memory must
		// be poisoned until an allocator reuses it.
		for _, p := range lr.ptrs {
			if got := rt.RegionOf(p); got != nil {
				t.Fatalf("seed %d: RegionOf after delete = %v, want nil", seed, got)
			}
			if w := sp.Load(p &^ Ptr(mem.PageSize-1)); w != mem.PoisonWord {
				t.Fatalf("seed %d: freed page not poisoned: %#x", seed, w)
			}
		}
		live = append(live[:i], live[i+1:]...)
		check("delete")
	}

	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 3 || len(live) == 0: // create
			r := rt.NewRegion()
			live = append(live, liveRegion{r: r})
			check("create")
		case op < 7: // allocate in a random region
			i := rng.Intn(len(live))
			r := live[i].r
			var p Ptr
			switch rng.Intn(3) {
			case 0: // small scanned object on the bump path
				size := 4 * (1 + rng.Intn(16))
				p = rt.Ralloc(r, size, rt.SizeCleanup(size))
				for off := 0; off < size; off += 4 {
					if w := sp.Load(p + Ptr(off)); w != 0 {
						t.Fatalf("seed %d: Ralloc memory not cleared: %#x", seed, w)
					}
				}
			case 1: // pointer-free, possibly multi-page span
				p = rt.RstrAlloc(r, 64+rng.Intn(3*mem.PageSize))
			case 2: // cleared array
				p = rt.RarrayAlloc(r, 1+rng.Intn(64), 8, rt.SizeCleanup(8))
				if w := sp.Load(p); w != 0 {
					t.Fatalf("seed %d: RarrayAlloc memory not cleared: %#x", seed, w)
				}
			}
			live[i].ptrs = append(live[i].ptrs, p)
			check("alloc")
		case op < 9: // delete a random region
			deleteAt(rng.Intn(len(live)))
		default: // drain: delete everything, then refill from the free lists
			for len(live) > 0 {
				deleteAt(len(live) - 1)
			}
			for i := 0; i < 3; i++ {
				r := rt.NewRegion()
				live = append(live, liveRegion{r: r})
				rt.RstrAlloc(r, mem.PageSize+rng.Intn(mem.PageSize))
			}
			check("drain-refill")
		}
	}
	for len(live) > 0 {
		deleteAt(len(live) - 1)
	}
}

func TestRandomizedPageRecycling(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rt, _ := newRT(true)
		recycleExercise(t, rt, seed, 400)
	}
}

// TestRandomizedPageRecyclingBatched runs the same churn with the batched
// free-page cache shards use: pages arrive from the simulated OS in batches
// and region churn is served from the cache, and every invariant — poisoned
// free pages included — must hold exactly as in the unbatched configuration.
func TestRandomizedPageRecyclingBatched(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rt, _ := newRTOpts(Options{Safe: true, PageBatch: 8})
		recycleExercise(t, rt, seed, 400)
	}
}
