package core

import (
	"errors"
	"fmt"
	"sort"

	"regions/internal/mem"
	"regions/internal/stats"
	"regions/internal/trace"
)

// This file implements live region migration between runtimes (ROADMAP item
// 2): ExportRegion serializes a quiesced region into a portable RegionRecord
// and ImportRegion materializes that record in another runtime's address
// space. What makes this tractable is the paper's own representation —
// regions are self-describing page lists (Section 3), so a region whose
// reference count is zero can be relocated wholesale: copy the page
// payloads, rebuild the links from the recorded run order, and fix up
// intra-region pointers with a per-page base-delta rewrite. No object graph
// tracing is needed; translation is O(pages), not O(objects reachable).
//
// The contract mirrors deleteregion's: a region is exportable exactly when
// it is deletable (exact reference count zero after the deferred stack scan),
// because that is the proof that no pointer outside the region's own pages —
// heap, global, or tracked frame slot — will dangle when the pages move.
// Two additional refusals keep the record self-contained: a region whose
// scanned data points into *another* region cannot be exported (those
// pointers would dangle in the target's address space), and a record whose
// cleanups are not registered on the importing runtime cannot be imported
// (cleanup ids are remapped by registered name, so the two runtimes may have
// registered in different orders, but every used name must exist).
//
// The export side leaves a tombstone: the handle is marked deleted+migrated
// and every subsequent operation on it faults with FaultMigratedRegion, so a
// stale handle is a diagnosable error rather than a silent touch of recycled
// pages. Neither side runs Verify itself — the shard migration coordinator
// runs it on donor and receiver around the handoff, as do the tests.
//
// Caveats, both inherited from verifyRC's C@ discipline assumption: a
// scanned-data integer that happens to equal a region address is
// indistinguishable from a pointer (it will be refused as a cross-region
// reference or translated as an intra-region one), and cleanup size
// functions are dry-run during the import rewrite on not-yet-translated
// data, so they must compute sizes without dereferencing region pointers.

// Sentinel causes for migration refusals, exposed for errors.Is. The
// returned errors wrap these with the region and offending address.
var (
	// ErrExportReferenced: the region's exact reference count is nonzero —
	// heap words, global storage, or tracked frame slots still point into
	// it, exactly the condition that makes deleteregion a failing no-op.
	ErrExportReferenced = errors.New("region has live external references")
	// ErrExportCrossRegion: the region's scanned data points into another
	// region of the source runtime; those pointers would dangle after the
	// move.
	ErrExportCrossRegion = errors.New("region data points into another region")
	// ErrImportCleanup: the record references a cleanup name not registered
	// on the importing runtime.
	ErrImportCleanup = errors.New("cleanup not registered on importing runtime")
)

// PageRun is one page-list entry's payload in a RegionRecord: the entry's
// address in the source address space, its page count, and every word of its
// pages verbatim (links and headers included; the import side rewrites them).
type PageRun struct {
	OldFirst Ptr
	Pages    int
	Words    []Word
}

// StrPoolRecord is one parked string-pool block (see strpool.go) in a
// RegionRecord: its source-space address and recorded capacity. Import
// remaps the address through the page placement and re-parks the block,
// so explicit string frees survive a migration.
type StrPoolRecord struct {
	OldAddr Ptr
	Cap     int32
}

// CleanupRef names one cleanup id used by objects in the record. Import
// remaps ids by Name, so source and target runtimes may have registered
// their cleanups in different orders.
type CleanupRef struct {
	ID   CleanupID
	Name string
}

// RegionRecord is a quiesced region serialized for transport between
// runtimes: everything ImportRegion needs to rebuild the region — page runs
// of both allocators in list order, the header location, and the cleanup
// names its objects reference. The record addresses are source-space;
// nothing in it is live, so it can cross goroutines freely.
type RegionRecord struct {
	SourceRegion int32  // region id on the exporting runtime
	Bytes        uint64 // program-requested bytes, carried for Table 2 stats
	Allocs       uint64
	OldHdr       Ptr       // region structure address in the source space
	Normal       []PageRun // normal-allocator entries, head first
	Str          []PageRun // string-allocator entries, head first
	Cleanups     []CleanupRef
	StrPool      []StrPoolRecord // parked string-pool blocks, class order
	Pages        int             // total pages across both lists

	// newPages is the old-page→new-page placement of the last successful
	// ImportRegion of this record, backing Translate.
	newPages map[Ptr]Ptr
}

// Translate maps a source-space pointer into the imported region's new
// address space: same page offset, relocated page. It reports false until
// the record has been successfully imported, and for pointers outside the
// record's pages. This is how a caller that held roots into the region
// before the export (untracked Go-side Ptr values, like a driver's chain
// head) re-finds them after the move.
func (rec *RegionRecord) Translate(p Ptr) (Ptr, bool) {
	npg, ok := rec.newPages[p>>mem.PageShift]
	if !ok {
		return 0, false
	}
	return npg<<mem.PageShift | p&Ptr(mem.PageSize-1), true
}

// ExportRegion serializes r into a portable record and releases its pages,
// leaving the handle a tombstone (Migrated() true; every operation faults
// with FaultMigratedRegion). The region must be quiesced: its exact
// reference count must be zero — the same deferred stack scan deleteregion
// performs runs first — and its scanned data must not point into any other
// region. On refusal (ErrExportReferenced, ErrExportCrossRegion) the region
// is untouched.
//
// Charges: the RC check charges as deleteregion's does (ModeScan); page
// release charges the synchronous 1+n per entry (ModeFree). Serialization
// itself is host-side and uncharged — the payload copy models a DMA out of
// the simulated machine.
func (rt *Runtime) ExportRegion(r *Region) (*RegionRecord, error) {
	if r == nil {
		panic("core: nil region")
	}
	if r.deleted {
		return nil, rt.deletedFault(r)
	}

	if rt.safe {
		if rc := rt.quiescedRC(r); rc != 0 {
			return nil, fmt.Errorf("core: exportregion region#%d: reference count %d: %w",
				r.id, rc, ErrExportReferenced)
		}
	}

	rec := &RegionRecord{SourceRegion: r.id, Bytes: r.bytes, Allocs: r.allocs, OldHdr: r.hdr}
	var serr error
	rt.space.Uncharged(func() { serr = rt.serializeRegion(r, rec) })
	if serr != nil {
		return nil, serr
	}

	// Release every page run synchronously (even under DeferredDelete: the
	// payload has been copied out and the free pages must be poisoned, not
	// detached, because no sweep will ever re-derive their contents).
	old := rt.space.SetMode(stats.ModeFree)
	for _, run := range rec.Normal {
		rt.releaseEntry(run.OldFirst, run.Pages)
	}
	for _, run := range rec.Str {
		rt.releaseEntry(run.OldFirst, run.Pages)
	}
	rt.space.SetMode(old)

	// The pool's block memory just left with the pages; retire the host-side
	// lists (keeping the occupancy gauges exact).
	rt.strPoolClear(r)

	r.deleted = true
	r.migrated = true
	if rt.tracer != nil {
		rt.tracer.Emit(trace.Event{Kind: trace.KindMigrate, Region: r.id,
			Addr: rec.OldHdr, Size: int32(rec.Pages), Aux: 0})
	}
	if m := rt.met; m != nil {
		m.liveRegions.Dec()
	}
	return rec, nil
}

// quiescedRC performs the exact reference-count read deleteregion's quiesce
// check performs: scan all frames but the active one, temporarily count the
// active frame, and read the region's count under ModeScan.
func (rt *Runtime) quiescedRC(r *Region) Word {
	var active *Frame
	if !rt.opts.EagerLocals {
		rt.stack.scanForDelete()
		if n := len(rt.stack.frames); n > 0 {
			active = rt.stack.frames[n-1]
		}
	}
	mode := rt.space.SetMode(stats.ModeScan)
	if active != nil {
		rt.stack.countFrame(active, +1)
	}
	rc := rt.space.Load(r.hdr + offRC)
	if active != nil {
		rt.stack.countFrame(active, -1)
	}
	rt.space.SetMode(mode)
	return rc
}

// Exportable reports whether r would pass ExportRegion's refusals right
// now: live, exact reference count zero, and no scanned data word pointing
// into another region. The reference-count probe charges what deleteregion's
// scan charges (ModeScan); the data scan is host-side and uncharged. A true
// result is advisory — the runtime's next task can invalidate it — so
// callers probe from the goroutine that owns the runtime and act before
// running anything else on it.
func (rt *Runtime) Exportable(r *Region) bool {
	if r == nil || r.deleted {
		return false
	}
	if rt.safe && rt.quiescedRC(r) != 0 {
		return false
	}
	ok := true
	rt.space.Uncharged(func() {
		ok = rt.exportScan(r, map[CleanupID]bool{}) == nil
	})
	return ok
}

// serializeRegion fills rec from r: the used-cleanup census plus the
// cross-region refusal (one object walk), then both page lists verbatim.
// Runs uncharged; the heap is not mutated.
func (rt *Runtime) serializeRegion(r *Region, rec *RegionRecord) error {
	used := map[CleanupID]bool{}
	if err := rt.exportScan(r, used); err != nil {
		return err
	}
	ids := make([]CleanupID, 0, len(used))
	for id := range used {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		rec.Cleanups = append(rec.Cleanups, CleanupRef{ID: id, Name: rt.cleanups[id-1].name})
	}
	rec.Normal = rt.serializeList(rt.space.Load(r.hdr + offNormalFirst))
	rec.Str = rt.serializeList(rt.space.Load(r.hdr + offStringFirst))
	for _, run := range rec.Normal {
		rec.Pages += run.Pages
	}
	for _, run := range rec.Str {
		rec.Pages += run.Pages
	}
	// Parked string-pool blocks, in class-then-list order so the record is
	// deterministic for a given pool state.
	for _, list := range r.strPool {
		for _, b := range list {
			rec.StrPool = append(rec.StrPool, StrPoolRecord{OldAddr: b.p, Cap: b.cap})
		}
	}
	return nil
}

// serializeList copies every entry of one page list, head first.
func (rt *Runtime) serializeList(entry Ptr) []PageRun {
	var runs []PageRun
	for entry != 0 {
		link := rt.space.Load(entry + pageLink)
		count := int(link&(mem.PageSize-1)) + 1
		words := make([]Word, count*mem.PageSize/mem.WordSize)
		for i := range words {
			words[i] = rt.space.Load(entry + Ptr(i*mem.WordSize))
		}
		runs = append(runs, PageRun{OldFirst: entry, Pages: count, Words: words})
		entry = link &^ Ptr(mem.PageSize-1)
	}
	return runs
}

// exportScan walks r's objects the way deleteregion's cleanup pass would,
// collecting the cleanup ids in use and refusing any data word that points
// into another region. Cleanup size functions are dry-run (Destroy disabled)
// to find non-array extents, as in Verify.
func (rt *Runtime) exportScan(r *Region, used map[CleanupID]bool) error {
	rt.verifying = true
	defer func() { rt.verifying = false }()

	checkWords := func(from, to Ptr) error {
		for a := from; a < to; a += mem.WordSize {
			w := rt.space.Load(a)
			if w == 0 {
				continue
			}
			if t := rt.pages.lookup(Ptr(w)); t != nil && t != r {
				return fmt.Errorf("core: exportregion region#%d: word at %#x points into region#%d: %w",
					r.id, a, t.id, ErrExportCrossRegion)
			}
		}
		return nil
	}
	homePage := r.hdr &^ Ptr(mem.PageSize-1)
	entry := rt.space.Load(r.hdr + offNormalFirst)
	for entry != 0 {
		link := rt.space.Load(entry + pageLink)
		count := int(link&(mem.PageSize-1)) + 1
		end := entry + Ptr(count*mem.PageSize)
		p := entry + mem.WordSize
		if entry == homePage {
			p = r.hdr + hdrBytes
		}
		for p < end {
			hdr := rt.space.Load(p)
			if hdr == 0 {
				break // end of the entry's filled prefix
			}
			id := CleanupID(hdr &^ arrayFlag)
			if id <= 0 || int(id) > len(rt.cleanups) {
				return rt.fault(FaultCorruptHeader, p, r.id,
					fmt.Sprintf("corrupt object header %#x", hdr), nil)
			}
			used[id] = true
			var extent Ptr
			if hdr&arrayFlag != 0 {
				n := int(rt.space.Load(p + 4))
				esz := int(rt.space.Load(p + 8))
				extent = Ptr(3*mem.WordSize + n*esz)
			} else {
				size := rt.cleanups[id-1].fn(rt, p+mem.WordSize)
				extent = Ptr(mem.WordSize + align4(size))
			}
			var dataFrom Ptr = p + mem.WordSize
			if hdr&arrayFlag != 0 {
				dataFrom = p + 3*mem.WordSize
			}
			if err := checkWords(dataFrom, p+extent); err != nil {
				return err
			}
			p += extent
		}
		entry = link &^ Ptr(mem.PageSize-1)
	}
	return nil
}

// ImportRegion materializes rec in this runtime and returns the new live
// region handle. Pages are acquired through the normal allocator path (free
// lists first, then the simulated OS — a refused mapping rolls every
// acquired run back and returns a FaultOOM error, leaving the runtime
// unchanged). Cleanup ids are remapped by registered name; a missing name
// is an ErrImportCleanup error before anything is acquired.
//
// The pointer fixup is the O(pages) base-delta rewrite: a per-page old→new
// map built from the run placements, applied object-aware — headers get the
// remapped cleanup id, array bookkeeping is skipped, and every scanned data
// word whose page moved is rewritten to the same offset on the destination
// page. String-allocator payloads are pointer-free by contract and copied
// verbatim. The rewrite charges 2 ModeAlloc cycles per page, the
// import-side counterpart of release's 1+n; the payload copy itself is
// uncharged, the inbound half of the export's DMA.
func (rt *Runtime) ImportRegion(rec *RegionRecord) (*Region, error) {
	if rec == nil {
		panic("core: nil region record")
	}
	if len(rec.Normal) == 0 {
		return nil, fmt.Errorf("core: importregion: record has no normal-list pages")
	}
	oldHome := rec.OldHdr &^ Ptr(mem.PageSize-1)
	homeIdx := -1
	for i, run := range rec.Normal {
		if oldHome >= run.OldFirst && oldHome < run.OldFirst+Ptr(run.Pages*mem.PageSize) {
			homeIdx = i
			break
		}
	}
	if homeIdx < 0 {
		return nil, fmt.Errorf("core: importregion: header %#x is on none of the record's normal runs", rec.OldHdr)
	}
	idMap := make(map[CleanupID]CleanupID, len(rec.Cleanups))
	for _, ref := range rec.Cleanups {
		var nid CleanupID
		for i := range rt.cleanups {
			if rt.cleanups[i].name == ref.Name {
				nid = CleanupID(i + 1)
				break
			}
		}
		if nid == 0 {
			return nil, fmt.Errorf("core: importregion: %q: %w", ref.Name, ErrImportCleanup)
		}
		idMap[ref.ID] = nid
	}

	old := rt.space.SetMode(stats.ModeAlloc)
	defer rt.space.SetMode(old)
	rt.charge(stats.ModeAlloc, 3)

	r := &Region{rt: rt, id: int32(len(rt.regions))}

	type run struct {
		first Ptr
		pages int
	}
	var acquired []run
	rollback := func() {
		mode := rt.space.SetMode(stats.ModeFree)
		for _, a := range acquired {
			rt.releaseEntry(a.first, a.pages)
		}
		rt.space.SetMode(mode)
	}
	place := func(runs []PageRun) []Ptr {
		news := make([]Ptr, len(runs))
		for i := range runs {
			p := rt.acquirePages(runs[i].Pages, r)
			if p == 0 {
				return nil
			}
			acquired = append(acquired, run{p, runs[i].Pages})
			news[i] = p
		}
		return news
	}
	newNormal := place(rec.Normal)
	if newNormal == nil {
		rollback()
		return nil, rt.oomFault("importregion", r.id)
	}
	newStr := place(rec.Str)
	if newStr == nil && len(rec.Str) > 0 {
		rollback()
		return nil, rt.oomFault("importregion", r.id)
	}

	pageMap := make(map[Ptr]Ptr, rec.Pages)
	note := func(runs []PageRun, news []Ptr) {
		for i := range runs {
			for j := 0; j < runs[i].Pages; j++ {
				pageMap[runs[i].OldFirst>>mem.PageShift+Ptr(j)] = news[i]>>mem.PageShift + Ptr(j)
			}
		}
	}
	note(rec.Normal, newNormal)
	note(rec.Str, newStr)
	newHdr := newNormal[homeIdx] + (rec.OldHdr - rec.Normal[homeIdx].OldFirst)

	var werr error
	rt.space.Uncharged(func() {
		werr = rt.materialize(rec, newNormal, newStr, newHdr, idMap, pageMap)
	})
	if werr != nil {
		rollback()
		return nil, werr
	}
	rt.charge(stats.ModeAlloc, 2*uint64(rec.Pages))
	rec.newPages = pageMap

	r.hdr = newHdr
	r.bytes = rec.Bytes
	r.allocs = rec.Allocs
	r.born = rt.c.TotalCycles()
	rt.regions = append(rt.regions, r)

	// Re-park the record's string-pool blocks at their relocated addresses.
	// A block the receiver cannot pool (pooling disabled, or capacity above
	// this runtime's class ceiling) is dropped: its memory stays dead until
	// the region dies, exactly as if it had been freed here unpooled. Blocks
	// are re-poisoned so a NoPoison exporter's record still satisfies this
	// runtime's Verify.
	for _, b := range rec.StrPool {
		if !rt.strPooling || int(b.Cap) > rt.strCeil {
			continue
		}
		npg, ok := pageMap[b.OldAddr>>mem.PageShift]
		if !ok {
			continue // unreachable for a well-formed record
		}
		np := npg<<mem.PageShift | b.OldAddr&Ptr(mem.PageSize-1)
		if !rt.opts.NoPoison {
			rt.space.PoisonRange(np, int(b.Cap))
		}
		rt.strPoolPut(r, np, int(b.Cap))
	}
	if rt.tracer != nil {
		rt.tracer.Emit(trace.Event{Kind: trace.KindMigrate, Region: r.id,
			Addr: newHdr, Size: int32(rec.Pages), Aux: 1})
	}
	if m := rt.met; m != nil {
		m.liveRegions.Inc()
	}
	return r, nil
}

// materialize copies the record's payload onto the freshly acquired (zeroed)
// runs and performs every fixup: link words rebuilt from the run order,
// region structure repointed, cleanup ids remapped, and intra-region
// pointers translated page-by-page. Runs uncharged. An error (a record
// whose objects name a cleanup absent from its own Cleanups table) leaves
// only the acquired pages dirty; the caller releases them.
func (rt *Runtime) materialize(rec *RegionRecord, newNormal, newStr []Ptr,
	newHdr Ptr, idMap map[CleanupID]CleanupID, pageMap map[Ptr]Ptr) error {
	copyRuns := func(runs []PageRun, news []Ptr) {
		for i := range runs {
			for j, w := range runs[i].Words {
				if w != 0 {
					rt.space.Store(news[i]+Ptr(j*mem.WordSize), w)
				}
			}
		}
	}
	copyRuns(rec.Normal, newNormal)
	copyRuns(rec.Str, newStr)

	// Rebuild the link words: entry i links to entry i+1 of its own list,
	// keeping each entry's page count in the low bits.
	relink := func(runs []PageRun, news []Ptr) {
		for i := range runs {
			var next Ptr
			if i+1 < len(runs) {
				next = news[i+1]
			}
			rt.space.Store(news[i]+pageLink, next|Ptr(runs[i].Pages-1))
		}
	}
	relink(rec.Normal, newNormal)
	relink(rec.Str, newStr)

	// Region structure: count stays zero (the region arrives quiesced), the
	// list heads move, the bump offsets carry over verbatim with the copy.
	rt.space.Store(newHdr+offRC, 0)
	rt.space.Store(newHdr+offNormalFirst, newNormal[0])
	if len(newStr) > 0 {
		rt.space.Store(newHdr+offStringFirst, newStr[0])
	} else {
		rt.space.Store(newHdr+offStringFirst, 0)
	}

	// Object-aware pointer rewrite over the normal runs.
	rt.verifying = true
	defer func() { rt.verifying = false }()
	translate := func(a Ptr) {
		w := rt.space.Load(a)
		if w == 0 {
			return
		}
		if npg, ok := pageMap[Ptr(w)>>mem.PageShift]; ok {
			rt.space.Store(a, npg<<mem.PageShift|w&Ptr(mem.PageSize-1))
		}
	}
	newHome := newHdr &^ Ptr(mem.PageSize-1)
	for i := range rec.Normal {
		entry := newNormal[i]
		end := entry + Ptr(rec.Normal[i].Pages*mem.PageSize)
		p := entry + mem.WordSize
		if entry == newHome {
			p = newHdr + hdrBytes
		}
		for p < end {
			hdr := rt.space.Load(p)
			if hdr == 0 {
				break
			}
			nid, ok := idMap[CleanupID(hdr&^arrayFlag)]
			if !ok {
				return fmt.Errorf("core: importregion: object header %#x at %#x names a cleanup missing from the record",
					hdr, p)
			}
			nh := Word(nid)
			if hdr&arrayFlag != 0 {
				nh |= arrayFlag
			}
			rt.space.Store(p, nh)
			var extent, dataFrom Ptr
			if hdr&arrayFlag != 0 {
				n := int(rt.space.Load(p + 4))
				esz := int(rt.space.Load(p + 8))
				extent = Ptr(3*mem.WordSize + n*esz)
				dataFrom = p + 3*mem.WordSize
			} else {
				size := rt.cleanups[nid-1].fn(rt, p+mem.WordSize)
				extent = Ptr(mem.WordSize + align4(size))
				dataFrom = p + mem.WordSize
			}
			for a := dataFrom; a < p+extent; a += mem.WordSize {
				translate(a)
			}
			p += extent
		}
	}
	return nil
}

// ContentChecksum folds r's live contents into a placement-independent
// digest: equal before an export and after the matching import, and equal
// across runtimes regardless of where pages landed. Word locations are
// folded as (page ordinal in list order, offset), and a scanned word that
// points into the region's own pages is folded in the same relative form, so
// the translation ImportRegion performs cancels out. Host-side and
// uncharged; the shard determinism gate and the migration tests are its
// consumers.
//
// Comparability requires what migration itself requires: both runtimes
// registered the object's cleanups (ids are folded raw, so identical
// registration order — or the id remap import performs — keeps them equal),
// and scanned integers don't alias region addresses. Array bookkeeping words
// are folded raw, matching the import rewrite's skip.
func (rt *Runtime) ContentChecksum(r *Region) uint32 {
	if r == nil {
		panic("core: nil region")
	}
	if r.deleted {
		panic(rt.deletedFault(r))
	}
	var h uint32
	rt.space.Uncharged(func() { h = rt.contentChecksum(r) })
	return h
}

func (rt *Runtime) contentChecksum(r *Region) uint32 {
	// Number the region's pages in page-list order (normal first, then
	// string); the ordinal survives relocation, the page number does not.
	ord := map[Ptr]uint32{}
	walk := func(entry Ptr) {
		for entry != 0 {
			link := rt.space.Load(entry + pageLink)
			count := int(link&(mem.PageSize-1)) + 1
			for i := 0; i < count; i++ {
				ord[entry>>mem.PageShift+Ptr(i)] = uint32(len(ord))
			}
			entry = link &^ Ptr(mem.PageSize-1)
		}
	}
	walk(rt.space.Load(r.hdr + offNormalFirst))
	walk(rt.space.Load(r.hdr + offStringFirst))

	h := uint32(2166136261)
	mix := func(v uint32) {
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= 16777619
			v >>= 8
		}
	}
	// Relative form of an address: (page ordinal, in-page offset), with the
	// region structure's colored offset subtracted out on the home page so
	// two regions differing only in their coloring accident digest equal.
	homePg := r.hdr >> mem.PageShift
	homeOff := uint32(r.hdr) & (mem.PageSize - 1)
	rel := func(p Ptr) uint32 {
		off := uint32(p) & (mem.PageSize - 1)
		if p>>mem.PageShift == homePg {
			off = (off - homeOff) & (mem.PageSize - 1)
		}
		return ord[p>>mem.PageShift]<<mem.PageShift | off
	}
	rt.forEachNormalWord(r, func(a Ptr, v Word) {
		mix(rel(a))
		if _, ok := ord[Ptr(v)>>mem.PageShift]; ok {
			// Intra-region pointer (or an integer aliasing one): fold its
			// relative form, marked so it cannot collide with a raw word.
			mix(1<<31 | rel(Ptr(v)))
		} else {
			mix(uint32(v))
		}
	})
	// String-allocator payloads are pointer-free: fold raw, skip the links.
	entry := rt.space.Load(r.hdr + offStringFirst)
	for entry != 0 {
		link := rt.space.Load(entry + pageLink)
		count := int(link&(mem.PageSize-1)) + 1
		end := entry + Ptr(count*mem.PageSize)
		for a := entry + mem.WordSize; a < end; a += mem.WordSize {
			if v := rt.space.Load(a); v != 0 {
				mix(rel(a))
				mix(uint32(v))
			}
		}
		entry = link &^ Ptr(mem.PageSize-1)
	}
	return h
}
