package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"regions/internal/mem"
	"regions/internal/metrics"
	"regions/internal/stats"
)

// Tests for the pooled string allocator (strpool.go): class-boundary
// behaviour, the pooling-on/off address identity, poison and double-free
// detection through Verify (wantInvariant from verify_test.go), pool state
// across export/import and deferred deletion, and a randomized
// alloc/free/recycle soak audited step by step.

// TestStrPoolSameSizeRecycle is the pool's core claim in miniature: free
// then realloc at the same size reuses the same address, and the reuse path
// is cheaper than the bump path it replaced.
func TestStrPoolSameSizeRecycle(t *testing.T) {
	rt, c := newRT(true)
	r := rt.NewRegion()
	p := rt.RstrAlloc(r, 64)
	rt.RstrFree(r, p, 64)
	before := c.TotalCycles()
	q := rt.RstrAlloc(r, 64)
	reuseCost := c.TotalCycles() - before
	if q != p {
		t.Fatalf("recycle returned %#x, want the freed block %#x", q, p)
	}
	// A first-probe hit is the fixed 4 plus 1 probe cycle; the bump path
	// charges 4 plus its 3-cycle in-page advance.
	if reuseCost != 5 {
		t.Fatalf("pool hit charged %d cycles, want 5", reuseCost)
	}
	s := rt.StrPoolStats()
	if s.New != 1 || s.Reuse != 1 || s.Freed != 1 {
		t.Fatalf("stats new=%d reuse=%d freed=%d, want 1/1/1", s.New, s.Reuse, s.Freed)
	}
	if got := s.ReuseRatio(); got != 0.5 {
		t.Fatalf("reuse ratio %g, want 0.5", got)
	}
	if err := rt.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestStrPoolClassBoundaries walks every class boundary with sizes one
// under, exactly at, and one over each power of two: the floor-class filing
// must let an equal-size request reuse, and a one-over request (which floors
// to the same class but needs more bytes) must not reuse a smaller block.
func TestStrPoolClassBoundaries(t *testing.T) {
	for sz := 8; sz <= 2048; sz <<= 1 {
		for _, d := range []int{-1, 0, 1} {
			size := sz + d
			if align4(size) > defaultStrPoolMax {
				continue // above the ceiling: the Big test covers it
			}
			t.Run(fmt.Sprintf("size=%d", size), func(t *testing.T) {
				rt, _ := newRT(true)
				r := rt.NewRegion()
				p := rt.RstrAlloc(r, size)
				rt.RstrFree(r, p, size)
				if q := rt.RstrAlloc(r, size); q != p {
					t.Fatalf("same-size realloc of %d got %#x, want freed %#x", size, q, p)
				}
				if err := rt.Verify(); err != nil {
					t.Fatalf("verify: %v", err)
				}
				// A request 4 bytes larger floors into the same or next
				// class but cannot fit the parked capacity: it must bump.
				rt.RstrFree(r, p, size)
				if q := rt.RstrAlloc(r, size+4); q == p {
					t.Fatalf("%d-byte realloc reused the %d-byte block", size+4, size)
				}
				// A request smaller than the parked capacity but in the same
				// class reuses it; the slack stays inside the block.
				if size >= strClassMin+4 {
					want := align4(size) // parked capacity
					q := rt.RstrAlloc(r, size-4)
					if align4(size-4) != want && strClassIdx(align4(size-4)) == strClassIdx(want) && q != p {
						t.Fatalf("smaller same-class realloc got %#x, want %#x", q, p)
					}
				}
				if err := rt.Verify(); err != nil {
					t.Fatalf("verify after slack reuse: %v", err)
				}
			})
		}
	}
}

// TestStrPoolBigAboveCeiling: requests above the ceiling are "Big" — bump
// only, counted separately, and their frees park nothing.
func TestStrPoolBigAboveCeiling(t *testing.T) {
	rt, _ := newRTOpts(Options{Safe: true, StrPoolMax: 256})
	r := rt.NewRegion()
	p := rt.RstrAlloc(r, 512)
	s := rt.StrPoolStats()
	if s.Big != 1 || s.New != 0 {
		t.Fatalf("big=%d new=%d after above-ceiling alloc, want 1/0", s.Big, s.New)
	}
	if s.Ceiling != 256 {
		t.Fatalf("ceiling %d, want 256", s.Ceiling)
	}
	rt.RstrFree(r, p, 512)
	if got := r.strPoolBytes; got != 0 {
		t.Fatalf("above-ceiling free parked %d bytes, want 0", got)
	}
	if q := rt.RstrAlloc(r, 512); q == p {
		t.Fatal("above-ceiling realloc reused a block the pool should not hold")
	}
	if err := rt.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestStrPoolMaxRounding: the ceiling rounds up to a power of two and
// floors at the word size.
func TestStrPoolMaxRounding(t *testing.T) {
	for _, v := range []struct{ in, want int }{
		{1, strClassMin}, {4, 4}, {5, 8}, {100, 128}, {2048, 2048}, {3000, 4096},
	} {
		rt, _ := newRTOpts(Options{Safe: true, StrPoolMax: v.in})
		if got := rt.StrPoolStats().Ceiling; got != v.want {
			t.Fatalf("StrPoolMax %d: ceiling %d, want %d", v.in, got, v.want)
		}
	}
}

// TestStrPoolAddressIdentityWithoutFrees: a workload that never frees gets
// a bit-identical address stream with pooling on or off — the miss path
// bumps exactly what the paper's allocator would.
func TestStrPoolAddressIdentityWithoutFrees(t *testing.T) {
	run := func(noPool bool) []Ptr {
		rt, _ := newRTOpts(Options{Safe: true, NoStrPool: noPool})
		r := rt.NewRegion()
		rng := rand.New(rand.NewSource(7))
		var out []Ptr
		for i := 0; i < 500; i++ {
			out = append(out, rt.RstrAlloc(r, 4+rng.Intn(600)))
		}
		return out
	}
	pooled, bump := run(false), run(true)
	for i := range pooled {
		if pooled[i] != bump[i] {
			t.Fatalf("alloc %d: pooled %#x, no-pool %#x — free-less streams must match", i, pooled[i], bump[i])
		}
	}
}

// TestStrPoolNoStrPoolDisablesReuse: under NoStrPool the counters still
// account allocations but frees park nothing and nothing reuses.
func TestStrPoolNoStrPoolDisablesReuse(t *testing.T) {
	rt, _ := newRTOpts(Options{Safe: true, NoStrPool: true})
	r := rt.NewRegion()
	p := rt.RstrAlloc(r, 64)
	rt.RstrFree(r, p, 64)
	if q := rt.RstrAlloc(r, 64); q == p {
		t.Fatal("NoStrPool runtime reused a freed block")
	}
	s := rt.StrPoolStats()
	if s.Enabled {
		t.Fatal("stats report pooling enabled under NoStrPool")
	}
	if s.New != 2 || s.Reuse != 0 || s.Freed != 1 {
		t.Fatalf("stats new=%d reuse=%d freed=%d, want 2/0/1", s.New, s.Reuse, s.Freed)
	}
	if err := rt.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestStrPoolPoisonIntegrity: a stray write into a parked block trips
// Verify's poison audit.
func TestStrPoolPoisonIntegrity(t *testing.T) {
	rt, _ := newRT(true)
	r := rt.NewRegion()
	p := rt.RstrAlloc(r, 64)
	rt.RstrFree(r, p, 64)
	if w := rt.Space().Load(p); w != mem.PoisonWord {
		t.Fatalf("freed block holds %#x, want poison", w)
	}
	if err := rt.Verify(); err != nil {
		t.Fatalf("verify before corruption: %v", err)
	}
	rt.Space().Store(p+4, 0x1234)
	wantInvariant(t, rt, "not poison")
}

// TestStrPoolDoubleFreeOverlap: the string side has no headers, so a double
// free succeeds at the call site but leaves two pool entries over one
// extent — which Verify's overlap check names.
func TestStrPoolDoubleFreeOverlap(t *testing.T) {
	rt, _ := newRT(true)
	r := rt.NewRegion()
	p := rt.RstrAlloc(r, 64)
	rt.RstrFree(r, p, 64)
	rt.RstrFree(r, p, 64)
	wantInvariant(t, rt, "double free")
}

// TestStrPoolFreeForeignPointer: freeing memory the region does not own is
// a dangling-destroy fault and parks nothing.
func TestStrPoolFreeForeignPointer(t *testing.T) {
	rt, _ := newRT(true)
	r1, r2 := rt.NewRegion(), rt.NewRegion()
	p := rt.RstrAlloc(r1, 64)
	err := rt.TryRstrFree(r2, p, 64)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultDanglingDestroy {
		t.Fatalf("want FaultDanglingDestroy, got %v", err)
	}
	if r2.strPoolBytes != 0 {
		t.Fatal("foreign free parked bytes")
	}
}

// TestStrPoolDiesWithRegion: deleting a region drops its pool; a deferred
// deletion must do the same at detach time, before the sweep runs, so no
// sweep interleaving can resurrect a parked block.
func TestStrPoolDiesWithRegion(t *testing.T) {
	for _, deferred := range []bool{false, true} {
		t.Run(fmt.Sprintf("deferred=%v", deferred), func(t *testing.T) {
			rt, _ := newRTOpts(Options{Safe: true, DeferredDelete: deferred, SweepBudget: 1})
			r := rt.NewRegion()
			for i := 0; i < 8; i++ {
				rt.RstrFree(r, rt.RstrAlloc(r, 128), 128)
			}
			if r.strPoolBytes == 0 {
				t.Fatal("pool empty before delete")
			}
			if !rt.DeleteRegion(r) {
				t.Fatal("delete refused")
			}
			if r.strPool != nil || r.strPoolBytes != 0 {
				t.Fatal("pool survived deletion")
			}
			// Interleave fresh pool traffic with the incremental sweep: the
			// audit must hold on every slice boundary.
			r2 := rt.NewRegion()
			var q Ptr
			for rt.SweepDebt() > 0 {
				if q != 0 {
					rt.RstrFree(r2, q, 96)
				}
				q = rt.RstrAlloc(r2, 96)
				rt.SweepSlice()
				if err := rt.Verify(); err != nil {
					t.Fatalf("verify mid-sweep: %v", err)
				}
			}
			if err := rt.Verify(); err != nil {
				t.Fatalf("verify after sweep: %v", err)
			}
		})
	}
}

// TestStrPoolExportImport: a populated pool round-trips through region
// migration — parked blocks are remapped to the new addresses, re-poisoned,
// and reusable on the receiver; Verify passes on both sides.
func TestStrPoolExportImport(t *testing.T) {
	src, _ := newRT(true)
	dst, _ := newRT(true)
	r := src.NewRegion()
	// Allocate everything first, then free: freeing as we go would let the
	// later same-class allocations reuse the parked blocks.
	type pb struct {
		p  Ptr
		sz int
	}
	var blocks []pb
	for _, sz := range []int{24, 64, 64, 200, 512, 2048} {
		blocks = append(blocks, pb{src.RstrAlloc(r, sz), sz})
	}
	keep := src.RstrAlloc(r, 300) // live payload the record must carry
	src.Space().Store(keep, 0xfeed)
	for _, b := range blocks {
		src.RstrFree(r, b.p, b.sz)
	}
	wantBytes := r.strPoolBytes

	rec, err := src.ExportRegion(r)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if len(rec.StrPool) != len(blocks) {
		t.Fatalf("record carries %d pool blocks, want %d", len(rec.StrPool), len(blocks))
	}
	if err := src.Verify(); err != nil {
		t.Fatalf("verify source after export: %v", err)
	}
	r2, err := dst.ImportRegion(rec)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if r2.strPoolBytes != wantBytes {
		t.Fatalf("imported pool holds %d bytes, want %d", r2.strPoolBytes, wantBytes)
	}
	if err := dst.Verify(); err != nil {
		t.Fatalf("verify destination: %v", err)
	}
	// The remapped blocks must actually serve allocations.
	before := dst.StrPoolStats().Reuse
	dst.RstrAlloc(r2, 64)
	if got := dst.StrPoolStats().Reuse; got != before+1 {
		t.Fatalf("post-import alloc did not reuse (reuse %d -> %d)", before, got)
	}
	if err := dst.Verify(); err != nil {
		t.Fatalf("verify after post-import reuse: %v", err)
	}
}

// TestStrPoolImportIntoNoStrPool: a receiver with pooling off (or a lower
// ceiling) silently drops parked blocks instead of importing state it would
// immediately flag as an invariant violation.
func TestStrPoolImportIntoNoStrPool(t *testing.T) {
	src, _ := newRT(true)
	dst, _ := newRTOpts(Options{Safe: true, NoStrPool: true})
	r := src.NewRegion()
	p := src.RstrAlloc(r, 64)
	src.RstrFree(r, p, 64)
	rec, err := src.ExportRegion(r)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	r2, err := dst.ImportRegion(rec)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if r2.strPoolBytes != 0 || r2.strPool != nil {
		t.Fatal("NoStrPool receiver kept imported pool blocks")
	}
	if err := dst.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestStrPoolGauges: the per-class occupancy gauges track park/take/clear
// exactly, and SetMetrics seeds them from live pools.
func TestStrPoolGauges(t *testing.T) {
	reg := metrics.NewRegistry()
	rt := NewRuntimeOpts(mem.NewSpace(&stats.Counters{}), Options{Safe: true})
	rt.SetMetrics(reg)
	g64 := reg.Gauge(`regions_str_pool_blocks{class="64"}`)
	r := rt.NewRegion()
	p1, p2 := rt.RstrAlloc(r, 64), rt.RstrAlloc(r, 64)
	rt.RstrFree(r, p1, 64)
	rt.RstrFree(r, p2, 64)
	if got := g64.Value(); got != 2 {
		t.Fatalf("gauge after two frees: %d, want 2", got)
	}
	rt.RstrAlloc(r, 64)
	if got := g64.Value(); got != 1 {
		t.Fatalf("gauge after reuse: %d, want 1", got)
	}
	if got := reg.Counter("regions_str_reuse_total").Value(); got != 1 {
		t.Fatalf("reuse counter %d, want 1", got)
	}
	rt.DeleteRegion(r)
	if got := g64.Value(); got != 0 {
		t.Fatalf("gauge after delete: %d, want 0", got)
	}
	// Attaching a registry mid-flight seeds gauges from the live pools.
	rt2 := NewRuntimeOpts(mem.NewSpace(&stats.Counters{}), Options{Safe: true})
	r2 := rt2.NewRegion()
	rt2.RstrFree(r2, rt2.RstrAlloc(r2, 32), 32)
	reg2 := metrics.NewRegistry()
	rt2.SetMetrics(reg2)
	if got := reg2.Gauge(`regions_str_pool_blocks{class="32"}`).Value(); got != 1 {
		t.Fatalf("seeded gauge %d, want 1", got)
	}
}

// TestStrPoolRandomizedSoak drives a randomized alloc/free/recycle mix —
// boundary sizes, Big sizes, slack reuse, region churn, deferred deletion —
// and audits the full heap with Verify at every step. Live blocks carry a
// seeded fill that is checked before each free, so a pool bug that hands
// out overlapping or still-live memory surfaces as data corruption even if
// the invariants miss it.
func TestStrPoolRandomizedSoak(t *testing.T) {
	for _, opt := range []Options{
		{Safe: true},
		{Safe: true, StrPoolMax: 256},
		{Safe: true, DeferredDelete: true, SweepBudget: 2},
	} {
		t.Run(fmt.Sprintf("max=%d,deferred=%v", opt.StrPoolMax, opt.DeferredDelete), func(t *testing.T) {
			rt, _ := newRTOpts(opt)
			rng := rand.New(rand.NewSource(42))
			sizes := []int{4, 7, 8, 9, 24, 31, 32, 33, 63, 64, 65, 127, 128, 129,
				200, 255, 256, 257, 511, 512, 513, 1024, 2047, 2048, 2049, 3000}
			type blk struct {
				p    Ptr
				size int
				fill uint32
			}
			live := map[*Region][]blk{}
			var regions []*Region
			newRegion := func() *Region {
				r := rt.NewRegion()
				regions = append(regions, r)
				return r
			}
			newRegion()
			fill := func(b blk) {
				for o := 0; o+4 <= align4(b.size); o += 4 {
					rt.Space().Store(b.p+Ptr(o), b.fill+uint32(o))
				}
			}
			check := func(b blk) {
				for o := 0; o+4 <= align4(b.size); o += 4 {
					if w := rt.Space().Load(b.p + Ptr(o)); w != b.fill+uint32(o) {
						t.Fatalf("live block %#x corrupted at +%d: %#x", b.p, o, w)
					}
				}
			}
			const steps = 1200
			for i := 0; i < steps; i++ {
				r := regions[rng.Intn(len(regions))]
				switch op := rng.Intn(10); {
				case op < 5: // alloc
					sz := sizes[rng.Intn(len(sizes))]
					b := blk{rt.RstrAlloc(r, sz), sz, rng.Uint32()}
					fill(b)
					live[r] = append(live[r], b)
				case op < 8: // free a random live block
					if n := len(live[r]); n > 0 {
						j := rng.Intn(n)
						b := live[r][j]
						check(b)
						rt.RstrFree(r, b.p, b.size)
						live[r][j] = live[r][n-1]
						live[r] = live[r][:n-1]
					}
				case op < 9: // region churn
					if len(regions) > 1 && rng.Intn(2) == 0 {
						j := rng.Intn(len(regions))
						dead := regions[j]
						if rt.DeleteRegion(dead) {
							delete(live, dead)
							regions[j] = regions[len(regions)-1]
							regions = regions[:len(regions)-1]
						}
					} else {
						newRegion()
					}
				default: // advance the deferred sweep, if any
					rt.SweepSlice()
				}
				if err := rt.Verify(); err != nil {
					t.Fatalf("step %d: verify: %v", i, err)
				}
			}
			for _, r := range regions {
				for _, b := range live[r] {
					check(b)
				}
			}
			s := rt.StrPoolStats()
			if s.Reuse == 0 {
				t.Fatal("soak never reused — the mix is not exercising the pool")
			}
			t.Logf("soak: new=%d reuse=%d big=%d freed=%d ratio=%.3f",
				s.New, s.Reuse, s.Big, s.Freed, s.ReuseRatio())
		})
	}
}
