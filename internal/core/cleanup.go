package core

import (
	"fmt"

	"regions/internal/mem"
	"regions/internal/stats"
	"regions/internal/trace"
)

// CleanupID identifies a registered cleanup function. The zero value is not
// a valid id; every ralloc'd object carries one, as in the paper, where the
// cleanup pointer doubles as the object header and a NULL header marks the
// end of a page's filled prefix (Figure 7).
type CleanupID int32

// CleanupFunc is the paper's cleanup_t: given the address of an object's
// data, it must call rt.Destroy on every region pointer stored in the object
// and return the object's data size in bytes. For array allocations the same
// function is applied per element (the count and element size are stored in
// the array header) and its return value is ignored.
//
// The user supplies cleanups for the same reason the paper requires them: in
// C, unions make it impossible for the compiler to locate region pointers.
// Cleanups also provide object finalization.
type CleanupFunc func(rt *Runtime, obj Ptr) int

type cleanupEntry struct {
	name string
	fn   CleanupFunc
}

// RegisterCleanup registers fn under a diagnostic name and returns its id.
func (rt *Runtime) RegisterCleanup(name string, fn CleanupFunc) CleanupID {
	if fn == nil {
		panic("core: nil cleanup function")
	}
	rt.cleanups = append(rt.cleanups, cleanupEntry{name, fn})
	return CleanupID(len(rt.cleanups))
}

// SizeCleanup returns a cleanup for pointer-free objects of exactly size
// bytes. Results are cached per size. Such objects could use RstrAlloc
// instead; SizeCleanup exists for data that must live among scanned objects
// or wants ralloc's clearing.
func (rt *Runtime) SizeCleanup(size int) CleanupID {
	if rt.sizeCleanups == nil {
		rt.sizeCleanups = make(map[int]CleanupID)
	}
	if id, ok := rt.sizeCleanups[size]; ok {
		return id
	}
	id := rt.RegisterCleanup(fmt.Sprintf("size%d", size),
		func(_ *Runtime, _ Ptr) int { return size })
	rt.sizeCleanups[size] = id
	return id
}

// encodeCleanup builds the object header word: id (1-based, so headers are
// never zero) plus an array flag bit.
func (rt *Runtime) encodeCleanup(cln CleanupID, array bool) Word {
	if cln <= 0 || int(cln) > len(rt.cleanups) {
		panic(fmt.Sprintf("core: invalid cleanup id %d", cln))
	}
	w := Word(cln)
	if array {
		w |= arrayFlag
	}
	return w
}

// Destroy is called by cleanup functions on every region pointer in a dying
// object (the paper's destroy). It decrements the target region's reference
// count unless the pointer is nil, points outside any region, or points back
// into the region being deleted (sameregion pointers were never counted).
func (rt *Runtime) Destroy(p Ptr) {
	if !rt.safe || rt.verifying {
		return
	}
	rt.c.DestroyCalls++
	rt.charge(stats.ModeCleanup, 2)
	if p == 0 {
		return
	}
	reg := rt.RegionOf(p)
	if reg == nil || reg == rt.deleting {
		return
	}
	if reg.deleted {
		panic(rt.fault(FaultDanglingDestroy, p, reg.id,
			"Destroy found a pointer into a deleted region", nil))
	}
	rt.rcDec(reg)
	if rt.tracer != nil {
		rt.tracer.Emit(trace.Event{Kind: trace.KindDestroy, Addr: p,
			Region: reg.id, Aux: -1})
	}
}

// runCleanups walks every normal-allocator page entry of r and invokes each
// object's cleanup, following Figure 7 of the paper. The end of an entry's
// filled prefix is marked by a zero header word.
func (rt *Runtime) runCleanups(r *Region) {
	old := rt.space.SetMode(stats.ModeCleanup)
	defer rt.space.SetMode(old)
	rt.deleting = r
	defer func() { rt.deleting = nil }()

	homePage := r.hdr &^ Ptr(mem.PageSize-1)
	entry := rt.space.Load(r.hdr + offNormalFirst)
	for entry != 0 {
		link := rt.space.Load(entry + pageLink)
		next := link &^ Ptr(mem.PageSize-1)
		count := int(link&(mem.PageSize-1)) + 1
		end := entry + Ptr(count*mem.PageSize)

		deleting := entry + mem.WordSize
		if entry == homePage {
			deleting = r.hdr + hdrBytes // skip the region structure
		}
		for deleting < end {
			hdr := rt.space.Load(deleting)
			if hdr == 0 {
				break // end of filled prefix
			}
			rt.c.CleanupCalls++
			rt.charge(stats.ModeCleanup, 3)
			id := CleanupID(hdr &^ arrayFlag)
			if id <= 0 || int(id) > len(rt.cleanups) {
				panic(rt.fault(FaultCorruptHeader, deleting, r.id,
					fmt.Sprintf("corrupt object header %#x", hdr), nil))
			}
			fn := rt.cleanups[id-1].fn
			if hdr&arrayFlag != 0 {
				n := int(rt.space.Load(deleting + 4))
				esz := int(rt.space.Load(deleting + 8))
				obj := deleting + 3*mem.WordSize
				for i := 0; i < n; i++ {
					fn(rt, obj+Ptr(i*esz))
				}
				if rt.tracer != nil {
					rt.tracer.Emit(trace.Event{Kind: trace.KindCleanup,
						Region: r.id, Addr: obj, Size: int32(n * esz),
						Aux: int32(n), Site: rt.cleanups[id-1].name})
				}
				deleting += Ptr(3*mem.WordSize + n*esz)
			} else {
				size := fn(rt, deleting+mem.WordSize)
				if rt.tracer != nil {
					rt.tracer.Emit(trace.Event{Kind: trace.KindCleanup,
						Region: r.id, Addr: deleting + mem.WordSize,
						Size: int32(align4(size)), Aux: -1,
						Site: rt.cleanups[id-1].name})
				}
				deleting += Ptr(mem.WordSize + align4(size))
			}
		}
		entry = next
	}
}
