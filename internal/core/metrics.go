package core

import (
	"strconv"

	"regions/internal/metrics"
)

// This file wires the runtime into the live metrics registry
// (internal/metrics), the counterpart of tracing for aggregate telemetry.
// The pattern is identical to SetTracer: an unmetered runtime holds a nil
// *runtimeMetrics and every emission site pays one predicate; a metered
// runtime resolves each series once, here, so hot paths update cached
// atomic counters and never touch the registry's name maps. Metric updates
// are host-side bookkeeping outside the machine model — they charge no
// simulated cycles and leave stats.Counters identical to a bare run.

// Histogram bucket bounds. Alloc sizes follow the power-of-two spread of
// the paper's benchmark object sizes; region lifetimes span the decades
// between a scratch region and a whole-run region; barrier latencies
// bracket the Figure 5 instruction counts (12-30 extra cycles plus memory
// accesses).
var (
	allocSizeBounds      = []uint64{16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536}
	regionLifetimeBounds = []uint64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}
	barrierCycleBounds   = []uint64{4, 8, 16, 24, 32, 48, 64, 128}
	// Sweep-slice cycle bounds bracket the per-slice charge (1 cycle per
	// swept page) up to and past the default 32-page budget.
	sweepSliceCycleBounds = []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256}
)

// runtimeMetrics caches direct pointers to every series the runtime emits.
type runtimeMetrics struct {
	reg *metrics.Registry

	allocs     *metrics.Counter
	allocBytes *metrics.Counter
	allocSize  *metrics.Histogram

	regionsCreated *metrics.Counter
	regionsDeleted *metrics.Counter
	deleteFails    *metrics.Counter
	liveRegions    *metrics.Gauge
	regionLifetime *metrics.Histogram

	barrierGlobal *metrics.Counter
	barrierRegion *metrics.Counter
	barrierSame   *metrics.Counter
	barrierFast   *metrics.Counter
	barrierCycles *metrics.Histogram

	stackScans   *metrics.Counter
	stackUnscans *metrics.Counter
	rcIncs       *metrics.Counter
	rcDecs       *metrics.Counter

	lookups    *metrics.Counter
	lookupHits *metrics.Counter
	lrHits     *metrics.Counter
	lrMisses   *metrics.Counter

	pagesAcquired *metrics.Counter
	pagesReleased *metrics.Counter

	sweepDebt        *metrics.Gauge
	sweepSlices      *metrics.Counter
	sweptPages       *metrics.Counter
	sweepSliceCycles *metrics.Histogram

	// Pooled string allocator (see strpool.go): New/Reuse are the
	// str_reuse_ratio-derivable pair, strPoolBlocks the per-capacity-class
	// occupancy gauges, indexed like rt.strNew.
	strNew        *metrics.Counter
	strReuse      *metrics.Counter
	strBig        *metrics.Counter
	strFrees      *metrics.Counter
	strFreeBytes  *metrics.Counter
	strPoolBlocks []*metrics.Gauge
}

func newRuntimeMetrics(reg *metrics.Registry, classes int) *runtimeMetrics {
	pool := make([]*metrics.Gauge, classes)
	for i := range pool {
		pool[i] = reg.Gauge(`regions_str_pool_blocks{class="` +
			strconv.Itoa(strClassSize(i)) + `"}`)
	}
	return &runtimeMetrics{
		reg: reg,

		allocs:     reg.Counter("regions_core_allocs_total"),
		allocBytes: reg.Counter("regions_core_alloc_bytes_total"),
		allocSize:  reg.Histogram("regions_core_alloc_size_bytes", allocSizeBounds),

		regionsCreated: reg.Counter("regions_core_regions_created_total"),
		regionsDeleted: reg.Counter("regions_core_regions_deleted_total"),
		deleteFails:    reg.Counter("regions_core_region_delete_fails_total"),
		liveRegions:    reg.Gauge("regions_core_live_regions"),
		regionLifetime: reg.Histogram("regions_core_region_lifetime_cycles", regionLifetimeBounds),

		barrierGlobal: reg.Counter("regions_core_barrier_global_total"),
		barrierRegion: reg.Counter("regions_core_barrier_region_total"),
		barrierSame:   reg.Counter("regions_core_barrier_sameregion_total"),
		barrierFast:   reg.Counter("regions_core_barrier_fast_total"),
		barrierCycles: reg.Histogram("regions_core_barrier_cycles", barrierCycleBounds),

		stackScans:   reg.Counter("regions_core_stack_scans_total"),
		stackUnscans: reg.Counter("regions_core_stack_unscans_total"),
		rcIncs:       reg.Counter("regions_core_rc_incs_total"),
		rcDecs:       reg.Counter("regions_core_rc_decs_total"),

		lookups:    reg.Counter("regions_core_pageindex_lookups_total"),
		lookupHits: reg.Counter("regions_core_pageindex_hits_total"),
		lrHits:     reg.Counter("regions_core_lrcache_hits_total"),
		lrMisses:   reg.Counter("regions_core_lrcache_misses_total"),

		pagesAcquired: reg.Counter("regions_core_pages_acquired_total"),
		pagesReleased: reg.Counter("regions_core_pages_released_total"),

		sweepDebt:        reg.Gauge("regions_sweep_debt_pages"),
		sweepSlices:      reg.Counter("regions_sweep_slices_total"),
		sweptPages:       reg.Counter("regions_swept_pages_total"),
		sweepSliceCycles: reg.Histogram("regions_sweep_slice_cycles", sweepSliceCycleBounds),

		strNew:        reg.Counter("regions_str_new_total"),
		strReuse:      reg.Counter("regions_str_reuse_total"),
		strBig:        reg.Counter("regions_str_big_total"),
		strFrees:      reg.Counter("regions_str_free_total"),
		strFreeBytes:  reg.Counter("regions_str_free_bytes_total"),
		strPoolBlocks: pool,
	}
}

// SetMetrics attaches the runtime to a metrics registry (nil detaches).
// Series are resolved once here; see docs/OBSERVABILITY.md for the list.
// The per-class pool-occupancy gauges are re-seeded from the live regions'
// pools on attach, so a registry attached mid-run reads correctly.
func (rt *Runtime) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		rt.met = nil
		return
	}
	rt.met = newRuntimeMetrics(reg, len(rt.strNew))
	counts := make([]int64, len(rt.strNew))
	for _, r := range rt.regions {
		if r.deleted {
			continue
		}
		for idx, list := range r.strPool {
			counts[idx] += int64(len(list))
		}
	}
	for idx, g := range rt.met.strPoolBlocks {
		g.Set(counts[idx])
	}
}

// Metrics returns the attached registry, or nil.
func (rt *Runtime) Metrics() *metrics.Registry {
	if rt.met == nil {
		return nil
	}
	return rt.met.reg
}
