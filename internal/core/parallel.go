package core

import (
	"sync"
	"sync/atomic"

	"regions/internal/trace"
)

// This file implements the paper's parallel extension (Section 1):
//
//	"The only operations that require synchronization amongst all processes
//	are region creation and deletion. Each process keeps a local reference
//	count for each region which counts the references created or deleted by
//	that process. A region can be deleted if the sum of all its local
//	reference counts is zero. Writes of references to regions must be done
//	with an atomic exchange (rather than a simple write) to prevent
//	incorrect behaviour in the presence of data races, however the local
//	reference counts can be adjusted without synchronization or
//	communication."
//
// The extension is modelled on Go values rather than the single-threaded
// simulated heap: the algorithmic content is the counting protocol, not the
// allocator. Local counts use atomic adds only to satisfy the Go memory
// model; each is still strictly worker-local state requiring no
// communication, as in the paper.

// ParWorld is a group of workers sharing a set of parallel regions.
// Region creation and deletion synchronize on the world's mutex — the
// paper's global synchronization points.
type ParWorld struct {
	mu      sync.Mutex
	workers int
	regions []*ParRegion

	// tracer, when non-nil, receives region lifecycle and pointer-write
	// events. Set it before any worker starts: the field is read without
	// synchronization on the write fast path.
	tracer *trace.Tracer
}

// SetTracer attaches t as the world's event sink (nil detaches). It must be
// called before workers start issuing writes. ParWorld events carry no
// cycle clock unless t already has one: the parallel extension is modelled
// on Go values, outside the simulated machine.
func (w *ParWorld) SetTracer(t *trace.Tracer) {
	w.mu.Lock()
	w.tracer = t
	w.mu.Unlock()
}

// ParRegion is a region with one local reference count per worker.
// The region is deletable exactly when the counts sum to zero; individual
// counts may be negative (a pointer created by one worker and destroyed by
// another).
type ParRegion struct {
	id      int
	local   []paddedCount
	deleted atomic.Bool
}

type paddedCount struct {
	n atomic.Int64
	_ [7]int64 // avoid false sharing between workers' counts
}

// NewParWorld creates a world for the given number of workers.
func NewParWorld(workers int) *ParWorld {
	if workers <= 0 {
		panic("core: ParWorld needs at least one worker")
	}
	return &ParWorld{workers: workers}
}

// NewParRegion creates a region (a globally synchronized operation).
func (w *ParWorld) NewParRegion() *ParRegion {
	w.mu.Lock()
	defer w.mu.Unlock()
	r := &ParRegion{id: len(w.regions), local: make([]paddedCount, w.workers)}
	w.regions = append(w.regions, r)
	if w.tracer != nil {
		// Emitted under the world lock, before the handle escapes: every
		// later event naming this region has a larger Seq.
		w.tracer.Emit(trace.Event{Kind: trace.KindParRegionCreate,
			Region: int32(r.id), Aux: -1})
	}
	return r
}

// Worker returns the handle for worker id.
func (w *ParWorld) Worker(id int) *ParWorker {
	if id < 0 || id >= w.workers {
		panic("core: worker id out of range")
	}
	return &ParWorker{world: w, id: id}
}

// TryDelete deletes r if the sum of its local reference counts is zero.
// Like the sequential deleteregion it is a failing no-op otherwise. The sum
// is taken under the world lock, the paper's global synchronization.
//
// TryDelete on an already-deleted region is also a failing no-op (reported
// like a nonzero count), not a panic: two workers may race to delete the
// same region, and the loser must be able to observe its loss gracefully.
func (w *ParWorld) TryDelete(r *ParRegion) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if r.deleted.Load() {
		if w.tracer != nil {
			w.tracer.Emit(trace.Event{Kind: trace.KindParRegionDeleteFail,
				Region: int32(r.id), Aux: -1})
		}
		return false
	}
	var sum int64
	for i := range r.local {
		sum += r.local[i].n.Load()
	}
	if sum != 0 {
		if w.tracer != nil {
			aux := sum
			if aux > 1<<31-1 {
				aux = 1<<31 - 1
			}
			w.tracer.Emit(trace.Event{Kind: trace.KindParRegionDeleteFail,
				Region: int32(r.id), Aux: int32(aux)})
		}
		return false
	}
	r.deleted.Store(true)
	if w.tracer != nil {
		w.tracer.Emit(trace.Event{Kind: trace.KindParRegionDelete,
			Region: int32(r.id), Aux: -1})
	}
	return true
}

// Deleted reports whether r has been deleted.
func (r *ParRegion) Deleted() bool { return r.deleted.Load() }

// RCSum returns the current sum of local counts (diagnostic; racy unless
// the workers are quiescent).
func (r *ParRegion) RCSum() int64 {
	var sum int64
	for i := range r.local {
		sum += r.local[i].n.Load()
	}
	return sum
}

// ParWorker is one process's view of the world. Its count adjustments touch
// only its own slots.
type ParWorker struct {
	world *ParWorld
	id    int
}

// ParSlot is a shared pointer cell. Writes go through an atomic exchange so
// that every overwritten value is observed by exactly one writer, which is
// what keeps the distributed counts consistent under races.
type ParSlot struct {
	v atomic.Uint32
}

// Load returns the slot's current value.
func (s *ParSlot) Load() Ptr { return s.v.Load() }

// Write performs *slot = val with the parallel barrier: an atomic exchange
// retrieves the old value, then the worker adjusts its local counts for the
// old and new target regions. regionOf maps a pointer to its region (nil
// for non-region pointers).
func (wk *ParWorker) Write(slot *ParSlot, val Ptr, regionOf func(Ptr) *ParRegion) {
	old := slot.v.Swap(val)
	rold := regionOf(old)
	if rold != nil {
		wk.adjust(rold, -1)
	}
	rnew := regionOf(val)
	if rnew != nil {
		wk.adjust(rnew, +1)
	}
	if t := wk.world.tracer; t != nil {
		ev := trace.Event{Kind: trace.KindParWrite, Aux: int32(wk.id), Region: -1}
		if rnew != nil {
			ev.Region = int32(rnew.id)
		}
		ev.Addr = val
		t.Emit(ev)
	}
}

// Created records that the worker materialized a new counted reference
// (e.g. into a local that will outlive barrier-tracked storage).
func (wk *ParWorker) Created(r *ParRegion) { wk.adjust(r, +1) }

// Destroyed records that the worker destroyed a counted reference.
func (wk *ParWorker) Destroyed(r *ParRegion) { wk.adjust(r, -1) }

func (wk *ParWorker) adjust(r *ParRegion, delta int64) {
	if r.deleted.Load() {
		// A counted reference to a deleted region is a use-after-delete by
		// the worker; unlike a lost TryDelete race this is not recoverable.
		f := &Fault{Kind: FaultDeletedRegion, Region: int32(r.id),
			Context: "parallel count adjustment on deleted region"}
		if t := wk.world.tracer; t != nil {
			t.Emit(trace.Event{Kind: trace.KindFault, Region: int32(r.id),
				Aux: int32(f.Kind), Site: f.Kind.String()})
		}
		panic(f)
	}
	r.local[wk.id].n.Add(delta)
}
