package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"regions/internal/mem"
)

// crashMachine drives a Runtime with random operations through the Try*
// paths while a FaultPlan injects MapPages failures, verifying every heap
// invariant after each step. It is the crash-consistency counterpart of
// rcMachine: where that machine checks the reference counts stay exact on
// the happy path, this one checks that failed operations leave the heap
// exactly as it was.
type crashMachine struct {
	t   *testing.T
	rt  *Runtime
	cln CleanupID

	regions []*Region
	objects []Ptr
	frames  []*Frame
	globals []Ptr
	ooms    int
}

func newCrashMachine(t *testing.T, safe bool) *crashMachine {
	return newCrashMachineOpts(t, Options{Safe: safe})
}

func newCrashMachineOpts(t *testing.T, o Options) *crashMachine {
	rt, _ := newRTOpts(o)
	m := &crashMachine{t: t, rt: rt}
	m.cln = rt.RegisterCleanup("cell", func(rt *Runtime, obj Ptr) int {
		rt.Destroy(rt.Space().Load(obj + 4))
		return 8
	})
	for i := 0; i < 4; i++ {
		m.globals = append(m.globals, rt.AllocGlobals(1))
	}
	return m
}

func (m *crashMachine) oom(err error) bool {
	if err == nil {
		return false
	}
	if !errors.Is(err, mem.ErrOutOfMemory) {
		m.t.Fatalf("operation failed with an untyped error: %v", err)
	}
	m.ooms++
	return true
}

func (m *crashMachine) randObj(r *rand.Rand) Ptr {
	if len(m.objects) == 0 || r.Intn(4) == 0 {
		return 0
	}
	return m.objects[r.Intn(len(m.objects))]
}

func (m *crashMachine) step(r *rand.Rand, op byte) {
	rt := m.rt
	switch op % 10 {
	case 0: // new region, possibly refused
		if len(m.regions) < 10 {
			reg, err := rt.TryNewRegion()
			if !m.oom(err) {
				m.regions = append(m.regions, reg)
			}
		}
	case 1, 2: // cell allocation, possibly refused
		if len(m.regions) == 0 {
			return
		}
		reg := m.regions[r.Intn(len(m.regions))]
		p, err := rt.TryRalloc(reg, 8, m.cln)
		if m.oom(err) {
			return
		}
		rt.Space().Store(p, uint32(r.Intn(100)))
		if rt.safe {
			rt.StorePtr(p+4, m.randObj(r))
		}
		m.objects = append(m.objects, p)
	case 3: // array allocation big enough to need fresh pages sometimes
		if len(m.regions) == 0 {
			return
		}
		reg := m.regions[r.Intn(len(m.regions))]
		n := 1 + r.Intn(300)
		if _, err := rt.TryRarrayAlloc(reg, n, 8, rt.SizeCleanup(8)); m.oom(err) {
			return
		}
	case 4: // string allocation, sometimes multi-page
		if len(m.regions) == 0 {
			return
		}
		reg := m.regions[r.Intn(len(m.regions))]
		if _, err := rt.TryRstrAlloc(reg, 16+r.Intn(2*mem.PageSize)); m.oom(err) {
			return
		}
	case 5: // rewrite a cell's next field (safe runtime barriers)
		if !rt.safe || len(m.objects) == 0 {
			return
		}
		rt.StorePtr(m.objects[r.Intn(len(m.objects))]+4, m.randObj(r))
	case 6: // write a global slot
		if !rt.safe {
			return
		}
		rt.StoreGlobalPtr(m.globals[r.Intn(len(m.globals))], m.randObj(r))
	case 7: // push a frame
		if len(m.frames) < 8 {
			f := rt.PushFrame(2)
			if rt.safe {
				f.Set(0, m.randObj(r))
				f.Set(1, m.randObj(r))
			}
			m.frames = append(m.frames, f)
		}
	case 8: // pop a frame
		if len(m.frames) > 0 {
			rt.PopFrame()
			m.frames = m.frames[:len(m.frames)-1]
		}
	case 9: // try to delete a region
		if len(m.regions) == 0 {
			return
		}
		i := r.Intn(len(m.regions))
		if rt.DeleteRegion(m.regions[i]) {
			m.regions = append(m.regions[:i], m.regions[i+1:]...)
			kept := m.objects[:0]
			for _, p := range m.objects {
				if reg := rt.RegionOf(p); reg != nil && !reg.Deleted() {
					kept = append(kept, p)
				}
			}
			m.objects = kept
		}
	}
}

// drain clears roots and deletes every region, verifying at the end.
func (m *crashMachine) drain() {
	for len(m.frames) > 0 {
		m.rt.PopFrame()
		m.frames = m.frames[:len(m.frames)-1]
	}
	if m.rt.safe {
		for _, g := range m.globals {
			m.rt.StoreGlobalPtr(g, 0)
		}
	}
	for progress := true; progress && len(m.regions) > 0; {
		progress = false
		kept := m.regions[:0]
		for _, reg := range m.regions {
			if m.rt.DeleteRegion(reg) {
				progress = true
			} else {
				kept = append(kept, reg)
			}
		}
		m.regions = kept
		m.objects = nil
	}
	if err := m.rt.Verify(); err != nil {
		m.t.Fatalf("Verify after drain: %v", err)
	}
}

// crashPlans is the fault-plan battery both crash-consistency suites run:
// every Nth call failing, random failures at several rates, and tight byte
// budgets.
var crashPlans = []mem.FaultPlan{
	{FailNth: 1},
	{FailNth: 2},
	{FailNth: 3},
	{FailNth: 5},
	{FailNth: 8},
	{FailProb: 0.1, Seed: 1},
	{FailProb: 0.3, Seed: 2},
	{FailProb: 0.7, Seed: 3},
	{ByteBudget: 6 * mem.PageSize},
	{ByteBudget: 20 * mem.PageSize},
	{FailProb: 0.2, Seed: 4, ByteBudget: 40 * mem.PageSize},
}

// TestCrashConsistencyUnderFaultPlans runs the machine under the fault-plan
// battery, verifying the full heap after every single operation, then
// clears the plan and checks the runtime recovers.
func TestCrashConsistencyUnderFaultPlans(t *testing.T) {
	for pi, plan := range crashPlans {
		plan := plan
		for _, safe := range []bool{true, false} {
			mode := "unsafe"
			if safe {
				mode = "safe"
			}
			t.Run(fmt.Sprintf("plan%d-%s", pi, mode), func(t *testing.T) {
				m := newCrashMachine(t, safe)
				m.rt.Space().SetFaultPlan(&plan)
				r := rand.New(rand.NewSource(int64(pi) + 100))
				for i := 0; i < 250; i++ {
					m.step(r, byte(r.Intn(256)))
					if err := m.rt.Verify(); err != nil {
						t.Fatalf("Verify after op %d under plan %+v: %v", i, plan, err)
					}
				}
				// Recovery: no more injected failures; everything works.
				m.rt.Space().SetFaultPlan(nil)
				for i := 0; i < 50; i++ {
					m.step(r, byte(r.Intn(256)))
				}
				if err := m.rt.Verify(); err != nil {
					t.Fatalf("Verify after recovery: %v", err)
				}
				m.drain()
			})
		}
	}
}

// TestCrashConsistencySoak is a longer single-plan soak with verification
// every few operations, for the heavier multi-page allocation mix.
func TestCrashConsistencySoak(t *testing.T) {
	m := newCrashMachine(t, true)
	m.rt.Space().SetFaultPlan(&mem.FaultPlan{FailProb: 0.25, Seed: 11})
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		m.step(r, byte(r.Intn(256)))
		if i%13 == 0 {
			if err := m.rt.Verify(); err != nil {
				t.Fatalf("Verify after op %d: %v", i, err)
			}
		}
	}
	if m.ooms == 0 {
		t.Fatal("soak injected no failures; test is vacuous")
	}
	m.rt.Space().SetFaultPlan(nil)
	m.drain()
}

// sweepDrainAndCheck retires any remaining sweep debt and verifies the
// fully swept heap — Verify's free-page poison check is what proves the
// deferred deletions eventually reclaimed everything.
func (m *crashMachine) sweepDrainAndCheck() {
	m.rt.SweepDrain()
	if d := m.rt.SweepDebt(); d != 0 {
		m.t.Fatalf("sweep debt %d pages after SweepDrain", d)
	}
	if err := m.rt.Verify(); err != nil {
		m.t.Fatalf("Verify after sweep drain: %v", err)
	}
}

// TestCrashConsistencyDeferredFaultPlans is the deferred-reclamation run of
// the same battery: every fault plan, safe and unsafe, with
// Options.DeferredDelete on, a tight sweep budget, and sweep slices
// interleaved at random between steps — so injected mapping failures land
// while the heap holds detached pages in every intermediate sweep state.
// The heap is verified after every operation, and after the drain the
// remaining debt is swept and the poisoned heap verified once more.
func TestCrashConsistencyDeferredFaultPlans(t *testing.T) {
	for pi, plan := range crashPlans {
		plan := plan
		for _, safe := range []bool{true, false} {
			mode := "unsafe"
			if safe {
				mode = "safe"
			}
			t.Run(fmt.Sprintf("plan%d-%s", pi, mode), func(t *testing.T) {
				m := newCrashMachineOpts(t, Options{
					Safe: safe, DeferredDelete: true,
					SweepBudget: 4, SweepHighWater: 16,
				})
				m.rt.Space().SetFaultPlan(&plan)
				r := rand.New(rand.NewSource(int64(pi) + 500))
				for i := 0; i < 250; i++ {
					m.step(r, byte(r.Intn(256)))
					if r.Intn(4) == 0 {
						m.rt.SweepSlice()
					}
					if err := m.rt.Verify(); err != nil {
						t.Fatalf("Verify after op %d under plan %+v: %v", i, plan, err)
					}
				}
				// Recovery: no more injected failures; everything works.
				m.rt.Space().SetFaultPlan(nil)
				for i := 0; i < 50; i++ {
					m.step(r, byte(r.Intn(256)))
				}
				m.drain()
				m.sweepDrainAndCheck()
			})
		}
	}
}

// TestCrashConsistencyDeferredSoak is the deferred-mode soak: one random
// fault plan, the heavier allocation mix, sweep slices mixed in at random,
// verification every few operations, and the full drain-and-sweep check at
// the end.
func TestCrashConsistencyDeferredSoak(t *testing.T) {
	m := newCrashMachineOpts(t, Options{
		Safe: true, DeferredDelete: true,
		SweepBudget: 4, SweepHighWater: 16,
	})
	m.rt.Space().SetFaultPlan(&mem.FaultPlan{FailProb: 0.25, Seed: 17})
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 3000; i++ {
		m.step(r, byte(r.Intn(256)))
		if r.Intn(5) == 0 {
			m.rt.SweepSlice()
		}
		if i%13 == 0 {
			if err := m.rt.Verify(); err != nil {
				t.Fatalf("Verify after op %d: %v", i, err)
			}
		}
	}
	if m.ooms == 0 {
		t.Fatal("soak injected no failures; test is vacuous")
	}
	m.rt.Space().SetFaultPlan(nil)
	m.drain()
	m.sweepDrainAndCheck()
}
