package core

import (
	"errors"
	"testing"

	"regions/internal/mem"
	"regions/internal/metrics"
	"regions/internal/trace"
)

// Tests for the deferred-reclamation tier (Options.DeferredDelete, sweep.go):
// detach must leave the free lists bit-identical to synchronous deletion,
// the detached state must satisfy every heap invariant, sweep slices must
// respect their budget and eventually poison everything, and the allocation
// tax must bound debt without any cooperating idle loop.

// sweepRounds runs a mixed two-region allocate/delete workload and returns
// every address the allocators handed out, in order. perRound is called
// after each round's deletions (nil for none) — the hook the deferred runs
// use to drain or partially sweep between rounds.
func sweepRounds(rt *Runtime, perRound func()) []Ptr {
	cln := rt.SizeCleanup(16)
	var addrs []Ptr
	for round := 0; round < 8; round++ {
		a := rt.NewRegion()
		b := rt.NewRegion()
		for i := 0; i < 30; i++ {
			addrs = append(addrs, rt.Ralloc(a, 16, cln))
			addrs = append(addrs, rt.RstrAlloc(b, 700))
		}
		// One multi-page span per round so the span free list (and its
		// detached runs) is exercised, not just single pages.
		addrs = append(addrs, rt.RstrAlloc(b, 3*mem.PageSize))
		if !rt.DeleteRegion(a) || !rt.DeleteRegion(b) {
			panic("sweepRounds: delete refused")
		}
		if perRound != nil {
			perRound()
		}
	}
	return addrs
}

// TestDeferredDeleteAddressStreamAndChargeParity checks the mode's two
// equivalence claims at once. With every round's debt drained before the
// next round reuses pages, (a) the allocation address stream is
// bit-identical to synchronous deletion — detach pushes the same free-list
// entries in the same order — and (b) the total simulated cycles match
// exactly: detach charges 1 per entry and the sweep 1 per page, against the
// synchronous 1+n per entry.
func TestDeferredDeleteAddressStreamAndChargeParity(t *testing.T) {
	run := func(deferred bool) ([]Ptr, uint64) {
		rt, c := newRTOpts(Options{Safe: true, DeferredDelete: deferred})
		var hook func()
		if deferred {
			hook = func() { rt.SweepDrain() }
		}
		addrs := sweepRounds(rt, hook)
		if deferred && rt.SweepDebt() != 0 {
			t.Fatalf("debt %d after drain", rt.SweepDebt())
		}
		if err := rt.Verify(); err != nil {
			t.Fatalf("Verify (deferred=%v): %v", deferred, err)
		}
		return addrs, c.TotalCycles()
	}
	syncAddrs, syncCycles := run(false)
	defAddrs, defCycles := run(true)
	if len(syncAddrs) != len(defAddrs) {
		t.Fatalf("allocation counts differ: sync %d, deferred %d", len(syncAddrs), len(defAddrs))
	}
	for i := range syncAddrs {
		if syncAddrs[i] != defAddrs[i] {
			t.Fatalf("address stream diverges at alloc %d: sync %#x, deferred %#x",
				i, syncAddrs[i], defAddrs[i])
		}
	}
	if syncCycles != defCycles {
		t.Fatalf("charge parity broken: sync %d cycles, deferred (fully swept) %d", syncCycles, defCycles)
	}
}

// TestDeferredDeleteInterleavedSweepMatchesSyncStream interleaves partial
// sweep slices with ongoing allocation, so pages are variously swept,
// detached, and reused-before-sweep — and the address stream must still
// match the synchronous run exactly. Reuse cancellation means the deferred
// run's total charge can only be lower (cancelled pages never pay their
// poison cycle), never higher.
func TestDeferredDeleteInterleavedSweepMatchesSyncStream(t *testing.T) {
	syncRT, syncC := newRTOpts(Options{Safe: true})
	syncAddrs := sweepRounds(syncRT, nil)
	syncCycles := syncC.TotalCycles()

	rt, c := newRTOpts(Options{Safe: true, DeferredDelete: true, SweepBudget: 3})
	round := 0
	defAddrs := sweepRounds(rt, func() {
		round++
		if round%3 == 1 {
			rt.SweepSlice() // partial: at most 3 of the round's pages
		}
		if err := rt.Verify(); err != nil {
			t.Fatalf("Verify after round %d: %v", round, err)
		}
	})
	rt.SweepDrain()
	if err := rt.Verify(); err != nil {
		t.Fatalf("Verify after final drain: %v", err)
	}

	if len(syncAddrs) != len(defAddrs) {
		t.Fatalf("allocation counts differ: sync %d, deferred %d", len(syncAddrs), len(defAddrs))
	}
	for i := range syncAddrs {
		if syncAddrs[i] != defAddrs[i] {
			t.Fatalf("address stream diverges at alloc %d: sync %#x, deferred %#x",
				i, syncAddrs[i], defAddrs[i])
		}
	}
	if got := c.TotalCycles(); got > syncCycles {
		t.Fatalf("deferred run charged %d cycles, more than synchronous %d", got, syncCycles)
	}
}

// TestVerifyDetachedStateAndSweepPoisons walks one region through the full
// deferred lifecycle: after DeleteRegion the region is detached and every
// heap invariant still holds; each sweep slice respects its page budget and
// keeps Verify clean; and once the debt reaches zero every page the region
// ever held reads as poison. The run is metered and traced, so the
// regions_sweep_* series and the sweep-slice trace events are checked in
// the same pass.
func TestVerifyDetachedStateAndSweepPoisons(t *testing.T) {
	const budget = 4
	reg := metrics.NewRegistry()
	rt, _ := newRTOpts(Options{Safe: true, DeferredDelete: true, SweepBudget: budget})
	rt.SetMetrics(reg)
	tr := trace.New(1024)
	rt.SetTracer(tr)

	r := rt.NewRegion()
	var addrs []Ptr
	addrs = append(addrs, rt.RstrAlloc(r, 2*mem.PageSize+100)) // multi-page span
	for i := 0; i < 8; i++ {
		addrs = append(addrs, rt.RstrAlloc(r, 900))
	}
	addrs = append(addrs, rt.Ralloc(r, 24, rt.SizeCleanup(24)))

	if !rt.DeleteRegion(r) {
		t.Fatal("delete refused")
	}
	debt := rt.SweepDebt()
	if debt == 0 {
		t.Fatal("deferred delete left no sweep debt")
	}
	if !r.Detached() {
		t.Fatal("region not detached after deferred delete")
	}
	if err := rt.Verify(); err != nil {
		t.Fatalf("Verify in detached state: %v", err)
	}
	rep, err := rt.HeapReport()
	if err != nil {
		t.Fatalf("HeapReport in detached state: %v", err)
	}
	if rep.DetachedPages != debt {
		t.Fatalf("heap report counts %d detached pages, sweep debt is %d", rep.DetachedPages, debt)
	}
	if v := reg.Gauge("regions_sweep_debt_pages").Value(); int(v) != debt {
		t.Fatalf("debt gauge %d, runtime reports %d", v, debt)
	}

	for rt.SweepDebt() > 0 {
		n := rt.SweepSlice()
		if n < 1 || n > budget {
			t.Fatalf("slice swept %d pages, budget %d", n, budget)
		}
		if err := rt.Verify(); err != nil {
			t.Fatalf("Verify mid-sweep (debt %d): %v", rt.SweepDebt(), err)
		}
	}
	if r.Detached() {
		t.Fatal("region still detached with zero debt")
	}
	if rt.SweptPages() != uint64(debt) || rt.SweepSlices() == 0 {
		t.Fatalf("swept %d pages in %d slices, want %d pages", rt.SweptPages(), rt.SweepSlices(), debt)
	}

	// Every address the region handed out is on a swept page now; dangling
	// reads must be unmistakable.
	rt.Space().Uncharged(func() {
		for _, a := range addrs {
			if v := rt.Space().Load(a); v != mem.PoisonWord {
				t.Fatalf("swept page reads %#x at %#x, want poison %#x", v, a, mem.PoisonWord)
			}
		}
	})

	if v := reg.Gauge("regions_sweep_debt_pages").Value(); v != 0 {
		t.Fatalf("debt gauge %d after drain, want 0", v)
	}
	if v := reg.Counter("regions_swept_pages_total").Value(); v != uint64(debt) {
		t.Fatalf("swept-pages counter %d, want %d", v, debt)
	}
	if v := reg.Counter("regions_sweep_slices_total").Value(); v != rt.SweepSlices() {
		t.Fatalf("slice counter %d, runtime ran %d", v, rt.SweepSlices())
	}
	slices := 0
	for _, ev := range tr.Events() {
		if ev.Kind != trace.KindSweepSlice {
			continue
		}
		slices++
		if ev.Size < 1 || ev.Size > budget {
			t.Fatalf("trace records a %d-page slice, budget %d", ev.Size, budget)
		}
	}
	if uint64(slices) != rt.SweepSlices() {
		t.Fatalf("trace has %d sweep-slice events, runtime ran %d", slices, rt.SweepSlices())
	}
}

// TestSweepDebtBoundedByAllocationTax runs a hostile delete-heavy loop that
// never volunteers an idle cycle: regions are created and deleted in bulk
// with no manual SweepSlice calls. The allocation tax alone must hold the
// debt under highWater + budget between delete phases, so the all-time peak
// stays below that bound plus one phase's worth of pages.
func TestSweepDebtBoundedByAllocationTax(t *testing.T) {
	const budget, highWater = 8, 32
	rt, _ := newRTOpts(Options{
		Safe: true, DeferredDelete: true,
		SweepBudget: budget, SweepHighWater: highWater,
	})
	perRound := 0
	for round := 0; round < 25; round++ {
		var regs []*Region
		for i := 0; i < 12; i++ {
			r := rt.NewRegion()
			for j := 0; j < 6; j++ {
				rt.RstrAlloc(r, mem.PageSize/2)
			}
			regs = append(regs, r)
		}
		// The allocation phase acquired a phase's worth of pages, each
		// acquisition sweeping a slice while debt sat above the high-water
		// mark — so the debt entering the delete phase must be taxed back
		// under control no matter how much the previous deletes piled up.
		if d := rt.SweepDebt(); d > highWater+budget {
			t.Fatalf("round %d enters its delete phase with debt %d; the tax should hold it at or under %d",
				round, d, highWater+budget)
		}
		for _, r := range regs {
			if !rt.DeleteRegion(r) {
				t.Fatal("delete refused")
			}
		}
		if round == 0 {
			perRound = rt.SweepDebt() // one phase's pages, measured from zero debt
		}
		if round%5 == 0 {
			if err := rt.Verify(); err != nil {
				t.Fatalf("Verify at round %d: %v", round, err)
			}
		}
	}
	if peak := rt.SweepDebtPeak(); peak > highWater+budget+perRound {
		t.Fatalf("peak debt %d pages exceeds bound %d (highWater %d + budget %d + one phase %d)",
			peak, highWater+budget+perRound, highWater, budget, perRound)
	}
	if rt.SweepSlices() == 0 {
		t.Fatal("the allocation tax never ran a slice; the bound was not exercised")
	}
	rt.SweepDrain()
	if rt.SweepDebt() != 0 {
		t.Fatalf("debt %d after drain", rt.SweepDebt())
	}
	if err := rt.Verify(); err != nil {
		t.Fatalf("Verify after drain: %v", err)
	}
}

// TestReuseBeforeSweepCancelsDebt allocates straight back into pages a
// deferred deletion just detached: the acquire path re-zeroes them, so
// their debt must disappear without the sweeper running — cancellation is
// free, not deferred work in disguise.
func TestReuseBeforeSweepCancelsDebt(t *testing.T) {
	rt, _ := newRTOpts(Options{
		Safe: true, DeferredDelete: true,
		SweepHighWater: 1 << 20, // keep the allocation tax out of the picture
	})
	r1 := rt.NewRegion()
	for i := 0; i < 12; i++ {
		rt.RstrAlloc(r1, mem.PageSize/2)
	}
	if !rt.DeleteRegion(r1) {
		t.Fatal("delete refused")
	}
	d0 := rt.SweepDebt()
	if d0 == 0 {
		t.Fatal("no debt after deferred delete")
	}
	r2 := rt.NewRegion()
	for i := 0; i < 12; i++ {
		rt.RstrAlloc(r2, mem.PageSize/2)
	}
	if d := rt.SweepDebt(); d >= d0 {
		t.Fatalf("reuse cancelled nothing: debt %d -> %d", d0, d)
	}
	if rt.SweptPages() != 0 {
		t.Fatalf("cancellation counted as sweeping: %d pages", rt.SweptPages())
	}
	if err := rt.Verify(); err != nil {
		t.Fatalf("Verify after reuse: %v", err)
	}
	if !rt.DeleteRegion(r2) {
		t.Fatal("second delete refused")
	}
	rt.SweepDrain()
	if rt.SweepDebt() != 0 {
		t.Fatalf("debt %d after drain", rt.SweepDebt())
	}
	if err := rt.Verify(); err != nil {
		t.Fatalf("Verify after drain: %v", err)
	}
}

// TestDetachedRegionFaultOnDoubleDelete pins the fault kinds across the
// deferred lifecycle: operations on a detached region report
// FaultDetachedRegion (the state the offending pointer actually sees), and
// once the sweeper retires the last page the same misuse reports plain
// FaultDeletedRegion.
func TestDetachedRegionFaultOnDoubleDelete(t *testing.T) {
	rt, _ := newRTOpts(Options{Safe: true, DeferredDelete: true})
	r := rt.NewRegion()
	rt.RstrAlloc(r, 600)
	if !rt.DeleteRegion(r) {
		t.Fatal("delete refused")
	}

	wantKind := func(err error, kind FaultKind) {
		t.Helper()
		var f *Fault
		if !errors.As(err, &f) {
			t.Fatalf("error %v does not unwrap to *Fault", err)
		}
		if f.Kind != kind {
			t.Fatalf("fault kind %v, want %v", f.Kind, kind)
		}
	}
	ok, err := rt.TryDeleteRegion(r)
	if ok || err == nil {
		t.Fatalf("double delete of detached region: ok=%v err=%v", ok, err)
	}
	wantKind(err, FaultDetachedRegion)
	if _, aerr := rt.TryRalloc(r, 8, rt.SizeCleanup(8)); aerr == nil {
		t.Fatal("allocation into detached region succeeded")
	} else {
		wantKind(aerr, FaultDetachedRegion)
	}

	rt.SweepDrain()
	ok, err = rt.TryDeleteRegion(r)
	if ok || err == nil {
		t.Fatalf("double delete of swept region: ok=%v err=%v", ok, err)
	}
	wantKind(err, FaultDeletedRegion)
}

// TestSweepTaxAccounting drives the allocation tax and checks that its
// cycles land in SweepTaxCycles, that the cycles are a subset of the
// sweeper's ordinary charges (the tax re-attributes, it never adds), and
// that each tax slice is bracketed by a sweep span pair on the tracer.
func TestSweepTaxAccounting(t *testing.T) {
	const budget, highWater = 4, 8
	rt, c := newRTOpts(Options{
		Safe: true, DeferredDelete: true,
		SweepBudget: budget, SweepHighWater: highWater,
	})
	tr := trace.New(1 << 12)
	rt.SetTracer(tr)

	for round := 0; round < 6; round++ {
		var regs []*Region
		for i := 0; i < 8; i++ {
			r := rt.NewRegion()
			for j := 0; j < 4; j++ {
				rt.RstrAlloc(r, mem.PageSize/2)
			}
			regs = append(regs, r)
		}
		for _, r := range regs {
			if !rt.DeleteRegion(r) {
				t.Fatal("delete refused")
			}
		}
	}
	if rt.SweepTaxSlices() == 0 {
		t.Fatal("the allocation tax never ran; the accounting was not exercised")
	}
	if rt.SweepTaxCycles() == 0 {
		t.Fatal("tax slices ran but SweepTaxCycles is 0")
	}
	if total := c.TotalCycles(); rt.SweepTaxCycles() >= total {
		t.Fatalf("tax cycles %d not a strict subset of total %d", rt.SweepTaxCycles(), total)
	}

	// Every tax slice emitted one sweep span pair on the runtime tracer,
	// stamped by the runtime clock; pairs must balance and sum to the
	// accounted cycles.
	var begins, ends int
	var spanCycles uint64
	var beginCycle uint64
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case trace.KindSpanBegin:
			if trace.SpanKind(ev.Aux) != trace.SpanSweep {
				t.Fatalf("unexpected span kind %d from core", ev.Aux)
			}
			begins++
			beginCycle = ev.Cycle
		case trace.KindSpanEnd:
			ends++
			spanCycles += ev.Cycle - beginCycle
		}
	}
	if begins == 0 || begins != ends {
		t.Fatalf("span pairs unbalanced: %d begins, %d ends", begins, ends)
	}
	if uint64(begins) != rt.SweepTaxSlices() {
		t.Fatalf("%d span pairs for %d tax slices", begins, rt.SweepTaxSlices())
	}
	if spanCycles != rt.SweepTaxCycles() {
		t.Fatalf("span pairs cover %d cycles, accounting says %d", spanCycles, rt.SweepTaxCycles())
	}
}

// TestSweepTaxChargeParity pins the acceptance criterion at the runtime
// layer: the tax accounting and its spans are observability metadata, so a
// run with them (tracer attached) charges exactly the cycles of a run
// without.
func TestSweepTaxChargeParity(t *testing.T) {
	run := func(traced bool) uint64 {
		rt, c := newRTOpts(Options{
			Safe: true, DeferredDelete: true,
			SweepBudget: 4, SweepHighWater: 8,
		})
		if traced {
			rt.SetTracer(trace.New(1 << 10))
		}
		sweepRounds(rt, nil)
		rt.SweepDrain()
		return c.TotalCycles()
	}
	if on, off := run(true), run(false); on != off {
		t.Fatalf("traced run charged %d cycles, untraced %d", on, off)
	}
}
