package core

import (
	"regions/internal/stats"
	"regions/internal/trace"
)

// Frame is one shadow-stack frame: the set of live region-pointer local
// variables of one activation, the information the paper's modified lcc
// records at each call site (Section 4.2.3). A frame starts unscanned; a
// scanned frame's slots are reflected in region reference counts.
type Frame struct {
	rt      *Runtime
	slots   []Ptr
	scanned bool
}

// stack is the shadow stack with its high-water mark. frames[:hwm] are
// scanned (their slots are counted in region reference counts); frames[hwm:]
// are not. The paper's invariant (*) — at least one frame below the
// high-water mark — appears here as "the active frame is never scanned",
// so writes to local variables never update reference counts.
type stack struct {
	rt     *Runtime
	frames []*Frame
	hwm    int
	pool   []*Frame
}

// PushFrame enters a new activation with n region-pointer slots, all nil.
// Frame maintenance is local bookkeeping and costs no simulated cycles, like
// ordinary register/stack traffic in the paper's base time.
func (rt *Runtime) PushFrame(n int) *Frame {
	s := &rt.stack
	var f *Frame
	if len(s.pool) > 0 {
		f = s.pool[len(s.pool)-1]
		s.pool = s.pool[:len(s.pool)-1]
		if cap(f.slots) >= n {
			f.slots = f.slots[:n]
			for i := range f.slots {
				f.slots[i] = 0
			}
		} else {
			f.slots = make([]Ptr, n)
		}
	} else {
		f = &Frame{rt: rt, slots: make([]Ptr, n)}
	}
	f.scanned = false
	s.frames = append(s.frames, f)
	return f
}

// PopFrame leaves the innermost activation. If control thereby returns to a
// scanned frame, that frame is unscanned — the paper's hijacked return
// address jumping to the unscan function (Section 4.2.3).
func (rt *Runtime) PopFrame() {
	s := &rt.stack
	if len(s.frames) == 0 {
		panic(rt.fault(FaultStackUnderflow, 0, -1,
			"PopFrame on empty shadow stack", nil))
	}
	f := s.frames[len(s.frames)-1]
	if rt.safe && rt.opts.EagerLocals {
		// Eager ablation: the dying frame's counted references drop here.
		old := rt.space.SetMode(stats.ModeRC)
		s.countFrame(f, -1)
		rt.space.SetMode(old)
	}
	if f.scanned {
		// Defensive: the active frame is normally never scanned.
		s.unscan(f)
	}
	s.frames = s.frames[:len(s.frames)-1]
	if s.hwm > len(s.frames) {
		s.hwm = len(s.frames)
	}
	if n := len(s.frames); n > 0 {
		if top := s.frames[n-1]; top.scanned {
			s.unscan(top)
			s.hwm = n - 1
		}
	}
	f.slots = f.slots[:0]
	s.pool = append(s.pool, f)
}

// Depth returns the current shadow-stack depth (for tests and diagnostics).
func (rt *Runtime) Depth() int { return len(rt.stack.frames) }

// Get returns the region pointer in slot i.
func (f *Frame) Get(i int) Ptr { return f.slots[i] }

// Set stores a region pointer in slot i. Writes to an unscanned frame are
// free, which is the point of the deferred scheme; writes to a scanned frame
// (possible only through misuse, since the active frame is never scanned)
// pay a reference-count update. Under the EagerLocals ablation every write
// pays the update, which is precisely the overhead the paper's deferred
// scheme avoids.
func (f *Frame) Set(i int, p Ptr) {
	rt := f.rt
	if rt.safe && (f.scanned || rt.opts.EagerLocals) {
		old := rt.space.SetMode(stats.ModeRC)
		rt.charge(stats.ModeRC, globalWriteExtra)
		if r := rt.RegionOf(f.slots[i]); r != nil {
			rt.rcDec(r)
		}
		if r := rt.RegionOf(p); r != nil {
			rt.rcInc(r)
		}
		rt.space.SetMode(old)
	}
	f.slots[i] = p
}

// Len returns the number of slots in the frame.
func (f *Frame) Len() int { return len(f.slots) }

// countFrame adds dir (+1/-1) to the reference count of every region
// referenced from f's slots.
func (s *stack) countFrame(f *Frame, dir int) {
	rt := s.rt
	for _, p := range f.slots {
		rt.charge(stats.ModeScan, 1)
		if r := rt.RegionOf(p); r != nil {
			if dir > 0 {
				rt.rcInc(r)
			} else {
				rt.rcDec(r)
			}
		}
	}
}

// scanForDelete performs the deleteregion-time stack scan (Section 4.2.1):
// every unscanned frame except the active one is scanned — its slots are
// added to region reference counts — and the high-water mark moves so that
// only the active frame remains unscanned. The active frame plays the role
// of the paper's deleteregion frame, which is not itself scanned.
func (s *stack) scanForDelete() {
	rt := s.rt
	old := rt.space.SetMode(stats.ModeScan)
	defer rt.space.SetMode(old)
	for i := s.hwm; i < len(s.frames)-1; i++ {
		f := s.frames[i]
		rt.charge(stats.ModeScan, 4)
		rt.c.FramesScanned++
		rt.c.SlotsScanned += uint64(len(f.slots))
		s.countFrame(f, +1)
		f.scanned = true
		if rt.tracer != nil {
			rt.tracer.Emit(trace.Event{Kind: trace.KindStackScan,
				Region: -1, Size: int32(i), Aux: int32(len(f.slots))})
		}
		if m := rt.met; m != nil {
			m.stackScans.Inc()
		}
	}
	if s.hwm < len(s.frames)-1 {
		s.hwm = len(s.frames) - 1
	}
}

// unscan removes a scanned frame's contributions from region reference
// counts (the paper's unscan function).
func (s *stack) unscan(f *Frame) {
	rt := s.rt
	old := rt.space.SetMode(stats.ModeScan)
	defer rt.space.SetMode(old)
	rt.charge(stats.ModeScan, 4)
	rt.c.FramesUnscanned++
	s.countFrame(f, -1)
	f.scanned = false
	if rt.tracer != nil {
		rt.tracer.Emit(trace.Event{Kind: trace.KindStackUnscan,
			Region: -1, Aux: int32(len(f.slots))})
	}
	if m := rt.met; m != nil {
		m.stackUnscans.Inc()
	}
}
