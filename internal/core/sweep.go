package core

import (
	"regions/internal/mem"
	"regions/internal/stats"
	"regions/internal/trace"
)

// This file is the deferred-reclamation tier (Options.DeferredDelete),
// ROADMAP item 1: deleteregion split into detach + incremental sweep.
//
// The paper's deleteregion is amortized O(1) per allocated byte (Section
// 4.3), but the synchronous implementation pays the whole constant at the
// deletion point — cleanup walk, stack scan, and one poisoning pass over
// every page — which is exactly where a serving workload measures its tail
// latency. Detach-then-sweep re-schedules the per-page part of that
// constant without changing what any program can observe:
//
//   - Detach (detachEntry, called from TryDeleteRegion) performs the same
//     free-list pushes as releaseEntry, in the same order, so the reuse
//     order — and therefore the allocation address stream and every
//     checksum derived from it — is bit-identical to synchronous deletion.
//     The pages are flagged "detached" in the page index, queued on sweepq,
//     and counted as sweep debt; ownership is cleared, so the region is
//     unreachable the instant TryDeleteRegion returns, exactly as before.
//     Charge: 1 ModeFree cycle per page-list entry (the unlink), against
//     the synchronous 1+n.
//   - Sweep (sweepSlice) pays the deferred n: each slice poisons up to a
//     budget of flagged pages, charging 1 ModeFree cycle per page, and
//     clears their flags. Detach + sweep together charge what synchronous
//     deletion charges.
//   - Reuse before sweep (cancelDetached, called from acquirePages) simply
//     clears the flag and the debt: the acquire path re-zeroes every free
//     page it hands out, so a stale-contents page is as good as a poisoned
//     one, and its poisoning cost genuinely disappears.
//
// Debt is provably bounded: sweep slices run on idle cycles (the shard
// engine's dequeues, the serving simulator's modelled inter-arrival gaps),
// and when debt exceeds Options.SweepHighWater every page acquisition runs
// one slice first — the allocation tax. Each page of debt was detached by
// exactly one deletion of a page acquired earlier, and above the high-water
// mark every acquisition retires at least min(budget, debt) pages, so a
// hostile delete-heavy loop converges to at most highWater + one region's
// pages of debt instead of accumulating unswept memory.
//
// Invariant surface (enforced by Verify, see heap.go): a detached page is
// on exactly one free list, owned by no region, attributed to a deleted
// region whose unswept count sums its flags, present in sweepq, and exempt
// from the poison check until swept; rt.sweepDebt equals the number of
// flagged pages. Dangling reads between detach and sweep see stale contents
// instead of poison — the only observable difference from synchronous
// deletion, and one the RC check already proved no tracked pointer can
// exercise.

// defaultSweepBudget is the pages one SweepSlice poisons when
// Options.SweepBudget is unset.
const defaultSweepBudget = 32

// sweepHighWaterFactor scales the default high-water mark from the budget.
const sweepHighWaterFactor = 8

// sweepEntry is one detached run of pages awaiting its sweep.
type sweepEntry struct {
	first Ptr
	pages int
}

func (rt *Runtime) sweepBudgetPages() int {
	if rt.opts.SweepBudget > 0 {
		return rt.opts.SweepBudget
	}
	return defaultSweepBudget
}

func (rt *Runtime) sweepHighWaterPages() int {
	if rt.opts.SweepHighWater > 0 {
		return rt.opts.SweepHighWater
	}
	return sweepHighWaterFactor * rt.sweepBudgetPages()
}

// detachEntry is releaseEntry's deferred twin: same free-list updates, same
// ownership clear, same pagesReleased metering, but the pages keep their
// contents, get flagged as detached, and join the sweep queue as debt. The
// entry charges 1 ModeFree cycle; the per-page remainder is charged as the
// sweeper retires each page.
func (rt *Runtime) detachEntry(first Ptr, n int, r *Region) {
	rt.charge(stats.ModeFree, 1)
	rt.notePages(first, n, nil)
	rt.pages.setDetached(first, n, r)
	r.unswept += n
	rt.sweepq = append(rt.sweepq, sweepEntry{first: first, pages: n})
	rt.sweepDebt += n
	if rt.sweepDebt > rt.sweepPeak {
		rt.sweepPeak = rt.sweepDebt
	}
	if m := rt.met; m != nil {
		m.pagesReleased.Add(uint64(n))
		m.sweepDebt.Set(int64(rt.sweepDebt))
	}
	if n > 1 {
		rt.spans.put(first, n)
		return
	}
	rt.freePages = append(rt.freePages, first)
}

// cancelDetached clears the detached flags of any flagged pages in the run
// about to be reused. The caller re-zeroes the pages, so their deferred
// poisoning is no longer owed; the debt just disappears. Host-side only —
// no simulated cycles, mirroring the uncharged poisoning it cancels.
func (rt *Runtime) cancelDetached(first Ptr, n int) {
	if rt.sweepDebt == 0 {
		return
	}
	cancelled := 0
	for i := 0; i < n; i++ {
		pg := int(first>>mem.PageShift) + i
		if r := rt.pages.detachedAt(pg); r != nil {
			rt.pages.clearDetached(pg)
			r.unswept--
			rt.sweepDebt--
			cancelled++
		}
	}
	if cancelled > 0 {
		if m := rt.met; m != nil {
			m.sweepDebt.Set(int64(rt.sweepDebt))
		}
	}
}

// SweepSlice runs one bounded sweep slice: up to Options.SweepBudget
// detached pages are poisoned, charged (1 ModeFree cycle per page, the
// deferred half of synchronous deletion's 1+n), and removed from the debt.
// It returns the number of pages swept — 0 when there is no debt. Callers
// are the shard engine's idle loop, the serving simulator's modelled idle
// gaps, the allocation tax, and drains.
func (rt *Runtime) SweepSlice() int { return rt.sweepSlice(0) }

// sweepSlice sweeps up to budget pages (<= 0 means Options.SweepBudget).
// Queue entries whose pages were all reused in the meantime are dropped for
// free: cancellation cleared their flags, and every queued page is visited
// at most once over the queue's lifetime.
func (rt *Runtime) sweepSlice(budget int) int {
	if rt.sweepDebt == 0 {
		return 0
	}
	if budget <= 0 {
		budget = rt.sweepBudgetPages()
	}
	start := rt.c.TotalCycles()
	swept := 0
	for swept < budget && rt.sweepHead < len(rt.sweepq) {
		e := &rt.sweepq[rt.sweepHead]
		for e.pages > 0 && swept < budget {
			pg := int(e.first >> mem.PageShift)
			if r := rt.pages.detachedAt(pg); r != nil {
				rt.pages.clearDetached(pg)
				r.unswept--
				rt.sweepDebt--
				if !rt.opts.NoPoison {
					rt.space.PoisonPageFree(e.first)
				}
				rt.charge(stats.ModeFree, 1)
				swept++
			}
			e.first += mem.PageSize
			e.pages--
		}
		if e.pages == 0 {
			rt.sweepHead++
		}
	}
	if rt.sweepHead > 64 && rt.sweepHead*2 >= len(rt.sweepq) {
		rt.sweepq = append(rt.sweepq[:0], rt.sweepq[rt.sweepHead:]...)
		rt.sweepHead = 0
	}
	if swept == 0 {
		return 0
	}
	rt.sweptPages += uint64(swept)
	rt.sweepSlices++
	if rt.tracer != nil {
		rt.tracer.Emit(trace.Event{Kind: trace.KindSweepSlice, Region: -1,
			Size: int32(swept), Aux: int32(rt.sweepDebt)})
	}
	if m := rt.met; m != nil {
		m.sweepSlices.Inc()
		m.sweptPages.Add(uint64(swept))
		m.sweepDebt.Set(int64(rt.sweepDebt))
		m.sweepSliceCycles.Observe(rt.c.TotalCycles() - start)
	}
	return swept
}

// sweepTaxSlice runs one sweep slice on behalf of a page acquisition — the
// allocation tax — and accounts its cycles in sweepTaxCycles so they can be
// attributed to "sweep" instead of the allocation phase they interrupted.
// When a tracer is attached the tax pause is bracketed in a sweep span pair
// (request -1: the pause belongs to the runtime, not to any one request —
// the serving layer re-attributes it per request from the cycle accounting).
func (rt *Runtime) sweepTaxSlice() {
	start := rt.c.TotalCycles()
	if rt.tracer != nil {
		rt.tracer.Emit(trace.SpanBegin(trace.SpanSweep, -1, -1, start))
	}
	swept := rt.sweepSlice(0)
	end := rt.c.TotalCycles()
	if rt.tracer != nil {
		rt.tracer.Emit(trace.SpanEnd(trace.SpanSweep, -1, -1, end))
	}
	if swept > 0 {
		rt.sweepTaxCycles += end - start
		rt.sweepTaxSlices++
	}
}

// SweepTaxCycles returns the cumulative simulated cycles spent in
// allocation-tax sweep slices. Callers (the serving simulator's phase
// recorder) take deltas around work they meter to carve the tax out of the
// interrupted phase.
func (rt *Runtime) SweepTaxCycles() uint64 { return rt.sweepTaxCycles }

// SweepTaxSlices returns how many allocation-tax slices retired pages.
func (rt *Runtime) SweepTaxSlices() uint64 { return rt.sweepTaxSlices }

// SweepDrain sweeps until no debt remains and returns the pages swept.
func (rt *Runtime) SweepDrain() int {
	total := 0
	for rt.sweepDebt > 0 {
		total += rt.sweepSlice(0)
	}
	return total
}

// SweepDebt returns the current detached-but-unswept page count.
func (rt *Runtime) SweepDebt() int { return rt.sweepDebt }

// SweepDebtPeak returns the highest sweep debt the runtime has ever carried.
func (rt *Runtime) SweepDebtPeak() int { return rt.sweepPeak }

// ResetSweepDebtPeak restarts the peak-debt watermark from the current debt,
// so a measurement window (a serving phase, an A/B arm) can report its own
// peak instead of the process lifetime's. Host-side only: no simulated
// cycles, no effect on the debt itself.
func (rt *Runtime) ResetSweepDebtPeak() { rt.sweepPeak = rt.sweepDebt }

// SweptPages returns the total pages the sweeper has poisoned (reused pages
// whose debt was cancelled are not counted).
func (rt *Runtime) SweptPages() uint64 { return rt.sweptPages }

// SweepSlices returns the number of sweep slices that retired at least one
// page.
func (rt *Runtime) SweepSlices() uint64 { return rt.sweepSlices }
