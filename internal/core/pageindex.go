package core

import "regions/internal/mem"

// This file holds the runtime's page bookkeeping structures, the data behind
// the paper's claim that regionof is "a few instructions" (Section 4.1): a
// dense page-indexed array mapping page numbers straight to region handles,
// size-bucketed free lists for multi-page spans, and an optional batched
// free-page cache that amortizes trips to the simulated OS.

// pageIndex is the page→region map: one *Region per page slot, nil for pages
// that belong to no region (unmapped, global storage, or free). Lookup is a
// shift, one bounds check, and one load — the O(1) fast path under every
// RegionOf, write barrier, and stack scan. The array is indexed by page
// number and grows monotonically with the simulated address space (a 32-bit
// space is at most 2^20 slots).
type pageIndex struct {
	owners []*Region
	// detached flags pages released by a deferred deletion but not yet
	// swept (Options.DeferredDelete): non-nil means the page is on a free
	// list with stale contents, and the value is the deleted region the
	// page came from, so Verify can reconcile per-region unswept counts.
	// Detached pages are always unowned; the two slices never mark the
	// same page.
	detached []*Region
}

// set records r (which may be nil, meaning "no region") as the owner of the
// n pages starting at the page containing first.
func (ix *pageIndex) set(first Ptr, n int, r *Region) {
	firstNo := int(first >> mem.PageShift)
	for len(ix.owners) < firstNo+n {
		ix.owners = append(ix.owners, nil)
	}
	for i := 0; i < n; i++ {
		ix.owners[firstNo+i] = r
	}
}

// lookup returns the region owning the page containing p, or nil. Address 0
// lands on the reserved page 0, which is never owned, so the nil pointer
// needs no special case.
func (ix *pageIndex) lookup(p Ptr) *Region {
	pg := p >> mem.PageShift
	if pg >= Ptr(len(ix.owners)) {
		return nil
	}
	return ix.owners[pg]
}

// ownerAt returns the region owning page number pg, or nil.
func (ix *pageIndex) ownerAt(pg int) *Region {
	if pg < 0 || pg >= len(ix.owners) {
		return nil
	}
	return ix.owners[pg]
}

// setDetached flags the n pages starting at first as detached from region r.
func (ix *pageIndex) setDetached(first Ptr, n int, r *Region) {
	firstNo := int(first >> mem.PageShift)
	for len(ix.detached) < firstNo+n {
		ix.detached = append(ix.detached, nil)
	}
	for i := 0; i < n; i++ {
		ix.detached[firstNo+i] = r
	}
}

// detachedAt returns the deleted region page number pg was detached from,
// or nil if the page is not awaiting a sweep.
func (ix *pageIndex) detachedAt(pg int) *Region {
	if pg < 0 || pg >= len(ix.detached) {
		return nil
	}
	return ix.detached[pg]
}

// clearDetached removes page number pg's detached flag.
func (ix *pageIndex) clearDetached(pg int) {
	if pg >= 0 && pg < len(ix.detached) {
		ix.detached[pg] = nil
	}
}

// spanBucketMax is the largest page count with a dedicated free-list bucket.
// Multi-page entries come from rarrayalloc/rstralloc requests over 4 KB;
// nearly all of them are a handful of pages, so counts 2..spanBucketMax get
// O(1) push/pop buckets and anything larger goes to a short overflow list
// searched linearly.
const spanBucketMax = 16

// span is one freed multi-page entry on the overflow list.
type span struct {
	first Ptr
	pages int
}

// freeSpanTable holds freed multi-page entries, bucketed by page count. It
// replaces a map[int][]Ptr: the hot take/put operations on common span sizes
// are now an array index instead of a hashed map access.
type freeSpanTable struct {
	buckets [spanBucketMax + 1][]Ptr // index = page count; 0 and 1 unused
	large   []span                   // page counts beyond spanBucketMax
}

// take removes and returns a freed span of exactly n pages, or 0 if none is
// available. Spans are reused only at their original size, as the paper's
// free page list reuses whole entries.
func (t *freeSpanTable) take(n int) Ptr {
	if n <= spanBucketMax {
		b := t.buckets[n]
		if len(b) == 0 {
			return 0
		}
		p := b[len(b)-1]
		t.buckets[n] = b[:len(b)-1]
		return p
	}
	for i := len(t.large) - 1; i >= 0; i-- {
		if t.large[i].pages == n {
			p := t.large[i].first
			t.large = append(t.large[:i], t.large[i+1:]...)
			return p
		}
	}
	return 0
}

// put adds a freed span of n pages starting at first.
func (t *freeSpanTable) put(first Ptr, n int) {
	if n <= spanBucketMax {
		t.buckets[n] = append(t.buckets[n], first)
		return
	}
	t.large = append(t.large, span{first, n})
}

// forEach visits every freed span (for Verify and diagnostics).
func (t *freeSpanTable) forEach(f func(first Ptr, pages int) *Fault) *Fault {
	for n, b := range t.buckets {
		for _, p := range b {
			if fault := f(p, n); fault != nil {
				return fault
			}
		}
	}
	for _, s := range t.large {
		if fault := f(s.first, s.pages); fault != nil {
			return fault
		}
	}
	return nil
}

// refillPageCache maps a batch of pages from the simulated OS into the free
// page list in one call, so steady-state region create/delete cycles and
// page-list growth stop paying one OS round trip per page. The fresh pages
// are poisoned like any other free page (uncharged; freed and not-yet-issued
// memory is outside the machine model), preserving Verify's free-page
// invariant; the acquire path re-zeroes them before handing them out.
//
// A refused batch is not an error: the caller falls back to a single-page
// request, so a page limit or injected fault plan still bites at the same
// allocation it would have without the cache.
func (rt *Runtime) refillPageCache() {
	batch := rt.opts.PageBatch
	if batch <= 1 {
		return
	}
	p := rt.space.MapPages(batch)
	if p == 0 {
		return
	}
	for i := 0; i < batch; i++ {
		pg := p + Ptr(i)<<mem.PageShift
		if !rt.opts.NoPoison {
			rt.space.PoisonPageFree(pg)
		}
		rt.freePages = append(rt.freePages, pg)
	}
}
