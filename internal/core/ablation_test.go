package core

import (
	"testing"

	"regions/internal/mem"
	"regions/internal/stats"
)

func newRTOpts(o Options) (*Runtime, *stats.Counters) {
	c := &stats.Counters{}
	return NewRuntimeOpts(mem.NewSpace(c), o), c
}

// eagerWorkload writes frame slots heavily and deletes regions, the access
// pattern where the paper's deferred scheme pays off.
func eagerWorkload(rt *Runtime) {
	cln := rt.RegisterCleanup("cell", listCleanup)
	f := rt.PushFrame(4)
	for round := 0; round < 50; round++ {
		r := rt.NewRegion()
		for i := 0; i < 100; i++ {
			p := cons(rt, cln, r, uint32(i), 0)
			f.Set(i%4, p) // every write counts under EagerLocals
		}
		for s := 0; s < 4; s++ {
			f.Set(s, 0)
		}
		if !rt.DeleteRegion(r) {
			panic("delete failed")
		}
	}
	rt.PopFrame()
}

func TestEagerLocalsSemanticsMatchDeferred(t *testing.T) {
	run := func(o Options) (uint64, uint64) {
		rt, c := newRTOpts(o)
		eagerWorkload(rt)
		return c.Allocs, c.RegionsDeleted
	}
	a1, d1 := run(Options{Safe: true})
	a2, d2 := run(Options{Safe: true, EagerLocals: true})
	if a1 != a2 || d1 != d2 {
		t.Fatalf("behaviour differs: (%d,%d) vs (%d,%d)", a1, d1, a2, d2)
	}
}

func TestEagerLocalsCostMoreThanDeferred(t *testing.T) {
	// The ablation the deferred scheme is designed to win: local-variable
	// writes dominate, so eager counting costs far more.
	run := func(o Options) uint64 {
		rt, c := newRTOpts(o)
		eagerWorkload(rt)
		return c.SafetyCycles()
	}
	deferred := run(Options{Safe: true})
	eager := run(Options{Safe: true, EagerLocals: true})
	if eager <= deferred {
		t.Fatalf("eager (%d) should cost more than deferred (%d)", eager, deferred)
	}
	t.Logf("safety cycles: deferred=%d eager=%d (%.1fx)",
		deferred, eager, float64(eager)/float64(deferred))
}

func TestEagerLocalsDeleteBlockedByLiveSlot(t *testing.T) {
	rt, c := newRTOpts(Options{Safe: true, EagerLocals: true})
	cln := rt.RegisterCleanup("cell", listCleanup)
	r := rt.NewRegion()
	f := rt.PushFrame(1)
	f.Set(0, cons(rt, cln, r, 1, 0))
	if rt.DeleteRegion(r) {
		t.Fatal("delete succeeded with live eager-counted slot")
	}
	if c.FramesScanned != 0 {
		t.Fatalf("eager mode scanned %d frames; it should never scan", c.FramesScanned)
	}
	f.Set(0, 0)
	if !rt.DeleteRegion(r) {
		t.Fatal("delete failed after clearing slot")
	}
	rt.PopFrame()
}

func TestEagerLocalsPopReleasesReferences(t *testing.T) {
	rt, _ := newRTOpts(Options{Safe: true, EagerLocals: true})
	cln := rt.RegisterCleanup("cell", listCleanup)
	r := rt.NewRegion()
	f := rt.PushFrame(2)
	f.Set(0, cons(rt, cln, r, 1, 0))
	f.Set(1, cons(rt, cln, r, 2, 0))
	if r.RC() != 2 {
		t.Fatalf("rc=%d, want 2 (eager counting)", r.RC())
	}
	rt.PopFrame()
	if r.RC() != 0 {
		t.Fatalf("rc=%d after pop, want 0", r.RC())
	}
	if !rt.DeleteRegion(r) {
		t.Fatal("delete failed after frame died")
	}
}

func TestNoColoringPutsHeadersAtSameOffset(t *testing.T) {
	rt, _ := newRTOpts(Options{Safe: true, NoColoring: true})
	offsets := map[Ptr]bool{}
	for i := 0; i < 10; i++ {
		offsets[rt.NewRegion().hdr%mem.PageSize] = true
	}
	if len(offsets) != 1 {
		t.Fatalf("NoColoring should give one header offset, got %d", len(offsets))
	}
	colored, _ := newRTOpts(Options{Safe: true})
	offsets = map[Ptr]bool{}
	for i := 0; i < 10; i++ {
		offsets[colored.NewRegion().hdr%mem.PageSize] = true
	}
	if len(offsets) < 8 {
		t.Fatalf("coloring should spread offsets, got %d", len(offsets))
	}
}
