package core

import (
	"fmt"

	"regions/internal/mem"
)

// This file is the "environment for debugging regions" the paper wishes
// for in Section 5.1: "The other difficulty is finding stale pointers that
// prevent a region from being deleted; an environment for debugging regions
// would be helpful here." Referrers answers the question a failing
// DeleteRegion raises — who still points into this region?

// RefKind classifies where a reference into a region was found.
type RefKind string

// Reference locations.
const (
	RefHeap   RefKind = "heap"   // a word inside another region's scanned data
	RefGlobal RefKind = "global" // a word in global storage
	RefFrame  RefKind = "frame"  // a live local variable slot
)

// Ref is one location that holds (or conservatively appears to hold) a
// pointer into the region under investigation.
type Ref struct {
	Kind  RefKind
	Addr  Ptr     // heap address of the referring word (heap/global refs)
	From  *Region // region containing the referring word (heap refs)
	Frame int     // frame depth, outermost = 0 (frame refs)
	Slot  int     // slot within the frame (frame refs)
	Value Ptr     // the pointer found
}

// String formats a reference for diagnostics.
func (r Ref) String() string {
	switch r.Kind {
	case RefHeap:
		return fmt.Sprintf("heap word %#x in %v -> %#x", r.Addr, r.From, r.Value)
	case RefGlobal:
		return fmt.Sprintf("global word %#x -> %#x", r.Addr, r.Value)
	default:
		return fmt.Sprintf("frame %d slot %d -> %#x", r.Frame, r.Slot, r.Value)
	}
}

// Referrers conservatively locates every tracked reference into target: the
// scanned (normal-allocator) data of all other live regions, global
// storage, and every shadow-stack frame slot. It is a debugging aid — it
// charges no cycles and may over-report words whose integer value happens
// to alias an address in target. String-allocator data is not scanned,
// matching its "no region pointers" contract; a pointer hidden there is
// exactly the kind of unsafe cast the paper's C@ rules out.
func (rt *Runtime) Referrers(target *Region) []Ref {
	if target == nil || target.deleted {
		return nil
	}
	var refs []Ref
	rt.space.Uncharged(func() {
		pointsIn := func(v Ptr) bool { return v != 0 && rt.RegionOf(v) == target }

		for _, reg := range rt.regions {
			if reg.deleted || reg == target {
				continue
			}
			from := reg
			rt.forEachNormalWord(from, func(a Ptr, v Word) {
				if pointsIn(v) {
					refs = append(refs, Ref{Kind: RefHeap, Addr: a, From: from, Value: v})
				}
			})
		}
		ranges := append(append([][2]Ptr(nil), rt.globalRanges...),
			[2]Ptr{rt.globalSeg, rt.globalNext})
		for _, seg := range ranges {
			for a := seg[0]; a < seg[1]; a += mem.WordSize {
				if v := rt.space.Load(a); pointsIn(v) {
					refs = append(refs, Ref{Kind: RefGlobal, Addr: a, Value: v})
				}
			}
		}
		for fi, f := range rt.stack.frames {
			for si, v := range f.slots {
				if pointsIn(v) {
					refs = append(refs, Ref{Kind: RefFrame, Frame: fi, Slot: si, Value: v})
				}
			}
		}
	})
	return refs
}
