package core

import (
	"strings"
	"testing"
)

func TestReferrersFindsEveryKind(t *testing.T) {
	rt, _ := newRT(true)
	cln := rt.RegisterCleanup("list", listCleanup)
	target := rt.NewRegion()
	other := rt.NewRegion()

	victim := cons(rt, cln, target, 7, 0)
	holder := cons(rt, cln, other, 1, victim) // heap ref
	g := rt.AllocGlobals(2)
	rt.StoreGlobalPtr(g+4, victim) // global ref
	f := rt.PushFrame(3)
	defer rt.PopFrame()
	f.Set(2, victim) // frame ref

	refs := rt.Referrers(target)
	if len(refs) != 3 {
		t.Fatalf("got %d refs: %v", len(refs), refs)
	}
	kinds := map[RefKind]Ref{}
	for _, r := range refs {
		kinds[r.Kind] = r
	}
	if r, ok := kinds[RefHeap]; !ok || r.Addr != holder+4 || r.From != other || r.Value != victim {
		t.Errorf("heap ref wrong: %+v", r)
	}
	if r, ok := kinds[RefGlobal]; !ok || r.Addr != g+4 || r.Value != victim {
		t.Errorf("global ref wrong: %+v", r)
	}
	if r, ok := kinds[RefFrame]; !ok || r.Frame != 0 || r.Slot != 2 {
		t.Errorf("frame ref wrong: %+v", r)
	}

	// The report explains the failing delete; clearing each location makes
	// the region deletable and the report empty.
	if rt.DeleteRegion(target) {
		t.Fatal("delete should fail with 3 referrers")
	}
	rt.StorePtr(holder+4, 0)
	rt.StoreGlobalPtr(g+4, 0)
	f.Set(2, 0)
	if got := rt.Referrers(target); len(got) != 0 {
		t.Fatalf("refs remain after clearing: %v", got)
	}
	if !rt.DeleteRegion(target) {
		t.Fatal("delete failed with no referrers")
	}
	if rt.Referrers(target) != nil {
		t.Fatal("deleted region should report nil")
	}
}

func TestReferrersStringFormat(t *testing.T) {
	rt, _ := newRT(true)
	cln := rt.RegisterCleanup("list", listCleanup)
	target := rt.NewRegion()
	other := rt.NewRegion()
	cons(rt, cln, other, 1, cons(rt, cln, target, 7, 0))
	refs := rt.Referrers(target)
	if len(refs) != 1 {
		t.Fatalf("refs: %v", refs)
	}
	s := refs[0].String()
	if !strings.Contains(s, "heap word") || !strings.Contains(s, "->") {
		t.Errorf("unhelpful ref string %q", s)
	}
}

func TestReferrersIgnoresStringData(t *testing.T) {
	rt, _ := newRT(true)
	target := rt.NewRegion()
	other := rt.NewRegion()
	victim := rt.RstrAlloc(target, 8)
	// A pointer smuggled into string data is invisible to the safety
	// machinery (the paper's unsafe-cast case) and to Referrers.
	s := rt.RstrAlloc(other, 8)
	rt.Space().Store(s, victim)
	if refs := rt.Referrers(target); len(refs) != 0 {
		t.Fatalf("string data should not be scanned: %v", refs)
	}
}
