package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"regions/internal/mem"
)

// catchFault runs fn and returns the error it panicked with (nil if it
// returned normally). Panics carrying non-error values fail the test: every
// runtime panic is supposed to be a *Fault.
func catchFault(t *testing.T, fn func()) (err error) {
	t.Helper()
	defer func() {
		switch r := recover().(type) {
		case nil:
		case error:
			err = r
		default:
			t.Fatalf("panic carried a non-error value: %v", r)
		}
	}()
	fn()
	return nil
}

// TestFaultErrorChains triggers every fault kind and checks the full error
// chain each one promises: errors.As reaches the *Fault, the kind and its
// kebab-case name are right, and errors.Is(err, mem.ErrOutOfMemory) holds
// exactly for OOM faults (which must also expose the *mem.OOMError they
// wrap). All kinds but one are produced by real misuse through the public
// API; FaultDanglingDestroy is constructed directly, because deletion
// clears page ownership before a region is ever observable as deleted, so
// no pointer a cleanup can legally hold still translates to a deleted
// region — the check is defense in depth against a corrupted page index.
func TestFaultErrorChains(t *testing.T) {
	cases := []struct {
		name    string
		kind    FaultKind
		wantOOM bool
		trigger func(t *testing.T) error
	}{
		{
			name: "oom", kind: FaultOOM, wantOOM: true,
			trigger: func(t *testing.T) error {
				rt, _ := newRT(true)
				rt.Space().SetFaultPlan(&mem.FaultPlan{FailNth: 1})
				_, err := rt.TryNewRegion()
				return err
			},
		},
		{
			name: "oom-page-limit", kind: FaultOOM, wantOOM: true,
			trigger: func(t *testing.T) error {
				rt, _ := newRT(true)
				rt.Space().SetPageLimit(2)
				r := rt.NewRegion()
				_, err := rt.TryRstrAlloc(r, 8*mem.PageSize)
				return err
			},
		},
		{
			name: "rc-underflow", kind: FaultRCUnderflow,
			trigger: func(t *testing.T) error {
				rt, _ := newRT(true)
				a, b := rt.NewRegion(), rt.NewRegion()
				cln := rt.SizeCleanup(8)
				q := rt.Ralloc(b, 8, cln)
				p := rt.Ralloc(a, 8, cln)
				// Smuggle a cross-region pointer past the write barrier: b's
				// count was never incremented, so the barrier's decrement on
				// overwrite underflows.
				rt.Space().Store(p, q)
				return catchFault(t, func() { rt.StorePtr(p, 0) })
			},
		},
		{
			name: "corrupt-header", kind: FaultCorruptHeader,
			trigger: func(t *testing.T) error {
				rt, _ := newRT(true)
				r := rt.NewRegion()
				p := rt.Ralloc(r, 16, rt.SizeCleanup(16))
				// Stomp the object header with a value that is no registered
				// cleanup id; the deletion's cleanup walk must refuse it.
				rt.Space().Store(p-mem.WordSize, 0x0ffffff0)
				return catchFault(t, func() { rt.DeleteRegion(r) })
			},
		},
		{
			name: "deleted-region", kind: FaultDeletedRegion,
			trigger: func(t *testing.T) error {
				rt, _ := newRT(true)
				r := rt.NewRegion()
				if !rt.DeleteRegion(r) {
					t.Fatal("delete refused")
				}
				_, err := rt.TryDeleteRegion(r)
				return err
			},
		},
		{
			name: "detached-region", kind: FaultDetachedRegion,
			trigger: func(t *testing.T) error {
				rt, _ := newRTOpts(Options{Safe: true, DeferredDelete: true})
				r := rt.NewRegion()
				rt.RstrAlloc(r, 600)
				if !rt.DeleteRegion(r) {
					t.Fatal("delete refused")
				}
				_, err := rt.TryRalloc(r, 8, rt.SizeCleanup(8))
				return err
			},
		},
		{
			name: "migrated-region", kind: FaultMigratedRegion,
			trigger: func(t *testing.T) error {
				rt, _ := newRT(true)
				r := rt.NewRegion()
				rt.Ralloc(r, 8, rt.SizeCleanup(8))
				if _, err := rt.ExportRegion(r); err != nil {
					t.Fatalf("export: %v", err)
				}
				_, err := rt.TryRalloc(r, 8, rt.SizeCleanup(8))
				return err
			},
		},
		{
			name: "stack-underflow", kind: FaultStackUnderflow,
			trigger: func(t *testing.T) error {
				rt, _ := newRT(true)
				return catchFault(t, func() { rt.PopFrame() })
			},
		},
		{
			name: "invariant", kind: FaultInvariant,
			trigger: func(t *testing.T) error {
				rt, _ := newRT(true)
				r := rt.NewRegion()
				p := rt.RstrAlloc(r, 64)
				if !rt.DeleteRegion(r) {
					t.Fatal("delete refused")
				}
				// Scribble into the freed, poisoned page; Verify's free-page
				// check must report it.
				rt.Space().Store(p, 5)
				return rt.Verify()
			},
		},
		{
			name: "dangling-destroy", kind: FaultDanglingDestroy,
			trigger: func(t *testing.T) error {
				// Synthetic (see the test comment): exercises the chain
				// mechanics through an extra wrapping layer.
				return fmt.Errorf("cleanup walk: %w",
					&Fault{Kind: FaultDanglingDestroy, Addr: 0x2000, Region: 3,
						Context: "Destroy found a pointer into a deleted region"})
			},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := tc.trigger(t)
			if err == nil {
				t.Fatal("trigger produced no error")
			}
			var f *Fault
			if !errors.As(err, &f) {
				t.Fatalf("error does not unwrap to *Fault: %v", err)
			}
			if f.Kind != tc.kind {
				t.Fatalf("fault kind %v (%q), want %v", f.Kind, f.Kind, tc.kind)
			}
			if !strings.Contains(f.Error(), f.Kind.String()) {
				t.Fatalf("fault message %q does not name its kind %q", f.Error(), f.Kind)
			}
			if got := errors.Is(err, mem.ErrOutOfMemory); got != tc.wantOOM {
				t.Fatalf("errors.Is(err, ErrOutOfMemory) = %v, want %v (err: %v)", got, tc.wantOOM, err)
			}
			var oe *mem.OOMError
			if got := errors.As(err, &oe); got != tc.wantOOM {
				t.Fatalf("errors.As(err, *mem.OOMError) = %v, want %v (err: %v)", got, tc.wantOOM, err)
			}
		})
	}
}
