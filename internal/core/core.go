// Package core implements the paper's contribution: safe region-based
// memory management (Gay & Aiken, "Memory Management with Explicit Regions",
// PLDI 1998, Sections 3 and 4).
//
// A Runtime owns a simulated address space and plays the role of the C@
// compiler plus runtime library:
//
//   - Regions are lists of 4 KB pages with bump allocation on the first page
//     of the list. Each region contains two allocators, one for normal data
//     (ralloc/rarrayalloc: scanned at deletion, cleared on allocation) and
//     one for region-pointer-free data (rstralloc: never scanned, no
//     bookkeeping). The region structure itself — reference count and the
//     two allocators — lives in the region's first page, colored by 64-byte
//     offsets to reduce cache conflicts between region structures.
//   - Safety comes from region reference counting: exact counts for
//     pointers stored in regions and global storage (write barriers with
//     the sameregion optimization, Figure 5), and deferred counts for local
//     variables using a shadow stack with a high-water mark (Section 4.2.1).
//   - DeleteRegion (the paper's deleteregion) scans the unscanned part of
//     the stack, checks that the exact reference count is zero, runs the
//     region's cleanup functions (Figure 7), and returns the region's pages
//     to a free page list. It is a failing no-op when external references
//     remain.
//
// An unsafe Runtime is identical except that every operation maintaining or
// testing reference counts is disabled, matching the paper's unsafe library.
package core

import (
	"fmt"

	"regions/internal/mem"
	"regions/internal/stats"
	"regions/internal/trace"
)

// Ptr is a pointer into the simulated heap. The nil pointer is 0.
type Ptr = mem.Addr

const (
	// hdrWords is the size of the in-heap region structure: reference
	// count, normal allocator (first page, allocation offset), string
	// allocator (first page, allocation offset).
	hdrWords = 5
	hdrBytes = hdrWords * mem.WordSize

	// pageLink is the offset of the next-page link word in every region
	// page. The link's low 12 bits carry the entry's page count minus one,
	// so multi-page allocations (a lifting of the paper prototype's
	// one-page limit) live on the same list.
	pageLink = 0

	// colorStep and colorMax implement the paper's region-structure
	// coloring: successive regions are offset by 64 bytes (the second-level
	// cache line size) in their first page, up to a maximum offset of 512.
	colorStep = 64
	colorMax  = 512

	// arrayFlag marks an object header word as an array allocation.
	arrayFlag = 1 << 31

	// Barrier overheads, in instructions, from Figure 5 of the paper. The
	// barrier's own memory accesses are charged as they happen, so the
	// extra charge is the paper's count minus the typical access count.
	globalWriteExtra = 16 - 4
	regionWriteExtra = 23 - 6
	// dynamicWriteExtra is the "more expensive runtime routine" used when a
	// write cannot be statically classified (Section 4.2.2).
	dynamicWriteExtra = 30 - 6

	// Decomposition of regionWriteExtra for the last-region translation
	// cache: each of the barrier's three regionof probes costs lrProbeMiss
	// instructions against the dense page index, or lrProbeHit when the
	// cache answers. All three missing sums to exactly regionWriteExtra,
	// so a workload the cache never helps charges what it always did (and
	// Options.NoRegionCache restores the flat pre-cache model verbatim).
	lrProbeHit      = 1
	lrProbeMiss     = 3
	regionWriteBase = regionWriteExtra - 3*lrProbeMiss

	// barrierFastExtra is the short region-write path taken when all three
	// translations hit the cache and no count update is needed (val in
	// slot's region, old value nil or also in slot's region): a handful of
	// compares instead of the full Figure 5 sequence.
	barrierFastExtra = 4

	// lrSize is the entry count of the per-runtime last-region translation
	// cache: direct-mapped on the low page-number bits, small enough that
	// the invalidation sweep in notePages is a few compares.
	lrSize = 4
)

// lrEntry caches one page-number -> region translation. The zero entry maps
// page 0 to nil, which is correct forever: page 0 is reserved and never
// owned, so a zeroed cache is a valid cache.
type lrEntry struct {
	page Ptr
	r    *Region
}

// Region header field offsets (bytes from the header address).
const (
	offRC          = 0
	offNormalFirst = 4
	offNormalAvail = 8 // allocation offset within the first page
	offStringFirst = 12
	offStringAvail = 16

	errDeleted  = "core: operation on deleted region"
	errDetached = "core: operation on detached region (sweep pending)"
	errMigrated = "core: operation on region migrated to another runtime"
)

// Region is a handle to a region. As in the paper, the handle itself is not
// a counted region pointer: deleteregion(Region *x) explicitly excepts *x,
// and our generalization is that Region handles held by Go code are
// untracked while Ptr values in frame slots and heap words are tracked.
type Region struct {
	rt  *Runtime
	id  int32
	hdr Ptr // address of the in-heap region structure

	bytes   uint64 // program-requested bytes, for Table 2
	allocs  uint64
	born    uint64 // simulated cycle of creation, for the lifetime histogram
	deleted bool
	// migrated marks a region ExportRegion handed off to another runtime:
	// deleted is also set (the pages are gone from this runtime), and stale
	// handles fault with FaultMigratedRegion instead of FaultDeletedRegion.
	migrated bool
	// unswept counts the region's detached pages the incremental sweeper has
	// not yet poisoned (Options.DeferredDelete). A deleted region with
	// unswept > 0 is "detached": unreachable and RC-checked exactly like a
	// deleted one, but its pages still carry stale contents on the free
	// lists. See sweep.go.
	unswept int
	// strPool holds the region's per-capacity-class free lists of
	// explicitly freed rstralloc blocks, host-side like the runtime's free
	// page lists; strPoolBytes sums their recorded capacities for the heap
	// report's byte decomposition. Nil until the first pooled free. See
	// strpool.go.
	strPool      [][]strBlock
	strPoolBytes uint64
}

// Options configures a Runtime beyond the paper's two libraries, enabling
// the ablation experiments and the sharded throughput engine.
type Options struct {
	// Safe enables reference counting, stack scanning, and cleanups.
	Safe bool
	// PageBatch, when above 1, makes the runtime request free pages from
	// the simulated OS in batches of this size and serve single-page needs
	// from the resulting free-page cache. The default (0 or 1) maps pages
	// one at a time, exactly as the paper's library does; shard runtimes
	// set a batch so steady-state region churn stops round-tripping
	// through the OS. Batching changes only when OS calls happen, not the
	// simulated cycle accounting of allocation itself.
	PageBatch int
	// NoColoring disables the 64-byte offsets of region structures in
	// their first pages (Section 4.1's cache-conflict mitigation).
	NoColoring bool
	// EagerLocals replaces the deferred high-water-mark scheme of Section
	// 4.2.1 with exact counting of local variables: every frame-slot write
	// pays a barrier and deletion needs no stack scan. This is the
	// expensive design the paper's deferred scheme exists to avoid.
	EagerLocals bool
	// NoPoison disables the 0xdeadbeef fill of freed pages. Poisoning is
	// uncharged (freed memory is outside the paper's machine model) but
	// makes use-after-delete detectable by Verify and by dangling reads.
	NoPoison bool
	// NoRegionCache disables the last-region translation cache and the
	// write barrier's cached fast path: every regionof probe goes to the
	// dense page index and every region write charges the flat Figure 5
	// cost (regionWriteExtra), the pre-cache model. Exists for ablation
	// and A/B measurement.
	NoRegionCache bool
	// DeferredDelete splits deleteregion into detach + incremental sweep:
	// TryDeleteRegion keeps the RC check and cleanup semantics but only
	// detaches the region's pages (flagged in the page index, poisoning and
	// the per-page reclamation charge deferred), and SweepSlice pays the
	// deferred cost in bounded slices. Detached pages sit on the free lists
	// in exactly the order synchronous deletion would put them, so the
	// allocation address stream — and with it every checksum — is identical
	// in both modes. See sweep.go for the debt-bound argument.
	DeferredDelete bool
	// SweepBudget is the maximum pages one SweepSlice poisons (default
	// defaultSweepBudget). Only meaningful with DeferredDelete.
	SweepBudget int
	// SweepHighWater is the sweep-debt page count above which every page
	// acquisition first runs one sweep slice — the "pay as you allocate"
	// tax that bounds debt under delete-heavy workloads (default
	// sweepHighWaterFactor times the budget). Only meaningful with
	// DeferredDelete.
	SweepHighWater int
	// NoStrPool disables the pooled string allocator's free lists:
	// RstrFree becomes accounting-only and every rstralloc bumps, the
	// paper's original behavior. The per-class New/Big counters and the
	// "str:" site census stay active so an A/B pair reports comparable
	// columns. Exists for ablation and the pooling-on/off determinism
	// gate; see strpool.go.
	NoStrPool bool
	// StrPoolMax is the pool's capacity-class ceiling in bytes (rounded up
	// to a power of two; default defaultStrPoolMax). Requests above it are
	// "Big": bump-allocated, counted, never pooled.
	StrPoolMax int
}

// Runtime is one region-based memory management instance over one simulated
// address space.
type Runtime struct {
	space *mem.Space
	c     *stats.Counters
	safe  bool
	opts  Options

	regions   []*Region
	pages     pageIndex       // dense page number -> region map (see pageindex.go)
	lr        [lrSize]lrEntry // last-region translation cache over pages
	freePages []Ptr           // single free pages available for reuse
	spans     freeSpanTable
	colorSeq  int

	// Deferred-reclamation state (Options.DeferredDelete; see sweep.go).
	// sweepq[sweepHead:] lists the detached page runs awaiting their sweep;
	// sweepDebt counts detached-but-unswept pages across the heap.
	sweepq      []sweepEntry
	sweepHead   int
	sweepDebt   int
	sweepPeak   int
	sweptPages  uint64
	sweepSlices uint64
	// sweepTaxCycles accumulates the simulated cycles charged by allocation-tax
	// sweep slices — the slices acquirePages runs above the high-water mark,
	// inside some caller's allocation phase rather than in idle time. The
	// serving simulator reads deltas of this to carve the tax out of the
	// phase it interrupted (see internal/serve).
	sweepTaxCycles uint64
	sweepTaxSlices uint64

	// Pooled string allocator accounting (see strpool.go): strCeil is the
	// capacity-class ceiling, strPooling whether free lists are in use
	// (false under Options.NoStrPool), strNew/strReuse/strFreed the
	// per-class counters, strBig the above-ceiling count, strSiteKeys the
	// precomputed "str:<class>" census keys.
	strCeil     int
	strPooling  bool
	strNew      []uint64
	strReuse    []uint64
	strFreed    []uint64
	strBig      uint64
	strSiteKeys []string

	cleanups     []cleanupEntry
	sizeCleanups map[int]CleanupID

	stack stack

	globalSeg  Ptr // bump segment for global region-pointer variables
	globalNext Ptr
	globalEnd  Ptr
	// globalRanges records the used extent [start, end) of every retired
	// global segment, so Verify and Referrers can walk all global storage,
	// not just the current segment.
	globalRanges [][2]Ptr

	deleting *Region // region currently being cleaned up, for Destroy

	// verifying makes Destroy an immediate no-op so Verify can dry-run
	// cleanup functions to measure object extents without touching counts.
	verifying bool

	// tracer, when non-nil, receives one event per runtime operation (see
	// internal/trace and docs/OBSERVABILITY.md). Every emission site is
	// guarded by a nil check so the untraced runtime pays one predicate.
	tracer *trace.Tracer

	// met, when non-nil, holds cached handles into a metrics registry (see
	// metrics.go and internal/metrics). Same contract as tracer: every
	// update site is nil-guarded, updates are host-side only, and a metered
	// run's stats.Counters are identical to a bare run's.
	met *runtimeMetrics
}

// NewRuntime creates a region runtime on the given space. If safe is false,
// all reference counting, stack scanning and cleanup support is disabled, as
// in the paper's unsafe library.
func NewRuntime(space *mem.Space, safe bool) *Runtime {
	return NewRuntimeOpts(space, Options{Safe: safe})
}

// NewRuntimeOpts creates a region runtime with explicit options.
func NewRuntimeOpts(space *mem.Space, opts Options) *Runtime {
	rt := &Runtime{
		space: space,
		c:     space.Counters(),
		safe:  opts.Safe,
		opts:  opts,
	}
	rt.stack.rt = rt
	rt.initStrPool()
	return rt
}

// Space returns the simulated address space the runtime allocates from.
func (rt *Runtime) Space() *mem.Space { return rt.space }

// Safe reports whether this runtime maintains reference counts.
func (rt *Runtime) Safe() bool { return rt.safe }

// Counters returns the statistics sink shared with the space.
func (rt *Runtime) Counters() *stats.Counters { return rt.c }

// SetTracer attaches t as the runtime's event sink (nil detaches). If t has
// no clock yet, the runtime's modelled cycle count becomes its timestamp
// source, so events line up with the paper's cycle accounting. Tracing
// charges no simulated cycles.
func (rt *Runtime) SetTracer(t *trace.Tracer) {
	rt.tracer = t
	if t != nil {
		c := rt.c
		t.InitClock(func() uint64 { return c.TotalCycles() })
	}
}

// Tracer returns the attached tracer, or nil.
func (rt *Runtime) Tracer() *trace.Tracer { return rt.tracer }

// regionID maps a region to its event id (-1 for nil).
func regionID(r *Region) int32 {
	if r == nil {
		return -1
	}
	return r.id
}

// charge adds n instruction cycles to mode without touching memory.
func (rt *Runtime) charge(mode stats.Mode, n uint64) {
	rt.c.Cycles[mode] += n
}

// ---------------------------------------------------------------------------
// Pages and the page-to-region map

func (rt *Runtime) notePages(first Ptr, n int, r *Region) {
	rt.pages.set(first, n, r)
	// Every page-ownership change flows through here — acquire, release,
	// global segments — so dropping the covered translation-cache entries
	// makes a stale cache hit structurally impossible. Uncharged: the
	// sweep stands in for the handful of compares a real library folds
	// into its page bookkeeping, and the release path already charges per
	// page.
	pg := first >> mem.PageShift
	for i := range rt.lr {
		if e := &rt.lr[i]; e.page >= pg && e.page < pg+Ptr(n) {
			*e = lrEntry{}
		}
	}
}

// acquirePages returns n contiguous zeroed pages owned by region r, or 0
// when the free lists cannot satisfy the request and the simulated OS
// refuses to map fresh pages. Single pages come from the free page list
// (refilled in batches when Options.PageBatch is set); freed multi-page
// spans are reused for allocations of the same page count.
func (rt *Runtime) acquirePages(n int, r *Region) Ptr {
	if rt.sweepDebt > 0 && rt.sweepDebt > rt.sweepHighWaterPages() {
		// Allocation tax: above the high-water mark every acquisition sweeps
		// one slice first, so debt is bounded even when no idle cycles ever
		// arrive (see sweep.go). The tax variant additionally accounts the
		// slice's cycles so phase attribution can name them.
		rt.sweepTaxSlice()
	}
	rt.charge(stats.ModeAlloc, 2) // list manipulation
	if n == 1 {
		if len(rt.freePages) == 0 {
			rt.refillPageCache()
		}
		if len(rt.freePages) > 0 {
			p := rt.freePages[len(rt.freePages)-1]
			rt.freePages = rt.freePages[:len(rt.freePages)-1]
			rt.cancelDetached(p, 1)
			rt.space.ZeroPageFree(p)
			rt.notePages(p, 1, r)
			rt.meterPagesAcquired(1)
			return p
		}
	}
	if n > 1 {
		if p := rt.spans.take(n); p != 0 {
			rt.cancelDetached(p, n)
			for i := 0; i < n; i++ {
				rt.space.ZeroPageFree(p + Ptr(i)<<mem.PageShift)
			}
			rt.notePages(p, n, r)
			rt.meterPagesAcquired(n)
			return p
		}
	}
	p := rt.space.MapPages(n)
	if p == 0 {
		return 0
	}
	rt.notePages(p, n, r)
	rt.meterPagesAcquired(n)
	return p
}

// meterPagesAcquired records n pages handed to a region, from any source.
func (rt *Runtime) meterPagesAcquired(n int) {
	if m := rt.met; m != nil {
		m.pagesAcquired.Add(uint64(n))
	}
}

// releaseEntry returns a page-list entry to the free lists and clears its
// region ownership. Unless Options.NoPoison is set, the freed pages are
// filled with mem.PoisonWord (uncharged — freed memory is outside the
// machine model) so dangling reads are unmistakable and Verify can detect
// stray writes into free pages; reuse paths re-zero before handing out.
func (rt *Runtime) releaseEntry(first Ptr, n int) {
	rt.charge(stats.ModeFree, uint64(1+n))
	rt.notePages(first, n, nil)
	if m := rt.met; m != nil {
		m.pagesReleased.Add(uint64(n))
	}
	if !rt.opts.NoPoison {
		for i := 0; i < n; i++ {
			rt.space.PoisonPageFree(first + Ptr(i)<<mem.PageShift)
		}
	}
	if n > 1 {
		rt.spans.put(first, n)
		return
	}
	rt.freePages = append(rt.freePages, first)
}

// regionOf translates p to its owning region, consulting the last-region
// translation cache before the dense page index, and reports whether the
// cache answered — the region-write barrier charges hits and misses
// differently. A miss fills the entry (nil translations are cacheable too:
// "not a region address" is as stable as ownership, and notePages drops the
// entry on any change). Metrics here are host-side; simulated cycles are
// charged at the call sites.
func (rt *Runtime) regionOf(p Ptr) (*Region, bool) {
	pg := p >> mem.PageShift
	if !rt.opts.NoRegionCache {
		if e := &rt.lr[pg&(lrSize-1)]; e.page == pg {
			if m := rt.met; m != nil {
				m.lrHits.Inc()
			}
			return e.r, true
		}
	}
	var r *Region
	if pg < Ptr(len(rt.pages.owners)) {
		r = rt.pages.owners[pg]
	}
	if !rt.opts.NoRegionCache {
		rt.lr[pg&(lrSize-1)] = lrEntry{page: pg, r: r}
	}
	if m := rt.met; m != nil {
		m.lrMisses.Inc()
		m.lookups.Inc()
		if r != nil {
			m.lookupHits.Inc()
		}
	}
	return r, false
}

// RegionOf returns the region containing p, or nil if p is not a region
// address (nil, global storage, or allocator-free space). This is the
// paper's regionof, backed by the last-region translation cache over the
// dense page-index array (Section 4.1): on a cache miss, a shift, one
// bounds check, and one load. The nil pointer needs no test of its own —
// it lands on the reserved page 0, which is never owned.
func (rt *Runtime) RegionOf(p Ptr) *Region {
	r, _ := rt.regionOf(p)
	return r
}

// ---------------------------------------------------------------------------
// Region creation and allocation

// NewRegion creates an empty region (the paper's newregion). The region
// structure is stored in the region's own first page at a colored offset.
// NewRegion panics with a *Fault if the simulated OS refuses the region's
// first page; TryNewRegion is the graceful variant.
func (rt *Runtime) NewRegion() *Region {
	r, err := rt.TryNewRegion()
	if err != nil {
		panic(err)
	}
	return r
}

// TryNewRegion creates an empty region, returning a *Fault (kind FaultOOM,
// wrapping *mem.OOMError) instead of a region when the simulated OS refuses
// the first page. On failure the runtime is unchanged: no region id is
// consumed and no page ownership is recorded.
func (rt *Runtime) TryNewRegion() (*Region, error) {
	old := rt.space.SetMode(stats.ModeAlloc)
	defer rt.space.SetMode(old)
	rt.charge(stats.ModeAlloc, 3)

	id := int32(len(rt.regions))
	r := &Region{rt: rt, id: id}
	page := rt.acquirePages(1, r)
	if page == 0 {
		return nil, rt.oomFault("newregion", id)
	}
	rt.regions = append(rt.regions, r)

	color := Ptr(rt.colorSeq*colorStep) % (colorMax + colorStep)
	if rt.opts.NoColoring {
		color = 0
	}
	rt.colorSeq++
	hdr := page + mem.WordSize + color
	r.hdr = hdr

	rt.space.Store(page+pageLink, 0) // single-page entry, end of list
	rt.space.Store(hdr+offRC, 0)
	rt.space.Store(hdr+offNormalFirst, page)
	rt.space.Store(hdr+offNormalAvail, hdr+hdrBytes-page)
	rt.space.Store(hdr+offStringFirst, 0)
	rt.space.Store(hdr+offStringAvail, mem.PageSize)

	r.born = rt.c.TotalCycles()
	rt.c.RegionCreated()
	if rt.tracer != nil {
		rt.tracer.Emit(trace.Event{Kind: trace.KindRegionCreate, Region: r.id, Addr: hdr, Aux: -1})
	}
	if m := rt.met; m != nil {
		m.regionsCreated.Inc()
		m.liveRegions.Inc()
	}
	return r, nil
}

func align4(n int) int { return (n + 3) &^ 3 }

// bump allocates total bytes from the allocator whose fields are at
// hdr+firstOff/availOff, growing the page list as needed. It returns 0 when
// the simulated OS refuses the pages; the failure path touches no header
// field or page link, so the region stays exactly as it was.
func (rt *Runtime) bump(r *Region, firstOff, availOff Ptr, total int) Ptr {
	hdr := r.hdr
	avail := rt.space.Load(hdr + availOff)
	first := rt.space.Load(hdr + firstOff)
	if int(avail)+total <= mem.PageSize && first != 0 {
		p := first + avail
		rt.space.Store(hdr+availOff, avail+Ptr(total))
		return p
	}
	// The link word of an entry is nextEntryAddr | (thisEntryPageCount-1);
	// entry addresses are page-aligned so the two never collide.
	npages := (total + mem.WordSize + mem.PageSize - 1) / mem.PageSize
	if npages == 1 {
		// New head page; allocation continues from it.
		page := rt.acquirePages(1, r)
		if page == 0 {
			return 0
		}
		rt.space.Store(page+pageLink, first)
		rt.space.Store(hdr+firstOff, page)
		rt.space.Store(hdr+availOff, mem.WordSize+Ptr(total))
		return page + mem.WordSize
	}
	// Multi-page entry, a lifting of the paper prototype's one-page limit:
	// link it behind the current head so small allocations keep filling the
	// head page's remaining space.
	span := rt.acquirePages(npages, r)
	if span == 0 {
		return 0
	}
	if first == 0 {
		rt.space.Store(span+pageLink, Ptr(npages-1))
		rt.space.Store(hdr+firstOff, span)
		rt.space.Store(hdr+availOff, mem.PageSize) // span is head but full
	} else {
		headLink := rt.space.Load(first + pageLink)
		headNext := headLink &^ Ptr(mem.PageSize-1)
		headCount := headLink & (mem.PageSize - 1)
		rt.space.Store(span+pageLink, headNext|Ptr(npages-1))
		rt.space.Store(first+pageLink, span|headCount)
	}
	return span + mem.WordSize
}

// checkLive guards the allocators. A nil region is API misuse and panics
// even on the Try* paths; a deleted region is a runtime condition (use
// after free) reported as a *Fault, which Try* callers receive as an error
// and the paper-shaped wrappers convert to a panic.
func (rt *Runtime) checkLive(r *Region) error {
	if r == nil {
		panic("core: nil region")
	}
	if r.deleted {
		return rt.deletedFault(r)
	}
	return nil
}

// deletedFault reports use of a dead region, distinguishing a migrated
// region (handed off to another runtime) and a detached region (deleted,
// pages awaiting their sweep) from a fully reclaimed one so the fault names
// the state the offending pointer actually sees.
func (rt *Runtime) deletedFault(r *Region) *Fault {
	if r.migrated {
		return rt.fault(FaultMigratedRegion, r.hdr, r.id, errMigrated, nil)
	}
	if r.unswept > 0 {
		return rt.fault(FaultDetachedRegion, r.hdr, r.id, errDetached, nil)
	}
	return rt.fault(FaultDeletedRegion, r.hdr, r.id, errDeleted, nil)
}

// Ralloc allocates size bytes of cleared memory with the given cleanup in
// region r (the paper's ralloc). One word of bookkeeping precedes the data.
// Ralloc panics with a *Fault on OOM; TryRalloc is the graceful variant.
func (rt *Runtime) Ralloc(r *Region, size int, cln CleanupID) Ptr {
	p, err := rt.TryRalloc(r, size, cln)
	if err != nil {
		panic(err)
	}
	return p
}

// TryRalloc is Ralloc returning a *Fault (kind FaultOOM) instead of
// panicking when the simulated OS refuses pages. On failure the region is
// unchanged.
func (rt *Runtime) TryRalloc(r *Region, size int, cln CleanupID) (Ptr, error) {
	if err := rt.checkLive(r); err != nil {
		return 0, err
	}
	hdr := rt.encodeCleanup(cln, false)
	old := rt.space.SetMode(stats.ModeAlloc)
	defer rt.space.SetMode(old)
	rt.charge(stats.ModeAlloc, 4)

	data := align4(size)
	p := rt.bump(r, offNormalFirst, offNormalAvail, data+mem.WordSize)
	if p == 0 {
		return 0, rt.oomFault("ralloc", r.id)
	}
	rt.space.Store(p, hdr)
	rt.space.ZeroRange(p+mem.WordSize, data)

	r.bytes += uint64(data)
	r.allocs++
	rt.c.AddAlloc(int64(data))
	if rt.tracer != nil {
		rt.tracer.Emit(trace.Event{Kind: trace.KindRalloc, Region: r.id,
			Addr: p + mem.WordSize, Size: int32(data), Aux: -1,
			Site: rt.cleanups[cln-1].name})
	}
	if m := rt.met; m != nil {
		m.allocs.Inc()
		m.allocBytes.Add(uint64(data))
		m.allocSize.Observe(uint64(data))
		m.reg.SampleAlloc(rt.cleanups[cln-1].name, uint64(data))
	}
	return p + mem.WordSize, nil
}

// RarrayAlloc allocates a cleared array of n elements of elemSize bytes in
// region r (the paper's rarrayalloc). Three words of bookkeeping — cleanup,
// count, element size — precede the data, the paper's twelve bytes.
// RarrayAlloc panics with a *Fault on OOM; TryRarrayAlloc is the graceful
// variant.
func (rt *Runtime) RarrayAlloc(r *Region, n, elemSize int, cln CleanupID) Ptr {
	p, err := rt.TryRarrayAlloc(r, n, elemSize, cln)
	if err != nil {
		panic(err)
	}
	return p
}

// TryRarrayAlloc is RarrayAlloc returning a *Fault (kind FaultOOM) instead
// of panicking when the simulated OS refuses pages. On failure the region is
// unchanged.
func (rt *Runtime) TryRarrayAlloc(r *Region, n, elemSize int, cln CleanupID) (Ptr, error) {
	if err := rt.checkLive(r); err != nil {
		return 0, err
	}
	if n < 0 || elemSize < 0 {
		panic("core: negative array allocation")
	}
	hdr := rt.encodeCleanup(cln, true)
	old := rt.space.SetMode(stats.ModeAlloc)
	defer rt.space.SetMode(old)
	rt.charge(stats.ModeAlloc, 5)

	esz := align4(elemSize)
	data := esz * n
	p := rt.bump(r, offNormalFirst, offNormalAvail, data+3*mem.WordSize)
	if p == 0 {
		return 0, rt.oomFault("rarrayalloc", r.id)
	}
	rt.space.Store(p, hdr)
	rt.space.Store(p+4, Ptr(n))
	rt.space.Store(p+8, Ptr(esz))
	rt.space.ZeroRange(p+12, data)

	r.bytes += uint64(data)
	r.allocs++
	rt.c.AddAlloc(int64(data))
	if rt.tracer != nil {
		rt.tracer.Emit(trace.Event{Kind: trace.KindRarrayAlloc, Region: r.id,
			Addr: p + 3*mem.WordSize, Size: int32(data), Aux: int32(n),
			Site: rt.cleanups[cln-1].name})
	}
	if m := rt.met; m != nil {
		m.allocs.Inc()
		m.allocBytes.Add(uint64(data))
		m.allocSize.Observe(uint64(data))
		m.reg.SampleAlloc(rt.cleanups[cln-1].name, uint64(data))
	}
	return p + 3*mem.WordSize, nil
}

// RstrAlloc allocates size bytes of region-pointer-free memory in region r
// (the paper's rstralloc). The memory is not cleared, carries no
// bookkeeping, and is never scanned at deletion. RstrAlloc panics with a
// *Fault on OOM; TryRstrAlloc is the graceful variant.
func (rt *Runtime) RstrAlloc(r *Region, size int) Ptr {
	p, err := rt.TryRstrAlloc(r, size)
	if err != nil {
		panic(err)
	}
	return p
}

// TryRstrAlloc is RstrAlloc returning a *Fault (kind FaultOOM) instead of
// panicking when the simulated OS refuses pages. On failure the region is
// unchanged.
//
// Requests no larger than the pool ceiling first probe the region's
// capacity-class free list of explicitly freed blocks (see strpool.go); a
// hit recycles without touching the bump state or the page lists. A miss —
// and every request when Options.NoStrPool is set or no block was ever
// freed — bump-allocates exactly align4(size) bytes at exactly the address
// the paper's allocator would return.
func (rt *Runtime) TryRstrAlloc(r *Region, size int) (Ptr, error) {
	if err := rt.checkLive(r); err != nil {
		return 0, err
	}
	old := rt.space.SetMode(stats.ModeAlloc)
	defer rt.space.SetMode(old)
	rt.charge(stats.ModeAlloc, 4)

	data := align4(size)
	idx := -1
	if data <= rt.strCeil {
		idx = strClassIdx(data)
	}
	var p Ptr
	if idx >= 0 && rt.strPooling {
		p = rt.strPoolTake(r, idx, data)
	}
	reused := p != 0
	if !reused {
		p = rt.bump(r, offStringFirst, offStringAvail, data)
		if p == 0 {
			return 0, rt.oomFault("rstralloc", r.id)
		}
		if idx >= 0 {
			rt.strNew[idx]++
		} else {
			rt.strBig++
		}
	} else {
		rt.strReuse[idx]++
	}

	r.bytes += uint64(data)
	r.allocs++
	rt.c.AddAlloc(int64(data))
	if rt.tracer != nil {
		aux := int32(-1)
		if reused {
			aux = 1
		}
		rt.tracer.Emit(trace.Event{Kind: trace.KindRstrAlloc, Region: r.id,
			Addr: p, Size: int32(data), Aux: aux})
	}
	if m := rt.met; m != nil {
		m.allocs.Inc()
		m.allocBytes.Add(uint64(data))
		m.allocSize.Observe(uint64(data))
		if reused {
			m.strReuse.Inc()
		} else if idx >= 0 {
			m.strNew.Inc()
		} else {
			m.strBig.Inc()
		}
		m.reg.SampleAlloc(rt.strSiteKey(idx), uint64(data))
	}
	return p, nil
}

// RstrFree returns the size-byte rstralloc block at p to region r's string
// pool for reuse by later rstrallocs of the same (or a smaller) capacity.
// The string side carries no per-object bookkeeping, so — exactly like the
// paper's cleanup functions reporting object sizes — the caller states the
// size it allocated. Freeing is optional: unfreed string memory is
// reclaimed at region deletion, as always. RstrFree panics with a *Fault on
// misuse; TryRstrFree is the graceful variant.
func (rt *Runtime) RstrFree(r *Region, p Ptr, size int) {
	if err := rt.TryRstrFree(r, p, size); err != nil {
		panic(err)
	}
}

// TryRstrFree is the free primitive behind RstrFree. It charges 2 ModeFree
// cycles (the ownership probe and the list push), poisons the block
// (uncharged, like every freed-memory fill), and parks it on the region's
// floor-capacity-class free list. Blocks above the pool ceiling, and every
// free under Options.NoStrPool, are accounting-only: the bytes stop
// counting as live and the memory waits for region deletion.
//
// Misuse is reported as a *Fault: freeing into a dead region
// (FaultDeletedRegion and friends) or freeing a pointer r does not own
// (FaultDanglingDestroy). A double free is not detectable here — the string
// side has no headers — but leaves two pool entries over one extent, which
// Verify's overlap check reports.
func (rt *Runtime) TryRstrFree(r *Region, p Ptr, size int) error {
	if err := rt.checkLive(r); err != nil {
		return err
	}
	if p == 0 || p%mem.WordSize != 0 {
		panic("core: RstrFree of nil or unaligned pointer")
	}
	if size <= 0 {
		panic("core: RstrFree of non-positive size")
	}
	old := rt.space.SetMode(stats.ModeFree)
	defer rt.space.SetMode(old)
	rt.charge(stats.ModeFree, 2)

	data := align4(size)
	if owner, _ := rt.regionOf(p); owner != r {
		return rt.fault(FaultDanglingDestroy, p, r.id,
			"core: RstrFree of pointer outside the region", nil)
	}
	pooled := rt.strPooling && data <= rt.strCeil && int(p%mem.PageSize)+data <= mem.PageSize
	if pooled {
		if !rt.opts.NoPoison {
			rt.space.PoisonRange(p, data)
		}
		rt.strPoolPut(r, p, data)
	}
	r.bytes -= uint64(data)
	rt.c.AddFree(int64(data))
	if data <= rt.strCeil {
		rt.strFreed[strClassIdx(data)]++
	}
	if rt.tracer != nil {
		aux := int32(0)
		if pooled {
			aux = 1
		}
		rt.tracer.Emit(trace.Event{Kind: trace.KindRstrFree, Region: r.id,
			Addr: p, Size: int32(data), Aux: aux})
	}
	if m := rt.met; m != nil {
		m.strFrees.Inc()
		m.strFreeBytes.Add(uint64(data))
	}
	return nil
}

// ---------------------------------------------------------------------------
// Deletion

// DeleteRegion attempts to delete r (the paper's deleteregion). Under a safe
// runtime the deletion succeeds only if there are no external references to
// objects in r: the unscanned portion of the shadow stack is scanned first
// so the region's reference count is exact, and a nonzero count makes
// DeleteRegion a failing no-op. On success the region's cleanups run and all
// its pages return to the free page list.
//
// Deleting an already-deleted region panics with a *Fault of kind
// FaultDeletedRegion: the paper's API nulls the caller's handle on success,
// which Go handles cannot express. TryDeleteRegion is the graceful variant
// and the primitive this method derives from (see docs/API.md).
func (rt *Runtime) DeleteRegion(r *Region) bool {
	ok, err := rt.TryDeleteRegion(r)
	if err != nil {
		panic(err)
	}
	return ok
}

// TryDeleteRegion is the deletion primitive. It reports whether r was
// deleted; live external references make it a failing no-op returning
// (false, nil), exactly like DeleteRegion. Misuse — deleting an
// already-deleted region — returns (false, *Fault) with kind
// FaultDeletedRegion instead of panicking. A nil region is an API-misuse
// panic, as everywhere else in the runtime.
func (rt *Runtime) TryDeleteRegion(r *Region) (bool, error) {
	if r == nil {
		panic("core: nil region")
	}
	if r.deleted {
		return false, rt.deletedFault(r)
	}

	if rt.safe {
		// Scan all frames but the active one; the active frame (which plays
		// the role of deleteregion's own frame, not itself scanned) is
		// counted temporarily so the reference count read below is exact.
		// Under the EagerLocals ablation the count is always exact and no
		// scanning happens.
		var active *Frame
		if !rt.opts.EagerLocals {
			rt.stack.scanForDelete()
			if n := len(rt.stack.frames); n > 0 {
				active = rt.stack.frames[n-1]
			}
		}
		mode := rt.space.SetMode(stats.ModeScan)
		if active != nil {
			rt.stack.countFrame(active, +1)
		}
		rc := rt.space.Load(r.hdr + offRC)
		if active != nil {
			rt.stack.countFrame(active, -1)
		}
		rt.space.SetMode(mode)
		if rc != 0 {
			rt.c.DeleteFails++
			if rt.tracer != nil {
				rt.tracer.Emit(trace.Event{Kind: trace.KindRegionDeleteFail,
					Region: r.id, Aux: int32(rc)})
			}
			if m := rt.met; m != nil {
				m.deleteFails.Inc()
			}
			return false, nil
		}
		rt.runCleanups(r)
	}

	// The string pool dies with the region: its blocks live on the string
	// pages released below, so only the host-side lists and gauges retire.
	rt.strPoolClear(r)

	// Return every page-list entry of both allocators to the free list. Both
	// list heads are read before anything is released: the region header
	// lives on the normal list's home page, and releasing poisons it. Under
	// DeferredDelete the same walk detaches instead: identical free-list
	// updates (so reuse order and the allocation address stream match the
	// synchronous path exactly), with poisoning and the per-page charge left
	// as sweep debt.
	old := rt.space.SetMode(stats.ModeFree)
	heads := [2]Ptr{rt.space.Load(r.hdr + offNormalFirst), rt.space.Load(r.hdr + offStringFirst)}
	for _, entry := range heads {
		for entry != 0 {
			link := rt.space.Load(entry + pageLink)
			next := link &^ Ptr(mem.PageSize-1)
			count := int(link&(mem.PageSize-1)) + 1
			if rt.opts.DeferredDelete {
				rt.detachEntry(entry, count, r)
			} else {
				rt.releaseEntry(entry, count)
			}
			entry = next
		}
	}
	rt.space.SetMode(old)

	r.deleted = true
	rt.c.RegionDeleted(r.bytes)
	if rt.tracer != nil {
		bytes := r.bytes
		if bytes > 1<<31-1 {
			bytes = 1<<31 - 1
		}
		rt.tracer.Emit(trace.Event{Kind: trace.KindRegionDelete, Region: r.id,
			Size: int32(bytes), Aux: int32(r.allocs)})
	}
	if m := rt.met; m != nil {
		m.regionsDeleted.Inc()
		m.liveRegions.Dec()
		m.regionLifetime.Observe(rt.c.TotalCycles() - r.born)
	}
	return true, nil
}

// FinalizeStats folds regions still live at the end of a run into the
// statistics (the Max. kbytes in region column counts them too).
func (rt *Runtime) FinalizeStats() {
	for _, r := range rt.regions {
		if !r.deleted && r.bytes > rt.c.MaxRegionBytes {
			rt.c.MaxRegionBytes = r.bytes
		}
	}
}

// Bytes returns the total program-requested bytes allocated in r so far.
func (r *Region) Bytes() uint64 { return r.bytes }

// Allocs returns the number of allocations made in r so far.
func (r *Region) Allocs() uint64 { return r.allocs }

// Deleted reports whether r has been successfully deleted.
func (r *Region) Deleted() bool { return r.deleted }

// RC returns r's current (deferred, not necessarily exact) reference count.
// It exists for tests and diagnostics and charges no cycles.
func (r *Region) RC() Word {
	var rc Word
	r.rt.space.Uncharged(func() { rc = r.rt.space.Load(r.hdr + offRC) })
	return rc
}

// Word is re-exported for convenience in package users.
type Word = mem.Word

// Detached reports whether r has been deleted but still has pages awaiting
// the incremental sweeper (Options.DeferredDelete).
func (r *Region) Detached() bool { return r.deleted && r.unswept > 0 }

// Migrated reports whether r was handed off to another runtime by
// ExportRegion; such a handle is a tombstone and every operation on it
// faults with FaultMigratedRegion.
func (r *Region) Migrated() bool { return r.migrated }

// LiveRegions returns the runtime's live (not deleted, not migrated-away)
// regions in creation order. Host-side only: it charges no simulated cycles
// and exists for migration coordinators and diagnostics.
func (rt *Runtime) LiveRegions() []*Region {
	var out []*Region
	for _, r := range rt.regions {
		if !r.deleted {
			out = append(out, r)
		}
	}
	return out
}

// String implements fmt.Stringer for diagnostics.
func (r *Region) String() string {
	state := "live"
	if r.deleted {
		state = "deleted"
		if r.unswept > 0 {
			state = fmt.Sprintf("detached, %d unswept pages", r.unswept)
		}
	}
	return fmt.Sprintf("region#%d(%s, %d bytes, %d allocs)", r.id, state, r.bytes, r.allocs)
}
