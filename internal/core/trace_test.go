package core

import (
	"sync"
	"testing"

	"regions/internal/trace"
)

// TestTraceEventOrdering runs a workload with allocations, barriers, a
// refused deletion, and cleanups, then checks the ordering guarantees
// docs/OBSERVABILITY.md promises: every region-delete is preceded by its
// region-create and by the cleanup events of all the region's objects, and
// is the last event naming its region.
func TestTraceEventOrdering(t *testing.T) {
	rt, _ := newRT(true)
	tr := trace.New(1 << 12)
	rt.SetTracer(tr)

	cln := rt.SizeCleanup(16)
	f := rt.PushFrame(2)

	r1 := rt.NewRegion()
	r2 := rt.NewRegion()
	p1 := rt.Ralloc(r1, 16, cln)
	p2 := rt.Ralloc(r2, 16, cln)
	rt.RstrAlloc(r1, 8)

	// A cross-region heap pointer blocks r2's deletion once. The deletion
	// runs in an inner activation so the outer frame gets scanned (the
	// active frame never is) and unscanned when control returns.
	rt.StorePtr(p1, p2)
	f.Set(0, p1)
	rt.PushFrame(1)
	if rt.DeleteRegion(r2) {
		t.Fatal("delete of externally referenced region succeeded")
	}
	rt.PopFrame()
	rt.StorePtr(p1, 0)
	f.Set(0, 0)
	if !rt.DeleteRegion(r2) || !rt.DeleteRegion(r1) {
		t.Fatal("deletes failed after clearing references")
	}
	rt.PopFrame()

	evs := tr.Events()
	if tr.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; enlarge the buffer", tr.Dropped())
	}

	type state struct {
		createSeq  uint64
		created    bool
		deleteSeq  uint64
		deleted    bool
		allocs     int
		cleanups   int
		afterDeath int // events naming the region after its delete
	}
	regions := map[int32]*state{}
	get := func(id int32) *state {
		s, ok := regions[id]
		if !ok {
			s = &state{}
			regions[id] = s
		}
		return s
	}
	var sawFail, sawScan, sawUnscan, sawBarrier bool
	for i, ev := range evs {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d: Events() not in emission order", i, ev.Seq)
		}
		if i > 0 && ev.Cycle < evs[i-1].Cycle {
			t.Fatalf("cycle went backwards at seq %d: %d -> %d", i, evs[i-1].Cycle, ev.Cycle)
		}
		switch ev.Kind {
		case trace.KindRegionCreate:
			s := get(ev.Region)
			s.createSeq, s.created = ev.Seq, true
		case trace.KindRegionDelete:
			s := get(ev.Region)
			s.deleteSeq, s.deleted = ev.Seq, true
		case trace.KindRegionDeleteFail:
			sawFail = true
		case trace.KindRalloc, trace.KindRarrayAlloc, trace.KindRstrAlloc:
			s := get(ev.Region)
			s.allocs++
			if s.deleted {
				s.afterDeath++
			}
		case trace.KindCleanup:
			s := get(ev.Region)
			s.cleanups++
			if s.deleted {
				s.afterDeath++
			}
		case trace.KindStackScan:
			sawScan = true
		case trace.KindStackUnscan:
			sawUnscan = true
		case trace.KindBarrierGlobal, trace.KindBarrierRegion, trace.KindBarrierElided:
			sawBarrier = true
		}
	}

	if len(regions) != 2 {
		t.Fatalf("traced %d regions, want 2", len(regions))
	}
	for id, s := range regions {
		if !s.created || !s.deleted {
			t.Fatalf("region %d: created=%v deleted=%v", id, s.created, s.deleted)
		}
		if s.createSeq >= s.deleteSeq {
			t.Errorf("region %d: create seq %d not before delete seq %d",
				id, s.createSeq, s.deleteSeq)
		}
		if s.afterDeath != 0 {
			t.Errorf("region %d: %d events after its region-delete", id, s.afterDeath)
		}
	}
	// Each region got one ralloc with a size cleanup; r1 also an rstralloc.
	if s := get(regionID(r1)); s.allocs != 2 || s.cleanups != 1 {
		t.Errorf("r1: %d allocs, %d cleanups; want 2, 1", s.allocs, s.cleanups)
	}
	if s := get(regionID(r2)); s.allocs != 1 || s.cleanups != 1 {
		t.Errorf("r2: %d allocs, %d cleanups; want 1, 1", s.allocs, s.cleanups)
	}
	if !sawFail {
		t.Error("no region-delete-fail traced for the refused deletion")
	}
	if !sawScan || !sawUnscan {
		t.Errorf("stack events missing: scan=%v unscan=%v", sawScan, sawUnscan)
	}
	if !sawBarrier {
		t.Error("no barrier events traced")
	}
}

// TestTraceCountersUnchanged checks that attaching a tracer does not perturb
// the simulated machine: a traced run and an untraced run of the same
// workload report identical cycle counters.
func TestTraceCountersUnchanged(t *testing.T) {
	run := func(tr *trace.Tracer) uint64 {
		rt, c := newRT(true)
		rt.SetTracer(tr)
		r := rt.NewRegion()
		cln := rt.SizeCleanup(16)
		for i := 0; i < 32; i++ {
			p := rt.Ralloc(r, 16, cln)
			rt.StorePtr(p, p)
			rt.StorePtr(p, 0)
		}
		if !rt.DeleteRegion(r) {
			t.Fatal("delete failed")
		}
		return c.TotalCycles()
	}
	untraced := run(nil)
	traced := run(trace.New(1 << 12))
	if untraced != traced {
		t.Fatalf("tracing changed the modelled clock: %d vs %d cycles", untraced, traced)
	}
}

// TestParTraceOrdering checks the ordering guarantees under the parallel
// extension with genuinely concurrent workers (run with -race): every
// par-region-delete is preceded by its par-region-create in the tracer's
// total order, and no par-write to a region is recorded after its deletion
// event.
func TestParTraceOrdering(t *testing.T) {
	const workers = 4
	const rounds = 50

	w := NewParWorld(workers)
	tr := trace.New(1 << 16)
	w.SetTracer(tr)

	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			wk := w.Worker(id)
			for i := 0; i < rounds; i++ {
				r := w.NewParRegion()
				regionOf := func(p Ptr) *ParRegion {
					if p != 0 {
						return r
					}
					return nil
				}
				var slot ParSlot
				wk.Write(&slot, 4096, regionOf)
				if w.TryDelete(r) {
					t.Error("delete succeeded with a live reference")
				}
				wk.Write(&slot, 0, regionOf)
				if !w.TryDelete(r) {
					t.Error("delete failed after clearing the slot")
				}
			}
		}(id)
	}
	wg.Wait()

	evs := tr.Events()
	if tr.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; enlarge the buffer", tr.Dropped())
	}
	created := map[int32]uint64{}
	deleted := map[int32]uint64{}
	var fails int
	for i, ev := range evs {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d: not a total order", i, ev.Seq)
		}
		switch ev.Kind {
		case trace.KindParRegionCreate:
			created[ev.Region] = ev.Seq
		case trace.KindParRegionDelete:
			cs, ok := created[ev.Region]
			if !ok {
				t.Fatalf("par region %d deleted without a create event", ev.Region)
			}
			if cs >= ev.Seq {
				t.Fatalf("par region %d: create seq %d not before delete seq %d",
					ev.Region, cs, ev.Seq)
			}
			deleted[ev.Region] = ev.Seq
		case trace.KindParRegionDeleteFail:
			fails++
		case trace.KindParWrite:
			// Writes that install a reference name the target region; none
			// may appear after that region's delete event.
			if ds, dead := deleted[ev.Region]; dead && ev.Seq > ds {
				t.Fatalf("par-write to region %d at seq %d after its delete at seq %d",
					ev.Region, ev.Seq, ds)
			}
		}
	}
	want := workers * rounds
	if len(created) != want || len(deleted) != want {
		t.Fatalf("created=%d deleted=%d, want %d each", len(created), len(deleted), want)
	}
	if fails != want {
		t.Fatalf("delete-fail events = %d, want %d", fails, want)
	}
}
