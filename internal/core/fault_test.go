package core

import (
	"errors"
	"testing"

	"regions/internal/mem"
	"regions/internal/trace"
)

// recoverFault runs fn expecting a panic carrying a *Fault of the given
// kind, returning the fault.
func recoverFault(t *testing.T, kind FaultKind, fn func()) *Fault {
	t.Helper()
	var f *Fault
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("no panic; want *Fault of kind %v", kind)
			}
			var ok bool
			if f, ok = r.(*Fault); !ok {
				t.Fatalf("panicked with %T (%v), want *Fault", r, r)
			}
		}()
		fn()
	}()
	if f.Kind != kind {
		t.Fatalf("fault kind %v, want %v (fault: %v)", f.Kind, kind, f)
	}
	return f
}

func TestTryNewRegionOOM(t *testing.T) {
	rt, _ := newRT(true)
	rt.Space().SetFaultPlan(&mem.FaultPlan{FailProb: 1, Seed: 1})
	r, err := rt.TryNewRegion()
	if r != nil || err == nil {
		t.Fatalf("TryNewRegion = (%v, %v), want (nil, error)", r, err)
	}
	if !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("error %v does not wrap mem.ErrOutOfMemory", err)
	}
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultOOM {
		t.Fatalf("error %v is not a FaultOOM *Fault", err)
	}
	// The failed create consumed no region id: the next create works and
	// the heap stays consistent.
	rt.Space().SetFaultPlan(nil)
	r2 := rt.NewRegion()
	if r2 == nil {
		t.Fatal("NewRegion after cleared plan failed")
	}
	if err := rt.Verify(); err != nil {
		t.Fatalf("Verify after failed create: %v", err)
	}
}

func TestTryAllocsOOMLeaveRegionUnchanged(t *testing.T) {
	rt, _ := newRT(true)
	r := rt.NewRegion()
	cln := rt.SizeCleanup(8)
	before := r.Bytes()

	rt.Space().SetFaultPlan(&mem.FaultPlan{FailProb: 1, Seed: 7})
	// A multi-page array allocation always needs fresh pages.
	if p, err := rt.TryRarrayAlloc(r, 4096, 8, cln); p != 0 || !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("TryRarrayAlloc = (%#x, %v), want OOM", p, err)
	}
	if p, err := rt.TryRstrAlloc(r, 4*mem.PageSize); p != 0 || !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("TryRstrAlloc = (%#x, %v), want OOM", p, err)
	}
	if p, err := rt.TryRalloc(r, 2*mem.PageSize, rt.SizeCleanup(2*mem.PageSize)); p != 0 || !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("TryRalloc = (%#x, %v), want OOM", p, err)
	}
	if r.Bytes() != before {
		t.Fatalf("failed allocations changed region byte count: %d -> %d", before, r.Bytes())
	}
	rt.Space().SetFaultPlan(nil)
	if err := rt.Verify(); err != nil {
		t.Fatalf("Verify after failed allocations: %v", err)
	}
	// The region still works.
	if p := rt.Ralloc(r, 8, cln); p == 0 {
		t.Fatal("Ralloc after cleared plan failed")
	}
	if err := rt.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestTryAllocGlobalsOOM(t *testing.T) {
	rt, _ := newRT(true)
	rt.Space().SetFaultPlan(&mem.FaultPlan{FailProb: 1, Seed: 3})
	if g, err := rt.TryAllocGlobals(8); g != 0 || !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("TryAllocGlobals = (%#x, %v), want OOM", g, err)
	}
	rt.Space().SetFaultPlan(nil)
	if g := rt.AllocGlobals(8); g == 0 {
		t.Fatal("AllocGlobals after cleared plan failed")
	}
}

func TestPanicPathsCarryTypedFaults(t *testing.T) {
	t.Run("oom", func(t *testing.T) {
		rt, _ := newRT(true)
		rt.Space().SetFaultPlan(&mem.FaultPlan{FailProb: 1, Seed: 1})
		f := recoverFault(t, FaultOOM, func() { rt.NewRegion() })
		if !errors.Is(f, mem.ErrOutOfMemory) {
			t.Fatalf("panic fault %v does not wrap ErrOutOfMemory", f)
		}
	})
	t.Run("deleted region", func(t *testing.T) {
		rt, _ := newRT(true)
		r := rt.NewRegion()
		if !rt.DeleteRegion(r) {
			t.Fatal("delete failed")
		}
		f := recoverFault(t, FaultDeletedRegion, func() { rt.Ralloc(r, 8, rt.SizeCleanup(8)) })
		if f.Region != r.id {
			t.Fatalf("fault region %d, want %d", f.Region, r.id)
		}
	})
	t.Run("stack underflow", func(t *testing.T) {
		rt, _ := newRT(true)
		recoverFault(t, FaultStackUnderflow, func() { rt.PopFrame() })
	})
	t.Run("rc underflow", func(t *testing.T) {
		rt, _ := newRT(true)
		r := rt.NewRegion()
		g := rt.AllocGlobals(1)
		p := rt.Ralloc(r, 8, rt.SizeCleanup(8))
		rt.StoreGlobalPtr(g, p)
		// Corrupt the stored count below the true external count, then
		// clear the global: the decrement underflows.
		rt.Space().Uncharged(func() { rt.Space().Store(r.hdr+offRC, 0) })
		recoverFault(t, FaultRCUnderflow, func() { rt.StoreGlobalPtr(g, 0) })
	})
	t.Run("dangling destroy", func(t *testing.T) {
		rt, _ := newRT(true)
		r := rt.NewRegion()
		p := rt.Ralloc(r, 8, rt.SizeCleanup(8))
		// Simulate the corruption this fault guards against: the region is
		// marked deleted but a pointer into it survives in a dying object.
		r.deleted = true
		recoverFault(t, FaultDanglingDestroy, func() { rt.Destroy(p) })
	})
	t.Run("corrupt header", func(t *testing.T) {
		rt, _ := newRT(true)
		r := rt.NewRegion()
		p := rt.Ralloc(r, 8, rt.SizeCleanup(8))
		rt.Space().Uncharged(func() { rt.Space().Store(p-4, 0xffff) })
		recoverFault(t, FaultCorruptHeader, func() { rt.DeleteRegion(r) })
	})
}

func TestFaultsEmitTraceEvents(t *testing.T) {
	rt, _ := newRT(true)
	tr := trace.New(64)
	rt.SetTracer(tr)
	rt.Space().SetFaultPlan(&mem.FaultPlan{FailProb: 1, Seed: 1})
	if _, err := rt.TryNewRegion(); err == nil {
		t.Fatal("expected OOM")
	}
	var found bool
	for _, ev := range tr.Events() {
		if ev.Kind == trace.KindFault && ev.Aux == int32(FaultOOM) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no KindFault event with Aux=FaultOOM in trace: %v", tr.Events())
	}
}

func TestFaultErrorFormatting(t *testing.T) {
	f := &Fault{Kind: FaultRCUnderflow, Addr: 0x2000, Region: 3, Context: "reference count underflow"}
	msg := f.Error()
	if msg == "" || f.Kind.String() != "rc-underflow" {
		t.Fatalf("unexpected formatting: %q / %q", msg, f.Kind.String())
	}
	for k := FaultOOM; k <= FaultInvariant; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

// TestEveryAllocatorSurvivesInjectedFailure is the acceptance test for the
// core runtime: under a seeded fault plan every allocation either succeeds
// or reports a typed OOM, and the heap verifies after each step.
func TestEveryAllocatorSurvivesInjectedFailure(t *testing.T) {
	for _, safe := range []bool{true, false} {
		name := "unsafe"
		if safe {
			name = "safe"
		}
		t.Run(name, func(t *testing.T) {
			rt, _ := newRT(safe)
			rt.Space().SetFaultPlan(&mem.FaultPlan{FailProb: 0.4, Seed: 99})
			cln := rt.SizeCleanup(16)
			var regions []*Region
			ooms := 0
			for i := 0; i < 60; i++ {
				r, err := rt.TryNewRegion()
				if err != nil {
					if !errors.Is(err, mem.ErrOutOfMemory) {
						t.Fatalf("untyped error: %v", err)
					}
					ooms++
					continue
				}
				regions = append(regions, r)
				for j := 0; j < 4; j++ {
					var err error
					switch j % 3 {
					case 0:
						_, err = rt.TryRalloc(r, 16, cln)
					case 1:
						_, err = rt.TryRarrayAlloc(r, 300, 16, cln)
					case 2:
						_, err = rt.TryRstrAlloc(r, 600)
					}
					if err != nil {
						if !errors.Is(err, mem.ErrOutOfMemory) {
							t.Fatalf("untyped error: %v", err)
						}
						ooms++
					}
				}
				if err := rt.Verify(); err != nil {
					t.Fatalf("Verify after round %d: %v", i, err)
				}
			}
			if ooms == 0 {
				t.Fatal("fault plan injected no failures; test is vacuous")
			}
			// Recovery: clear the plan, delete everything, verify.
			rt.Space().SetFaultPlan(nil)
			for _, r := range regions {
				if !rt.DeleteRegion(r) {
					t.Fatalf("delete of %v failed", r)
				}
			}
			if err := rt.Verify(); err != nil {
				t.Fatalf("Verify after drain: %v", err)
			}
		})
	}
}
