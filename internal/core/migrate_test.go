package core

import (
	"errors"
	"testing"

	"regions/internal/mem"
	"regions/internal/trace"
)

// buildMigratable fills r with the mix migration must carry intact: a linked
// list of intra-region pointers, an array, a multi-page object, and string
// payload. It returns the list head and the expected list values.
func buildMigratable(rt *Runtime, r *Region) (head Ptr, want []uint32) {
	cln := rt.SizeCleanup(8)
	for i := 0; i < 40; i++ {
		head = cons(rt, cln, r, uint32(i), head)
		want = append([]uint32{uint32(i)}, want...)
	}
	arr := rt.RarrayAlloc(r, 8, 8, rt.SizeCleanup(8))
	for i := 0; i < 8; i++ {
		rt.Space().Store(arr+Ptr(i*8), uint32(100+i))
	}
	big := rt.Ralloc(r, 2*mem.PageSize, rt.SizeCleanup(2*mem.PageSize))
	rt.Space().Store(big, 0xabc)
	rt.Space().Store(big+Ptr(2*mem.PageSize)-4, 0xdef)
	s := rt.RstrAlloc(r, 256)
	for i := 0; i < 256; i += 4 {
		rt.Space().Store(s+Ptr(i), uint32(0x51000+i))
	}
	return head, want
}

// walkList follows the cons list from head and returns the values found.
func walkList(rt *Runtime, head Ptr) []uint32 {
	var got []uint32
	for p := head; p != 0; p = rt.Space().Load(p + 4) {
		got = append(got, rt.Space().Load(p))
	}
	return got
}

func TestMigrateRoundTrip(t *testing.T) {
	src, _ := newRT(true)
	dst, _ := newRT(true)
	// Same cleanup names on both sides (ids may differ; see remap test).
	for _, rt := range []*Runtime{src, dst} {
		rt.SizeCleanup(8)
		rt.SizeCleanup(2 * mem.PageSize)
	}
	r := src.NewRegion()
	head, want := buildMigratable(src, r)
	sum := src.ContentChecksum(r)

	rec, err := src.ExportRegion(r)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if rec.Pages < 4 {
		t.Fatalf("record covers %d pages, want several", rec.Pages)
	}
	if !r.Migrated() || !r.Deleted() {
		t.Fatalf("exported handle not a tombstone: %v", r)
	}
	if err := src.Verify(); err != nil {
		t.Fatalf("donor verify after export: %v", err)
	}

	imp, err := dst.ImportRegion(rec)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if err := dst.Verify(); err != nil {
		t.Fatalf("receiver verify after import: %v", err)
	}
	if got := dst.ContentChecksum(imp); got != sum {
		t.Fatalf("content checksum changed across migration: %#x -> %#x", sum, got)
	}
	if imp.Bytes() != rec.Bytes || imp.Allocs() != rec.Allocs {
		t.Fatalf("imported stats %d/%d, record %d/%d",
			imp.Bytes(), imp.Allocs(), rec.Bytes, rec.Allocs)
	}

	newHead, ok := rec.Translate(head)
	if !ok {
		t.Fatalf("Translate(%#x) failed after import", head)
	}
	if got := walkList(dst, newHead); len(got) != len(want) {
		t.Fatalf("list length %d after migration, want %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("list[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	}
	if dst.RegionOf(newHead) != imp {
		t.Fatal("translated pointer not owned by the imported region")
	}

	// The imported region is fully live: it accepts allocations and deletes.
	p := dst.Ralloc(imp, 8, dst.SizeCleanup(8))
	dst.StorePtr(p+4, newHead)
	if !dst.DeleteRegion(imp) {
		t.Fatal("delete of imported region refused")
	}
	if err := dst.Verify(); err != nil {
		t.Fatalf("receiver verify after delete: %v", err)
	}
}

func TestMigrateTraceEvents(t *testing.T) {
	src, _ := newRT(true)
	dst, _ := newRT(true)
	ts, td := trace.New(64), trace.New(64)
	src.SetTracer(ts)
	dst.SetTracer(td)
	dst.SizeCleanup(8)
	r := src.NewRegion()
	src.Ralloc(r, 8, src.SizeCleanup(8))
	rec, err := src.ExportRegion(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.ImportRegion(rec); err != nil {
		t.Fatal(err)
	}
	find := func(tr *trace.Tracer, aux int32) *trace.Event {
		for _, ev := range tr.Events() {
			if ev.Kind == trace.KindMigrate && ev.Aux == aux {
				return &ev
			}
		}
		return nil
	}
	out := find(ts, 0)
	in := find(td, 1)
	if out == nil || in == nil {
		t.Fatalf("missing migrate events: export=%v import=%v", out, in)
	}
	if out.Size != int32(rec.Pages) || in.Size != int32(rec.Pages) {
		t.Fatalf("migrate events carry %d/%d pages, record has %d", out.Size, in.Size, rec.Pages)
	}
}

func TestExportRefusals(t *testing.T) {
	rt, _ := newRT(true)
	a, b := rt.NewRegion(), rt.NewRegion()
	cln := rt.SizeCleanup(8)
	pa := rt.Ralloc(a, 8, cln)
	pb := rt.Ralloc(b, 8, cln)
	rt.StorePtr(pa+4, pb) // a's data points into b: b's count is 1

	// b has a live external reference; a holds a cross-region pointer.
	if _, err := rt.ExportRegion(b); !errors.Is(err, ErrExportReferenced) {
		t.Fatalf("export of referenced region: %v, want ErrExportReferenced", err)
	}
	if _, err := rt.ExportRegion(a); !errors.Is(err, ErrExportCrossRegion) {
		t.Fatalf("export of region with outbound pointer: %v, want ErrExportCrossRegion", err)
	}
	// Refusals leave both regions fully usable.
	if b.Deleted() || a.Deleted() {
		t.Fatal("refused export marked a region dead")
	}
	rt.Ralloc(a, 8, cln)
	rt.Ralloc(b, 8, cln)
	if err := rt.Verify(); err != nil {
		t.Fatalf("verify after refused exports: %v", err)
	}

	// Severing the link makes b exportable.
	rt.StorePtr(pa+4, 0)
	if _, err := rt.ExportRegion(b); err != nil {
		t.Fatalf("export after severing reference: %v", err)
	}
	if err := rt.Verify(); err != nil {
		t.Fatalf("verify after export: %v", err)
	}
}

func TestExportRefusedByFrameSlot(t *testing.T) {
	rt, _ := newRT(true)
	r := rt.NewRegion()
	p := rt.Ralloc(r, 8, rt.SizeCleanup(8))
	f := rt.PushFrame(1)
	f.Set(0, p)
	// The active frame is temp-counted by the quiesce check, exactly as
	// deleteregion would count it.
	if _, err := rt.ExportRegion(r); !errors.Is(err, ErrExportReferenced) {
		t.Fatalf("export with live frame slot: %v, want ErrExportReferenced", err)
	}
	f.Set(0, 0)
	if _, err := rt.ExportRegion(r); err != nil {
		t.Fatalf("export after clearing slot: %v", err)
	}
	rt.PopFrame()
	if err := rt.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestImportCleanupRemapByName(t *testing.T) {
	src, _ := newRT(true)
	dst, _ := newRT(true)
	// Different registration order: the id of "size8" differs between the
	// runtimes, so the import must rewrite headers, not copy them.
	dst.RegisterCleanup("padding-a", func(*Runtime, Ptr) int { return 4 })
	dst.RegisterCleanup("padding-b", func(*Runtime, Ptr) int { return 4 })
	srcID := src.SizeCleanup(8)
	dstID := dst.SizeCleanup(8)
	if srcID == dstID {
		t.Fatal("test needs differing cleanup ids")
	}

	r := src.NewRegion()
	buildMigratable(src, r)
	sum := src.ContentChecksum(r)

	rec, err := src.ExportRegion(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.ImportRegion(rec); !errors.Is(err, ErrImportCleanup) {
		t.Fatalf("import without size%d cleanup: %v, want ErrImportCleanup", 2*mem.PageSize, err)
	}
	dst.SizeCleanup(2 * mem.PageSize)
	imp, err := dst.ImportRegion(rec)
	if err != nil {
		t.Fatalf("import after registering: %v", err)
	}
	if err := dst.Verify(); err != nil {
		t.Fatalf("receiver verify: %v", err)
	}
	// Checksums fold cleanup ids raw, so they are not comparable across
	// differing registration orders — but a second migration back to a
	// runtime with the source's registration order must restore the digest.
	back, _ := newRT(true)
	back.SizeCleanup(8)
	back.SizeCleanup(2 * mem.PageSize)
	rec2, err := dst.ExportRegion(imp)
	if err != nil {
		t.Fatalf("re-export: %v", err)
	}
	imp2, err := back.ImportRegion(rec2)
	if err != nil {
		t.Fatalf("re-import: %v", err)
	}
	if got := back.ContentChecksum(imp2); got != sum {
		t.Fatalf("digest after two hops %#x, want %#x", got, sum)
	}
	if !back.DeleteRegion(imp2) {
		t.Fatal("delete after two hops refused")
	}
	if err := back.Verify(); err != nil {
		t.Fatalf("verify after delete: %v", err)
	}
}

func TestMigratedHandleFaults(t *testing.T) {
	rt, _ := newRT(true)
	r := rt.NewRegion()
	rt.Ralloc(r, 8, rt.SizeCleanup(8))
	if _, err := rt.ExportRegion(r); err != nil {
		t.Fatal(err)
	}
	checkKind := func(err error) {
		t.Helper()
		var f *Fault
		if !errors.As(err, &f) || f.Kind != FaultMigratedRegion {
			t.Fatalf("stale-handle error %v, want FaultMigratedRegion", err)
		}
	}
	_, err := rt.TryRalloc(r, 8, rt.SizeCleanup(8))
	checkKind(err)
	_, err = rt.TryDeleteRegion(r)
	checkKind(err)
	_, err = rt.ExportRegion(r)
	checkKind(err)
	if !r.Migrated() {
		t.Fatal("Migrated() false on tombstone")
	}
}

func TestImportOOMRollsBack(t *testing.T) {
	src, _ := newRT(true)
	dst, _ := newRT(true)
	for _, rt := range []*Runtime{src, dst} {
		rt.SizeCleanup(8)
		rt.SizeCleanup(2 * mem.PageSize)
	}

	r := src.NewRegion()
	buildMigratable(src, r)
	sum := src.ContentChecksum(r)
	rec, err := src.ExportRegion(r)
	if err != nil {
		t.Fatal(err)
	}

	dst.Space().SetPageLimit(2) // too small for the record's pages
	if _, err := dst.ImportRegion(rec); !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("import under page limit: %v, want OOM", err)
	}
	if err := dst.Verify(); err != nil {
		t.Fatalf("receiver verify after failed import: %v", err)
	}
	if n := len(dst.LiveRegions()); n != 0 {
		t.Fatalf("failed import left %d live regions", n)
	}

	dst.Space().SetPageLimit(0)
	imp, err := dst.ImportRegion(rec)
	if err != nil {
		t.Fatalf("retry import: %v", err)
	}
	if got := dst.ContentChecksum(imp); got != sum {
		t.Fatalf("digest after retried import %#x, want %#x", got, sum)
	}
	if err := dst.Verify(); err != nil {
		t.Fatalf("receiver verify after retry: %v", err)
	}
}

func TestContentChecksumPlacementIndependent(t *testing.T) {
	build := func(rt *Runtime) *Region {
		rt.SizeCleanup(8)
		rt.SizeCleanup(2 * mem.PageSize)
		r := rt.NewRegion()
		buildMigratable(rt, r)
		return r
	}
	a, _ := newRT(true)
	ra := build(a)

	// Same content, shifted placement: the second runtime burns address
	// space and a region slot first.
	b, _ := newRT(true)
	scratch := b.NewRegion()
	b.RstrAlloc(scratch, 3*mem.PageSize)
	rb := build(b)

	if sa, sb := a.ContentChecksum(ra), b.ContentChecksum(rb); sa != sb {
		t.Fatalf("checksums differ across placements: %#x vs %#x", sa, sb)
	}
}

func TestLiveRegionsAccessor(t *testing.T) {
	rt, _ := newRT(true)
	a := rt.NewRegion()
	b := rt.NewRegion()
	c := rt.NewRegion()
	rt.DeleteRegion(b)
	if _, err := rt.ExportRegion(c); err != nil {
		t.Fatal(err)
	}
	live := rt.LiveRegions()
	if len(live) != 1 || live[0] != a {
		t.Fatalf("LiveRegions = %v, want [region#0]", live)
	}
}
