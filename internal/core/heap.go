package core

import (
	"sort"

	"regions/internal/mem"
	"regions/internal/metrics"
)

// This file is the runtime's single heap-structure walk. Verify and the
// heap profiler used to duplicate it (as did Referrers, with a third copy
// of the entry iteration); now heapWalk audits the structural invariants —
// page census, page↔region map agreement, free-list poison, object-header
// parse — and, when asked, builds the machine-readable per-region report
// (metrics.HeapReport) behind cmd/regionstat and regionbench's /heap
// endpoint. One walk, two consumers: the profiler sees exactly the heap the
// verifier certifies, and a structurally broken heap yields a fault, not a
// bogus profile.

// HeapReport captures a per-region heap profile: page census, live bytes,
// occupancy, internal fragmentation, the string-vs-scanned split, and a
// live-object census by allocation site. The walk is uncharged and
// read-only, and it performs the same structural checks as Verify steps
// 1-5, so the report comes certified: a corrupt heap returns an error
// (*Fault of kind FaultInvariant) instead. Stack and reference-count
// invariants (Verify steps 6-7) are not checked here.
func (rt *Runtime) HeapReport() (*metrics.HeapReport, error) {
	var rep *metrics.HeapReport
	var f *Fault
	rt.space.Uncharged(func() { rep, f = rt.heapWalk(true) })
	if f != nil {
		return nil, f
	}
	return rep, nil
}

// heapWalk audits the heap's structural invariants (Verify steps 1-5) and,
// when collect is set, accumulates the per-region heap report along the
// way. With collect false it allocates nothing beyond the census map and
// behaves exactly as the verifier always has.
func (rt *Runtime) heapWalk(collect bool) (*metrics.HeapReport, *Fault) {
	seen := make(map[int]int32) // page number -> region whose list claims it

	var rep *metrics.HeapReport
	byID := map[int32]*metrics.RegionHeap{}
	if collect {
		rep = &metrics.HeapReport{
			SchemaVersion: metrics.HeapSchemaVersion,
			CapturedCycle: rt.c.TotalCycles(),
			MappedBytes:   rt.space.MappedBytes(),
			FreePages:     len(rt.freePages),
		}
	}

	// 1. Page census.
	for _, r := range rt.regions {
		if r.deleted {
			continue
		}
		if !rt.space.Mapped(r.hdr) {
			return nil, rt.invariant(r.hdr, r.id, "region header unmapped")
		}
		var rh *metrics.RegionHeap
		if collect {
			rep.Regions = append(rep.Regions, metrics.RegionHeap{
				ID: r.id, LiveBytes: r.bytes, Allocs: r.allocs,
			})
			rh = &rep.Regions[len(rep.Regions)-1]
			byID[r.id] = rh
		}
		var strPages map[int]bool // string-list page census for the pool audit
		var strHead, strAvail Ptr
		if r.strPool != nil {
			strPages = map[int]bool{}
		}
		for li, offs := range [2][2]Ptr{{offNormalFirst, offNormalAvail}, {offStringFirst, offStringAvail}} {
			avail := rt.space.Load(r.hdr + offs[1])
			if avail > mem.PageSize {
				return nil, rt.invariant(r.hdr+offs[1], r.id,
					"allocation offset %d exceeds page size", avail)
			}
			entry := rt.space.Load(r.hdr + offs[0])
			if rh != nil && entry != 0 {
				// Remaining bump space on the list's head page.
				rh.FreeBytes += uint64(mem.PageSize - avail)
			}
			if li == 1 {
				strHead, strAvail = entry, avail
			}
			steps := 0
			for entry != 0 {
				if steps++; steps > rt.space.NumPages() {
					return nil, rt.invariant(entry, r.id, "page list cycle")
				}
				if entry&(mem.PageSize-1) != 0 {
					return nil, rt.invariant(entry, r.id, "page-list entry not page-aligned")
				}
				if !rt.space.Mapped(entry) {
					return nil, rt.invariant(entry, r.id, "page-list entry unmapped")
				}
				link := rt.space.Load(entry + pageLink)
				count := int(link&(mem.PageSize-1)) + 1
				if rh != nil {
					if li == 0 {
						rh.NormalPages += count
					} else {
						rh.StringPages += count
					}
					rh.BookkeepingBytes += mem.WordSize // the entry's link word
				}
				for i := 0; i < count; i++ {
					pg := int(entry>>mem.PageShift) + i
					a := Ptr(pg) << mem.PageShift
					if !rt.space.Mapped(a) {
						return nil, rt.invariant(a, r.id, "page-list page unmapped")
					}
					if li == 1 && strPages != nil {
						strPages[pg] = true
					}
					if prev, dup := seen[pg]; dup {
						return nil, rt.invariant(a, r.id,
							"page also on region #%d's lists", prev)
					}
					seen[pg] = r.id
					if det := rt.pages.detachedAt(pg); det != nil {
						return nil, rt.invariant(a, r.id,
							"live page marked detached (from region #%d)", det.id)
					}
					if owner := rt.pages.ownerAt(pg); owner != r {
						ownerID := int32(-1)
						if owner != nil {
							ownerID = owner.id
						}
						return nil, rt.invariant(a, r.id,
							"page map attributes page to %d, page list to %d", ownerID, r.id)
					}
				}
				entry = link &^ Ptr(mem.PageSize-1)
			}
		}
		// 1.5: the string pool's free lists. Every parked block must sit on
		// one of r's own string pages, inside the allocated prefix of the
		// head page, in the class its capacity floors to, poisoned, and
		// non-overlapping; the recorded byte sum must match.
		if r.strPool != nil {
			if f := rt.checkStrPool(r, strPages, strHead, strAvail); f != nil {
				return nil, f
			}
		}
		if rh != nil {
			rh.Pages = rh.NormalPages + rh.StringPages
			rh.CapacityBytes = uint64(rh.Pages) * mem.PageSize
			rh.StrPoolBytes = r.strPoolBytes
			for _, list := range r.strPool {
				rh.StrPoolBlocks += len(list)
			}
			// The region structure and its coloring gap on the home page.
			color := r.hdr - (r.hdr &^ Ptr(mem.PageSize-1)) - mem.WordSize
			rh.BookkeepingBytes += uint64(color) + hdrBytes
		}
	}

	// 2. Page map, reverse direction.
	for pg, owner := range rt.pages.owners {
		if owner == nil {
			continue
		}
		a := Ptr(pg) << mem.PageShift
		if owner.deleted {
			return nil, rt.invariant(a, owner.id, "page map names deleted region")
		}
		if got, ok := seen[pg]; !ok || got != owner.id {
			return nil, rt.invariant(a, owner.id, "page not on its owner's page lists")
		}
	}

	// 3. Free lists. A detached page (deferred deletion, sweep pending) is
	// legitimately unpoisoned: it is counted here instead — flagged pages
	// must be unowned, attributed to a deleted region, still queued for the
	// sweeper, and sum to exactly the runtime's sweep debt and each source
	// region's unswept count.
	detachedSeen := 0
	detachedPer := map[*Region]int{}
	queued := map[int]bool{}
	for _, e := range rt.sweepq[rt.sweepHead:] {
		for i := 0; i < e.pages; i++ {
			queued[int(e.first>>mem.PageShift)+i] = true
		}
	}
	checkFree := func(p Ptr, n int) *Fault {
		for i := 0; i < n; i++ {
			pg := int(p>>mem.PageShift) + i
			a := Ptr(pg) << mem.PageShift
			if !rt.space.Mapped(a) {
				return rt.invariant(a, -1, "free page unmapped")
			}
			if owner := rt.pages.ownerAt(pg); owner != nil {
				return rt.invariant(a, owner.id, "free page has an owner")
			}
			if det := rt.pages.detachedAt(pg); det != nil {
				if !det.deleted {
					return rt.invariant(a, det.id, "detached page attributed to a live region")
				}
				if !queued[pg] {
					return rt.invariant(a, det.id, "detached page missing from the sweep queue")
				}
				detachedSeen++
				detachedPer[det]++
				continue // poison deferred until the sweep
			}
			if rt.opts.NoPoison {
				continue
			}
			for off := Ptr(0); off < mem.PageSize; off += mem.WordSize {
				if w := rt.space.Load(a + off); w != mem.PoisonWord {
					return rt.invariant(a+off, -1,
						"free page word is %#x, not poison (stray write after free?)", w)
				}
			}
		}
		return nil
	}
	for _, p := range rt.freePages {
		if f := checkFree(p, 1); f != nil {
			return nil, f
		}
	}
	if f := rt.spans.forEach(func(p Ptr, n int) *Fault {
		if rep != nil {
			rep.FreeSpanPages += n
		}
		return checkFree(p, n)
	}); f != nil {
		return nil, f
	}
	if detachedSeen != rt.sweepDebt {
		return nil, rt.invariant(0, -1,
			"sweep debt is %d pages but %d detached pages are on the free lists",
			rt.sweepDebt, detachedSeen)
	}
	for _, r := range rt.regions {
		if got := detachedPer[r]; r.unswept != got {
			return nil, rt.invariant(r.hdr, r.id,
				"region unswept count %d, %d of its detached pages on the free lists",
				r.unswept, got)
		}
	}
	if rep != nil {
		rep.DetachedPages = detachedSeen
	}

	// 4. Object headers (and, when collecting, the live-object census).
	if f := rt.censusObjects(byID, rep); f != nil {
		return nil, f
	}

	if rep != nil {
		rep.LiveRegions = len(rep.Regions)
		rep.Totals.ID = -1
		t := &rep.Totals
		for i := range rep.Regions {
			rh := &rep.Regions[i]
			if rh.LiveBytes > rh.NormalBytes {
				rh.StringBytes = rh.LiveBytes - rh.NormalBytes
			}
			if used := rh.LiveBytes + rh.BookkeepingBytes + rh.FreeBytes + rh.StrPoolBytes; rh.CapacityBytes > used {
				rh.FragBytes = rh.CapacityBytes - used
			}
			if rh.CapacityBytes > 0 {
				rh.OccupancyPct = 100 * float64(rh.LiveBytes) / float64(rh.CapacityBytes)
			}
			t.Pages += rh.Pages
			t.NormalPages += rh.NormalPages
			t.StringPages += rh.StringPages
			t.CapacityBytes += rh.CapacityBytes
			t.LiveBytes += rh.LiveBytes
			t.NormalBytes += rh.NormalBytes
			t.StringBytes += rh.StringBytes
			t.BookkeepingBytes += rh.BookkeepingBytes
			t.FreeBytes += rh.FreeBytes
			t.StrPoolBytes += rh.StrPoolBytes
			t.StrPoolBlocks += rh.StrPoolBlocks
			t.FragBytes += rh.FragBytes
			t.Objects += rh.Objects
			t.Allocs += rh.Allocs
		}
		if t.CapacityBytes > 0 {
			t.OccupancyPct = 100 * float64(t.LiveBytes) / float64(t.CapacityBytes)
		}
		rep.StrPool = strPoolReport(rt.StrPoolStats())
	}
	return rep, nil
}

// strPoolReport converts the runtime's pool counters to the report schema.
func strPoolReport(s StrPoolStats) *metrics.HeapStrPool {
	out := &metrics.HeapStrPool{
		Enabled:    s.Enabled,
		Ceiling:    s.Ceiling,
		New:        s.New,
		Reuse:      s.Reuse,
		Big:        s.Big,
		Freed:      s.Freed,
		ReuseRatio: s.ReuseRatio(),
	}
	for _, c := range s.Classes {
		if c.New == 0 && c.Reuse == 0 && c.Freed == 0 && c.FreeBlocks == 0 {
			continue // all-zero classes would dominate the table with noise
		}
		out.Classes = append(out.Classes, metrics.HeapStrClass{
			Size: c.Size, New: c.New, Reuse: c.Reuse, Freed: c.Freed,
			FreeBlocks: c.FreeBlocks, FreeBytes: c.FreeBytes,
		})
	}
	return out
}

// checkStrPool audits one region's string-pool free lists against the page
// census heapWalk just built: strPages is the set of pages on r's string
// list, strHead/strAvail the list's head page and its bump offset.
func (rt *Runtime) checkStrPool(r *Region, strPages map[int]bool, strHead, strAvail Ptr) *Fault {
	if !rt.strPooling {
		return rt.invariant(r.hdr, r.id, "string pool populated with pooling disabled")
	}
	var all []strBlock
	var bytes uint64
	for idx, list := range r.strPool {
		for _, b := range list {
			cap := int(b.cap)
			if b.p == 0 || b.p%mem.WordSize != 0 {
				return rt.invariant(b.p, r.id, "pooled string block misaligned")
			}
			if cap < strClassMin || cap > rt.strCeil || cap%mem.WordSize != 0 {
				return rt.invariant(b.p, r.id, "pooled string block capacity %d outside the pool", cap)
			}
			if strClassIdx(cap) != idx {
				return rt.invariant(b.p, r.id,
					"pooled string block capacity %d filed under class %d, not %d",
					cap, idx, strClassIdx(cap))
			}
			off := int(b.p % mem.PageSize)
			if off < mem.WordSize || off+cap > mem.PageSize {
				return rt.invariant(b.p, r.id,
					"pooled string block [%#x,+%d) crosses its page's bounds", b.p, cap)
			}
			pg := int(b.p >> mem.PageShift)
			if !strPages[pg] {
				return rt.invariant(b.p, r.id, "pooled string block not on the region's string pages")
			}
			if Ptr(pg)<<mem.PageShift == strHead && Ptr(off+cap) > strAvail {
				return rt.invariant(b.p, r.id,
					"pooled string block extends past the head page's bump offset")
			}
			if !rt.opts.NoPoison {
				for o := 0; o < cap; o += mem.WordSize {
					if w := rt.space.Load(b.p + Ptr(o)); w != mem.PoisonWord {
						return rt.invariant(b.p+Ptr(o), r.id,
							"pooled string block word is %#x, not poison (stray write after free?)", w)
					}
				}
			}
			bytes += uint64(cap)
			all = append(all, b)
		}
	}
	if bytes != r.strPoolBytes {
		return rt.invariant(r.hdr, r.id,
			"string pool bytes %d, blocks sum to %d", r.strPoolBytes, bytes)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].p < all[j].p })
	for i := 1; i < len(all); i++ {
		if all[i-1].p+Ptr(all[i-1].cap) > all[i].p {
			return rt.invariant(all[i].p, r.id,
				"pooled string blocks overlap (double free?): [%#x,+%d) and [%#x,+%d)",
				all[i-1].p, all[i-1].cap, all[i].p, all[i].cap)
		}
	}
	return nil
}

// censusObjects re-walks every live region's normal-allocator entries the
// way runCleanups would, dry-running cleanup functions (Destroy disabled
// via rt.verifying) to measure object extents without mutating counts.
// When rep is non-nil it also fills each region's object census — object
// count, data bytes, header bookkeeping — and the report's by-site census,
// attributing objects to their cleanup's registered name.
func (rt *Runtime) censusObjects(byID map[int32]*metrics.RegionHeap, rep *metrics.HeapReport) *Fault {
	rt.verifying = true
	defer func() { rt.verifying = false }()

	var sites map[string]*metrics.HeapSite
	if rep != nil {
		sites = map[string]*metrics.HeapSite{}
	}
	for _, r := range rt.regions {
		if r.deleted {
			continue
		}
		rh := byID[r.id]
		homePage := r.hdr &^ Ptr(mem.PageSize-1)
		entry := rt.space.Load(r.hdr + offNormalFirst)
		for entry != 0 {
			link := rt.space.Load(entry + pageLink)
			count := int(link&(mem.PageSize-1)) + 1
			end := entry + Ptr(count*mem.PageSize)
			p := entry + mem.WordSize
			if entry == homePage {
				p = r.hdr + hdrBytes
			}
			for p < end {
				hdr := rt.space.Load(p)
				if hdr == 0 {
					break // end of the entry's filled prefix
				}
				id := CleanupID(hdr &^ arrayFlag)
				if id <= 0 || int(id) > len(rt.cleanups) {
					return rt.invariant(p, r.id, "corrupt object header %#x", hdr)
				}
				var extent, data, book uint64
				if hdr&arrayFlag != 0 {
					n := uint64(rt.space.Load(p + 4))
					esz := uint64(rt.space.Load(p + 8))
					data = n * esz
					book = 3 * mem.WordSize
					extent = book + data
				} else {
					size := rt.cleanups[id-1].fn(rt, p+mem.WordSize)
					if size < 0 {
						return rt.invariant(p, r.id,
							"cleanup %q reported negative size %d", rt.cleanups[id-1].name, size)
					}
					data = uint64(align4(size))
					book = mem.WordSize
					extent = book + data
				}
				if uint64(p)+extent > uint64(end) {
					return rt.invariant(p, r.id,
						"object extent %d runs past its page entry", extent)
				}
				if rh != nil {
					rh.Objects++
					rh.NormalBytes += data
					rh.BookkeepingBytes += book
					name := rt.cleanups[id-1].name
					s, ok := sites[name]
					if !ok {
						s = &metrics.HeapSite{Site: name}
						sites[name] = s
					}
					s.Objects++
					s.Bytes += data
				}
				p += Ptr(extent)
			}
			entry = link &^ Ptr(mem.PageSize-1)
		}
	}
	if rep != nil {
		for _, s := range sites {
			rep.Sites = append(rep.Sites, *s)
		}
		sort.Slice(rep.Sites, func(i, j int) bool {
			if rep.Sites[i].Bytes != rep.Sites[j].Bytes {
				return rep.Sites[i].Bytes > rep.Sites[j].Bytes
			}
			return rep.Sites[i].Site < rep.Sites[j].Site
		})
	}
	return nil
}

// forEachNormalWord visits every nonzero word in reg's normal-allocator
// page entries, skipping the link words and the region structure — the
// scanned-data iteration shared by the reference-count verifier and
// Referrers, which used to carry independent copies of it.
func (rt *Runtime) forEachNormalWord(reg *Region, visit func(addr Ptr, v Word)) {
	homePage := reg.hdr &^ Ptr(mem.PageSize-1)
	entry := rt.space.Load(reg.hdr + offNormalFirst)
	for entry != 0 {
		link := rt.space.Load(entry + pageLink)
		count := int(link&(mem.PageSize-1)) + 1
		end := entry + Ptr(count*mem.PageSize)
		a := entry + mem.WordSize
		if entry == homePage {
			a = reg.hdr + hdrBytes
		}
		for ; a < end; a += mem.WordSize {
			if v := rt.space.Load(a); v != 0 {
				visit(a, v)
			}
		}
		entry = link &^ Ptr(mem.PageSize-1)
	}
}
