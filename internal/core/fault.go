package core

import (
	"fmt"

	"regions/internal/trace"
)

// This file is the runtime's structured failure model. The seed runtime
// reported every internal inconsistency as a bare panic("core: ...") string,
// which is undiagnosable after the fact: no address, no region, no trace.
// Every detectable fault is now a *Fault carrying kind, address, region id
// and context, emitted as a trace event (KindFault) before it unwinds, so a
// crash leaves a record in the ring buffer even when the panic message is
// lost. Out-of-memory faults additionally wrap the simulated OS's
// *mem.OOMError, so errors.Is(err, mem.ErrOutOfMemory) holds.

// FaultKind classifies a runtime fault.
type FaultKind uint8

// Fault kinds. OOM is the only recoverable kind (returned by the Try*
// allocation paths); the rest indicate a violated runtime invariant and are
// raised as panics carrying the *Fault.
const (
	// FaultOOM: the simulated OS refused pages and the allocator could not
	// satisfy the request.
	FaultOOM FaultKind = iota + 1
	// FaultRCUnderflow: a reference-count decrement found a zero count; the
	// barrier discipline was violated.
	FaultRCUnderflow
	// FaultCorruptHeader: deleteregion's cleanup walk found an object
	// header that is not a registered cleanup id.
	FaultCorruptHeader
	// FaultDeletedRegion: an operation targeted an already-deleted region.
	FaultDeletedRegion
	// FaultDanglingDestroy: a cleanup passed Destroy a pointer into a
	// deleted region.
	FaultDanglingDestroy
	// FaultStackUnderflow: PopFrame on an empty shadow stack.
	FaultStackUnderflow
	// FaultInvariant: Runtime.Verify found a heap invariant violated.
	FaultInvariant
	// FaultDetachedRegion: an operation — typically a double delete —
	// targeted a region that was deleted under Options.DeferredDelete and
	// whose pages the incremental sweeper has not yet reclaimed. The same
	// use-after-delete condition as FaultDeletedRegion, reported with the
	// state the offending pointer actually sees.
	FaultDetachedRegion
	// FaultMigratedRegion: an operation used a stale handle to a region
	// that Runtime.ExportRegion handed off to another runtime. The export
	// tombstone keeps the handle faulting here instead of silently touching
	// recycled pages; the live region is the handle ImportRegion returned on
	// the receiving runtime.
	FaultMigratedRegion
)

var faultNames = map[FaultKind]string{
	FaultOOM:             "oom",
	FaultRCUnderflow:     "rc-underflow",
	FaultCorruptHeader:   "corrupt-header",
	FaultDeletedRegion:   "deleted-region",
	FaultDanglingDestroy: "dangling-destroy",
	FaultStackUnderflow:  "stack-underflow",
	FaultInvariant:       "invariant",
	FaultDetachedRegion:  "detached-region",
	FaultMigratedRegion:  "migrated-region",
}

// String returns the fault kind's kebab-case name (also the trace event's
// Site).
func (k FaultKind) String() string {
	if s, ok := faultNames[k]; ok {
		return s
	}
	return "invalid"
}

// Fault is one structured runtime fault.
type Fault struct {
	Kind    FaultKind
	Addr    Ptr    // faulting heap address, or 0
	Region  int32  // region id involved, or -1
	Context string // operation context ("ralloc", "verify: ...", ...)
	Err     error  // underlying cause (*mem.OOMError for FaultOOM), or nil
}

// Error implements error.
func (f *Fault) Error() string {
	s := "core: " + f.Kind.String()
	if f.Region >= 0 {
		s += fmt.Sprintf(" region#%d", f.Region)
	}
	if f.Addr != 0 {
		s += fmt.Sprintf(" at %#x", f.Addr)
	}
	if f.Context != "" {
		s += ": " + f.Context
	}
	if f.Err != nil {
		s += ": " + f.Err.Error()
	}
	return s
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (f *Fault) Unwrap() error { return f.Err }

// fault builds a *Fault and emits it on the trace before the caller unwinds
// (or returns it), so the event precedes any crash in the recorded stream.
// Tracing charges no simulated cycles.
func (rt *Runtime) fault(kind FaultKind, addr Ptr, region int32, ctx string, err error) *Fault {
	f := &Fault{Kind: kind, Addr: addr, Region: region, Context: ctx, Err: err}
	if rt.tracer != nil {
		rt.tracer.Emit(trace.Event{Kind: trace.KindFault, Addr: addr,
			Region: region, Aux: int32(kind), Site: kind.String()})
	}
	return f
}

// oomFault wraps the space's most recent refused mapping as a FaultOOM for
// the allocation operation op.
func (rt *Runtime) oomFault(op string, region int32) *Fault {
	return rt.fault(FaultOOM, 0, region, op, rt.space.OOM("core: "+op))
}
