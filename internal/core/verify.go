package core

import (
	"fmt"

	"regions/internal/mem"
)

// This file is the heap-invariant verifier: an exhaustive, uncharged audit
// of every structural invariant the runtime maintains. The paper argues
// (Sections 4.2-4.3) that region reference counting makes deleteregion safe;
// Verify is the executable form of that argument. It walks the page→region
// map and every region's page lists, recomputes exact reference counts from
// heap contents, re-walks object headers the way deleteregion's cleanup pass
// would, checks free pages for poison integrity, and checks the shadow
// stack's high-water-mark invariant. The crash-consistency property tests
// call it after every operation while a FaultPlan injects MapPages failures,
// proving the failure paths leave the heap exactly as it was.

// Verify audits the runtime's heap invariants and returns nil if they all
// hold, or a *Fault of kind FaultInvariant describing the first violation.
// Verification charges no simulated cycles and does not perturb the heap;
// cleanup functions are dry-run to measure object extents, with Destroy
// disabled for the duration.
//
// Checks, in order:
//
//  1. Page census: both page lists of every live region are walked (with a
//     cycle bound); every page they cover must be mapped, claimed by exactly
//     one list, and attributed to that region in the page→region map.
//  2. Page map: every page the map attributes to a region must belong to a
//     live region and appear in that region's census.
//  3. Free lists: free pages and spans must be unowned and — unless
//     Options.NoPoison — still filled with mem.PoisonWord, so a stray write
//     into freed memory is detected.
//  4. Object headers: every normal-allocator entry's filled prefix must
//     parse as a sequence of valid headers whose extents (cleanup sizes,
//     array bounds) stay inside the entry.
//  5. Shadow stack: frames below the high-water mark are scanned, frames at
//     or above it are not, and the active frame is never scanned.
//  6. Reference counts (safe runtime only): each live region's stored count
//     must equal the count recomputed from heap contents — cross-region
//     words in scanned data, global words, and scanned frame slots (all
//     frame slots under EagerLocals).
//
// The recomputation in (6) reads raw heap words, so it assumes the C@
// discipline the paper's compiler enforces: a scanned-data word that equals
// a region address is a region pointer maintained through the write
// barriers. Programs that store integers aliasing heap addresses in ralloc'd
// memory will see false mismatches; the string allocator is exempt (never
// scanned, never counted).
func (rt *Runtime) Verify() error {
	var f *Fault
	rt.space.Uncharged(func() { f = rt.verify() })
	if f != nil {
		return f
	}
	return nil
}

// invariant builds the FaultInvariant fault for a Verify violation.
func (rt *Runtime) invariant(addr Ptr, region int32, format string, args ...interface{}) *Fault {
	return rt.fault(FaultInvariant, addr, region, fmt.Sprintf(format, args...), nil)
}

func (rt *Runtime) verify() *Fault {
	seen := make(map[int]int32) // page number -> region whose list claims it

	// 1. Page census.
	for _, r := range rt.regions {
		if r.deleted {
			continue
		}
		if !rt.space.Mapped(r.hdr) {
			return rt.invariant(r.hdr, r.id, "region header unmapped")
		}
		for _, offs := range [2][2]Ptr{{offNormalFirst, offNormalAvail}, {offStringFirst, offStringAvail}} {
			if avail := rt.space.Load(r.hdr + offs[1]); avail > mem.PageSize {
				return rt.invariant(r.hdr+offs[1], r.id,
					"allocation offset %d exceeds page size", avail)
			}
			entry := rt.space.Load(r.hdr + offs[0])
			steps := 0
			for entry != 0 {
				if steps++; steps > rt.space.NumPages() {
					return rt.invariant(entry, r.id, "page list cycle")
				}
				if entry&(mem.PageSize-1) != 0 {
					return rt.invariant(entry, r.id, "page-list entry not page-aligned")
				}
				if !rt.space.Mapped(entry) {
					return rt.invariant(entry, r.id, "page-list entry unmapped")
				}
				link := rt.space.Load(entry + pageLink)
				count := int(link&(mem.PageSize-1)) + 1
				for i := 0; i < count; i++ {
					pg := int(entry>>mem.PageShift) + i
					a := Ptr(pg) << mem.PageShift
					if !rt.space.Mapped(a) {
						return rt.invariant(a, r.id, "page-list page unmapped")
					}
					if prev, dup := seen[pg]; dup {
						return rt.invariant(a, r.id,
							"page also on region #%d's lists", prev)
					}
					seen[pg] = r.id
					if owner := rt.pages.ownerAt(pg); owner != r {
						ownerID := int32(-1)
						if owner != nil {
							ownerID = owner.id
						}
						return rt.invariant(a, r.id,
							"page map attributes page to %d, page list to %d", ownerID, r.id)
					}
				}
				entry = link &^ Ptr(mem.PageSize-1)
			}
		}
	}

	// 2. Page map, reverse direction.
	for pg, owner := range rt.pages.owners {
		if owner == nil {
			continue
		}
		a := Ptr(pg) << mem.PageShift
		if owner.deleted {
			return rt.invariant(a, owner.id, "page map names deleted region")
		}
		if got, ok := seen[pg]; !ok || got != owner.id {
			return rt.invariant(a, owner.id, "page not on its owner's page lists")
		}
	}

	// 3. Free lists.
	checkFree := func(p Ptr, n int) *Fault {
		for i := 0; i < n; i++ {
			pg := int(p>>mem.PageShift) + i
			a := Ptr(pg) << mem.PageShift
			if !rt.space.Mapped(a) {
				return rt.invariant(a, -1, "free page unmapped")
			}
			if owner := rt.pages.ownerAt(pg); owner != nil {
				return rt.invariant(a, owner.id, "free page has an owner")
			}
			if rt.opts.NoPoison {
				continue
			}
			for off := Ptr(0); off < mem.PageSize; off += mem.WordSize {
				if w := rt.space.Load(a + off); w != mem.PoisonWord {
					return rt.invariant(a+off, -1,
						"free page word is %#x, not poison (stray write after free?)", w)
				}
			}
		}
		return nil
	}
	for _, p := range rt.freePages {
		if f := checkFree(p, 1); f != nil {
			return f
		}
	}
	if f := rt.spans.forEach(checkFree); f != nil {
		return f
	}

	// 4. Object headers.
	if f := rt.verifyHeaders(); f != nil {
		return f
	}

	// 5. Shadow stack.
	s := &rt.stack
	if s.hwm < 0 || s.hwm > len(s.frames) {
		return rt.invariant(0, -1, "high-water mark %d outside stack of %d frames",
			s.hwm, len(s.frames))
	}
	for i, fr := range s.frames {
		if want := i < s.hwm; fr.scanned != want {
			return rt.invariant(0, -1, "frame %d scanned=%v under high-water mark %d",
				i, fr.scanned, s.hwm)
		}
	}
	if n := len(s.frames); n > 0 && s.frames[n-1].scanned {
		return rt.invariant(0, -1, "active frame is scanned")
	}

	// 6. Reference counts.
	if rt.safe {
		if f := rt.verifyRC(); f != nil {
			return f
		}
	}
	return nil
}

// verifyHeaders re-walks every live region's normal-allocator entries the
// way runCleanups would, dry-running cleanup functions (Destroy disabled via
// rt.verifying) to measure object extents without mutating counts.
func (rt *Runtime) verifyHeaders() *Fault {
	rt.verifying = true
	defer func() { rt.verifying = false }()

	for _, r := range rt.regions {
		if r.deleted {
			continue
		}
		homePage := r.hdr &^ Ptr(mem.PageSize-1)
		entry := rt.space.Load(r.hdr + offNormalFirst)
		for entry != 0 {
			link := rt.space.Load(entry + pageLink)
			count := int(link&(mem.PageSize-1)) + 1
			end := entry + Ptr(count*mem.PageSize)
			p := entry + mem.WordSize
			if entry == homePage {
				p = r.hdr + hdrBytes
			}
			for p < end {
				hdr := rt.space.Load(p)
				if hdr == 0 {
					break // end of the entry's filled prefix
				}
				id := CleanupID(hdr &^ arrayFlag)
				if id <= 0 || int(id) > len(rt.cleanups) {
					return rt.invariant(p, r.id, "corrupt object header %#x", hdr)
				}
				var extent uint64
				if hdr&arrayFlag != 0 {
					n := uint64(rt.space.Load(p + 4))
					esz := uint64(rt.space.Load(p + 8))
					extent = 3*mem.WordSize + n*esz
				} else {
					size := rt.cleanups[id-1].fn(rt, p+mem.WordSize)
					if size < 0 {
						return rt.invariant(p, r.id,
							"cleanup %q reported negative size %d", rt.cleanups[id-1].name, size)
					}
					extent = uint64(mem.WordSize + align4(size))
				}
				if uint64(p)+extent > uint64(end) {
					return rt.invariant(p, r.id,
						"object extent %d runs past its page entry", extent)
				}
				p += Ptr(extent)
			}
			entry = link &^ Ptr(mem.PageSize-1)
		}
	}
	return nil
}

// verifyRC recomputes every live region's exact reference count from heap
// contents and compares it to the stored count.
func (rt *Runtime) verifyRC() *Fault {
	want := make(map[int32]uint64)

	// Cross-region words in scanned (normal-allocator) data. Bookkeeping
	// words — page links, region header fields — only ever hold same-region
	// addresses, so walking whole entries over-counts nothing.
	for _, reg := range rt.regions {
		if reg.deleted {
			continue
		}
		homePage := reg.hdr &^ Ptr(mem.PageSize-1)
		entry := rt.space.Load(reg.hdr + offNormalFirst)
		for entry != 0 {
			link := rt.space.Load(entry + pageLink)
			count := int(link&(mem.PageSize-1)) + 1
			end := entry + Ptr(count*mem.PageSize)
			a := entry + mem.WordSize
			if entry == homePage {
				a = reg.hdr + hdrBytes
			}
			for ; a < end; a += mem.WordSize {
				if v := rt.space.Load(a); v != 0 {
					if t := rt.RegionOf(v); t != nil && t != reg {
						want[t.id]++
					}
				}
			}
			entry = link &^ Ptr(mem.PageSize-1)
		}
	}

	// Global storage, all segments ever allocated.
	ranges := append(append([][2]Ptr(nil), rt.globalRanges...),
		[2]Ptr{rt.globalSeg, rt.globalNext})
	for _, seg := range ranges {
		for a := seg[0]; a < seg[1]; a += mem.WordSize {
			if v := rt.space.Load(a); v != 0 {
				if t := rt.RegionOf(v); t != nil {
					want[t.id]++
				}
			}
		}
	}

	// Counted frame slots: scanned frames, or every frame under EagerLocals.
	for _, fr := range rt.stack.frames {
		if !fr.scanned && !rt.opts.EagerLocals {
			continue
		}
		for _, p := range fr.slots {
			if t := rt.RegionOf(p); t != nil {
				want[t.id]++
			}
		}
	}

	for _, r := range rt.regions {
		if r.deleted {
			continue
		}
		got := rt.space.Load(r.hdr + offRC)
		if uint64(got) != want[r.id] {
			return rt.invariant(r.hdr+offRC, r.id,
				"stored reference count %d, recomputed %d", got, want[r.id])
		}
	}
	return nil
}
