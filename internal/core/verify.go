package core

import (
	"fmt"

	"regions/internal/mem"
)

// This file is the heap-invariant verifier: an exhaustive, uncharged audit
// of every structural invariant the runtime maintains. The paper argues
// (Sections 4.2-4.3) that region reference counting makes deleteregion safe;
// Verify is the executable form of that argument. It walks the page→region
// map and every region's page lists, recomputes exact reference counts from
// heap contents, re-walks object headers the way deleteregion's cleanup pass
// would, checks free pages for poison integrity, and checks the shadow
// stack's high-water-mark invariant. The crash-consistency property tests
// call it after every operation while a FaultPlan injects MapPages failures,
// proving the failure paths leave the heap exactly as it was.
//
// The structural walk itself (steps 1-4) lives in heap.go as heapWalk,
// shared with the heap profiler: Runtime.HeapReport runs the same walk with
// collection enabled, so profiles are certified by the same checks.

// Verify audits the runtime's heap invariants and returns nil if they all
// hold, or a *Fault of kind FaultInvariant describing the first violation.
// Verification charges no simulated cycles and does not perturb the heap;
// cleanup functions are dry-run to measure object extents, with Destroy
// disabled for the duration.
//
// Checks, in order:
//
//  1. Page census: both page lists of every live region are walked (with a
//     cycle bound); every page they cover must be mapped, claimed by exactly
//     one list, and attributed to that region in the page→region map.
//  2. Page map: every page the map attributes to a region must belong to a
//     live region and appear in that region's census.
//  3. Free lists: free pages and spans must be unowned and — unless
//     Options.NoPoison — still filled with mem.PoisonWord, so a stray write
//     into freed memory is detected. Pages detached by a deferred deletion
//     (Options.DeferredDelete) are exempt from the poison check until the
//     incremental sweeper retires them; instead they must be attributed to
//     a deleted region, present in the sweep queue, and sum to exactly the
//     runtime's sweep debt and each region's unswept count.
//  4. Object headers: every normal-allocator entry's filled prefix must
//     parse as a sequence of valid headers whose extents (cleanup sizes,
//     array bounds) stay inside the entry.
//  5. String pools: every block parked on a region's capacity-class free
//     lists (RstrFree) must lie on that region's own string pages inside
//     the head page's allocated prefix, be filed under the class its
//     recorded capacity floors to, hold poison in every word (unless
//     Options.NoPoison), and overlap no other parked block; the region's
//     recorded pool byte total must equal the blocks' capacity sum. A
//     double RstrFree is caught here as an overlap.
//  6. Shadow stack: frames below the high-water mark are scanned, frames at
//     or above it are not, and the active frame is never scanned.
//  7. Reference counts (safe runtime only): each live region's stored count
//     must equal the count recomputed from heap contents — cross-region
//     words in scanned data, global words, and scanned frame slots (all
//     frame slots under EagerLocals).
//
// The recomputation in (7) reads raw heap words, so it assumes the C@
// discipline the paper's compiler enforces: a scanned-data word that equals
// a region address is a region pointer maintained through the write
// barriers. Programs that store integers aliasing heap addresses in ralloc'd
// memory will see false mismatches; the string allocator is exempt (never
// scanned, never counted).
func (rt *Runtime) Verify() error {
	var f *Fault
	rt.space.Uncharged(func() { f = rt.verify() })
	if f != nil {
		return f
	}
	return nil
}

// invariant builds the FaultInvariant fault for a Verify violation.
func (rt *Runtime) invariant(addr Ptr, region int32, format string, args ...interface{}) *Fault {
	return rt.fault(FaultInvariant, addr, region, fmt.Sprintf(format, args...), nil)
}

func (rt *Runtime) verify() *Fault {
	// 0. Translation cache: every last-region cache entry must agree with
	// the dense page index. Checked first — the RC recomputation below
	// translates through RegionOf, so a stale entry could otherwise fool
	// the very check meant to catch it.
	for i := range rt.lr {
		e := rt.lr[i]
		if owner := rt.pages.ownerAt(int(e.page)); owner != e.r {
			return rt.invariant(e.page<<mem.PageShift, regionID(e.r),
				"stale translation cache entry: page %d cached as region %d, owned by %d",
				e.page, regionID(e.r), regionID(owner))
		}
	}

	// 1-4. Heap structure: page census, page map, free lists, object headers.
	if _, f := rt.heapWalk(false); f != nil {
		return f
	}

	// 5. Shadow stack.
	s := &rt.stack
	if s.hwm < 0 || s.hwm > len(s.frames) {
		return rt.invariant(0, -1, "high-water mark %d outside stack of %d frames",
			s.hwm, len(s.frames))
	}
	for i, fr := range s.frames {
		if want := i < s.hwm; fr.scanned != want {
			return rt.invariant(0, -1, "frame %d scanned=%v under high-water mark %d",
				i, fr.scanned, s.hwm)
		}
	}
	if n := len(s.frames); n > 0 && s.frames[n-1].scanned {
		return rt.invariant(0, -1, "active frame is scanned")
	}

	// 6. Reference counts.
	if rt.safe {
		if f := rt.verifyRC(); f != nil {
			return f
		}
	}
	return nil
}

// verifyRC recomputes every live region's exact reference count from heap
// contents and compares it to the stored count.
func (rt *Runtime) verifyRC() *Fault {
	want := make(map[int32]uint64)

	// Cross-region words in scanned (normal-allocator) data. Bookkeeping
	// words — page links, region header fields — only ever hold same-region
	// addresses, so walking whole entries over-counts nothing.
	for _, reg := range rt.regions {
		if reg.deleted {
			continue
		}
		r := reg
		rt.forEachNormalWord(r, func(_ Ptr, v Word) {
			if t := rt.RegionOf(v); t != nil && t != r {
				want[t.id]++
			}
		})
	}

	// Global storage, all segments ever allocated.
	ranges := append(append([][2]Ptr(nil), rt.globalRanges...),
		[2]Ptr{rt.globalSeg, rt.globalNext})
	for _, seg := range ranges {
		for a := seg[0]; a < seg[1]; a += mem.WordSize {
			if v := rt.space.Load(a); v != 0 {
				if t := rt.RegionOf(v); t != nil {
					want[t.id]++
				}
			}
		}
	}

	// Counted frame slots: scanned frames, or every frame under EagerLocals.
	for _, fr := range rt.stack.frames {
		if !fr.scanned && !rt.opts.EagerLocals {
			continue
		}
		for _, p := range fr.slots {
			if t := rt.RegionOf(p); t != nil {
				want[t.id]++
			}
		}
	}

	for _, r := range rt.regions {
		if r.deleted {
			continue
		}
		got := rt.space.Load(r.hdr + offRC)
		if uint64(got) != want[r.id] {
			return rt.invariant(r.hdr+offRC, r.id,
				"stored reference count %d, recomputed %d", got, want[r.id])
		}
	}
	return nil
}
