package core

import (
	"strings"
	"testing"

	"regions/internal/metrics"
)

// TestHeapReportAccounting checks the profiler's byte algebra on a heap
// whose contents are known exactly: every region's capacity must decompose
// into live + bookkeeping + free + fragmentation, and the object census
// must see every scanned allocation.
func TestHeapReportAccounting(t *testing.T) {
	rt, _ := newRT(true)
	cln := rt.RegisterCleanup("cell", func(rt *Runtime, obj Ptr) int { return 8 })
	r := rt.NewRegion()
	for i := 0; i < 7; i++ {
		rt.Ralloc(r, 8, cln)
	}
	rt.RarrayAlloc(r, 10, 8, cln)
	rt.RstrAlloc(r, 100)

	rep, err := rt.HeapReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != metrics.HeapSchemaVersion {
		t.Errorf("schema_version = %d, want %d", rep.SchemaVersion, metrics.HeapSchemaVersion)
	}
	if rep.LiveRegions != 1 || len(rep.Regions) != 1 {
		t.Fatalf("LiveRegions = %d, regions = %d, want 1", rep.LiveRegions, len(rep.Regions))
	}
	rh := rep.Regions[0]
	if rh.ID != int32(r.id) {
		t.Errorf("region id = %d, want %d", rh.ID, r.id)
	}
	// 7 cells + one 10-element array + one string allocation.
	if rh.Allocs != 9 {
		t.Errorf("Allocs = %d, want 9", rh.Allocs)
	}
	// The census walks scanned objects only: 7 cells + 1 array.
	if rh.Objects != 8 {
		t.Errorf("Objects = %d, want 8", rh.Objects)
	}
	// Live data: 7*8 + 10*8 + 100, exactly what the region reports.
	if want := uint64(7*8 + 10*8 + 100); rh.LiveBytes != want {
		t.Errorf("LiveBytes = %d, want %d", rh.LiveBytes, want)
	}
	if rh.NormalBytes != 7*8+10*8 {
		t.Errorf("NormalBytes = %d, want %d", rh.NormalBytes, 7*8+10*8)
	}
	if rh.StringBytes != 100 {
		t.Errorf("StringBytes = %d, want 100", rh.StringBytes)
	}
	if got := rh.LiveBytes + rh.BookkeepingBytes + rh.FreeBytes + rh.FragBytes; got != rh.CapacityBytes {
		t.Errorf("byte decomposition: live %d + book %d + free %d + frag %d = %d, want capacity %d",
			rh.LiveBytes, rh.BookkeepingBytes, rh.FreeBytes, rh.FragBytes, got, rh.CapacityBytes)
	}
	if rh.OccupancyPct <= 0 || rh.OccupancyPct > 100 {
		t.Errorf("OccupancyPct = %.1f", rh.OccupancyPct)
	}
	if rep.Totals.CapacityBytes != rh.CapacityBytes || rep.Totals.ID != -1 {
		t.Errorf("totals row: %+v", rep.Totals)
	}

	// The census keys scanned objects by cleanup name.
	var seen []string
	for _, s := range rep.Sites {
		seen = append(seen, s.Site)
	}
	if len(seen) != 1 || seen[0] != "cell" {
		t.Errorf("census sites = %v, want [cell]", seen)
	}
}

// TestHeapReportMultiRegionTotals profiles several regions, one deleted, and
// checks the totals row and free-page accounting line up with the runtime.
func TestHeapReportMultiRegionTotals(t *testing.T) {
	rt, regs := buildHealthyHeap(t)
	rep, err := rt.HeapReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LiveRegions != len(regs) {
		t.Fatalf("LiveRegions = %d, want %d", rep.LiveRegions, len(regs))
	}
	var cap64, live uint64
	for _, rh := range rep.Regions {
		cap64 += rh.CapacityBytes
		live += rh.LiveBytes
	}
	if rep.Totals.CapacityBytes != cap64 || rep.Totals.LiveBytes != live {
		t.Errorf("totals (%d cap, %d live) disagree with sum (%d, %d)",
			rep.Totals.CapacityBytes, rep.Totals.LiveBytes, cap64, live)
	}
	// The deleted scratch region (3 pages + home page) is on the free lists.
	if rep.FreePages+rep.FreeSpanPages == 0 {
		t.Error("no free pages reported after a region deletion")
	}
	if rep.MappedBytes == 0 {
		t.Error("MappedBytes = 0")
	}
	// Top sorts by capacity descending.
	top := rep.Top(2)
	if len(top) != 2 || top[0].CapacityBytes < top[1].CapacityBytes {
		t.Errorf("Top(2) not capacity-sorted: %+v", top)
	}
	// Profiling is non-perturbing: Verify still passes and a second report
	// agrees.
	if err := rt.Verify(); err != nil {
		t.Fatalf("Verify after HeapReport: %v", err)
	}
	rep2, err := rt.HeapReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Totals != rep.Totals {
		t.Errorf("second report totals differ: %+v vs %+v", rep2.Totals, rep.Totals)
	}
}

// TestHeapReportFailsOnCorruptHeap mirrors the verifier tests: a corrupted
// object header must fail the profile with the same diagnostic.
func TestHeapReportFailsOnCorruptHeap(t *testing.T) {
	rt, _ := newRT(true)
	r := rt.NewRegion()
	p := rt.Ralloc(r, 8, rt.SizeCleanup(8))
	rt.Space().Uncharged(func() {
		rt.Space().Store(p-4, 0x7ff) // cleanup id far past the registry
	})
	_, err := rt.HeapReport()
	if err == nil {
		t.Fatal("HeapReport passed on corrupt header")
	}
	if !strings.Contains(err.Error(), "corrupt object header") {
		t.Errorf("error %q does not mention the corrupt header", err)
	}
}
