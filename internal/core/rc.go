package core

import (
	"regions/internal/mem"
	"regions/internal/stats"
	"regions/internal/trace"
)

// rcInc increments r's reference count. The count lives in the region's
// header word in the simulated heap, so the update is a traced memory
// access charged to the current accounting mode.
func (rt *Runtime) rcInc(r *Region) {
	v := rt.space.Load(r.hdr + offRC)
	rt.space.Store(r.hdr+offRC, v+1)
	if m := rt.met; m != nil {
		m.rcIncs.Inc()
	}
}

// rcDec decrements r's reference count, panicking with a *Fault of kind
// FaultRCUnderflow on underflow — an underflow means the barrier discipline
// was violated.
func (rt *Runtime) rcDec(r *Region) {
	v := rt.space.Load(r.hdr + offRC)
	if v == 0 {
		panic(rt.fault(FaultRCUnderflow, r.hdr+offRC, r.id,
			"reference count underflow", nil))
	}
	rt.space.Store(r.hdr+offRC, v-1)
	if m := rt.met; m != nil {
		m.rcDecs.Inc()
	}
}

// StorePtr implements *slot = val where slot is a word inside a region
// object: the paper's "region write" barrier (Figure 5, 23 instructions).
// Sameregion pointers — val in the same region as slot — cost no count
// update; pointers whose old or new target shares slot's region skip the
// corresponding half of the update.
//
// The charge decomposes around the last-region translation cache: a base
// of regionWriteBase instructions plus lrProbeHit or lrProbeMiss per
// regionof probe (all-miss sums to exactly the flat Figure 5 cost), and a
// barrierFastExtra short path when every translation hits and no count
// update is needed — the repeated-store-into-one-region case that
// dominates all six apps. The RC semantics — counts updated, sameregion
// tallies, traced events — are identical on every path; only the cycle
// charge differs. Options.NoRegionCache restores the flat pre-cache charge.
//
// Under an unsafe runtime this is a plain one-cycle store.
func (rt *Runtime) StorePtr(slot, val Ptr) {
	if !rt.safe {
		rt.space.Store(slot, val)
		return
	}
	m := rt.met
	var start uint64
	if m != nil {
		start = rt.c.TotalCycles()
	}
	old := rt.space.SetMode(stats.ModeRC)
	rt.c.Barriers.Region++

	t := rt.space.Load(slot)
	var ra, rold, rnew *Region
	fast := false
	if rt.opts.NoRegionCache {
		rt.charge(stats.ModeRC, regionWriteExtra)
		ra = rt.RegionOf(slot)
		rold = rt.RegionOf(t)
		rnew = rt.RegionOf(val)
	} else {
		var h1, h3 bool
		ra, h1 = rt.regionOf(slot)
		rnew, h3 = rt.regionOf(val)
		h2 := true // nil old value: Figure 5's NULL test, no translation
		if t != 0 {
			rold, h2 = rt.regionOf(t)
		}
		fast = h1 && h2 && h3 && rnew != nil && rnew == ra &&
			(rold == nil || rold == ra)
		if fast {
			rt.charge(stats.ModeRC, barrierFastExtra)
		} else {
			extra := uint64(regionWriteBase)
			for _, hit := range [...]bool{h1, h2, h3} {
				if hit {
					extra += lrProbeHit
				} else {
					extra += lrProbeMiss
				}
			}
			rt.charge(stats.ModeRC, extra)
		}
	}
	sameregion := rnew != nil && rnew == ra
	if sameregion {
		rt.c.Barriers.SameRegion++
	}
	if rold != rnew {
		if rold != nil && rold != ra {
			rt.rcDec(rold)
		}
		if rnew != nil && rnew != ra {
			rt.rcInc(rnew)
		}
	}
	rt.space.Store(slot, val)
	rt.space.SetMode(old)
	if rt.tracer != nil {
		kind := trace.KindBarrierRegion
		if sameregion {
			kind = trace.KindBarrierElided
		}
		rt.tracer.Emit(trace.Event{Kind: kind, Addr: slot,
			Region: regionID(rnew), Aux: regionID(rold)})
	}
	if m != nil {
		m.barrierRegion.Inc()
		if sameregion {
			m.barrierSame.Inc()
		}
		if fast {
			m.barrierFast.Inc()
		}
		m.barrierCycles.Observe(rt.c.TotalCycles() - start)
	}
}

// StoreGlobalPtr implements *slot = val where slot is in global storage:
// the paper's "global write" barrier (Figure 5, 16 instructions). Global
// storage belongs to no region, so there are no sameregion pointers.
func (rt *Runtime) StoreGlobalPtr(slot, val Ptr) {
	if !rt.safe {
		rt.space.Store(slot, val)
		return
	}
	m := rt.met
	var start uint64
	if m != nil {
		start = rt.c.TotalCycles()
	}
	old := rt.space.SetMode(stats.ModeRC)
	rt.charge(stats.ModeRC, globalWriteExtra)
	rt.c.Barriers.Global++

	t := rt.space.Load(slot)
	rold := rt.RegionOf(t)
	rnew := rt.RegionOf(val)
	if rold != rnew {
		if rold != nil {
			rt.rcDec(rold)
		}
		if rnew != nil {
			rt.rcInc(rnew)
		}
	}
	rt.space.Store(slot, val)
	rt.space.SetMode(old)
	if rt.tracer != nil {
		rt.tracer.Emit(trace.Event{Kind: trace.KindBarrierGlobal, Addr: slot,
			Region: regionID(rnew), Aux: regionID(rold)})
	}
	if m != nil {
		m.barrierGlobal.Inc()
		m.barrierCycles.Observe(rt.c.TotalCycles() - start)
	}
}

// StorePtrDynamic is the "more expensive runtime routine" the paper uses
// when a write cannot be statically classified as a global or region write
// (Section 4.2.2): it classifies slot at run time and applies the right
// barrier, charging extra for the classification.
func (rt *Runtime) StorePtrDynamic(slot, val Ptr) {
	if !rt.safe {
		rt.space.Store(slot, val)
		return
	}
	rt.charge(stats.ModeRC, dynamicWriteExtra-regionWriteExtra)
	if rt.RegionOf(slot) != nil {
		rt.StorePtr(slot, val)
	} else {
		rt.charge(stats.ModeRC, regionWriteExtra-globalWriteExtra)
		rt.StoreGlobalPtr(slot, val)
	}
}

// AllocGlobals reserves nwords consecutive words of global storage and
// returns the address of the first. Global storage belongs to no region;
// region pointers stored in it are counted exactly via StoreGlobalPtr.
// AllocGlobals panics with a *Fault on OOM; TryAllocGlobals is the graceful
// variant.
func (rt *Runtime) AllocGlobals(nwords int) Ptr {
	p, err := rt.TryAllocGlobals(nwords)
	if err != nil {
		panic(err)
	}
	return p
}

// TryAllocGlobals is AllocGlobals returning a *Fault (kind FaultOOM) instead
// of panicking when the simulated OS refuses the segment's pages. On failure
// the current segment is unchanged.
func (rt *Runtime) TryAllocGlobals(nwords int) (Ptr, error) {
	need := Ptr(nwords * mem.WordSize)
	if rt.globalNext+need > rt.globalEnd || rt.globalSeg == 0 {
		pages := (int(need) + mem.PageSize - 1) / mem.PageSize
		if pages < 4 {
			pages = 4
		}
		seg := rt.space.MapPages(pages)
		if seg == 0 {
			return 0, rt.oomFault("allocglobals", -1)
		}
		rt.notePages(seg, pages, nil)
		if rt.globalSeg != 0 {
			rt.globalRanges = append(rt.globalRanges, [2]Ptr{rt.globalSeg, rt.globalNext})
		}
		rt.globalSeg = seg
		rt.globalNext = seg
		rt.globalEnd = seg + Ptr(pages*mem.PageSize)
	}
	p := rt.globalNext
	rt.globalNext += need
	return p, nil
}
