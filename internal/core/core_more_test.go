package core

import (
	"testing"

	"regions/internal/mem"
)

func TestMultiPageSpanReuse(t *testing.T) {
	rt, _ := newRT(true)
	big := 5 * mem.PageSize
	use := func() {
		r := rt.NewRegion()
		p := rt.RstrAlloc(r, big)
		rt.Space().Store(p, 1)
		if !rt.DeleteRegion(r) {
			t.Fatal("delete failed")
		}
	}
	use()
	after := rt.Space().MappedBytes()
	for i := 0; i < 10; i++ {
		use()
	}
	if got := rt.Space().MappedBytes(); got != after {
		t.Fatalf("multi-page spans not reused: %d -> %d", after, got)
	}
}

func TestLargeArrayCleanupAcrossPages(t *testing.T) {
	// An array spanning several pages must have every element cleaned.
	rt, c := newRT(true)
	cln := rt.RegisterCleanup("ptrcell", func(rt *Runtime, obj Ptr) int {
		rt.Destroy(rt.Space().Load(obj))
		return 16
	})
	a := rt.NewRegion()
	b := rt.NewRegion()
	const n = 600 // 600*16 = 9600 bytes: 3 pages
	arr := rt.RarrayAlloc(a, n, 16, cln)
	leaf := rt.RegisterCleanup("leaf", listCleanup)
	for i := 0; i < n; i++ {
		p := cons(rt, leaf, b, uint32(i), 0)
		rt.StorePtr(arr+Ptr(i*16), p)
	}
	if b.RC() != n {
		t.Fatalf("rc=%d, want %d", b.RC(), n)
	}
	if !rt.DeleteRegion(a) {
		t.Fatal("delete a failed")
	}
	if b.RC() != 0 {
		t.Fatalf("rc=%d after cleanup, want 0", b.RC())
	}
	if c.DestroyCalls != n {
		t.Fatalf("DestroyCalls=%d, want %d", c.DestroyCalls, n)
	}
}

func TestStorePtrNilTransitions(t *testing.T) {
	rt, _ := newRT(true)
	cln := rt.RegisterCleanup("cell", listCleanup)
	r := rt.NewRegion()
	s := rt.NewRegion()
	obj := cons(rt, cln, r, 1, 0)
	tgt := cons(rt, cln, s, 2, 0)

	rt.StorePtr(obj+4, 0) // nil -> nil: no count changes
	if s.RC() != 0 {
		t.Fatal("rc moved on nil->nil")
	}
	rt.StorePtr(obj+4, tgt) // nil -> s
	if s.RC() != 1 {
		t.Fatalf("rc=%d", s.RC())
	}
	rt.StorePtr(obj+4, tgt) // s -> s (same value): no net change
	if s.RC() != 1 {
		t.Fatalf("rc=%d after same-value store", s.RC())
	}
	rt.StorePtr(obj+4, 0) // s -> nil
	if s.RC() != 0 {
		t.Fatalf("rc=%d", s.RC())
	}
}

func TestStorePtrDynamicUnsafe(t *testing.T) {
	rt, c := newRT(false)
	r := rt.NewRegion()
	p := rt.RstrAlloc(r, 8)
	g := rt.AllocGlobals(1)
	rt.StorePtrDynamic(g, p)
	var v Word
	rt.Space().Uncharged(func() { v = rt.Space().Load(g) })
	if v != p {
		t.Fatal("dynamic store lost under unsafe runtime")
	}
	if c.Cycles[3] != 0 { // stats.ModeRC
		t.Fatal("unsafe dynamic store charged rc cycles")
	}
}

func TestSizeCleanupCached(t *testing.T) {
	rt, _ := newRT(true)
	a := rt.SizeCleanup(24)
	b := rt.SizeCleanup(24)
	cDiff := rt.SizeCleanup(32)
	if a != b {
		t.Fatal("same size produced different cleanup ids")
	}
	if a == cDiff {
		t.Fatal("different sizes share a cleanup id")
	}
}

func TestRegionStringer(t *testing.T) {
	rt, _ := newRT(true)
	r := rt.NewRegion()
	rt.RstrAlloc(r, 8)
	if s := r.String(); s == "" || r.Deleted() {
		t.Fatalf("String=%q deleted=%v", s, r.Deleted())
	}
	rt.DeleteRegion(r)
	if s := r.String(); s == "" || !r.Deleted() {
		t.Fatalf("after delete: String=%q", s)
	}
}

func TestRegisterNilCleanupPanics(t *testing.T) {
	rt, _ := newRT(true)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	rt.RegisterCleanup("bad", nil)
}

func TestInvalidCleanupIDPanics(t *testing.T) {
	rt, _ := newRT(true)
	r := rt.NewRegion()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	rt.Ralloc(r, 8, CleanupID(99))
}

func TestNegativeArrayAllocPanics(t *testing.T) {
	rt, _ := newRT(true)
	r := rt.NewRegion()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	rt.RarrayAlloc(r, -1, 8, rt.SizeCleanup(8))
}

func TestGlobalSegmentGrowth(t *testing.T) {
	rt, _ := newRT(true)
	// Exceed the initial global pages; the segment must grow seamlessly.
	var slots []Ptr
	for i := 0; i < 5000; i++ {
		slots = append(slots, rt.AllocGlobals(1))
	}
	seen := map[Ptr]bool{}
	for _, s := range slots {
		if seen[s] {
			t.Fatal("duplicate global slot")
		}
		seen[s] = true
		if rt.RegionOf(s) != nil {
			t.Fatal("global slot mapped to a region")
		}
	}
}
