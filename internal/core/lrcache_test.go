package core

import (
	"testing"

	"regions/internal/metrics"
	"regions/internal/stats"
)

// TestLastRegionCacheInvalidation proves a stale translation is impossible
// through the cache's whole lifecycle: warm hits, DeleteRegion, page
// recycling into a new region, and a fresh region landing on the very page
// the cache was warmed on. Verify() runs at every step — it now checks each
// cache entry against the dense page index before trusting RegionOf for the
// RC recomputation.
func TestLastRegionCacheInvalidation(t *testing.T) {
	rt, _ := newRT(true)
	cln := rt.SizeCleanup(16)

	r1 := rt.NewRegion()
	p := rt.Ralloc(r1, 16, cln)
	// Warm the cache on p's page, twice so the second is a guaranteed hit.
	if rt.RegionOf(p) != r1 || rt.RegionOf(p) != r1 {
		t.Fatal("warm lookup did not resolve to r1")
	}
	if err := rt.Verify(); err != nil {
		t.Fatalf("verify after warming: %v", err)
	}

	if !rt.DeleteRegion(r1) {
		t.Fatal("r1 not deletable")
	}
	if err := rt.Verify(); err != nil {
		t.Fatalf("verify after delete: %v", err)
	}
	if got := rt.RegionOf(p); got != nil {
		t.Fatalf("RegionOf(p) after delete = region %d, want nil (stale cache hit)", regionID(got))
	}

	// The free-page list is LIFO, so the next region reuses p's page: the
	// cache must now translate p to the new region, not r1 and not nil.
	r2 := rt.NewRegion()
	if err := rt.Verify(); err != nil {
		t.Fatalf("verify after recycling: %v", err)
	}
	if got := rt.RegionOf(p); got != r2 {
		t.Fatalf("RegionOf(p) after page reuse = %v, want r2 (stale cache entry survived)", got)
	}
	if !rt.DeleteRegion(r2) {
		t.Fatal("r2 not deletable")
	}
	if got := rt.RegionOf(p); got != nil {
		t.Fatalf("RegionOf(p) after second delete = region %d, want nil", regionID(got))
	}
	if err := rt.Verify(); err != nil {
		t.Fatalf("final verify: %v", err)
	}
}

// TestRandomizedPageRecyclingNoCache runs the randomized churn with the
// translation cache disabled, pinning that NoRegionCache reproduces the
// pre-cache runtime under the same invariants.
func TestRandomizedPageRecyclingNoCache(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rt, _ := newRTOpts(Options{Safe: true, NoRegionCache: true})
		recycleExercise(t, rt, seed, 400)
	}
}

// barrierWorkload drives every barrier flavor through rt: sameregion and
// cross-region stores, overwrites of nil and of live pointers, global
// writes, dynamic writes, and region churn so translations go stale and
// refill. Identical inputs on any two runtimes produce identical heaps.
func barrierWorkload(rt *Runtime) {
	cln := rt.SizeCleanup(16)
	g := rt.AllocGlobals(4)
	for round := 0; round < 50; round++ {
		a := rt.NewRegion()
		b := rt.NewRegion()
		var pa, pb Ptr
		for i := 0; i < 20; i++ {
			qa := rt.Ralloc(a, 16, cln)
			qb := rt.Ralloc(b, 16, cln)
			if pa != 0 {
				rt.StorePtr(qa, pa) // sameregion, nil old value
				rt.StorePtr(qa, qa) // sameregion overwrite, old value live
				rt.StorePtr(qa, pb) // cross-region: inc b
				rt.StorePtr(qa, pa) // cross-region back: dec b, sameregion new
				rt.StorePtrDynamic(qa, pb)
				rt.StorePtr(qa, 0)
			}
			pa, pb = qa, qb
		}
		rt.StoreGlobalPtr(g, pa)
		rt.StoreGlobalPtr(g, pb)
		rt.StoreGlobalPtr(g, 0)
		if !rt.DeleteRegion(a) || !rt.DeleteRegion(b) {
			panic("barrierWorkload: regions not deletable")
		}
	}
}

// TestRegionCacheChangesOnlyRCCycles is the cache's accounting pin: the
// same barrier-heavy workload run with and without the translation cache
// must produce byte-identical counters — allocation volume, barrier and
// sameregion tallies, RC updates, reads and writes — except for the RC-mode
// cycle count, the one series the cache is chartered to reduce. The delta
// there must be a strict improvement.
func TestRegionCacheChangesOnlyRCCycles(t *testing.T) {
	run := func(noCache bool) *stats.Counters {
		rt, c := newRTOpts(Options{Safe: true, NoRegionCache: noCache})
		barrierWorkload(rt)
		if err := rt.Verify(); err != nil {
			t.Fatalf("verify (noCache=%v): %v", noCache, err)
		}
		return c
	}
	cached := run(false)
	bare := run(true)

	if cached.Cycles[stats.ModeRC] >= bare.Cycles[stats.ModeRC] {
		t.Errorf("cached RC cycles = %d, want < uncached %d",
			cached.Cycles[stats.ModeRC], bare.Cycles[stats.ModeRC])
	}

	// Every other field must match exactly: copy, level the intended
	// difference, compare the plain-data structs wholesale.
	a, b := *cached, *bare
	a.Cycles[stats.ModeRC] = 0
	b.Cycles[stats.ModeRC] = 0
	if a != b {
		t.Errorf("cache changed counters beyond RC cycles:\ncached: %+v\nbare:   %+v", a, b)
	}
}

// TestRegionCacheMeteredCountersUnchanged extends the PR 4 host-side-only
// contract to the cache paths: attaching a metrics registry while the cache
// and its fast path run must leave simulated counters byte-identical, and
// the registry must see the new cache series.
func TestRegionCacheMeteredCountersUnchanged(t *testing.T) {
	rt, bare := newRT(true)
	barrierWorkload(rt)

	reg := metrics.NewRegistry()
	rt2, metered := newRT(true)
	rt2.SetMetrics(reg)
	barrierWorkload(rt2)

	if *bare != *metered {
		t.Errorf("metrics changed simulated counters:\nbare:    %+v\nmetered: %+v", *bare, *metered)
	}
	snap := reg.Snapshot()
	hits, _ := snap.Counter("regions_core_lrcache_hits_total")
	if hits == 0 {
		t.Error("no lrcache hits recorded on a barrier-heavy workload")
	}
	fast, _ := snap.Counter("regions_core_barrier_fast_total")
	if fast == 0 {
		t.Error("no fast-path barriers recorded on a sameregion-heavy workload")
	}
	same, _ := snap.Counter("regions_core_barrier_sameregion_total")
	if fast > same {
		t.Errorf("fast barriers (%d) exceed sameregion barriers (%d)", fast, same)
	}
}
