package core

import (
	"sync"
	"testing"
)

func TestParBasicCounting(t *testing.T) {
	w := NewParWorld(2)
	r := w.NewParRegion()
	regionOf := func(p Ptr) *ParRegion {
		if p != 0 {
			return r
		}
		return nil
	}
	var slot ParSlot
	w.Worker(0).Write(&slot, 100, regionOf)
	if r.RCSum() != 1 {
		t.Fatalf("sum=%d, want 1", r.RCSum())
	}
	if w.TryDelete(r) {
		t.Fatal("delete succeeded with a live reference")
	}
	// A different worker clears the slot: its local count goes negative,
	// the sum goes to zero.
	w.Worker(1).Write(&slot, 0, regionOf)
	if r.local[0].n.Load() != 1 || r.local[1].n.Load() != -1 {
		t.Fatalf("local counts (%d,%d), want (1,-1)",
			r.local[0].n.Load(), r.local[1].n.Load())
	}
	if !w.TryDelete(r) {
		t.Fatal("delete failed with zero sum")
	}
	if !r.Deleted() {
		t.Fatal("region not marked deleted")
	}
}

func TestParDoubleDeleteFailsGracefully(t *testing.T) {
	w := NewParWorld(1)
	r := w.NewParRegion()
	if !w.TryDelete(r) {
		t.Fatal("first delete failed")
	}
	if w.TryDelete(r) {
		t.Fatal("second delete succeeded")
	}
	if !r.Deleted() {
		t.Fatal("region not marked deleted")
	}
}

// TestParDeleteRace races two workers deleting the same region: exactly one
// must win, and the loser's failing no-op must leave the counts untouched.
// Run under -race this also proves TryDelete's loser path is data-race-free.
func TestParDeleteRace(t *testing.T) {
	for round := 0; round < 200; round++ {
		w := NewParWorld(2)
		r := w.NewParRegion()
		var wins [2]bool
		var wg sync.WaitGroup
		for id := 0; id < 2; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				wins[id] = w.TryDelete(r)
			}(id)
		}
		wg.Wait()
		if wins[0] == wins[1] {
			t.Fatalf("round %d: wins=%v, want exactly one winner", round, wins)
		}
		if !r.Deleted() {
			t.Fatalf("round %d: region not deleted", round)
		}
		if sum := r.RCSum(); sum != 0 {
			t.Fatalf("round %d: count sum %d after racing deletes, want 0", round, sum)
		}
	}
}

// TestParAdjustDeletedFaults pins that a count adjustment on a deleted
// region — a genuine use-after-delete, unlike a lost TryDelete race — still
// panics, now with a typed *Fault.
func TestParAdjustDeletedFaults(t *testing.T) {
	w := NewParWorld(1)
	r := w.NewParRegion()
	w.TryDelete(r)
	defer func() {
		f, ok := recover().(*Fault)
		if !ok {
			t.Fatalf("recover() = %v, want *Fault", recover())
		}
		if f.Kind != FaultDeletedRegion {
			t.Fatalf("fault kind %v, want FaultDeletedRegion", f.Kind)
		}
	}()
	w.Worker(0).Created(r)
}

// TestParRaceConsistency hammers shared slots from many workers. The atomic
// exchange guarantees every overwritten value is decremented exactly once,
// so after quiescence the sum of local counts equals the number of live
// references — and only then is the region deletable.
func TestParRaceConsistency(t *testing.T) {
	const workers = 8
	const slots = 16
	const writesPerWorker = 5000

	w := NewParWorld(workers)
	r := w.NewParRegion()
	regionOf := func(p Ptr) *ParRegion {
		if p != 0 {
			return r
		}
		return nil
	}
	shared := make([]ParSlot, slots)

	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			wk := w.Worker(id)
			x := uint32(id + 1)
			for i := 0; i < writesPerWorker; i++ {
				x = x*1664525 + 1013904223
				slot := &shared[x%slots]
				val := Ptr(0)
				if x&4 != 0 {
					val = 4096 + x%1000*4
				}
				wk.Write(slot, val, regionOf)
			}
		}(id)
	}
	wg.Wait()

	live := 0
	for i := range shared {
		if shared[i].Load() != 0 {
			live++
		}
	}
	if got := r.RCSum(); got != int64(live) {
		t.Fatalf("sum=%d, live references=%d", got, live)
	}
	if live > 0 && w.TryDelete(r) {
		t.Fatal("delete succeeded with live references")
	}
	wk := w.Worker(0)
	for i := range shared {
		wk.Write(&shared[i], 0, regionOf)
	}
	if !w.TryDelete(r) {
		t.Fatalf("delete failed after clearing all slots (sum=%d)", r.RCSum())
	}
}

func TestParManyRegions(t *testing.T) {
	const workers = 4
	w := NewParWorld(workers)
	regs := make([]*ParRegion, 10)
	for i := range regs {
		regs[i] = w.NewParRegion()
	}
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			wk := w.Worker(id)
			for i := 0; i < 1000; i++ {
				r := regs[(i+id)%len(regs)]
				wk.Created(r)
				wk.Destroyed(r)
			}
		}(id)
	}
	wg.Wait()
	for i, r := range regs {
		if !w.TryDelete(r) {
			t.Fatalf("region %d not deletable after balanced create/destroy (sum=%d)", i, r.RCSum())
		}
	}
}
