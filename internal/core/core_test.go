package core

import (
	"testing"

	"regions/internal/mem"
	"regions/internal/stats"
)

func newRT(safe bool) (*Runtime, *stats.Counters) {
	c := &stats.Counters{}
	return NewRuntime(mem.NewSpace(c), safe), c
}

func TestRallocClearsAndMaps(t *testing.T) {
	rt, c := newRT(true)
	r := rt.NewRegion()
	cln := rt.SizeCleanup(16)
	p := rt.Ralloc(r, 16, cln)
	if p == 0 || p%4 != 0 {
		t.Fatalf("bad pointer %#x", p)
	}
	for i := 0; i < 16; i += 4 {
		if v := rt.Space().Load(p + Ptr(i)); v != 0 {
			t.Fatalf("ralloc memory not cleared at +%d: %#x", i, v)
		}
	}
	if rt.RegionOf(p) != r {
		t.Fatal("RegionOf(alloc) != allocating region")
	}
	if c.Allocs != 1 || c.BytesRequested != 16 {
		t.Fatalf("allocs=%d bytes=%d", c.Allocs, c.BytesRequested)
	}
	if r.Bytes() != 16 || r.Allocs() != 1 {
		t.Fatalf("region stats: %v", r)
	}
}

func TestSizeRounding(t *testing.T) {
	rt, c := newRT(true)
	r := rt.NewRegion()
	rt.Ralloc(r, 5, rt.SizeCleanup(5))
	if c.BytesRequested != 8 {
		t.Fatalf("bytes=%d, want 8 (rounded to nearest multiple of 4)", c.BytesRequested)
	}
}

func TestManyAllocationsSpanPages(t *testing.T) {
	rt, _ := newRT(true)
	r := rt.NewRegion()
	cln := rt.SizeCleanup(100)
	var ptrs []Ptr
	for i := 0; i < 200; i++ { // ~21 KB, several pages
		p := rt.Ralloc(r, 100, cln)
		rt.Space().Store(p, uint32(i))
		ptrs = append(ptrs, p)
	}
	seen := map[Ptr]bool{}
	for i, p := range ptrs {
		if seen[p] {
			t.Fatalf("duplicate pointer %#x", p)
		}
		seen[p] = true
		if v := rt.Space().Load(p); v != uint32(i) {
			t.Fatalf("object %d clobbered: %d", i, v)
		}
		if rt.RegionOf(p) != r {
			t.Fatalf("object %d not mapped to region", i)
		}
	}
	if !rt.DeleteRegion(r) {
		t.Fatal("delete failed")
	}
}

func TestLargeAllocation(t *testing.T) {
	rt, _ := newRT(true)
	r := rt.NewRegion()
	big := 3 * mem.PageSize // larger than a page: lifted prototype limit
	p := rt.Ralloc(r, big, rt.SizeCleanup(big))
	rt.Space().Store(p, 1)
	rt.Space().Store(p+Ptr(big)-4, 2)
	if rt.RegionOf(p+Ptr(big)-4) != r {
		t.Fatal("tail of large object not mapped to region")
	}
	// Small allocations continue to work and land in the region.
	q := rt.Ralloc(r, 8, rt.SizeCleanup(8))
	if rt.RegionOf(q) != r {
		t.Fatal("small alloc after large lost its region")
	}
	if !rt.DeleteRegion(r) {
		t.Fatal("delete failed")
	}
}

func TestRstrAlloc(t *testing.T) {
	rt, _ := newRT(true)
	r := rt.NewRegion()
	p := rt.RstrAlloc(r, 40)
	if rt.RegionOf(p) != r {
		t.Fatal("string alloc not mapped to region")
	}
	rt.Space().Store(p, 0x12345678)
	// String data is never scanned: a value that looks like a region
	// pointer must not confuse deletion.
	q := rt.RstrAlloc(r, 8)
	rt.Space().Store(q, p) // looks like a pointer
	if !rt.DeleteRegion(r) {
		t.Fatal("delete failed")
	}
}

// cons builds the paper's Figure 3 list: struct list { int i; list @next; }.
func cons(rt *Runtime, cln CleanupID, r *Region, x uint32, l Ptr) Ptr {
	p := rt.Ralloc(r, 8, cln)
	rt.Space().Store(p, x) // p->i = x (not a pointer)
	rt.StorePtr(p+4, l)    // p->next = l (region write barrier)
	return p
}

func listCleanup(rt *Runtime, obj Ptr) int {
	rt.Destroy(rt.Space().Load(obj + 4))
	return 8
}

func TestListCopyExample(t *testing.T) {
	// The paper's Figure 3: copy a list into a temporary region, use it,
	// delete the temporary region.
	rt, c := newRT(true)
	cln := rt.RegisterCleanup("list", listCleanup)

	main := rt.NewRegion()
	f := rt.PushFrame(2)
	defer rt.PopFrame()

	var l Ptr
	for i := 5; i >= 1; i-- {
		l = cons(rt, cln, main, uint32(i), l)
	}
	f.Set(0, l)

	tmp := rt.NewRegion()
	var copyList func(r *Region, l Ptr) Ptr
	copyList = func(r *Region, l Ptr) Ptr {
		if l == 0 {
			return 0
		}
		tail := copyList(r, rt.Space().Load(l+4))
		return cons(rt, cln, r, rt.Space().Load(l), tail)
	}
	cp := copyList(tmp, l)
	f.Set(1, cp)

	// The copy has the same values.
	for i, p := 1, cp; p != 0; i, p = i+1, rt.Space().Load(p+4) {
		if v := rt.Space().Load(p); v != uint32(i) {
			t.Fatalf("copy[%d] = %d", i, v)
		}
	}

	// With the local reference still live the delete must fail...
	if rt.DeleteRegion(tmp) {
		t.Fatal("delete succeeded despite live local reference")
	}
	// ...and succeed once the local is dead.
	f.Set(1, 0)
	if !rt.DeleteRegion(tmp) {
		t.Fatal("delete failed after clearing local")
	}
	// The original list is untouched.
	for i, p := 1, f.Get(0); p != 0; i, p = i+1, rt.Space().Load(p+4) {
		if v := rt.Space().Load(p); v != uint32(i) {
			t.Fatalf("original[%d] = %d after delete", i, v)
		}
	}
	if c.RegionsDeleted != 1 {
		t.Fatalf("RegionsDeleted=%d", c.RegionsDeleted)
	}
}

func TestSameRegionPointersNotCounted(t *testing.T) {
	rt, c := newRT(true)
	cln := rt.RegisterCleanup("list", listCleanup)
	r := rt.NewRegion()
	var l Ptr
	for i := 0; i < 50; i++ {
		l = cons(rt, cln, r, uint32(i), l)
	}
	if rc := r.RC(); rc != 0 {
		t.Fatalf("rc=%d after same-region list build, want 0 (cyclic structures collectable)", rc)
	}
	if c.Barriers.SameRegion == 0 {
		t.Fatal("sameregion barrier counter did not move")
	}
	if !rt.DeleteRegion(r) {
		t.Fatal("delete failed")
	}
	if c.CleanupCalls != 50 {
		t.Fatalf("CleanupCalls=%d, want 50", c.CleanupCalls)
	}
}

func TestHeapReferenceBlocksDelete(t *testing.T) {
	rt, _ := newRT(true)
	cln := rt.RegisterCleanup("list", listCleanup)
	a := rt.NewRegion()
	b := rt.NewRegion()
	target := cons(rt, cln, b, 42, 0)
	holder := cons(rt, cln, a, 1, target) // cross-region pointer a -> b

	if b.RC() != 1 {
		t.Fatalf("rc=%d, want 1", b.RC())
	}
	if rt.DeleteRegion(b) {
		t.Fatal("delete of referenced region succeeded")
	}
	rt.StorePtr(holder+4, 0)
	if b.RC() != 0 {
		t.Fatalf("rc=%d after clearing, want 0", b.RC())
	}
	if !rt.DeleteRegion(b) {
		t.Fatal("delete failed after clearing reference")
	}
}

func TestCleanupDestroysCrossRegionRefs(t *testing.T) {
	rt, c := newRT(true)
	cln := rt.RegisterCleanup("list", listCleanup)
	a := rt.NewRegion()
	b := rt.NewRegion()
	// Ten objects in a, each pointing at an object in b.
	for i := 0; i < 10; i++ {
		cons(rt, cln, a, uint32(i), cons(rt, cln, b, uint32(i), 0))
	}
	if b.RC() != 10 {
		t.Fatalf("rc=%d, want 10", b.RC())
	}
	if rt.DeleteRegion(b) {
		t.Fatal("b should not be deletable")
	}
	if !rt.DeleteRegion(a) {
		t.Fatal("a should be deletable")
	}
	if b.RC() != 0 {
		t.Fatalf("rc=%d after deleting a, want 0 (cleanups must destroy)", b.RC())
	}
	if !rt.DeleteRegion(b) {
		t.Fatal("b should be deletable after a's cleanups ran")
	}
	if c.DestroyCalls == 0 {
		t.Fatal("no Destroy calls recorded")
	}
}

func TestArrayCleanupPerElement(t *testing.T) {
	rt, c := newRT(true)
	cln := rt.RegisterCleanup("pair", func(rt *Runtime, obj Ptr) int {
		rt.Destroy(rt.Space().Load(obj))
		return 8
	})
	a := rt.NewRegion()
	b := rt.NewRegion()
	arr := rt.RarrayAlloc(a, 7, 8, cln)
	for i := 0; i < 7; i++ {
		elem := cons(rt, rt.RegisterCleanup("leaf", listCleanup), b, uint32(i), 0)
		rt.StorePtr(arr+Ptr(i*8), elem)
	}
	if b.RC() != 7 {
		t.Fatalf("rc=%d, want 7", b.RC())
	}
	if !rt.DeleteRegion(a) {
		t.Fatal("delete a failed")
	}
	if b.RC() != 0 {
		t.Fatalf("rc=%d after array cleanup, want 0", b.RC())
	}
	if c.DestroyCalls != 7 {
		t.Fatalf("DestroyCalls=%d, want 7", c.DestroyCalls)
	}
}

func TestGlobalWriteBarrier(t *testing.T) {
	rt, c := newRT(true)
	cln := rt.RegisterCleanup("list", listCleanup)
	g := rt.AllocGlobals(1)
	r := rt.NewRegion()
	p := cons(rt, cln, r, 9, 0)

	rt.StoreGlobalPtr(g, p)
	if r.RC() != 1 {
		t.Fatalf("rc=%d after global store, want 1", r.RC())
	}
	if rt.DeleteRegion(r) {
		t.Fatal("delete succeeded with live global reference")
	}
	rt.StoreGlobalPtr(g, 0)
	if !rt.DeleteRegion(r) {
		t.Fatal("delete failed after clearing global")
	}
	if c.Barriers.Global != 2 {
		t.Fatalf("global barriers=%d, want 2", c.Barriers.Global)
	}
}

func TestStorePtrDynamic(t *testing.T) {
	rt, _ := newRT(true)
	cln := rt.RegisterCleanup("list", listCleanup)
	g := rt.AllocGlobals(1)
	r := rt.NewRegion()
	p := cons(rt, cln, r, 9, 0)
	q := cons(rt, cln, r, 8, 0)

	rt.StorePtrDynamic(g, p) // global slot
	if r.RC() != 1 {
		t.Fatalf("rc=%d, want 1", r.RC())
	}
	rt.StorePtrDynamic(p+4, q) // region slot, sameregion value
	if r.RC() != 1 {
		t.Fatalf("rc=%d after sameregion dynamic store, want 1", r.RC())
	}
	rt.StorePtrDynamic(g, 0)
	if r.RC() != 0 {
		t.Fatalf("rc=%d, want 0", r.RC())
	}
}

func TestStackScanAndUnscan(t *testing.T) {
	rt, c := newRT(true)
	cln := rt.RegisterCleanup("list", listCleanup)
	r := rt.NewRegion()

	outer := rt.PushFrame(1)
	outer.Set(0, cons(rt, cln, r, 1, 0))

	rt.PushFrame(0)
	// Deleting from the inner frame scans the outer frame and fails.
	if rt.DeleteRegion(r) {
		t.Fatal("delete succeeded despite outer local reference")
	}
	if r.RC() != 1 {
		t.Fatalf("rc=%d after scan, want 1 (outer frame counted)", r.RC())
	}
	if c.FramesScanned != 1 {
		t.Fatalf("FramesScanned=%d, want 1", c.FramesScanned)
	}
	// Returning to the outer frame unscans it.
	rt.PopFrame()
	if r.RC() != 0 {
		t.Fatalf("rc=%d after unscan, want 0", r.RC())
	}
	if c.FramesUnscanned != 1 {
		t.Fatalf("FramesUnscanned=%d, want 1", c.FramesUnscanned)
	}
	// Now the reference is only in the active frame; deleting still fails
	// (temporary count of the active frame) until the slot is cleared.
	if rt.DeleteRegion(r) {
		t.Fatal("delete succeeded despite active-frame reference")
	}
	outer.Set(0, 0)
	if !rt.DeleteRegion(r) {
		t.Fatal("delete failed with no references")
	}
	rt.PopFrame()
}

func TestDeepStackScanOnlyOnce(t *testing.T) {
	// After one failed delete scanned the stack, a second failed delete
	// from the same depth must not rescan the already-scanned frames.
	rt, c := newRT(true)
	cln := rt.RegisterCleanup("list", listCleanup)
	r := rt.NewRegion()
	for i := 0; i < 10; i++ {
		f := rt.PushFrame(1)
		f.Set(0, cons(rt, cln, r, uint32(i), 0))
	}
	rt.DeleteRegion(r)
	first := c.FramesScanned
	if first != 9 { // all but the active frame
		t.Fatalf("FramesScanned=%d, want 9", first)
	}
	rt.DeleteRegion(r)
	if c.FramesScanned != first {
		t.Fatalf("second delete rescanned: %d -> %d", first, c.FramesScanned)
	}
	for i := 0; i < 10; i++ {
		rt.PopFrame()
	}
	if r.RC() != 0 {
		t.Fatalf("rc=%d after full unwind, want 0", r.RC())
	}
}

func TestUnsafeRuntime(t *testing.T) {
	rt, c := newRT(false)
	cln := rt.RegisterCleanup("list", listCleanup)
	a := rt.NewRegion()
	b := rt.NewRegion()
	p := cons(rt, cln, b, 1, 0)
	cons(rt, cln, a, 2, p) // cross-region reference

	f := rt.PushFrame(1)
	f.Set(0, p)

	// Unsafe deletion ignores all references.
	if !rt.DeleteRegion(b) {
		t.Fatal("unsafe delete failed")
	}
	rt.PopFrame()
	if c.Cycles[stats.ModeRC] != 0 || c.Cycles[stats.ModeScan] != 0 || c.Cycles[stats.ModeCleanup] != 0 {
		t.Fatalf("unsafe runtime charged safety cycles: rc=%d scan=%d cleanup=%d",
			c.Cycles[stats.ModeRC], c.Cycles[stats.ModeScan], c.Cycles[stats.ModeCleanup])
	}
	if c.CleanupCalls != 0 || c.DestroyCalls != 0 {
		t.Fatal("unsafe runtime ran cleanups")
	}
}

func TestSafetyCostObservable(t *testing.T) {
	run := func(safe bool) uint64 {
		rt, c := newRT(safe)
		cln := rt.RegisterCleanup("list", listCleanup)
		r := rt.NewRegion()
		s := rt.NewRegion()
		var l Ptr
		for i := 0; i < 100; i++ {
			l = cons(rt, cln, r, uint32(i), l)
			cons(rt, cln, s, uint32(i), l)
		}
		rt.DeleteRegion(s)
		rt.DeleteRegion(r)
		return c.TotalCycles()
	}
	safeCycles, unsafeCycles := run(true), run(false)
	if safeCycles <= unsafeCycles {
		t.Fatalf("safe (%d cycles) should cost more than unsafe (%d)", safeCycles, unsafeCycles)
	}
}

func TestPageRecycling(t *testing.T) {
	rt, _ := newRT(true)
	cln := rt.SizeCleanup(64)
	doWork := func() {
		r := rt.NewRegion()
		for i := 0; i < 500; i++ {
			rt.Ralloc(r, 64, cln)
		}
		if !rt.DeleteRegion(r) {
			t.Fatal("delete failed")
		}
	}
	doWork()
	after1 := rt.Space().MappedBytes()
	for i := 0; i < 20; i++ {
		doWork()
	}
	if got := rt.Space().MappedBytes(); got != after1 {
		t.Fatalf("pages not recycled: %d -> %d mapped bytes", after1, got)
	}
}

func TestRegionColoring(t *testing.T) {
	rt, _ := newRT(true)
	offsets := map[Ptr]bool{}
	for i := 0; i < 9; i++ {
		r := rt.NewRegion()
		offsets[r.hdr%mem.PageSize] = true
	}
	if len(offsets) < 8 {
		t.Fatalf("region structures use only %d distinct page offsets, want >= 8", len(offsets))
	}
	for off := range offsets {
		if off > colorMax+mem.WordSize {
			t.Fatalf("offset %d exceeds paper's maximum of %d", off, colorMax)
		}
	}
}

func TestDoubleDeletePanics(t *testing.T) {
	rt, _ := newRT(true)
	r := rt.NewRegion()
	rt.DeleteRegion(r)
	defer func() {
		if recover() == nil {
			t.Fatal("double delete did not panic")
		}
	}()
	rt.DeleteRegion(r)
}

func TestAllocOnDeletedPanics(t *testing.T) {
	rt, _ := newRT(true)
	r := rt.NewRegion()
	rt.DeleteRegion(r)
	defer func() {
		if recover() == nil {
			t.Fatal("alloc on deleted region did not panic")
		}
	}()
	rt.Ralloc(r, 8, rt.SizeCleanup(8))
}

func TestBarrierDisciplineViolationDetected(t *testing.T) {
	// Writing a region pointer with a raw store and then overwriting it
	// through the barrier underflows the count, which must be detected.
	rt, _ := newRT(true)
	cln := rt.RegisterCleanup("list", listCleanup)
	g := rt.AllocGlobals(1)
	r := rt.NewRegion()
	p := cons(rt, cln, r, 1, 0)
	rt.Space().Store(g, p) // raw store: no increment
	defer func() {
		if recover() == nil {
			t.Fatal("rc underflow not detected")
		}
	}()
	rt.StoreGlobalPtr(g, 0) // decrement without matching increment
}

func TestRegionOfNonRegionAddresses(t *testing.T) {
	rt, _ := newRT(true)
	g := rt.AllocGlobals(4)
	if rt.RegionOf(0) != nil {
		t.Fatal("RegionOf(nil) != nil")
	}
	if rt.RegionOf(g) != nil {
		t.Fatal("RegionOf(global) != nil")
	}
	if rt.RegionOf(0xfffff000) != nil {
		t.Fatal("RegionOf(unmapped) != nil")
	}
}

func TestFramePooling(t *testing.T) {
	rt, _ := newRT(true)
	for i := 0; i < 100; i++ {
		f := rt.PushFrame(3)
		f.Set(0, 0)
		if f.Len() != 3 {
			t.Fatalf("frame len %d", f.Len())
		}
		if f.Get(1) != 0 || f.Get(2) != 0 {
			t.Fatal("recycled frame slots not cleared")
		}
		f.Set(1, 4096)
		rt.PopFrame()
	}
	if rt.Depth() != 0 {
		t.Fatalf("depth=%d", rt.Depth())
	}
}
