package core

import (
	"errors"
	"strings"
	"testing"

	"regions/internal/mem"
)

// wantInvariant runs Verify and requires a FaultInvariant whose context
// contains substr.
func wantInvariant(t *testing.T, rt *Runtime, substr string) {
	t.Helper()
	err := rt.Verify()
	if err == nil {
		t.Fatalf("Verify passed; want a violation mentioning %q", substr)
	}
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultInvariant {
		t.Fatalf("Verify returned %v; want a FaultInvariant *Fault", err)
	}
	if !strings.Contains(f.Context, substr) {
		t.Fatalf("violation %q does not mention %q", f.Context, substr)
	}
}

// buildHealthyHeap makes a runtime with regions, cross-region pointers,
// globals, arrays, strings, frames and some deletions behind it.
func buildHealthyHeap(t *testing.T) (*Runtime, []*Region) {
	t.Helper()
	rt, _ := newRT(true)
	cln := rt.RegisterCleanup("cell", func(rt *Runtime, obj Ptr) int {
		rt.Destroy(rt.Space().Load(obj + 4))
		return 8
	})
	g := rt.AllocGlobals(4)
	var regs []*Region
	var last Ptr
	for i := 0; i < 3; i++ {
		r := rt.NewRegion()
		regs = append(regs, r)
		for j := 0; j < 5; j++ {
			p := rt.Ralloc(r, 8, cln)
			rt.StorePtr(p+4, last)
			last = p
		}
		rt.RarrayAlloc(r, 10, 8, cln)
		rt.RstrAlloc(r, 100)
	}
	rt.StoreGlobalPtr(g, last)
	f := rt.PushFrame(2)
	f.Set(0, last)
	// A deleted region leaves poisoned pages on the free lists.
	scratch := rt.NewRegion()
	rt.RstrAlloc(scratch, 3*mem.PageSize)
	if !rt.DeleteRegion(scratch) {
		t.Fatal("scratch delete failed")
	}
	return rt, regs
}

func TestVerifyPassesOnHealthyHeap(t *testing.T) {
	rt, _ := buildHealthyHeap(t)
	if err := rt.Verify(); err != nil {
		t.Fatalf("healthy heap fails verification: %v", err)
	}
	// Verify is uncharged and non-perturbing: a second run agrees and the
	// heap still works.
	if err := rt.Verify(); err != nil {
		t.Fatalf("second verification: %v", err)
	}
	r := rt.NewRegion()
	rt.Ralloc(r, 8, rt.SizeCleanup(8))
	if err := rt.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesCorruptRC(t *testing.T) {
	rt, regs := buildHealthyHeap(t)
	rt.Space().Uncharged(func() {
		rt.Space().Store(regs[0].hdr+offRC, 999)
	})
	wantInvariant(t, rt, "stored reference count")
}

func TestVerifyCatchesCorruptHeader(t *testing.T) {
	rt, regs := buildHealthyHeap(t)
	p := rt.Ralloc(regs[1], 8, rt.SizeCleanup(8))
	rt.Space().Uncharged(func() {
		rt.Space().Store(p-mem.WordSize, 0x7fff) // no such cleanup id
	})
	wantInvariant(t, rt, "corrupt object header")
}

func TestVerifyCatchesStrayWriteIntoFreedPage(t *testing.T) {
	rt, _ := buildHealthyHeap(t)
	if len(rt.freePages) == 0 {
		t.Fatal("no freed pages to corrupt")
	}
	freed := rt.freePages[0]
	rt.Space().Uncharged(func() {
		rt.Space().Store(freed+64, 0x12345678)
	})
	wantInvariant(t, rt, "not poison")
}

func TestVerifyCatchesPageMapCorruption(t *testing.T) {
	rt, regs := buildHealthyHeap(t)
	// Point a page of region 0 at region 1 in the page map.
	pg := int(regs[0].hdr >> mem.PageShift)
	rt.pages.owners[pg] = regs[1]
	wantInvariant(t, rt, "page map")
}

func TestVerifyCatchesPageListCorruption(t *testing.T) {
	rt, regs := buildHealthyHeap(t)
	r := regs[2]
	// Make the normal list's first entry point at itself: a cycle.
	rt.Space().Uncharged(func() {
		entry := rt.Space().Load(r.hdr + offNormalFirst)
		link := rt.Space().Load(entry + pageLink)
		rt.Space().Store(entry+pageLink, entry|(link&(mem.PageSize-1)))
	})
	// The self-loop shows up as the page being claimed twice (the census
	// catches the duplicate before the cycle bound trips).
	wantInvariant(t, rt, "also on region")
}

func TestVerifyCatchesBadAvailOffset(t *testing.T) {
	rt, regs := buildHealthyHeap(t)
	rt.Space().Uncharged(func() {
		rt.Space().Store(regs[0].hdr+offNormalAvail, mem.PageSize+8)
	})
	wantInvariant(t, rt, "exceeds page size")
}

func TestVerifyCatchesStackCorruption(t *testing.T) {
	rt, _ := buildHealthyHeap(t)
	rt.PushFrame(1)
	rt.stack.frames[len(rt.stack.frames)-1].scanned = true
	wantInvariant(t, rt, "scanned")
}

func TestVerifyUnsafeRuntimeSkipsRC(t *testing.T) {
	rt, _ := newRT(false)
	r := rt.NewRegion()
	g := rt.AllocGlobals(1)
	p := rt.Ralloc(r, 8, rt.SizeCleanup(8))
	rt.StoreGlobalPtr(g, p)
	// The unsafe runtime keeps no counts; Verify must not demand them.
	if err := rt.Verify(); err != nil {
		t.Fatalf("unsafe runtime verification: %v", err)
	}
}
