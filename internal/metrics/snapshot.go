package metrics

import "sort"

// SnapshotSchemaVersion is the schema_version stamped on every Snapshot
// (and therefore on WriteJSON output and embedded regionbench reports).
// Bump it whenever a field changes meaning or shape.
const SnapshotSchemaVersion = 1

// CounterValue is one counter at snapshot time.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeValue is one gauge at snapshot time.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketValue is one histogram bucket: the count of observations at or
// under UpperBound that exceeded the previous bound. UpperBound 0 on the
// last bucket marks the overflow (+Inf) bucket.
type BucketValue struct {
	UpperBound uint64 `json:"le"`
	Count      uint64 `json:"count"`
}

// HistogramValue is one histogram at snapshot time. Buckets hold per-bucket
// (not cumulative) counts; the Prometheus writer accumulates them into the
// exposition format's cumulative `le` series.
type HistogramValue struct {
	Name    string        `json:"name"`
	Count   uint64        `json:"count"`
	Sum     uint64        `json:"sum"`
	Buckets []BucketValue `json:"buckets"`
}

// SiteSample is one allocation site in the sampled site profile; Objects
// and Bytes are scaled by the sampling interval, estimating the full
// allocation stream.
type SiteSample struct {
	Site    string `json:"site"`
	Objects uint64 `json:"objects"`
	Bytes   uint64 `json:"bytes"`
}

// Snapshot is one consistent-enough view of a registry: every series is
// read with a single atomic load, series are name-sorted so two snapshots
// diff line by line, and the whole operation takes the registry lock only
// long enough to copy the name maps. Cross-series skew is bounded by the
// operations in flight during the copy; each individual value is exact.
type Snapshot struct {
	SchemaVersion int              `json:"schema_version"`
	Counters      []CounterValue   `json:"counters"`
	Gauges        []GaugeValue     `json:"gauges"`
	Histograms    []HistogramValue `json:"histograms"`
	Sites         []SiteSample     `json:"sites,omitempty"`
}

// Snapshot captures the registry's current values.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	counters := make([]CounterValue, 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, CounterValue{Name: name, Value: c.Value()})
	}
	gauges := make([]GaugeValue, 0, len(r.gauges))
	for name, g := range r.gauges {
		gauges = append(gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	hists := make([]HistogramValue, 0, len(r.hists))
	for name, h := range r.hists {
		hv := HistogramValue{Name: name, Count: h.Count(), Sum: h.Sum()}
		for i := range h.buckets {
			b := BucketValue{Count: h.buckets[i].Load()}
			if i < len(h.bounds) {
				b.UpperBound = h.bounds[i]
			}
			hv.Buckets = append(hv.Buckets, b)
		}
		hists = append(hists, hv)
	}
	r.mu.Unlock()

	sort.Slice(counters, func(i, j int) bool { return counters[i].Name < counters[j].Name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].Name < gauges[j].Name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
	return &Snapshot{
		SchemaVersion: SnapshotSchemaVersion,
		Counters:      counters,
		Gauges:        gauges,
		Histograms:    hists,
		Sites:         r.snapshotSites(),
	}
}

// Counter returns the named counter's value and whether it exists.
func (s *Snapshot) Counter(name string) (uint64, bool) {
	i := sort.Search(len(s.Counters), func(i int) bool { return s.Counters[i].Name >= name })
	if i < len(s.Counters) && s.Counters[i].Name == name {
		return s.Counters[i].Value, true
	}
	return 0, false
}

// Gauge returns the named gauge's value and whether it exists.
func (s *Snapshot) Gauge(name string) (int64, bool) {
	i := sort.Search(len(s.Gauges), func(i int) bool { return s.Gauges[i].Name >= name })
	if i < len(s.Gauges) && s.Gauges[i].Name == name {
		return s.Gauges[i].Value, true
	}
	return 0, false
}

// Histogram returns the named histogram's value and whether it exists.
func (s *Snapshot) Histogram(name string) (*HistogramValue, bool) {
	i := sort.Search(len(s.Histograms), func(i int) bool { return s.Histograms[i].Name >= name })
	if i < len(s.Histograms) && s.Histograms[i].Name == name {
		return &s.Histograms[i], true
	}
	return nil, false
}

// Quantile estimates the q-th quantile (0 < q <= 1) of the observations in
// h by linear interpolation inside the bucket holding the target rank —
// the standard fixed-bucket estimate (what PromQL's histogram_quantile
// computes). The overflow bucket has no upper bound, so a quantile landing
// there returns the last finite bound: a lower bound on the true value.
// Deterministic for a given bucket layout; returns 0 on an empty histogram.
func (h *HistogramValue) Quantile(q float64) uint64 {
	if h.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var seen float64
	var lower uint64
	for _, b := range h.Buckets {
		next := seen + float64(b.Count)
		if b.UpperBound == 0 { // overflow bucket: clamp to the last bound
			return lower
		}
		if next >= rank {
			if b.Count == 0 {
				return b.UpperBound
			}
			frac := (rank - seen) / float64(b.Count)
			return lower + uint64(frac*float64(b.UpperBound-lower))
		}
		seen = next
		lower = b.UpperBound
	}
	return lower
}

// CounterSum sums every counter whose name starts with prefix — the way to
// aggregate labeled series (`regions_shard_tasks_total{...}`) without
// parsing labels.
func (s *Snapshot) CounterSum(prefix string) uint64 {
	var sum uint64
	for _, c := range s.Counters {
		if len(c.Name) >= len(prefix) && c.Name[:len(prefix)] == prefix {
			sum += c.Value
		}
	}
	return sum
}

// Sub returns the per-interval delta s minus prev: counters and histogram
// buckets subtract (a series missing from prev contributes its full value),
// gauges and sites keep their current values, since they are instantaneous.
// Sub never mutates its receivers.
func (s *Snapshot) Sub(prev *Snapshot) *Snapshot {
	out := &Snapshot{
		SchemaVersion: s.SchemaVersion,
		Gauges:        append([]GaugeValue(nil), s.Gauges...),
		Sites:         append([]SiteSample(nil), s.Sites...),
	}
	for _, c := range s.Counters {
		if old, ok := prev.Counter(c.Name); ok {
			c.Value -= old
		}
		out.Counters = append(out.Counters, c)
	}
	prevHists := make(map[string]*HistogramValue, len(prev.Histograms))
	for i := range prev.Histograms {
		prevHists[prev.Histograms[i].Name] = &prev.Histograms[i]
	}
	for _, h := range s.Histograms {
		hv := HistogramValue{Name: h.Name, Count: h.Count, Sum: h.Sum,
			Buckets: append([]BucketValue(nil), h.Buckets...)}
		if old := prevHists[h.Name]; old != nil && len(old.Buckets) == len(hv.Buckets) {
			hv.Count -= old.Count
			hv.Sum -= old.Sum
			for i := range hv.Buckets {
				hv.Buckets[i].Count -= old.Buckets[i].Count
			}
		}
		out.Histograms = append(out.Histograms, hv)
	}
	return out
}
