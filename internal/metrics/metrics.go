// Package metrics is the always-on telemetry layer of the region runtime: a
// low-overhead registry of atomic counters, gauges, and fixed-bucket
// histograms, populated by every layer of the stack (internal/core,
// internal/mem, internal/gc, internal/shard) behind the same nil-guarded
// hook pattern as internal/trace — a runtime without a registry pays one
// predicate per operation and nothing else, and a metered run reports the
// same stats.Counters as a bare one, because metric updates are host-side
// bookkeeping outside the simulated machine model.
//
// The aggregate counters of internal/stats answer the paper's questions
// after a run ends; this package answers "what is the runtime doing right
// now": Snapshot() is cheap, consistent, and diffable into per-interval
// rates, WritePrometheus emits the text exposition format, WriteJSON a
// schema-versioned JSON document (embedded in regionbench reports), and
// HeapProfile turns the verifier's page walk into a per-region heap report.
// docs/OBSERVABILITY.md documents the semantics; cmd/regionstat drives
// everything against the benchmark applications.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. All methods are safe for
// concurrent use and lock-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value. All methods are safe for concurrent
// use and lock-free.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of uint64 observations (byte sizes,
// simulated cycles). Bounds are inclusive upper bounds in ascending order;
// one implicit overflow bucket catches everything larger. Observe is
// lock-free: a linear scan over the (small) bound slice plus three atomic
// adds.
type Histogram struct {
	bounds  []uint64
	buckets []atomic.Uint64 // len(bounds)+1; last = overflow
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Bounds returns the histogram's upper bounds (not a copy; do not mutate).
func (h *Histogram) Bounds() []uint64 { return h.bounds }

// siteEntry accumulates the sampled allocation-site profile. Values are
// scaled up by the sampling interval at record time, so they estimate the
// full population.
type siteEntry struct {
	objects uint64
	bytes   uint64
}

// Registry is a named collection of metrics. Counter, Gauge, and Histogram
// are get-or-create and take the registry lock; the returned pointers are
// what hot paths hold on to, so steady-state updates never touch the lock
// or the name maps. Names follow Prometheus conventions and may carry a
// label suffix (`regions_shard_tasks_total{shard="0"}`); series sharing a
// base name are grouped under one # TYPE line by WritePrometheus.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	siteEvery atomic.Int64
	siteTick  atomic.Uint64
	siteMu    sync.Mutex
	sites     map[string]*siteEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		sites:    map[string]*siteEntry{},
	}
}

// Counter returns the counter named name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge named name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram named name, creating it with the given
// upper bounds if needed. Bounds must be ascending; they are copied. A
// histogram that already exists keeps its original bounds.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic("metrics: histogram bounds must be ascending")
			}
		}
		h = &Histogram{
			bounds:  append([]uint64(nil), bounds...),
			buckets: make([]atomic.Uint64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// SetSiteSampling enables the sampled allocation-site profile: every Nth
// SampleAlloc call is recorded (scaled by N, so the profile estimates the
// full allocation stream). 0 disables sampling, the default — a disabled
// sampler costs one atomic load per allocation on a metered runtime and
// nothing on a bare one.
func (r *Registry) SetSiteSampling(every int) {
	if every < 0 {
		every = 0
	}
	r.siteEvery.Store(int64(every))
}

// SampleAlloc offers one allocation (site label, data bytes) to the site
// sampler. Called by the runtime's allocation hooks; cheap when sampling is
// disabled, and off the fast path (one short critical section) once per
// sampling interval otherwise.
func (r *Registry) SampleAlloc(site string, size uint64) {
	every := uint64(r.siteEvery.Load())
	if every == 0 {
		return
	}
	if r.siteTick.Add(1)%every != 0 {
		return
	}
	r.siteMu.Lock()
	e, ok := r.sites[site]
	if !ok {
		e = &siteEntry{}
		r.sites[site] = e
	}
	e.objects += every
	e.bytes += size * every
	r.siteMu.Unlock()
}

// snapshotSites copies the sampled site profile, sorted by estimated bytes
// descending (ties by name).
func (r *Registry) snapshotSites() []SiteSample {
	r.siteMu.Lock()
	out := make([]SiteSample, 0, len(r.sites))
	for name, e := range r.sites {
		out = append(out, SiteSample{Site: name, Objects: e.objects, Bytes: e.bytes})
	}
	r.siteMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Site < out[j].Site
	})
	return out
}
