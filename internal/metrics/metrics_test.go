package metrics

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c_total") != c {
		t.Error("Counter is not get-or-create")
	}

	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}

	h := r.Histogram("h", []uint64{10, 100})
	for _, v := range []uint64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1+10+11+100+101+5000 {
		t.Errorf("histogram count/sum = %d/%d", h.Count(), h.Sum())
	}
	// Bounds are inclusive: 10 lands in the first bucket, 101 overflows.
	want := []uint64{2, 2, 2}
	for i := range h.buckets {
		if got := h.buckets[i].Load(); got != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, got, want[i])
		}
	}
	if r.Histogram("h", nil) != h {
		t.Error("Histogram is not get-or-create")
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-ascending bounds")
		}
	}()
	NewRegistry().Histogram("bad", []uint64{10, 10})
}

func TestSnapshotLookupAndDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(10)
	r.Counter("b_total{x=\"1\"}").Add(3)
	r.Counter("b_total{x=\"2\"}").Add(4)
	r.Gauge("live").Set(2)
	r.Histogram("sizes", []uint64{16, 64}).Observe(20)

	s1 := r.Snapshot()
	if s1.SchemaVersion != SnapshotSchemaVersion {
		t.Errorf("schema_version = %d, want %d", s1.SchemaVersion, SnapshotSchemaVersion)
	}
	if v, ok := s1.Counter("a_total"); !ok || v != 10 {
		t.Errorf("Counter(a_total) = %d,%v", v, ok)
	}
	if v, ok := s1.Gauge("live"); !ok || v != 2 {
		t.Errorf("Gauge(live) = %d,%v", v, ok)
	}
	if got := s1.CounterSum("b_total"); got != 7 {
		t.Errorf("CounterSum(b_total) = %d, want 7", got)
	}
	if _, ok := s1.Counter("missing"); ok {
		t.Error("Counter(missing) found")
	}

	r.Counter("a_total").Add(5)
	r.Gauge("live").Set(9)
	r.Histogram("sizes", nil).Observe(100)
	d := r.Snapshot().Sub(s1)
	if v, _ := d.Counter("a_total"); v != 5 {
		t.Errorf("diffed a_total = %d, want 5", v)
	}
	if v, _ := d.Gauge("live"); v != 9 {
		t.Errorf("diffed gauge = %d, want instantaneous 9", v)
	}
	if h := d.Histograms[0]; h.Count != 1 || h.Sum != 100 {
		t.Errorf("diffed histogram count/sum = %d/%d, want 1/100", h.Count, h.Sum)
	}
}

func TestSiteSampling(t *testing.T) {
	r := NewRegistry()
	// Disabled sampler records nothing.
	r.SampleAlloc("quiet", 8)
	if got := len(r.Snapshot().Sites); got != 0 {
		t.Fatalf("disabled sampler recorded %d sites", got)
	}
	r.SetSiteSampling(4)
	for i := 0; i < 64; i++ {
		r.SampleAlloc("hot", 32)
	}
	sites := r.Snapshot().Sites
	if len(sites) != 1 || sites[0].Site != "hot" {
		t.Fatalf("sites = %+v", sites)
	}
	// Every 4th of 64 calls recorded, scaled by 4: the estimate matches the
	// full stream exactly for a uniform one.
	if sites[0].Objects != 64 || sites[0].Bytes != 64*32 {
		t.Errorf("sampled estimate = %d objects / %d bytes, want 64 / %d",
			sites[0].Objects, sites[0].Bytes, 64*32)
	}
}

// TestWritePrometheusGolden locks the exposition output byte for byte;
// regenerate with `go test ./internal/metrics -run Golden -update`.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("regions_demo_allocs_total").Add(1234)
	r.Counter(`regions_demo_tasks_total{shard="0"}`).Add(7)
	r.Counter(`regions_demo_tasks_total{shard="1"}`).Add(8)
	r.Gauge("regions_demo_live_regions").Set(3)
	h := r.Histogram("regions_demo_alloc_size_bytes", []uint64{16, 256})
	for _, v := range []uint64{8, 16, 200, 5000} {
		h.Observe(v)
	}
	r.SetSiteSampling(1)
	r.SampleAlloc(`site "with" quotes\`, 48)
	r.SampleAlloc("plain", 16)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Prometheus output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(2)
	r.Histogram("h", []uint64{10}).Observe(3)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v", err)
	}
	if back.SchemaVersion != SnapshotSchemaVersion {
		t.Errorf("round-tripped schema_version = %d", back.SchemaVersion)
	}
	if v, ok := back.Counter("a_total"); !ok || v != 2 {
		t.Errorf("round-tripped counter = %d,%v", v, ok)
	}
}

func TestHandlerServesScrape(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total").Inc()
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct == "" {
		t.Error("no Content-Type header")
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("up_total 1")) {
		t.Errorf("scrape body missing counter:\n%s", rec.Body.String())
	}
}

// TestConcurrentUpdates exercises the lock-free update paths under the race
// detector: many goroutines hammering shared series while another snapshots
// and renders.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	r.SetSiteSampling(2)
	var writers sync.WaitGroup
	for i := 0; i < 4; i++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			c := r.Counter("shared_total")
			g := r.Gauge("shared")
			h := r.Histogram("shared_hist", []uint64{8, 64})
			for j := 0; j < 5000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(uint64(j % 100))
				r.SampleAlloc("site", 16)
			}
		}()
	}
	stop := make(chan struct{})
	readerDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				readerDone <- nil
				return
			default:
				if err := WritePrometheus(bytes.NewBuffer(nil), r.Snapshot()); err != nil {
					readerDone <- err
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}

	if got := r.Counter("shared_total").Value(); got != 4*5000 {
		t.Errorf("shared_total = %d, want %d", got, 4*5000)
	}
}
