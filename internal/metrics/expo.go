package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// This file holds the two exposition formats. WritePrometheus emits the
// text-based exposition format version 0.0.4 (what a Prometheus server
// scrapes from /metrics); WriteJSON emits the snapshot as a schema-versioned
// JSON document, the form internal/bench embeds in regionbench reports.
// Both operate on a Snapshot, so one consistent capture can be rendered in
// either format (or diffed first and rendered as a rate).

// baseName splits a series name into its metric name and label suffix:
// `x_total{shard="0"}` → ("x_total", `{shard="0"}`).
func baseName(name string) (string, string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// WritePrometheus renders s in the Prometheus text exposition format.
// Series are emitted in the snapshot's name-sorted order; labeled series
// sharing a base name are grouped under a single # TYPE line. The sampled
// site profile appears as regions_alloc_site_objects_sampled /
// regions_alloc_site_bytes_sampled with a site label.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)
	typed := map[string]bool{}
	typeLine := func(base, kind string) {
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(bw, "# TYPE %s %s\n", base, kind)
		}
	}
	for _, c := range s.Counters {
		base, labels := baseName(c.Name)
		typeLine(base, "counter")
		fmt.Fprintf(bw, "%s%s %d\n", base, labels, c.Value)
	}
	for _, g := range s.Gauges {
		base, labels := baseName(g.Name)
		typeLine(base, "gauge")
		fmt.Fprintf(bw, "%s%s %d\n", base, labels, g.Value)
	}
	for _, h := range s.Histograms {
		base, _ := baseName(h.Name)
		typeLine(base, "histogram")
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if b.UpperBound != 0 {
				le = fmt.Sprintf("%d", b.UpperBound)
			}
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", base, le, cum)
		}
		fmt.Fprintf(bw, "%s_sum %d\n", base, h.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", base, h.Count)
	}
	if len(s.Sites) > 0 {
		typeLine("regions_alloc_site_objects_sampled", "counter")
		for _, st := range s.Sites {
			fmt.Fprintf(bw, "regions_alloc_site_objects_sampled{site=\"%s\"} %d\n",
				escapeLabel(st.Site), st.Objects)
		}
		typeLine("regions_alloc_site_bytes_sampled", "counter")
		for _, st := range s.Sites {
			fmt.Fprintf(bw, "regions_alloc_site_bytes_sampled{site=\"%s\"} %d\n",
				escapeLabel(st.Site), st.Bytes)
		}
	}
	return bw.Flush()
}

// WriteJSON renders s as indented JSON. The document carries
// schema_version (SnapshotSchemaVersion); consumers should reject versions
// they do not know.
func WriteJSON(w io.Writer, s *Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
