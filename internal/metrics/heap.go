package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file defines the heap profiler's report types. The data is produced
// by the region runtime's verifier walk (internal/core builds a HeapReport
// while auditing page lists and object headers — see core.Runtime.HeapReport)
// and consumed here: top-N ranking, a human-readable text report, and JSON.
// The types live in this package so that core can depend on metrics without
// a cycle, and so every exposition surface (regionstat, regionbench's /heap
// endpoint) shares one schema.

// HeapSchemaVersion is the schema_version stamped on every HeapReport.
// Version 2 added the string-pool decomposition term (StrPoolBytes,
// StrPoolBlocks, and the HeapStrPool section).
const HeapSchemaVersion = 2

// RegionHeap is one region's footprint, decomposed exactly:
//
//	CapacityBytes = LiveBytes + BookkeepingBytes + FreeBytes
//	              + StrPoolBytes + FragBytes
//
// LiveBytes is program-requested data (NormalBytes in the scanned allocator
// plus StringBytes in the string allocator). BookkeepingBytes is runtime
// overhead: page-link words, the region structure and its coloring offset,
// and object headers. FreeBytes is still allocatable by the bump pointers
// (the head pages' remaining space); StrPoolBytes is freed string-allocator
// capacity parked on the region's class free lists, allocatable by the
// pooled string path; FragBytes is internal fragmentation — slack no future
// allocation in this region can use (abandoned page tails, multi-page-span
// padding).
type RegionHeap struct {
	ID          int32 `json:"id"`
	Pages       int   `json:"pages"`
	NormalPages int   `json:"normalPages"`
	StringPages int   `json:"stringPages"`

	CapacityBytes    uint64 `json:"capacityBytes"`
	LiveBytes        uint64 `json:"liveBytes"`
	NormalBytes      uint64 `json:"normalBytes"`
	StringBytes      uint64 `json:"stringBytes"`
	BookkeepingBytes uint64 `json:"bookkeepingBytes"`
	FreeBytes        uint64 `json:"freeBytes"`
	StrPoolBytes     uint64 `json:"strPoolBytes,omitempty"`
	StrPoolBlocks    int    `json:"strPoolBlocks,omitempty"`
	FragBytes        uint64 `json:"fragBytes"`

	Objects uint64 `json:"objects"` // live objects with headers (normal allocator)
	Allocs  uint64 `json:"allocs"`  // lifetime allocation count, all allocators

	// OccupancyPct is live data as a percentage of capacity.
	OccupancyPct float64 `json:"occupancyPct"`
}

// HeapSite is one allocation site in the live-object census: every live
// object in the normal allocator, attributed to its cleanup's registered
// name. (String-allocator data carries no headers and is not attributable;
// the registry's sampled site profile covers it at allocation time.)
type HeapSite struct {
	Site    string `json:"site"`
	Objects uint64 `json:"objects"`
	Bytes   uint64 `json:"bytes"`
}

// HeapStrClass is one capacity class of the pooled string allocator's
// reuse accounting: lifetime New (bump) / Reuse (pool hit) / Freed counts
// and the blocks currently parked on live regions' free lists.
type HeapStrClass struct {
	Size       int    `json:"size"`
	New        uint64 `json:"new"`
	Reuse      uint64 `json:"reuse"`
	Freed      uint64 `json:"freed"`
	FreeBlocks int    `json:"freeBlocks"`
	FreeBytes  uint64 `json:"freeBytes"`
}

// HeapStrPool is the pooled string allocator's section of the report:
// the class ceiling, the New/Reuse/Big totals (ReuseRatio =
// Reuse / (New + Reuse)), and the per-class breakdown. Classes with no
// activity are omitted.
type HeapStrPool struct {
	Enabled    bool           `json:"enabled"`
	Ceiling    int            `json:"ceiling"`
	New        uint64         `json:"new"`
	Reuse      uint64         `json:"reuse"`
	Big        uint64         `json:"big"`
	Freed      uint64         `json:"freed"`
	ReuseRatio float64        `json:"reuseRatio"`
	Classes    []HeapStrClass `json:"classes,omitempty"`
}

// HeapReport is one full heap profile: the page census of every live
// region, runtime-level free-memory accounting, and the live allocation-site
// census. Produced by core.Runtime.HeapReport / HeapProfile.
type HeapReport struct {
	SchemaVersion int    `json:"schema_version"`
	Origin        string `json:"origin,omitempty"` // e.g. a shard name
	CapturedCycle uint64 `json:"capturedCycle"`    // simulated clock at capture

	MappedBytes   uint64 `json:"mappedBytes"` // total requested from the simulated OS
	FreePages     int    `json:"freePages"`   // single pages on the runtime free list
	FreeSpanPages int    `json:"freeSpanPages"`
	// DetachedPages counts free pages released by a deferred deletion and
	// not yet poisoned by the incremental sweeper (the runtime's sweep
	// debt at capture).
	DetachedPages int `json:"detachedPages,omitempty"`
	LiveRegions   int `json:"liveRegions"`

	Totals  RegionHeap   `json:"totals"` // summed over live regions (ID = -1)
	Regions []RegionHeap `json:"regions"`
	Sites   []HeapSite   `json:"sites,omitempty"`
	// StrPool is the pooled string allocator's reuse accounting (nil when
	// the producing runtime predates the pool).
	StrPool *HeapStrPool `json:"strPool,omitempty"`
}

// HeapReporter is anything that can produce a heap profile — concretely
// *core.Runtime, but expressed as an interface so this package stays a leaf.
type HeapReporter interface {
	HeapReport() (*HeapReport, error)
}

// HeapProfile captures a heap profile from rt. It is a convenience wrapper
// so callers holding a runtime can write metrics.HeapProfile(rt); the error
// is non-nil only when the heap fails its structural invariants (the same
// conditions Verify reports).
func HeapProfile(rt HeapReporter) (*HeapReport, error) { return rt.HeapReport() }

// Top returns the n regions with the largest capacity (footprint), ties
// broken by id. The receiver is not modified.
func (r *HeapReport) Top(n int) []RegionHeap {
	out := append([]RegionHeap(nil), r.Regions...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].CapacityBytes != out[j].CapacityBytes {
			return out[i].CapacityBytes > out[j].CapacityBytes
		}
		return out[i].ID < out[j].ID
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// WriteJSON renders the report as indented JSON.
func (r *HeapReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders a human-readable heap profile: totals, the top-N
// regions by footprint, and the live allocation-site census.
func (r *HeapReport) WriteText(w io.Writer, topN int) {
	fmt.Fprintf(w, "heap profile at cycle %d", r.CapturedCycle)
	if r.Origin != "" {
		fmt.Fprintf(w, " (%s)", r.Origin)
	}
	fmt.Fprintln(w)
	t := r.Totals
	fmt.Fprintf(w, "  %d live regions on %d pages (%s capacity, %s mapped from OS)\n",
		r.LiveRegions, t.Pages, fmtBytes(t.CapacityBytes), fmtBytes(r.MappedBytes))
	fmt.Fprintf(w, "  live %s (%.1f%% occupancy): %s scanned + %s string; overhead %s bookkeeping, %s free, %s fragmentation\n",
		fmtBytes(t.LiveBytes), t.OccupancyPct, fmtBytes(t.NormalBytes), fmtBytes(t.StringBytes),
		fmtBytes(t.BookkeepingBytes), fmtBytes(t.FreeBytes), fmtBytes(t.FragBytes))
	if t.StrPoolBlocks > 0 {
		fmt.Fprintf(w, "  string pool: %s parked in %d blocks\n",
			fmtBytes(t.StrPoolBytes), t.StrPoolBlocks)
	}
	fmt.Fprintf(w, "  free pages: %d single + %d in spans", r.FreePages, r.FreeSpanPages)
	if r.DetachedPages > 0 {
		fmt.Fprintf(w, " (%d detached, sweep pending)", r.DetachedPages)
	}
	fmt.Fprintln(w)

	top := r.Top(topN)
	if len(top) > 0 {
		fmt.Fprintf(w, "\n  %-8s %6s %10s %10s %7s %10s %10s %8s\n",
			"region", "pages", "capacity", "live", "occ%", "string", "frag", "objects")
		for _, reg := range top {
			fmt.Fprintf(w, "  #%-7d %6d %10s %10s %6.1f%% %10s %10s %8d\n",
				reg.ID, reg.Pages, fmtBytes(reg.CapacityBytes), fmtBytes(reg.LiveBytes),
				reg.OccupancyPct, fmtBytes(reg.StringBytes), fmtBytes(reg.FragBytes), reg.Objects)
		}
		if len(r.Regions) > len(top) {
			fmt.Fprintf(w, "  (%d more regions)\n", len(r.Regions)-len(top))
		}
	}
	if p := r.StrPool; p != nil && (p.New+p.Reuse+p.Big+p.Freed > 0) {
		fmt.Fprintf(w, "\n  string allocator (pool ceiling %s", fmtBytes(uint64(p.Ceiling)))
		if !p.Enabled {
			fmt.Fprintf(w, ", pooling off")
		}
		fmt.Fprintf(w, "): %d new, %d reused (%.1f%% reuse), %d freed, %d big\n",
			p.New, p.Reuse, 100*p.ReuseRatio, p.Freed, p.Big)
		if len(p.Classes) > 0 {
			fmt.Fprintf(w, "    %-8s %10s %10s %10s %8s %10s\n",
				"class", "new", "reuse", "freed", "parked", "parkedB")
			for _, c := range p.Classes {
				fmt.Fprintf(w, "    %-8s %10d %10d %10d %8d %10s\n",
					fmtBytes(uint64(c.Size)), c.New, c.Reuse, c.Freed,
					c.FreeBlocks, fmtBytes(c.FreeBytes))
			}
		}
	}
	if len(r.Sites) > 0 {
		fmt.Fprintf(w, "\n  live objects by site:\n")
		n := len(r.Sites)
		if topN > 0 && n > topN {
			n = topN
		}
		for _, s := range r.Sites[:n] {
			fmt.Fprintf(w, "    %-24s %8d objects %10s\n", s.Site, s.Objects, fmtBytes(s.Bytes))
		}
		if len(r.Sites) > n {
			fmt.Fprintf(w, "    (%d more sites)\n", len(r.Sites)-n)
		}
	}
}

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
