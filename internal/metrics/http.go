package metrics

import "net/http"

// HTTP exposition, used by regionbench -metrics-addr: Handler serves a
// fresh registry snapshot in the Prometheus text format, HeapHandler serves
// heap profiles as JSON. Both take their data source as a callback so the
// caller controls capture timing and locking; a profile provider that
// cannot produce reports yet (run not started) returns an empty slice.

// Handler returns an http.Handler serving r in the Prometheus text
// exposition format — mount it at /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r.Snapshot())
	})
}

// HeapHandler returns an http.Handler serving heap profiles as a JSON array
// — mount it at /heap. provider is called once per request.
func HeapHandler(provider func() ([]*HeapReport, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		reports, err := provider()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if reports == nil {
			reports = []*HeapReport{}
		}
		_, _ = w.Write([]byte("[\n"))
		for i, r := range reports {
			if i > 0 {
				_, _ = w.Write([]byte(",\n"))
			}
			_ = r.WriteJSON(w)
		}
		_, _ = w.Write([]byte("]\n"))
	})
}
