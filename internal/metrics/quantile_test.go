package metrics

import "testing"

// TestHistogramQuantile checks the fixed-bucket quantile estimate the
// serving report's p50/p99/p999 come from: linear interpolation inside the
// target bucket, overflow clamped to the last finite bound, zero on empty.
func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_test", []uint64{10, 20, 40})
	// 10 observations in (0,10], 10 in (10,20], none higher.
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	hv, ok := reg.Snapshot().Histogram("q_test")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if got := hv.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %d, want 10 (rank 10 is the first bucket's last observation)", got)
	}
	// Rank 15 sits 5/10 of the way through the (10,20] bucket.
	if got := hv.Quantile(0.75); got != 15 {
		t.Errorf("p75 = %d, want 15", got)
	}
	if got := hv.Quantile(1); got != 20 {
		t.Errorf("p100 = %d, want 20", got)
	}
	if got := hv.Quantile(0); got != 0 {
		t.Errorf("q<=0 = %d, want 0", got)
	}
}

// TestHistogramQuantileOverflow checks the overflow bucket clamps to the
// last finite bound rather than inventing a value.
func TestHistogramQuantileOverflow(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_overflow", []uint64{10})
	h.Observe(5)
	h.Observe(1000) // overflow bucket
	hv, _ := reg.Snapshot().Histogram("q_overflow")
	if got := hv.Quantile(0.99); got != 10 {
		t.Errorf("overflow quantile = %d, want clamp to last bound 10", got)
	}
}

// TestHistogramQuantileEmpty checks the empty-histogram and missing-name
// edges.
func TestHistogramQuantileEmpty(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("q_empty", []uint64{10})
	hv, ok := reg.Snapshot().Histogram("q_empty")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if got := hv.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %d, want 0", got)
	}
	if _, ok := reg.Snapshot().Histogram("no_such"); ok {
		t.Error("lookup of unknown histogram succeeded")
	}
}
